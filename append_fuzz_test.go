package traclus_test

// FuzzAppendOrderings: the append path must be schedule-oblivious — any
// permutation of the incoming trajectories, split into any sequence of
// append batches, lands on exactly the clustering a from-scratch batch
// build produces over the same ordered data. The fuzzer drives both the
// permutation and the batch boundaries from raw bytes.

import (
	"context"
	"testing"

	traclus "repro"
)

func FuzzAppendOrderings(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0x80, 0x01, 0x40, 0xfe, 0x00, 0x7f, 0xaa, 0x55})
	f.Add([]byte("interleave the appends"))

	f.Fuzz(func(t *testing.T, data []byte) {
		trs := equivalenceWorkload(t, 48)
		const base = 30
		extra := trs[base:]
		cfg := traclus.Config{Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40}

		// Fisher–Yates over the tail, driven by the fuzz bytes: byte i swaps
		// position i with i - (b mod (i+1)). Exhausted bytes leave the rest
		// in place, so the empty input is the identity permutation.
		perm := make([]traclus.Trajectory, len(extra))
		copy(perm, extra)
		for i := len(perm) - 1; i > 0; i-- {
			var b byte
			if len(data) > 0 {
				b, data = data[0], data[1:]
			}
			j := i - int(b)%(i+1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		// Remaining bytes cut the permuted tail into append batches: each
		// byte takes (b mod 5)+1 trajectories; leftovers land in one batch.
		var batches [][]traclus.Trajectory
		rest := perm
		for len(rest) > 0 && len(data) > 0 {
			n := int(data[0])%5 + 1
			data = data[1:]
			if n > len(rest) {
				n = len(rest)
			}
			batches = append(batches, rest[:n])
			rest = rest[n:]
		}
		if len(rest) > 0 {
			batches = append(batches, rest)
		}

		ctx := context.Background()
		ap, err := traclus.New(traclus.WithConfig(cfg)).NewAppender(ctx, trs[:base])
		if err != nil {
			t.Fatal(err)
		}
		var got *traclus.Result
		for _, b := range batches {
			if got, err = ap.Append(ctx, b); err != nil {
				t.Fatal(err)
			}
		}
		if got == nil {
			got = ap.Result()
		}

		// Ground truth: one batch build over the same ordered data. Cluster
		// numbering depends on item order, so the comparison must use the
		// permuted order, not the original.
		concat := append(append([]traclus.Trajectory{}, trs[:base]...), perm...)
		want, err := traclus.Run(concat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if g, w := appendFingerprint(got), appendFingerprint(want); g != w {
			t.Fatalf("append schedule (%d batches) diverged from batch build:\nappend: %s\nbatch:  %s",
				len(batches), g, w)
		}
	})
}
