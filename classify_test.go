package traclus_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/synth"

	traclus "repro"
)

func classifyConfig() traclus.Config {
	return traclus.Config{Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40}
}

// ownCluster returns the index of the cluster whose PTR contains the
// trajectory id, or -1.
func ownCluster(res *traclus.Result, id int) int {
	for ci, c := range res.Clusters {
		for _, t := range c.Trajectories {
			if t == id {
				return ci
			}
		}
	}
	return -1
}

// TestClassifyTrainingSet pins the core serving guarantee: every training
// trajectory that participates in a cluster classifies back into that
// cluster.
func TestClassifyTrainingSet(t *testing.T) {
	trs := corridorTrajectories()
	res, err := traclus.Run(trs, classifyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(res.Clusters))
	}
	cls, err := traclus.NewClassifier(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trs {
		want := ownCluster(res, tr.ID)
		if want == -1 {
			continue // pure-noise trajectory: no "own" cluster to demand
		}
		got, d, err := cls.Classify(tr)
		if err != nil {
			t.Fatalf("classify trajectory %d: %v", tr.ID, err)
		}
		if got != want {
			t.Errorf("trajectory %d classified into cluster %d, want its own cluster %d", tr.ID, got, want)
		}
		if math.IsNaN(d) || d < 0 {
			t.Errorf("trajectory %d distance = %v", tr.ID, d)
		}
	}
}

// TestClassifyUnseenTrajectory checks that a new trajectory running along a
// corridor lands in that corridor's cluster with a small distance, while a
// far-away trajectory reports a much larger distance.
func TestClassifyUnseenTrajectory(t *testing.T) {
	trs := corridorTrajectories()
	res, err := traclus.Run(trs, classifyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// An unseen trajectory shadowing training trajectory 0's corridor.
	near := trs[0].Translate(traclus.Pt(3, 3))
	near.ID = 10_000
	wantCluster := ownCluster(res, trs[0].ID)
	got, dNear, err := res.Classify(near)
	if err != nil {
		t.Fatal(err)
	}
	if got != wantCluster {
		t.Errorf("shadow trajectory classified into %d, want %d", got, wantCluster)
	}
	far := trs[0].Translate(traclus.Pt(4000, 4000))
	far.ID = 10_001
	_, dFar, err := res.Classify(far)
	if err != nil {
		t.Fatal(err)
	}
	if dFar <= dNear {
		t.Errorf("far distance %v not greater than near distance %v", dFar, dNear)
	}
}

// TestClassifyIndexEquivalence: the assignment must not depend on the
// neighborhood index strategy the model was built with.
func TestClassifyIndexEquivalence(t *testing.T) {
	trs := corridorTrajectories()
	queries := synth.CorridorScene(2, 4, 24, 6, 99)
	var baseline []int
	for _, kind := range []traclus.IndexKind{traclus.IndexGrid, traclus.IndexRTree, traclus.IndexNone} {
		cfg := classifyConfig()
		cfg.Index = kind
		res, err := traclus.Run(trs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var got []int
		for _, q := range queries {
			cl, _, err := res.Classify(q)
			if err != nil {
				t.Fatalf("index %v: %v", kind, err)
			}
			got = append(got, cl)
		}
		if baseline == nil {
			baseline = got
			continue
		}
		for i := range got {
			if got[i] != baseline[i] {
				t.Errorf("index %v: query %d → cluster %d, grid → %d", kind, i, got[i], baseline[i])
			}
		}
	}
}

func TestClassifyErrors(t *testing.T) {
	res, err := traclus.Run(corridorTrajectories(), classifyConfig())
	if err != nil {
		t.Fatal(err)
	}
	short := traclus.NewTrajectory(1, []traclus.Point{traclus.Pt(0, 0)})
	if _, _, err := res.Classify(short); err == nil {
		t.Error("one-point trajectory accepted")
	}

	// A clustering with no clusters cannot classify.
	sparse, err := traclus.Run(corridorTrajectories()[:2], traclus.Config{Eps: 1, MinLns: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := traclus.NewClassifier(sparse); !errors.Is(err, traclus.ErrNoClusters) {
		t.Errorf("NewClassifier on empty clustering: err = %v, want ErrNoClusters", err)
	}
	if _, _, err := sparse.Classify(corridorTrajectories()[0]); !errors.Is(err, traclus.ErrNoClusters) {
		t.Errorf("Classify on empty clustering: err = %v, want ErrNoClusters", err)
	}
}

// TestClassifyOverflowCoordinates pins the no-panic guarantee for finite
// but extreme coordinates: 1e200 passes Trajectory.Validate yet overflows
// the squared terms of the distance to +Inf, leaving no reference segment
// comparable. The classifier must return an error, not index votes[-1].
func TestClassifyOverflowCoordinates(t *testing.T) {
	res, err := traclus.Run(corridorTrajectories(), classifyConfig())
	if err != nil {
		t.Fatal(err)
	}
	huge := traclus.NewTrajectory(77, []traclus.Point{
		traclus.Pt(1e200, 1e200), traclus.Pt(2e200, 1e200), traclus.Pt(3e200, 2e200),
	})
	if _, _, err := res.Classify(huge); err == nil {
		t.Error("overflowing trajectory classified without error")
	}
}

func TestClassifierConcurrent(t *testing.T) {
	trs := corridorTrajectories()
	res, err := traclus.Run(trs, classifyConfig())
	if err != nil {
		t.Fatal(err)
	}
	cls, err := traclus.NewClassifier(res)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for _, tr := range trs {
				if _, _, err := cls.Classify(tr); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestClusterStats(t *testing.T) {
	res, err := traclus.Run(corridorTrajectories(), classifyConfig())
	if err != nil {
		t.Fatal(err)
	}
	stats := res.ClusterStats()
	if len(stats) != len(res.Clusters) {
		t.Fatalf("stats for %d clusters, want %d", len(stats), len(res.Clusters))
	}
	for i, st := range stats {
		if st.Cluster != i {
			t.Errorf("stat %d: Cluster = %d", i, st.Cluster)
		}
		if st.Segments != len(res.Clusters[i].Segments) {
			t.Errorf("stat %d: Segments = %d, want %d", i, st.Segments, len(res.Clusters[i].Segments))
		}
		if st.Trajectories != len(res.Clusters[i].Trajectories) {
			t.Errorf("stat %d: Trajectories = %d, want %d", i, st.Trajectories, len(res.Clusters[i].Trajectories))
		}
		if st.SSE < 0 || math.IsNaN(st.SSE) {
			t.Errorf("stat %d: SSE = %v", i, st.SSE)
		}
	}
}

func TestConfigValidateTyped(t *testing.T) {
	valid := classifyConfig()
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	nan := math.NaN()
	bad := []traclus.Config{
		{Eps: nan, MinLns: 6},
		{Eps: math.Inf(1), MinLns: 6},
		{Eps: -3, MinLns: 6},
		{Eps: 30, MinLns: nan},
		{Eps: 30, MinLns: 6, MinTrajs: -1},
		{Eps: 30, MinLns: 6, Weights: traclus.Weights{Perpendicular: -1}},
		{Eps: 30, MinLns: 6, Weights: traclus.Weights{Perpendicular: nan}},
		{Eps: 30, MinLns: 6, CostAdvantage: nan},
		{Eps: 30, MinLns: 6, MinSegmentLength: -1},
		{Eps: 30, MinLns: 6, Gamma: nan},
	}
	for i, cfg := range bad {
		err := cfg.Validate()
		if err == nil {
			t.Errorf("case %d: invalid config accepted", i)
			continue
		}
		var ce *traclus.ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("case %d: error %T is not a *ConfigError", i, err)
		}
		// Run must reject the same configs, still as a typed error.
		if _, err := traclus.Run(corridorTrajectories(), cfg); !errors.As(err, &ce) {
			t.Errorf("case %d: Run error %v is not a *ConfigError", i, err)
		}
	}
}
