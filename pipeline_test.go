package traclus_test

// Tests for the composable Pipeline API: equivalence with the compatibility
// Run wrapper at every worker count (the acceptance bar includes DistCalls),
// prompt cooperative cancellation on a large synthetic input, the progress
// hook's ordering contract, stage pluggability, and the estimation-path
// validation fix.

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/synth"

	traclus "repro"
)

// TestPipelineRunMatchesRun pins the compatibility guarantee: a default
// Pipeline is bit-identical to Run at Workers ∈ {1, 4, all} — clusters
// (representatives included), noise/removal counts, and even DistCalls.
func TestPipelineRunMatchesRun(t *testing.T) {
	trs := equivalenceWorkload(t, 120)
	for _, workers := range []int{1, 4, 0} {
		cfg := traclus.Config{
			Eps: 30, MinLns: 6,
			CostAdvantage:    15,
			MinSegmentLength: 40,
			Workers:          workers,
		}
		legacy, err := traclus.Run(trs, cfg)
		if err != nil {
			t.Fatalf("workers=%d Run: %v", workers, err)
		}
		piped, err := traclus.New(traclus.WithConfig(cfg)).Run(context.Background(), trs)
		if err != nil {
			t.Fatalf("workers=%d Pipeline.Run: %v", workers, err)
		}
		if !reflect.DeepEqual(legacy.Clusters, piped.Clusters) {
			t.Errorf("workers=%d: Pipeline clusters differ from Run", workers)
		}
		if legacy.NoiseSegments != piped.NoiseSegments ||
			legacy.TotalSegments != piped.TotalSegments ||
			legacy.RemovedClusters != piped.RemovedClusters {
			t.Errorf("workers=%d: counts differ: Run=(%d,%d,%d) Pipeline=(%d,%d,%d)",
				workers,
				legacy.NoiseSegments, legacy.TotalSegments, legacy.RemovedClusters,
				piped.NoiseSegments, piped.TotalSegments, piped.RemovedClusters)
		}
		if legacy.DistCalls() != piped.DistCalls() {
			t.Errorf("workers=%d: DistCalls differ: Run=%d Pipeline=%d",
				workers, legacy.DistCalls(), piped.DistCalls())
		}
	}
}

// TestPipelineRunCancelledBeforeStart pins the fast path: a context that is
// already done yields ctx.Err() without touching the input.
func TestPipelineRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := traclus.New(traclus.WithConfig(traclus.Config{Eps: 30, MinLns: 6}))
	res, err := p.Run(ctx, equivalenceWorkload(t, 4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled Run returned a partial result")
	}
}

// TestPipelineRunPromptCancellation is the acceptance criterion: on the
// large synthetic bench input, cancelling mid-run returns ctx.Err() within
// one scheduling quantum (bounded here by a generous wall-clock budget that
// is still far below the full run time), at every worker count.
func TestPipelineRunPromptCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("large input")
	}
	scfg := synth.DefaultHurricaneConfig()
	scfg.NumTracks = 1500 // the BenchmarkRunParallel scale: many seconds of work
	trs := synth.Hurricanes(scfg)
	for _, workers := range []int{1, 0} {
		p := traclus.New(traclus.WithConfig(traclus.Config{Eps: 30, MinLns: 6, Workers: workers}))
		ctx, cancel := context.WithCancel(context.Background())
		type outcome struct {
			res *traclus.Result
			err error
		}
		done := make(chan outcome, 1)
		start := time.Now()
		go func() {
			res, err := p.Run(ctx, trs)
			done <- outcome{res, err}
		}()
		time.Sleep(50 * time.Millisecond)
		cancel()
		select {
		case o := <-done:
			if !errors.Is(o.err, context.Canceled) {
				// The run may legitimately have finished before the cancel
				// on a fast machine — but then it must have taken < 50ms,
				// which this input cannot.
				t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, o.err)
			}
			if o.res != nil {
				t.Fatalf("workers=%d: cancelled Run returned a result", workers)
			}
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Errorf("workers=%d: cancellation took %v", workers, elapsed)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: Run did not return after cancellation", workers)
		}
	}
}

// TestPipelineProgressOrdering pins the progress contract: phases arrive in
// pipeline order, fractions are non-decreasing within a phase, every phase
// opens at 0 and closes with exactly one Fraction-1 event, and Done never
// exceeds Total. The hook is guaranteed serialized, so the plain slice
// append needs no locking.
func TestPipelineProgressOrdering(t *testing.T) {
	trs := equivalenceWorkload(t, 80)
	for _, workers := range []int{1, 4} {
		var events []traclus.ProgressEvent
		p := traclus.New(
			traclus.WithConfig(traclus.Config{Eps: 30, MinLns: 6, Workers: workers}),
			traclus.WithProgress(func(ev traclus.ProgressEvent) { events = append(events, ev) }),
		)
		if _, err := p.Run(context.Background(), trs); err != nil {
			t.Fatal(err)
		}
		if len(events) < 6 {
			t.Fatalf("workers=%d: only %d events; want at least begin+end per phase", workers, len(events))
		}
		wantPhases := []traclus.Phase{traclus.PhasePartition, traclus.PhaseGroup, traclus.PhaseRepresent}
		phaseIdx := 0
		closes := map[traclus.Phase]int{}
		for i, ev := range events {
			for phaseIdx < len(wantPhases) && ev.Phase != wantPhases[phaseIdx] {
				phaseIdx++
			}
			if phaseIdx == len(wantPhases) {
				t.Fatalf("workers=%d: event %d: phase %v out of order", workers, i, ev.Phase)
			}
			if ev.Fraction < 0 || ev.Fraction > 1 {
				t.Errorf("workers=%d: event %d: fraction %v out of range", workers, i, ev.Fraction)
			}
			if ev.Total > 0 && ev.Done > ev.Total {
				t.Errorf("workers=%d: event %d: done %d > total %d", workers, i, ev.Done, ev.Total)
			}
			if i > 0 && events[i-1].Phase == ev.Phase && ev.Fraction < events[i-1].Fraction {
				t.Errorf("workers=%d: event %d: fraction regressed %v -> %v",
					workers, i, events[i-1].Fraction, ev.Fraction)
			}
			if ev.Fraction == 1 {
				closes[ev.Phase]++
			}
		}
		for _, ph := range wantPhases {
			first := -1
			for i, ev := range events {
				if ev.Phase == ph {
					first = i
					break
				}
			}
			if first == -1 {
				t.Fatalf("workers=%d: phase %v emitted no events", workers, ph)
			}
			if events[first].Fraction != 0 {
				t.Errorf("workers=%d: phase %v opened at fraction %v, want 0", workers, ph, events[first].Fraction)
			}
			if closes[ph] != 1 {
				t.Errorf("workers=%d: phase %v closed %d times, want exactly 1", workers, ph, closes[ph])
			}
		}
	}
}

// stubStages: a Partitioner that counts invocations and delegates to the
// default, a Grouper built from raw labels via GroupingFromLabels, and a
// RepresentativeBuilder that emits a fixed marker point.
type countingPartitioner struct {
	calls atomic.Int64
	inner traclus.Partitioner
}

func (c *countingPartitioner) Partition(ctx context.Context, trs []traclus.Trajectory, cfg traclus.Config) ([]traclus.Item, error) {
	c.calls.Add(1)
	return c.inner.Partition(ctx, trs, cfg)
}

type singleClusterGrouper struct{}

func (singleClusterGrouper) Group(_ context.Context, items []traclus.Item, _ traclus.Config) (*traclus.Grouping, error) {
	labels := make([]int, len(items))
	return traclus.GroupingFromLabels(items, labels, 0, 0), nil
}

type nilGrouper struct{}

func (nilGrouper) Group(context.Context, []traclus.Item, traclus.Config) (*traclus.Grouping, error) {
	return nil, nil
}

// TestPipelineRejectsNonConformantGrouper pins that a stage breaking the
// Grouping contract (nil, or a label vector not covering the items) is a
// friendly error, not a panic.
func TestPipelineRejectsNonConformantGrouper(t *testing.T) {
	trs := equivalenceWorkload(t, 10)
	p := traclus.New(
		traclus.WithConfig(traclus.Config{Eps: 30, MinLns: 2}),
		traclus.WithGrouper(nilGrouper{}),
	)
	res, err := p.Run(context.Background(), trs)
	if err == nil || res != nil {
		t.Fatalf("nil grouping accepted: res=%v err=%v", res, err)
	}
}

type markerBuilder struct{}

func (markerBuilder) Representative(_ context.Context, _ []traclus.Segment, _ []float64, _ traclus.Config) ([]traclus.Point, error) {
	return []traclus.Point{traclus.Pt(1, 2), traclus.Pt(3, 4)}, nil
}

// TestPipelineCustomStages verifies the three stage interfaces actually
// plug in: custom partitioner runs, a custom grouper's labelling flows
// through, and a custom representative builder's output lands on every
// cluster.
func TestPipelineCustomStages(t *testing.T) {
	trs := equivalenceWorkload(t, 20)
	cp := &countingPartitioner{inner: traclus.PartitionMDL()}
	p := traclus.New(
		traclus.WithConfig(traclus.Config{Eps: 30, MinLns: 2, Workers: 4}),
		traclus.WithPartitioner(cp),
		traclus.WithGrouper(singleClusterGrouper{}),
		traclus.WithRepresentativeBuilder(markerBuilder{}),
	)
	res, err := p.Run(context.Background(), trs)
	if err != nil {
		t.Fatal(err)
	}
	if cp.calls.Load() != 1 {
		t.Errorf("custom partitioner called %d times, want 1", cp.calls.Load())
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("custom grouper produced %d clusters, want 1", len(res.Clusters))
	}
	if res.NoiseSegments != 0 {
		t.Errorf("noise = %d, want 0 (grouper labelled everything)", res.NoiseSegments)
	}
	want := []traclus.Point{traclus.Pt(1, 2), traclus.Pt(3, 4)}
	if !reflect.DeepEqual(res.Clusters[0].Representative, want) {
		t.Errorf("representative = %v, want marker %v", res.Clusters[0].Representative, want)
	}
}

// TestPipelineGroupOPTICS exercises the exposed OPTICS grouping variant
// end-to-end: it must produce a structurally consistent result on corridor
// data (the counts add up; the strong corridors survive) and be
// deterministic.
func TestPipelineGroupOPTICS(t *testing.T) {
	trs := synth.CorridorScene(2, 10, 24, 4, 11)
	cfg := traclus.Config{Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40}
	p := traclus.New(traclus.WithConfig(cfg), traclus.WithGrouper(traclus.GroupOPTICS()))
	res, err := p.Run(context.Background(), trs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("OPTICS grouping found no clusters on the corridor scene")
	}
	members := 0
	for _, c := range res.Clusters {
		members += len(c.Segments)
		if len(c.Trajectories) < int(cfg.MinLns) {
			t.Errorf("cluster with %d trajectories survived the cardinality filter (MinLns %v)",
				len(c.Trajectories), cfg.MinLns)
		}
	}
	if members+res.NoiseSegments != res.TotalSegments {
		t.Errorf("members %d + noise %d != total %d", members, res.NoiseSegments, res.TotalSegments)
	}
	if res.DistCalls() == 0 {
		t.Error("OPTICS grouping reported zero distance calls")
	}
	again, err := p.Run(context.Background(), trs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Clusters, again.Clusters) {
		t.Error("OPTICS grouping is not deterministic")
	}

	// Cancellation reaches the OPTICS path too.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx, trs); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled OPTICS run: err = %v, want context.Canceled", err)
	}
}

// TestPipelineEstimateMatchesEstimateParameters pins the wrapper: the
// ctx-aware Estimate and the legacy EstimateParameters are the same seeded
// search.
func TestPipelineEstimateMatchesEstimateParameters(t *testing.T) {
	trs := equivalenceWorkload(t, 60)
	cfg := traclus.Config{CostAdvantage: 15, MinSegmentLength: 40, Workers: 4}
	legacy, err := traclus.EstimateParameters(trs, 5, 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	piped, err := traclus.New(traclus.WithConfig(cfg)).Estimate(context.Background(), trs, 5, 60)
	if err != nil {
		t.Fatal(err)
	}
	if legacy != piped {
		t.Errorf("Estimate = %+v, EstimateParameters = %+v", piped, legacy)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := traclus.New(traclus.WithConfig(cfg)).Estimate(ctx, trs, 5, 60); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Estimate: err = %v, want context.Canceled", err)
	}
}

// TestEstimateParametersValidatesConfig pins the satellite fix: NaN/Inf
// weights and a negative CostAdvantage must be rejected with the typed
// ConfigError before the annealing pass, while zero Eps/MinLns (the fields
// estimation exists to find) stay legal.
func TestEstimateParametersValidatesConfig(t *testing.T) {
	trs := equivalenceWorkload(t, 10)
	bad := []traclus.Config{
		{Weights: traclus.Weights{Perpendicular: math.NaN(), Parallel: 1, Angle: 1}},
		{Weights: traclus.Weights{Perpendicular: math.Inf(1), Parallel: 1, Angle: 1}},
		{CostAdvantage: -3},
		{MinSegmentLength: math.NaN()},
		{MinTrajs: -1},
		{Gamma: -2},
	}
	for i, cfg := range bad {
		_, err := traclus.EstimateParameters(trs, 5, 60, cfg)
		var ce *traclus.ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("case %d (%+v): err = %v, want *ConfigError", i, cfg, err)
		}
	}
	// The legal baseline: zero Eps/MinLns plus sane extras estimates fine.
	if _, err := traclus.EstimateParameters(trs, 5, 60, traclus.Config{CostAdvantage: 15}); err != nil {
		t.Errorf("valid estimation config rejected: %v", err)
	}
}
