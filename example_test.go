package traclus_test

import (
	"context"
	"fmt"
	"reflect"

	traclus "repro"
)

// corridorExample builds the five-trajectory corridor scene shared by the
// runnable examples: a common horizontal corridor that fans out at the end.
func corridorExample() []traclus.Trajectory {
	var trs []traclus.Trajectory
	for i := 0; i < 5; i++ {
		dy := float64(i) * 2
		tail := float64(i-2) * 50
		trs = append(trs, traclus.NewTrajectory(i, []traclus.Point{
			traclus.Pt(0, 100+dy),
			traclus.Pt(100, 100+dy),
			traclus.Pt(200, 100+dy),
			traclus.Pt(300, 100+dy),
			traclus.Pt(400, 100+dy+tail),
		}))
	}
	return trs
}

// ExamplePipeline is the primary entrypoint: a Pipeline built from
// functional options, run under a context. Cancelling the context would
// abort the clustering within one work item and return ctx.Err().
func ExamplePipeline() {
	p := traclus.New(traclus.WithConfig(traclus.Config{Eps: 25, MinLns: 4}))
	res, err := p.Run(context.Background(), corridorExample())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("clusters: %d\n", len(res.Clusters))
	fmt.Printf("participants: %v\n", res.Clusters[0].Trajectories)
	// Output:
	// clusters: 1
	// participants: [0 1 2 3 4]
}

// ExamplePipeline_progress installs a progress hook. The hook is invoked
// serially with phases in pipeline order and non-decreasing fractions; each
// phase opens at fraction 0 and closes with exactly one fraction-1 event,
// which is what this example prints (intermediate events are throttled and
// input-dependent, so it reports only the completions).
func ExamplePipeline_progress() {
	p := traclus.New(
		traclus.WithConfig(traclus.Config{Eps: 25, MinLns: 4}),
		traclus.WithProgress(func(ev traclus.ProgressEvent) {
			if ev.Fraction == 1 {
				fmt.Printf("%s done\n", ev.Phase)
			}
		}),
	)
	if _, err := p.Run(context.Background(), corridorExample()); err != nil {
		fmt.Println(err)
		return
	}
	// Output:
	// partition done
	// group done
	// represent done
}

// ExampleRun clusters five trajectories that share a horizontal corridor
// before fanning out, and prints the discovered common sub-trajectory's
// participants.
func ExampleRun() {
	var trs []traclus.Trajectory
	for i := 0; i < 5; i++ {
		dy := float64(i) * 2
		tail := float64(i-2) * 50
		trs = append(trs, traclus.NewTrajectory(i, []traclus.Point{
			traclus.Pt(0, 100+dy),
			traclus.Pt(100, 100+dy),
			traclus.Pt(200, 100+dy),
			traclus.Pt(300, 100+dy),
			traclus.Pt(400, 100+dy+tail),
		}))
	}
	res, err := traclus.Run(trs, traclus.Config{Eps: 25, MinLns: 4})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("clusters: %d\n", len(res.Clusters))
	fmt.Printf("participants: %v\n", res.Clusters[0].Trajectories)
	// Output:
	// clusters: 1
	// participants: [0 1 2 3 4]
}

// ExampleConfig_workers shows that Workers is purely a throughput knob:
// running the pipeline serially (Workers: 1) and on many goroutines
// (Workers: 8) yields bit-identical clusters, representatives included.
func ExampleConfig_workers() {
	var trs []traclus.Trajectory
	for i := 0; i < 8; i++ {
		dy := float64(i) * 2
		trs = append(trs, traclus.NewTrajectory(i, []traclus.Point{
			traclus.Pt(0, 100+dy),
			traclus.Pt(120, 100+dy),
			traclus.Pt(240, 100+dy),
			traclus.Pt(360, 100+dy),
			traclus.Pt(480, 100+dy+float64(i-4)*40),
		}))
	}
	serial, err := traclus.Run(trs, traclus.Config{Eps: 25, MinLns: 5, Workers: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	parallel, err := traclus.Run(trs, traclus.Config{Eps: 25, MinLns: 5, Workers: 8})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("clusters: %d\n", len(parallel.Clusters))
	fmt.Printf("parallel identical to serial: %v\n", reflect.DeepEqual(serial.Clusters, parallel.Clusters))
	// Output:
	// clusters: 1
	// parallel identical to serial: true
}

// ExamplePartition shows phase one alone: the MDL-chosen characteristic
// points of a single trajectory with one sharp turn.
func ExamplePartition() {
	tr := traclus.NewTrajectory(0, []traclus.Point{
		traclus.Pt(0, 0), traclus.Pt(100, 0), traclus.Pt(200, 0),
		traclus.Pt(200, 100), traclus.Pt(200, 200),
	})
	fmt.Println(traclus.Partition(tr, 0))
	// Output:
	// [0 2 4]
}

// ExampleDistance evaluates the three-component segment distance on the
// Appendix A configuration: parallel same-direction (200) vs the same
// location traversed in the opposite direction (400).
func ExampleDistance() {
	l1 := traclus.Segment{Start: traclus.Pt(0, 0), End: traclus.Pt(200, 0)}
	l2 := traclus.Segment{Start: traclus.Pt(100, 100), End: traclus.Pt(300, 100)}
	l3 := traclus.Segment{Start: traclus.Pt(300, 100), End: traclus.Pt(100, 100)}
	fmt.Printf("%.0f %.0f\n", traclus.Distance(l1, l2), traclus.Distance(l1, l3))
	// Output:
	// 200 400
}
