// Quickstart: cluster a handful of hand-written trajectories and print the
// common sub-trajectory TRACLUS discovers.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	traclus "repro"
)

func main() {
	// Seven trajectories: five share a west-to-east corridor near y=50
	// before fanning out; two wander elsewhere. Whole-trajectory
	// clustering sees seven dissimilar curves — TRACLUS sees the corridor.
	var trs []traclus.Trajectory
	for i := 0; i < 5; i++ {
		dy := float64(i-2) * 4
		tail := float64(i-2) * 40
		trs = append(trs, traclus.NewTrajectory(i, []traclus.Point{
			traclus.Pt(0, 50+dy*3),
			traclus.Pt(40, 50+dy),
			traclus.Pt(80, 50+dy),
			traclus.Pt(120, 50+dy),
			traclus.Pt(160, 50+dy),
			traclus.Pt(200, 50+dy+tail/2),
			traclus.Pt(240, 50+dy+tail),
		}))
	}
	trs = append(trs,
		traclus.NewTrajectory(5, []traclus.Point{
			traclus.Pt(0, 150), traclus.Pt(60, 180), traclus.Pt(120, 150), traclus.Pt(180, 185),
		}),
		traclus.NewTrajectory(6, []traclus.Point{
			traclus.Pt(240, 0), traclus.Pt(180, 10), traclus.Pt(120, 0), traclus.Pt(60, 12),
		}),
	)

	res, err := traclus.Run(trs, traclus.Config{
		Eps:    25, // neighborhood radius in coordinate units
		MinLns: 4,  // a cluster needs at least 4 nearby segments
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("input: %d trajectories -> %d segments\n", len(trs), res.TotalSegments)
	fmt.Printf("found %d cluster(s), %d noise segments\n", len(res.Clusters), res.NoiseSegments)
	for i, c := range res.Clusters {
		fmt.Printf("cluster %d: %d segments from trajectories %v\n", i, len(c.Segments), c.Trajectories)
		fmt.Println("  representative trajectory (the common sub-trajectory):")
		for _, p := range c.Representative {
			fmt.Printf("    (%.1f, %.1f)\n", p.X, p.Y)
		}
	}
}
