// Subtrajectory: the paper's Figure-1 argument, executable. Five
// trajectories share a common sub-trajectory and then head in five
// different directions. Clustering them as wholes — here with a regression
// mixture model (Gaffney & Smyth) and with k-medoids over the DTW, LCSS,
// and EDR whole-trajectory distances — cannot expose the shared corridor;
// TRACLUS's partition-and-group framework finds it directly.
//
// Run with: go run ./examples/subtrajectory
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/geom"
	"repro/internal/regmix"
	"repro/internal/synth"
	"repro/internal/tsdist"

	traclus "repro"
)

func main() {
	trs := synth.Figure1(2, 7)
	corridor := geom.Segment{Start: geom.Pt(200, 300), End: geom.Pt(500, 300)}
	fmt.Println("five trajectories share the corridor y=300, x in [200,500]")

	// TRACLUS.
	res, err := traclus.Run(trs, traclus.Config{Eps: 30, MinLns: 3, CostAdvantage: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTRACLUS: %d cluster(s)\n", len(res.Clusters))
	for i, c := range res.Clusters {
		fmt.Printf("  cluster %d: representative within %.1f units of the corridor\n",
			i, meanDist(c.Representative, corridor))
	}

	// Whole-trajectory baseline 1: regression mixture (EM).
	fit, err := regmix.Fit(trs, regmix.Config{K: 3, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregression mixture (K=3, EM %d iters): assignments %v\n", fit.Iters, fit.Assign)
	for k, comp := range fit.Components {
		fmt.Printf("  component %d mean curve: %.1f units from the corridor\n",
			k, meanDist(comp.MeanCurve(40), corridor))
	}

	// Whole-trajectory baseline 2: k-medoids over classic trajectory
	// distances. Every trajectory is "far" from every other because the
	// divergent tails dominate — the corridor never surfaces.
	for _, d := range []struct {
		name string
		fn   tsdist.DistFunc
	}{
		{"DTW", func(a, b []geom.Point) float64 { return tsdist.DTW(a, b, -1) }},
		{"LCSS", func(a, b []geom.Point) float64 { return tsdist.LCSSDist(a, b, 25, -1) }},
		{"EDR", func(a, b []geom.Point) float64 { return tsdist.EDRDist(a, b, 25) }},
	} {
		dm := tsdist.Matrix(trs, d.fn)
		var min, max float64 = math.Inf(1), 0
		for i := range dm {
			for j := range dm {
				if i == j {
					continue
				}
				min = math.Min(min, dm[i][j])
				max = math.Max(max, dm[i][j])
			}
		}
		_, assign, err := tsdist.KMedoids(dm, 2, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: pairwise distance range [%.2f, %.2f], k-medoids(2) assignment %v\n",
			d.name, min, max, assign)
	}
	fmt.Println("\nonly the partition-and-group framework recovers the common sub-trajectory")
}

func meanDist(pts []geom.Point, s geom.Segment) float64 {
	if len(pts) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for _, p := range pts {
		sum += s.DistToPoint(p)
	}
	return sum / float64(len(pts))
}
