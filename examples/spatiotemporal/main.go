// Spatiotemporal: the paper's Section 7.1 (item 5) extension in action —
// "We will extend our algorithm to take account of temporal information
// during clustering." Two groups of commuters traverse the same road, one
// in the morning and one in the evening. Plain TRACLUS sees one corridor;
// the spatiotemporal geometry separates the morning and evening flows and
// reports each cluster's time window.
//
// Since the geometry layer landed this runs through the public Pipeline —
// the same indexed, parallel engine as planar runs — rather than the
// reference full-scan implementation: build with WithTemporalWeight and
// feed timed trajectories to RunTimed.
//
// Run with: go run ./examples/spatiotemporal
package main

import (
	"context"
	"fmt"
	"log"

	traclus "repro"
	"repro/internal/synth"
)

func main() {
	// One road, two temporally disjoint waves 10 h apart (seconds).
	trs := synth.RushHours(10, 20, 3, 5, 60, 45, 10*3600)

	cfg := traclus.Config{Eps: 25, MinLns: 5}
	ctx := context.Background()

	// wT = 0: the temporal component vanishes and the run reduces exactly
	// to planar TRACLUS — one cluster, the road itself.
	plain, err := traclus.New(
		traclus.WithConfig(cfg),
		traclus.WithTemporalWeight(0),
	).RunTimed(ctx, trs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("temporal weight 0 (plain TRACLUS): %d cluster(s) — the road\n", len(plain.Clusters))

	// wT > 0 adds wT·gap(interval_i, interval_j) to every segment pair;
	// the 10 h gap between waves dwarfs eps, so the flows separate.
	timed, err := traclus.New(
		traclus.WithConfig(cfg),
		traclus.WithTemporalWeight(0.01),
	).RunTimed(ctx, trs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("temporal weight 0.01:              %d cluster(s) — the flows\n", len(timed.Clusters))
	for i, c := range timed.Clusters {
		w := timed.ClusterWindows()[i]
		fmt.Printf("  cluster %d: %d trajectories, window %s–%s\n",
			i, len(c.Trajectories), clock(w.Start), clock(w.End))
	}
}

func clock(sec float64) string {
	s := int(sec)
	return fmt.Sprintf("%02d:%02d", s/3600, s%3600/60)
}
