// Spatiotemporal: the paper's Section 7.1 (item 5) extension in action —
// "We will extend our algorithm to take account of temporal information
// during clustering." Two groups of commuters traverse the same road, one
// in the morning and one in the evening. Plain TRACLUS sees one corridor;
// the spatiotemporal variant separates the morning and evening flows and
// reports each cluster's time window.
//
// Run with: go run ./examples/spatiotemporal
package main

import (
	"fmt"
	"log"
	"math/rand"

	traclus "repro"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	var trs []traclus.TimedTrajectory
	// Morning flow: 08:00, evening flow: 18:00 (seconds of day).
	for _, flow := range []struct {
		name  string
		start float64
		base  int
	}{
		{"morning", 8 * 3600, 0},
		{"evening", 18 * 3600, 10},
	} {
		for i := 0; i < 10; i++ {
			tr := traclus.TimedTrajectory{ID: flow.base + i, Weight: 1, Label: flow.name}
			t := flow.start + rng.Float64()*600
			for s := 0; s <= 30; s++ {
				x := 50 + 28*float64(s)
				tr.Points = append(tr.Points, traclus.Pt(
					x+rng.NormFloat64()*2, 200+rng.NormFloat64()*4))
				tr.Times = append(tr.Times, t)
				t += 45 + rng.Float64()*20 // ~1 min per hop
			}
			trs = append(trs, tr)
		}
	}

	cfg := traclus.Config{Eps: 25, MinLns: 5}

	plain, err := traclus.RunTimed(trs, cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("temporal weight 0 (plain TRACLUS): %d cluster(s) — the road\n", len(plain.Clusters))

	timed, err := traclus.RunTimed(trs, cfg, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("temporal weight 0.01:              %d cluster(s) — the flows\n", len(timed.Clusters))
	for i, c := range timed.Clusters {
		fmt.Printf("  cluster %d: %d trajectories, window %02.0f:%02.0f–%02.0f:%02.0f\n",
			i, len(c.Trajectories),
			c.Window.Start/3600, mod60(c.Window.Start),
			c.Window.End/3600, mod60(c.Window.End))
	}
}

func mod60(sec float64) float64 {
	return float64(int(sec)%3600) / 60
}
