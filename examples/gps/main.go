// GPS: clustering real-world latitude/longitude tracks with the geodesic
// geometry. Raw degrees are not a plane — one degree of longitude is
// cos(latitude) shorter than a degree of latitude — so the geodesic
// geometry projects every trajectory into a local equirectangular frame in
// METERS before partitioning, clusters there, and carries the frame in the
// model so queries and snapshots project identically. Eps is therefore a
// distance in meters, the natural unit for GPS work.
//
// Run with: go run ./examples/gps
package main

import (
	"context"
	"fmt"
	"log"

	traclus "repro"
	"repro/internal/synth"
)

func main() {
	// Commuter tracks along 3 corridors around a city center,
	// X=longitude, Y=latitude in degrees, ≈5.5 km long, ≈45 m jitter.
	trs := synth.GPSTracks(3, 8, 25, 7)

	res, err := traclus.New(
		traclus.WithConfig(traclus.Config{
			Eps:              150, // meters, thanks to the working frame
			MinLns:           5,
			MinSegmentLength: 100,
		}),
		traclus.WithGeometry(traclus.GeodesicGeometry()),
	).Run(context.Background(), trs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d GPS tracks -> %d corridor cluster(s), %d noise segments\n",
		len(trs), len(res.Clusters), res.NoiseSegments)

	// Representatives come back in the working frame; the model's frame
	// converts them to lat/lon for display (or a map).
	frame := res.Geometry().Frame
	for i, c := range res.Clusters {
		if len(c.Representative) == 0 {
			continue
		}
		a := frame.FromWorking(c.Representative[0])
		b := frame.FromWorking(c.Representative[len(c.Representative)-1])
		fmt.Printf("  cluster %d: %d trajectories, representative %.4f,%.4f -> %.4f,%.4f\n",
			i, len(c.Trajectories), a.Y, a.X, b.Y, b.X)
	}
}
