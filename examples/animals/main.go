// Animals: the paper's second motivating application — the effects of
// roads and traffic on animal movements (Section 1). This example builds
// the Starkey-like telemetry stand-in for elk and deer, clusters each with
// TRACLUS, and reports the shared movement corridors together with how many
// distinct animals use each one (the trajectory cardinality of
// Definition 10 — the quantity a zoologist would correlate with road
// traffic levels).
//
// Run with: go run ./examples/animals
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/synth"
	"repro/internal/trackio"

	traclus "repro"
)

func main() {
	for _, species := range []struct {
		name string
		cfg  synth.AnimalConfig
		eps  float64
		min  float64
	}{
		{"elk", smaller(synth.ElkConfig()), 27, 9},
		{"deer", smaller(synth.DeerConfig()), 29, 8},
	} {
		// Round-trip through the telemetry TSV format.
		var buf bytes.Buffer
		if err := trackio.WriteTelemetry(&buf, synth.AnimalMovements(species.cfg)); err != nil {
			log.Fatal(err)
		}
		trs, err := trackio.ReadTelemetry(&buf, species.name)
		if err != nil {
			log.Fatal(err)
		}

		res, err := traclus.Run(trs, traclus.Config{
			Eps:              species.eps,
			MinLns:           species.min,
			CostAdvantage:    15,
			MinSegmentLength: 40,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d animals, %d corridors discovered\n",
			species.name, len(trs), len(res.Clusters))
		for i, c := range res.Clusters {
			var length float64
			for j := 1; j < len(c.Representative); j++ {
				length += c.Representative[j-1].Dist(c.Representative[j])
			}
			fmt.Printf("  corridor %d: used by %d of %d animals, ~%.0f units long\n",
				i, len(c.Trajectories), len(trs), length)
		}
	}
}

// smaller trims the generator so the example runs in a couple of seconds;
// remove to reproduce the full-scale Figure 21/22 runs.
func smaller(cfg synth.AnimalConfig) synth.AnimalConfig {
	cfg.PointsPer = 400
	return cfg
}
