// Sweep: one build, every density. TRACLUS's ε is its most consequential
// knob — too small fractures corridors into noise, too large fuses them —
// and the paper tunes it by re-clustering at each candidate. This example
// builds a served model over synthetic hurricane tracks once, then walks
// the whole quality curve and reconstructs the clustering at three very
// different densities from the model's merge structure (internal/dendro),
// without ever re-running a distance kernel. The same queries are exposed
// over HTTP by traclusd as GET /v1/models/{name}/sweep and
// GET /v1/models/{name}/clusters?eps=X.
//
// Run with: go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/service"
	"repro/internal/synth"

	traclus "repro"
)

func main() {
	cfg := synth.DefaultHurricaneConfig()
	cfg.NumTracks = 200
	trs := synth.Hurricanes(cfg)
	fmt.Printf("generated %d storm tracks\n", len(trs))

	// An auto-estimated build: the §4.4 annealer searches ε ∈ [5, 60] by
	// evaluating candidates against one dendrogram precompute — which the
	// finished model keeps, so every sweep below is free of index work.
	model, err := service.BuildCtx(context.Background(), "storms", trs,
		traclus.Config{CostAdvantage: 15, MinSegmentLength: 40},
		&service.EstimateRange{Lo: 5, Hi: 60}, nil)
	if err != nil {
		log.Fatal(err)
	}
	sum := model.Summary()
	fmt.Printf("built %q: eps=%.1f minlns=%.1f, %d clusters, QMeasure=%.1f\n\n",
		sum.Name, sum.Eps, sum.MinLns, sum.Clusters, sum.QMeasure)

	// The quality curve across [ε/2, 2ε]: every point is an exact
	// clustering at that density, cut from the one merge structure.
	points, err := model.SweepQuality(context.Background(), sum.Eps/2, 2*sum.Eps, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("eps     clusters  noise%   total SSE  QMeasure")
	best := points[0]
	for _, p := range points {
		marker := ""
		if p.QMeasure < best.QMeasure {
			best = p
		}
		if p.Eps == sum.Eps {
			marker = "  ← model's ε"
		}
		fmt.Printf("%6.1f  %8d  %5.1f%%  %9.1f  %8.1f%s\n",
			p.Eps, p.Clusters, 100*p.NoiseFraction, p.TotalSSE, p.QMeasure, marker)
	}
	fmt.Printf("\ncurve minimum at eps=%.1f (QMeasure %.1f)\n\n", best.Eps, best.QMeasure)

	// Materialise the clustering at three densities — sparse, the curve's
	// knee, and dense — representatives included.
	for _, eps := range []float64{sum.Eps / 2, best.Eps, 2 * sum.Eps} {
		cut, err := model.ClustersAt(context.Background(), eps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("eps=%.1f: %d clusters, %d/%d noise segments\n",
			cut.Eps, len(cut.Clusters), cut.NoiseSegments, cut.TotalSegments)
		for _, c := range cut.Clusters {
			fmt.Printf("  cluster %d: %d segments, %d storms, representative of %d points\n",
				c.Cluster, c.Segments, len(c.Trajectories), len(c.Representative))
		}
	}
}
