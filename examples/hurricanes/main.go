// Hurricanes: the paper's first motivating application — discovering the
// common behaviours of Atlantic hurricane tracks (landfall forecasting,
// Section 1). This example generates the synthetic Best-Track stand-in,
// round-trips it through the on-disk format, estimates ε and MinLns with
// the Section 4.4 heuristic, clusters, and writes an SVG of the result.
//
// Run with: go run ./examples/hurricanes
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"repro/internal/render"
	"repro/internal/synth"
	"repro/internal/trackio"

	traclus "repro"
)

func main() {
	// Generate the Best-Track stand-in and parse it back, exactly as a
	// user would load the real file.
	cfg := synth.DefaultHurricaneConfig()
	cfg.NumTracks = 200 // keep the example quick; use 570 for paper scale
	var buf bytes.Buffer
	if err := trackio.WriteBestTrack(&buf, synth.Hurricanes(cfg)); err != nil {
		log.Fatal(err)
	}
	trs, err := trackio.ReadBestTrack(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d storm tracks\n", len(trs))

	runCfg := traclus.Config{
		CostAdvantage:    15, // suppress partitioning at telemetry jitter
		MinSegmentLength: 40,
	}

	// Parameter heuristic (Section 4.4): entropy-minimising ε, then
	// MinLns from avg|Nε|.
	est, err := traclus.EstimateParameters(trs, 4, 60, runCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heuristic suggests eps=%.1f, MinLns in %d..%d (avg|Neps|=%.2f)\n",
		est.Eps, est.MinLnsLo, est.MinLnsHi, est.AvgNeighbors)

	// Cluster at the paper's visually chosen optimum for this world.
	runCfg.Eps, runCfg.MinLns = 30, 6
	res, err := traclus.Run(trs, runCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusters=%d (segments=%d, noise=%d)\n",
		len(res.Clusters), res.TotalSegments, res.NoiseSegments)
	var reps [][]traclus.Point
	for i, c := range res.Clusters {
		reps = append(reps, c.Representative)
		dir := "mixed"
		if n := len(c.Representative); n >= 2 {
			dx := c.Representative[n-1].X - c.Representative[0].X
			dy := c.Representative[n-1].Y - c.Representative[0].Y
			switch {
			case dy > 100:
				dir = "south-to-north (recurve corridor)"
			case dx < -100:
				dir = "east-to-west (trade-wind band)"
			case dx > 100:
				dir = "west-to-east (extratropical band)"
			}
		}
		fmt.Printf("cluster %d: %d tracks, %s\n", i, len(c.Trajectories), dir)
	}

	if err := os.WriteFile("hurricane_clusters.svg",
		[]byte(render.ClusterSVG(trs, reps)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote hurricane_clusters.svg")
}
