package traclus

// Incremental appends: cluster under updates without rebuilding the model.
// An Appender is a Pipeline run that keeps its working state — the grown
// shared index and the incremental ε-graph of internal/segclust — so that
// appending Δ trajectories costs O(Δ) ε-range queries plus two cheap O(n)
// label passes, instead of the full partition+group+sweep rebuild.
//
// The contract is append-built ≡ batch-built: after any sequence of appends
// the Result equals a from-scratch run over the concatenated trajectories —
// same clusters, representatives, RemovedClusters, and cluster windows (the
// one legitimate difference is DistCalls; see internal/segclust's
// incremental package comment). Two pins make this hold across geometries:
// a geodesic appender projects appended trajectories through the frame the
// initial build resolved (a batch run over the concatenation may resolve a
// different frame from the enlarged bounds — batch comparisons must pin the
// frame via WithGeometry), and an estimation appender keeps the ε/MinLns
// the initial build estimated (parameters are frozen at build time; they are
// not re-estimated per append).
//
// The sweep phase re-runs only for dirtied clusters: a cluster whose member
// set is unchanged from the previous epoch keeps its representative — the
// sweep is a deterministic function of (member segments, weights, MinLns, γ),
// all unchanged — so appends that touch k clusters sweep k clusters, not all
// of them. The multi-ε dendrogram is NOT maintained incrementally: an
// appended Result carries a nil Dendrogram, and serving layers rebuild it
// lazily on the next sweep query (the pinned invalidate-and-rebuild choice;
// see ARCHITECTURE.md "Incremental updates").

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/core"
	"repro/internal/dendro"
	"repro/internal/geometry"
	"repro/internal/par"
	"repro/internal/params"
	"repro/internal/segclust"
	"repro/internal/sweep"
)

// Appender is a clustering that stays current under appended trajectories.
// Build one with Pipeline.NewAppender (spatial or geodesic input) or
// Pipeline.NewTimedAppender (spatiotemporal input); each Append folds new
// trajectories in and returns the updated Result. An Appender is safe for
// concurrent use — appends serialise on an internal lock — but each append
// mutates the retained index, so Results are immutable snapshots while the
// Appender itself is the single writer.
type Appender struct {
	mu    sync.Mutex
	p     *Pipeline
	cfg   Config // resolved: post-estimation ε/MinLns, geodesic frame filled in
	ccfg  core.Config
	inc   *segclust.Incremental
	res   *Result
	timed bool
}

// Result returns the clustering over everything appended so far. The value
// is an immutable snapshot; later appends produce new Results.
func (a *Appender) Result() *Result {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.res
}

// NewAppender runs the pipeline over trs exactly like Run — same phases,
// same progress events, same Result, bit-identical at every worker count —
// but retains the grouping state so Append can extend it. It requires the
// default partition and grouping stages (the incremental update rule is the
// ε-graph's; custom stages have no incremental form) and an index backend
// that supports growth (all three built-ins do).
func (p *Pipeline) NewAppender(ctx context.Context, trs []Trajectory) (*Appender, error) {
	cfg := p.cfg
	if p.est != nil {
		if err := cfg.validateEstimation(); err != nil {
			return nil, fmt.Errorf("traclus: %w", err)
		}
		if !(p.est.lo > 0) || !(p.est.hi > p.est.lo) {
			return nil, fmt.Errorf("traclus: %w", &ConfigError{
				Field: "Estimation", Value: [2]float64{p.est.lo, p.est.hi},
				Reason: "must satisfy 0 < lo < hi"})
		}
	} else if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("traclus: %w", err)
	}
	if err := p.appendableStages(); err != nil {
		return nil, err
	}
	if err := core.ValidateTrajectories(trs); err != nil {
		return nil, fmt.Errorf("traclus: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Geometry.Kind == geometry.Spatiotemporal {
		return nil, fmt.Errorf("traclus: %w", &ConfigError{
			Field: "Geometry", Value: cfg.Geometry.Kind.String(),
			Reason: "spatiotemporal appenders take timed trajectories; use Pipeline.NewTimedAppender"})
	}
	if cfg.Geometry.Kind == geometry.Geodesic {
		trs, cfg = projectGeodesic(trs, cfg)
	}
	ccfg := p.coreConfig(cfg)
	rep := newProgressReporter(p.progress)

	rep.begin(PhasePartition, len(trs))
	items, err := runPartition(ctx, p.partition, trs, cfg, rep)
	if err != nil {
		return nil, stageError(ctx, PhasePartition, err)
	}
	rep.finish()

	shared := segclust.NewSharedIndexFor(items, ccfg.Distance, ccfg.ResolvedBackend())
	return p.finishAppender(ctx, shared, cfg, rep, false)
}

// NewTimedAppender is NewAppender for timed trajectories: the
// spatiotemporal entry point, mirroring RunTimed. Appends go through
// Appender.AppendTimed and the Result carries per-cluster time windows.
func (p *Pipeline) NewTimedAppender(ctx context.Context, trs []TimedTrajectory) (*Appender, error) {
	cfg := p.cfg
	if p.est != nil {
		if err := cfg.validateEstimation(); err != nil {
			return nil, fmt.Errorf("traclus: %w", err)
		}
		if !(p.est.lo > 0) || !(p.est.hi > p.est.lo) {
			return nil, fmt.Errorf("traclus: %w", &ConfigError{
				Field: "Estimation", Value: [2]float64{p.est.lo, p.est.hi},
				Reason: "must satisfy 0 < lo < hi"})
		}
	} else if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("traclus: %w", err)
	}
	if cfg.Geometry.Kind == geometry.Geodesic {
		return nil, fmt.Errorf("traclus: %w", &ConfigError{
			Field: "Geometry", Value: cfg.Geometry.Kind.String(),
			Reason: "geodesic appenders take lat/lon trajectories via Pipeline.NewAppender"})
	}
	if err := p.appendableStages(); err != nil {
		return nil, err
	}
	if err := core.ValidateTimedTrajectories(trs); err != nil {
		return nil, fmt.Errorf("traclus: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ccfg := p.coreConfig(cfg)
	rep := newProgressReporter(p.progress)

	rep.begin(PhasePartition, len(trs))
	items, ivs, err := core.PartitionAllTimedCtx(ctx, trs, ccfg, rep.tick)
	if err != nil {
		return nil, stageError(ctx, PhasePartition, err)
	}
	rep.finish()

	shared := segclust.NewSharedIndexTimed(items, ivs, cfg.Geometry.WT, ccfg.Distance, ccfg.ResolvedBackend())
	return p.finishAppender(ctx, shared, cfg, rep, true)
}

// appendableStages rejects pipeline configurations the incremental path
// cannot honour: only the default MDL partition and DBSCAN grouping stages
// have an incremental form (custom RepresentativeBuilders are fine — they
// just disable per-cluster sweep reuse).
func (p *Pipeline) appendableStages() error {
	if _, ok := p.partition.(mdlPartitioner); !ok {
		return fmt.Errorf("traclus: appenders require the default MDL partition stage (a custom Partitioner has no incremental form)")
	}
	if _, ok := p.group.(dbscanGrouper); !ok {
		return fmt.Errorf("traclus: appenders require the default DBSCAN grouping stage (a custom Grouper has no incremental form)")
	}
	return nil
}

// finishAppender is the shared back half of NewAppender and
// NewTimedAppender: optional estimation against the shared index, the
// incremental grouping build, assembly, and the first Result.
func (p *Pipeline) finishAppender(ctx context.Context, shared *segclust.SharedIndex, cfg Config, rep *progressReporter, timed bool) (*Appender, error) {
	if !shared.Searcher().Growable() {
		return nil, fmt.Errorf("traclus: appenders require a growable index backend (custom backend %q does not implement growth)", p.coreConfig(cfg).ResolvedBackend().Name())
	}
	var estimated *Estimate
	var den *dendro.Dendrogram
	var err error
	if p.est != nil {
		rep.begin(PhaseEstimate, params.DefaultIterations+1)
		an := params.AnnealOptions{Workers: cfg.Workers, OnEval: rep.tick}
		var est params.Estimate
		if !math.IsInf(p.est.hi, 1) {
			den, err = dendro.FromShared(ctx, shared, p.est.hi, cfg.Workers)
			if err == nil {
				est, err = params.EstimateEpsDendroCtx(ctx, den, p.est.lo, p.est.hi, an)
			}
		} else {
			est, err = params.EstimateEpsSharedCtx(ctx, shared, p.est.lo, p.est.hi, an)
		}
		if err != nil {
			return nil, stageError(ctx, PhaseEstimate, err)
		}
		rep.finish()
		cfg.Eps = est.Eps
		cfg.MinLns = float64(est.MinLnsLo+est.MinLnsHi) / 2
		estimated = &Estimate{
			Eps:          est.Eps,
			Entropy:      est.Entropy,
			AvgNeighbors: est.AvgNeighbors,
			MinLnsLo:     est.MinLnsLo,
			MinLnsHi:     est.MinLnsHi,
		}
	}
	ccfg := p.coreConfig(cfg)
	items := shared.Items()

	rep.begin(PhaseGroup, len(items))
	inc, err := segclust.NewIncrementalCtx(ctx, shared, ccfg.Segclust(), rep.tick)
	if err != nil {
		return nil, stageError(ctx, PhaseGroup, err)
	}
	grouping := inc.Result()
	rep.finish()

	rep.begin(PhaseRepresent, len(grouping.Clusters))
	out, err := core.AssembleCtx(ctx, items, grouping, ccfg, p.representFunc(cfg), rep.tick)
	if err != nil {
		return nil, stageError(ctx, PhaseRepresent, err)
	}
	rep.finish()
	res := newResult(out, ccfg)
	res.Estimated = estimated
	res.dendro = den
	if timed {
		ivs, _ := shared.Temporal()
		res.itemIvs = ivs
		res.windows = clusterWindows(out, ivs)
	}
	return &Appender{p: p, cfg: cfg, ccfg: ccfg, inc: inc, res: res, timed: timed}, nil
}

// Append folds trs into the clustering and returns the updated Result: the
// new trajectories are MDL-partitioned, their segments run ε-range queries
// against the grown index, the ε-graph absorbs the new edges, and only
// dirtied clusters re-sweep. Empty trs returns the current Result.
//
// A failed or cancelled Append leaves the Appender unusable for further
// appends (the grown index and the derived labels may disagree); the last
// successful Result remains valid, and the caller rebuilds from scratch.
func (a *Appender) Append(ctx context.Context, trs []Trajectory) (*Result, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.timed {
		return nil, fmt.Errorf("traclus: this appender was built from timed trajectories; use AppendTimed")
	}
	if err := core.ValidateTrajectories(trs); err != nil {
		return nil, fmt.Errorf("traclus: %w", err)
	}
	if len(trs) == 0 {
		return a.res, nil
	}
	if a.cfg.Geometry.Kind == geometry.Geodesic {
		// The frame was resolved at build time and rides a.cfg, so appended
		// trajectories project into the identical working plane.
		trs, _ = projectGeodesic(trs, a.cfg)
	}
	rep := newProgressReporter(a.p.progress)
	rep.begin(PhasePartition, len(trs))
	items, err := runPartition(ctx, a.p.partition, trs, a.cfg, rep)
	if err != nil {
		return nil, stageError(ctx, PhasePartition, err)
	}
	rep.finish()
	return a.appendItems(ctx, items, nil, rep)
}

// AppendTimed is Append for a timed (spatiotemporal) appender.
func (a *Appender) AppendTimed(ctx context.Context, trs []TimedTrajectory) (*Result, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.timed {
		return nil, fmt.Errorf("traclus: this appender was built from spatial trajectories; use Append")
	}
	if err := core.ValidateTimedTrajectories(trs); err != nil {
		return nil, fmt.Errorf("traclus: %w", err)
	}
	if len(trs) == 0 {
		return a.res, nil
	}
	rep := newProgressReporter(a.p.progress)
	rep.begin(PhasePartition, len(trs))
	items, ivs, err := core.PartitionAllTimedCtx(ctx, trs, a.ccfg, rep.tick)
	if err != nil {
		return nil, stageError(ctx, PhasePartition, err)
	}
	rep.finish()
	return a.appendItems(ctx, items, ivs, rep)
}

// appendItems is the shared core of Append and AppendTimed: incremental
// grouping, dirtied-cluster assembly, and the new Result. Caller holds mu.
func (a *Appender) appendItems(ctx context.Context, items []Item, ivs []Interval, rep *progressReporter) (*Result, error) {
	rep.begin(PhaseGroup, len(items))
	grouping, err := a.inc.AppendCtx(ctx, items, ivs)
	if err != nil {
		return nil, stageError(ctx, PhaseGroup, err)
	}
	rep.finish()

	all := a.inc.Shared().Items()
	rep.begin(PhaseRepresent, len(grouping.Clusters))
	var out *core.Output
	if repFn := a.p.representFunc(a.cfg); repFn != nil {
		// Custom builders get no reuse (they may not be deterministic); the
		// full assembly runs, exactly as a batch build would.
		out, err = core.AssembleCtx(ctx, all, grouping, a.ccfg, repFn, rep.tick)
	} else {
		out, err = a.assembleReusing(ctx, all, grouping, rep.tick)
	}
	if err != nil {
		return nil, stageError(ctx, PhaseRepresent, err)
	}
	rep.finish()

	res := newResult(out, a.ccfg)
	res.Estimated = a.res.Estimated
	// The dendrogram is deliberately NOT carried over: it describes the
	// pre-append items and every cut from it would be stale. Serving layers
	// rebuild it lazily from the appended result's items.
	if a.timed {
		allIvs, _ := a.inc.Shared().Temporal()
		res.itemIvs = allIvs
		res.windows = clusterWindows(out, allIvs)
	}
	a.res = res
	return res, nil
}

// assembleReusing is AssembleCtx with the dirtied-cluster sweep restriction:
// a cluster whose member list is identical to one from the previous epoch
// reuses that epoch's gathered segments and representative — the sweep is a
// deterministic function of members, weights, MinLns, and γ, none of which
// changed — so only clusters the append actually touched are re-swept.
// Clusters are keyed by first member: member lists are ascending and epochs
// share the item numbering, so equal first members + equal lists ⇔ the same
// cluster.
func (a *Appender) assembleReusing(ctx context.Context, items []Item, grouping *Grouping, onCluster func()) (*core.Output, error) {
	old := a.res.out
	oldByFirst := make(map[int]int, len(old.Clusters))
	for oi, oc := range old.Clusters {
		if len(oc.Members) > 0 {
			oldByFirst[oc.Members[0]] = oi
		}
	}
	swCfg := sweep.Config{MinLns: a.ccfg.MinLns, Gamma: a.ccfg.EffectiveGamma()}
	out := &core.Output{Items: items, Result: grouping}
	out.Clusters = make([]core.Cluster, len(grouping.Clusters))
	err := par.ForEachCtx(ctx, a.ccfg.Workers, len(grouping.Clusters), func(_, ci int) {
		c := grouping.Clusters[ci]
		if oi, ok := oldByFirst[c.Members[0]]; ok && slices.Equal(old.Clusters[oi].Members, c.Members) {
			oc := old.Clusters[oi]
			out.Clusters[ci] = core.Cluster{
				Segments:       oc.Segments,
				Members:        c.Members,
				Trajectories:   c.Trajectories,
				Representative: oc.Representative,
			}
			if onCluster != nil {
				onCluster()
			}
			return
		}
		segs := make([]Segment, len(c.Members))
		weights := make([]float64, len(c.Members))
		for i, m := range c.Members {
			segs[i] = items[m].Seg
			weights[i] = items[m].Weight
		}
		out.Clusters[ci] = core.Cluster{
			Segments:       segs,
			Members:        c.Members,
			Trajectories:   c.Trajectories,
			Representative: sweep.Representative(segs, weights, swCfg),
		}
		if onCluster != nil {
			onCluster()
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
