package traclus

// This file is the composable front door to the TRACLUS engine: a Pipeline
// built from functional options, whose three phases — Partitioner, Grouper,
// RepresentativeBuilder — are pluggable stage interfaces, whose Run takes a
// context.Context threaded through every fan-out loop, and whose Progress
// hook streams phase/fraction events. The historical Run(trs, Config) is a
// thin wrapper over a default Pipeline and stays bit-identical.
//
// Cancellation model: every phase checks ctx cooperatively at work-item
// granularity (one trajectory partition, one ε-neighborhood, one cluster
// sweep), so Run returns ctx.Err() within roughly one item's worth of work
// after the context ends — one scheduling quantum of the worker pool. A
// cancelled Run returns the bare ctx.Err() (match with errors.Is against
// context.Canceled / context.DeadlineExceeded); no partial Result is ever
// returned.
//
// Progress contract: the hook is invoked serially (never concurrently,
// though possibly from worker goroutines), phases arrive in pipeline order
// (partition → group → represent), fractions are non-decreasing within a
// phase, and every phase opens with Fraction 0 and closes with exactly one
// Fraction 1 event. Intermediate events are throttled, so the hook sees
// O(1/resolution) calls per phase, not one per work item. The hook must not
// block for long — it runs on the clustering's critical path — and must not
// call back into the Pipeline.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/dendro"
	"repro/internal/geom"
	"repro/internal/geometry"
	"repro/internal/lsdist"
	"repro/internal/optics"
	"repro/internal/params"
	"repro/internal/segclust"
	"repro/internal/sweep"
)

// Item is one clusterable line segment: a trajectory partition together
// with its source trajectory id and weight. It is what the partition stage
// produces and the grouping stage consumes.
type Item = segclust.Item

// Grouping is the outcome of the grouping stage: per-item cluster labels
// (ClusterOf, with -1 = noise), the clusters in canonical order, the count
// of density-connected sets removed by the trajectory-cardinality filter,
// and the number of exact distance evaluations. Custom Groupers should
// build one with GroupingFromLabels, which enforces the canonical shape the
// rest of the pipeline assumes (clusters numbered 0..k-1, members
// ascending, trajectory ids sorted).
type Grouping = segclust.Result

// SegmentCluster is one cluster of item indices within a Grouping.
type SegmentCluster = segclust.Cluster

// GroupingFromLabels canonicalises an arbitrary per-item labelling
// (labels[i] ≥ 0 = cluster id, negative = noise) into a Grouping, applying
// the Definition 10 trajectory-cardinality filter when minTrajs > 0.
// distCalls is recorded verbatim. It is the bridge for custom Groupers.
func GroupingFromLabels(items []Item, labels []int, minTrajs, distCalls int) *Grouping {
	return segclust.ResultFromLabels(items, labels, minTrajs, distCalls)
}

// Partitioner is the first pipeline stage: it turns raw trajectories into
// the pooled line segments the grouping stage clusters. Implementations
// must honour ctx (return ctx.Err() promptly once it ends) and produce
// output independent of cfg.Workers.
type Partitioner interface {
	Partition(ctx context.Context, trs []Trajectory, cfg Config) ([]Item, error)
}

// Grouper is the second pipeline stage: it clusters the pooled segments.
// Implementations must return a canonical Grouping (see GroupingFromLabels)
// with len(ClusterOf) == len(items), honour ctx, and produce output
// independent of cfg.Workers.
type Grouper interface {
	Group(ctx context.Context, items []Item, cfg Config) (*Grouping, error)
}

// RepresentativeBuilder is the third pipeline stage: it summarises one
// cluster's member segments (with their trajectory weights, index-aligned)
// as a representative trajectory. A nil, empty, or short return is allowed —
// clusters too compact for a stable representative keep a nil one.
// Implementations are called concurrently for distinct clusters and must
// not retain segs/weights.
type RepresentativeBuilder interface {
	Representative(ctx context.Context, segs []Segment, weights []float64, cfg Config) ([]Point, error)
}

// Phase identifies a pipeline phase in a ProgressEvent.
type Phase int

// The phases, in pipeline order: partition, then — only when the pipeline
// was built WithEstimation — estimate, then group and represent.
// PhaseEstimate's numeric value postdates the original three, so persisted
// phase numbers keep their meaning.
const (
	PhasePartition Phase = iota // MDL partitioning of trajectories
	PhaseGroup                  // density grouping of pooled segments
	PhaseRepresent              // per-cluster representative trajectories
	PhaseEstimate               // §4.4 ε/MinLns estimation (WithEstimation runs only)
)

func (p Phase) String() string {
	switch p {
	case PhasePartition:
		return "partition"
	case PhaseEstimate:
		return "estimate"
	case PhaseGroup:
		return "group"
	case PhaseRepresent:
		return "represent"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// ProgressEvent is one progress report from a running pipeline.
type ProgressEvent struct {
	// Phase is the phase the event belongs to.
	Phase Phase
	// Done and Total count the phase's work items (trajectories, segments,
	// clusters respectively). Total can be 0 for an empty phase.
	Done, Total int
	// Fraction is Done/Total in [0, 1]; an empty phase jumps 0 → 1.
	Fraction float64
}

// ProgressFunc receives ProgressEvents; see the progress contract in the
// package documentation above.
type ProgressFunc func(ProgressEvent)

// Pipeline is a reusable, configured TRACLUS pipeline. The zero
// configuration (New with only WithConfig) reproduces Run exactly; stages
// and hooks are swapped with the With* options. A Pipeline is immutable
// after New and safe for concurrent Run calls.
type Pipeline struct {
	cfg       Config
	backend   IndexBackend
	est       *estimateRange
	partition Partitioner
	group     Grouper
	represent RepresentativeBuilder
	progress  ProgressFunc
}

// estimateRange is the ε search interval of WithEstimation.
type estimateRange struct{ lo, hi float64 }

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithConfig sets the TRACLUS parameters (the same Config Run takes).
func WithConfig(cfg Config) Option { return func(p *Pipeline) { p.cfg = cfg } }

// WithWorkers overrides Config.Workers alone — parallelism for every phase
// (≤ 0 = all CPUs, 1 = serial; output is identical either way).
func WithWorkers(n int) Option { return func(p *Pipeline) { p.cfg.Workers = n } }

// WithPartitioner replaces the partition stage (default PartitionMDL).
func WithPartitioner(s Partitioner) Option { return func(p *Pipeline) { p.partition = s } }

// WithGrouper replaces the grouping stage (default GroupDBSCAN).
func WithGrouper(g Grouper) Option { return func(p *Pipeline) { p.group = g } }

// WithRepresentativeBuilder replaces the representative stage (default
// SweepRepresentatives).
func WithRepresentativeBuilder(b RepresentativeBuilder) Option {
	return func(p *Pipeline) { p.represent = b }
}

// WithProgress installs a progress hook.
func WithProgress(fn ProgressFunc) Option { return func(p *Pipeline) { p.progress = fn } }

// WithGeometry selects the run's geometry — coordinate frame and distance
// semantics — overriding Config.Geometry alone. PlanarGeometry (the
// default) is the paper's setting and is bit-identical to not setting a
// geometry at all; SpatiotemporalGeometry(wt) adds the temporal distance
// component and requires RunTimed; GeodesicGeometry clusters lat/lon input
// in a dataset-derived meter frame.
func WithGeometry(g Geometry) Option { return func(p *Pipeline) { p.cfg.Geometry = g } }

// WithTemporalWeight is shorthand for
// WithGeometry(SpatiotemporalGeometry(wt)): it switches the pipeline to the
// spatiotemporal geometry with temporal weight wt. wt = 0 keeps the
// spatiotemporal plumbing but reduces the distance bit-identically to
// planar — the equivalence the tests pin down.
func WithTemporalWeight(wt float64) Option {
	return func(p *Pipeline) { p.cfg.Geometry = SpatiotemporalGeometry(wt) }
}

// WithIndexBackend plugs a custom spatial-index backend into every phase
// that indexes segments — parameter estimation, ε-neighborhood grouping,
// and the classifier built over the run's result — overriding the
// Config.Index kind shim. The backend must honour the conservative
// candidate contract documented on IndexBackend; the built-in backends are
// GridIndexBackend, RTreeIndexBackend, and BruteIndexBackend.
func WithIndexBackend(b IndexBackend) Option { return func(p *Pipeline) { p.backend = b } }

// WithEstimation makes Run choose Eps and MinLns itself before clustering,
// with the Section 4.4 heuristic searched over ε ∈ [lo, hi] (Config.Eps and
// Config.MinLns are ignored; MinLns is set to the middle of the suggested
// range, avg|Nε|+2). The estimation shares the run's single spatial index
// with the grouping phase — one build serves both — and the chosen
// parameters are reported on Result.Estimated.
func WithEstimation(lo, hi float64) Option {
	return func(p *Pipeline) { p.est = &estimateRange{lo: lo, hi: hi} }
}

// New builds a Pipeline from functional options. With no options it is the
// paper's pipeline under the zero Config — set at least Eps and MinLns via
// WithConfig before Run.
func New(opts ...Option) *Pipeline {
	p := &Pipeline{}
	for _, opt := range opts {
		opt(p)
	}
	if p.partition == nil {
		p.partition = PartitionMDL()
	}
	if p.group == nil {
		p.group = GroupDBSCAN()
	}
	if p.represent == nil {
		p.represent = SweepRepresentatives()
	}
	return p
}

// Run executes the pipeline: partition → group → represent. It is the
// primary entrypoint of the package; the package-level Run is a wrapper
// over it with context.Background(). A done ctx aborts the run within one
// work item and returns ctx.Err(); otherwise the result is bit-identical
// for every Workers value, and — with default stages — bit-identical to
// the package-level Run.
func (p *Pipeline) Run(ctx context.Context, trs []Trajectory) (*Result, error) {
	cfg := p.cfg
	if p.est != nil {
		// Eps and MinLns are what the estimation phase exists to find;
		// everything else must still be well-formed.
		if err := cfg.validateEstimation(); err != nil {
			return nil, fmt.Errorf("traclus: %w", err)
		}
		if !(p.est.lo > 0) || !(p.est.hi > p.est.lo) {
			return nil, fmt.Errorf("traclus: %w", &ConfigError{
				Field: "Estimation", Value: [2]float64{p.est.lo, p.est.hi},
				Reason: "must satisfy 0 < lo < hi"})
		}
	} else if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("traclus: %w", err)
	}
	if err := core.ValidateTrajectories(trs); err != nil {
		return nil, fmt.Errorf("traclus: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Geometry.Kind == geometry.Spatiotemporal {
		return nil, fmt.Errorf("traclus: %w", &ConfigError{
			Field: "Geometry", Value: cfg.Geometry.Kind.String(),
			Reason: "spatiotemporal runs take timed trajectories; use Pipeline.RunTimed"})
	}
	if cfg.Geometry.Kind == geometry.Geodesic {
		trs, cfg = projectGeodesic(trs, cfg)
	}
	ccfg := p.coreConfig(cfg)
	rep := newProgressReporter(p.progress)

	rep.begin(PhasePartition, len(trs))
	items, err := runPartition(ctx, p.partition, trs, cfg, rep)
	if err != nil {
		return nil, stageError(ctx, PhasePartition, err)
	}
	rep.finish()

	// Single-build data flow: the one spatial index over the pooled items
	// serves parameter estimation and the grouping phase's ε-neighborhood
	// precompute alike. It is built only when a phase will query it (the
	// default grouper, or estimation); a fully custom Grouper indexes — or
	// doesn't — on its own terms.
	var shared *segclust.SharedIndex
	_, groupsShared := p.group.(sharedGrouper)
	if groupsShared || p.est != nil {
		shared = segclust.NewSharedIndexFor(items, ccfg.Distance, ccfg.ResolvedBackend())
	}

	var estimated *Estimate
	var den *dendro.Dendrogram
	if p.est != nil {
		rep.begin(PhaseEstimate, params.DefaultIterations+1)
		an := params.AnnealOptions{Workers: cfg.Workers, OnEval: rep.tick}
		var est params.Estimate
		if !math.IsInf(p.est.hi, 1) {
			// Build the multi-ε merge structure once at the range maximum:
			// the whole annealing walk cuts into it with zero further
			// distance calls, and the structure rides the Result so the
			// serving layer can persist it and answer sweep queries without
			// rebuilding.
			den, err = dendro.FromShared(ctx, shared, p.est.hi, cfg.Workers)
			if err == nil {
				est, err = params.EstimateEpsDendroCtx(ctx, den, p.est.lo, p.est.hi, an)
			}
		} else {
			est, err = params.EstimateEpsSharedCtx(ctx, shared, p.est.lo, p.est.hi, an)
		}
		if err != nil {
			return nil, stageError(ctx, PhaseEstimate, err)
		}
		rep.finish()
		cfg.Eps = est.Eps
		cfg.MinLns = float64(est.MinLnsLo+est.MinLnsHi) / 2
		ccfg = p.coreConfig(cfg)
		estimated = &Estimate{
			Eps:          est.Eps,
			Entropy:      est.Entropy,
			AvgNeighbors: est.AvgNeighbors,
			MinLnsLo:     est.MinLnsLo,
			MinLnsHi:     est.MinLnsHi,
		}
	}

	rep.begin(PhaseGroup, len(items))
	grouping, err := runGroup(ctx, p.group, items, cfg, shared, rep)
	if err != nil {
		return nil, stageError(ctx, PhaseGroup, err)
	}
	if grouping == nil || len(grouping.ClusterOf) != len(items) {
		labelled := 0
		if grouping != nil {
			labelled = len(grouping.ClusterOf)
		}
		return nil, fmt.Errorf("traclus: group stage labelled %d of %d items; use GroupingFromLabels to build a conformant Grouping",
			labelled, len(items))
	}
	rep.finish()

	rep.begin(PhaseRepresent, len(grouping.Clusters))
	out, err := core.AssembleCtx(ctx, items, grouping, ccfg, p.representFunc(cfg), rep.tick)
	if err != nil {
		return nil, stageError(ctx, PhaseRepresent, err)
	}
	rep.finish()
	res := newResult(out, ccfg)
	res.Estimated = estimated
	res.dendro = den
	return res, nil
}

// projectGeodesic resolves the equirectangular frame from the data bounds
// (unless a frame was pre-resolved — a snapshot restore or an explicit
// Config) and rewrites every trajectory into the working meter frame. The
// resolved frame is recorded on cfg.Geometry so it rides the Result and its
// snapshot, and later queries project identically.
func projectGeodesic(trs []Trajectory, cfg Config) ([]Trajectory, Config) {
	var f geometry.Frame
	if cfg.Geometry.Frame != nil {
		f = *cfg.Geometry.Frame
	} else {
		bounds, _ := geom.BoundsOf(trs)
		f = geometry.FrameFor(bounds)
	}
	proj := make([]Trajectory, len(trs))
	for i, tr := range trs {
		tr.Points = f.ProjectTrajectory(tr.Points)
		proj[i] = tr
	}
	cfg.Geometry.Frame = &f
	return proj, cfg
}

// RunTimed executes the pipeline over timed trajectories: partition (each
// segment inheriting the time interval it spans) → group under the
// geometry's distance → represent, with per-cluster time windows on the
// Result. It is the entrypoint for the spatiotemporal geometry
// (WithTemporalWeight / WithGeometry(SpatiotemporalGeometry(wt))); under
// the planar geometry — or wT = 0 — the clustering is bit-identical to Run
// over the same points, timestamps riding along only as windows.
//
// The spatial index prefilter stays sound under the spatiotemporal
// distance: the temporal term only ever adds distance, so the planar
// candidate radius remains complete (see internal/geometry). Estimation
// (WithEstimation) composes: the annealing search runs under the full
// spatiotemporal distance through the same shared index.
//
// Custom Partitioner and Grouper stages have no timed form and are
// rejected; custom RepresentativeBuilders work unchanged.
func (p *Pipeline) RunTimed(ctx context.Context, trs []TimedTrajectory) (*Result, error) {
	cfg := p.cfg
	if p.est != nil {
		if err := cfg.validateEstimation(); err != nil {
			return nil, fmt.Errorf("traclus: %w", err)
		}
		if !(p.est.lo > 0) || !(p.est.hi > p.est.lo) {
			return nil, fmt.Errorf("traclus: %w", &ConfigError{
				Field: "Estimation", Value: [2]float64{p.est.lo, p.est.hi},
				Reason: "must satisfy 0 < lo < hi"})
		}
	} else if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("traclus: %w", err)
	}
	if cfg.Geometry.Kind == geometry.Geodesic {
		return nil, fmt.Errorf("traclus: %w", &ConfigError{
			Field: "Geometry", Value: cfg.Geometry.Kind.String(),
			Reason: "geodesic runs take lat/lon trajectories via Pipeline.Run"})
	}
	if _, ok := p.partition.(mdlPartitioner); !ok {
		return nil, fmt.Errorf("traclus: RunTimed requires the default MDL partition stage (a custom Partitioner has no timed form)")
	}
	sg, ok := p.group.(sharedGrouper)
	if !ok {
		return nil, fmt.Errorf("traclus: RunTimed requires the default DBSCAN grouping stage (a custom Grouper has no timed form)")
	}
	if err := core.ValidateTimedTrajectories(trs); err != nil {
		return nil, fmt.Errorf("traclus: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ccfg := p.coreConfig(cfg)
	rep := newProgressReporter(p.progress)

	rep.begin(PhasePartition, len(trs))
	items, ivs, err := core.PartitionAllTimedCtx(ctx, trs, ccfg, rep.tick)
	if err != nil {
		return nil, stageError(ctx, PhasePartition, err)
	}
	rep.finish()

	// The one spatial index serves estimation and grouping exactly as in
	// Run; the per-item intervals and wT ride the SharedIndex, so every
	// consumer — estimation's neighborhoods, the dendrogram build, the
	// ε-graph grouping — evaluates the same spatiotemporal distance.
	shared := segclust.NewSharedIndexTimed(items, ivs, cfg.Geometry.WT, ccfg.Distance, ccfg.ResolvedBackend())

	var estimated *Estimate
	var den *dendro.Dendrogram
	if p.est != nil {
		rep.begin(PhaseEstimate, params.DefaultIterations+1)
		an := params.AnnealOptions{Workers: cfg.Workers, OnEval: rep.tick}
		var est params.Estimate
		if !math.IsInf(p.est.hi, 1) {
			den, err = dendro.FromShared(ctx, shared, p.est.hi, cfg.Workers)
			if err == nil {
				est, err = params.EstimateEpsDendroCtx(ctx, den, p.est.lo, p.est.hi, an)
			}
		} else {
			est, err = params.EstimateEpsSharedCtx(ctx, shared, p.est.lo, p.est.hi, an)
		}
		if err != nil {
			return nil, stageError(ctx, PhaseEstimate, err)
		}
		rep.finish()
		cfg.Eps = est.Eps
		cfg.MinLns = float64(est.MinLnsLo+est.MinLnsHi) / 2
		ccfg = p.coreConfig(cfg)
		estimated = &Estimate{
			Eps:          est.Eps,
			Entropy:      est.Entropy,
			AvgNeighbors: est.AvgNeighbors,
			MinLnsLo:     est.MinLnsLo,
			MinLnsHi:     est.MinLnsHi,
		}
	}

	rep.begin(PhaseGroup, len(items))
	grouping, err := sg.groupSharedTicked(ctx, shared, cfg, rep.tick)
	if err != nil {
		return nil, stageError(ctx, PhaseGroup, err)
	}
	rep.finish()

	rep.begin(PhaseRepresent, len(grouping.Clusters))
	out, err := core.AssembleCtx(ctx, items, grouping, ccfg, p.representFunc(cfg), rep.tick)
	if err != nil {
		return nil, stageError(ctx, PhaseRepresent, err)
	}
	rep.finish()
	res := newResult(out, ccfg)
	res.Estimated = estimated
	res.dendro = den
	res.itemIvs = ivs
	res.windows = clusterWindows(out, ivs)
	return res, nil
}

// clusterWindows computes each cluster's time window — the smallest
// interval covering every member segment's span.
func clusterWindows(out *core.Output, ivs []geometry.Interval) []Interval {
	ws := make([]Interval, len(out.Clusters))
	for ci, c := range out.Clusters {
		w := ivs[c.Members[0]]
		for _, m := range c.Members[1:] {
			w = w.Union(ivs[m])
		}
		ws[ci] = w
	}
	return ws
}

// coreConfig projects the public Config onto the engine configuration,
// applying the pipeline-level backend override so one backend choice
// reaches every indexing phase (estimation, grouping, classification).
func (p *Pipeline) coreConfig(cfg Config) core.Config {
	ccfg := cfg.core()
	if p.backend != nil {
		ccfg.Backend = p.backend
	}
	return ccfg
}

// representFunc adapts the configured RepresentativeBuilder for
// core.AssembleCtx; the default sweep builder maps to nil so the engine's
// own (identical) sweep path runs.
func (p *Pipeline) representFunc(cfg Config) core.RepresentativeFunc {
	if _, ok := p.represent.(sweepBuilder); ok {
		return nil
	}
	b := p.represent
	return func(ctx context.Context, segs []Segment, weights []float64) ([]Point, error) {
		return b.Representative(ctx, segs, weights, cfg)
	}
}

// runPartition invokes the partition stage, routing per-trajectory ticks
// from in-package stages into the reporter.
func runPartition(ctx context.Context, s Partitioner, trs []Trajectory, cfg Config, rep *progressReporter) ([]Item, error) {
	if ts, ok := s.(tickedPartitioner); ok {
		return ts.partitionTicked(ctx, trs, cfg, rep.tick)
	}
	return s.Partition(ctx, trs, cfg)
}

// runGroup invokes the grouping stage. The in-package default grouper
// consumes the pipeline's prebuilt shared index (and streams ticks); custom
// stages get the plain Grouper call.
func runGroup(ctx context.Context, g Grouper, items []Item, cfg Config, shared *segclust.SharedIndex, rep *progressReporter) (*Grouping, error) {
	if sg, ok := g.(sharedGrouper); ok && shared != nil {
		return sg.groupSharedTicked(ctx, shared, cfg, rep.tick)
	}
	if tg, ok := g.(tickedGrouper); ok {
		return tg.groupTicked(ctx, items, cfg, rep.tick)
	}
	return g.Group(ctx, items, cfg)
}

// stageError surfaces a done context as the bare ctx.Err() and wraps real
// stage failures with the phase they came from.
func stageError(ctx context.Context, phase Phase, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
		return ctxErr
	}
	return fmt.Errorf("traclus: %s stage: %w", phase, err)
}

// Estimate applies the Section 4.4 parameter heuristic under this
// pipeline's configuration (weights, index, workers; Eps and MinLns are
// ignored) with cooperative cancellation: the annealing search stops within
// one ε evaluation of ctx ending. The package-level EstimateParameters is a
// wrapper over it with context.Background().
func (p *Pipeline) Estimate(ctx context.Context, trs []Trajectory, lo, hi float64) (Estimate, error) {
	cfg := p.cfg
	if err := cfg.validateEstimation(); err != nil {
		return Estimate{}, fmt.Errorf("traclus: %w", err)
	}
	if !(lo > 0) || !(hi > lo) {
		// Rejected before partitioning or indexing anything.
		return Estimate{}, fmt.Errorf("traclus: params: need 0 < lo < hi")
	}
	if cfg.Geometry.Kind == geometry.Spatiotemporal {
		return Estimate{}, fmt.Errorf("traclus: %w", &ConfigError{
			Field: "Geometry", Value: cfg.Geometry.Kind.String(),
			Reason: "spatiotemporal estimation takes timed trajectories; build WithEstimation and call RunTimed"})
	}
	if cfg.Geometry.Kind == geometry.Geodesic {
		trs, cfg = projectGeodesic(trs, cfg)
	}
	ccfg := p.coreConfig(cfg)
	items, err := core.PartitionAllCtx(ctx, trs, ccfg, nil)
	if err != nil {
		return Estimate{}, err
	}
	if len(items) == 0 {
		return Estimate{}, fmt.Errorf("traclus: params: no segments")
	}
	shared := segclust.NewSharedIndexFor(items, ccfg.Distance, ccfg.ResolvedBackend())
	est, err := params.EstimateEpsSharedCtx(ctx, shared, lo, hi,
		params.AnnealOptions{Workers: cfg.Workers})
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
			return Estimate{}, ctxErr
		}
		return Estimate{}, fmt.Errorf("traclus: %w", err)
	}
	return Estimate{
		Eps:          est.Eps,
		Entropy:      est.Entropy,
		AvgNeighbors: est.AvgNeighbors,
		MinLnsLo:     est.MinLnsLo,
		MinLnsHi:     est.MinLnsHi,
	}, nil
}

// ---- Default stages ----

// PartitionMDL returns the default partition stage: the paper's §3.3 MDL
// approximate partitioning, fanned across cfg.Workers with per-worker
// scratch.
func PartitionMDL() Partitioner { return mdlPartitioner{} }

type mdlPartitioner struct{}

// tickedPartitioner lets in-package stages stream per-item progress into
// the pipeline's reporter; custom stages simply get begin/end events.
type tickedPartitioner interface {
	partitionTicked(ctx context.Context, trs []Trajectory, cfg Config, tick func()) ([]Item, error)
}

func (p mdlPartitioner) Partition(ctx context.Context, trs []Trajectory, cfg Config) ([]Item, error) {
	return p.partitionTicked(ctx, trs, cfg, nil)
}

func (mdlPartitioner) partitionTicked(ctx context.Context, trs []Trajectory, cfg Config, tick func()) ([]Item, error) {
	return core.PartitionAllCtx(ctx, trs, cfg.core(), tick)
}

// GroupDBSCAN returns the default grouping stage: the paper's Figure-12
// density-based clustering (DBSCAN semantics with the Definition 10
// trajectory-cardinality filter). With cfg.Workers > 1 it runs the
// parallel path — concurrent ε-neighborhood precompute into a flat arena,
// union-find over the core-segment ε-graph — which is bit-identical to the
// serial expansion at every worker count.
func GroupDBSCAN() Grouper { return dbscanGrouper{} }

type dbscanGrouper struct{}

type tickedGrouper interface {
	groupTicked(ctx context.Context, items []Item, cfg Config, tick func()) (*Grouping, error)
}

// sharedGrouper marks groupers that cluster through the pipeline's prebuilt
// shared index instead of indexing the items themselves.
type sharedGrouper interface {
	groupSharedTicked(ctx context.Context, shared *segclust.SharedIndex, cfg Config, tick func()) (*Grouping, error)
}

func (g dbscanGrouper) Group(ctx context.Context, items []Item, cfg Config) (*Grouping, error) {
	return g.groupTicked(ctx, items, cfg, nil)
}

func (dbscanGrouper) groupTicked(ctx context.Context, items []Item, cfg Config, tick func()) (*Grouping, error) {
	return segclust.RunCtx(ctx, items, cfg.core().Segclust(), tick)
}

func (dbscanGrouper) groupSharedTicked(ctx context.Context, shared *segclust.SharedIndex, cfg Config, tick func()) (*Grouping, error) {
	return segclust.RunSharedCtx(ctx, shared, cfg.core().Segclust(), tick)
}

// GroupOPTICS returns the alternative grouping stage: an OPTICS ordering of
// the segments (Ankerst et al., reference [2] of the paper) under the
// TRACLUS distance, with the DBSCAN-equivalent clustering extracted at ε
// and the Definition 10 trajectory-cardinality filter applied on top.
//
// Appendix D of the paper argues OPTICS suits line segments *less* well
// than points (reachability distances crowd toward ε because the distance
// is not a metric); this stage exists so that claim is testable on the real
// pipeline. Divergences from GroupDBSCAN: neighborhoods are computed by
// full scan (O(n²) — no sound prefilter is assumed), the density threshold
// is the unweighted segment count ceil(MinLns) (OPTICS has no weighted
// cardinality), and border segments can label differently, as the two
// algorithms legitimately disagree on them.
func GroupOPTICS() Grouper { return opticsGrouper{} }

type opticsGrouper struct{}

func (opticsGrouper) Group(ctx context.Context, items []Item, cfg Config) (*Grouping, error) {
	ccfg := cfg.core()
	dist := lsdist.New(ccfg.Distance)
	calls := 0 // OPTICS runs single-threaded, so a plain counter is safe
	df := func(i, j int) float64 {
		calls++
		return dist(items[i].Seg, items[j].Seg)
	}
	minPts := int(math.Ceil(cfg.MinLns))
	if minPts < 1 {
		minPts = 1
	}
	res, err := optics.RunCtx(ctx, len(items), df, optics.Config{Eps: cfg.Eps, MinPts: minPts})
	if err != nil {
		return nil, err
	}
	labels := res.ExtractDBSCAN(cfg.Eps)
	minTrajs := cfg.MinTrajs
	if minTrajs <= 0 {
		minTrajs = int(cfg.MinLns)
	}
	return GroupingFromLabels(items, labels, minTrajs, calls), nil
}

// SweepRepresentatives returns the default representative stage: the §4.3
// sweep line along each cluster's average direction, emitting points where
// at least MinLns (weighted) segments overlap, γ apart (Config.Gamma, 0 =
// Eps/4).
func SweepRepresentatives() RepresentativeBuilder { return sweepBuilder{} }

type sweepBuilder struct{}

func (sweepBuilder) Representative(_ context.Context, segs []Segment, weights []float64, cfg Config) ([]Point, error) {
	return sweep.Representative(segs, weights, sweep.Config{
		MinLns: cfg.MinLns,
		Gamma:  cfg.core().EffectiveGamma(),
	}), nil
}

// ---- Progress reporting ----

// progressResolution bounds intermediate events per phase: a tick emits
// only when the fraction advanced by at least 1/progressResolution since
// the last emitted event (completion always emits).
const progressResolution = 64

// progressReporter serializes and throttles progress callbacks. All state
// transitions happen under mu, which also makes the emission order total:
// phases in order, fractions non-decreasing, exactly one Fraction-1 event
// per phase.
type progressReporter struct {
	fn ProgressFunc

	mu       sync.Mutex
	phase    Phase
	done     int
	total    int
	lastFrac float64
	closed   bool // the Fraction-1 event for this phase was emitted
}

func newProgressReporter(fn ProgressFunc) *progressReporter {
	return &progressReporter{fn: fn}
}

func (r *progressReporter) begin(phase Phase, total int) {
	if r == nil || r.fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.phase, r.done, r.total, r.lastFrac, r.closed = phase, 0, total, 0, false
	r.fn(ProgressEvent{Phase: phase, Done: 0, Total: total, Fraction: 0})
}

// tick records one completed work item, emitting an event when the
// fraction advanced enough (or the phase completed).
func (r *progressReporter) tick() {
	if r == nil || r.fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done++
	if r.total <= 0 || r.done > r.total || r.closed {
		return // defensive: a stage over-ticking must not break monotonicity
	}
	frac := float64(r.done) / float64(r.total)
	if frac < 1 && frac-r.lastFrac < 1.0/progressResolution {
		return
	}
	r.lastFrac = frac
	if frac >= 1 {
		r.closed = true
	}
	r.fn(ProgressEvent{Phase: r.phase, Done: r.done, Total: r.total, Fraction: frac})
}

// finish closes the phase, emitting the Fraction-1 event if ticks did not
// already (stages without tick support, empty phases).
func (r *progressReporter) finish() {
	if r == nil || r.fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	done := r.done
	if r.total > 0 && done > r.total {
		done = r.total
	}
	r.fn(ProgressEvent{Phase: r.phase, Done: done, Total: r.total, Fraction: 1})
}
