package traclus_test

import (
	"math"
	"testing"

	"repro/internal/synth"

	traclus "repro"
)

func corridorTrajectories() []traclus.Trajectory {
	return synth.CorridorScene(2, 10, 24, 4, 11)
}

func TestRunEndToEnd(t *testing.T) {
	res, err := traclus.Run(corridorTrajectories(), traclus.Config{
		Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(res.Clusters))
	}
	if res.TotalSegments == 0 {
		t.Error("no segments")
	}
	for i, c := range res.Clusters {
		if len(c.Representative) < 2 {
			t.Errorf("cluster %d has no representative", i)
		}
		if len(c.Trajectories) < 6 {
			t.Errorf("cluster %d trajectory cardinality %d", i, len(c.Trajectories))
		}
	}
}

func TestRunValidation(t *testing.T) {
	trs := corridorTrajectories()
	if _, err := traclus.Run(trs, traclus.Config{MinLns: 5}); err == nil {
		t.Error("Eps unset accepted")
	}
	if _, err := traclus.Run(trs, traclus.Config{Eps: 30}); err == nil {
		t.Error("MinLns unset accepted")
	}
	bad := []traclus.Trajectory{traclus.NewTrajectory(0, []traclus.Point{traclus.Pt(0, 0)})}
	if _, err := traclus.Run(bad, traclus.Config{Eps: 30, MinLns: 3}); err == nil {
		t.Error("invalid trajectory accepted")
	}
}

func TestZeroWeightsMeanDefaults(t *testing.T) {
	// Config{}.Weights zero-value must behave as w=1,1,1, not all-zero.
	res, err := traclus.Run(corridorTrajectories(), traclus.Config{
		Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := traclus.Run(corridorTrajectories(), traclus.Config{
		Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40,
		Weights: traclus.Weights{Perpendicular: 1, Parallel: 1, Angle: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != len(explicit.Clusters) {
		t.Errorf("zero-value weights differ from explicit defaults: %d vs %d",
			len(res.Clusters), len(explicit.Clusters))
	}
}

func TestPartitionFacade(t *testing.T) {
	tr := traclus.NewTrajectory(0, []traclus.Point{
		traclus.Pt(0, 0), traclus.Pt(100, 0), traclus.Pt(200, 0),
		traclus.Pt(200, 100), traclus.Pt(200, 200),
	})
	cps := traclus.Partition(tr, 0)
	if cps[0] != 0 || cps[len(cps)-1] != 4 {
		t.Errorf("Partition = %v", cps)
	}
	foundCorner := false
	for _, c := range cps {
		if c == 2 {
			foundCorner = true
		}
	}
	if !foundCorner {
		t.Errorf("corner not a characteristic point: %v", cps)
	}
	segs := traclus.PartitionSegments(tr, 0)
	if len(segs) != len(cps)-1 {
		t.Errorf("PartitionSegments = %d segments for %d characteristic points", len(segs), len(cps))
	}
}

func TestDistanceFacade(t *testing.T) {
	a := traclus.Segment{Start: traclus.Pt(0, 0), End: traclus.Pt(100, 0)}
	b := traclus.Segment{Start: traclus.Pt(0, 5), End: traclus.Pt(100, 5)}
	if got := traclus.Distance(a, b); math.Abs(got-5) > 1e-9 {
		t.Errorf("Distance = %v, want 5", got)
	}
	if traclus.Distance(a, a) != 0 {
		t.Error("self distance not zero")
	}
}

func TestEstimateParameters(t *testing.T) {
	est, err := traclus.EstimateParameters(corridorTrajectories(), 5, 60, traclus.Config{
		CostAdvantage: 15, MinSegmentLength: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Eps < 5 || est.Eps > 60 {
		t.Errorf("estimated eps = %v outside search range", est.Eps)
	}
	if est.MinLnsLo < 2 || est.MinLnsHi < est.MinLnsLo {
		t.Errorf("MinLns range %d..%d", est.MinLnsLo, est.MinLnsHi)
	}
	if _, err := traclus.EstimateParameters(nil, 5, 60, traclus.Config{}); err == nil {
		t.Error("empty input accepted")
	}
}

func TestQMeasureAccessor(t *testing.T) {
	res, err := traclus.Run(corridorTrajectories(), traclus.Config{
		Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := res.QMeasure()
	if q < 0 || math.IsNaN(q) {
		t.Errorf("QMeasure = %v", q)
	}
	// A deliberately bad ε (tiny) should score worse on the same data.
	bad, err := traclus.Run(corridorTrajectories(), traclus.Config{
		Eps: 2, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad.QMeasure() <= q {
		t.Errorf("tiny eps should have worse QMeasure: %v vs %v", bad.QMeasure(), q)
	}
}

func TestUndirectedOption(t *testing.T) {
	// Trajectories running opposite ways along one corridor: directed
	// clustering separates them, undirected merges them.
	var trs []traclus.Trajectory
	for i := 0; i < 8; i++ {
		pts := make([]traclus.Point, 21)
		for s := range pts {
			x := 100 + float64(s)*30
			pts[s] = traclus.Pt(x, 300+float64(i%4))
		}
		if i%2 == 1 {
			for l, r := 0, len(pts)-1; l < r; l, r = l+1, r-1 {
				pts[l], pts[r] = pts[r], pts[l]
			}
		}
		trs = append(trs, traclus.NewTrajectory(i, pts))
	}
	directed, err := traclus.Run(trs, traclus.Config{Eps: 25, MinLns: 3, CostAdvantage: 5})
	if err != nil {
		t.Fatal(err)
	}
	undirected, err := traclus.Run(trs, traclus.Config{Eps: 25, MinLns: 3, CostAdvantage: 5, Undirected: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(undirected.Clusters) >= len(directed.Clusters) && len(directed.Clusters) > 1 {
		t.Errorf("undirected (%d) should merge directed clusters (%d)",
			len(undirected.Clusters), len(directed.Clusters))
	}
}

func TestWeightedTrajectories(t *testing.T) {
	trs := synth.CorridorScene(1, 8, 24, 4, 13)
	// Full weights → 1 cluster.
	full, err := traclus.Run(trs, traclus.Config{
		Eps: 30, MinLns: 6, MinTrajs: 2, CostAdvantage: 15, MinSegmentLength: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Clusters) != 1 {
		t.Fatalf("full-weight clusters = %d", len(full.Clusters))
	}
	// Down-weight all trajectories: weighted cardinality < MinLns.
	for i := range trs {
		trs[i].Weight = 0.2
	}
	light, err := traclus.Run(trs, traclus.Config{
		Eps: 30, MinLns: 6, MinTrajs: 2, CostAdvantage: 15, MinSegmentLength: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(light.Clusters) != 0 {
		t.Errorf("down-weighted clusters = %d, want 0", len(light.Clusters))
	}
}

func TestIndexKindsAgreeThroughFacade(t *testing.T) {
	trs := corridorTrajectories()
	var counts []int
	for _, kind := range []traclus.IndexKind{traclus.IndexNone, traclus.IndexGrid, traclus.IndexRTree} {
		res, err := traclus.Run(trs, traclus.Config{
			Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40, Index: kind,
		})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, len(res.Clusters))
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Errorf("index kinds disagree: %v", counts)
	}
}
