// Package traclus implements TRACLUS, the trajectory clustering algorithm
// of Lee, Han, and Whang ("Trajectory Clustering: A Partition-and-Group
// Framework", SIGMOD 2007).
//
// TRACLUS discovers common sub-trajectories: instead of clustering whole
// trajectories, it (1) partitions every trajectory into line segments at
// characteristic points chosen by the minimum description length principle,
// (2) groups similar segments with a density-based clustering algorithm
// under a three-component segment distance (perpendicular + parallel +
// angle), and (3) summarises each cluster with a sweep-line representative
// trajectory.
//
// Quickstart:
//
//	trs := []traclus.Trajectory{ ... }
//	p := traclus.New(traclus.WithConfig(traclus.Config{Eps: 30, MinLns: 6}))
//	out, err := p.Run(ctx, trs)
//	for _, c := range out.Clusters {
//		fmt.Println(c.Representative) // a common sub-trajectory
//	}
//
// The Pipeline is the primary entrypoint: Run(ctx, trs) is cancellable,
// streams progress through WithProgress, and its three phases are pluggable
// stage interfaces (Partitioner, Grouper, RepresentativeBuilder) — see
// pipeline.go. The package-level Run(trs, cfg) is the fixed-configuration
// compatibility form, bit-identical to a default Pipeline.
//
// When ε and MinLns are unknown, Pipeline.Estimate (or the compatibility
// wrapper EstimateParameters) applies the paper's entropy-minimisation
// heuristic (Section 4.4).
package traclus

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/dendro"
	"repro/internal/geom"
	"repro/internal/geometry"
	"repro/internal/lsdist"
	"repro/internal/mdl"
	"repro/internal/quality"
	"repro/internal/segclust"
	"repro/internal/spindex"
)

// Re-exported geometric types. A Trajectory is a sequence of points with an
// ID (used by the trajectory-cardinality filter) and an optional Weight
// (weighted-trajectory extension).
type (
	Point      = geom.Point
	Segment    = geom.Segment
	Trajectory = geom.Trajectory
	Rect       = geom.Rect
)

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// NewTrajectory builds a unit-weight trajectory.
func NewTrajectory(id int, pts []Point) Trajectory { return geom.NewTrajectory(id, pts) }

// Weights are the distance component multipliers w⊥, w∥, wθ.
type Weights = lsdist.Weights

// IndexKind selects how ε-neighborhoods are computed. It survives as a
// thin compatibility shim over the unified index subsystem
// (internal/spindex): each kind names one of the three first-class
// backends, and WithIndexBackend plugs arbitrary ones.
type IndexKind = segclust.IndexKind

// Index strategies.
const (
	IndexGrid  = segclust.IndexGrid  // uniform grid prefilter (default)
	IndexRTree = segclust.IndexRTree // R-tree prefilter
	IndexNone  = segclust.IndexNone  // exhaustive O(n²) scan
)

// ParseIndexKind maps a user-facing backend name — "grid", "rtree",
// "brute" (aliases "scan", "none") — to its IndexKind. Unknown names
// return a *ConfigError, which serving layers surface as HTTP 400.
func ParseIndexKind(s string) (IndexKind, error) { return segclust.ParseIndexKind(s) }

// IndexBackend constructs the spatial index behind every ε-neighborhood
// and nearest-representative query: one Build per dataset (the pooled
// trajectory partitions; a model's reference segments), then any number of
// concurrent queries through per-goroutine cursors.
//
// Custom implementations must honour the conservative candidate contract:
// a cursor's Within(q, r, dst) must report every indexed segment whose
// minimum Euclidean distance to the rectangle q is at most r — false
// positives are allowed (the engine refines candidates with the exact
// distance), false negatives are never, and no id may repeat within one
// query. See the "Index layer" section of ARCHITECTURE.md.
type IndexBackend = spindex.Backend

// SegmentIndex is the immutable index an IndexBackend builds.
type SegmentIndex = spindex.SegmentIndex

// IndexQuery is a per-goroutine query cursor over a SegmentIndex.
type IndexQuery = spindex.Query

// GridIndexBackend returns the uniform-grid backend (the default,
// IndexGrid's implementation).
func GridIndexBackend() IndexBackend { return spindex.Grid() }

// RTreeIndexBackend returns the R-tree backend (IndexRTree's
// implementation).
func RTreeIndexBackend() IndexBackend { return spindex.RTree() }

// BruteIndexBackend returns the exhaustive-scan backend (IndexNone's
// implementation, the Lemma 3 O(n²) baseline).
func BruteIndexBackend() IndexBackend { return spindex.Brute() }

// Geometry selects the coordinate frame and distance semantics of a run:
// planar Euclidean (the zero value, the paper's setting), spatiotemporal
// (a fourth distance component wT·dT over per-point timestamps — Section
// 7.1 item 5), or geodesic (lat/lon degrees projected through a
// dataset-derived equirectangular frame into meters). See PlanarGeometry,
// SpatiotemporalGeometry, GeodesicGeometry, and the "Geometry layer"
// section of ARCHITECTURE.md.
type Geometry = geometry.Geometry

// GeoFrame is the equirectangular projection frame a geodesic run resolves
// from its data bounds (and a snapshot persists), mapping lat/lon degrees
// to meters in the model's working plane and back.
type GeoFrame = geometry.Frame

// PlanarGeometry returns the default geometry: planar Euclidean, exactly
// the paper's setting. A Config with this geometry is bit-identical to one
// with the zero Geometry value.
func PlanarGeometry() Geometry { return geometry.NewPlanar() }

// SpatiotemporalGeometry returns the spatiotemporal geometry with temporal
// weight wT: the clustering distance gains wT·dT, where dT is the gap
// between two segments' time intervals (zero when they overlap). wT = 0
// reduces bit-identically to planar. Runs under this geometry take timed
// trajectories via Pipeline.RunTimed.
func SpatiotemporalGeometry(wt float64) Geometry { return geometry.NewSpatiotemporal(wt) }

// GeodesicGeometry returns the geodesic geometry for lat/lon input
// (X = longitude, Y = latitude, degrees): the run derives an
// equirectangular frame from the data bounds, projects every point to
// meters, and clusters in that working plane, so Eps and MinSegmentLength
// are in meters. The resolved frame rides the Result (and its snapshot) so
// queries project identically.
func GeodesicGeometry() Geometry { return geometry.NewGeodesic() }

// ParseGeometry maps a user-facing geometry name — "planar" (aliases
// "euclidean", "xy", ""), "spatiotemporal" (aliases "st", "temporal"),
// "geodesic" (aliases "latlon", "gps") — to its Geometry. The
// spatiotemporal weight defaults to 0 (set it with Config.Geometry.WT or
// SpatiotemporalGeometry). Unknown names return a *ConfigError, which
// serving layers surface as HTTP 400.
func ParseGeometry(s string) (Geometry, error) {
	kind, ok := geometry.ParseKind(s)
	if !ok {
		return Geometry{}, &ConfigError{Field: "Geometry", Value: s,
			Reason: `must be one of "planar", "spatiotemporal", "geodesic"`}
	}
	return Geometry{Kind: kind}, nil
}

// Config holds the user-facing TRACLUS parameters.
type Config struct {
	// Eps is the ε-neighborhood radius (same units as the coordinates).
	Eps float64
	// MinLns is the core-segment density threshold; with weighted
	// trajectories it is compared against the summed weights.
	MinLns float64
	// MinTrajs is the minimum number of distinct trajectories per cluster
	// (Definition 10); 0 uses MinLns.
	MinTrajs int
	// Weights override the distance weights; the zero value means the
	// paper's default w⊥ = w∥ = wθ = 1.
	Weights Weights
	// Undirected ignores segment direction in the angle distance.
	Undirected bool
	// CostAdvantage suppresses partitioning (Section 4.1.3); 0 reproduces
	// Figure 8 exactly, positive values lengthen partitions.
	CostAdvantage float64
	// MinSegmentLength drops trajectory partitions shorter than this.
	// Short segments have low directional strength and can induce
	// over-clustering (Section 4.1.3, Figure 11); 0 keeps everything.
	MinSegmentLength float64
	// Gamma is the representative-trajectory smoothing parameter γ;
	// 0 defaults to Eps/4.
	Gamma float64
	// Geometry selects the coordinate frame and distance semantics; the
	// zero value is planar Euclidean, bit-identical to every release before
	// the geometry layer existed. See PlanarGeometry, SpatiotemporalGeometry,
	// GeodesicGeometry.
	Geometry Geometry
	// Index selects the neighborhood strategy (default IndexGrid).
	Index IndexKind
	// Workers bounds the parallelism of the whole pipeline: MDL
	// partitioning fans out across trajectories, ε-neighborhood
	// precomputation across segments, and representative generation across
	// clusters. ≤ 0 (the default) uses every CPU; 1 forces the serial
	// path. The result is bit-identical for every worker count — cluster
	// membership, noise counts, and representatives do not depend on
	// scheduling. The parallel grouping phase caches every ε-neighborhood
	// up front (O(Σ|Nε|) memory); prefer Workers: 1 when memory is tighter
	// than time.
	Workers int
}

// ConfigError is the typed error returned when a Config field is invalid
// (NaN, infinite, negative, …). Serving layers match it with errors.As to
// distinguish caller mistakes from internal failures.
type ConfigError = segclust.ConfigError

// Validate reports the first invalid Config field as a *ConfigError. NaN
// and ±Inf are rejected everywhere: they would otherwise slip through
// simple sign checks (NaN compares false against any threshold) and poison
// the clustering into an all-noise result.
func (c Config) Validate() error {
	if err := segclust.CheckPositive("Eps", c.Eps); err != nil {
		return err
	}
	if err := segclust.CheckPositive("MinLns", c.MinLns); err != nil {
		return err
	}
	return c.validateEstimation()
}

// ValidateForEstimation validates every Config field except Eps and MinLns
// — the two parameters estimation (Pipeline.Estimate, WithEstimation)
// exists to find. Serving layers use it to vet auto-estimated builds up
// front with the same typed *ConfigError Run would return.
func (c Config) ValidateForEstimation() error { return c.validateEstimation() }

// validateEstimation checks the Config fields the parameter-estimation path
// consumes — everything except Eps and MinLns, which EstimateParameters
// exists to find. Split out so estimation rejects NaN/Inf weights or a
// negative CostAdvantage with the same typed ConfigError as Run, without
// demanding the two parameters it is searching for.
func (c Config) validateEstimation() error {
	if c.MinTrajs < 0 {
		return &ConfigError{Field: "MinTrajs", Value: c.MinTrajs, Reason: "must be non-negative"}
	}
	if (c.Weights != Weights{}) && !c.Weights.Valid() {
		return &ConfigError{Field: "Weights", Value: c.Weights,
			Reason: "must be finite and non-negative with at least one positive component"}
	}
	if err := segclust.CheckNonNegative("CostAdvantage", c.CostAdvantage); err != nil {
		return err
	}
	if err := segclust.CheckNonNegative("MinSegmentLength", c.MinSegmentLength); err != nil {
		return err
	}
	if field, reason := c.Geometry.Validate(); field != "" {
		return &ConfigError{Field: "Geometry." + field, Value: c.Geometry, Reason: reason}
	}
	return segclust.CheckNonNegative("Gamma", c.Gamma)
}

func (c Config) core() core.Config {
	w := c.Weights
	if (w == Weights{}) {
		w = lsdist.DefaultWeights()
	}
	return core.Config{
		Eps:       c.Eps,
		MinLns:    c.MinLns,
		MinTrajs:  c.MinTrajs,
		Partition: mdl.Config{CostAdvantage: c.CostAdvantage, MinLength: c.MinSegmentLength},
		Distance:  lsdist.Options{Weights: w, Undirected: c.Undirected},
		Geometry:  c.Geometry,
		Index:     c.Index,
		Gamma:     c.Gamma,
		Workers:   c.Workers,
	}
}

// Cluster is one discovered group of trajectory partitions together with
// its representative trajectory (the common sub-trajectory).
type Cluster struct {
	// Segments are the member trajectory partitions.
	Segments []Segment
	// Trajectories is the sorted list of participating trajectory IDs.
	Trajectories []int
	// Representative is the cluster's representative trajectory; nil when
	// no stable sweep points exist.
	Representative []Point
}

// Result is the outcome of a TRACLUS run.
type Result struct {
	// Clusters in deterministic discovery order.
	Clusters []Cluster
	// NoiseSegments counts partitions classified as noise.
	NoiseSegments int
	// TotalSegments counts all partitions produced by the first phase.
	TotalSegments int
	// RemovedClusters counts density-connected sets rejected by the
	// trajectory-cardinality filter.
	RemovedClusters int
	// Estimated reports the §4.4 parameter estimate when the run chose its
	// own Eps/MinLns (a Pipeline built WithEstimation); nil otherwise.
	Estimated *Estimate

	out *core.Output
	cfg core.Config

	// dendro is the multi-ε merge structure built by estimation runs (the
	// annealer's by-product); nil on fixed-parameter runs.
	dendro *dendro.Dendrogram

	// itemIvs are the per-item time intervals of a RunTimed run,
	// index-aligned with Items(); nil on spatial runs.
	itemIvs []geometry.Interval
	// windows are the per-cluster time windows of a RunTimed run,
	// index-aligned with Clusters; nil on spatial runs.
	windows []Interval

	// Lazily-built classifier behind Result.Classify; see classify.go.
	clsOnce sync.Once
	cls     *Classifier
	clsErr  error
}

// Items returns the pooled partitioned segments the grouping ran over, in
// their canonical order (the order ClusterOf and dendrogram cuts index
// into). The slice is the result's own backing store — do not mutate.
func (r *Result) Items() []Item { return r.out.Items }

// Dendrogram returns the multi-ε merge structure when this run built one
// (auto-estimation runs precompute it for the annealing search), or nil.
// Non-nil, it answers exact clusterings at any ε up to the estimation
// range's hi via CutAt, with zero further distance computations.
func (r *Result) Dendrogram() *dendro.Dendrogram { return r.dendro }

// Geometry returns the geometry the run resolved: the configured geometry,
// with a geodesic run's projection frame filled in from the data bounds.
func (r *Result) Geometry() Geometry { return r.cfg.Geometry }

// ClusterWindows returns the per-cluster time windows of a RunTimed run,
// index-aligned with Clusters (each window is the smallest interval
// covering every member segment's span); nil on spatial runs.
func (r *Result) ClusterWindows() []Interval { return r.windows }

// ItemIntervals returns the per-item time intervals of a RunTimed run,
// index-aligned with Items(); nil on spatial runs. The slice is the
// result's own backing store — do not mutate.
func (r *Result) ItemIntervals() []Interval { return r.itemIvs }

// Run executes the complete TRACLUS algorithm: partition every trajectory,
// group the pooled segments, and generate a representative trajectory per
// cluster.
//
// Run is the fixed-configuration compatibility form. New code should
// prefer the Pipeline API — New(WithConfig(cfg)).Run(ctx, trs) — which is
// bit-identical on the same input and adds cancellation, progress
// reporting, and pluggable stages.
func Run(trs []Trajectory, cfg Config) (*Result, error) {
	return New(WithConfig(cfg)).Run(context.Background(), trs)
}

func newResult(out *core.Output, ccfg core.Config) *Result {
	res := &Result{
		NoiseSegments:   out.Result.NoiseCount(),
		TotalSegments:   len(out.Items),
		RemovedClusters: out.Result.Removed,
		out:             out,
		cfg:             ccfg,
	}
	for _, c := range out.Clusters {
		res.Clusters = append(res.Clusters, Cluster{
			Segments:       c.Segments,
			Trajectories:   c.Trajectories,
			Representative: c.Representative,
		})
	}
	return res
}

// DistCalls returns the number of exact segment-distance evaluations the
// grouping phase performed — the index-efficiency metric of Lemma 3. It is
// deterministic for a given input and configuration, independent of
// Config.Workers.
func (r *Result) DistCalls() int { return r.out.Result.DistCalls }

// QMeasure evaluates the paper's clustering quality measure (Formula 11:
// total SSE plus noise penalty) for this result. Smaller is better.
func (r *Result) QMeasure() float64 {
	b := quality.Measure(r.out.Items, r.out.Result, r.cfg.Distance, r.cfg.Workers)
	return b.QMeasure()
}

// NoisePenalty evaluates the noise term of Formula 11 alone. Together with
// the per-cluster SSEs of ClusterStats it reassembles QMeasure without a
// second O(n²) pairwise pass — the decomposition the serving layer uses.
func (r *Result) NoisePenalty() float64 {
	return quality.NoisePenalty(r.out.Items, r.out.Result, r.cfg.Distance, r.cfg.Workers)
}

// Partition exposes phase one alone: the MDL-chosen characteristic points
// of a single trajectory, as indices into its points.
func Partition(tr Trajectory, costAdvantage float64) []int {
	return mdl.ApproximatePartition(tr.Dedup().Points, mdl.Config{CostAdvantage: costAdvantage})
}

// PartitionSegments exposes phase one as segments.
func PartitionSegments(tr Trajectory, costAdvantage float64) []Segment {
	return mdl.Partition(tr, mdl.Config{CostAdvantage: costAdvantage})
}

// Distance returns the TRACLUS line-segment distance with default weights —
// useful for custom tooling on top of the library.
func Distance(a, b Segment) float64 { return lsdist.Dist(a, b) }

// Estimate is the outcome of the parameter heuristic.
type Estimate struct {
	Eps          float64 // entropy-minimising ε
	Entropy      float64 // H(X) at that ε
	AvgNeighbors float64 // avg|Nε(L)|
	MinLnsLo     int     // suggested MinLns range (avg+1 .. avg+3)
	MinLnsHi     int
}

// DefaultEstimationRange derives an ε search interval for the Section 4.4
// heuristic from the data extent: hi is one tenth of the bounding
// rectangle's margin (floor 10), lo is hi/60. It is the defaulting rule
// behind cmd/traclus -auto and the daemon's auto builds; pass the result
// to WithEstimation or Pipeline.Estimate when no better prior exists.
func DefaultEstimationRange(trs []Trajectory) (lo, hi float64) {
	bounds, _ := geom.BoundsOf(trs)
	hi = bounds.Margin() / 10
	if hi <= 1 {
		hi = 10
	}
	return hi / 60, hi
}

// EstimateParameters applies the Section 4.4 heuristic: simulated annealing
// over ε ∈ [lo, hi] minimising neighborhood entropy, then MinLns =
// avg|Nε|+1..3. The cfg's weights/index/workers are honoured and validated
// (a NaN weight or negative CostAdvantage returns a *ConfigError instead of
// poisoning the annealing pass); Eps and MinLns are ignored. It is the
// compatibility form of Pipeline.Estimate, which adds cancellation.
func EstimateParameters(trs []Trajectory, lo, hi float64, cfg Config) (Estimate, error) {
	return New(WithConfig(cfg)).Estimate(context.Background(), trs, lo, hi)
}
