package render

import (
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestASCIIMapPlot(t *testing.T) {
	m := NewASCIIMap(10, 5, geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10, 5)})
	m.Plot(geom.Pt(0, 0), '*')
	m.Plot(geom.Pt(10, 5), '#')
	out := m.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Data-space origin is bottom-left → last line, first column.
	if lines[4][0] != '*' {
		t.Errorf("origin not at bottom-left:\n%s", out)
	}
	if lines[0][9] != '#' {
		t.Errorf("max not at top-right:\n%s", out)
	}
}

func TestASCIIMapOutOfBoundsIgnored(t *testing.T) {
	m := NewASCIIMap(5, 5, geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)})
	m.Plot(geom.Pt(100, 100), 'X') // silently dropped
	if strings.Contains(m.String(), "X") {
		t.Error("out-of-bounds point plotted")
	}
}

func TestASCIIMapSegmentContinuous(t *testing.T) {
	m := NewASCIIMap(20, 20, geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(20, 20)})
	m.PlotSegment(geom.Seg(0, 0, 20, 20), '.')
	got := strings.Count(m.String(), ".")
	if got < 15 {
		t.Errorf("segment drew only %d cells", got)
	}
}

func TestASCIIMapDegenerateBounds(t *testing.T) {
	m := NewASCIIMap(5, 5, geom.Rect{Min: geom.Pt(1, 1), Max: geom.Pt(1, 1)})
	m.Plot(geom.Pt(1, 1), 'X') // zero-extent bounds: nothing plots, no panic
	_ = m.String()
}

func TestClusterMap(t *testing.T) {
	trs := []geom.Trajectory{
		geom.NewTrajectory(0, []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)}),
	}
	reps := [][]geom.Point{{geom.Pt(0, 10), geom.Pt(100, 10)}}
	out := ClusterMap(40, 10, trs, reps)
	if !strings.Contains(out, ".") || !strings.Contains(out, "#") {
		t.Errorf("cluster map missing glyphs:\n%s", out)
	}
	if got := ClusterMap(40, 10, nil, nil); got != "" {
		t.Errorf("empty cluster map = %q", got)
	}
}

// validateXML checks the SVG is well-formed XML.
func validateXML(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, doc)
		}
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg := NewSVG(200, 100, geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)})
	svg.Polyline([]geom.Point{geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(10, 0)}, "red", 2, 1)
	svg.Circle(geom.Pt(5, 5), 3, "blue")
	svg.Text(geom.Pt(1, 1), 10, "black", "a <label> & more")
	doc := svg.String()
	validateXML(t, doc)
	if !strings.Contains(doc, "<path") || !strings.Contains(doc, "<circle") {
		t.Error("missing elements")
	}
	if strings.Contains(doc, "<label>") {
		t.Error("text not escaped")
	}
}

func TestSVGYAxisFlipped(t *testing.T) {
	svg := NewSVG(100, 100, geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)})
	_, yLow := svg.tx(geom.Pt(5, 0))
	_, yHigh := svg.tx(geom.Pt(5, 10))
	if yHigh >= yLow {
		t.Errorf("data-up should be screen-up: y(10)=%v y(0)=%v", yHigh, yLow)
	}
}

func TestSVGPolylineNeedsTwoPoints(t *testing.T) {
	svg := NewSVG(100, 100, geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)})
	svg.Polyline([]geom.Point{geom.Pt(0, 0)}, "red", 1, 1)
	if strings.Contains(svg.String(), "<path") {
		t.Error("single-point polyline emitted")
	}
}

func TestClusterSVG(t *testing.T) {
	trs := []geom.Trajectory{
		geom.NewTrajectory(0, []geom.Point{geom.Pt(0, 0), geom.Pt(50, 20), geom.Pt(100, 0)}),
		geom.NewTrajectory(1, []geom.Point{geom.Pt(0, 10), geom.Pt(100, 10)}),
	}
	reps := [][]geom.Point{{geom.Pt(0, 5), geom.Pt(100, 5)}}
	doc := ClusterSVG(trs, reps)
	validateXML(t, doc)
	if strings.Count(doc, "<path") != 3 {
		t.Errorf("expected 3 paths, got %d", strings.Count(doc, "<path"))
	}
	// Empty input yields a valid blank document.
	validateXML(t, ClusterSVG(nil, nil))
}

func TestLineChart(t *testing.T) {
	doc := LineChart("Entropy for the hurricane data", "Eps", "Entropy", []Series{
		{Name: "entropy", X: []float64{1, 2, 3}, Y: []float64{10.1, 10.05, 10.12}},
		{Name: "MinLns=6", X: []float64{1, 2, 3}, Y: []float64{9, 9.5, 9.2}},
	})
	validateXML(t, doc)
	for _, want := range []string{"entropy", "MinLns=6", "Eps", "Entropy for the hurricane data"} {
		if !strings.Contains(doc, want) {
			t.Errorf("chart missing %q", want)
		}
	}
	if strings.Count(doc, "<path") != 2 {
		t.Errorf("expected 2 series paths, got %d", strings.Count(doc, "<path"))
	}
}

func TestLineChartEmpty(t *testing.T) {
	validateXML(t, LineChart("t", "x", "y", nil))
}

func TestLineChartConstantSeries(t *testing.T) {
	// Zero Y range must not divide by zero.
	doc := LineChart("t", "x", "y", []Series{
		{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}},
	})
	validateXML(t, doc)
	if strings.Contains(doc, "NaN") {
		t.Error("NaN in chart")
	}
}

func TestFmtTick(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{123456, "1.23e+05"},
		{250, "250"},
		{3.25, "3.2"},
		{0.125, "0.125"},
	}
	for _, c := range cases {
		if got := fmtTick(c.v); got != c.want {
			t.Errorf("fmtTick(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
