// Package render replaces the paper's C++ visual inspection tool: it draws
// trajectories, clusters, and representative trajectories as ASCII maps
// (for terminals and golden tests) and SVG documents (for the regenerated
// figures), and renders the entropy/QMeasure line charts of Figures 16, 17,
// 19, and 20. Only the standard library is used.
package render

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/geom"
)

// ASCIIMap rasterises geometry into a fixed character grid.
type ASCIIMap struct {
	w, h   int
	bounds geom.Rect
	cells  []byte
}

// NewASCIIMap creates a w×h map covering bounds.
func NewASCIIMap(w, h int, bounds geom.Rect) *ASCIIMap {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	m := &ASCIIMap{w: w, h: h, bounds: bounds, cells: make([]byte, w*h)}
	for i := range m.cells {
		m.cells[i] = ' '
	}
	return m
}

func (m *ASCIIMap) cell(p geom.Point) (int, int, bool) {
	if m.bounds.Width() <= 0 || m.bounds.Height() <= 0 {
		return 0, 0, false
	}
	x := int((p.X - m.bounds.Min.X) / m.bounds.Width() * float64(m.w-1))
	// Y axis points up in data space, down in terminal space.
	y := int((m.bounds.Max.Y - p.Y) / m.bounds.Height() * float64(m.h-1))
	if x < 0 || x >= m.w || y < 0 || y >= m.h {
		return 0, 0, false
	}
	return x, y, true
}

// Plot marks a single point with ch (later marks overwrite earlier ones).
func (m *ASCIIMap) Plot(p geom.Point, ch byte) {
	if x, y, ok := m.cell(p); ok {
		m.cells[y*m.w+x] = ch
	}
}

// PlotSegment draws a segment by sampling it densely.
func (m *ASCIIMap) PlotSegment(s geom.Segment, ch byte) {
	steps := int(math.Max(float64(m.w), float64(m.h)))
	for i := 0; i <= steps; i++ {
		m.Plot(s.Start.Lerp(s.End, float64(i)/float64(steps)), ch)
	}
}

// PlotPolyline draws consecutive segments through the points.
func (m *ASCIIMap) PlotPolyline(pts []geom.Point, ch byte) {
	for i := 1; i < len(pts); i++ {
		m.PlotSegment(geom.Segment{Start: pts[i-1], End: pts[i]}, ch)
	}
	if len(pts) == 1 {
		m.Plot(pts[0], ch)
	}
}

// String renders the grid.
func (m *ASCIIMap) String() string {
	var b strings.Builder
	b.Grow((m.w + 1) * m.h)
	for y := 0; y < m.h; y++ {
		b.Write(m.cells[y*m.w : (y+1)*m.w])
		b.WriteByte('\n')
	}
	return b.String()
}

// ClusterMap renders trajectories (.) plus each cluster's representative
// trajectory (#), the layout of the paper's Figures 18, 21, 22, and 23.
func ClusterMap(w, h int, trs []geom.Trajectory, reps [][]geom.Point) string {
	bounds, ok := geom.BoundsOf(trs)
	for _, rep := range reps {
		for _, p := range rep {
			if !ok {
				bounds = geom.Rect{Min: p, Max: p}
				ok = true
			} else {
				bounds = bounds.ExpandPoint(p)
			}
		}
	}
	if !ok {
		return ""
	}
	if bounds.Width() == 0 {
		bounds = bounds.Expand(1)
	}
	if bounds.Height() == 0 {
		bounds = bounds.Expand(1)
	}
	m := NewASCIIMap(w, h, bounds)
	for _, tr := range trs {
		m.PlotPolyline(tr.Points, '.')
	}
	for _, rep := range reps {
		m.PlotPolyline(rep, '#')
	}
	return m.String()
}

// SVG builds a minimal SVG document.
type SVG struct {
	w, h   float64
	bounds geom.Rect
	body   strings.Builder
}

// NewSVG creates a drawing of pixel size w×h mapping the data bounds onto
// it (Y flipped so data-up is screen-up), with a 4 % margin.
func NewSVG(w, h float64, bounds geom.Rect) *SVG {
	mx, my := bounds.Width()*0.04, bounds.Height()*0.04
	if mx == 0 {
		mx = 1
	}
	if my == 0 {
		my = 1
	}
	return &SVG{w: w, h: h, bounds: bounds.Expand(math.Max(mx, my))}
}

func (s *SVG) tx(p geom.Point) (float64, float64) {
	x := (p.X - s.bounds.Min.X) / s.bounds.Width() * s.w
	y := s.h - (p.Y-s.bounds.Min.Y)/s.bounds.Height()*s.h
	return x, y
}

// Polyline draws the points as a stroked path.
func (s *SVG) Polyline(pts []geom.Point, stroke string, width float64, opacity float64) {
	if len(pts) < 2 {
		return
	}
	var sb strings.Builder
	for i, p := range pts {
		x, y := s.tx(p)
		if i == 0 {
			fmt.Fprintf(&sb, "M%.2f %.2f", x, y)
		} else {
			fmt.Fprintf(&sb, " L%.2f %.2f", x, y)
		}
	}
	fmt.Fprintf(&s.body,
		`<path d="%s" fill="none" stroke="%s" stroke-width="%.2f" stroke-opacity="%.2f"/>`+"\n",
		sb.String(), stroke, width, opacity)
}

// Circle draws a dot at p.
func (s *SVG) Circle(p geom.Point, r float64, fill string) {
	x, y := s.tx(p)
	fmt.Fprintf(&s.body, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>`+"\n", x, y, r, fill)
}

// Text places a label at p.
func (s *SVG) Text(p geom.Point, size float64, fill, text string) {
	x, y := s.tx(p)
	fmt.Fprintf(&s.body, `<text x="%.2f" y="%.2f" font-size="%.1f" fill="%s" font-family="sans-serif">%s</text>`+"\n",
		x, y, size, fill, escape(text))
}

// String emits the complete document.
func (s *SVG) String() string {
	return fmt.Sprintf(
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n"+
			`<rect width="%.0f" height="%.0f" fill="white"/>`+"\n%s</svg>\n",
		s.w, s.h, s.w, s.h, s.w, s.h, s.body.String())
}

func escape(t string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(t)
}

// ClusterSVG renders the standard figure layout: input trajectories in
// light green, representative trajectories in thick red — matching the
// paper's "thin green lines display trajectories, and thick red lines
// representative trajectories".
func ClusterSVG(trs []geom.Trajectory, reps [][]geom.Point) string {
	bounds, ok := geom.BoundsOf(trs)
	if !ok {
		return NewSVG(800, 520, geom.Rect{Max: geom.Pt(1, 1)}).String()
	}
	svg := NewSVG(800, 520, bounds)
	for _, tr := range trs {
		svg.Polyline(tr.Points, "#2a9d2a", 0.7, 0.45)
	}
	for _, rep := range reps {
		svg.Polyline(rep, "#d62828", 3, 1)
	}
	return svg.String()
}

// Series is one named line of a chart.
type Series struct {
	Name   string
	X, Y   []float64
	Stroke string
}

// LineChart renders a simple XY chart with axes, tick labels, and a legend
// — the format of the entropy and QMeasure figures.
func LineChart(title, xlabel, ylabel string, series []Series) string {
	const w, h = 720.0, 480.0
	const padL, padR, padT, padB = 70.0, 20.0, 40.0, 50.0
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	tx := func(x float64) float64 { return padL + (x-minX)/(maxX-minX)*(w-padL-padR) }
	ty := func(y float64) float64 { return h - padB - (y-minY)/(maxY-minY)*(h-padT-padB) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%.0f" height="%.0f" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%.0f" y="24" font-size="16" text-anchor="middle" font-family="sans-serif">%s</text>`+"\n", w/2, escape(title))
	// Axes.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", padL, h-padB, w-padR, h-padB)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", padL, padT, padL, h-padB)
	fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" font-size="12" text-anchor="middle" font-family="sans-serif">%s</text>`+"\n", w/2, h-12, escape(xlabel))
	fmt.Fprintf(&b, `<text x="16" y="%.0f" font-size="12" text-anchor="middle" font-family="sans-serif" transform="rotate(-90 16 %.0f)">%s</text>`+"\n", h/2, h/2, escape(ylabel))
	// Ticks.
	for i := 0; i <= 5; i++ {
		x := minX + (maxX-minX)*float64(i)/5
		y := minY + (maxY-minY)*float64(i)/5
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle" font-family="sans-serif">%s</text>`+"\n", tx(x), h-padB+16, fmtTick(x))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="end" font-family="sans-serif">%s</text>`+"\n", padL-6, ty(y)+4, fmtTick(y))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", padL, ty(y), w-padR, ty(y))
	}
	palette := []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}
	for si, s := range series {
		stroke := s.Stroke
		if stroke == "" {
			stroke = palette[si%len(palette)]
		}
		var path strings.Builder
		for i := range s.X {
			if i == 0 {
				fmt.Fprintf(&path, "M%.2f %.2f", tx(s.X[i]), ty(s.Y[i]))
			} else {
				fmt.Fprintf(&path, " L%.2f %.2f", tx(s.X[i]), ty(s.Y[i]))
			}
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n", path.String(), stroke)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s" font-family="sans-serif">%s</text>`+"\n",
			w-padR-130, padT+16*float64(si)+4, stroke, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 100000:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
