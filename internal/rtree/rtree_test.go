package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randRects(rng *rand.Rand, n int) []geom.Rect {
	rects := make([]geom.Rect, n)
	for i := range rects {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		rects[i] = geom.Rect{
			Min: geom.Pt(x, y),
			Max: geom.Pt(x+rng.Float64()*50, y+rng.Float64()*50),
		}
	}
	return rects
}

func bruteSearch(rects []geom.Rect, q geom.Rect) []int {
	var out []int
	for i, r := range rects {
		if r.Intersects(q) {
			out = append(out, i)
		}
	}
	return out
}

func bruteWithin(rects []geom.Rect, q geom.Rect, d float64) []int {
	var out []int
	for i, r := range rects {
		if r.DistRect(q) <= d {
			out = append(out, i)
		}
	}
	return out
}

func sameIDs(t *testing.T, got, want []int, ctx string) {
	t.Helper()
	sort.Ints(got)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d ids, want %d (%v vs %v)", ctx, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: mismatch at %d: %v vs %v", ctx, i, got, want)
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Errorf("empty: Len=%d Height=%d", tr.Len(), tr.Height())
	}
	tr.Search(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}, func(int) bool {
		t.Error("search on empty tree yielded result")
		return true
	})
}

func TestInsertSearchAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rects := randRects(rng, 500)
	tr := New()
	for i, r := range rects {
		tr.Insert(r, i)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for trial := 0; trial < 100; trial++ {
		q := randRects(rng, 1)[0]
		sameIDs(t, tr.SearchIDs(q, nil), bruteSearch(rects, q), "search")
	}
}

func TestWithinDistAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rects := randRects(rng, 400)
	tr := New()
	for i, r := range rects {
		tr.Insert(r, i)
	}
	for trial := 0; trial < 100; trial++ {
		q := randRects(rng, 1)[0]
		d := rng.Float64() * 100
		var got []int
		tr.WithinDist(q, d, func(id int) bool { got = append(got, id); return true })
		sameIDs(t, got, bruteWithin(rects, q, d), "within")
	}
}

func TestBulkMatchesInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rects := randRects(rng, 700)
	bulk := Bulk(rects)
	if bulk.Len() != 700 {
		t.Fatalf("bulk Len = %d", bulk.Len())
	}
	for trial := 0; trial < 100; trial++ {
		q := randRects(rng, 1)[0]
		sameIDs(t, bulk.SearchIDs(q, nil), bruteSearch(rects, q), "bulk search")
	}
	for trial := 0; trial < 50; trial++ {
		q := randRects(rng, 1)[0]
		d := rng.Float64() * 80
		var got []int
		bulk.WithinDist(q, d, func(id int) bool { got = append(got, id); return true })
		sameIDs(t, got, bruteWithin(rects, q, d), "bulk within")
	}
}

func TestBulkEmpty(t *testing.T) {
	tr := Bulk(nil)
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	tr.Search(geom.Rect{Max: geom.Pt(1, 1)}, func(int) bool {
		t.Error("unexpected result")
		return true
	})
}

func TestDuplicateRects(t *testing.T) {
	r := geom.Rect{Min: geom.Pt(5, 5), Max: geom.Pt(10, 10)}
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(r, i)
	}
	got := tr.SearchIDs(r, nil)
	if len(got) != 100 {
		t.Errorf("duplicates: got %d ids", len(got))
	}
}

func TestHeightLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rects := randRects(rng, 5000)
	tr := New()
	for i, r := range rects {
		tr.Insert(r, i)
	}
	// With maxEntries=16 and minEntries=4, 5000 entries fit within height
	// ceil(log4(5000)) + 1 ≈ 8.
	if h := tr.Height(); h < 2 || h > 8 {
		t.Errorf("Height = %d, out of expected range", h)
	}
	bulk := Bulk(rects)
	if h := bulk.Height(); h < 2 || h > 4 {
		t.Errorf("bulk Height = %d (STR should pack tighter)", h)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rects := randRects(rng, 200)
	tr := Bulk(rects)
	count := 0
	q := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1000, 1000)}
	tr.Search(q, func(int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
	count = 0
	tr.WithinDist(q, 10, func(int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("WithinDist early stop visited %d", count)
	}
}

func TestPointRects(t *testing.T) {
	// Degenerate (point) rectangles must index fine.
	tr := New()
	for i := 0; i < 50; i++ {
		p := geom.Pt(float64(i), float64(i))
		tr.Insert(geom.Rect{Min: p, Max: p}, i)
	}
	got := tr.SearchIDs(geom.Rect{Min: geom.Pt(10, 10), Max: geom.Pt(12, 12)}, nil)
	if len(got) != 3 {
		t.Errorf("point search = %v", got)
	}
}

func TestMixedInsertAfterBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rects := randRects(rng, 300)
	tr := Bulk(rects[:200])
	for i := 200; i < 300; i++ {
		tr.Insert(rects[i], i)
	}
	if tr.Len() != 300 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for trial := 0; trial < 50; trial++ {
		q := randRects(rng, 1)[0]
		sameIDs(t, tr.SearchIDs(q, nil), bruteSearch(rects, q), "mixed")
	}
}
