// Package rtree implements an in-memory R-tree over axis-aligned rectangles
// (Guttman, SIGMOD 1984 — reference [10] of the TRACLUS paper). TRACLUS
// Lemma 3 observes that ε-neighborhood queries drop from O(n) to O(log n)
// per query "if we use an appropriate index such as the R-tree"; this
// package is that substrate.
//
// Because the TRACLUS distance is not a metric, the tree is used with the
// conservative Euclidean prefilter of DESIGN.md §3: candidates are fetched
// by MBR distance and refined with the exact distance by the caller.
package rtree

import (
	"math"

	"repro/internal/geom"
)

const (
	maxEntries = 16
	minEntries = 4
)

type entry struct {
	rect  geom.Rect
	id    int   // leaf payload (valid when child == nil)
	child *node // nil for leaf entries
}

type node struct {
	leaf    bool
	entries []entry
}

// Tree is an R-tree mapping rectangles to integer ids. The zero value is
// ready to use. A Tree is not safe for concurrent mutation; concurrent
// Search/WithinDist calls are safe once building is done.
type Tree struct {
	root *node
	size int
	path []pathEntry // insertion path scratch, reused across Inserts
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of stored rectangles.
func (t *Tree) Len() int { return t.size }

// Height returns the height of the tree (0 when empty, 1 for a sole leaf).
func (t *Tree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf || len(n.entries) == 0 {
			break
		}
		n = n.entries[0].child
	}
	return h
}

// Insert adds a rectangle with the given id.
func (t *Tree) Insert(r geom.Rect, id int) {
	t.size++
	if t.root == nil {
		t.root = &node{leaf: true}
	}
	leaf := t.chooseLeaf(t.root, r)
	leaf.entries = append(leaf.entries, entry{rect: r, id: id})
	t.adjust(leaf)
}

// pathEntry records the parent chain walked by chooseLeaf so splits can
// propagate bottom-up.
type pathEntry struct {
	n   *node
	idx int // index of child entry within parent
}

func (t *Tree) chooseLeaf(n *node, r geom.Rect) *node {
	t.path = t.path[:0]
	for !n.leaf {
		best, bestEnl, bestArea := -1, math.MaxFloat64, math.MaxFloat64
		for i := range n.entries {
			enl := n.entries[i].rect.EnlargementNeeded(r)
			area := n.entries[i].rect.Area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n.entries[best].rect = n.entries[best].rect.Union(r)
		t.path = append(t.path, pathEntry{n, best})
		n = n.entries[best].child
	}
	return n
}

// adjust splits overflowing nodes bottom-up along the recorded path.
func (t *Tree) adjust(n *node) {
	for level := len(t.path); ; level-- {
		if len(n.entries) <= maxEntries {
			break
		}
		left, right := split(n)
		if level == 0 {
			// n was the root: grow the tree.
			t.root = &node{entries: []entry{
				{rect: mbr(left), child: left},
				{rect: mbr(right), child: right},
			}}
			return
		}
		parent := t.path[level-1].n
		idx := t.path[level-1].idx
		parent.entries[idx] = entry{rect: mbr(left), child: left}
		parent.entries = append(parent.entries, entry{rect: mbr(right), child: right})
		n = parent
	}
	// Tighten MBRs up the remaining path.
	for level := len(t.path) - 1; level >= 0; level-- {
		pe := t.path[level]
		pe.n.entries[pe.idx].rect = mbr(pe.n.entries[pe.idx].child)
	}
}

func mbr(n *node) geom.Rect {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// split performs Guttman's quadratic split, returning two nodes that
// partition n's entries.
func split(n *node) (*node, *node) {
	es := n.entries
	// Pick seeds: the pair wasting the most area if grouped.
	s1, s2, worst := 0, 1, -math.MaxFloat64
	for i := 0; i < len(es); i++ {
		for j := i + 1; j < len(es); j++ {
			d := es[i].rect.Union(es[j].rect).Area() - es[i].rect.Area() - es[j].rect.Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	left := &node{leaf: n.leaf, entries: []entry{es[s1]}}
	right := &node{leaf: n.leaf, entries: []entry{es[s2]}}
	lr, rr := es[s1].rect, es[s2].rect
	rest := make([]entry, 0, len(es)-2)
	for i, e := range es {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// If one group must take all remaining to reach minEntries, do it.
		if len(left.entries)+len(rest) == minEntries {
			left.entries = append(left.entries, rest...)
			for _, e := range rest {
				lr = lr.Union(e.rect)
			}
			break
		}
		if len(right.entries)+len(rest) == minEntries {
			right.entries = append(right.entries, rest...)
			for _, e := range rest {
				rr = rr.Union(e.rect)
			}
			break
		}
		// PickNext: entry with greatest preference difference.
		best, bestDiff := 0, -1.0
		for i, e := range rest {
			d1 := lr.EnlargementNeeded(e.rect)
			d2 := rr.EnlargementNeeded(e.rect)
			if diff := math.Abs(d1 - d2); diff > bestDiff {
				best, bestDiff = i, diff
			}
		}
		e := rest[best]
		rest[best] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		d1, d2 := lr.EnlargementNeeded(e.rect), rr.EnlargementNeeded(e.rect)
		switch {
		case d1 < d2, d1 == d2 && lr.Area() <= rr.Area():
			left.entries = append(left.entries, e)
			lr = lr.Union(e.rect)
		default:
			right.entries = append(right.entries, e)
			rr = rr.Union(e.rect)
		}
	}
	return left, right
}

// Search calls fn with the id of every stored rectangle intersecting q.
// Returning false from fn stops the search early.
func (t *Tree) Search(q geom.Rect, fn func(id int) bool) {
	if t.root != nil {
		searchNode(t.root, q, fn)
	}
}

func searchNode(n *node, q geom.Rect, fn func(id int) bool) bool {
	for _, e := range n.entries {
		if !e.rect.Intersects(q) {
			continue
		}
		if e.child == nil {
			if !fn(e.id) {
				return false
			}
		} else if !searchNode(e.child, q, fn) {
			return false
		}
	}
	return true
}

// SearchIDs returns the ids of all rectangles intersecting q, appended to
// dst (which may be nil).
func (t *Tree) SearchIDs(q geom.Rect, dst []int) []int {
	t.Search(q, func(id int) bool { dst = append(dst, id); return true })
	return dst
}

// WithinDist calls fn for every stored rectangle whose minimum Euclidean
// distance to q is at most d. This is the primitive behind the ε-query
// prefilter.
func (t *Tree) WithinDist(q geom.Rect, d float64, fn func(id int) bool) {
	if t.root != nil {
		withinNode(t.root, q, d, fn)
	}
}

func withinNode(n *node, q geom.Rect, d float64, fn func(id int) bool) bool {
	for _, e := range n.entries {
		if e.rect.DistRect(q) > d {
			continue
		}
		if e.child == nil {
			if !fn(e.id) {
				return false
			}
		} else if !withinNode(e.child, q, d, fn) {
			return false
		}
	}
	return true
}

// Bulk builds a tree from rectangles using Sort-Tile-Recursive packing,
// which produces well-shaped leaves much faster than repeated inserts. The
// id of rects[i] is i.
func Bulk(rects []geom.Rect) *Tree {
	t := &Tree{size: len(rects)}
	if len(rects) == 0 {
		return t
	}
	leaves := packLeaves(rects)
	t.root = packUp(leaves)
	return t
}

func packLeaves(rects []geom.Rect) []*node {
	type idRect struct {
		r  geom.Rect
		id int
	}
	items := make([]idRect, len(rects))
	for i, r := range rects {
		items[i] = idRect{r, i}
	}
	// Sort by center X, tile into vertical slices, sort each by center Y.
	sortBy(items, func(a, b idRect) bool { return a.r.Center().X < b.r.Center().X })
	n := len(items)
	leafCount := (n + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	perSlice := sliceCount * maxEntries
	var leaves []*node
	for s := 0; s < n; s += perSlice {
		hi := s + perSlice
		if hi > n {
			hi = n
		}
		slice := items[s:hi]
		sortBy(slice, func(a, b idRect) bool { return a.r.Center().Y < b.r.Center().Y })
		for i := 0; i < len(slice); i += maxEntries {
			j := i + maxEntries
			if j > len(slice) {
				j = len(slice)
			}
			leaf := &node{leaf: true}
			for _, it := range slice[i:j] {
				leaf.entries = append(leaf.entries, entry{rect: it.r, id: it.id})
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func packUp(nodes []*node) *node {
	for len(nodes) > 1 {
		var next []*node
		for i := 0; i < len(nodes); i += maxEntries {
			j := i + maxEntries
			if j > len(nodes) {
				j = len(nodes)
			}
			parent := &node{}
			for _, c := range nodes[i:j] {
				parent.entries = append(parent.entries, entry{rect: mbr(c), child: c})
			}
			next = append(next, parent)
		}
		nodes = next
	}
	return nodes[0]
}

// sortBy is a tiny generic insertion-free sort wrapper (avoids pulling in
// reflect-based sorting for a hot path).
func sortBy[T any](s []T, less func(a, b T) bool) {
	// Heapsort: in-place, no allocation, O(n log n) worst case.
	n := len(s)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(s, i, n, less)
	}
	for i := n - 1; i > 0; i-- {
		s[0], s[i] = s[i], s[0]
		siftDown(s, 0, i, less)
	}
}

func siftDown[T any](s []T, lo, hi int, less func(a, b T) bool) {
	root := lo
	for {
		child := 2*root + 1
		if child >= hi {
			return
		}
		if child+1 < hi && less(s[child], s[child+1]) {
			child++
		}
		if !less(s[root], s[child]) {
			return
		}
		s[root], s[child] = s[child], s[root]
		root = child
	}
}
