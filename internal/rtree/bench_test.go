package rtree

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rects := randRects(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := New()
		for j, r := range rects {
			t.Insert(r, j)
		}
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rects := randRects(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bulk(rects)
	}
}

func BenchmarkWithinDist(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1000, 10000} {
		rects := randRects(rng, n)
		t := Bulk(rects)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			count := 0
			for i := 0; i < b.N; i++ {
				q := rects[i%n]
				t.WithinDist(q, 40, func(int) bool { count++; return true })
			}
			_ = count
		})
	}
}
