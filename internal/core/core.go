// Package core wires the three TRACLUS phases together (Figure 4 of the
// paper): MDL partitioning of every trajectory, density-based clustering of
// the pooled line segments, and representative-trajectory generation per
// cluster. It is the engine behind the public traclus package.
//
// All three phases are parallel across Config.Workers goroutines
// (trajectories, ε-neighborhood queries, and clusters respectively are
// independent units of work), and every phase writes into pre-sized,
// index-aligned slots, so the output is bit-identical for every worker
// count — the serial path is just the one-worker special case.
package core

import (
	"context"
	"fmt"

	"repro/internal/geom"
	"repro/internal/geometry"
	"repro/internal/lsdist"
	"repro/internal/mdl"
	"repro/internal/par"
	"repro/internal/segclust"
	"repro/internal/spindex"
	"repro/internal/sweep"
	"repro/internal/temporal"
)

// Config carries the parameters of all three phases.
type Config struct {
	// Eps and MinLns are the two clustering parameters of the paper.
	Eps    float64
	MinLns float64
	// MinTrajs overrides the trajectory-cardinality threshold (0 = MinLns).
	MinTrajs int
	// Partition controls the MDL partitioning phase.
	Partition mdl.Config
	// Distance carries the weights and directedness of the distance.
	Distance lsdist.Options
	// Index selects the ε-neighborhood strategy (thin shim over the
	// spindex backend layer).
	Index segclust.IndexKind
	// Backend, when non-nil, overrides Index with a custom spindex backend.
	// The same backend serves every phase that indexes segments: parameter
	// estimation, ε-neighborhood grouping, and the classifier's
	// reference-segment index.
	Backend spindex.Backend
	// Gamma is the sweep smoothing parameter γ; 0 defaults to Eps/4.
	Gamma float64
	// Geometry selects the distance mode (planar Euclidean, spatiotemporal,
	// geodesic). The zero value is planar — the exact pre-geometry path.
	Geometry geometry.Geometry
	// Workers bounds the parallelism of every phase — MDL partitioning,
	// ε-neighborhood precomputation, and per-cluster representative sweeps
	// (≤ 0 = all CPUs). Results are bit-identical for every worker count.
	Workers int
}

// DefaultConfig returns a configuration with the paper's default distance
// weights and a grid index; Eps and MinLns must still be set (or found via
// internal/params).
func DefaultConfig() Config {
	return Config{Distance: lsdist.DefaultOptions(), Index: segclust.IndexGrid}
}

// ResolvedBackend resolves the spindex backend every indexing phase uses:
// the explicit Backend when set, otherwise the IndexKind shim.
func (c Config) ResolvedBackend() spindex.Backend {
	if c.Backend != nil {
		return c.Backend
	}
	return segclust.BackendFor(c.Index)
}

// EffectiveGamma resolves the sweep smoothing parameter: Gamma when set,
// otherwise the paper's Eps/4 default. Exposed so alternative
// representative builders layered on top of the engine derive the same
// value the default sweep uses.
func (c Config) EffectiveGamma() float64 {
	if c.Gamma > 0 {
		return c.Gamma
	}
	return c.Eps / 4
}

// Cluster describes one discovered cluster at the trajectory level.
type Cluster struct {
	// Segments are the member trajectory partitions.
	Segments []geom.Segment
	// Members indexes into Output.Items.
	Members []int
	// Trajectories is the sorted set of participating trajectory ids
	// (PTR, Definition 10).
	Trajectories []int
	// Representative is the cluster's representative trajectory — the
	// common sub-trajectory. It may be nil when the cluster is too compact
	// for two sweep points to survive the γ filter.
	Representative []geom.Point
}

// Output is the full result of a TRACLUS run.
type Output struct {
	// Items are the pooled trajectory partitions fed to clustering.
	Items []segclust.Item
	// Result is the raw segment-clustering outcome.
	Result *segclust.Result
	// Clusters pairs each cluster with its representative trajectory.
	Clusters []Cluster
}

// NumClusters returns the number of clusters that survived the
// trajectory-cardinality filter.
func (o *Output) NumClusters() int { return len(o.Clusters) }

// AvgSegmentsPerCluster returns the mean cluster size in segments (0 when
// there are no clusters) — the statistic of Section 5.4.
func (o *Output) AvgSegmentsPerCluster() float64 {
	if len(o.Clusters) == 0 {
		return 0
	}
	total := 0
	for _, c := range o.Clusters {
		total += len(c.Members)
	}
	return float64(total) / float64(len(o.Clusters))
}

// PartitionAll runs the MDL partitioning phase over all trajectories in
// parallel (a mdl.PartitionAll worker pool with per-worker scratch) and
// pools the resulting segments as clusterable items (Figure 4, lines 1–3).
// Trajectory weights default to 1 when unset.
func PartitionAll(trs []geom.Trajectory, cfg Config) []segclust.Item {
	items, _ := PartitionAllCtx(context.Background(), trs, cfg, nil)
	return items
}

// PartitionAllCtx is PartitionAll with cooperative cancellation and an
// optional per-trajectory completion hook (invoked from worker goroutines;
// used by the public Pipeline to stream phase progress). A non-nil error is
// always ctx.Err(); the partial partitioning is discarded.
func PartitionAllCtx(ctx context.Context, trs []geom.Trajectory, cfg Config, onTrajectory func()) ([]segclust.Item, error) {
	perTraj, err := mdl.PartitionAllCtx(ctx, trs, cfg.Partition, cfg.Workers, onTrajectory)
	if err != nil {
		return nil, err
	}
	var items []segclust.Item
	for i, segs := range perTraj {
		w := trs[i].Weight
		if w == 0 {
			w = 1
		}
		for _, s := range segs {
			items = append(items, segclust.Item{Seg: s, TrajID: trs[i].ID, Weight: w})
		}
	}
	return items, nil
}

// PartitionAllTimedCtx is PartitionAllCtx for timed trajectories: the MDL
// partitioning runs over the identical deduplicated point stream (so the
// segment geometry is bit-identical to the untimed path on the same
// points), and each pooled item carries the time interval its partition
// spans, index-aligned with the returned items. Trajectory weights default
// to 1 when unset, exactly as the untimed path.
func PartitionAllTimedCtx(ctx context.Context, trs []temporal.TimedTrajectory, cfg Config, onTrajectory func()) ([]segclust.Item, []geometry.Interval, error) {
	type slot struct {
		segs  []geom.Segment
		spans [][2]float64
	}
	out := make([]slot, len(trs))
	scratch := make([]*mdl.Partitioner, par.Workers(cfg.Workers, len(trs)))
	for w := range scratch {
		scratch[w] = mdl.NewPartitioner(cfg.Partition)
	}
	err := par.ForEachCtx(ctx, cfg.Workers, len(trs), func(w, i int) {
		out[i].segs, out[i].spans = scratch[w].PartitionTimed(trs[i].Points, trs[i].Times)
		if onTrajectory != nil {
			onTrajectory()
		}
	})
	if err != nil {
		return nil, nil, err
	}
	var items []segclust.Item
	var ivs []geometry.Interval
	for i, sl := range out {
		w := trs[i].Weight
		if w == 0 {
			w = 1
		}
		for k, s := range sl.segs {
			items = append(items, segclust.Item{Seg: s, TrajID: trs[i].ID, Weight: w})
			ivs = append(ivs, geometry.Interval{Start: sl.spans[k][0], End: sl.spans[k][1]})
		}
	}
	return items, ivs, nil
}

// ValidateTrajectories reports the first invalid input trajectory, wrapped
// the way Run has always wrapped it.
func ValidateTrajectories(trs []geom.Trajectory) error {
	for i := range trs {
		if err := trs[i].Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// ValidateTimedTrajectories reports the first invalid timed input
// trajectory (length mismatch, too few points, or non-monotone times).
func ValidateTimedTrajectories(trs []temporal.TimedTrajectory) error {
	for i := range trs {
		if err := trs[i].Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// Run executes the complete TRACLUS algorithm.
func Run(trs []geom.Trajectory, cfg Config) (*Output, error) {
	return RunCtx(context.Background(), trs, cfg)
}

// RunCtx is Run with cooperative cancellation threaded through every phase;
// the uncancelled path is bit-identical to Run.
func RunCtx(ctx context.Context, trs []geom.Trajectory, cfg Config) (*Output, error) {
	if err := ValidateTrajectories(trs); err != nil {
		return nil, err
	}
	items, err := PartitionAllCtx(ctx, trs, cfg, nil)
	if err != nil {
		return nil, err
	}
	return RunOnItemsCtx(ctx, items, cfg)
}

// RunOnItems executes the grouping and representative phases on
// pre-partitioned items. It is exposed so experiments can reuse one
// partitioning across parameter sweeps. Both phases honour cfg.Workers:
// grouping precomputes ε-neighborhoods concurrently into a flat arena and
// clusters them via parallel union-find over the core-segment ε-graph
// (bit-identical to the serial Figure-12 expansion), and the per-cluster
// sweep-line representatives fan out across a worker pool (each cluster's
// sweep is independent and writes only its own slot, so the output is
// identical to the serial order for every worker count).
func RunOnItems(items []segclust.Item, cfg Config) (*Output, error) {
	return RunOnItemsCtx(context.Background(), items, cfg)
}

// RunOnItemsCtx is RunOnItems with cooperative cancellation.
func RunOnItemsCtx(ctx context.Context, items []segclust.Item, cfg Config) (*Output, error) {
	res, err := segclust.RunCtx(ctx, items, cfg.Segclust(), nil)
	if err != nil {
		return nil, err
	}
	return AssembleCtx(ctx, items, res, cfg, nil, nil)
}

// Segclust projects the engine configuration onto the grouping phase's
// Config, Backend included, so every layer resolves the same index backend.
func (c Config) Segclust() segclust.Config {
	return segclust.Config{
		Eps:      c.Eps,
		MinLns:   c.MinLns,
		MinTrajs: c.MinTrajs,
		Options:  c.Distance,
		Index:    c.Index,
		Backend:  c.Backend,
		Workers:  c.Workers,
	}
}

// RepresentativeFunc builds one cluster's representative trajectory from
// its member segments and weights. It is the pluggable third phase: nil
// selects the paper's sweep-line algorithm.
type RepresentativeFunc func(ctx context.Context, segs []geom.Segment, weights []float64) ([]geom.Point, error)

// AssembleCtx runs the representative phase over an existing grouping and
// assembles the full Output: per cluster, the member segments and weights
// are gathered and rep (nil = the §4.3 sweep under cfg.MinLns and
// EffectiveGamma) builds the representative, fanned across cfg.Workers with
// each cluster writing only its own slot. onCluster, if non-nil, is invoked
// once per completed cluster (possibly from worker goroutines). It is the
// assembly half of RunOnItems, split out so the public Pipeline can swap
// the grouping and representative stages independently.
func AssembleCtx(ctx context.Context, items []segclust.Item, res *segclust.Result, cfg Config, rep RepresentativeFunc, onCluster func()) (*Output, error) {
	out := &Output{Items: items, Result: res}
	swCfg := sweep.Config{MinLns: cfg.MinLns, Gamma: cfg.EffectiveGamma()}
	out.Clusters = make([]Cluster, len(res.Clusters))
	repErrs := make([]error, len(res.Clusters))
	err := par.ForEachCtx(ctx, cfg.Workers, len(res.Clusters), func(_, ci int) {
		c := res.Clusters[ci]
		segs := make([]geom.Segment, len(c.Members))
		weights := make([]float64, len(c.Members))
		for i, m := range c.Members {
			segs[i] = items[m].Seg
			weights[i] = items[m].Weight
		}
		var rp []geom.Point
		if rep == nil {
			rp = sweep.Representative(segs, weights, swCfg)
		} else {
			rp, repErrs[ci] = rep(ctx, segs, weights)
		}
		out.Clusters[ci] = Cluster{
			Segments:       segs,
			Members:        c.Members,
			Trajectories:   c.Trajectories,
			Representative: rp,
		}
		if onCluster != nil {
			onCluster()
		}
	})
	if err != nil {
		return nil, err
	}
	for _, rerr := range repErrs {
		if rerr != nil {
			return nil, fmt.Errorf("core: representative: %w", rerr)
		}
	}
	return out, nil
}
