package core

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mdl"
	"repro/internal/synth"
)

func sceneConfig() Config {
	cfg := DefaultConfig()
	cfg.Eps = 30
	cfg.MinLns = 6
	cfg.Partition = mdl.Config{CostAdvantage: 15, MinLength: 40}
	return cfg
}

func TestRunOnCorridorScene(t *testing.T) {
	trs := synth.CorridorScene(3, 10, 24, 4, 1)
	out, err := Run(trs, sceneConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out.NumClusters() != 3 {
		t.Fatalf("clusters = %d, want 3", out.NumClusters())
	}
	for i, c := range out.Clusters {
		if len(c.Trajectories) < 6 {
			t.Errorf("cluster %d has only %d trajectories", i, len(c.Trajectories))
		}
		if len(c.Representative) < 2 {
			t.Errorf("cluster %d has no representative", i)
		}
		if len(c.Segments) != len(c.Members) {
			t.Errorf("cluster %d: segments/members mismatch", i)
		}
	}
}

func TestRepresentativeFollowsCorridor(t *testing.T) {
	trs := synth.CorridorScene(1, 12, 24, 3, 2) // one horizontal corridor
	out, err := Run(trs, sceneConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out.NumClusters() != 1 {
		t.Fatalf("clusters = %d, want 1", out.NumClusters())
	}
	rep := out.Clusters[0].Representative
	if len(rep) < 2 {
		t.Fatal("no representative")
	}
	// The corridor is horizontal: the representative should be too.
	y := rep[0].Y
	for _, p := range rep {
		if math.Abs(p.Y-y) > 20 {
			t.Errorf("representative strays vertically: %v", p)
		}
	}
	span := math.Abs(rep[len(rep)-1].X - rep[0].X)
	if span < 300 {
		t.Errorf("representative span %v too short", span)
	}
}

func TestPartitionAllParallelMatchesSerial(t *testing.T) {
	trs := synth.CorridorScene(4, 8, 30, 4, 3)
	serial := sceneConfig()
	serial.Workers = 1
	parallel := sceneConfig()
	parallel.Workers = 8
	a := PartitionAll(trs, serial)
	b := PartitionAll(trs, parallel)
	if len(a) != len(b) {
		t.Fatalf("segment counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("segment %d differs", i)
		}
	}
}

func TestRunValidatesInput(t *testing.T) {
	bad := []geom.Trajectory{geom.NewTrajectory(0, []geom.Point{geom.Pt(0, 0)})}
	if _, err := Run(bad, sceneConfig()); err == nil {
		t.Error("single-point trajectory accepted")
	}
	nan := []geom.Trajectory{{ID: 0, Weight: 1, Points: []geom.Point{geom.Pt(0, 0), {X: math.NaN(), Y: 1}}}}
	if _, err := Run(nan, sceneConfig()); err == nil {
		t.Error("NaN trajectory accepted")
	}
}

func TestRunPropagatesClusterConfigErrors(t *testing.T) {
	trs := synth.CorridorScene(1, 4, 10, 2, 4)
	cfg := sceneConfig()
	cfg.Eps = 0
	if _, err := Run(trs, cfg); err == nil {
		t.Error("Eps=0 accepted")
	}
}

func TestWeightsDefaultToOne(t *testing.T) {
	trs := synth.CorridorScene(1, 8, 20, 3, 5)
	for i := range trs {
		trs[i].Weight = 0 // unset
	}
	items := PartitionAll(trs, sceneConfig())
	for _, it := range items {
		if it.Weight != 1 {
			t.Fatalf("weight = %v, want 1", it.Weight)
		}
	}
}

func TestAvgSegmentsPerCluster(t *testing.T) {
	out := &Output{}
	if got := out.AvgSegmentsPerCluster(); got != 0 {
		t.Errorf("empty = %v", got)
	}
	out.Clusters = []Cluster{
		{Members: []int{1, 2, 3}},
		{Members: []int{4}},
	}
	if got := out.AvgSegmentsPerCluster(); got != 2 {
		t.Errorf("avg = %v", got)
	}
}

func TestGammaDefault(t *testing.T) {
	cfg := Config{Eps: 40}
	if got := cfg.EffectiveGamma(); got != 10 {
		t.Errorf("default gamma = %v, want Eps/4", got)
	}
	cfg.Gamma = 3
	if got := cfg.EffectiveGamma(); got != 3 {
		t.Errorf("explicit gamma = %v", got)
	}
}

func TestEmptyInput(t *testing.T) {
	out, err := Run(nil, sceneConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out.NumClusters() != 0 || len(out.Items) != 0 {
		t.Error("empty input produced output")
	}
}
