package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cpus := runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, n, want int
	}{
		{0, 10, min(cpus, 10)},
		{-3, 10, min(cpus, 10)},
		{4, 10, 4},
		{4, 2, 2},
		{1, 100, 1},
		{4, 0, 0},
		{4, -1, 0},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
}

func TestForEachCoversEveryItemOnce(t *testing.T) {
	// n values straddle chunk boundaries of the chunked dispatcher: 1, a
	// non-multiple of every chunk size, exact multiples, and a large run.
	for _, n := range []int{1, 7, 63, 64, 65, 1000, 4097} {
		for _, workers := range []int{1, 2, 7, 0} {
			counts := make([]int32, n)
			ForEach(workers, n, func(_, i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: item %d visited %d times", n, workers, i, c)
				}
			}
		}
	}
}

// TestForEachCtxEachItemAtMostOnceUnderCancellation pins the chunked
// dispatcher's exactly-once contract in the presence of cancellation: a
// cancelled run may drop items (whole chunks or the tail of the chunk in
// flight) but must never visit an index twice, and an uncancelled run must
// still visit every index exactly once.
func TestForEachCtxEachItemAtMostOnceUnderCancellation(t *testing.T) {
	for _, workers := range []int{2, 4, 0} {
		for trial := 0; trial < 20; trial++ {
			const n = 5000
			cancelAt := int64(1 + trial*97%1500)
			ctx, cancel := context.WithCancel(context.Background())
			counts := make([]int32, n)
			var visited atomic.Int64
			err := ForEachCtx(ctx, workers, n, func(_, i int) {
				atomic.AddInt32(&counts[i], 1)
				if visited.Add(1) == cancelAt {
					cancel()
				}
			})
			for i, c := range counts {
				if c > 1 {
					t.Fatalf("workers=%d trial=%d: item %d visited %d times", workers, trial, i, c)
				}
				if err == nil && c != 1 {
					t.Fatalf("workers=%d trial=%d: uncancelled run missed item %d", workers, trial, i)
				}
			}
			cancel()
		}
	}
}

func TestForEachWorkerIDsIndexScratch(t *testing.T) {
	const n = 500
	workers := Workers(4, n)
	scratch := make([]int, workers)
	got := ForEach(4, n, func(w, _ int) {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range [0,%d)", w, workers)
		}
		scratch[w]++ // data race here would fail -race if ids were shared
	})
	if got != workers {
		t.Fatalf("ForEach returned %d workers, want %d", got, workers)
	}
	total := 0
	for _, c := range scratch {
		total += c
	}
	if total != n {
		t.Fatalf("scratch counts sum to %d, want %d", total, n)
	}
}

func TestForEachSerialRunsInline(t *testing.T) {
	const n = 10
	last := -1
	ForEach(1, n, func(w, i int) {
		if w != 0 {
			t.Fatalf("serial path used worker id %d", w)
		}
		if i != last+1 {
			t.Fatalf("serial path visited %d after %d, want in-order", i, last)
		}
		last = i
	})
	if last != n-1 {
		t.Fatalf("serial path stopped at %d", last)
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	if got := ForEach(4, 0, func(_, _ int) { called = true }); got != 0 || called {
		t.Fatalf("ForEach over empty range: workers=%d called=%v", got, called)
	}
}

// TestForEachCtxCompletesUncancelled pins that the ctx-aware loop without
// cancellation is exactly ForEach: every item exactly once, nil error.
func TestForEachCtxCompletesUncancelled(t *testing.T) {
	for _, workers := range []int{1, 4, 0} {
		const n = 500
		counts := make([]int32, n)
		err := ForEachCtx(context.Background(), workers, n, func(_, i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, c)
			}
		}
	}
}

// TestForEachCtxStopsOnCancel pins cooperative cancellation: a context
// cancelled partway through makes the loop return ctx.Err() without
// visiting every item, at every worker count (including the inline serial
// path).
func TestForEachCtxStopsOnCancel(t *testing.T) {
	for _, workers := range []int{1, 4, 0} {
		const n = 100000
		ctx, cancel := context.WithCancel(context.Background())
		var visited atomic.Int64
		err := ForEachCtx(ctx, workers, n, func(_, i int) {
			if visited.Add(1) == 10 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Parallel workers may each finish their in-flight item plus drain a
		// small buffered backlog; nothing near n must have run.
		if v := visited.Load(); v >= n {
			t.Fatalf("workers=%d: visited %d of %d items despite cancellation", workers, v, n)
		}
		cancel()
	}
}

// TestForEachCtxPreCancelled pins the fast path: an already-done context
// visits nothing.
func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		called := atomic.Int64{}
		err := ForEachCtx(ctx, workers, 50, func(_, _ int) { called.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if called.Load() != 0 {
			t.Fatalf("workers=%d: %d items ran under a pre-cancelled context", workers, called.Load())
		}
	}
}
