package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cpus := runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, n, want int
	}{
		{0, 10, min(cpus, 10)},
		{-3, 10, min(cpus, 10)},
		{4, 10, 4},
		{4, 2, 2},
		{1, 100, 1},
		{4, 0, 0},
		{4, -1, 0},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
}

func TestForEachCoversEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		const n = 1000
		counts := make([]int32, n)
		ForEach(workers, n, func(_, i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachWorkerIDsIndexScratch(t *testing.T) {
	const n = 500
	workers := Workers(4, n)
	scratch := make([]int, workers)
	got := ForEach(4, n, func(w, _ int) {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range [0,%d)", w, workers)
		}
		scratch[w]++ // data race here would fail -race if ids were shared
	})
	if got != workers {
		t.Fatalf("ForEach returned %d workers, want %d", got, workers)
	}
	total := 0
	for _, c := range scratch {
		total += c
	}
	if total != n {
		t.Fatalf("scratch counts sum to %d, want %d", total, n)
	}
}

func TestForEachSerialRunsInline(t *testing.T) {
	const n = 10
	last := -1
	ForEach(1, n, func(w, i int) {
		if w != 0 {
			t.Fatalf("serial path used worker id %d", w)
		}
		if i != last+1 {
			t.Fatalf("serial path visited %d after %d, want in-order", i, last)
		}
		last = i
	})
	if last != n-1 {
		t.Fatalf("serial path stopped at %d", last)
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	if got := ForEach(4, 0, func(_, _ int) { called = true }); got != 0 || called {
		t.Fatalf("ForEach over empty range: workers=%d called=%v", got, called)
	}
}
