// Package par is the repo-wide worker-pool primitive behind every parallel
// phase of the TRACLUS pipeline (MDL partitioning, ε-neighborhood
// precomputation, representative sweeps, quality evaluation). It exists so
// all phases resolve a Workers request the same way — ≤ 0 means "all CPUs"
// (GOMAXPROCS), and parallelism never exceeds the number of independent
// work items — and so determinism reasoning lives in one place: ForEach
// dispatches items dynamically, therefore callers must write results into
// per-item (or per-worker) slots rather than fold them in arrival order.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a worker-count request against n independent work items:
// requested ≤ 0 becomes runtime.GOMAXPROCS(0), and the result is clamped to
// n so no goroutine ever idles from birth. n ≤ 0 yields 0.
func Workers(requested, n int) int {
	if n <= 0 {
		return 0
	}
	if requested <= 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	if requested > n {
		requested = n
	}
	return requested
}

// ForEach invokes fn(worker, i) exactly once for every i in [0, n), fanned
// out across Workers(requested, n) goroutines. The worker argument is in
// [0, workers) and identifies the calling goroutine, so callers can index
// per-worker scratch (buffers, counters) without locking. Items are handed
// out dynamically (good load balance when per-item cost varies, as with
// trajectories of different lengths or neighborhoods of different sizes),
// so fn must not depend on which worker serves which item beyond scratch
// indexing. With one worker everything runs inline on the calling
// goroutine — the serial path stays goroutine-free.
//
// It returns the resolved worker count (useful for sizing scratch before
// the call via Workers, or for asserting the serial path in tests).
func ForEach(requested, n int, fn func(worker, i int)) int {
	workers := Workers(requested, n)
	forEach(context.Background(), workers, n, fn)
	return workers
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done, the
// dispatcher stops handing out items and each worker abandons its queue
// before starting another item, so the call returns within roughly one
// item's worth of work. It returns ctx.Err() when the loop was cut short and
// nil when every item ran. Callers must treat any partially-written output
// as garbage on a non-nil return — items are dropped, not retried.
//
// Cancellation never tears down a running fn mid-item (fn does not take a
// ctx), so per-item state stays consistent; promptness is bounded by the
// cost of one item, the scheduling quantum of the pool.
func ForEachCtx(ctx context.Context, requested, n int, fn func(worker, i int)) error {
	return forEach(ctx, Workers(requested, n), n, fn)
}

func forEach(ctx context.Context, workers, n int, fn func(worker, i int)) error {
	// The Background/TODO fast path (no Done channel) skips every per-item
	// check, so ForEach costs exactly what it did before cancellation
	// existed.
	done := ctx.Done()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if done != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			fn(0, i)
		}
		return nil
	}
	next := make(chan int, 2*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				if done != nil && ctx.Err() != nil {
					continue // drain the queue without working
				}
				fn(w, i)
			}
		}(w)
	}
	if done == nil {
		for i := 0; i < n; i++ {
			next <- i
		}
	} else {
	feed:
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-done:
				break feed
			}
		}
	}
	close(next)
	wg.Wait()
	if done != nil {
		return ctx.Err()
	}
	return nil
}
