// Package par is the repo-wide worker-pool primitive behind every parallel
// phase of the TRACLUS pipeline (MDL partitioning, ε-neighborhood
// precomputation, representative sweeps, quality evaluation). It exists so
// all phases resolve a Workers request the same way — ≤ 0 means "all CPUs"
// (GOMAXPROCS), and parallelism never exceeds the number of independent
// work items — and so determinism reasoning lives in one place: ForEach
// dispatches items dynamically, therefore callers must write results into
// per-item (or per-worker) slots rather than fold them in arrival order.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a worker-count request against n independent work items:
// requested ≤ 0 becomes runtime.GOMAXPROCS(0), and the result is clamped to
// n so no goroutine ever idles from birth. n ≤ 0 yields 0.
func Workers(requested, n int) int {
	if n <= 0 {
		return 0
	}
	if requested <= 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	if requested > n {
		requested = n
	}
	return requested
}

// ForEach invokes fn(worker, i) exactly once for every i in [0, n), fanned
// out across Workers(requested, n) goroutines. The worker argument is in
// [0, workers) and identifies the calling goroutine, so callers can index
// per-worker scratch (buffers, counters) without locking. Items are handed
// out dynamically in small contiguous index chunks — one channel round-trip
// amortised over several items, so tiny work items (a cached-neighborhood
// lookup, a memcpy) don't drown in dispatch overhead, while the chunk count
// stays high enough (~16 per worker) to keep dynamic load balance when
// per-item cost varies, as with trajectories of different lengths or
// neighborhoods of different sizes. fn must not depend on which worker
// serves which item beyond scratch indexing. With one worker everything
// runs inline on the calling goroutine — the serial path stays
// goroutine-free.
//
// It returns the resolved worker count (useful for sizing scratch before
// the call via Workers, or for asserting the serial path in tests).
func ForEach(requested, n int, fn func(worker, i int)) int {
	workers := Workers(requested, n)
	forEach(context.Background(), workers, n, fn)
	return workers
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done, the
// dispatcher stops handing out items and each worker abandons its queue
// before starting another item, so the call returns within roughly one
// item's worth of work. It returns ctx.Err() when the loop was cut short and
// nil when every item ran. Callers must treat any partially-written output
// as garbage on a non-nil return — items are dropped, not retried.
//
// Cancellation never tears down a running fn mid-item (fn does not take a
// ctx), so per-item state stays consistent; promptness is bounded by the
// cost of one item, the scheduling quantum of the pool.
func ForEachCtx(ctx context.Context, requested, n int, fn func(worker, i int)) error {
	return forEach(ctx, Workers(requested, n), n, fn)
}

// chunkSize picks the dispatch granularity: contiguous index chunks large
// enough to amortise the channel round-trip over tiny work items, small
// enough (≥ ~16 chunks per worker, capped at 64 items) that dynamic
// balancing still absorbs skewed per-item costs.
func chunkSize(workers, n int) int {
	c := n / (workers * 16)
	if c > 64 {
		c = 64
	}
	if c < 1 {
		c = 1
	}
	return c
}

func forEach(ctx context.Context, workers, n int, fn func(worker, i int)) error {
	// The Background/TODO fast path (no Done channel) skips every per-item
	// check, so ForEach costs exactly what it did before cancellation
	// existed.
	done := ctx.Done()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if done != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			fn(0, i)
		}
		return nil
	}
	chunk := chunkSize(workers, n)
	next := make(chan int, 2*workers) // chunk start indices
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for start := range next {
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					// Checked per item, not per chunk, so cancellation
					// promptness stays bounded by one work item.
					if done != nil && ctx.Err() != nil {
						break // abandon the chunk; the outer loop drains the queue
					}
					fn(w, i)
				}
			}
		}(w)
	}
	if done == nil {
		for start := 0; start < n; start += chunk {
			next <- start
		}
	} else {
	feed:
		for start := 0; start < n; start += chunk {
			select {
			case next <- start:
			case <-done:
				break feed
			}
		}
	}
	close(next)
	wg.Wait()
	if done != nil {
		return ctx.Err()
	}
	return nil
}
