package params

// The estimation-rewire identity: evaluating ε-candidates through the
// dendrogram must return the exact Estimate the per-ε neighborhood path
// returns — the annealer's seeded walk visits the same candidates and sees
// the same entropies, so the argmin, entropy, evals, and MinLns band are
// all equal — while performing zero distance calls beyond the one build.

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dendro"
	"repro/internal/lsdist"
	"repro/internal/segclust"
	"repro/internal/spindex"
	"repro/internal/synth"
)

func estItems(t *testing.T) []segclust.Item {
	t.Helper()
	trs := synth.CorridorScene(3, 10, 20, 5, 13)
	cfg := core.DefaultConfig()
	cfg.Partition.CostAdvantage, cfg.Partition.MinLength = 15, 40
	items := core.PartitionAll(trs, cfg)
	if len(items) < 30 {
		t.Fatalf("scene too small: %d items", len(items))
	}
	return items
}

func TestEstimateDendroIdentity(t *testing.T) {
	items := estItems(t)
	opt := lsdist.Options{Weights: lsdist.DefaultWeights()}
	lo, hi := 5.0, 60.0

	for _, seed := range []int64{0, 1, 42} {
		an := AnnealOptions{Seed: seed}

		// Legacy path: per-ε neighborhood sweeps against the shared index.
		shared := segclust.NewSharedIndexFor(items, opt, spindex.Grid())
		legacy, err := anneal(context.Background(), lo, hi, an, func(eps float64) ([]float64, error) {
			return shared.NeighborhoodWeightsCtx(context.Background(), eps, an.Workers)
		})
		if err != nil {
			t.Fatal(err)
		}

		// Dendrogram path: one build, every candidate answered from it.
		d, err := dendro.FromShared(context.Background(),
			segclust.NewSharedIndexFor(items, opt, spindex.Grid()), hi, an.Workers)
		if err != nil {
			t.Fatal(err)
		}
		calls := d.DistCalls()
		viaDendro, err := EstimateEpsDendroCtx(context.Background(), d, lo, hi, an)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, viaDendro) {
			t.Errorf("seed %d: estimates differ:\n legacy %+v\n dendro %+v", seed, legacy, viaDendro)
		}
		if d.DistCalls() != calls {
			t.Errorf("seed %d: annealing over the dendrogram performed %d extra distance calls",
				seed, d.DistCalls()-calls)
		}

		// The public entry point dispatches to the dendrogram path for a
		// finite hi and must land on the same estimate.
		public, err := EstimateEpsSharedCtx(context.Background(),
			segclust.NewSharedIndexFor(items, opt, spindex.Grid()), lo, hi, an)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, public) {
			t.Errorf("seed %d: EstimateEpsSharedCtx diverged from the legacy annealer", seed)
		}
	}
}

// TestEstimateUnboundedHiFallback pins the legacy per-ε path for the one
// range a dendrogram cannot cover: an unbounded hi must behave exactly as
// it always has (the direct annealer over per-ε neighborhood sweeps),
// neither erroring nor attempting an infinite-radius precompute.
func TestEstimateUnboundedHiFallback(t *testing.T) {
	items := estItems(t)
	opt := lsdist.Options{Weights: lsdist.DefaultWeights()}
	an := AnnealOptions{Iterations: 10}
	shared := segclust.NewSharedIndexFor(items, opt, spindex.Grid())
	got, err := EstimateEpsSharedCtx(context.Background(), shared, 5, math.Inf(1), an)
	if err != nil {
		t.Fatalf("unbounded hi: %v", err)
	}
	want, err := anneal(context.Background(), 5, math.Inf(1), an, func(eps float64) ([]float64, error) {
		return shared.NeighborhoodWeightsCtx(context.Background(), eps, an.Workers)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("unbounded hi diverged from the legacy annealer:\n got %+v\nwant %+v", got, want)
	}
}

func TestSweepDendroMatchesShared(t *testing.T) {
	items := estItems(t)
	opt := lsdist.Options{Weights: lsdist.DefaultWeights()}
	shared := segclust.NewSharedIndexFor(items, opt, spindex.Grid())
	eps := []float64{4, 9, 16, 25, 36, 49}
	want := SweepShared(shared, eps, 0)
	d, err := dendro.FromShared(context.Background(), shared, 49, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SweepDendro(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("sweep curves differ:\n shared %+v\n dendro %+v", want, got)
	}
}
