package params

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/lsdist"
	"repro/internal/segclust"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEntropyUniformIsMaximal(t *testing.T) {
	uniform := []float64{4, 4, 4, 4}
	if got, want := Entropy(uniform), 2.0; !approx(got, want, 1e-12) {
		t.Errorf("uniform entropy = %v, want %v", got, want)
	}
	skewed := []float64{13, 1, 1, 1}
	if Entropy(skewed) >= Entropy(uniform) {
		t.Error("skewed distribution should have lower entropy (Section 4.4)")
	}
}

func TestEntropyEdgeCases(t *testing.T) {
	if got := Entropy(nil); got != 0 {
		t.Errorf("empty entropy = %v", got)
	}
	if got := Entropy([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero entropy = %v", got)
	}
	if got := Entropy([]float64{5}); got != 0 {
		t.Errorf("single-element entropy = %v", got)
	}
	// Zero entries are skipped, not NaN.
	if got := Entropy([]float64{2, 0, 2}); math.IsNaN(got) || !approx(got, 1, 1e-12) {
		t.Errorf("entropy with zeros = %v", got)
	}
}

func TestAverage(t *testing.T) {
	if got := Average([]float64{1, 2, 3}); !approx(got, 2, 1e-12) {
		t.Errorf("Average = %v", got)
	}
	if got := Average(nil); got != 0 {
		t.Errorf("Average(nil) = %v", got)
	}
}

func TestSuggestMinLns(t *testing.T) {
	lo, hi := SuggestMinLns(4.39) // the paper's hurricane value → 5..7
	if lo != 5 || hi != 7 {
		t.Errorf("SuggestMinLns(4.39) = %d..%d, want 5..7", lo, hi)
	}
	lo, hi = SuggestMinLns(7.63) // the paper's elk value → 9..11
	if lo != 9 || hi != 11 {
		t.Errorf("SuggestMinLns(7.63) = %d..%d, want 9..11", lo, hi)
	}
	lo, hi = SuggestMinLns(0) // clamped
	if lo < 2 || hi < lo {
		t.Errorf("SuggestMinLns(0) = %d..%d", lo, hi)
	}
}

// testItems builds two dense corridors plus scattered noise so the entropy
// curve has an interior minimum.
func testItems(rng *rand.Rand) []segclust.Item {
	var items []segclust.Item
	id := 0
	for c := 0; c < 2; c++ {
		cy := 100 + 300*float64(c)
		for i := 0; i < 40; i++ {
			x := rng.Float64() * 200
			items = append(items, segclust.Item{
				Seg:    geom.Seg(x, cy+rng.NormFloat64()*4, x+80, cy+rng.NormFloat64()*4),
				TrajID: id % 15,
				Weight: 1,
			})
			id++
		}
	}
	for i := 0; i < 20; i++ {
		items = append(items, segclust.Item{
			Seg: geom.Seg(rng.Float64()*1000, rng.Float64()*600,
				rng.Float64()*1000, rng.Float64()*600),
			TrajID: 100 + i,
			Weight: 1,
		})
	}
	return items
}

func TestSweepMatchesDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := testItems(rng)
	eps := []float64{10, 20, 30}
	pts := Sweep(items, eps, lsdist.DefaultOptions(), segclust.IndexGrid, 2)
	if len(pts) != 3 {
		t.Fatalf("sweep length = %d", len(pts))
	}
	for i, p := range pts {
		if p.Eps != eps[i] {
			t.Errorf("eps order changed: %v", p.Eps)
		}
		n := segclust.NeighborhoodWeights(items, eps[i], lsdist.DefaultOptions(), segclust.IndexNone, 1)
		if !approx(p.Entropy, Entropy(n), 1e-9) {
			t.Errorf("eps=%v entropy %v != direct %v", p.Eps, p.Entropy, Entropy(n))
		}
		if !approx(p.AvgNeighbors, Average(n), 1e-9) {
			t.Errorf("eps=%v avg %v != direct %v", p.Eps, p.AvgNeighbors, Average(n))
		}
	}
}

func TestEstimateEpsGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := testItems(rng)
	var eps []float64
	for e := 2.0; e <= 80; e += 2 {
		eps = append(eps, e)
	}
	est, err := EstimateEpsGrid(items, eps, lsdist.DefaultOptions(), segclust.IndexGrid, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The minimum must be interior (the paper's Figure 16 shape): neither
	// the smallest nor the largest ε.
	if est.Eps <= 2 || est.Eps >= 80 {
		t.Errorf("grid optimum at boundary: %v", est.Eps)
	}
	if est.MinLnsLo < 2 || est.MinLnsHi < est.MinLnsLo {
		t.Errorf("MinLns range %d..%d", est.MinLnsLo, est.MinLnsHi)
	}
	if est.Evaluations != len(eps) {
		t.Errorf("Evaluations = %d", est.Evaluations)
	}
}

func TestEstimateEpsAnnealingNearGridOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := testItems(rng)
	var epsGrid []float64
	for e := 2.0; e <= 80; e += 2 {
		epsGrid = append(epsGrid, e)
	}
	grid, err := EstimateEpsGrid(items, epsGrid, lsdist.DefaultOptions(), segclust.IndexGrid, 0)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := EstimateEps(items, 2, 80, lsdist.DefaultOptions(), segclust.IndexGrid,
		AnnealOptions{Iterations: 80, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Annealing should land at an entropy no worse than ~2% above the
	// grid optimum.
	if sa.Entropy > grid.Entropy*1.02 {
		t.Errorf("annealed entropy %v far above grid optimum %v (eps %v vs %v)",
			sa.Entropy, grid.Entropy, sa.Eps, grid.Eps)
	}
}

func TestEstimateEpsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := testItems(rng)
	opt := AnnealOptions{Iterations: 30, Seed: 9}
	a, err := EstimateEps(items, 2, 60, lsdist.DefaultOptions(), segclust.IndexGrid, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateEps(items, 2, 60, lsdist.DefaultOptions(), segclust.IndexGrid, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Eps != b.Eps || a.Entropy != b.Entropy {
		t.Error("EstimateEps not deterministic for fixed seed")
	}
}

func TestEstimateEpsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := testItems(rng)
	if _, err := EstimateEps(items, 0, 10, lsdist.DefaultOptions(), segclust.IndexGrid, AnnealOptions{}); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := EstimateEps(items, 10, 5, lsdist.DefaultOptions(), segclust.IndexGrid, AnnealOptions{}); err == nil {
		t.Error("hi<lo accepted")
	}
	if _, err := EstimateEps(nil, 1, 10, lsdist.DefaultOptions(), segclust.IndexGrid, AnnealOptions{}); err == nil {
		t.Error("empty items accepted")
	}
	if _, err := EstimateEpsGrid(items, nil, lsdist.DefaultOptions(), segclust.IndexGrid, 0); err == nil {
		t.Error("empty eps grid accepted")
	}
}

// TestEstimateEpsCtx pins the ctx-aware search: uncancelled it is the same
// seeded walk as EstimateEps; a pre-cancelled context aborts with ctx.Err()
// before evaluating anything.
func TestEstimateEpsCtx(t *testing.T) {
	items := testItems(rand.New(rand.NewSource(3)))
	want, err := EstimateEps(items, 2, 80, lsdist.DefaultOptions(), segclust.IndexGrid, AnnealOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := EstimateEpsCtx(context.Background(), items, 2, 80, lsdist.DefaultOptions(), segclust.IndexGrid, AnnealOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Errorf("EstimateEpsCtx = %+v, EstimateEps = %+v", got, want)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EstimateEpsCtx(ctx, items, 2, 80, lsdist.DefaultOptions(), segclust.IndexGrid, AnnealOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
