// Package params implements the TRACLUS parameter-selection heuristic
// (Section 4.4): pick ε by minimising the Shannon entropy of the
// ε-neighborhood size distribution (Formula 10) with simulated annealing,
// then suggest MinLns as avg|Nε| + 1..3 at the chosen ε.
//
// The intuition from the paper: in a worst-case clustering |Nε(L)| is
// uniform (entropy maximal — ε far too small or far too large), while a
// good clustering makes |Nε(L)| skewed (entropy smaller).
//
// ε evaluations no longer re-run a neighborhood pass per candidate: when
// the search range is bounded, the package precomputes the multi-ε merge
// structure (internal/dendro) from one shared-index candidate pass at the
// range maximum, and every subsequent ε evaluation — the whole annealing
// walk, the whole grid sweep — is binary searches over sorted per-item
// neighbor lists, issuing zero further distance calls. The per-item
// weights a dendrogram reports are exactly the weights a fresh pass
// reports for order-independent sums (unit/integer weights, the universal
// case in this repo), so the seeded annealing walk and its Estimate are
// unchanged. An unbounded (hi = +Inf) range falls back to the per-ε
// shared-index pass, which remains bit-identical to the historical path.
// Callers that already indexed the items (the public Pipeline) share that
// single index via the *Shared entry points instead of building a second
// one; callers that already built a dendrogram hand it to the *Dendro
// entry points.
package params

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"repro/internal/dendro"
	"repro/internal/lsdist"
	"repro/internal/segclust"
)

// Entropy computes H(X) of Formula 10 from the (weighted) ε-neighborhood
// cardinalities: p(x_i) = |Nε(x_i)| / Σ_j |Nε(x_j)|, H = -Σ p log2 p.
// Zero-cardinality entries contribute nothing; an empty or all-zero input
// has zero entropy.
func Entropy(neighborhood []float64) float64 {
	var total float64
	for _, w := range neighborhood {
		total += w
	}
	if total <= 0 {
		return 0
	}
	var h float64
	for _, w := range neighborhood {
		if w <= 0 {
			continue
		}
		p := w / total
		h -= p * math.Log2(p)
	}
	return h
}

// Average returns avg|Nε(L)| over the input.
func Average(neighborhood []float64) float64 {
	if len(neighborhood) == 0 {
		return 0
	}
	var sum float64
	for _, w := range neighborhood {
		sum += w
	}
	return sum / float64(len(neighborhood))
}

// SuggestMinLns returns the paper's recommended MinLns range at the optimal
// ε: avg|Nε(L)| + 1 through avg|Nε(L)| + 3 (Section 4.4), rounded to
// integers and clamped to at least 2.
func SuggestMinLns(avgNeighbors float64) (lo, hi int) {
	lo = int(math.Round(avgNeighbors)) + 1
	hi = int(math.Round(avgNeighbors)) + 3
	if lo < 2 {
		lo = 2
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// EntropyPoint is one sample of the entropy curve (Figures 16 and 19).
type EntropyPoint struct {
	Eps          float64
	Entropy      float64
	AvgNeighbors float64
}

// Sweep evaluates the entropy at each ε in epsValues, as plotted in
// Figures 16 and 19. The values need not be sorted. One shared index
// serves every ε (each query derives its own candidate radius).
func Sweep(items []segclust.Item, epsValues []float64, opt lsdist.Options, index segclust.IndexKind, workers int) []EntropyPoint {
	return SweepShared(segclust.NewSharedIndexFor(items, opt, segclust.BackendFor(index)), epsValues, workers)
}

// SweepShared is Sweep over a prebuilt shared index — the entry point for
// callers that already indexed the items for other phases. When the sweep
// has a finite positive maximum ε it builds the merge structure once at
// that maximum and answers every point from it (one candidate pass total
// instead of one per ε); degenerate value sets keep the per-ε pass.
func SweepShared(shared *segclust.SharedIndex, epsValues []float64, workers int) []EntropyPoint {
	maxEps := math.Inf(-1)
	for _, eps := range epsValues {
		if eps > maxEps {
			maxEps = eps
		}
	}
	if maxEps > 0 && !math.IsInf(maxEps, 1) {
		if d, err := dendro.FromShared(context.Background(), shared, maxEps, workers); err == nil {
			if pts, err := SweepDendro(d, epsValues); err == nil {
				return pts
			}
		}
	}
	out := make([]EntropyPoint, len(epsValues))
	for i, eps := range epsValues {
		n := shared.NeighborhoodWeights(eps, workers)
		out[i] = EntropyPoint{Eps: eps, Entropy: Entropy(n), AvgNeighbors: Average(n)}
	}
	return out
}

// SweepDendro evaluates the entropy curve from a prebuilt merge structure:
// every point is answered by binary searches over the precomputed neighbor
// lists, with zero distance evaluations. Every eps must be ≤ d.MaxEps().
func SweepDendro(d *dendro.Dendrogram, epsValues []float64) ([]EntropyPoint, error) {
	out := make([]EntropyPoint, len(epsValues))
	var buf []float64
	for i, eps := range epsValues {
		n, err := d.NeighborhoodWeights(eps, buf)
		if err != nil {
			return nil, err
		}
		buf = n
		out[i] = EntropyPoint{Eps: eps, Entropy: Entropy(n), AvgNeighbors: Average(n)}
	}
	return out, nil
}

// Estimate holds the outcome of the ε search.
type Estimate struct {
	Eps          float64
	Entropy      float64
	AvgNeighbors float64
	MinLnsLo     int
	MinLnsHi     int
	Evaluations  int
}

// DefaultIterations is the default annealing step count; the search
// evaluates DefaultIterations+1 ε candidates (progress reporters size their
// phase with it).
const DefaultIterations = 60

// AnnealOptions tune the simulated-annealing ε search (reference [14] of
// the paper). The zero value is replaced by sensible defaults.
type AnnealOptions struct {
	Iterations int     // annealing steps (default DefaultIterations)
	InitTemp   float64 // initial temperature as a fraction of entropy scale (default 1.0)
	Cooling    float64 // geometric cooling factor per step (default 0.93)
	Seed       int64   // RNG seed (deterministic search)
	Workers    int     // parallelism for neighborhood evaluation
	OnEval     func()  // invoked after each ε evaluation (progress reporting)
}

func (o AnnealOptions) withDefaults() AnnealOptions {
	if o.Iterations <= 0 {
		o.Iterations = DefaultIterations
	}
	if o.InitTemp <= 0 {
		o.InitTemp = 1
	}
	if o.Cooling <= 0 || o.Cooling >= 1 {
		o.Cooling = 0.93
	}
	return o
}

// EstimateEps searches [lo, hi] for the ε minimising H(X) by simulated
// annealing and returns the estimate together with the suggested MinLns
// range. The search is deterministic for a fixed seed.
func EstimateEps(items []segclust.Item, lo, hi float64, opt lsdist.Options, index segclust.IndexKind, an AnnealOptions) (Estimate, error) {
	return EstimateEpsCtx(context.Background(), items, lo, hi, opt, index, an)
}

// EstimateEpsCtx is EstimateEps with cooperative cancellation: ctx is
// checked before every annealing step and threaded into each parallel
// neighborhood evaluation, so the search stops within one ε evaluation of
// ctx ending and returns ctx.Err(). The uncancelled search is bit-identical
// to EstimateEps (same seeded random walk, same evaluations).
func EstimateEpsCtx(ctx context.Context, items []segclust.Item, lo, hi float64, opt lsdist.Options, index segclust.IndexKind, an AnnealOptions) (Estimate, error) {
	// Re-checked by EstimateEpsSharedCtx, but rejecting here first keeps
	// invalid bounds from paying (and counting) an index build.
	if err := checkRange(lo, hi); err != nil {
		return Estimate{}, err
	}
	if len(items) == 0 {
		return Estimate{}, errors.New("params: no segments")
	}
	return EstimateEpsSharedCtx(ctx, segclust.NewSharedIndexFor(items, opt, segclust.BackendFor(index)), lo, hi, an)
}

func checkRange(lo, hi float64) error {
	if !(lo > 0) || !(hi > lo) {
		return errors.New("params: need 0 < lo < hi")
	}
	return nil
}

// EstimateEpsSharedCtx is EstimateEpsCtx over a prebuilt shared index: the
// pipeline builds the dataset's index once and hands it here, so the
// annealing search costs no second index construction. A bounded range
// precomputes the merge structure at hi and anneals over dendrogram
// weight queries — one candidate pass for the whole search instead of one
// per evaluation; an unbounded hi anneals over per-ε index queries. Either
// way the search is bit-identical to EstimateEpsCtx over a fresh index of
// the same backend: same seeded walk, same evaluations, same Estimate.
func EstimateEpsSharedCtx(ctx context.Context, shared *segclust.SharedIndex, lo, hi float64, an AnnealOptions) (Estimate, error) {
	if err := checkRange(lo, hi); err != nil {
		return Estimate{}, err
	}
	if shared.Len() == 0 {
		return Estimate{}, errors.New("params: no segments")
	}
	if !math.IsInf(hi, 1) {
		d, err := dendro.FromShared(ctx, shared, hi, an.Workers)
		if err != nil {
			return Estimate{}, err
		}
		return EstimateEpsDendroCtx(ctx, d, lo, hi, an)
	}
	return anneal(ctx, lo, hi, an, func(eps float64) ([]float64, error) {
		return shared.NeighborhoodWeightsCtx(ctx, eps, an.Workers)
	})
}

// EstimateEpsDendroCtx runs the annealing ε search entirely against a
// prebuilt merge structure: after the dendrogram build, the search issues
// zero distance evaluations (structurally — a Dendrogram holds no searcher
// to evaluate with). hi must not exceed d.MaxEps().
func EstimateEpsDendroCtx(ctx context.Context, d *dendro.Dendrogram, lo, hi float64, an AnnealOptions) (Estimate, error) {
	if err := checkRange(lo, hi); err != nil {
		return Estimate{}, err
	}
	if hi > d.MaxEps() {
		return Estimate{}, errors.New("params: hi exceeds the dendrogram's maximum ε")
	}
	if d.Len() == 0 {
		return Estimate{}, errors.New("params: no segments")
	}
	var buf []float64 // evaluations are serial; one buffer serves them all
	return anneal(ctx, lo, hi, an, func(eps float64) ([]float64, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n, err := d.NeighborhoodWeights(eps, buf)
		buf = n
		return n, err
	})
}

// anneal is the shared simulated-annealing loop (reference [14] of the
// paper): deterministic for a fixed seed, identical regardless of how
// weightsAt computes the ε-neighborhood cardinalities — that is what makes
// the dendrogram-backed search return the same Estimate as the per-ε one.
func anneal(ctx context.Context, lo, hi float64, an AnnealOptions, weightsAt func(eps float64) ([]float64, error)) (Estimate, error) {
	an = an.withDefaults()
	rng := rand.New(rand.NewSource(an.Seed))

	evals := 0
	energy := func(eps float64) (float64, float64, error) {
		evals++
		n, err := weightsAt(eps)
		if err != nil {
			return 0, 0, err
		}
		if an.OnEval != nil {
			an.OnEval()
		}
		return Entropy(n), Average(n), nil
	}

	cur := lo + (hi-lo)/2
	curE, curAvg, err := energy(cur)
	if err != nil {
		return Estimate{}, err
	}
	best, bestE, bestAvg := cur, curE, curAvg

	temp := an.InitTemp
	span := (hi - lo) / 2
	for i := 0; i < an.Iterations; i++ {
		if err := ctx.Err(); err != nil {
			return Estimate{}, err
		}
		cand := cur + rng.NormFloat64()*span*temp
		for cand < lo || cand > hi { // reflect into range
			if cand < lo {
				cand = 2*lo - cand
			}
			if cand > hi {
				cand = 2*hi - cand
			}
		}
		candE, candAvg, err := energy(cand)
		if err != nil {
			return Estimate{}, err
		}
		if candE <= curE || rng.Float64() < math.Exp((curE-candE)/math.Max(temp*0.05, 1e-9)) {
			cur, curE, curAvg = cand, candE, candAvg
		}
		if curE < bestE {
			best, bestE, bestAvg = cur, curE, curAvg
		}
		temp *= an.Cooling
	}
	mlo, mhi := SuggestMinLns(bestAvg)
	return Estimate{
		Eps:          best,
		Entropy:      bestE,
		AvgNeighbors: bestAvg,
		MinLnsLo:     mlo,
		MinLnsHi:     mhi,
		Evaluations:  evals,
	}, nil
}

// EstimateEpsGrid is the exhaustive fallback: evaluate every ε in
// epsValues and return the entropy minimiser. Used for the figure sweeps
// and as the ground truth the annealer is tested against.
func EstimateEpsGrid(items []segclust.Item, epsValues []float64, opt lsdist.Options, index segclust.IndexKind, workers int) (Estimate, error) {
	if len(epsValues) == 0 {
		return Estimate{}, errors.New("params: no eps values")
	}
	pts := Sweep(items, epsValues, opt, index, workers)
	best := pts[0]
	for _, p := range pts[1:] {
		if p.Entropy < best.Entropy {
			best = p
		}
	}
	mlo, mhi := SuggestMinLns(best.AvgNeighbors)
	return Estimate{
		Eps:          best.Eps,
		Entropy:      best.Entropy,
		AvgNeighbors: best.AvgNeighbors,
		MinLnsLo:     mlo,
		MinLnsHi:     mhi,
		Evaluations:  len(epsValues),
	}, nil
}
