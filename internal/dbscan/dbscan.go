// Package dbscan implements the classic DBSCAN density-based clustering
// algorithm for point data (Ester, Kriegel, Sander, Xu, KDD 1996 —
// reference [6] of the TRACLUS paper). TRACLUS's line-segment clustering is
// derived from it; this package is the point-data original, used both as a
// substrate (the paper's Appendix D compares point vs segment density
// behaviour) and as a reference implementation the segment variant is
// tested against on degenerate (point-like) inputs.
package dbscan

import (
	"errors"

	"repro/internal/geom"
	"repro/internal/gridindex"
)

// Noise is the cluster id of noise points.
const Noise = -1

// Result holds cluster assignments: ClusterOf[i] is the cluster of point i
// or Noise; NumClusters counts distinct clusters.
type Result struct {
	ClusterOf   []int
	NumClusters int
}

// Cluster runs DBSCAN over the points with radius eps and density threshold
// minPts (neighborhoods include the query point, as in the original).
func Cluster(pts []geom.Point, eps float64, minPts int) (*Result, error) {
	if eps <= 0 {
		return nil, errors.New("dbscan: eps must be positive")
	}
	if minPts < 1 {
		return nil, errors.New("dbscan: minPts must be at least 1")
	}
	n := len(pts)
	// Index points as zero-length segments in the shared grid index.
	segs := make([]geom.Segment, n)
	for i, p := range pts {
		segs[i] = geom.Segment{Start: p, End: p}
	}
	idx := gridindex.Build(segs, eps)
	seen := make([]bool, n)

	neighborhood := func(i int, dst []int) []int {
		q := geom.Rect{Min: pts[i], Max: pts[i]}
		cands := idx.Candidates(q, eps, nil, seen)
		for _, j := range cands {
			if pts[i].Dist(pts[j]) <= eps {
				dst = append(dst, j)
			}
		}
		return dst
	}

	const unclassified = -2
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unclassified
	}
	clusterID := 0
	var hood, queue []int
	for i := 0; i < n; i++ {
		if labels[i] != unclassified {
			continue
		}
		hood = neighborhood(i, hood[:0])
		if len(hood) < minPts {
			labels[i] = Noise
			continue
		}
		for _, j := range hood {
			labels[j] = clusterID
		}
		queue = queue[:0]
		for _, j := range hood {
			if j != i {
				queue = append(queue, j)
			}
		}
		for len(queue) > 0 {
			m := queue[0]
			queue = queue[1:]
			hood = neighborhood(m, hood[:0])
			if len(hood) < minPts {
				continue
			}
			for _, x := range hood {
				switch labels[x] {
				case unclassified:
					labels[x] = clusterID
					queue = append(queue, x)
				case Noise:
					labels[x] = clusterID
				}
			}
		}
		clusterID++
	}
	return &Result{ClusterOf: labels, NumClusters: clusterID}, nil
}
