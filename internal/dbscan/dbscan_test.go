package dbscan

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/lsdist"
	"repro/internal/segclust"
)

func blobs(rng *rand.Rand, centers []geom.Point, perBlob int, spread float64) []geom.Point {
	var pts []geom.Point
	for _, c := range centers {
		for i := 0; i < perBlob; i++ {
			pts = append(pts, geom.Pt(c.X+rng.NormFloat64()*spread, c.Y+rng.NormFloat64()*spread))
		}
	}
	return pts
}

func TestTwoBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := blobs(rng, []geom.Point{geom.Pt(0, 0), geom.Pt(500, 0)}, 50, 10)
	res, err := Cluster(pts, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("clusters = %d, want 2", res.NumClusters)
	}
	// First 50 points share a cluster; last 50 share the other.
	for i := 1; i < 50; i++ {
		if res.ClusterOf[i] != res.ClusterOf[0] {
			t.Errorf("blob 1 split at %d", i)
		}
	}
	for i := 51; i < 100; i++ {
		if res.ClusterOf[i] != res.ClusterOf[50] {
			t.Errorf("blob 2 split at %d", i)
		}
	}
	if res.ClusterOf[0] == res.ClusterOf[50] {
		t.Error("blobs merged")
	}
}

func TestNoisePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := blobs(rng, []geom.Point{geom.Pt(0, 0)}, 40, 10)
	pts = append(pts, geom.Pt(10000, 10000), geom.Pt(-5000, 3000))
	res, err := Cluster(pts, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.ClusterOf[40] != Noise || res.ClusterOf[41] != Noise {
		t.Error("outliers not labelled noise")
	}
}

func TestMinPtsOne(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1000, 1000)}
	res, err := Cluster(pts, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every point is its own core → no noise.
	if res.NumClusters != 2 {
		t.Errorf("clusters = %d, want 2", res.NumClusters)
	}
	for i, l := range res.ClusterOf {
		if l == Noise {
			t.Errorf("point %d noise with minPts=1", i)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := Cluster(nil, 0, 3); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := Cluster(nil, 1, 0); err == nil {
		t.Error("minPts=0 accepted")
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Cluster(nil, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 || len(res.ClusterOf) != 0 {
		t.Error("empty input clustered")
	}
}

// TestAgreesWithSegmentClustering cross-checks the two DBSCAN
// implementations: points clustered directly must match the same points
// clustered as degenerate segments under the TRACLUS engine (for
// degenerate segments the TRACLUS distance reduces to d⊥+d∥ ≥ Euclidean
// geometry, so we use a scale where both agree on neighborhoods: identical
// points never disagree about connectivity of well-separated blobs).
func TestAgreesWithSegmentClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := blobs(rng, []geom.Point{geom.Pt(0, 0), geom.Pt(800, 0), geom.Pt(0, 800)}, 30, 8)
	res, err := Cluster(pts, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]segclust.Item, len(pts))
	for i, p := range pts {
		items[i] = segclust.Item{Seg: geom.Segment{Start: p, End: p}, TrajID: i, Weight: 1}
	}
	segRes, err := segclust.Run(items, segclust.Config{
		Eps: 50, MinLns: 4, MinTrajs: 1,
		Options: lsdist.DefaultOptions(), Index: segclust.IndexGrid,
	})
	if err != nil {
		t.Fatal(err)
	}
	if segRes.NumClusters() != res.NumClusters {
		t.Fatalf("segment engine found %d clusters, point engine %d",
			segRes.NumClusters(), res.NumClusters)
	}
	// Same partition of points into groups (up to relabeling).
	remap := map[int]int{}
	for i := range pts {
		a, b := res.ClusterOf[i], segRes.ClusterOf[i]
		if (a == Noise) != (b == segclust.Noise) {
			t.Fatalf("point %d: noise disagreement", i)
		}
		if a == Noise {
			continue
		}
		if want, ok := remap[a]; ok {
			if b != want {
				t.Fatalf("point %d: label mismatch", i)
			}
		} else {
			remap[a] = b
		}
	}
}
