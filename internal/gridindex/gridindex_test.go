package gridindex

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randSegs(rng *rand.Rand, n int) []geom.Segment {
	segs := make([]geom.Segment, n)
	for i := range segs {
		x, y := rng.Float64()*1000, rng.Float64()*600
		segs[i] = geom.Seg(x, y, x+rng.Float64()*80-40, y+rng.Float64()*80-40)
	}
	return segs
}

func bruteCandidates(segs []geom.Segment, q geom.Rect, d float64) []int {
	var out []int
	for i, s := range segs {
		if s.Bounds().DistRect(q) <= d {
			out = append(out, i)
		}
	}
	return out
}

func TestCandidatesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	segs := randSegs(rng, 400)
	idx := Build(segs, 0)
	seen := make([]bool, len(segs))
	for trial := 0; trial < 200; trial++ {
		q := segs[rng.Intn(len(segs))].Bounds()
		d := rng.Float64() * 120
		got := idx.Candidates(q, d, nil, seen)
		want := bruteCandidates(segs, q, d)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d candidates, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: candidate mismatch", trial)
			}
		}
	}
}

func TestCandidatesNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Long segments overlap many cells, so dedup matters.
	segs := make([]geom.Segment, 50)
	for i := range segs {
		segs[i] = geom.Seg(0, float64(i), 900, float64(i))
	}
	idx := Build(segs, 10)
	got := idx.Candidates(segs[25].Bounds(), 30, nil, nil)
	seenID := map[int]bool{}
	for _, id := range got {
		if seenID[id] {
			t.Fatalf("duplicate candidate %d", id)
		}
		seenID[id] = true
	}
	_ = rng
}

func TestScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	segs := randSegs(rng, 100)
	idx := Build(segs, 0)
	seen := make([]bool, len(segs))
	// Repeated queries with the shared scratch must keep agreeing with
	// brute force (i.e. the scratch is properly cleared).
	for trial := 0; trial < 50; trial++ {
		q := segs[trial%len(segs)].Bounds()
		got := idx.Candidates(q, 50, nil, seen)
		want := bruteCandidates(segs, q, 50)
		if len(got) != len(want) {
			t.Fatalf("trial %d: scratch corrupted: %d vs %d", trial, len(got), len(want))
		}
	}
	for i, v := range seen {
		if v {
			t.Fatalf("seen[%d] left set", i)
		}
	}
}

func TestEmptyIndex(t *testing.T) {
	idx := Build(nil, 0)
	if idx.Len() != 0 {
		t.Errorf("Len = %d", idx.Len())
	}
	got := idx.Candidates(geom.Rect{Max: geom.Pt(1, 1)}, 10, nil, nil)
	if got != nil {
		t.Errorf("candidates on empty = %v", got)
	}
}

func TestCellSizeHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	segs := randSegs(rng, 100)
	idx := Build(segs, 0)
	if idx.CellSize() <= 0 {
		t.Errorf("heuristic cell size = %v", idx.CellSize())
	}
	fixed := Build(segs, 25)
	if fixed.CellSize() != 25 {
		t.Errorf("explicit cell size = %v", fixed.CellSize())
	}
}

func TestDegenerateSegments(t *testing.T) {
	// All-identical points: extent 0, must not divide by zero.
	segs := []geom.Segment{
		geom.Seg(5, 5, 5, 5),
		geom.Seg(5, 5, 5, 5),
	}
	idx := Build(segs, 0)
	got := idx.Candidates(segs[0].Bounds(), 1, nil, nil)
	if len(got) != 2 {
		t.Errorf("degenerate candidates = %v", got)
	}
}

func TestQueryOutsideBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	segs := randSegs(rng, 50)
	idx := Build(segs, 0)
	far := geom.Rect{Min: geom.Pt(1e6, 1e6), Max: geom.Pt(1e6+1, 1e6+1)}
	if got := idx.Candidates(far, 10, nil, nil); len(got) != 0 {
		t.Errorf("far query returned %v", got)
	}
}
