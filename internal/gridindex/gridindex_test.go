package gridindex

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randSegs(rng *rand.Rand, n int) []geom.Segment {
	segs := make([]geom.Segment, n)
	for i := range segs {
		x, y := rng.Float64()*1000, rng.Float64()*600
		segs[i] = geom.Seg(x, y, x+rng.Float64()*80-40, y+rng.Float64()*80-40)
	}
	return segs
}

func bruteCandidates(segs []geom.Segment, q geom.Rect, d float64) []int {
	var out []int
	for i, s := range segs {
		if s.Bounds().DistRect(q) <= d {
			out = append(out, i)
		}
	}
	return out
}

func TestCandidatesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	segs := randSegs(rng, 400)
	idx := Build(segs, 0)
	seen := make([]bool, len(segs))
	for trial := 0; trial < 200; trial++ {
		q := segs[rng.Intn(len(segs))].Bounds()
		d := rng.Float64() * 120
		got := idx.Candidates(q, d, nil, seen)
		want := bruteCandidates(segs, q, d)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d candidates, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: candidate mismatch", trial)
			}
		}
	}
}

func TestCandidatesNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Long segments overlap many cells, so dedup matters.
	segs := make([]geom.Segment, 50)
	for i := range segs {
		segs[i] = geom.Seg(0, float64(i), 900, float64(i))
	}
	idx := Build(segs, 10)
	got := idx.Candidates(segs[25].Bounds(), 30, nil, nil)
	seenID := map[int]bool{}
	for _, id := range got {
		if seenID[id] {
			t.Fatalf("duplicate candidate %d", id)
		}
		seenID[id] = true
	}
	_ = rng
}

func TestScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	segs := randSegs(rng, 100)
	idx := Build(segs, 0)
	seen := make([]bool, len(segs))
	// Repeated queries with the shared scratch must keep agreeing with
	// brute force (i.e. the scratch is properly cleared).
	for trial := 0; trial < 50; trial++ {
		q := segs[trial%len(segs)].Bounds()
		got := idx.Candidates(q, 50, nil, seen)
		want := bruteCandidates(segs, q, 50)
		if len(got) != len(want) {
			t.Fatalf("trial %d: scratch corrupted: %d vs %d", trial, len(got), len(want))
		}
	}
	for i, v := range seen {
		if v {
			t.Fatalf("seen[%d] left set", i)
		}
	}
}

func TestEmptyIndex(t *testing.T) {
	idx := Build(nil, 0)
	if idx.Len() != 0 {
		t.Errorf("Len = %d", idx.Len())
	}
	got := idx.Candidates(geom.Rect{Max: geom.Pt(1, 1)}, 10, nil, nil)
	if got != nil {
		t.Errorf("candidates on empty = %v", got)
	}
}

func TestCellSizeHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	segs := randSegs(rng, 100)
	idx := Build(segs, 0)
	if idx.CellSize() <= 0 {
		t.Errorf("heuristic cell size = %v", idx.CellSize())
	}
	fixed := Build(segs, 25)
	if fixed.CellSize() != 25 {
		t.Errorf("explicit cell size = %v", fixed.CellSize())
	}
}

func TestDegenerateSegments(t *testing.T) {
	// All-identical points: extent 0, must not divide by zero.
	segs := []geom.Segment{
		geom.Seg(5, 5, 5, 5),
		geom.Seg(5, 5, 5, 5),
	}
	idx := Build(segs, 0)
	got := idx.Candidates(segs[0].Bounds(), 1, nil, nil)
	if len(got) != 2 {
		t.Errorf("degenerate candidates = %v", got)
	}
}

func TestQueryOutsideBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	segs := randSegs(rng, 50)
	idx := Build(segs, 0)
	far := geom.Rect{Min: geom.Pt(1e6, 1e6), Max: geom.Pt(1e6+1, 1e6+1)}
	if got := idx.Candidates(far, 10, nil, nil); len(got) != 0 {
		t.Errorf("far query returned %v", got)
	}
}

// TestZeroLengthSegmentsSpreadBoundedCells is the degenerate-input
// regression for the cell-size heuristic: zero-length segments make
// diagSum 0, and before the O(n) bucket cap the unit-cell fallback sized
// the grid by extent alone — 10 points over a 1e6 extent allocated a
// 4097×4097 grid (~16.8M empty buckets). The cap keeps cells proportional
// to the input, and candidate queries stay exact.
func TestZeroLengthSegmentsSpreadBoundedCells(t *testing.T) {
	segs := make([]geom.Segment, 10)
	for i := range segs {
		x := float64(i) * 1e5
		segs[i] = geom.Seg(x, x, x, x)
	}
	idx := Build(segs, 0)
	if cells := idx.nx * idx.ny; cells > 4*len(segs)+256+2*64 {
		t.Fatalf("degenerate spread input allocated %d cells (nx=%d ny=%d) for %d segments",
			cells, idx.nx, idx.ny, len(segs))
	}
	if !(idx.CellSize() > 0) {
		t.Fatalf("cell size = %v", idx.CellSize())
	}
	for i, s := range segs {
		got := idx.Candidates(s.Bounds(), 1, nil, nil)
		want := bruteCandidates(segs, s.Bounds(), 1)
		sort.Ints(got)
		if !sliceEq(got, want) {
			t.Fatalf("point %d: candidates %v, want %v", i, got, want)
		}
	}
}

// TestSinglePointExtent pins the all-identical-point case: extent 0 in both
// dimensions, diagSum 0 — a 1×1 grid that still answers queries.
func TestSinglePointExtent(t *testing.T) {
	segs := make([]geom.Segment, 5)
	for i := range segs {
		segs[i] = geom.Seg(42, 17, 42, 17)
	}
	idx := Build(segs, 0)
	if idx.nx != 1 || idx.ny != 1 {
		t.Fatalf("single-point extent built a %dx%d grid", idx.nx, idx.ny)
	}
	if got := idx.Candidates(segs[0].Bounds(), 0, nil, nil); len(got) != len(segs) {
		t.Fatalf("exact query returned %d of %d", len(got), len(segs))
	}
	far := geom.Rect{Min: geom.Pt(100, 100), Max: geom.Pt(101, 101)}
	if got := idx.Candidates(far, 1, nil, nil); len(got) != 0 {
		t.Fatalf("far query returned %v", got)
	}
}

// TestNonFiniteCellSizeFallsBackToHeuristic pins that a NaN or Inf cell
// request cannot poison nx/ny (NaN compares false against <= 0, so the old
// guard let it through to int(NaN) grid dimensions): both fall back to the
// same heuristic sizing as cellSize 0.
func TestNonFiniteCellSizeFallsBackToHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	segs := randSegs(rng, 80)
	want := Build(segs, 0)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		idx := Build(segs, bad)
		if idx.CellSize() != want.CellSize() || idx.nx != want.nx || idx.ny != want.ny {
			t.Fatalf("cellSize=%v: built cell=%v grid=%dx%d, heuristic builds cell=%v grid=%dx%d",
				bad, idx.CellSize(), idx.nx, idx.ny, want.CellSize(), want.nx, want.ny)
		}
		q := segs[0].Bounds()
		got := idx.Candidates(q, 40, nil, nil)
		exp := bruteCandidates(segs, q, 40)
		sort.Ints(got)
		if !sliceEq(got, exp) {
			t.Fatalf("cellSize=%v: candidates diverge from brute force", bad)
		}
	}
}

// TestMixedZeroLengthCandidates covers indexes holding both point segments
// and regular ones — the zero-length rows must stay queryable alongside
// their neighbors.
func TestMixedZeroLengthCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	segs := randSegs(rng, 60)
	for i := 0; i < 20; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*600
		segs = append(segs, geom.Seg(x, y, x, y))
	}
	idx := Build(segs, 0)
	for trial := 0; trial < 60; trial++ {
		q := segs[rng.Intn(len(segs))].Bounds()
		d := rng.Float64() * 80
		got := idx.Candidates(q, d, nil, nil)
		want := bruteCandidates(segs, q, d)
		sort.Ints(got)
		if !sliceEq(got, want) {
			t.Fatalf("trial %d: candidates diverge from brute force", trial)
		}
	}
}

func sliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
