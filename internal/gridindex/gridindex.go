// Package gridindex provides a uniform-grid spatial index over line
// segments. It answers the same conservative candidate queries as the
// R-tree (see internal/rtree) and exists both as the fast default for the
// clustering hot path and as an independent cross-check of the R-tree in
// tests: both must refine to identical ε-neighborhoods.
package gridindex

import (
	"math"

	"repro/internal/geom"
)

// Index buckets segment ids by the grid cells their MBRs overlap. The
// buckets are stored CSR-style — one flat id arena plus per-cell offsets —
// instead of a slice-of-slices: two exact-size allocations for the whole
// grid (no per-bucket headers, no append-doubling slack) and cell scans
// stream through contiguous memory.
type Index struct {
	cell    float64
	reqCell float64 // the cell size Build was asked for (0 = heuristic)
	minX    float64
	minY    float64
	nx, ny  int
	cellOff []int32 // cell c's ids live at cellIDs[cellOff[c]:cellOff[c+1]]
	cellIDs []int32
	// rects precomputes every segment MBR for candidate refinement. The
	// copy is deliberate: refinement runs once per (query, candidate) — tens
	// of millions of times per clustering pass — and deriving the MBR there
	// instead measured ~13% slower end-to-end, so this is 32 bytes per
	// segment well spent.
	segs  []geom.Segment
	rects []geom.Rect
	// over holds the ids appended by Insert, bucketed per cell alongside
	// the immutable CSR arena (rebuilding the CSR per append would be a
	// fresh index build in all but name). Grids can reach ~16M cells, so the
	// overlay is a map keyed by the handful of cells appends actually touch,
	// not a dense per-cell slice. Per-cell order is ascending insertion id,
	// matching the CSR's ascending-id invariant.
	over map[int][]int32
}

// cellSpan returns the ids bucketed in cell c.
func (x *Index) cellSpan(c int) []int32 {
	return x.cellIDs[x.cellOff[c]:x.cellOff[c+1]]
}

// Build indexes the given segments with the given cell size. A non-positive
// (or NaN/Inf) cell size picks a heuristic: the average segment MBR
// diagonal (clamped to the data extent), which keeps bucket occupancy
// near-constant for TRACLUS-style inputs. Degenerate inputs are safe: with
// all-zero-length segments (point "segments", diagonal sum 0) or a
// single-point extent the heuristic falls back to a unit cell, and the
// bucket count is always capped at O(len(segs)) so a handful of points
// spread over a huge extent cannot allocate millions of empty cells.
func Build(segs []geom.Segment, cellSize float64) *Index {
	idx := &Index{cell: cellSize, reqCell: cellSize}
	if len(segs) == 0 {
		idx.cell = 1
		return idx
	}
	bounds := segs[0].Bounds()
	var diagSum float64
	idx.segs = segs
	idx.rects = make([]geom.Rect, len(segs))
	for i, s := range segs {
		r := s.Bounds()
		idx.rects[i] = r
		bounds = bounds.Union(r)
		diagSum += math.Hypot(r.Width(), r.Height())
	}
	maxDim := math.Max(bounds.Width(), bounds.Height())
	// !(cell > 0) rather than cell <= 0: NaN compares false against every
	// threshold, so an untyped <= would let a NaN request poison nx/ny.
	if !(idx.cell > 0) || math.IsInf(idx.cell, 0) {
		idx.cell = diagSum / float64(len(segs))
		if !(idx.cell > 0) || math.IsInf(idx.cell, 0) {
			idx.cell = 1 // all segments zero-length (diagSum 0) or non-finite
		}
		// Cap the heuristic at ~max(256, 4n) buckets. Candidate sets are
		// exact regardless of cell size (ids are refined against the query
		// rectangle), so this affects only constant factors — and it is
		// what keeps a handful of zero-length segments spread over a large
		// extent (diagSum 0 → unit cell) from sizing nx*ny by extent alone.
		maxCells := float64(4*len(segs) + 256)
		if maxCells > 1<<24 {
			maxCells = 1 << 24
		}
		if side := math.Sqrt(maxCells); maxDim > 0 && idx.cell < maxDim/side {
			idx.cell = maxDim / side
		}
	}
	if maxDim > 0 && idx.cell < maxDim/4096 {
		idx.cell = maxDim / 4096 // cap any grid at ~16M cells
	}
	idx.minX, idx.minY = bounds.Min.X, bounds.Min.Y
	idx.nx = int(bounds.Width()/idx.cell) + 1
	idx.ny = int(bounds.Height()/idx.cell) + 1
	// CSR build: count pass, prefix sum, fill pass. The fill uses the
	// offsets themselves as write cursors and restores them with one
	// overlapping copy (after filling, cellOff[c] is cell c's end, which is
	// exactly cell c+1's start). Per-cell id order is ascending segment id,
	// the same order appending produced.
	nc := idx.nx * idx.ny
	idx.cellOff = make([]int32, nc+1)
	for _, s := range segs {
		idx.eachCell(s.Bounds(), func(c int) { idx.cellOff[c+1]++ })
	}
	for c := 0; c < nc; c++ {
		idx.cellOff[c+1] += idx.cellOff[c]
	}
	idx.cellIDs = make([]int32, idx.cellOff[nc])
	for i, s := range segs {
		idx.eachCell(s.Bounds(), func(c int) {
			idx.cellIDs[idx.cellOff[c]] = int32(i)
			idx.cellOff[c]++
		})
	}
	copy(idx.cellOff[1:], idx.cellOff[:nc])
	idx.cellOff[0] = 0
	return idx
}

// Len returns the number of indexed segments.
func (x *Index) Len() int { return len(x.segs) }

// Insert adds segments to an existing index without rebuilding the CSR
// arena. Appended ids land in per-cell overlay buckets that Candidates scans
// after the arena span of each touched cell.
//
// The grid's extent is frozen at Build time, so an appended segment may fall
// outside it. That is safe: cellRange clamps both the bucketing walk here and
// the query walk in Candidates to the same [0,nx)×[0,ny) box, and clamping is
// monotone — if an appended MBR lies within distance d of a query rectangle,
// their unclamped cell intervals overlap on both axes, and clamping two
// overlapping intervals to one common range keeps them overlapping. Every
// in-range candidate is therefore still enumerated (conservative-candidate
// contract), only with out-of-extent ids piling into edge cells (a constant-
// factor cost that the next full rebuild amortizes away).
//
// The one geometry Build never chose is the empty one (no segments → 1×0
// grid with no extent at all); the first Insert into an empty index rebuilds
// in place with the originally requested cell size instead. Insert is not
// safe for concurrent use with queries.
func (x *Index) Insert(segs []geom.Segment) {
	if len(segs) == 0 {
		return
	}
	if len(x.segs) == 0 {
		*x = *Build(append([]geom.Segment(nil), segs...), x.reqCell)
		return
	}
	if x.over == nil {
		x.over = make(map[int][]int32)
	}
	base := len(x.segs)
	x.segs = append(x.segs, segs...)
	for k, s := range segs {
		r := s.Bounds()
		x.rects = append(x.rects, r)
		id := int32(base + k)
		x.eachCell(r, func(c int) { x.over[c] = append(x.over[c], id) })
	}
}

// CellSize returns the cell size in effect.
func (x *Index) CellSize() float64 { return x.cell }

func (x *Index) cellRange(r geom.Rect) (i0, i1, j0, j1 int) {
	i0 = int((r.Min.X - x.minX) / x.cell)
	i1 = int((r.Max.X - x.minX) / x.cell)
	j0 = int((r.Min.Y - x.minY) / x.cell)
	j1 = int((r.Max.Y - x.minY) / x.cell)
	if i0 < 0 {
		i0 = 0
	}
	if j0 < 0 {
		j0 = 0
	}
	if i1 >= x.nx {
		i1 = x.nx - 1
	}
	if j1 >= x.ny {
		j1 = x.ny - 1
	}
	return
}

func (x *Index) eachCell(r geom.Rect, fn func(c int)) {
	i0, i1, j0, j1 := x.cellRange(r)
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			fn(j*x.nx + i)
		}
	}
}

// Candidates appends to dst the ids of every segment whose MBR lies within
// Euclidean distance d of the rectangle q. Ids may repeat across cells; the
// seen scratch (len = number of segments, zeroed marks) deduplicates. Pass
// a reusable seen slice to avoid allocation; nil allocates one.
func (x *Index) Candidates(q geom.Rect, d float64, dst []int, seen []bool) []int {
	if len(x.segs) == 0 {
		return dst
	}
	if seen == nil {
		seen = make([]bool, len(x.segs))
	}
	grown := q.Expand(d)
	i0, i1, j0, j1 := x.cellRange(grown)
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			c := j*x.nx + i
			for _, id := range x.cellSpan(c) {
				if seen[id] {
					continue
				}
				seen[id] = true
				if x.rects[id].DistRect(q) <= d {
					dst = append(dst, int(id))
				}
			}
			if x.over == nil {
				continue
			}
			for _, id := range x.over[c] {
				if seen[id] {
					continue
				}
				seen[id] = true
				if x.rects[id].DistRect(q) <= d {
					dst = append(dst, int(id))
				}
			}
		}
	}
	// Clear the marks by re-walking the touched cells so the scratch can be
	// reused by the next query.
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			c := j*x.nx + i
			for _, id := range x.cellSpan(c) {
				seen[id] = false
			}
			if x.over == nil {
				continue
			}
			for _, id := range x.over[c] {
				seen[id] = false
			}
		}
	}
	return dst
}
