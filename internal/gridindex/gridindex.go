// Package gridindex provides a uniform-grid spatial index over line
// segments. It answers the same conservative candidate queries as the
// R-tree (see internal/rtree) and exists both as the fast default for the
// clustering hot path and as an independent cross-check of the R-tree in
// tests: both must refine to identical ε-neighborhoods.
package gridindex

import (
	"math"

	"repro/internal/geom"
)

// Index buckets segment ids by the grid cells their MBRs overlap.
type Index struct {
	cell   float64
	minX   float64
	minY   float64
	nx, ny int
	cells  [][]int32
	rects  []geom.Rect
}

// Build indexes the given segments with the given cell size. A non-positive
// (or NaN/Inf) cell size picks a heuristic: the average segment MBR
// diagonal (clamped to the data extent), which keeps bucket occupancy
// near-constant for TRACLUS-style inputs. Degenerate inputs are safe: with
// all-zero-length segments (point "segments", diagonal sum 0) or a
// single-point extent the heuristic falls back to a unit cell, and the
// bucket count is always capped at O(len(segs)) so a handful of points
// spread over a huge extent cannot allocate millions of empty cells.
func Build(segs []geom.Segment, cellSize float64) *Index {
	idx := &Index{cell: cellSize}
	if len(segs) == 0 {
		idx.cell = 1
		return idx
	}
	bounds := segs[0].Bounds()
	var diagSum float64
	idx.rects = make([]geom.Rect, len(segs))
	for i, s := range segs {
		r := s.Bounds()
		idx.rects[i] = r
		bounds = bounds.Union(r)
		diagSum += math.Hypot(r.Width(), r.Height())
	}
	maxDim := math.Max(bounds.Width(), bounds.Height())
	// !(cell > 0) rather than cell <= 0: NaN compares false against every
	// threshold, so an untyped <= would let a NaN request poison nx/ny.
	if !(idx.cell > 0) || math.IsInf(idx.cell, 0) {
		idx.cell = diagSum / float64(len(segs))
		if !(idx.cell > 0) || math.IsInf(idx.cell, 0) {
			idx.cell = 1 // all segments zero-length (diagSum 0) or non-finite
		}
		// Cap the heuristic at ~max(256, 4n) buckets. Candidate sets are
		// exact regardless of cell size (ids are refined against the query
		// rectangle), so this affects only constant factors — and it is
		// what keeps a handful of zero-length segments spread over a large
		// extent (diagSum 0 → unit cell) from sizing nx*ny by extent alone.
		maxCells := float64(4*len(segs) + 256)
		if maxCells > 1<<24 {
			maxCells = 1 << 24
		}
		if side := math.Sqrt(maxCells); maxDim > 0 && idx.cell < maxDim/side {
			idx.cell = maxDim / side
		}
	}
	if maxDim > 0 && idx.cell < maxDim/4096 {
		idx.cell = maxDim / 4096 // cap any grid at ~16M cells
	}
	idx.minX, idx.minY = bounds.Min.X, bounds.Min.Y
	idx.nx = int(bounds.Width()/idx.cell) + 1
	idx.ny = int(bounds.Height()/idx.cell) + 1
	idx.cells = make([][]int32, idx.nx*idx.ny)
	for i, r := range idx.rects {
		idx.eachCell(r, func(c int) { idx.cells[c] = append(idx.cells[c], int32(i)) })
	}
	return idx
}

// Len returns the number of indexed segments.
func (x *Index) Len() int { return len(x.rects) }

// CellSize returns the cell size in effect.
func (x *Index) CellSize() float64 { return x.cell }

func (x *Index) cellRange(r geom.Rect) (i0, i1, j0, j1 int) {
	i0 = int((r.Min.X - x.minX) / x.cell)
	i1 = int((r.Max.X - x.minX) / x.cell)
	j0 = int((r.Min.Y - x.minY) / x.cell)
	j1 = int((r.Max.Y - x.minY) / x.cell)
	if i0 < 0 {
		i0 = 0
	}
	if j0 < 0 {
		j0 = 0
	}
	if i1 >= x.nx {
		i1 = x.nx - 1
	}
	if j1 >= x.ny {
		j1 = x.ny - 1
	}
	return
}

func (x *Index) eachCell(r geom.Rect, fn func(c int)) {
	i0, i1, j0, j1 := x.cellRange(r)
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			fn(j*x.nx + i)
		}
	}
}

// Candidates appends to dst the ids of every segment whose MBR lies within
// Euclidean distance d of the rectangle q. Ids may repeat across cells; the
// seen scratch (len = number of segments, zeroed marks) deduplicates. Pass
// a reusable seen slice to avoid allocation; nil allocates one.
func (x *Index) Candidates(q geom.Rect, d float64, dst []int, seen []bool) []int {
	if len(x.rects) == 0 {
		return dst
	}
	if seen == nil {
		seen = make([]bool, len(x.rects))
	}
	grown := q.Expand(d)
	i0, i1, j0, j1 := x.cellRange(grown)
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			for _, id := range x.cells[j*x.nx+i] {
				if seen[id] {
					continue
				}
				seen[id] = true
				if x.rects[id].DistRect(q) <= d {
					dst = append(dst, int(id))
				}
			}
		}
	}
	// Clear the marks by re-walking the touched cells so the scratch can be
	// reused by the next query.
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			for _, id := range x.cells[j*x.nx+i] {
				seen[id] = false
			}
		}
	}
	return dst
}
