package trackio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/synth"
)

func sample() []geom.Trajectory {
	return []geom.Trajectory{
		{ID: 0, Label: "a", Weight: 1, Points: []geom.Point{geom.Pt(1.5, 2.25), geom.Pt(3, 4)}},
		{ID: 1, Label: "b", Weight: 1, Points: []geom.Point{geom.Pt(-1, 0), geom.Pt(0, 0), geom.Pt(5, -2.5)}},
	}
}

func pointsEqual(t *testing.T, got, want []geom.Trajectory, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trajectories = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i].Points) != len(want[i].Points) {
			t.Fatalf("traj %d: %d points, want %d", i, len(got[i].Points), len(want[i].Points))
		}
		for j := range want[i].Points {
			if !got[i].Points[j].NearEq(want[i].Points[j], tol) {
				t.Fatalf("traj %d point %d: %v, want %v", i, j, got[i].Points[j], want[i].Points[j])
			}
		}
	}
}

func TestBestTrackRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBestTrack(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBestTrack(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pointsEqual(t, got, sample(), 1e-3) // format keeps 3 decimals
}

func TestBestTrackFullScale(t *testing.T) {
	trs := synth.Hurricanes(synth.HurricaneConfig{NumTracks: 50, MeanPoints: 20, Jitter: 3, Seed: 1})
	var buf bytes.Buffer
	if err := WriteBestTrack(&buf, trs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBestTrack(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("storms = %d", len(got))
	}
	if geom.TotalPoints(got) != geom.TotalPoints(trs) {
		t.Error("point count changed in round trip")
	}
}

func TestBestTrackErrors(t *testing.T) {
	cases := []string{
		"AL011950, X",                                      // short header
		"AL011950, X, notanumber",                          // bad count
		"AL011950, X, 2\n1, 2, 3, 4, 5, 6\n",               // truncated storm
		"AL011950, X, 1\n1, 2, 3\n",                        // short fix line
		"AL011950, X, 1\n19500812, 0000, bad, 4, 5, 6\n",   // bad latitude
		"AL011950, X, 1\n19500812, 0000, 1.0, bad, 5, 6\n", // bad longitude
	}
	for i, c := range cases {
		if _, err := ReadBestTrack(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

func TestBestTrackEmpty(t *testing.T) {
	got, err := ReadBestTrack(strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty input = %v", got)
	}
}

func TestTelemetryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTelemetry(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTelemetry(&buf, "")
	if err != nil {
		t.Fatal(err)
	}
	pointsEqual(t, got, sample(), 1e-3)
	if got[0].Label != "a" || got[1].Label != "b" {
		t.Error("labels lost")
	}
}

func TestTelemetrySpeciesFilter(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTelemetry(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTelemetry(bytes.NewReader(buf.Bytes()), "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Label != "a" {
		t.Fatalf("filter = %+v", got)
	}
	got, err = ReadTelemetry(bytes.NewReader(buf.Bytes()), "nosuch")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("unknown species = %v", got)
	}
}

func TestTelemetryOutOfOrderFixes(t *testing.T) {
	in := "species\tanimal\tseq\tx\ty\n" +
		"elk\t3\t2\t30.0\t0.0\n" +
		"elk\t3\t0\t10.0\t0.0\n" +
		"elk\t3\t1\t20.0\t0.0\n"
	got, err := ReadTelemetry(strings.NewReader(in), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Points) != 3 {
		t.Fatalf("got %+v", got)
	}
	for i, want := range []float64{10, 20, 30} {
		if got[0].Points[i].X != want {
			t.Errorf("point %d x = %v, want %v", i, got[0].Points[i].X, want)
		}
	}
}

func TestTelemetryErrors(t *testing.T) {
	cases := []string{
		"elk\t1\t0\t1.0\n",      // 4 fields
		"elk\tx\t0\t1.0\t2.0\n", // bad animal
		"elk\t1\tx\t1.0\t2.0\n", // bad seq
		"elk\t1\t0\tx\t2.0\n",   // bad x
		"elk\t1\t0\t1.0\tx\n",   // bad y
	}
	for i, c := range cases {
		if _, err := ReadTelemetry(strings.NewReader(c), ""); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pointsEqual(t, got, sample(), 1e-6)
	if got[0].ID != 0 || got[1].ID != 1 {
		t.Error("ids lost")
	}
}

func TestCSVHeaderOptional(t *testing.T) {
	in := "5,1.0,2.0\n5,3.0,4.0\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 5 || len(got[0].Points) != 2 {
		t.Fatalf("got %+v", got)
	}
}

func TestCSVPreservesFirstAppearanceOrder(t *testing.T) {
	in := "traj_id,x,y\n9,0,0\n2,1,1\n9,2,2\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 9 || got[1].ID != 2 {
		t.Fatalf("order = %+v", got)
	}
	if len(got[0].Points) != 2 {
		t.Errorf("grouping wrong: %+v", got[0])
	}
}

func TestParseFormat(t *testing.T) {
	for _, name := range []string{"csv", "besttrack", "telemetry"} {
		if _, err := ParseFormat(name); err != nil {
			t.Errorf("ParseFormat(%q): %v", name, err)
		}
	}
	if _, err := ParseFormat("json"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestDetectFormat(t *testing.T) {
	cases := map[string]Format{
		"atlantic.bt":   FormatBestTrack,
		"storms.hurdat": FormatBestTrack,
		"elk.tsv":       FormatTelemetry,
		"tracks.csv":    FormatCSV,
		"no-extension":  FormatCSV,
	}
	for path, want := range cases {
		if got := DetectFormat(path); got != want {
			t.Errorf("DetectFormat(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestGenericReadWriteDispatch(t *testing.T) {
	trs := sample()
	for _, f := range []Format{FormatCSV, FormatBestTrack, FormatTelemetry} {
		var buf bytes.Buffer
		if err := Write(&buf, f, trs); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		got, err := Read(&buf, f, "")
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		pointsEqual(t, got, trs, 1e-3)
	}
	if err := Write(nil, Format("bogus"), trs); err == nil {
		t.Error("bogus write format accepted")
	}
	if _, err := Read(strings.NewReader(""), Format("bogus"), ""); err == nil {
		t.Error("bogus read format accepted")
	}
}

func TestReadWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/tracks.csv"
	if err := WriteFile(path, FormatCSV, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, FormatCSV, "")
	if err != nil {
		t.Fatal(err)
	}
	pointsEqual(t, got, sample(), 1e-3)
	if _, err := ReadFile(dir+"/missing.csv", FormatCSV, ""); err == nil {
		t.Error("missing file accepted")
	}
	if err := WriteFile(dir+"/nosuchdir/x.csv", FormatCSV, sample()); err == nil {
		t.Error("uncreatable path accepted")
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"1,2\n",          // 2 fields
		"1,x,3\n",        // bad x
		"1,2,x\n",        // bad y
		"a,b,c\nx,2,3\n", // bad id on non-header line
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}
