package trackio

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: the parsers must never panic on arbitrary input — they
// either return trajectories or an error. Run with `go test -fuzz
// FuzzReadCSV ./internal/trackio/` for continuous fuzzing; under plain
// `go test` the seed corpus below runs as regression tests.

func FuzzReadCSV(f *testing.F) {
	f.Add("traj_id,x,y\n1,2,3\n")
	f.Add("1,2\n")
	f.Add("")
	f.Add("a,b,c\n1,1e308,1e308\n1,-0,+0\n")
	f.Add("9007199254740993,0.1,0.2\n")
	f.Fuzz(func(t *testing.T, in string) {
		trs, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		// On success every trajectory must be structurally sane enough to
		// re-serialise.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, trs); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
	})
}

func FuzzReadBestTrack(f *testing.F) {
	f.Add("AL011950, STORM0, 1\n19500812, 0000, 1.000, 2.000, 45, 1010\n")
	f.Add("AL011950, STORM0, 9999999\n")
	f.Add("x, y, 0\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		trs, err := ReadBestTrack(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, tr := range trs {
			_ = tr.Points // must be readable without panics
		}
	})
}

func FuzzReadTelemetry(f *testing.F) {
	f.Add("species\tanimal\tseq\tx\ty\nelk\t1\t0\t1.0\t2.0\n")
	f.Add("elk\t-1\t-5\t1.0\t2.0\n")
	f.Add("\t\t\t\t\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		trs, err := ReadTelemetry(strings.NewReader(in), "")
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTelemetry(&buf, trs); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
	})
}

// FuzzReadTimedCSV drives the 4-column decode: whatever the input, a
// successful timed read must re-serialise, with times index-aligned to
// points — and the spatial reader must accept the same bytes (timestamps
// validated, then dropped).
func FuzzReadTimedCSV(f *testing.F) {
	f.Add("traj_id,x,y,t\n1,2,3,4\n")
	f.Add("1,2,3,4\n1,2,3,5\n2,0,0,0\n")
	f.Add("1,2,3\n1,2,3,4\n") // mixed arity: must error, not panic
	f.Add("1,1,1,nan\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		trs, err := ReadTimedCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, tr := range trs {
			if len(tr.Times) != len(tr.Points) {
				t.Fatalf("trajectory %d: %d times for %d points", tr.ID, len(tr.Times), len(tr.Points))
			}
		}
		var buf bytes.Buffer
		if err := WriteTimedCSV(&buf, trs); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
		if _, err := ReadCSV(strings.NewReader(in)); err != nil {
			t.Fatalf("spatial read rejected timed-readable input: %v", err)
		}
	})
}
