package trackio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// randomTrajectories builds structurally valid random trajectories for
// round-trip property tests. Coordinates are quantised to the format's
// 3-decimal precision so round trips are exact.
func randomTrajectories(rng *rand.Rand) []geom.Trajectory {
	n := 1 + rng.Intn(6)
	trs := make([]geom.Trajectory, n)
	for i := range trs {
		m := 2 + rng.Intn(20)
		pts := make([]geom.Point, m)
		for j := range pts {
			pts[j] = geom.Pt(
				float64(rng.Intn(2_000_000))/1000-1000,
				float64(rng.Intn(2_000_000))/1000-1000,
			)
		}
		trs[i] = geom.Trajectory{ID: i, Label: "spec", Weight: 1, Points: pts}
	}
	return trs
}

func trajectoriesEqual(a, b []geom.Trajectory) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Points) != len(b[i].Points) {
			return false
		}
		for j := range a[i].Points {
			if !a[i].Points[j].NearEq(b[i].Points[j], 1e-9) {
				return false
			}
		}
	}
	return true
}

func TestBestTrackRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trs := randomTrajectories(rng)
		var buf bytes.Buffer
		if err := WriteBestTrack(&buf, trs); err != nil {
			return false
		}
		got, err := ReadBestTrack(&buf)
		if err != nil {
			return false
		}
		return trajectoriesEqual(trs, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTelemetryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trs := randomTrajectories(rng)
		var buf bytes.Buffer
		if err := WriteTelemetry(&buf, trs); err != nil {
			return false
		}
		got, err := ReadTelemetry(&buf, "")
		if err != nil {
			return false
		}
		return trajectoriesEqual(trs, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trs := randomTrajectories(rng)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, trs); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return trajectoriesEqual(trs, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
