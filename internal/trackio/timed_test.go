package trackio

// Tests for the optional per-point timestamp column: round-trip, the
// malformed-timestamp regression, mixed-row rejection, and unchanged
// LimitError semantics on four-field input.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/temporal"
)

func timedSample() []temporal.TimedTrajectory {
	return []temporal.TimedTrajectory{
		{ID: 1, Weight: 1,
			Points: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0.5)},
			Times:  []float64{0, 10, 20}},
		{ID: 2, Weight: 1,
			Points: []geom.Point{geom.Pt(-3.25, 4), geom.Pt(-2, 4.125)},
			Times:  []float64{100.5, 160.25}},
	}
}

func TestTimedCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimedCSV(&buf, timedSample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTimedCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := timedSample()
	if len(got) != len(want) {
		t.Fatalf("got %d trajectories, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || len(got[i].Points) != len(want[i].Points) {
			t.Fatalf("trajectory %d: got %+v", i, got[i])
		}
		for j := range want[i].Times {
			if got[i].Times[j] != want[i].Times[j] {
				t.Errorf("trajectory %d time %d: got %v want %v", i, j, got[i].Times[j], want[i].Times[j])
			}
		}
	}
}

// TestTimedCSVMalformedTimestamp is the regression test for the fourth
// column: a non-numeric timestamp must fail with a line-numbered error, not
// parse as zero or silently drop.
func TestTimedCSVMalformedTimestamp(t *testing.T) {
	in := "traj_id,x,y,t\n1,0,0,5\n1,1,0,banana\n"
	_, err := ReadTimedCSV(strings.NewReader(in))
	if err == nil {
		t.Fatal("malformed timestamp accepted")
	}
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "bad t") {
		t.Errorf("error %q does not name the line and field", err)
	}
}

func TestTimedCSVMixedRowsRejected(t *testing.T) {
	in := "1,0,0,5\n1,1,0\n"
	if _, err := ReadTimedCSV(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "mixes timed and untimed") {
		t.Errorf("mixed rows in one trajectory accepted: %v", err)
	}
	// A new trajectory may switch column count; only within-trajectory
	// mixing is an error.
	in = "1,0,0,5\n1,1,0,6\n2,0,0\n2,1,1\n"
	if _, err := NewCSVDecoder(strings.NewReader(in)).DecodeAllCSV(); err != nil {
		t.Errorf("per-trajectory column counts rejected: %v", err)
	}
}

func TestNextTimedRequiresTimestamps(t *testing.T) {
	d := NewCSVDecoder(strings.NewReader("1,0,0\n1,1,0\n"))
	if _, err := d.NextTimed(); err == nil || !strings.Contains(err.Error(), "no timestamp column") {
		t.Errorf("untimed input passed timed decode: %v", err)
	}
}

// TestTimedCSVLimits pins that the fourth column does not change limit
// accounting: limits still trip on the same row as for three-field input,
// and surface as *LimitError (the daemon's 413 contract).
func TestTimedCSVLimits(t *testing.T) {
	in := "1,0,0,1\n1,1,0,2\n1,2,0,3\n"
	d := NewCSVDecoder(strings.NewReader(in))
	d.MaxPoints = 2
	var le *LimitError
	if _, err := d.DecodeAllTimedCSV(); !errors.As(err, &le) || le.What != "points" {
		t.Errorf("MaxPoints on timed rows: got %v, want points LimitError", le)
	}

	d = NewCSVDecoder(strings.NewReader("1,0,0,1\n1,1,0,2\n2,0,0,3\n2,1,1,4\n"))
	d.MaxTrajectories = 1
	if _, err := d.DecodeAllTimedCSV(); !errors.As(err, &le) || le.What != "trajectories" {
		t.Errorf("MaxTrajectories on timed rows: got %v, want trajectories LimitError", le)
	}
}

// TestReadCSVDropsTimestamps pins that the spatial reader accepts timed
// input, validating and then discarding the fourth column.
func TestReadCSVDropsTimestamps(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimedCSV(&buf, timedSample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := timedSample()
	if len(got) != len(want) {
		t.Fatalf("got %d trajectories, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i].Points) != len(want[i].Points) {
			t.Errorf("trajectory %d: %d points, want %d", i, len(got[i].Points), len(want[i].Points))
		}
	}
}

func TestMergeTimedByID(t *testing.T) {
	in := "1,0,0,1\n2,5,5,1\n1,1,0,2\n"
	got, err := ReadTimedCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 1 || len(got[0].Points) != 2 || got[0].Times[1] != 2 {
		t.Errorf("interleaved timed merge wrong: %+v", got)
	}
}
