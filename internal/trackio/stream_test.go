package trackio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestCSVDecoderRoundTrip(t *testing.T) {
	trs := []geom.Trajectory{
		{ID: 3, Weight: 1, Points: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 2), geom.Pt(3, 4)}},
		{ID: 1, Weight: 1, Points: []geom.Point{geom.Pt(-5, 5), geom.Pt(6, -6)}},
		{ID: 7, Weight: 1, Points: []geom.Point{geom.Pt(9, 9), geom.Pt(10, 10)}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, trs); err != nil {
		t.Fatal(err)
	}
	got, err := NewCSVDecoder(&buf).DecodeAllCSV()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trs) {
		t.Fatalf("decoded %d trajectories, want %d", len(got), len(trs))
	}
	for i := range got {
		if got[i].ID != trs[i].ID || len(got[i].Points) != len(trs[i].Points) {
			t.Errorf("trajectory %d: id=%d len=%d, want id=%d len=%d",
				i, got[i].ID, len(got[i].Points), trs[i].ID, len(trs[i].Points))
		}
		for j, p := range got[i].Points {
			if !p.NearEq(trs[i].Points[j], 1e-6) {
				t.Errorf("trajectory %d point %d = %v, want %v", i, j, p, trs[i].Points[j])
			}
		}
	}
}

func TestCSVDecoderStreamsOneAtATime(t *testing.T) {
	in := "traj_id,x,y\n1,0,0\n1,1,1\n2,5,5\n2,6,6\n"
	d := NewCSVDecoder(strings.NewReader(in))
	first, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first.ID != 1 || len(first.Points) != 2 {
		t.Fatalf("first = id %d with %d points", first.ID, len(first.Points))
	}
	second, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != 2 || len(second.Points) != 2 {
		t.Fatalf("second = id %d with %d points", second.ID, len(second.Points))
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
	// The decoder stays terminated.
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("repeated Next err = %v, want io.EOF", err)
	}
}

// TestCSVDecoderContiguousRuns pins the documented difference from ReadCSV:
// a re-appearing id starts a fresh trajectory instead of merging.
func TestCSVDecoderContiguousRuns(t *testing.T) {
	in := "1,0,0\n1,1,1\n2,5,5\n2,5,6\n1,9,9\n1,9,8\n"
	got, err := NewCSVDecoder(strings.NewReader(in)).DecodeAllCSV()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d trajectories, want 3 contiguous runs", len(got))
	}
	if got[0].ID != 1 || got[1].ID != 2 || got[2].ID != 1 {
		t.Fatalf("ids = %d,%d,%d, want 1,2,1", got[0].ID, got[1].ID, got[2].ID)
	}
	merged, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 {
		t.Fatalf("ReadCSV merged into %d trajectories, want 2", len(merged))
	}
}

func TestCSVDecoderErrors(t *testing.T) {
	bad := []string{
		"1,2\n",            // wrong field count
		"1,x,3\n",          // bad x
		"1,2,y\n",          // bad y
		"zzz,1,2\nq,1,2\n", // bad id past the header line
	}
	for _, in := range bad {
		if _, err := NewCSVDecoder(strings.NewReader(in)).DecodeAllCSV(); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
	// Blank lines and a header are fine.
	got, err := NewCSVDecoder(strings.NewReader("traj_id,x,y\n\n1,2,3\n\n")).DecodeAllCSV()
	if err != nil || len(got) != 1 {
		t.Fatalf("header+blanks: %v, %d trajectories", err, len(got))
	}
}

// TestMergeByIDMatchesReadCSV pins format parity between the streaming and
// whole-file CSV paths: DecodeAllCSV + MergeByID must group interleaved ids
// exactly like ReadCSV.
func TestMergeByIDMatchesReadCSV(t *testing.T) {
	in := "0,0,0\n0,1,1\n0,2,2\n1,5,5\n1,6,6\n1,7,7\n0,3,3\n2,9,9\n1,8,8\n"
	want, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := NewCSVDecoder(strings.NewReader(in)).DecodeAllCSV()
	if err != nil {
		t.Fatal(err)
	}
	got := MergeByID(streamed)
	if len(got) != len(want) {
		t.Fatalf("merged %d trajectories, ReadCSV %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || len(got[i].Points) != len(want[i].Points) {
			t.Fatalf("trajectory %d: id=%d len=%d, ReadCSV id=%d len=%d",
				i, got[i].ID, len(got[i].Points), want[i].ID, len(want[i].Points))
		}
		for j := range got[i].Points {
			if !got[i].Points[j].Eq(want[i].Points[j]) {
				t.Errorf("trajectory %d point %d = %v, ReadCSV %v", i, j, got[i].Points[j], want[i].Points[j])
			}
		}
	}
}

func TestCSVDecoderLimits(t *testing.T) {
	in := "1,0,0\n1,1,1\n2,5,5\n2,6,6\n3,7,7\n"
	d := NewCSVDecoder(strings.NewReader(in))
	d.MaxPoints = 3
	_, err := d.DecodeAllCSV()
	var le *LimitError
	if !errors.As(err, &le) || le.What != "points" {
		t.Fatalf("err = %v, want points LimitError", err)
	}

	d = NewCSVDecoder(strings.NewReader(in))
	d.MaxTrajectories = 2
	if _, err := d.DecodeAllCSV(); !errors.As(err, &le) || le.What != "trajectories" {
		t.Fatalf("err = %v, want trajectories LimitError", err)
	}

	// Exactly at the limits is fine.
	d = NewCSVDecoder(strings.NewReader(in))
	d.MaxPoints = 5
	d.MaxTrajectories = 3
	if got, err := d.DecodeAllCSV(); err != nil || len(got) != 3 {
		t.Fatalf("at-limit decode: %v, %d trajectories", err, len(got))
	}
}
