package trackio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// LimitError reports that a streaming decode exceeded a configured bound.
// Servers match it with errors.As to answer 413 instead of 400.
type LimitError struct {
	// What names the exhausted bound ("points" or "trajectories").
	What string
	// Limit is the configured maximum.
	Limit int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("trackio: input exceeds %d %s", e.Limit, e.What)
}

// CSVDecoder streams "traj_id,x,y" rows (header optional) into trajectories
// one at a time, without buffering the whole input — the request-body reader
// behind cmd/traclusd. Unlike ReadCSV, which groups rows by id across the
// whole file, the decoder treats each maximal contiguous run of one id as a
// trajectory (the order WriteCSV produces), so memory is bounded by the
// longest single trajectory plus the configured limits.
type CSVDecoder struct {
	sc   *bufio.Scanner
	line int
	err  error

	// cur is the trajectory being accumulated; curSet marks it live.
	cur    geom.Trajectory
	curSet bool

	// MaxPoints and MaxTrajectories bound the total input when positive;
	// exceeding either yields a *LimitError. Set them before the first Next.
	MaxPoints       int
	MaxTrajectories int
	points, trajs   int
}

// NewCSVDecoder wraps r for streaming CSV decoding.
func NewCSVDecoder(r io.Reader) *CSVDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &CSVDecoder{sc: sc}
}

// Next returns the next trajectory, or io.EOF after the last one. Any other
// error is a parse failure or limit violation; decoding cannot continue
// after either.
func (d *CSVDecoder) Next() (geom.Trajectory, error) {
	if d.err != nil {
		return geom.Trajectory{}, d.err
	}
	for d.sc.Scan() {
		d.line++
		text := strings.TrimSpace(d.sc.Text())
		if text == "" {
			continue
		}
		f := splitCSV(text)
		if len(f) != 3 {
			return geom.Trajectory{}, d.fail(fmt.Errorf("trackio: line %d: expected 3 CSV fields, got %d", d.line, len(f)))
		}
		id, err := strconv.Atoi(f[0])
		if err != nil {
			if d.line == 1 {
				continue // header
			}
			return geom.Trajectory{}, d.fail(fmt.Errorf("trackio: line %d: bad traj_id %q", d.line, f[0]))
		}
		x, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return geom.Trajectory{}, d.fail(fmt.Errorf("trackio: line %d: bad x %q", d.line, f[1]))
		}
		y, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return geom.Trajectory{}, d.fail(fmt.Errorf("trackio: line %d: bad y %q", d.line, f[2]))
		}
		if d.MaxPoints > 0 && d.points >= d.MaxPoints {
			return geom.Trajectory{}, d.fail(&LimitError{What: "points", Limit: d.MaxPoints})
		}
		d.points++
		if d.curSet && id != d.cur.ID {
			out := d.cur
			d.cur = geom.Trajectory{ID: id, Weight: 1, Points: []geom.Point{geom.Pt(x, y)}}
			if err := d.countTrajectory(); err != nil {
				return geom.Trajectory{}, err
			}
			return out, nil
		}
		if !d.curSet {
			d.curSet = true
			d.cur = geom.Trajectory{ID: id, Weight: 1}
			if err := d.countTrajectory(); err != nil {
				return geom.Trajectory{}, err
			}
		}
		d.cur.Points = append(d.cur.Points, geom.Pt(x, y))
	}
	if err := d.sc.Err(); err != nil {
		return geom.Trajectory{}, d.fail(fmt.Errorf("trackio: %w", err))
	}
	if d.curSet {
		d.curSet = false
		return d.cur, nil
	}
	return geom.Trajectory{}, d.fail(io.EOF)
}

func (d *CSVDecoder) countTrajectory() error {
	if d.MaxTrajectories > 0 && d.trajs >= d.MaxTrajectories {
		return d.fail(&LimitError{What: "trajectories", Limit: d.MaxTrajectories})
	}
	d.trajs++
	return nil
}

func (d *CSVDecoder) fail(err error) error {
	d.err = err
	return err
}

// DecodeAllCSV drains the decoder into a slice — the convenience form for
// callers that need the whole (bounded) batch at once. Pass the result
// through MergeByID to recover ReadCSV's whole-input id grouping.
func (d *CSVDecoder) DecodeAllCSV() ([]geom.Trajectory, error) {
	var trs []geom.Trajectory
	for {
		tr, err := d.Next()
		if err == io.EOF {
			return trs, nil
		}
		if err != nil {
			return nil, err
		}
		trs = append(trs, tr)
	}
}

// MergeByID merges trajectories sharing an ID by concatenating their points
// in slice order, keeping first-appearance order — exactly ReadCSV's
// grouping. Combined with DecodeAllCSV it makes the streaming path parse
// interleaved-id input identically to ReadCSV; a later duplicate's
// label/weight are ignored in favour of the first's. The returned slice is
// new, but its Points slices may alias (and extend) the inputs' backing
// arrays — treat the input as consumed.
func MergeByID(trs []geom.Trajectory) []geom.Trajectory {
	out := make([]geom.Trajectory, 0, len(trs))
	at := map[int]int{} // id → index in out
	for _, tr := range trs {
		if i, ok := at[tr.ID]; ok {
			out[i].Points = append(out[i].Points, tr.Points...)
			continue
		}
		at[tr.ID] = len(out)
		out = append(out, tr)
	}
	return out
}
