package trackio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/temporal"
)

// LimitError reports that a streaming decode exceeded a configured bound.
// Servers match it with errors.As to answer 413 instead of 400.
type LimitError struct {
	// What names the exhausted bound ("points" or "trajectories").
	What string
	// Limit is the configured maximum.
	Limit int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("trackio: input exceeds %d %s", e.Limit, e.What)
}

// CSVDecoder streams "traj_id,x,y" rows — or "traj_id,x,y,t" rows carrying a
// per-point timestamp — (header optional) into trajectories one at a time,
// without buffering the whole input — the request-body reader behind
// cmd/traclusd. Unlike ReadCSV, which groups rows by id across the whole
// file, the decoder treats each maximal contiguous run of one id as a
// trajectory (the order WriteCSV produces), so memory is bounded by the
// longest single trajectory plus the configured limits. A trajectory's rows
// must agree on whether the timestamp column is present; mixing within one
// trajectory is a parse error.
type CSVDecoder struct {
	sc   *bufio.Scanner
	line int
	err  error

	// cur is the trajectory being accumulated; curSet marks it live.
	// curTimes is non-nil exactly when cur's rows carry the timestamp
	// column.
	cur      geom.Trajectory
	curTimes []float64
	curSet   bool

	// MaxPoints and MaxTrajectories bound the total input when positive;
	// exceeding either yields a *LimitError. Set them before the first Next.
	MaxPoints       int
	MaxTrajectories int
	points, trajs   int
}

// NewCSVDecoder wraps r for streaming CSV decoding.
func NewCSVDecoder(r io.Reader) *CSVDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &CSVDecoder{sc: sc}
}

// Next returns the next trajectory, or io.EOF after the last one. Any other
// error is a parse failure or limit violation; decoding cannot continue
// after either. Rows carrying the optional timestamp column still parse (the
// timestamp is validated, then dropped); use NextTimed to keep it.
func (d *CSVDecoder) Next() (geom.Trajectory, error) {
	tr, _, err := d.next()
	return tr, err
}

// NextTimed is Next keeping the timestamp column: it returns the next
// trajectory with its per-point timestamps, and fails if the trajectory's
// rows do not carry one.
func (d *CSVDecoder) NextTimed() (temporal.TimedTrajectory, error) {
	tr, times, err := d.next()
	if err != nil {
		return temporal.TimedTrajectory{}, err
	}
	if times == nil {
		return temporal.TimedTrajectory{}, d.fail(fmt.Errorf(
			"trackio: trajectory %d has no timestamp column (timed decode needs traj_id,x,y,t rows)", tr.ID))
	}
	return temporal.TimedTrajectory{
		ID: tr.ID, Label: tr.Label, Weight: tr.Weight, Points: tr.Points, Times: times,
	}, nil
}

func (d *CSVDecoder) next() (geom.Trajectory, []float64, error) {
	if d.err != nil {
		return geom.Trajectory{}, nil, d.err
	}
	for d.sc.Scan() {
		d.line++
		text := strings.TrimSpace(d.sc.Text())
		if text == "" {
			continue
		}
		f := splitCSV(text)
		if len(f) != 3 && len(f) != 4 {
			return geom.Trajectory{}, nil, d.fail(fmt.Errorf("trackio: line %d: expected 3 or 4 CSV fields, got %d", d.line, len(f)))
		}
		id, err := strconv.Atoi(f[0])
		if err != nil {
			if d.line == 1 {
				continue // header
			}
			return geom.Trajectory{}, nil, d.fail(fmt.Errorf("trackio: line %d: bad traj_id %q", d.line, f[0]))
		}
		x, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return geom.Trajectory{}, nil, d.fail(fmt.Errorf("trackio: line %d: bad x %q", d.line, f[1]))
		}
		y, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return geom.Trajectory{}, nil, d.fail(fmt.Errorf("trackio: line %d: bad y %q", d.line, f[2]))
		}
		timed := len(f) == 4
		var ts float64
		if timed {
			if ts, err = strconv.ParseFloat(f[3], 64); err != nil {
				return geom.Trajectory{}, nil, d.fail(fmt.Errorf("trackio: line %d: bad t %q", d.line, f[3]))
			}
		}
		if d.MaxPoints > 0 && d.points >= d.MaxPoints {
			return geom.Trajectory{}, nil, d.fail(&LimitError{What: "points", Limit: d.MaxPoints})
		}
		d.points++
		if d.curSet && id != d.cur.ID {
			out, outTimes := d.cur, d.curTimes
			d.cur = geom.Trajectory{ID: id, Weight: 1, Points: []geom.Point{geom.Pt(x, y)}}
			d.curTimes = nil
			if timed {
				d.curTimes = []float64{ts}
			}
			if err := d.countTrajectory(); err != nil {
				return geom.Trajectory{}, nil, err
			}
			return out, outTimes, nil
		}
		if !d.curSet {
			d.curSet = true
			d.cur = geom.Trajectory{ID: id, Weight: 1}
			d.curTimes = nil
			if err := d.countTrajectory(); err != nil {
				return geom.Trajectory{}, nil, err
			}
		}
		if timed != (d.curTimes != nil) && len(d.cur.Points) > 0 {
			return geom.Trajectory{}, nil, d.fail(fmt.Errorf(
				"trackio: line %d: trajectory %d mixes timed and untimed rows", d.line, id))
		}
		d.cur.Points = append(d.cur.Points, geom.Pt(x, y))
		if timed {
			d.curTimes = append(d.curTimes, ts)
		}
	}
	if err := d.sc.Err(); err != nil {
		return geom.Trajectory{}, nil, d.fail(fmt.Errorf("trackio: %w", err))
	}
	if d.curSet {
		d.curSet = false
		return d.cur, d.curTimes, nil
	}
	return geom.Trajectory{}, nil, d.fail(io.EOF)
}

func (d *CSVDecoder) countTrajectory() error {
	if d.MaxTrajectories > 0 && d.trajs >= d.MaxTrajectories {
		return d.fail(&LimitError{What: "trajectories", Limit: d.MaxTrajectories})
	}
	d.trajs++
	return nil
}

func (d *CSVDecoder) fail(err error) error {
	d.err = err
	return err
}

// DecodeAllCSV drains the decoder into a slice — the convenience form for
// callers that need the whole (bounded) batch at once. Pass the result
// through MergeByID to recover ReadCSV's whole-input id grouping.
func (d *CSVDecoder) DecodeAllCSV() ([]geom.Trajectory, error) {
	var trs []geom.Trajectory
	for {
		tr, err := d.Next()
		if err == io.EOF {
			return trs, nil
		}
		if err != nil {
			return nil, err
		}
		trs = append(trs, tr)
	}
}

// DecodeAllTimedCSV drains the decoder as NextTimed trajectories. Every row
// in the input must carry the timestamp column.
func (d *CSVDecoder) DecodeAllTimedCSV() ([]temporal.TimedTrajectory, error) {
	var trs []temporal.TimedTrajectory
	for {
		tr, err := d.NextTimed()
		if err == io.EOF {
			return trs, nil
		}
		if err != nil {
			return nil, err
		}
		trs = append(trs, tr)
	}
}

// MergeByID merges trajectories sharing an ID by concatenating their points
// in slice order, keeping first-appearance order — exactly ReadCSV's
// grouping. Combined with DecodeAllCSV it makes the streaming path parse
// interleaved-id input identically to ReadCSV; a later duplicate's
// label/weight are ignored in favour of the first's. The returned slice is
// new, but its Points slices may alias (and extend) the inputs' backing
// arrays — treat the input as consumed.
func MergeByID(trs []geom.Trajectory) []geom.Trajectory {
	out := make([]geom.Trajectory, 0, len(trs))
	at := map[int]int{} // id → index in out
	for _, tr := range trs {
		if i, ok := at[tr.ID]; ok {
			out[i].Points = append(out[i].Points, tr.Points...)
			continue
		}
		at[tr.ID] = len(out)
		out = append(out, tr)
	}
	return out
}

// MergeTimedByID is MergeByID for timed trajectories: points and times are
// concatenated in lockstep.
func MergeTimedByID(trs []temporal.TimedTrajectory) []temporal.TimedTrajectory {
	out := make([]temporal.TimedTrajectory, 0, len(trs))
	at := map[int]int{} // id → index in out
	for _, tr := range trs {
		if i, ok := at[tr.ID]; ok {
			out[i].Points = append(out[i].Points, tr.Points...)
			out[i].Times = append(out[i].Times, tr.Times...)
			continue
		}
		at[tr.ID] = len(out)
		out = append(out, tr)
	}
	return out
}
