// Package trackio reads and writes the trajectory data formats used by the
// experiments:
//
//   - Best Track: a simplified HURDAT-style storm format (header line per
//     storm followed by 6-hourly fixes) mirroring the hurricane data set
//     the paper uses (http://weather.unisys.com/hurricane/atlantic/).
//   - Telemetry: a Starkey-project-style TSV of radio-telemetry fixes
//     (species, animal id, sequence number, x, y).
//   - CSV: a minimal trajectory interchange format (traj_id,x,y), with an
//     optional fourth per-point timestamp column (traj_id,x,y,t) for
//     spatiotemporal runs.
//
// The synthetic generators in internal/synth write through these formats
// and the loaders read them back, so the repository exercises the same
// parse-then-cluster pipeline as the paper's tooling.
package trackio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/temporal"
)

// WriteBestTrack serialises trajectories in the simplified Best Track
// format:
//
//	AL011950, STORM0, 21
//	19500812, 0000, 28.000, 94.800, 45, 1010
//	...
//
// Each storm has a header "basinID, name, fixCount" followed by fixCount
// fix lines "date, time, y, x, wind, pressure". Wind and pressure are
// synthesised placeholders (the paper extracts only latitude/longitude).
func WriteBestTrack(w io.Writer, trs []geom.Trajectory) error {
	bw := bufio.NewWriter(w)
	for i, tr := range trs {
		year := 1950 + i%55 // spread storms over 1950–2004 like the paper
		if _, err := fmt.Fprintf(bw, "AL%02d%04d, STORM%d, %d\n", i%30+1, year, tr.ID, len(tr.Points)); err != nil {
			return err
		}
		for j, p := range tr.Points {
			day := 1 + (j/4)%28
			hour := (j % 4) * 600
			if _, err := fmt.Fprintf(bw, "%04d%02d%02d, %04d, %.3f, %.3f, %d, %d\n",
				year, 8+(j/112)%2, day, hour, p.Y, p.X, 30+j%90, 1015-j%40); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBestTrack parses the simplified Best Track format, extracting the
// (x, y) positions exactly as the paper extracts latitude/longitude.
func ReadBestTrack(r io.Reader) ([]geom.Trajectory, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var trs []geom.Trajectory
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := splitCSV(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trackio: line %d: expected storm header with 3 fields, got %d", line, len(fields))
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil || count < 0 {
			return nil, fmt.Errorf("trackio: line %d: bad fix count %q", line, fields[2])
		}
		name := fields[1]
		tr := geom.Trajectory{ID: len(trs), Label: name, Weight: 1}
		for f := 0; f < count; f++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("trackio: storm %q truncated at fix %d/%d", name, f, count)
			}
			line++
			fix := splitCSV(sc.Text())
			if len(fix) != 6 {
				return nil, fmt.Errorf("trackio: line %d: expected 6 fix fields, got %d", line, len(fix))
			}
			y, err := strconv.ParseFloat(fix[2], 64)
			if err != nil {
				return nil, fmt.Errorf("trackio: line %d: bad latitude %q", line, fix[2])
			}
			x, err := strconv.ParseFloat(fix[3], 64)
			if err != nil {
				return nil, fmt.Errorf("trackio: line %d: bad longitude %q", line, fix[3])
			}
			tr.Points = append(tr.Points, geom.Pt(x, y))
		}
		trs = append(trs, tr)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trackio: %w", err)
	}
	return trs, nil
}

// WriteTelemetry serialises trajectories as Starkey-style TSV with the
// header "species\tanimal\tseq\tx\ty".
func WriteTelemetry(w io.Writer, trs []geom.Trajectory) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "species\tanimal\tseq\tx\ty"); err != nil {
		return err
	}
	for _, tr := range trs {
		species := tr.Label
		if species == "" {
			species = "unknown"
		}
		for j, p := range tr.Points {
			if _, err := fmt.Fprintf(bw, "%s\t%d\t%d\t%.3f\t%.3f\n", species, tr.ID, j, p.X, p.Y); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTelemetry parses Starkey-style TSV. species filters rows when
// non-empty (the paper uses elk 1993 and deer 1995 subsets). Rows may be in
// any order; fixes are sorted by sequence number per animal.
func ReadTelemetry(r io.Reader, species string) ([]geom.Trajectory, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	type fix struct {
		seq int
		p   geom.Point
	}
	byAnimal := map[int][]fix{}
	labels := map[int]string{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || (line == 1 && strings.HasPrefix(text, "species")) {
			continue
		}
		f := strings.Split(text, "\t")
		if len(f) != 5 {
			return nil, fmt.Errorf("trackio: line %d: expected 5 TSV fields, got %d", line, len(f))
		}
		if species != "" && f[0] != species {
			continue
		}
		animal, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("trackio: line %d: bad animal id %q", line, f[1])
		}
		seq, err := strconv.Atoi(f[2])
		if err != nil {
			return nil, fmt.Errorf("trackio: line %d: bad seq %q", line, f[2])
		}
		x, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trackio: line %d: bad x %q", line, f[3])
		}
		y, err := strconv.ParseFloat(f[4], 64)
		if err != nil {
			return nil, fmt.Errorf("trackio: line %d: bad y %q", line, f[4])
		}
		byAnimal[animal] = append(byAnimal[animal], fix{seq, geom.Pt(x, y)})
		labels[animal] = f[0]
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trackio: %w", err)
	}
	ids := make([]int, 0, len(byAnimal))
	for id := range byAnimal {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	trs := make([]geom.Trajectory, 0, len(ids))
	for _, id := range ids {
		fixes := byAnimal[id]
		sort.Slice(fixes, func(i, j int) bool { return fixes[i].seq < fixes[j].seq })
		tr := geom.Trajectory{ID: id, Label: labels[id], Weight: 1}
		for _, fx := range fixes {
			tr.Points = append(tr.Points, fx.p)
		}
		trs = append(trs, tr)
	}
	return trs, nil
}

// WriteCSV serialises trajectories as "traj_id,x,y" rows with a header.
func WriteCSV(w io.Writer, trs []geom.Trajectory) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "traj_id,x,y"); err != nil {
		return err
	}
	for _, tr := range trs {
		for _, p := range tr.Points {
			if _, err := fmt.Fprintf(bw, "%d,%.6f,%.6f\n", tr.ID, p.X, p.Y); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCSV parses "traj_id,x,y" rows (header optional). Points are grouped
// by id in first-appearance order within each trajectory. It is the
// whole-input form of the streaming CSVDecoder — one parser serves both
// paths, so their row handling can never diverge.
func ReadCSV(r io.Reader) ([]geom.Trajectory, error) {
	trs, err := NewCSVDecoder(r).DecodeAllCSV()
	if err != nil {
		return nil, err
	}
	return MergeByID(trs), nil
}

// WriteTimedCSV writes timed trajectories as "traj_id,x,y,t" rows with a
// header — the four-column form ReadTimedCSV parses.
func WriteTimedCSV(w io.Writer, trs []temporal.TimedTrajectory) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "traj_id,x,y,t"); err != nil {
		return err
	}
	for _, tr := range trs {
		for i, p := range tr.Points {
			if _, err := fmt.Fprintf(bw, "%d,%.6f,%.6f,%.3f\n", tr.ID, p.X, p.Y, tr.Times[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTimedCSV parses "traj_id,x,y,t" rows (header optional) — ReadCSV with
// the per-point timestamp column required on every row. Grouping matches
// ReadCSV: points (and times, in lockstep) merge by id in first-appearance
// order.
func ReadTimedCSV(r io.Reader) ([]temporal.TimedTrajectory, error) {
	trs, err := NewCSVDecoder(r).DecodeAllTimedCSV()
	if err != nil {
		return nil, err
	}
	return MergeTimedByID(trs), nil
}

func splitCSV(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// Format identifies an on-disk trajectory format.
type Format string

// Supported formats.
const (
	FormatCSV       Format = "csv"
	FormatBestTrack Format = "besttrack"
	FormatTelemetry Format = "telemetry"
)

// ParseFormat validates a format name (as used by the CLI flags).
func ParseFormat(name string) (Format, error) {
	switch Format(name) {
	case FormatCSV, FormatBestTrack, FormatTelemetry:
		return Format(name), nil
	default:
		return "", fmt.Errorf("trackio: unknown format %q (want csv, besttrack, or telemetry)", name)
	}
}

// DetectFormat guesses the format from a file name: .bt/.hurdat →
// Best Track, .tsv → telemetry, anything else CSV.
func DetectFormat(path string) Format {
	switch {
	case strings.HasSuffix(path, ".bt"), strings.HasSuffix(path, ".hurdat"):
		return FormatBestTrack
	case strings.HasSuffix(path, ".tsv"):
		return FormatTelemetry
	default:
		return FormatCSV
	}
}

// Read parses trajectories from r in the given format. species filters
// telemetry rows and is ignored by the other formats.
func Read(r io.Reader, f Format, species string) ([]geom.Trajectory, error) {
	switch f {
	case FormatCSV:
		return ReadCSV(r)
	case FormatBestTrack:
		return ReadBestTrack(r)
	case FormatTelemetry:
		return ReadTelemetry(r, species)
	default:
		return nil, fmt.Errorf("trackio: unknown format %q", f)
	}
}

// ReadFile opens and parses a trajectory file.
func ReadFile(path string, f Format, species string) ([]geom.Trajectory, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return Read(file, f, species)
}

// Write serialises trajectories to w in the given format.
func Write(w io.Writer, f Format, trs []geom.Trajectory) error {
	switch f {
	case FormatCSV:
		return WriteCSV(w, trs)
	case FormatBestTrack:
		return WriteBestTrack(w, trs)
	case FormatTelemetry:
		return WriteTelemetry(w, trs)
	default:
		return fmt.Errorf("trackio: unknown format %q", f)
	}
}

// WriteFile creates path and serialises trajectories into it.
func WriteFile(path string, f Format, trs []geom.Trajectory) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(file, f, trs); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
