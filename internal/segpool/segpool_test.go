package segpool

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func seg(x1, y1, x2, y2 float64) geom.Segment {
	return geom.Segment{Start: geom.Point{X: x1, Y: y1}, End: geom.Point{X: x2, Y: y2}}
}

func randSegs(rng *rand.Rand, n int) []geom.Segment {
	segs := make([]geom.Segment, n)
	for i := range segs {
		segs[i] = seg(rng.NormFloat64()*100, rng.NormFloat64()*100,
			rng.NormFloat64()*100, rng.NormFloat64()*100)
	}
	return segs
}

// TestPoolRoundTrip pins the exactness of the columnar layout: every stored
// coordinate comes back bit for bit through Segment, and every derived
// column equals the scalar code's on-the-fly computation bit for bit.
func TestPoolRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	segs := randSegs(rng, 333)
	segs = append(segs, seg(0, 0, 0, 0), seg(1e154, 0, -1e154, 0)) // Len2 overflow row
	p, err := New(segs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != len(segs) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(segs))
	}
	for i, s := range segs {
		if got := p.Segment(i); got != s {
			t.Fatalf("segment %d round-trips to %v, want %v", i, got, s)
		}
		v := p.View(i)
		w, ok := ViewOf(s)
		if !ok || v != w {
			t.Fatalf("segment %d: View %+v != ViewOf %+v", i, v, w)
		}
		eq := func(name string, got, want float64) {
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("segment %d: %s = %v (%016x), want %v (%016x)",
					i, name, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
		vec := s.Vector()
		eq("DX", v.DX, vec.X)
		eq("DY", v.DY, vec.Y)
		eq("Len2", v.Len2, s.Length2())
		eq("Length", v.Length, s.Length())
	}
}

// TestPoolEmpty checks that the empty dataset builds an empty, queryable
// pool rather than erroring.
func TestPoolEmpty(t *testing.T) {
	p, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 {
		t.Fatalf("empty pool has Len %d", p.Len())
	}
}

// TestPoolRejectsNonFinite checks the build-time gate that keeps datasets
// with NaN/±Inf coordinates on the scalar distance path: New must fail with
// a *NonFiniteError naming the first offending segment, and ViewOf must
// refuse the same inputs.
func TestPoolRejectsNonFinite(t *testing.T) {
	bad := []geom.Segment{
		seg(math.NaN(), 0, 1, 1),
		seg(0, math.Inf(1), 1, 1),
		seg(0, 0, math.Inf(-1), 1),
		seg(0, 0, 1, math.NaN()),
	}
	for i, b := range bad {
		if _, ok := ViewOf(b); ok {
			t.Errorf("ViewOf accepted non-finite segment %v", b)
		}
		segs := append(randSegs(rand.New(rand.NewSource(3)), 5), b)
		_, err := New(segs)
		var nf *NonFiniteError
		if !errors.As(err, &nf) {
			t.Fatalf("case %d: New returned %v, want *NonFiniteError", i, err)
		}
		if nf.Index != 5 || !segBitsEqual(nf.Seg, b) {
			t.Errorf("case %d: error reports segment %d (%v), want 5 (%v)", i, nf.Index, nf.Seg, b)
		}
	}
}

// segBitsEqual compares segments by coordinate bits, so NaN payloads compare
// equal to themselves (struct == would report NaN != NaN).
func segBitsEqual(a, b geom.Segment) bool {
	av := [4]float64{a.Start.X, a.Start.Y, a.End.X, a.End.Y}
	bv := [4]float64{b.Start.X, b.Start.Y, b.End.X, b.End.Y}
	for i := range av {
		if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
			return false
		}
	}
	return true
}

// TestBuildsCounter checks the counter tests use to pin the build-once data
// flow: successful builds tick it, rejected builds do not.
func TestBuildsCounter(t *testing.T) {
	before := Builds()
	if _, err := New(randSegs(rand.New(rand.NewSource(5)), 10)); err != nil {
		t.Fatal(err)
	}
	if got := Builds() - before; got != 1 {
		t.Errorf("successful build ticked counter by %d, want 1", got)
	}
	before = Builds()
	if _, err := New([]geom.Segment{seg(math.NaN(), 0, 1, 1)}); err == nil {
		t.Fatal("expected non-finite build to fail")
	}
	if got := Builds() - before; got != 0 {
		t.Errorf("rejected build ticked counter by %d, want 0", got)
	}
}

// TestColumnsShareBacking pins the single-allocation layout: the five
// columns are carved from one backing array in declaration order, each with
// capacity clipped to its own length so an append can never bleed into the
// neighbouring column.
func TestColumnsShareBacking(t *testing.T) {
	p, err := New(randSegs(rand.New(rand.NewSource(9)), 17))
	if err != nil {
		t.Fatal(err)
	}
	cols := [][]float64{p.X1, p.Y1, p.X2, p.Y2, p.Length}
	for i, c := range cols {
		if len(c) != 17 {
			t.Fatalf("column %d has length %d, want 17", i, len(c))
		}
		if cap(c) != len(c) {
			t.Errorf("column %d has capacity %d > length %d: append could cross columns", i, cap(c), len(c))
		}
	}
}
