package segpool

// Incremental pool growth for the append path. A grown pool is a NEW *Pool
// value: the old one stays valid for concurrent readers (its columns are
// never written again — growth either extends into reserved slack past the
// old length or reallocates), so the owning searcher can publish the grown
// pool with a plain pointer swap once the append is assembled.
//
// Layout under growth: where New packs the five columns back-to-back with no
// slack (X1 at backing[0:n:n], …), a reallocating Grow reserves amortized-
// doubling capacity c ≥ max(2·len, need) and places column k at
// backing[k*c : k*c+len : (k+1)*c]. The three-index slices give every column
// cap(col) == c - so a later Grow within capacity extends each column in
// place by re-slicing, writing only rows past the previous length. The
// prefix a published pool exposes is therefore immutable, which is the whole
// concurrency contract.
//
// Growth is single-writer: only the Searcher that owns the pool may call
// Grow, and it must serialise Grow against itself (appends are serialized by
// the layers above). Concurrent readers of previously-published pools are
// always safe.

import "repro/internal/geom"

// Grow returns a pool over the concatenation of p's segments and segs. On a
// non-finite coordinate in segs it returns a *NonFiniteError and leaves p
// untouched — the caller falls back to the scalar distance path, exactly as
// New would have for the concatenated set. Growth never increments the
// Builds counter: the append path constructs zero new pools from scratch.
func Grow(p *Pool, segs []geom.Segment) (*Pool, error) {
	rows := make([]Seg, len(segs))
	for i, s := range segs {
		v, ok := ViewOf(s)
		if !ok {
			return nil, &NonFiniteError{Index: i, Seg: s}
		}
		rows[i] = v
	}
	m := p.Len()
	need := m + len(rows)
	np := &Pool{}
	if cap(p.X1) >= need {
		// Slack from a previous reallocating Grow: extend each column in
		// place. Rows [0, m) are untouched; rows [m, need) are written below.
		np.X1, np.Y1 = p.X1[:need], p.Y1[:need]
		np.X2, np.Y2 = p.X2[:need], p.Y2[:need]
		np.Length = p.Length[:need]
	} else {
		c := 2 * m
		if c < need {
			c = need
		}
		backing := make([]float64, 5*c)
		np.X1 = backing[0*c : need : 1*c]
		np.Y1 = backing[1*c : 1*c+need : 2*c]
		np.X2 = backing[2*c : 2*c+need : 3*c]
		np.Y2 = backing[3*c : 3*c+need : 4*c]
		np.Length = backing[4*c : 4*c+need : 5*c]
		copy(np.X1, p.X1)
		copy(np.Y1, p.Y1)
		copy(np.X2, p.X2)
		copy(np.Y2, p.Y2)
		copy(np.Length, p.Length)
	}
	for i, v := range rows {
		np.X1[m+i], np.Y1[m+i], np.X2[m+i], np.Y2[m+i] = v.X1, v.Y1, v.X2, v.Y2
		np.Length[m+i] = v.Length
	}
	return np, nil
}
