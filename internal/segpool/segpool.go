// Package segpool provides the columnar (structure-of-arrays) mirror of a
// segment set that the batched distance kernels of internal/lsdist score
// against. The clustering, estimation, and classification hot paths all
// reduce to "evaluate the TRACLUS distance between one query segment and a
// block of candidate segments"; with the classic array-of-structs layout
// every evaluation loads a 4-field geom.Segment through an interface or
// closure call. A Pool instead stores each coordinate in its own contiguous
// float64 slice — the MonetDB "vertical storage" layout — plus the
// per-segment precomputes every distance evaluation re-derives from them
// (direction vector, squared length, length), so a batch kernel streams
// straight through flat arrays with no per-pair dispatch.
//
// A Pool is built once per dataset (NewSearcher in internal/spindex owns
// that build, and the Builds counter lets tests pin it) and is immutable
// afterwards, so any number of goroutines may score against it.
//
// Pools reject non-finite coordinates at build time: the batch kernels
// replicate the scalar distance's floating-point operations exactly, but a
// NaN anywhere makes the longer/shorter ordering comparisons
// degenerate-but-defined in ways no caller should rely on, so the searcher
// layer keeps such datasets on the scalar path instead (the error return
// here is that signal, not a failure).
package segpool

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/geom"
)

// Pool is the columnar segment store. Column i of every slice describes the
// same source segment; all columns share one backing allocation and are
// exactly len(segs) long. The derived columns are bit-identical to what the
// scalar distance computes on the fly:
//
//	Length = math.Hypot(X2-X1, Y2-Y1)   (≡ Segment.Length: Hypot is sign-blind)
//
// The direction vector (DX, DY = X2-X1, Y2-Y1) and squared length
// (Len2 = DX² + DY²) are NOT stored: both are a few flops from coordinates
// already resident in the gather, and re-deriving them there is bit-identical
// (same inputs, same operations as construction would have used) — stored
// columns would be pure extra bandwidth. Length stays precomputed because
// math.Hypot is a function call, not a flop. The angle between two segments
// cannot be precomputed per segment at all; its per-segment ingredients
// (DX, DY, Length) are what the kernels consume.
type Pool struct {
	X1, Y1, X2, Y2 []float64 // endpoint coordinates
	Length         []float64 // Euclidean length
}

// Seg is one segment's row of the pool — the fully precomputed view a
// kernel scores with. Query segments from outside the pool (online
// classification) are lifted into the same shape by ViewOf.
type Seg struct {
	X1, Y1, X2, Y2 float64
	DX, DY         float64
	Len2, Length   float64
}

// NonFiniteError reports the first segment whose coordinates are not all
// finite, which keeps the dataset off the batched kernel path.
type NonFiniteError struct {
	// Index of the offending segment in the input slice.
	Index int
	// Seg is the offending segment.
	Seg geom.Segment
}

func (e *NonFiniteError) Error() string {
	return fmt.Sprintf("segpool: segment %d has non-finite coordinates: %v", e.Index, e.Seg)
}

// builds counts every pool constructed since process start. Tests read it
// (via Builds) to pin the build-once data flow: a model build must
// construct exactly one pool per dataset it indexes, mirroring the
// spindex.Builds index counter.
var builds atomic.Int64

// Builds returns the number of pools built so far.
func Builds() int64 { return builds.Load() }

// New builds the columnar pool over segs. It returns a *NonFiniteError if
// any coordinate is NaN or ±Inf — the caller is expected to fall back to
// the scalar distance path for such inputs, not to fail the run. An empty
// input builds an empty pool.
func New(segs []geom.Segment) (*Pool, error) {
	n := len(segs)
	// One backing array, sliced into the five columns: a single allocation,
	// and each column is contiguous for the kernels' streaming loads.
	backing := make([]float64, 5*n)
	p := &Pool{
		X1: backing[0*n : 1*n : 1*n], Y1: backing[1*n : 2*n : 2*n],
		X2: backing[2*n : 3*n : 3*n], Y2: backing[3*n : 4*n : 4*n],
		Length: backing[4*n : 5*n : 5*n],
	}
	for i, s := range segs {
		v, ok := ViewOf(s)
		if !ok {
			return nil, &NonFiniteError{Index: i, Seg: s}
		}
		p.X1[i], p.Y1[i], p.X2[i], p.Y2[i] = v.X1, v.Y1, v.X2, v.Y2
		p.Length[i] = v.Length
	}
	builds.Add(1)
	return p, nil
}

// Len returns the number of pooled segments.
func (p *Pool) Len() int { return len(p.X1) }

// Segment reconstructs pooled segment i; the round trip through the pool is
// exact (coordinates are stored verbatim).
func (p *Pool) Segment(i int) geom.Segment {
	return geom.Segment{
		Start: geom.Point{X: p.X1[i], Y: p.Y1[i]},
		End:   geom.Point{X: p.X2[i], Y: p.Y2[i]},
	}
}

// View returns pooled segment i as a kernel-ready row. DX/DY/Len2 are
// re-derived from the verbatim-stored coordinates — bit-identical to what
// ViewOf computed at build time, since the inputs and operations match.
func (p *Pool) View(i int) Seg {
	x1, y1, x2, y2 := p.X1[i], p.Y1[i], p.X2[i], p.Y2[i]
	dx, dy := x2-x1, y2-y1
	return Seg{
		X1: x1, Y1: y1, X2: x2, Y2: y2,
		DX: dx, DY: dy, Len2: dx*dx + dy*dy, Length: p.Length[i],
	}
}

// ViewOf lifts an arbitrary segment into a kernel-ready row, computing the
// same derived values pool construction stores. It reports false when a
// coordinate is non-finite (such queries must take the scalar path).
// Derived values may still overflow to ±Inf for extreme finite coordinates;
// that is fine — the kernels replicate the scalar code's operations, which
// overflow identically.
func ViewOf(s geom.Segment) (Seg, bool) {
	if !s.Start.IsFinite() || !s.End.IsFinite() {
		return Seg{}, false
	}
	dx := s.End.X - s.Start.X
	dy := s.End.Y - s.Start.Y
	return Seg{
		X1: s.Start.X, Y1: s.Start.Y, X2: s.End.X, Y2: s.End.Y,
		DX: dx, DY: dy,
		Len2:   dx*dx + dy*dy,
		Length: math.Hypot(dx, dy),
	}, true
}
