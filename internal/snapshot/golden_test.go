package snapshot

// Golden-corpus compatibility test. testdata/golden holds one committed
// snapshot per format version; every CI run decodes each of them and
// checks the decoded model field-for-field, so a codec change that breaks
// reading of previously written snapshots fails loudly instead of
// stranding data on disk. Regenerate the current version's file with
//
//	go test ./internal/snapshot -run TestGoldenCorpus -update
//
// ONLY when introducing a new format version — historical files are
// frozen forever.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/geometry"
)

var update = flag.Bool("update", false, "rewrite the current-version golden snapshot")

// goldenModel is a hand-built model exercising every field of the format:
// multiple clusters, a collapsed representative (fewer points than
// reference segments would imply), negative coordinates, exact float64
// values that do not round-trip through text, (since v2) a dendrogram
// section with a self-neighbor, a negative trajectory id, and a distance
// one ulp under MaxEps, (since v3) a spatiotemporal geometry section with a
// fractional temporal weight and per-cluster windows including a zero-length
// one, and (since v4) a non-zero append epoch.
func goldenModel() *Model {
	return &Model{
		Name: "golden-v1",
		Config: Config{
			Eps:              25.5,
			MinLns:           8,
			MinTrajs:         3,
			WPerp:            1,
			WPar:             1,
			WAngle:           1,
			Undirected:       true,
			CostAdvantage:    15,
			MinSegmentLength: 40,
			Gamma:            0.25,
			Index:            "grid",
		},
		Stats: Stats{
			TotalSegments:   420,
			NoiseSegments:   17,
			RemovedClusters: 2,
			Trajectories:    30,
			Points:          900,
			QMeasure:        1234.5678901234567,
			BuiltAtUnixNano: 1754610000000000000,
			BuildDurationNS: 73000000,
		},
		Clusters: []Cluster{
			{
				Segments:     210,
				Trajectories: 15,
				SSE:          0.1 + 0.2, // 0.30000000000000004 — text round trips lose this
				Representative: []geom.Point{
					{X: -12.5, Y: 3.25}, {X: 0, Y: 0}, {X: 100.125, Y: -7.5},
				},
				Reference: []geom.Segment{
					{Start: geom.Point{X: -12.5, Y: 3.25}, End: geom.Point{X: 0, Y: 0}},
					{Start: geom.Point{X: 0, Y: 0}, End: geom.Point{X: 100.125, Y: -7.5}},
				},
			},
			{
				Segments:     193,
				Trajectories: 12,
				SSE:          9.869604401089358, // π²
				// Collapsed representative: the classifier fell back to member
				// segments. The decoder materialises empty (non-nil) slices.
				Representative: []geom.Point{},
				Reference: []geom.Segment{
					{Start: geom.Point{X: 1e-9, Y: 2e9}, End: geom.Point{X: 3.5, Y: 4.5}},
				},
			},
		},
		Dendro: &Dendro{
			MaxEps: 50,
			Items: []DendroItem{
				{Seg: geom.Segment{Start: geom.Point{X: -12.5, Y: 3.25}, End: geom.Point{X: 0, Y: 0}}, TrajID: 1, Weight: 1},
				{Seg: geom.Segment{Start: geom.Point{X: 0, Y: 0}, End: geom.Point{X: 100.125, Y: -7.5}}, TrajID: 2, Weight: 1},
				{Seg: geom.Segment{Start: geom.Point{X: 1e-9, Y: 2e9}, End: geom.Point{X: 3.5, Y: 4.5}}, TrajID: -3, Weight: 2.5},
			},
			Neighbors: [][]DendroNeighbor{
				{{ID: 0, Dist: 0}, {ID: 1, Dist: 10.0625}, {ID: 2, Dist: 49.999999999999993}},
				{{ID: 1, Dist: 0}, {ID: 0, Dist: 10.0625}},
				{{ID: 2, Dist: 0}},
			},
		},
		Geometry:       "spatiotemporal",
		TemporalWeight: 0.125,
		Windows: []geometry.Interval{
			{Start: 1000.5, End: 2000.25},
			{Start: 3000, End: 3000}, // a single-instant window is legal
		},
		Epoch: 7,
	}
}

func goldenPath(version uint16) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("v%d.snap", version))
}

func TestGoldenCorpus(t *testing.T) {
	if *update {
		data, err := Encode(goldenModel())
		if err != nil {
			t.Fatal(err)
		}
		p := goldenPath(Version)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", p, len(data))
	}

	files, err := filepath.Glob(filepath.Join("testdata", "golden", "*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no golden snapshots committed under testdata/golden")
	}
	haveCurrent := false
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			m, err := Decode(data)
			if err != nil {
				t.Fatalf("golden snapshot no longer decodes: %v", err)
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("golden snapshot decodes but fails validation: %v", err)
			}
			if f == goldenPath(Version) {
				haveCurrent = true
				// The current version must decode to exactly the model that
				// wrote it, and re-encode byte-identically.
				if want := goldenModel(); !reflect.DeepEqual(m, want) {
					t.Errorf("decoded model differs from source:\n got %+v\nwant %+v", m, want)
				}
				re, err := Encode(m)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(re, data) {
					t.Errorf("re-encoding the golden model changed the bytes (%d vs %d): "+
						"the writer no longer produces version %d as committed — bump Version "+
						"and add a new golden file instead of changing this one", len(re), len(data), Version)
				}
			}
		})
	}
	if !haveCurrent {
		t.Errorf("no golden snapshot for current version %d — run with -update to add it", Version)
	}
}
