// Package snapshot is the durable, versioned binary format for served
// TRACLUS models. A snapshot captures everything a replica needs to answer
// classification queries — the build configuration, the per-cluster summary
// statistics, and the representative/reference geometry — and deliberately
// nothing else: the classifier's spatial index is rebuilt on load, so the
// format stays geometry-only and backend-agnostic (a snapshot written by a
// grid-indexed daemon loads identically on one configured for R-trees, and
// an index-layout change never invalidates the corpus on disk).
//
// Wire layout (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "TRACSNAP"
//	8       2     format version (uint16; this package writes Version)
//	10      8     payload length N (uint64)
//	18      4     CRC-32 (IEEE) of the payload
//	22      N     payload
//
// The payload is a fixed field walk (see encodePayload): strings are
// uvarint-length-prefixed UTF-8, counts are uvarints, signed integers are
// zigzag varints, float64s are the 8 raw bytes of math.Float64bits (so the
// round trip is bit-exact, NaN payloads included), and slices are a count
// followed by the elements. Decoding is strict: a truncated input, trailing
// garbage, a checksum mismatch, or an implausible count (one that could not
// fit in the remaining bytes) returns a *CorruptError; a version this
// package does not know returns a *VersionError; a structurally sound
// snapshot whose values are semantically unusable (NaN ε, a cluster with no
// reference geometry, …) returns a *InvalidError. Decode never panics —
// FuzzSnapshotDecode pins that.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/geom"
	"repro/internal/geometry"
)

// Version is the newest format version this package writes and the highest
// it can read. Older versions remain readable forever: the committed golden
// corpus under testdata/golden replays one file per historical version on
// every CI run.
//
// Version history:
//
//	1: name + config + stats + clusters (geometry-only classifier state).
//	2: v1 walk followed by an optional dendrogram section — the multi-ε
//	   merge structure (internal/dendro): item set and per-item sorted
//	   neighbor lists. Prefix sums and the edge replay log are derived
//	   deterministically on load, not stored. v1 snapshots decode to a
//	   model with a nil Dendro (rebuilt lazily by the serving layer).
//	3: v2 walk followed by a geometry section — the geometry kind name,
//	   the temporal weight wT, the optional geodesic projection frame, and
//	   the per-cluster time windows of a spatiotemporal model. v1/v2
//	   snapshots decode with the zero geometry section, i.e. planar — the
//	   exact semantics they were written under.
//	4: v3 walk followed by the append epoch — how many incremental appends
//	   the model has absorbed since its from-scratch build. Earlier
//	   versions decode to epoch 0 (a pure batch build), which is exactly
//	   what they were.
const Version = 4

// magic identifies a snapshot file; it is the first eight bytes.
const magic = "TRACSNAP"

// headerSize is the fixed prefix before the payload.
const headerSize = len(magic) + 2 + 8 + 4

// CorruptError reports an input that is not a well-formed snapshot:
// truncation, trailing bytes, checksum mismatch, or an impossible count.
type CorruptError struct {
	// Offset is the byte position at which decoding failed (payload
	// offsets are relative to the whole input, header included).
	Offset int
	// Reason says what was wrong at that offset.
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("snapshot: corrupt at byte %d: %s", e.Offset, e.Reason)
}

// VersionError reports a snapshot written by a newer format version than
// this binary understands. Older-than-current versions never produce it —
// they decode through their frozen readers.
type VersionError struct {
	// Got is the version the header declares.
	Got uint16
	// Supported is the newest version this package reads.
	Supported uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: unsupported format version %d (this build reads ≤ %d)", e.Got, e.Supported)
}

// InvalidError reports a structurally well-formed snapshot whose decoded
// values cannot describe a servable model (the CRC passed, but the content
// is semantically out of range — e.g. a hand-crafted file).
type InvalidError struct {
	// Field names the offending value.
	Field string
	// Reason says what it must satisfy.
	Reason string
}

func (e *InvalidError) Error() string {
	return fmt.Sprintf("snapshot: invalid %s: %s", e.Field, e.Reason)
}

// Config is the serialized build configuration — every parameter that
// shapes classification of new trajectories against the model. Weights are
// stored resolved (the writer substitutes the paper's defaults for the zero
// value), so a loaded classifier computes the exact same distances.
type Config struct {
	Eps              float64
	MinLns           float64
	MinTrajs         int
	WPerp            float64 // w⊥
	WPar             float64 // w∥
	WAngle           float64 // wθ
	Undirected       bool
	CostAdvantage    float64
	MinSegmentLength float64
	Gamma            float64
	// Index is the spatial-index backend name ("grid", "rtree", "brute",
	// or an accepted alias). It is a serving preference, not part of the
	// model's identity: every backend classifies bit-identically, and the
	// loader may honour or override it.
	Index string
}

// Stats carries the model-level summary numbers that are expensive (or
// impossible) to recompute from geometry alone.
type Stats struct {
	TotalSegments   int
	NoiseSegments   int
	RemovedClusters int
	Trajectories    int
	Points          int
	QMeasure        float64
	BuiltAtUnixNano int64
	BuildDurationNS int64
}

// Cluster is one cluster's snapshot: its summary statistics plus the
// geometry the classifier serves from. Reference is the classifier's exact
// reference-segment list for this cluster — usually the consecutive
// segments of Representative, but the member partitions when the
// representative collapsed — stored verbatim so a loaded classifier indexes
// byte-for-byte the same segments in the same order.
type Cluster struct {
	Segments       int     // member-partition count
	Trajectories   int     // |PTR(C)|, distinct participating trajectories
	SSE            float64 // this cluster's term of the paper's Total SSE
	Representative []geom.Point
	Reference      []geom.Segment
}

// DendroItem is one partitioned segment of the persisted merge structure:
// the geometry plus the trajectory id and weight the clustering semantics
// need (Definition 10 counts distinct trajectories; weights feed the core
// predicate).
type DendroItem struct {
	Seg    geom.Segment
	TrajID int
	Weight float64
}

// DendroNeighbor is one entry of an item's sorted neighbor list.
type DendroNeighbor struct {
	ID   int     // index into Dendro.Items
	Dist float64 // exact TRACLUS distance, ≤ MaxEps
}

// Dendro is the persisted multi-ε merge structure (format v2+): the item
// set and, per item, every neighbor within MaxEps sorted by (Dist, ID).
// Only the neighbor lists are stored — the per-item weight prefix sums and
// the (dist, a, b)-sorted union-find replay log are recomputed on load,
// which is exact: the additions replay in the identical stored order and
// the edge sort key is unique per pair.
//
// Validate checks structural soundness (finite values, ids in range,
// sortedness, no duplicate ids), not cross-list symmetry: a hand-crafted
// asymmetric snapshot yields well-formed but meaningless cuts, never a
// crash.
type Dendro struct {
	MaxEps    float64
	Items     []DendroItem
	Neighbors [][]DendroNeighbor // len == len(Items)
}

// Model is the decoded form of one snapshot.
type Model struct {
	Name     string
	Config   Config
	Stats    Stats
	Clusters []Cluster
	// Dendro is the optional multi-ε merge structure; nil when the
	// snapshot predates format v2 or the model was built without one.
	Dendro *Dendro
	// Geometry names the model's geometry kind — "planar",
	// "spatiotemporal", or "geodesic" (format v3+). The empty string, which
	// every v1/v2 snapshot decodes to, means planar.
	Geometry string
	// TemporalWeight is wT, the spatiotemporal distance weight; meaningful
	// (and only valid non-zero) under the spatiotemporal geometry.
	TemporalWeight float64
	// Frame is the geodesic model's resolved equirectangular projection;
	// nil for every other geometry. A geodesic snapshot must carry one —
	// without it queries cannot project into the model's working frame.
	Frame *geometry.Frame
	// Windows are the per-cluster time windows of a spatiotemporal model,
	// index-aligned with Clusters; empty for every other geometry.
	Windows []geometry.Interval
	// Epoch counts the incremental appends absorbed since the from-scratch
	// build (format v4+); 0 for batch-built models and for snapshots that
	// predate the append path.
	Epoch int64
}

// maxNameLen bounds the model name, mirroring the daemon's name rule.
const maxNameLen = 64

// Validate reports the first semantically unusable field as a
// *InvalidError. Encode refuses invalid models and Decode rejects invalid
// inputs, so every *Model that crosses the codec is servable.
func (m *Model) Validate() error {
	if m.Name == "" || len(m.Name) > maxNameLen {
		return &InvalidError{Field: "Name", Reason: fmt.Sprintf("must be 1..%d bytes", maxNameLen)}
	}
	for _, r := range m.Name {
		if r == '/' || r == '\\' || r == 0 {
			return &InvalidError{Field: "Name", Reason: "must not contain path separators or NUL"}
		}
	}
	c := m.Config
	if !finitePos(c.Eps) {
		return &InvalidError{Field: "Config.Eps", Reason: "must be positive and finite"}
	}
	if !finitePos(c.MinLns) {
		return &InvalidError{Field: "Config.MinLns", Reason: "must be positive and finite"}
	}
	if c.MinTrajs < 0 {
		return &InvalidError{Field: "Config.MinTrajs", Reason: "must be non-negative"}
	}
	for _, w := range [...]struct {
		name string
		v    float64
	}{{"WPerp", c.WPerp}, {"WPar", c.WPar}, {"WAngle", c.WAngle}} {
		if !finiteNonNeg(w.v) {
			return &InvalidError{Field: "Config." + w.name, Reason: "must be non-negative and finite"}
		}
	}
	if c.WPerp == 0 && c.WPar == 0 && c.WAngle == 0 {
		return &InvalidError{Field: "Config.Weights", Reason: "at least one component must be positive"}
	}
	for _, w := range [...]struct {
		name string
		v    float64
	}{{"CostAdvantage", c.CostAdvantage}, {"MinSegmentLength", c.MinSegmentLength}, {"Gamma", c.Gamma}} {
		if !finiteNonNeg(w.v) {
			return &InvalidError{Field: "Config." + w.name, Reason: "must be non-negative and finite"}
		}
	}
	s := m.Stats
	for _, n := range [...]struct {
		name string
		v    int
	}{{"TotalSegments", s.TotalSegments}, {"NoiseSegments", s.NoiseSegments},
		{"RemovedClusters", s.RemovedClusters}, {"Trajectories", s.Trajectories}, {"Points", s.Points}} {
		if n.v < 0 {
			return &InvalidError{Field: "Stats." + n.name, Reason: "must be non-negative"}
		}
	}
	for i, cl := range m.Clusters {
		if cl.Segments < 0 || cl.Trajectories < 0 {
			return &InvalidError{Field: fmt.Sprintf("Clusters[%d]", i), Reason: "counts must be non-negative"}
		}
		if len(cl.Reference) == 0 {
			return &InvalidError{Field: fmt.Sprintf("Clusters[%d].Reference", i),
				Reason: "must hold at least one reference segment"}
		}
		for _, p := range cl.Representative {
			if !p.IsFinite() {
				return &InvalidError{Field: fmt.Sprintf("Clusters[%d].Representative", i),
					Reason: "coordinates must be finite"}
			}
		}
		for _, sg := range cl.Reference {
			if !sg.Start.IsFinite() || !sg.End.IsFinite() {
				return &InvalidError{Field: fmt.Sprintf("Clusters[%d].Reference", i),
					Reason: "coordinates must be finite"}
			}
		}
	}
	if m.Dendro != nil {
		if err := m.Dendro.Validate(); err != nil {
			return err
		}
	}
	return m.validateGeometry()
}

// validateGeometry checks the v3 geometry section: a known kind, the
// kind-specific state present exactly when the kind needs it, and finite
// values throughout.
func (m *Model) validateGeometry() error {
	kind, ok := geometry.ParseKind(m.Geometry)
	if !ok {
		return &InvalidError{Field: "Geometry", Reason: fmt.Sprintf("unknown geometry %q", m.Geometry)}
	}
	g := geometry.Geometry{Kind: kind, WT: m.TemporalWeight, Frame: m.Frame}
	if field, reason := g.Validate(); field != "" {
		return &InvalidError{Field: "Geometry." + field, Reason: reason}
	}
	if kind == geometry.Geodesic && m.Frame == nil {
		return &InvalidError{Field: "Frame", Reason: "geodesic models must carry their projection frame"}
	}
	if kind == geometry.Spatiotemporal {
		if len(m.Windows) != len(m.Clusters) {
			return &InvalidError{Field: "Windows", Reason: fmt.Sprintf(
				"spatiotemporal models need one window per cluster (%d windows, %d clusters)", len(m.Windows), len(m.Clusters))}
		}
		for i, w := range m.Windows {
			if !w.Valid() {
				return &InvalidError{Field: fmt.Sprintf("Windows[%d]", i), Reason: "must be finite with Start ≤ End"}
			}
		}
	} else if len(m.Windows) != 0 {
		return &InvalidError{Field: "Windows", Reason: "cluster windows only valid with the spatiotemporal geometry"}
	}
	if m.Epoch < 0 {
		return &InvalidError{Field: "Epoch", Reason: "must be non-negative"}
	}
	return nil
}

// Validate checks the merge structure's own invariants; see the Dendro doc
// for what is (and deliberately is not) enforced.
func (dd *Dendro) Validate() error {
	if !finitePos(dd.MaxEps) {
		return &InvalidError{Field: "Dendro.MaxEps", Reason: "must be positive and finite"}
	}
	if len(dd.Neighbors) != len(dd.Items) {
		return &InvalidError{Field: "Dendro.Neighbors",
			Reason: fmt.Sprintf("must hold one list per item (%d lists, %d items)", len(dd.Neighbors), len(dd.Items))}
	}
	for i, it := range dd.Items {
		if !it.Seg.Start.IsFinite() || !it.Seg.End.IsFinite() {
			return &InvalidError{Field: fmt.Sprintf("Dendro.Items[%d].Seg", i), Reason: "coordinates must be finite"}
		}
		if !finiteNonNeg(it.Weight) {
			return &InvalidError{Field: fmt.Sprintf("Dendro.Items[%d].Weight", i), Reason: "must be non-negative and finite"}
		}
	}
	// seen stamps detect a duplicate neighbor id within one list in O(n+E)
	// without a per-list allocation.
	seen := make([]int, len(dd.Items))
	for i := range seen {
		seen[i] = -1
	}
	for i, list := range dd.Neighbors {
		for k, nb := range list {
			field := fmt.Sprintf("Dendro.Neighbors[%d][%d]", i, k)
			if nb.ID < 0 || nb.ID >= len(dd.Items) {
				return &InvalidError{Field: field, Reason: fmt.Sprintf("id %d out of range [0, %d)", nb.ID, len(dd.Items))}
			}
			if math.IsNaN(nb.Dist) || nb.Dist < 0 || nb.Dist > dd.MaxEps {
				return &InvalidError{Field: field, Reason: "distance must be in [0, MaxEps]"}
			}
			if k > 0 {
				prev := list[k-1]
				if nb.Dist < prev.Dist || (nb.Dist == prev.Dist && nb.ID <= prev.ID) {
					return &InvalidError{Field: field, Reason: "list must be strictly sorted by (dist, id)"}
				}
			}
			if seen[nb.ID] == i {
				return &InvalidError{Field: field, Reason: fmt.Sprintf("duplicate neighbor id %d", nb.ID)}
			}
			seen[nb.ID] = i
		}
	}
	return nil
}

func finitePos(v float64) bool    { return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0 }
func finiteNonNeg(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0 }

// Encode serializes m in the current format version. It validates first, so
// bytes produced here always decode.
func Encode(m *Model) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	payload := encodePayload(m)
	out := make([]byte, 0, headerSize+len(payload))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...), nil
}

func encodePayload(m *Model) []byte {
	var e encoder
	e.str(m.Name)
	c := m.Config
	e.f64(c.Eps)
	e.f64(c.MinLns)
	e.varint(int64(c.MinTrajs))
	e.f64(c.WPerp)
	e.f64(c.WPar)
	e.f64(c.WAngle)
	e.bool(c.Undirected)
	e.f64(c.CostAdvantage)
	e.f64(c.MinSegmentLength)
	e.f64(c.Gamma)
	e.str(c.Index)
	s := m.Stats
	e.varint(int64(s.TotalSegments))
	e.varint(int64(s.NoiseSegments))
	e.varint(int64(s.RemovedClusters))
	e.varint(int64(s.Trajectories))
	e.varint(int64(s.Points))
	e.f64(s.QMeasure)
	e.varint(s.BuiltAtUnixNano)
	e.varint(s.BuildDurationNS)
	e.uvarint(uint64(len(m.Clusters)))
	for _, cl := range m.Clusters {
		e.varint(int64(cl.Segments))
		e.varint(int64(cl.Trajectories))
		e.f64(cl.SSE)
		e.uvarint(uint64(len(cl.Representative)))
		for _, p := range cl.Representative {
			e.f64(p.X)
			e.f64(p.Y)
		}
		e.uvarint(uint64(len(cl.Reference)))
		for _, sg := range cl.Reference {
			e.f64(sg.Start.X)
			e.f64(sg.Start.Y)
			e.f64(sg.End.X)
			e.f64(sg.End.Y)
		}
	}
	// v2: optional dendrogram section after the v1 walk.
	if m.Dendro == nil {
		e.bool(false)
	} else {
		e.bool(true)
		dd := m.Dendro
		e.f64(dd.MaxEps)
		e.uvarint(uint64(len(dd.Items)))
		for _, it := range dd.Items {
			e.f64(it.Seg.Start.X)
			e.f64(it.Seg.Start.Y)
			e.f64(it.Seg.End.X)
			e.f64(it.Seg.End.Y)
			e.varint(int64(it.TrajID))
			e.f64(it.Weight)
		}
		for _, list := range dd.Neighbors { // one list per item, same order
			e.uvarint(uint64(len(list)))
			for _, nb := range list {
				e.uvarint(uint64(nb.ID))
				e.f64(nb.Dist)
			}
		}
	}
	// v3: geometry section after the dendro section.
	e.str(m.Geometry)
	e.f64(m.TemporalWeight)
	if m.Frame == nil {
		e.bool(false)
	} else {
		e.bool(true)
		e.f64(m.Frame.Lat0)
		e.f64(m.Frame.Lon0)
	}
	e.uvarint(uint64(len(m.Windows)))
	for _, w := range m.Windows {
		e.f64(w.Start)
		e.f64(w.End)
	}
	// v4: the append epoch after the geometry section.
	e.uvarint(uint64(m.Epoch))
	return e.buf
}

type encoder struct{ buf []byte }

func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}
func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Decode parses one snapshot. The error is always typed: *CorruptError,
// *VersionError, or *InvalidError (see the package documentation for when
// each applies).
func Decode(data []byte) (*Model, error) {
	if len(data) < headerSize {
		return nil, &CorruptError{Offset: len(data), Reason: "truncated header"}
	}
	if string(data[:len(magic)]) != magic {
		return nil, &CorruptError{Offset: 0, Reason: "bad magic (not a TRACLUS snapshot)"}
	}
	version := binary.LittleEndian.Uint16(data[len(magic):])
	if version == 0 {
		return nil, &CorruptError{Offset: len(magic), Reason: "version 0 is not a valid format version"}
	}
	if version > Version {
		return nil, &VersionError{Got: version, Supported: Version}
	}
	plen := binary.LittleEndian.Uint64(data[len(magic)+2:])
	sum := binary.LittleEndian.Uint32(data[len(magic)+10:])
	payload := data[headerSize:]
	if uint64(len(payload)) < plen {
		return nil, &CorruptError{Offset: len(data), Reason: fmt.Sprintf(
			"truncated payload: header declares %d bytes, %d present", plen, len(payload))}
	}
	if uint64(len(payload)) > plen {
		return nil, &CorruptError{Offset: headerSize + int(plen), Reason: "trailing bytes after payload"}
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, &CorruptError{Offset: len(magic) + 10, Reason: fmt.Sprintf(
			"checksum mismatch: header %08x, payload %08x", sum, got)}
	}
	// Every version starts with the v1 field walk; v2 appends the optional
	// dendrogram section, v3 the geometry section.
	d := &decoder{buf: payload, base: headerSize}
	m, err := decodePayloadV1(d)
	if err == nil && version >= 2 {
		err = decodeDendroV2(d, m)
	}
	if err == nil && version >= 3 {
		err = decodeGeometryV3(d, m)
	}
	if err == nil && version >= 4 {
		err = decodeEpochV4(d, m)
	}
	if err != nil {
		return nil, err
	}
	if d.off != len(d.buf) {
		// Unreachable while the CRC covers the whole payload, but kept so a
		// future version bump cannot silently accept under-consumed input.
		return nil, &CorruptError{Offset: d.base + d.off, Reason: "payload longer than its content"}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func decodePayloadV1(d *decoder) (*Model, error) {
	m := &Model{}
	var err error
	read := func(f func() error) {
		if err == nil {
			err = f()
		}
	}
	read(func() error { return d.str(&m.Name, maxNameLen) })
	c := &m.Config
	read(func() error { return d.f64(&c.Eps) })
	read(func() error { return d.f64(&c.MinLns) })
	read(func() error { return d.vint(&c.MinTrajs) })
	read(func() error { return d.f64(&c.WPerp) })
	read(func() error { return d.f64(&c.WPar) })
	read(func() error { return d.f64(&c.WAngle) })
	read(func() error { return d.bool(&c.Undirected) })
	read(func() error { return d.f64(&c.CostAdvantage) })
	read(func() error { return d.f64(&c.MinSegmentLength) })
	read(func() error { return d.f64(&c.Gamma) })
	read(func() error { return d.str(&c.Index, 32) })
	s := &m.Stats
	read(func() error { return d.vint(&s.TotalSegments) })
	read(func() error { return d.vint(&s.NoiseSegments) })
	read(func() error { return d.vint(&s.RemovedClusters) })
	read(func() error { return d.vint(&s.Trajectories) })
	read(func() error { return d.vint(&s.Points) })
	read(func() error { return d.f64(&s.QMeasure) })
	read(func() error { return d.vint64(&s.BuiltAtUnixNano) })
	read(func() error { return d.vint64(&s.BuildDurationNS) })
	if err != nil {
		return nil, err
	}
	// Minimum encoded cluster: 2 one-byte varints + SSE + 2 zero counts.
	nclusters, err := d.count(1 + 1 + 8 + 1 + 1)
	if err != nil {
		return nil, err
	}
	m.Clusters = make([]Cluster, 0, nclusters)
	for i := 0; i < nclusters; i++ {
		var cl Cluster
		read(func() error { return d.vint(&cl.Segments) })
		read(func() error { return d.vint(&cl.Trajectories) })
		read(func() error { return d.f64(&cl.SSE) })
		if err != nil {
			return nil, err
		}
		npts, cerr := d.count(16) // a point is two float64s
		if cerr != nil {
			return nil, cerr
		}
		cl.Representative = make([]geom.Point, npts)
		for j := range cl.Representative {
			p := &cl.Representative[j]
			read(func() error { return d.f64(&p.X) })
			read(func() error { return d.f64(&p.Y) })
		}
		nref, cerr := d.count(32) // a segment is four float64s
		if cerr != nil {
			return nil, cerr
		}
		cl.Reference = make([]geom.Segment, nref)
		for j := range cl.Reference {
			sg := &cl.Reference[j]
			read(func() error { return d.f64(&sg.Start.X) })
			read(func() error { return d.f64(&sg.Start.Y) })
			read(func() error { return d.f64(&sg.End.X) })
			read(func() error { return d.f64(&sg.End.Y) })
		}
		if err != nil {
			return nil, err
		}
		m.Clusters = append(m.Clusters, cl)
	}
	return m, err
}

// decodeDendroV2 reads the dendrogram section that follows the v1 walk in
// format v2.
func decodeDendroV2(d *decoder, m *Model) error {
	var present bool
	if err := d.bool(&present); err != nil {
		return err
	}
	if !present {
		return nil
	}
	dd := &Dendro{}
	if err := d.f64(&dd.MaxEps); err != nil {
		return err
	}
	// Minimum encoded item: four coordinate float64s + a one-byte trajectory
	// id + the weight.
	nitems, err := d.count(4*8 + 1 + 8)
	if err != nil {
		return err
	}
	dd.Items = make([]DendroItem, nitems)
	for i := range dd.Items {
		it := &dd.Items[i]
		for _, v := range [...]*float64{&it.Seg.Start.X, &it.Seg.Start.Y, &it.Seg.End.X, &it.Seg.End.Y} {
			if err := d.f64(v); err != nil {
				return err
			}
		}
		if err := d.vint(&it.TrajID); err != nil {
			return err
		}
		if err := d.f64(&it.Weight); err != nil {
			return err
		}
	}
	dd.Neighbors = make([][]DendroNeighbor, nitems)
	for i := range dd.Neighbors {
		// Minimum encoded neighbor: a one-byte id + the distance.
		cnt, err := d.count(1 + 8)
		if err != nil {
			return err
		}
		list := make([]DendroNeighbor, cnt)
		for k := range list {
			var id uint64
			if err := d.uvarint(&id); err != nil {
				return err
			}
			if id > math.MaxInt32 {
				return d.corrupt(fmt.Sprintf("neighbor id %d out of range", id))
			}
			list[k].ID = int(id)
			if err := d.f64(&list[k].Dist); err != nil {
				return err
			}
		}
		dd.Neighbors[i] = list
	}
	m.Dendro = dd
	return nil
}

// decodeGeometryV3 reads the geometry section that follows the dendro
// section in format v3.
func decodeGeometryV3(d *decoder, m *Model) error {
	if err := d.str(&m.Geometry, 32); err != nil {
		return err
	}
	if err := d.f64(&m.TemporalWeight); err != nil {
		return err
	}
	var hasFrame bool
	if err := d.bool(&hasFrame); err != nil {
		return err
	}
	if hasFrame {
		f := &geometry.Frame{}
		if err := d.f64(&f.Lat0); err != nil {
			return err
		}
		if err := d.f64(&f.Lon0); err != nil {
			return err
		}
		m.Frame = f
	}
	nwin, err := d.count(16) // a window is two float64s
	if err != nil {
		return err
	}
	if nwin > 0 {
		m.Windows = make([]geometry.Interval, nwin)
		for i := range m.Windows {
			if err := d.f64(&m.Windows[i].Start); err != nil {
				return err
			}
			if err := d.f64(&m.Windows[i].End); err != nil {
				return err
			}
		}
	}
	return nil
}

// decodeEpochV4 reads the append epoch that follows the geometry section in
// format v4.
func decodeEpochV4(d *decoder, m *Model) error {
	var e uint64
	if err := d.uvarint(&e); err != nil {
		return err
	}
	if e > math.MaxInt64 {
		return d.corrupt(fmt.Sprintf("epoch %d out of range", e))
	}
	m.Epoch = int64(e)
	return nil
}

// decoder walks the payload with strict bounds checking; every primitive
// returns a *CorruptError (with the absolute input offset) on underrun.
type decoder struct {
	buf  []byte
	off  int
	base int // offset of buf[0] in the whole input, for error reporting
}

func (d *decoder) corrupt(reason string) error {
	return &CorruptError{Offset: d.base + d.off, Reason: reason}
}

func (d *decoder) f64(v *float64) error {
	if d.off+8 > len(d.buf) {
		return d.corrupt("truncated float64")
	}
	*v = math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return nil
}

func (d *decoder) bool(v *bool) error {
	if d.off >= len(d.buf) {
		return d.corrupt("truncated bool")
	}
	switch d.buf[d.off] {
	case 0:
		*v = false
	case 1:
		*v = true
	default:
		return d.corrupt(fmt.Sprintf("bool byte must be 0 or 1, got %d", d.buf[d.off]))
	}
	d.off++
	return nil
}

func (d *decoder) uvarint(v *uint64) error {
	x, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return d.corrupt("bad uvarint")
	}
	d.off += n
	*v = x
	return nil
}

func (d *decoder) vint64(v *int64) error {
	x, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return d.corrupt("bad varint")
	}
	d.off += n
	*v = x
	return nil
}

func (d *decoder) vint(v *int) error {
	var x int64
	if err := d.vint64(&x); err != nil {
		return err
	}
	if x < math.MinInt32 || x > math.MaxInt32 {
		return d.corrupt(fmt.Sprintf("integer %d out of range", x))
	}
	*v = int(x)
	return nil
}

// count reads a slice length and rejects any value whose elements could not
// possibly fit in the remaining payload — the guard that keeps a 5-byte
// hostile input from asking for a multi-gigabyte allocation.
func (d *decoder) count(minElemSize int) (int, error) {
	var n uint64
	if err := d.uvarint(&n); err != nil {
		return 0, err
	}
	if remaining := uint64(len(d.buf) - d.off); n > remaining/uint64(minElemSize) {
		return 0, d.corrupt(fmt.Sprintf(
			"count %d cannot fit in %d remaining bytes (min element size %d)", n, len(d.buf)-d.off, minElemSize))
	}
	return int(n), nil
}

func (d *decoder) str(v *string, maxLen int) error {
	var n uint64
	if err := d.uvarint(&n); err != nil {
		return err
	}
	if n > uint64(maxLen) {
		return d.corrupt(fmt.Sprintf("string length %d exceeds maximum %d", n, maxLen))
	}
	if d.off+int(n) > len(d.buf) {
		return d.corrupt("truncated string")
	}
	*v = string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return nil
}
