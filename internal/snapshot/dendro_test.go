package snapshot

// Format v2 tests: round-trip of the dendrogram section, strictness over
// its bytes, validation of its invariants, and the compatibility pin that
// a frozen v1 snapshot still decodes — to a model with a nil Dendro, never
// an error.

import (
	"errors"
	"math"
	"os"
	"reflect"
	"testing"

	"repro/internal/geom"
)

// dendroModel is sampleModel plus a valid merge structure.
func dendroModel() *Model {
	m := sampleModel()
	m.Dendro = &Dendro{
		MaxEps: 60,
		Items: []DendroItem{
			{Seg: geom.Segment{Start: geom.Point{X: 100, Y: 200}, End: geom.Point{X: 500, Y: 201.5}}, TrajID: 1, Weight: 1},
			{Seg: geom.Segment{Start: geom.Point{X: 300, Y: 80}, End: geom.Point{X: 300.25, Y: 240}}, TrajID: 2, Weight: 1},
			{Seg: geom.Segment{Start: geom.Point{X: 299.5, Y: 240}, End: geom.Point{X: 301, Y: 520}}, TrajID: 2, Weight: 0.5},
		},
		Neighbors: [][]DendroNeighbor{
			{{ID: 0, Dist: 0}, {ID: 2, Dist: 59.5}},
			{{ID: 1, Dist: 0}, {ID: 2, Dist: 12.25}},
			{{ID: 2, Dist: 0}, {ID: 1, Dist: 12.25}, {ID: 0, Dist: 59.5}},
		},
	}
	return m
}

func TestDendroRoundTrip(t *testing.T) {
	want := dendroModel()
	got, err := Decode(mustEncode(t, want))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if want.Clusters[1].Representative == nil {
		want.Clusters[1].Representative = []geom.Point{}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestDendroTruncationAtEveryByte extends the strictness core over the v2
// section's bytes: every proper prefix of a dendrogram-bearing snapshot
// must fail with a typed *CorruptError.
func TestDendroTruncationAtEveryByte(t *testing.T) {
	data := mustEncode(t, dendroModel())
	for n := 0; n < len(data); n++ {
		m, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("Decode of %d/%d-byte prefix succeeded: %+v", n, len(data), m)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("prefix %d: error %T (%v), want *CorruptError", n, err, err)
		}
	}
}

// TestV1DecodesNilDendro pins backward compatibility: the frozen v1 golden
// snapshot decodes to a model whose Dendro is nil — the serving layer
// rebuilds the merge structure lazily — rather than failing or inventing
// an empty section.
func TestV1DecodesNilDendro(t *testing.T) {
	data, err := os.ReadFile(goldenPath(1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(data)
	if err != nil {
		t.Fatalf("v1 snapshot no longer decodes: %v", err)
	}
	if m.Dendro != nil {
		t.Fatalf("v1 snapshot decoded with a dendrogram: %+v", m.Dendro)
	}
	// A v1-decoded model re-encodes as current-version bytes (with an
	// absent dendrogram section) that decode back unchanged.
	re, err := Encode(m)
	if err != nil {
		t.Fatalf("re-encoding v1 model: %v", err)
	}
	m2, err := Decode(re)
	if err != nil {
		t.Fatalf("re-decoding upgraded bytes: %v", err)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Fatal("v1 → v2 upgrade round trip changed the model")
	}
}

func TestDendroValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Dendro)
	}{
		{"NaN max eps", func(d *Dendro) { d.MaxEps = math.NaN() }},
		{"zero max eps", func(d *Dendro) { d.MaxEps = 0 }},
		{"length mismatch", func(d *Dendro) { d.Neighbors = d.Neighbors[:2] }},
		{"non-finite coordinate", func(d *Dendro) { d.Items[0].Seg.End.X = math.Inf(1) }},
		{"negative weight", func(d *Dendro) { d.Items[1].Weight = -1 }},
		{"NaN weight", func(d *Dendro) { d.Items[1].Weight = math.NaN() }},
		{"neighbor id out of range", func(d *Dendro) { d.Neighbors[0][1].ID = 3 }},
		{"negative neighbor id", func(d *Dendro) { d.Neighbors[0][1].ID = -1 }},
		{"negative distance", func(d *Dendro) { d.Neighbors[0][0].Dist = -0.5 }},
		{"NaN distance", func(d *Dendro) { d.Neighbors[0][1].Dist = math.NaN() }},
		{"distance above max eps", func(d *Dendro) { d.Neighbors[0][1].Dist = 60.5 }},
		// Raising entry [1] to 59.5 ties entry [2] with a larger ID first:
		// (59.5,1) then (59.5,0) breaks the strict (Dist, ID) order.
		{"unsorted list", func(d *Dendro) { d.Neighbors[2][1].Dist = 59.5 }},
		{"duplicate id", func(d *Dendro) { d.Neighbors[2][2].ID = 1 }},
	}
	for _, tc := range cases {
		m := dendroModel()
		tc.mutate(m.Dendro)
		var ie *InvalidError
		if err := m.Dendro.Validate(); !errors.As(err, &ie) {
			t.Errorf("%s: Validate error %v, want *InvalidError", tc.name, err)
		}
		if _, err := Encode(m); !errors.As(err, &ie) {
			t.Errorf("%s: Encode error %v, want *InvalidError", tc.name, err)
		}
	}
}
