package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"reflect"
	"testing"

	"repro/internal/geom"
)

// sampleModel is a fully-populated model exercising every field, including
// a cluster whose representative collapsed (member segments as reference).
func sampleModel() *Model {
	return &Model{
		Name: "corridors-v1",
		Config: Config{
			Eps: 30, MinLns: 6, MinTrajs: 3,
			WPerp: 1, WPar: 1, WAngle: 1,
			Undirected:    true,
			CostAdvantage: 15, MinSegmentLength: 40, Gamma: 7.5,
			Index: "grid",
		},
		Stats: Stats{
			TotalSegments: 120, NoiseSegments: 14, RemovedClusters: 1,
			Trajectories: 20, Points: 480,
			QMeasure:        1234.5678,
			BuiltAtUnixNano: 1754600000000000000,
			BuildDurationNS: 2_500_000_000,
		},
		Clusters: []Cluster{
			{
				Segments: 60, Trajectories: 10, SSE: 600.25,
				Representative: []geom.Point{{X: 100, Y: 200}, {X: 500, Y: 201.5}, {X: 900, Y: 199}},
				Reference: []geom.Segment{
					{Start: geom.Point{X: 100, Y: 200}, End: geom.Point{X: 500, Y: 201.5}},
					{Start: geom.Point{X: 500, Y: 201.5}, End: geom.Point{X: 900, Y: 199}},
				},
			},
			{
				Segments: 46, Trajectories: 9, SSE: 512.125,
				Representative: nil, // collapsed: reference = member segments
				Reference: []geom.Segment{
					{Start: geom.Point{X: 300, Y: 80}, End: geom.Point{X: 300.25, Y: 240}},
					{Start: geom.Point{X: 299.5, Y: 240}, End: geom.Point{X: 301, Y: 520}},
				},
			},
		},
	}
}

func mustEncode(t *testing.T, m *Model) []byte {
	t.Helper()
	data, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return data
}

func TestRoundTrip(t *testing.T) {
	want := sampleModel()
	got, err := Decode(mustEncode(t, want))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	// Normalise nil-vs-empty before the deep compare: the codec encodes
	// both as count 0 and decodes to empty, which is semantically equal.
	if want.Clusters[1].Representative == nil {
		want.Clusters[1].Representative = []geom.Point{}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestRoundTripZeroClusters(t *testing.T) {
	m := sampleModel()
	m.Clusters = nil
	got, err := Decode(mustEncode(t, m))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.Clusters) != 0 {
		t.Fatalf("got %d clusters, want 0", len(got.Clusters))
	}
}

// TestTruncationAtEveryByte is the strictness core: every proper prefix of
// a valid snapshot must fail with a typed *CorruptError — never a panic,
// never a silently partial model.
func TestTruncationAtEveryByte(t *testing.T) {
	data := mustEncode(t, sampleModel())
	for n := 0; n < len(data); n++ {
		m, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("Decode of %d/%d-byte prefix succeeded: %+v", n, len(data), m)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("prefix %d: error %T (%v), want *CorruptError", n, err, err)
		}
	}
}

// TestBitFlipCorruption flips one bit in every payload byte; the CRC must
// catch each flip with a typed error.
func TestBitFlipCorruption(t *testing.T) {
	data := mustEncode(t, sampleModel())
	for i := headerSize; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at byte %d decoded successfully", i)
		} else if ce := (*CorruptError)(nil); !errors.As(err, &ce) {
			t.Fatalf("bit flip at byte %d: error %T, want *CorruptError", i, err)
		}
	}
}

func TestBadMagic(t *testing.T) {
	data := mustEncode(t, sampleModel())
	data[0] = 'X'
	var ce *CorruptError
	if _, err := Decode(data); !errors.As(err, &ce) {
		t.Fatalf("bad magic: error %v, want *CorruptError", err)
	}
}

func TestUnknownVersion(t *testing.T) {
	data := mustEncode(t, sampleModel())
	binary.LittleEndian.PutUint16(data[len(magic):], Version+1)
	var ve *VersionError
	if _, err := Decode(data); !errors.As(err, &ve) {
		t.Fatalf("future version: error %v, want *VersionError", err)
	} else if ve.Got != Version+1 || ve.Supported != Version {
		t.Fatalf("VersionError = %+v", ve)
	}
	binary.LittleEndian.PutUint16(data[len(magic):], 0)
	var ce *CorruptError
	if _, err := Decode(data); !errors.As(err, &ce) {
		t.Fatalf("version 0: error %v, want *CorruptError", err)
	}
}

func TestTrailingGarbage(t *testing.T) {
	data := append(mustEncode(t, sampleModel()), 0xAA)
	var ce *CorruptError
	if _, err := Decode(data); !errors.As(err, &ce) {
		t.Fatalf("trailing byte: error %v, want *CorruptError", err)
	}
}

// TestHostileCount pins the allocation guard: a tiny input whose cluster
// count claims billions of elements must be rejected before any allocation,
// not trusted into make().
func TestHostileCount(t *testing.T) {
	m := sampleModel()
	m.Clusters = nil
	data := mustEncode(t, m)
	// Rewrite the windows count (0, the second-to-last byte — only the
	// one-byte epoch follows it) to a huge uvarint, fixing up length and CRC
	// so only the count guard can reject it.
	payload := append([]byte(nil), data[headerSize:len(data)-2]...)
	payload = binary.AppendUvarint(payload, 1<<40)
	payload = append(payload, 0) // epoch
	out := append([]byte(nil), data[:len(magic)+2]...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	out = append(out, payload...)
	var ce *CorruptError
	if _, err := Decode(out); !errors.As(err, &ce) {
		t.Fatalf("hostile count: error %v, want *CorruptError", err)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Model)
	}{
		{"empty name", func(m *Model) { m.Name = "" }},
		{"separator in name", func(m *Model) { m.Name = "a/b" }},
		{"NaN eps", func(m *Model) { m.Config.Eps = math.NaN() }},
		{"zero eps", func(m *Model) { m.Config.Eps = 0 }},
		{"negative minlns", func(m *Model) { m.Config.MinLns = -1 }},
		{"all-zero weights", func(m *Model) { m.Config.WPerp, m.Config.WPar, m.Config.WAngle = 0, 0, 0 }},
		{"negative gamma", func(m *Model) { m.Config.Gamma = -2 }},
		{"negative stat", func(m *Model) { m.Stats.Points = -1 }},
		{"empty reference", func(m *Model) { m.Clusters[0].Reference = nil }},
		{"non-finite reference", func(m *Model) { m.Clusters[0].Reference[0].End.X = math.Inf(1) }},
		{"non-finite representative", func(m *Model) { m.Clusters[0].Representative[0].Y = math.NaN() }},
	}
	for _, tc := range cases {
		m := sampleModel()
		tc.mutate(m)
		_, err := Encode(m)
		var ie *InvalidError
		if !errors.As(err, &ie) {
			t.Errorf("%s: Encode error %v, want *InvalidError", tc.name, err)
		}
	}
}
