package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSnapshotDecode drives arbitrary bytes through the strict decoder. The
// contract under fuzz: Decode never panics, every failure is one of the
// three typed errors, and anything that decodes re-encodes to bytes that
// decode to the same model (the codec is a bijection on its valid range).
func FuzzSnapshotDecode(f *testing.F) {
	valid, err := Encode(sampleModel())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(magic))
	f.Add([]byte{})
	empty := sampleModel()
	empty.Clusters = nil
	if b, err := Encode(empty); err == nil {
		f.Add(b)
	}
	// A v2 dendrogram-bearing snapshot seeds the fuzzer into the merge-
	// structure section of the format.
	if b, err := Encode(dendroModel()); err == nil {
		f.Add(b)
		f.Add(b[:len(b)-len(b)/4])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			var ce *CorruptError
			var ve *VersionError
			var ie *InvalidError
			if !errors.As(err, &ce) && !errors.As(err, &ve) && !errors.As(err, &ie) {
				t.Fatalf("Decode error is untyped %T: %v", err, err)
			}
			return
		}
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("re-encoding a decoded model failed: %v", err)
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decoding re-encoded bytes failed: %v", err)
		}
		re2, err := Encode(m2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("encode/decode is not stable: %d vs %d bytes", len(re), len(re2))
		}
	})
}
