package lsdist

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/segpool"
)

// benchSegs is the shared microbenchmark fixture: one query against a block
// of candidates, the exact shape of an ε-neighborhood refinement.
func benchSegs(n int) (geom.Segment, []geom.Segment) {
	rng := rand.New(rand.NewSource(1))
	segs := make([]geom.Segment, n)
	for i := range segs {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		segs[i] = geom.Seg(x, y, x+rng.NormFloat64()*40, y+rng.NormFloat64()*40)
	}
	return geom.Seg(500, 500, 540, 520), segs
}

const benchBlock = 1024

// BenchmarkDistScalar is the pre-kernel baseline: the closure-per-pair
// scalar path over the same block the kernel scores in one call.
func BenchmarkDistScalar(b *testing.B) {
	q, segs := benchSegs(benchBlock)
	dist := New(DefaultOptions())
	out := make([]float64, len(segs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, s := range segs {
			out[j] = dist(q, s)
		}
	}
	sinkF = out[0]
}

// BenchmarkDistKernelBlock scores the identical block through the columnar
// batch kernel: same bits out, no per-pair dispatch, precomputed invariants.
func BenchmarkDistKernelBlock(b *testing.B) {
	q, segs := benchSegs(benchBlock)
	pool, err := segpool.New(segs)
	if err != nil {
		b.Fatal(err)
	}
	qv, _ := segpool.ViewOf(q)
	k := NewKernel(DefaultOptions())
	ids := make([]int, len(segs))
	for i := range ids {
		ids[i] = i
	}
	var out []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = k.DistBlock(pool, qv, ids, out)
	}
	sinkF = out[0]
}

// BenchmarkDistKernelRange is the gather-free variant exhaustive scans use.
func BenchmarkDistKernelRange(b *testing.B) {
	q, segs := benchSegs(benchBlock)
	pool, err := segpool.New(segs)
	if err != nil {
		b.Fatal(err)
	}
	qv, _ := segpool.ViewOf(q)
	k := NewKernel(DefaultOptions())
	var out []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = k.DistRange(pool, qv, 0, pool.Len(), out)
	}
	sinkF = out[0]
}

// sinkF defeats dead-code elimination of the benchmark loops.
var sinkF float64
