package lsdist

import (
	"math"

	"repro/internal/geom"
)

// This file implements the alternative segment distances the paper
// positions its function against, used by the ablation experiments:
//
//   - EndpointSum: the naive "sum of the distances of endpoints" that
//     Appendix A shows cannot rank a parallel segment against an
//     opposite-direction one;
//   - Hausdorff: the line-segment Hausdorff distance of Chen, Leung, Gao
//     (Pattern Recognition 2003 — reference [4]), the measure the paper's
//     three components were adapted *from*.
//
// Both are true segment distances with the same Func signature, so the
// clustering engine can run under any of them for comparison.

// EndpointSum returns the naive endpoint-pair distance: the smaller of the
// two endpoint matchings (start–start + end–end vs start–end + end–start).
// Taking the minimum makes it symmetric and orientation-forgiving — the
// strongest version of the naive measure, and still insufficient
// (Appendix A).
func EndpointSum(a, b geom.Segment) float64 {
	d1 := a.Start.Dist(b.Start) + a.End.Dist(b.End)
	d2 := a.Start.Dist(b.End) + a.End.Dist(b.Start)
	return math.Min(d1, d2)
}

// Hausdorff returns the Hausdorff distance between the two closed
// segments: max over points of one segment of the distance to the other,
// symmetrised. For line segments the directed Hausdorff distance is
// attained at an endpoint, so the computation is exact, not sampled.
func Hausdorff(a, b geom.Segment) float64 {
	return math.Max(directedHausdorff(a, b), directedHausdorff(b, a))
}

// directedHausdorff is max_{p∈a} dist(p, b). For a segment source the
// maximum of the (convex) distance-to-b function over segment a is attained
// at one of a's endpoints.
func directedHausdorff(a, b geom.Segment) float64 {
	return math.Max(b.DistToPoint(a.Start), b.DistToPoint(a.End))
}

// MidpointDist returns the Euclidean distance between segment midpoints —
// the crudest plausible baseline, blind to both extent and direction.
func MidpointDist(a, b geom.Segment) float64 {
	return a.Midpoint().Dist(b.Midpoint())
}
