// Package lsdist implements the TRACLUS line-segment distance function
// (Section 2.3 of the paper): the weighted sum of the perpendicular distance
// d⊥ (Definition 1), the parallel distance d∥ (Definition 2), and the angle
// distance dθ (Definition 3). The components are adapted from line-segment
// Hausdorff similarity measures used in pattern recognition.
//
// The distance is symmetric (Lemma 2) because the longer segment is always
// assigned the role of Li, but it is not a metric: it can violate the
// triangle inequality. Spatial indexes therefore rely on the geometric
// lower bound proved here (LowerBoundFactor) instead of metric pruning.
package lsdist

import (
	"math"

	"repro/internal/geom"
)

// Weights are the multipliers w⊥, w∥, wθ of the composite distance. The
// paper's default — equal weights of 1 — "generally works well in many
// applications" (Appendix B).
type Weights struct {
	Perpendicular float64
	Parallel      float64
	Angle         float64
}

// DefaultWeights returns the paper's default w⊥ = w∥ = wθ = 1.
func DefaultWeights() Weights { return Weights{1, 1, 1} }

// Valid reports whether all weights are finite and non-negative with at
// least one positive.
func (w Weights) Valid() bool {
	for _, v := range [...]float64{w.Perpendicular, w.Parallel, w.Angle} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return w.Perpendicular > 0 || w.Parallel > 0 || w.Angle > 0
}

// Options configure the distance function.
type Options struct {
	Weights Weights
	// Undirected treats segments as undirected lines: the angle distance
	// becomes ‖Lj‖·sin(θ) for all θ (remark after Definition 3), so
	// opposite headings are not penalised.
	Undirected bool
}

// DefaultOptions returns directed segments with the default weights.
func DefaultOptions() Options { return Options{Weights: DefaultWeights()} }

// order assigns the longer segment to Li and the shorter to Lj without
// losing generality (Definition 1 preamble). Ties are broken by
// lexicographic comparison of coordinates — a deterministic stand-in for the
// paper's "internal identifier" — so the distance stays exactly symmetric.
func order(a, b geom.Segment) (li, lj geom.Segment) {
	la, lb := a.Length2(), b.Length2()
	switch {
	case la > lb:
		return a, b
	case la < lb:
		return b, a
	case less(a, b):
		return a, b
	default:
		return b, a
	}
}

func less(a, b geom.Segment) bool {
	av := [4]float64{a.Start.X, a.Start.Y, a.End.X, a.End.Y}
	bv := [4]float64{b.Start.X, b.Start.Y, b.End.X, b.End.Y}
	for i := range av {
		if av[i] != bv[i] {
			return av[i] < bv[i]
		}
	}
	return false
}

// lehmer2 is the Lehmer mean of order 2 of two non-negative numbers,
// (a² + b²) / (a + b), with the empty case defined as 0.
func lehmer2(a, b float64) float64 {
	s := a + b
	if s == 0 {
		return 0
	}
	return (a*a + b*b) / s
}

// PerpendicularOrdered computes d⊥(Li, Lj) per Definition 1, assuming li is
// the longer segment. l⊥1 and l⊥2 are the distances from Lj's endpoints to
// their projections on the line through Li; d⊥ is their Lehmer mean of
// order 2.
func PerpendicularOrdered(li, lj geom.Segment) float64 {
	l1 := li.PerpendicularDist(lj.Start)
	l2 := li.PerpendicularDist(lj.End)
	return lehmer2(l1, l2)
}

// ParallelOrdered computes d∥(Li, Lj) per Definition 2, assuming li is the
// longer segment. For each projection point of Lj's endpoints onto Li's
// line, take the smaller Euclidean distance to Li's endpoints; d∥ is the
// minimum over the two endpoints (MIN, which the paper chooses over MAX for
// robustness to broken line segments).
func ParallelOrdered(li, lj geom.Segment) float64 {
	ps := li.Project(lj.Start)
	pe := li.Project(lj.End)
	l1 := math.Min(ps.Dist(li.Start), ps.Dist(li.End))
	l2 := math.Min(pe.Dist(li.Start), pe.Dist(li.End))
	return math.Min(l1, l2)
}

// AngleOrdered computes dθ(Li, Lj) per Definition 3, assuming lj is the
// shorter segment: ‖Lj‖·sin(θ) when θ < 90°, and the whole length ‖Lj‖ when
// the directions differ by 90° or more. With undirected=true the distance is
// ‖Lj‖·sin(θ) for every θ.
func AngleOrdered(li, lj geom.Segment, undirected bool) float64 {
	theta := li.Angle(lj)
	l := lj.Length()
	if undirected || theta < math.Pi/2 {
		return l * math.Sin(theta)
	}
	return l
}

// Components returns (d⊥, d∥, dθ) for an arbitrary pair of segments,
// performing the longer/shorter assignment internally.
func Components(a, b geom.Segment) (dperp, dpar, dang float64) {
	return ComponentsOpt(a, b, DefaultOptions())
}

// ComponentsOpt is Components with explicit options.
func ComponentsOpt(a, b geom.Segment, opt Options) (dperp, dpar, dang float64) {
	li, lj := order(a, b)
	return PerpendicularOrdered(li, lj),
		ParallelOrdered(li, lj),
		AngleOrdered(li, lj, opt.Undirected)
}

// Dist returns the TRACLUS distance with default options:
// dist = w⊥·d⊥ + w∥·d∥ + wθ·dθ.
func Dist(a, b geom.Segment) float64 {
	return DistOpt(a, b, DefaultOptions())
}

// DistOpt returns the TRACLUS distance under the given options.
func DistOpt(a, b geom.Segment, opt Options) float64 {
	dp, dl, da := ComponentsOpt(a, b, opt)
	w := opt.Weights
	return w.Perpendicular*dp + w.Parallel*dl + w.Angle*da
}

// Func is the signature shared by all pairwise segment distances in this
// repository. Distances may be evaluated from many goroutines at once (the
// clustering pipeline fans neighborhood queries out across workers); every
// Func in this package is a pure function and therefore safe, and custom
// implementations must be too — or the caller must limit Workers to 1.
type Func func(a, b geom.Segment) float64

// New returns a distance Func closed over the options. Invalid weights fall
// back to the defaults.
func New(opt Options) Func {
	if !opt.Weights.Valid() {
		opt.Weights = DefaultWeights()
	}
	return func(a, b geom.Segment) float64 { return DistOpt(a, b, opt) }
}

// LowerBoundFactor returns c > 0 such that for all segment pairs
//
//	dist(a, b) ≥ c · mindist(a, b)
//
// where mindist is the minimum Euclidean distance between the segments.
//
// Derivation (DESIGN.md §3): let Lj's endpoint with the smaller parallel
// contribution be q, with perpendicular offset l⊥ from Li's line and
// nearest-endpoint distance l∥ = d∥ along it. The Euclidean distance from q
// to the segment Li is at most sqrt(l⊥² + over²) ≤ l⊥ + d∥ where over ≤ d∥
// is the projection's overshoot beyond Li. The Lehmer mean of order 2
// satisfies L2(x, y) ≥ max(x, y)/2 ≥ l⊥/2, so
//
//	dist ≥ w⊥·d⊥ + w∥·d∥ ≥ min(w⊥, w∥)·(l⊥/2 + d∥) ≥ min(w⊥, w∥)/2·(l⊥ + d∥)
//	     ≥ min(w⊥, w∥)/2 · mindist.
//
// A returned factor of 0 means no positional pruning is possible (one of
// the positional weights is 0) and indexes must fall back to full scans.
func LowerBoundFactor(w Weights) float64 {
	m := math.Min(w.Perpendicular, w.Parallel)
	if m <= 0 || math.IsNaN(m) || math.IsInf(m, 0) {
		return 0
	}
	return m / 2
}

// SearchRadius converts an ε threshold on the TRACLUS distance into a safe
// Euclidean radius for MBR-based candidate generation: every b with
// dist(a,b) ≤ eps has mindist(a,b) ≤ SearchRadius(eps, w). The second
// return is false when no finite radius exists.
func SearchRadius(eps float64, w Weights) (float64, bool) {
	c := LowerBoundFactor(w)
	if c == 0 {
		return 0, false
	}
	return eps / c, true
}
