package lsdist

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestEndpointSumAppendixATie(t *testing.T) {
	l1 := geom.Seg(0, 0, 200, 0)
	l2 := geom.Seg(100, 100, 300, 100)
	l3 := geom.Seg(300, 100, 100, 100)
	if EndpointSum(l1, l2) != EndpointSum(l1, l3) {
		t.Error("Appendix A tie not reproduced")
	}
	if !approx(EndpointSum(l1, l2), 200*math.Sqrt2, 1e-9) {
		t.Errorf("EndpointSum = %v, want 200√2", EndpointSum(l1, l2))
	}
}

func TestEndpointSumSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b := randSeg(rng), randSeg(rng)
		if EndpointSum(a, b) != EndpointSum(b, a) {
			t.Fatal("EndpointSum asymmetric")
		}
	}
}

func TestHausdorffKnownValues(t *testing.T) {
	cases := []struct {
		a, b geom.Segment
		want float64
	}{
		// Parallel offset: every point is 3 away.
		{geom.Seg(0, 0, 10, 0), geom.Seg(0, 3, 10, 3), 3},
		// Identical: 0.
		{geom.Seg(0, 0, 10, 0), geom.Seg(0, 0, 10, 0), 0},
		// Reversed copy: still 0 (sets of points coincide).
		{geom.Seg(0, 0, 10, 0), geom.Seg(10, 0, 0, 0), 0},
		// Contained: the long segment's far endpoint dominates.
		{geom.Seg(0, 0, 10, 0), geom.Seg(0, 0, 4, 0), 6},
		// Perpendicular at midpoint: T shape.
		{geom.Seg(0, 0, 10, 0), geom.Seg(5, 0, 5, 8), 8},
	}
	for _, c := range cases {
		if got := Hausdorff(c.a, c.b); !approx(got, c.want, 1e-9) {
			t.Errorf("Hausdorff(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestHausdorffIsMetricOnSamples(t *testing.T) {
	// Unlike the TRACLUS distance, segment Hausdorff satisfies the
	// triangle inequality.
	rng := rand.New(rand.NewSource(2))
	segs := make([]geom.Segment, 12)
	for i := range segs {
		segs[i] = randSeg(rng)
	}
	for i := range segs {
		for j := range segs {
			for k := range segs {
				if Hausdorff(segs[i], segs[k]) > Hausdorff(segs[i], segs[j])+Hausdorff(segs[j], segs[k])+1e-9 {
					t.Fatalf("Hausdorff triangle violated at %d %d %d", i, j, k)
				}
			}
		}
	}
}

func TestHausdorffAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		a, b := randSeg(rng), randSeg(rng)
		got := Hausdorff(a, b)
		// Sampled directed Hausdorff can only under-estimate.
		var sampled float64
		for i := 0; i <= 40; i++ {
			p := a.Start.Lerp(a.End, float64(i)/40)
			sampled = math.Max(sampled, b.DistToPoint(p))
			q := b.Start.Lerp(b.End, float64(i)/40)
			sampled = math.Max(sampled, a.DistToPoint(q))
		}
		if sampled > got+1e-9 {
			t.Fatalf("sampled %v exceeds exact %v", sampled, got)
		}
		if got > sampled+30 { // resolution slack
			t.Fatalf("exact %v far above sampled %v", got, sampled)
		}
	}
}

func TestHausdorffIgnoresDirection(t *testing.T) {
	// Hausdorff cannot tell a segment from its reverse — exactly the
	// weakness the angle distance fixes.
	a := geom.Seg(0, 0, 100, 0)
	b := geom.Seg(0, 5, 100, 5)
	rev := b.Reverse()
	if Hausdorff(a, b) != Hausdorff(a, rev) {
		t.Error("Hausdorff should ignore direction")
	}
	if Dist(a, b) >= Dist(a, rev) {
		t.Error("TRACLUS distance should penalise the reversed segment")
	}
}

func TestMidpointDist(t *testing.T) {
	a := geom.Seg(0, 0, 10, 0)
	b := geom.Seg(0, 6, 10, 6)
	if got := MidpointDist(a, b); got != 6 {
		t.Errorf("MidpointDist = %v", got)
	}
	// Blind to extent: a long and short segment with the same midpoint.
	c := geom.Seg(-100, 0, 120, 0)
	d := geom.Seg(9, 0, 11, 0)
	if got := MidpointDist(c, d); got != 0 {
		t.Errorf("MidpointDist same-midpoint = %v", got)
	}
}
