package lsdist

// This file is the batched, block-at-a-time execution path of the TRACLUS
// distance: one Kernel call scores a whole candidate block against a single
// query instead of paying a closure or interface dispatch per pair. It is
// the MonetDB "breaking the memory wall" treatment of our hot loop — the
// operands come from the columnar segment pool of internal/segpool, the
// per-segment invariants (direction vector, squared length, length) are
// precomputed once at pool build instead of re-derived per pair, and the
// two projection parameters the perpendicular and parallel components both
// need are computed once and fused.
//
// The contract that makes the kernels safe to substitute anywhere is BIT
// IDENTITY: for every pair, each component and the combined distance equal
// the scalar ComponentsOpt/DistOpt results bit for bit
// (math.Float64bits-equal), because the kernel performs the same
// floating-point operations in the same order on the same inputs — the
// fusion only removes *recomputation* of deterministic intermediates, never
// reorders or reassociates them, and the transcendental calls (math.Hypot,
// math.Acos, math.Sin) are the identical stdlib functions. The
// kernel-equivalence suite in kernel_test.go and FuzzSegmentDistanceKernel
// pin this per component and combined, including the degenerate zero-length
// guards (documented at pairOrdered).
//
// One carve-out: NaN *payloads* are not part of the contract. When an
// intermediate overflows (Inf/Inf, Inf−Inf), both paths produce NaN, but
// which operand's payload bits survive is decided by instruction selection
// and register allocation (x86 NaN propagation keeps the first operand), so
// it can differ between builds of the *same* source. Every NaN compares
// false in the d <= eps predicates that consume distances, so results are
// unaffected; the tests compare bits-equal-or-both-NaN.

import (
	"math"

	"repro/internal/segpool"
)

// Kernel scores blocks of pooled candidate segments against one query
// segment under a fixed set of Options. A Kernel is immutable and safe for
// concurrent use; per-call scratch lives in the caller's out slice.
type Kernel struct {
	wPerp, wPar, wAng float64
	undirected        bool
}

// NewKernel returns the batch kernel for the given options. Invalid weights
// fall back to the defaults, exactly as New does for the scalar closure.
func NewKernel(opt Options) *Kernel {
	if !opt.Weights.Valid() {
		opt.Weights = DefaultWeights()
	}
	return &Kernel{
		wPerp:      opt.Weights.Perpendicular,
		wPar:       opt.Weights.Parallel,
		wAng:       opt.Weights.Angle,
		undirected: opt.Undirected,
	}
}

// ensureLen returns out resized to n, reusing its backing array when it is
// large enough — block scoring must not allocate per call on the hot path.
// Growth is geometric (at least doubling): block sizes creep upward as
// denser neighborhoods come through a cursor, and timid growth would
// reallocate at every new maximum, turning the scratch into a cumulative
// O(k·max) allocation instead of O(max).
func ensureLen(out []float64, n int) []float64 {
	if cap(out) < n {
		c := 2 * cap(out)
		if c < n {
			c = n
		}
		return make([]float64, n, c)
	}
	return out[:n]
}

// DistBlock scores dist(q, pool[j]) for every candidate id j in ids,
// writing the distances into out index-aligned with ids (out is resized,
// reusing its capacity) and returning it. Candidate ids must be valid pool
// indices. Bit-identical to calling the scalar DistOpt per pair.
func (k *Kernel) DistBlock(p *segpool.Pool, q segpool.Seg, ids []int, out []float64) []float64 {
	out = ensureLen(out, len(ids))
	// Hoist the columns once; re-slicing every column to the shared pool
	// length lets the compiler prove, from the X1 load alone, that the
	// remaining four indexed loads are in bounds (one bounds check per
	// candidate instead of five). The derived fields are recomputed from the
	// loaded coordinates — identical operations on identical inputs, so the
	// bits match what stored columns would have held.
	x1 := p.X1
	n := len(x1)
	y1, x2, y2 := p.Y1[:n], p.X2[:n], p.Y2[:n]
	ln := p.Length[:n]
	for t, j := range ids {
		cx1, cy1, cx2, cy2 := x1[j], y1[j], x2[j], y2[j]
		cdx, cdy := cx2-cx1, cy2-cy1
		c := segpool.Seg{
			X1: cx1, Y1: cy1, X2: cx2, Y2: cy2,
			DX: cdx, DY: cdy, Len2: cdx*cdx + cdy*cdy, Length: ln[j],
		}
		out[t] = k.score(&q, &c)
	}
	return out
}

// DistRange scores dist(q, pool[j]) for every j in [lo, hi), writing into
// out (resized to hi-lo, index-aligned with the range). It is DistBlock
// without the indirection vector — the shape exhaustive scans use.
func (k *Kernel) DistRange(p *segpool.Pool, q segpool.Seg, lo, hi int, out []float64) []float64 {
	out = ensureLen(out, hi-lo)
	x1, y1 := p.X1[lo:hi], p.Y1[lo:hi]
	x2, y2 := p.X2[lo:hi], p.Y2[lo:hi]
	ln := p.Length[lo:hi]
	for t := range x1 {
		cx1, cy1, cx2, cy2 := x1[t], y1[t], x2[t], y2[t]
		cdx, cdy := cx2-cx1, cy2-cy1
		c := segpool.Seg{
			X1: cx1, Y1: cy1, X2: cx2, Y2: cy2,
			DX: cdx, DY: cdy, Len2: cdx*cdx + cdy*cdy, Length: ln[t],
		}
		out[t] = k.score(&q, &c)
	}
	return out
}

// Pair scores one pair of precomputed views. Bit-identical to
// DistOpt(a, b, opt) on the corresponding segments.
func (k *Kernel) Pair(a, b segpool.Seg) float64 {
	return k.score(&a, &b)
}

// score is the per-pair core the block loops call: the longer/shorter
// ordering, the fused component evaluation, and the weighted sum. It takes
// pointers because a Seg is eight floats — passing two by value spills out
// of the register-based calling convention and the copy shows up on the
// profile; the pointees never escape (pairOrdered only reads them).
func (k *Kernel) score(a, b *segpool.Seg) float64 {
	var dp, dl, da float64
	switch {
	case a.Len2 > b.Len2:
		dp, dl, da = k.pairOrdered(a, b)
	case a.Len2 < b.Len2:
		dp, dl, da = k.pairOrdered(b, a)
	case segLess(a, b):
		dp, dl, da = k.pairOrdered(a, b)
	default:
		dp, dl, da = k.pairOrdered(b, a)
	}
	return k.wPerp*dp + k.wPar*dl + k.wAng*da
}

// Components returns (d⊥, d∥, dθ) for one pair of precomputed views,
// performing the longer/shorter assignment internally. Bit-identical per
// component to ComponentsOpt on the corresponding segments.
func (k *Kernel) Components(a, b segpool.Seg) (dperp, dpar, dang float64) {
	// order(a, b): longer segment becomes Li; exact-length ties break by
	// lexicographic coordinate comparison so the distance stays symmetric.
	// The precomputed Len2 is bit-equal to Segment.Length2 (negation
	// squares equal), so these comparisons decide exactly as the scalar's.
	switch {
	case a.Len2 > b.Len2:
		return k.pairOrdered(&a, &b)
	case a.Len2 < b.Len2:
		return k.pairOrdered(&b, &a)
	case segLess(&a, &b):
		return k.pairOrdered(&a, &b)
	default:
		return k.pairOrdered(&b, &a)
	}
}

// segLess is order's deterministic tie-break (lsdist.less) on pool views.
func segLess(a, b *segpool.Seg) bool {
	switch {
	case a.X1 != b.X1:
		return a.X1 < b.X1
	case a.Y1 != b.Y1:
		return a.Y1 < b.Y1
	case a.X2 != b.X2:
		return a.X2 < b.X2
	default:
		return a.Y2 < b.Y2
	}
}

// pairOrdered computes all three components with li as the longer segment,
// replicating the scalar operation sequence exactly:
//
//	u        = ((pₓ-li.X1)·li.DX + (p_y-li.Y1)·li.DY) / li.Len2   (Formula 4)
//	proj     = (li.X1 + li.DX·u, li.Y1 + li.DY·u)
//	d⊥       = Lehmer₂(‖lj.Start-proj₁‖, ‖lj.End-proj₂‖)          (Definition 1)
//	d∥       = min over both projections of min distance to li's ends (Definition 2)
//	dθ       = ‖lj‖·sin θ, or ‖lj‖ for directed θ ≥ 90°           (Definition 3)
//
// The scalar path derives the two projections twice — once inside
// PerpendicularOrdered, once inside ParallelOrdered; the kernel derives
// them once and reuses the identical bits.
//
// Zero-length guards (audited against the scalar implementations, pinned by
// TestZeroLengthSegmentGuards and the kernel-equivalence suite):
//   - li degenerate (Len2 == 0): the projection parameter is defined as 0,
//     collapsing the projection to li's single point (geom.ProjectParam).
//   - both perpendicular offsets zero: the Lehmer mean's 0/0 is defined as
//     0 (lsdist.lehmer2).
//   - either segment degenerate (Length == 0): the angle is defined as 0
//     (geom.Segment.Angle), so dθ = ‖lj‖·sin 0.
func (k *Kernel) pairOrdered(li, lj *segpool.Seg) (dperp, dpar, dang float64) {
	// Projection parameters of lj's endpoints onto the line through li.
	var u1, u2 float64
	if li.Len2 != 0 {
		u1 = ((lj.X1-li.X1)*li.DX + (lj.Y1-li.Y1)*li.DY) / li.Len2
		u2 = ((lj.X2-li.X1)*li.DX + (lj.Y2-li.Y1)*li.DY) / li.Len2
	}
	p1x := li.X1 + li.DX*u1
	p1y := li.Y1 + li.DY*u1
	p2x := li.X1 + li.DX*u2
	p2y := li.Y1 + li.DY*u2

	// d⊥ (Definition 1): Lehmer mean of order 2 of the endpoint offsets.
	l1 := math.Hypot(lj.X1-p1x, lj.Y1-p1y)
	l2 := math.Hypot(lj.X2-p2x, lj.Y2-p2y)
	if s := l1 + l2; s != 0 {
		dperp = (l1*l1 + l2*l2) / s
	}

	// d∥ (Definition 2): per projection the smaller Euclidean distance to
	// li's endpoints; MIN over the two projections.
	g1 := math.Min(math.Hypot(p1x-li.X1, p1y-li.Y1), math.Hypot(p1x-li.X2, p1y-li.Y2))
	g2 := math.Min(math.Hypot(p2x-li.X1, p2y-li.Y1), math.Hypot(p2x-li.X2, p2y-li.Y2))
	dpar = math.Min(g1, g2)

	// dθ (Definition 3): the norms and ‖lj‖ are the precomputed lengths
	// (bit-equal to the Hypots the scalar recomputes).
	var theta float64
	if li.Length != 0 && lj.Length != 0 {
		c := (li.DX*lj.DX + li.DY*lj.DY) / (li.Length * lj.Length)
		if c > 1 {
			c = 1
		} else if c < -1 {
			c = -1
		}
		theta = math.Acos(c)
	}
	if k.undirected || theta < math.Pi/2 {
		dang = lj.Length * math.Sin(theta)
	} else {
		dang = lj.Length
	}
	return dperp, dpar, dang
}
