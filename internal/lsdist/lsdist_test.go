package lsdist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// randSeg generates bounded segments for property tests.
func randSeg(rng *rand.Rand) geom.Segment {
	return geom.Seg(rng.Float64()*1000-500, rng.Float64()*1000-500,
		rng.Float64()*1000-500, rng.Float64()*1000-500)
}

func TestPerpendicularParallelSegments(t *testing.T) {
	// Two parallel horizontal segments 3 apart: l⊥1 = l⊥2 = 3, Lehmer = 3.
	li := geom.Seg(0, 0, 10, 0)
	lj := geom.Seg(2, 3, 8, 3)
	if got := PerpendicularOrdered(li, lj); !approx(got, 3, 1e-12) {
		t.Errorf("d_perp = %v, want 3", got)
	}
}

func TestPerpendicularLehmerMean(t *testing.T) {
	// Slanted short segment: endpoint offsets 1 and 3 → Lehmer (1+9)/(1+3) = 2.5.
	li := geom.Seg(0, 0, 10, 0)
	lj := geom.Seg(4, 1, 6, 3)
	if got := PerpendicularOrdered(li, lj); !approx(got, 2.5, 1e-12) {
		t.Errorf("d_perp = %v, want 2.5", got)
	}
}

func TestPerpendicularCoincident(t *testing.T) {
	li := geom.Seg(0, 0, 10, 0)
	lj := geom.Seg(2, 0, 8, 0)
	if got := PerpendicularOrdered(li, lj); got != 0 {
		t.Errorf("d_perp of collinear = %v", got)
	}
}

func TestParallelDistanceDefinition2(t *testing.T) {
	li := geom.Seg(0, 0, 10, 0)
	// Projections at x=12 and x=15: l∥1 = min(12, 2) = 2, l∥2 = min(15, 5) = 5,
	// d∥ = min(2, 5) = 2.
	lj := geom.Seg(12, 1, 15, 2)
	if got := ParallelOrdered(li, lj); !approx(got, 2, 1e-12) {
		t.Errorf("d_par = %v, want 2", got)
	}
	// Contained segment: projections at 4 and 6 → min distances 4 and 4 → 4.
	lj2 := geom.Seg(4, 2, 6, 2)
	if got := ParallelOrdered(li, lj2); !approx(got, 4, 1e-12) {
		t.Errorf("d_par contained = %v, want 4", got)
	}
}

func TestParallelZeroForSharedEndpointProjection(t *testing.T) {
	// Adjacent segments of one trajectory: parallel distance is always 0
	// (Section 4.1.1).
	li := geom.Seg(0, 0, 10, 0)
	lj := geom.Seg(10, 0, 14, 3)
	if got := ParallelOrdered(li, lj); got != 0 {
		t.Errorf("adjacent d_par = %v, want 0", got)
	}
}

func TestAngleDistanceDefinition3(t *testing.T) {
	li := geom.Seg(0, 0, 10, 0)
	cases := []struct {
		lj         geom.Segment
		undirected bool
		want       float64
	}{
		{geom.Seg(0, 0, 4, 0), false, 0},                                    // 0°
		{geom.Seg(0, 0, 0, 4), false, 4},                                    // 90° → ‖Lj‖
		{geom.Seg(0, 0, -4, 0), false, 4},                                   // 180° → ‖Lj‖
		{geom.Seg(0, 0, -4, 0), true, 0},                                    // undirected 180° → sin
		{geom.Seg(0, 0, 3, 3), false, 3 * math.Sqrt2 * math.Sin(math.Pi/4)}, // 45°
	}
	for _, c := range cases {
		if got := AngleOrdered(li, c.lj, c.undirected); !approx(got, c.want, 1e-12) {
			t.Errorf("d_theta(%v, undirected=%v) = %v, want %v", c.lj, c.undirected, got, c.want)
		}
	}
}

func TestAppendixAExample(t *testing.T) {
	// The Appendix A configuration: the naive endpoint-sum ties L2 and L3
	// at 200√2, while the TRACLUS distance separates them via the angle
	// term (d⊥=100, d∥=100, dθ=0 vs dθ=‖L3‖=200).
	l1 := geom.Seg(0, 0, 200, 0)
	l2 := geom.Seg(100, 100, 300, 100)
	l3 := geom.Seg(300, 100, 100, 100)
	if got := Dist(l1, l2); !approx(got, 200, 1e-9) {
		t.Errorf("dist(L1,L2) = %v, want 200", got)
	}
	if got := Dist(l1, l3); !approx(got, 400, 1e-9) {
		t.Errorf("dist(L1,L3) = %v, want 400", got)
	}
}

func TestDistSelfZero(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax+ay+bx+by) || math.Abs(ax) > 1e6 || math.Abs(ay) > 1e6 ||
			math.Abs(bx) > 1e6 || math.Abs(by) > 1e6 {
			return true
		}
		s := geom.Segment{Start: geom.Pt(ax, ay), End: geom.Pt(bx, by)}
		return Dist(s, s) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistSymmetryLemma2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b := randSeg(rng), randSeg(rng)
		if d1, d2 := Dist(a, b), Dist(b, a); d1 != d2 {
			t.Fatalf("asymmetric: dist(%v,%v)=%v but reversed %v", a, b, d1, d2)
		}
	}
}

func TestDistSymmetryEqualLengths(t *testing.T) {
	// The tie-break path: equal-length segments must still be symmetric.
	a := geom.Seg(0, 0, 10, 0)
	b := geom.Seg(5, 5, 15, 5)
	if Dist(a, b) != Dist(b, a) {
		t.Error("equal-length tie-break asymmetric")
	}
}

func TestDistNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a, b := randSeg(rng), randSeg(rng)
		if d := Dist(a, b); d < 0 || math.IsNaN(d) {
			t.Fatalf("dist(%v,%v) = %v", a, b, d)
		}
	}
}

func TestDistRigidMotionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		a, b := randSeg(rng), randSeg(rng)
		want := Dist(a, b)
		phi := rng.Float64() * 2 * math.Pi
		d := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		ra := a.Rotate(phi).Translate(d)
		rb := b.Rotate(phi).Translate(d)
		if got := Dist(ra, rb); !approx(got, want, 1e-6*(1+want)) {
			t.Fatalf("not rigid-motion invariant: %v vs %v", got, want)
		}
	}
}

func TestTriangleInequalityViolationExists(t *testing.T) {
	// Section 4.2: "our distance function is not a metric". The angle term
	// produces the violation: two long perpendicular segments joined by a
	// tiny intermediate one.
	l1 := geom.Seg(0, 0, 100, 0)
	l2 := geom.Seg(0, 0, 0.1, 0.1) // tiny diagonal
	l3 := geom.Seg(0, 0, 0, 100)
	d13 := Dist(l1, l3)
	d12 := Dist(l1, l2)
	d23 := Dist(l2, l3)
	if d13 <= d12+d23 {
		t.Fatalf("expected triangle violation: d13=%v d12=%v d23=%v", d13, d12, d23)
	}
}

func TestWeightsValid(t *testing.T) {
	if !DefaultWeights().Valid() {
		t.Error("default weights invalid")
	}
	bad := []Weights{
		{-1, 1, 1},
		{1, math.NaN(), 1},
		{1, 1, math.Inf(1)},
		{0, 0, 0},
	}
	for _, w := range bad {
		if w.Valid() {
			t.Errorf("weights %v reported valid", w)
		}
	}
	if !(Weights{0, 0, 1}).Valid() {
		t.Error("single positive weight should be valid")
	}
}

func TestWeightedDist(t *testing.T) {
	a := geom.Seg(0, 0, 10, 0)
	b := geom.Seg(0, 3, 10, 3)
	// d⊥ = 3, d∥ = 0, dθ = 0.
	opt := Options{Weights: Weights{Perpendicular: 2, Parallel: 5, Angle: 7}}
	if got := DistOpt(a, b, opt); !approx(got, 6, 1e-12) {
		t.Errorf("weighted dist = %v, want 6", got)
	}
}

func TestNewFallsBackOnInvalidWeights(t *testing.T) {
	fn := New(Options{Weights: Weights{-1, -1, -1}})
	a := geom.Seg(0, 0, 10, 0)
	b := geom.Seg(0, 3, 10, 3)
	if got := fn(a, b); !approx(got, 3, 1e-12) {
		t.Errorf("fallback dist = %v, want 3 (default weights)", got)
	}
}

func TestLowerBoundFactor(t *testing.T) {
	if got := LowerBoundFactor(DefaultWeights()); got != 0.5 {
		t.Errorf("factor = %v, want 0.5", got)
	}
	if got := LowerBoundFactor(Weights{0, 1, 1}); got != 0 {
		t.Errorf("factor with zero w_perp = %v, want 0", got)
	}
	if got := LowerBoundFactor(Weights{4, 2, 0}); got != 1 {
		t.Errorf("factor = %v, want 1", got)
	}
}

// TestLowerBoundProperty is the soundness proof of DESIGN.md §3, checked
// empirically: dist(a,b) ≥ LowerBoundFactor(w)·mindist(a,b) for random
// segment pairs and random positive weights.
func TestLowerBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		a, b := randSeg(rng), randSeg(rng)
		w := Weights{
			Perpendicular: 0.1 + rng.Float64()*5,
			Parallel:      0.1 + rng.Float64()*5,
			Angle:         rng.Float64() * 5,
		}
		c := LowerBoundFactor(w)
		d := DistOpt(a, b, Options{Weights: w})
		md := a.MinDist(b)
		if d < c*md-1e-9 {
			t.Fatalf("bound violated: dist=%v < %v·mindist=%v for %v, %v (w=%v)",
				d, c, c*md, a, b, w)
		}
	}
}

func TestSearchRadius(t *testing.T) {
	r, ok := SearchRadius(30, DefaultWeights())
	if !ok || r != 60 {
		t.Errorf("SearchRadius = %v, %v", r, ok)
	}
	if _, ok := SearchRadius(30, Weights{0, 1, 1}); ok {
		t.Error("SearchRadius with zero positional weight should fail")
	}
}

// TestSearchRadiusSound verifies the index contract directly: every pair
// within ε by TRACLUS distance is within SearchRadius by Euclidean
// mindist.
func TestSearchRadiusSound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const eps = 40.0
	radius, ok := SearchRadius(eps, DefaultWeights())
	if !ok {
		t.Fatal("no radius")
	}
	for i := 0; i < 2000; i++ {
		a, b := randSeg(rng), randSeg(rng)
		if Dist(a, b) <= eps && a.MinDist(b) > radius {
			t.Fatalf("pair within eps but outside search radius: %v, %v", a, b)
		}
	}
}

func TestComponentsOrderInternally(t *testing.T) {
	long := geom.Seg(0, 0, 100, 0)
	short := geom.Seg(10, 5, 20, 5)
	p1, l1, a1 := Components(long, short)
	p2, l2, a2 := Components(short, long)
	if p1 != p2 || l1 != l2 || a1 != a2 {
		t.Error("Components not order independent")
	}
}

func TestDegenerateSegmentDistance(t *testing.T) {
	// A zero-length segment behaves as a point: d⊥ is its line distance,
	// angle contributes 0.
	li := geom.Seg(0, 0, 10, 0)
	pt := geom.Seg(5, 3, 5, 3)
	dp, dl, da := Components(li, pt)
	if !approx(dp, 3, 1e-12) {
		t.Errorf("d_perp = %v", dp)
	}
	if !approx(dl, 5, 1e-12) { // projection at x=5, min endpoint distance 5
		t.Errorf("d_par = %v", dl)
	}
	if da != 0 {
		t.Errorf("d_theta = %v", da)
	}
}
