package lsdist

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/segpool"
)

// kernelOptions is the grid of Options every equivalence test sweeps: the
// bit-identity contract must hold for any weights and for both angle
// conventions, not just the defaults.
var kernelOptions = []Options{
	DefaultOptions(),
	{Weights: DefaultWeights(), Undirected: true},
	{Weights: Weights{Perpendicular: 2.5, Parallel: 0.25, Angle: 7}},
	{Weights: Weights{Perpendicular: 1, Parallel: 0, Angle: 3}, Undirected: true},
	{Weights: Weights{Perpendicular: 0, Parallel: 1e-3, Angle: 0}},
	{Weights: Weights{Perpendicular: -1, Parallel: 2, Angle: 3}}, // invalid → defaults, in kernel and closure alike
}

// seg is shorthand for building a segment from four coordinates.
func seg(x1, y1, x2, y2 float64) geom.Segment {
	return geom.Segment{Start: geom.Point{X: x1, Y: y1}, End: geom.Point{X: x2, Y: y2}}
}

// degenerateSegs is the adversarial corpus: zero-length points, collinear and
// axis-parallel runs, a near-parallel pair differing in the last ulps, and
// huge/tiny coordinate scales that stress overflow/underflow in the
// intermediate products.
func degenerateSegs() []geom.Segment {
	return []geom.Segment{
		seg(0, 0, 0, 0),                                 // degenerate at the origin
		seg(3, 4, 3, 4),                                 // degenerate off-origin
		seg(0, 0, 10, 0),                                // axis-parallel (x)
		seg(2, 0, 8, 0),                                 // collinear sub-segment
		seg(0, 0, 0, 10),                                // axis-parallel (y)
		seg(0, 1, 10, 1),                                // parallel offset
		seg(10, 1, 0, 1),                                // same line, reversed heading
		seg(0, 0, 10, 1e-12),                            // near-parallel
		seg(0, 0, 10, math.Nextafter(0, 1)),             // parallel up to one ulp
		seg(1e150, 1e150, 2e150, 2e150),                 // huge scale: Len2 overflows to +Inf
		seg(1e-200, 0, 2e-200, 1e-200),                  // tiny scale: Len2 underflows
		seg(-5e7, 3e7, 5e7, -3e7),                       // large mixed signs
		seg(1, 1, 1+1e-9, 1+1e-9),                       // near-degenerate diagonal
		seg(math.MaxFloat64/4, 0, math.MaxFloat64/2, 0), // near-overflow magnitudes
	}
}

// bitsMatch reports bit equality, treating any NaN as equal to any NaN. NaN
// payloads are excluded from the bit-identity contract: when an intermediate
// overflows (Inf/Inf, Inf−Inf), which operand's NaN payload propagates is
// decided by register allocation — -race instrumentation alone flips it —
// while every NaN behaves identically in the d <= eps comparisons that
// consume distances.
func bitsMatch(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) || (math.IsNaN(a) && math.IsNaN(b))
}

// checkPairEquivalence asserts bit identity (math.Float64bits, NaN payloads
// excepted — see bitsMatch) between the scalar path and the kernel path for
// one ordered pair under one Options.
func checkPairEquivalence(t *testing.T, a, b geom.Segment, opt Options) {
	t.Helper()
	av, aok := segpool.ViewOf(a)
	bv, bok := segpool.ViewOf(b)
	if !aok || !bok {
		t.Fatalf("non-finite test segment: %v / %v", a, b)
	}
	k := NewKernel(opt)

	wantP, wantL, wantA := ComponentsOpt(a, b, opt)
	gotP, gotL, gotA := k.Components(av, bv)
	for _, c := range [][3]float64{{wantP, gotP, 0}, {wantL, gotL, 1}, {wantA, gotA, 2}} {
		if !bitsMatch(c[0], c[1]) {
			t.Fatalf("component %v differs for %v vs %v under %+v:\nscalar %v (%016x)\nkernel %v (%016x)",
				c[2], a, b, opt, c[0], math.Float64bits(c[0]), c[1], math.Float64bits(c[1]))
		}
	}

	want := New(opt)(a, b)
	got := k.Pair(av, bv)
	if !bitsMatch(want, got) {
		t.Fatalf("distance differs for %v vs %v under %+v:\nscalar %v (%016x)\nkernel %v (%016x)",
			a, b, opt, want, math.Float64bits(want), got, math.Float64bits(got))
	}
}

// TestKernelEquivalenceRandom pins the bit-identity contract on randomized
// segment pairs across the options grid — every component and the combined
// distance must match the scalar path to the last bit.
func TestKernelEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, opt := range kernelOptions {
		for i := 0; i < 2000; i++ {
			a, b := randSeg(rng), randSeg(rng)
			checkPairEquivalence(t, a, b, opt)
			checkPairEquivalence(t, b, a, opt)
			checkPairEquivalence(t, a, a, opt)
		}
	}
}

// TestKernelEquivalenceDegenerate runs the full cross product of the
// adversarial corpus (including each segment against itself and its own
// reverse) through the equivalence check.
func TestKernelEquivalenceDegenerate(t *testing.T) {
	segs := degenerateSegs()
	for _, opt := range kernelOptions {
		for _, a := range segs {
			for _, b := range segs {
				checkPairEquivalence(t, a, b, opt)
			}
			rev := geom.Segment{Start: a.End, End: a.Start}
			checkPairEquivalence(t, a, rev, opt)
		}
	}
}

// TestKernelBlockShapes checks the block entry points against per-pair Pair
// calls: DistBlock must honor an arbitrary id gather order, DistRange must
// match the contiguous slice, and both must reuse out's capacity.
func TestKernelBlockShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	segs := make([]geom.Segment, 257) // not a multiple of any block size
	for i := range segs {
		segs[i] = randSeg(rng)
	}
	pool, err := segpool.New(segs)
	if err != nil {
		t.Fatal(err)
	}
	k := NewKernel(DefaultOptions())
	q, _ := segpool.ViewOf(randSeg(rng))

	ids := rng.Perm(len(segs))[:101]
	out := k.DistBlock(pool, q, ids, nil)
	if len(out) != len(ids) {
		t.Fatalf("DistBlock returned %d distances for %d ids", len(out), len(ids))
	}
	for t2, j := range ids {
		if want := k.Pair(q, pool.View(j)); !bitsMatch(out[t2], want) {
			t.Fatalf("DistBlock[%d] (id %d) = %v, want %v", t2, j, out[t2], want)
		}
	}

	// Reuse: a second call with a shorter block must not allocate a fresh
	// slice and must resize correctly.
	prev := &out[0]
	out = k.DistBlock(pool, q, ids[:13], out)
	if len(out) != 13 || &out[0] != prev {
		t.Fatalf("DistBlock did not reuse out's backing array")
	}

	rng2 := k.DistRange(pool, q, 31, 222, nil)
	if len(rng2) != 222-31 {
		t.Fatalf("DistRange returned %d distances, want %d", len(rng2), 222-31)
	}
	for t2 := range rng2 {
		if want := k.Pair(q, pool.View(31+t2)); !bitsMatch(rng2[t2], want) {
			t.Fatalf("DistRange[%d] = %v, want %v", t2, rng2[t2], want)
		}
	}
}

// TestZeroLengthSegmentGuards pins the scalar distance's division guards for
// degenerate (zero-length) segments: the projection parameter onto a point is
// 0, the empty Lehmer mean is 0, and the angle to or from a point is 0. The
// kernel replicates these guards (pairOrdered); the equivalence suite ties
// the two together, this test ties the scalar behavior to the definitions.
func TestZeroLengthSegmentGuards(t *testing.T) {
	pt := seg(3, 4, 3, 4)
	ln := seg(0, 0, 10, 0)

	// Point vs line: the point projects onto itself (u = 0 falls back to
	// li.Start only when li is the point; here li = ln, the longer one).
	dp, dl, da := Components(pt, ln)
	if dp != 4 { // both endpoint offsets are the perpendicular height 4
		t.Errorf("d⊥(point, line) = %v, want 4", dp)
	}
	if dl != 3 { // projection lands at x=3; nearer endpoint is (0,0) at 3
		t.Errorf("d∥(point, line) = %v, want 3", dl)
	}
	if da != 0 { // angle with a zero-length segment is defined as 0, ‖lj‖·sin 0 = 0
		t.Errorf("dθ(point, line) = %v, want 0", da)
	}

	// Point vs point: every division guard at once — ProjectParam's l2 == 0
	// collapses both projections to li's point, so the perpendicular offsets
	// carry the whole 3-4-5 separation (d⊥ = Lehmer₂(5,5) = 5) while the
	// parallel distance from the projection to li's coincident endpoints is
	// 0; Angle's zero norms give dθ = 0. No 0/0 NaN anywhere.
	dp, dl, da = Components(pt, seg(0, 0, 0, 0))
	if dp != 5 || dl != 0 || da != 0 {
		t.Errorf("point vs point: (d⊥, d∥, dθ) = (%v, %v, %v), want (5, 0, 0)", dp, dl, da)
	}

	// Coincident zero-length pair: fully zero, and no NaN from 0/0.
	if d := Dist(pt, pt); d != 0 {
		t.Errorf("dist(point, point at same spot) = %v, want 0", d)
	}

	// Identical-endpoint line pair: ties broken deterministically, zero
	// distance, no NaN anywhere in the guard paths.
	for _, opt := range kernelOptions {
		if d := New(opt)(ln, ln); d != 0 || math.IsNaN(d) {
			t.Errorf("dist(ln, ln) under %+v = %v, want 0", opt, d)
		}
	}
}

// FuzzSegmentDistanceKernel cross-checks the kernel against the scalar path
// on fuzz-chosen coordinates: finite inputs must agree bit for bit through a
// batch of one, and non-finite inputs must be rejected at pool build / view
// time (the searcher's signal to stay on the scalar fallback).
func FuzzSegmentDistanceKernel(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 0.0, 0.0, 1.0, 10.0, 1.0, 1.0, 1.0, 1.0, false)
	f.Add(0.0, 0.0, 0.0, 0.0, 3.0, 4.0, 3.0, 4.0, 1.0, 1.0, 1.0, true)
	f.Add(1e150, 1e150, 2e150, 2e150, 0.0, 0.0, 1e-200, 0.0, 2.5, 0.25, 7.0, false)
	f.Add(math.Inf(1), 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0, false)
	f.Add(math.NaN(), 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0, true)
	f.Fuzz(func(t *testing.T, ax1, ay1, ax2, ay2, bx1, by1, bx2, by2, wp, wl, wa float64, undirected bool) {
		a := seg(ax1, ay1, ax2, ay2)
		b := seg(bx1, by1, bx2, by2)
		opt := Options{Weights: Weights{Perpendicular: wp, Parallel: wl, Angle: wa}, Undirected: undirected}

		aFinite := a.Start.IsFinite() && a.End.IsFinite()
		bFinite := b.Start.IsFinite() && b.End.IsFinite()

		av, aok := segpool.ViewOf(a)
		bv, bok := segpool.ViewOf(b)
		if aok != aFinite || bok != bFinite {
			t.Fatalf("ViewOf finite-ness mismatch: a=%v ok=%v, b=%v ok=%v", a, aok, b, bok)
		}
		if _, err := segpool.New([]geom.Segment{a, b}); (err == nil) != (aFinite && bFinite) {
			t.Fatalf("segpool.New error mismatch for %v, %v: %v", a, b, err)
		}
		if !aFinite || !bFinite {
			return // scalar fallback territory by construction
		}

		k := NewKernel(opt)
		want := New(opt)(a, b)
		got := k.Pair(av, bv)
		if !bitsMatch(want, got) {
			t.Fatalf("kernel mismatch for %v vs %v under %+v: scalar %v (%016x), kernel %v (%016x)",
				a, b, opt, want, math.Float64bits(want), got, math.Float64bits(got))
		}

		// Batch of one through the pool: same bits again.
		pool, err := segpool.New([]geom.Segment{b})
		if err != nil {
			t.Fatal(err)
		}
		out := k.DistBlock(pool, av, []int{0}, nil)
		if !bitsMatch(out[0], want) {
			t.Fatalf("DistBlock batch-of-1 mismatch: %v (%016x), want %v (%016x)",
				out[0], math.Float64bits(out[0]), want, math.Float64bits(want))
		}
	})
}
