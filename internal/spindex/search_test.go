package spindex

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/lsdist"
)

// TestBatchedBlocksMatchScalar pins the searcher's block scorers against the
// plain per-pair scalar distance, bit for bit, on a finite dataset where the
// kernel path is active.
func TestBatchedBlocksMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	segs := randomSegments(rng, 300, 800)
	opt := lsdist.DefaultOptions()
	dist := lsdist.New(opt)
	s := NewSearcher(segs, opt, Grid())
	if !s.Batched() {
		t.Fatal("finite dataset did not take the kernel path")
	}
	sq := s.Query()

	ids := rng.Perm(len(segs))[:97]
	out := sq.DistBlock(3, ids, nil)
	for k, j := range ids {
		if want := dist(segs[3], segs[j]); math.Float64bits(out[k]) != math.Float64bits(want) {
			t.Fatalf("DistBlock[%d] (id %d) = %v, scalar %v", k, j, out[k], want)
		}
	}

	q := geom.Seg(5, 5, 120, 80)
	out = sq.DistBlockSeg(q, ids, out)
	for k, j := range ids {
		if want := dist(q, segs[j]); math.Float64bits(out[k]) != math.Float64bits(want) {
			t.Fatalf("DistBlockSeg[%d] (id %d) = %v, scalar %v", k, j, out[k], want)
		}
	}
}

// TestNonFiniteDatasetFallsBackToScalar pins the fallback gate: a dataset
// containing a non-finite coordinate must keep the searcher off the kernel
// path, and every query must still answer — identically to the scalar
// per-pair evaluation the fallback is.
func TestNonFiniteDatasetFallsBackToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	segs := randomSegments(rng, 60, 400)
	segs = append(segs, geom.Seg(math.NaN(), 0, 1, 1))
	opt := lsdist.DefaultOptions()
	dist := lsdist.New(opt)

	for _, backend := range []Backend{Grid(), RTree(), Brute()} {
		s := NewSearcher(segs, opt, backend)
		if s.Batched() {
			t.Fatalf("%T: non-finite dataset took the kernel path", backend)
		}
		sq := s.Query()
		ids := []int{0, 17, 42, len(segs) - 1}
		out := sq.DistBlock(5, ids, nil)
		for k, j := range ids {
			want := dist(segs[5], segs[j])
			if math.Float64bits(out[k]) != math.Float64bits(want) &&
				!(math.IsNaN(out[k]) && math.IsNaN(want)) {
				t.Fatalf("%T: fallback DistBlock[%d] = %v, scalar %v", backend, k, out[k], want)
			}
		}

		// Nearest still answers exactly over the finite portion; the NaN
		// segment never compares below +Inf so it can never win.
		q := geom.Seg(10, 10, 60, 40)
		id, d := sq.Nearest(q, 30, nil)
		bestID, bestD := -1, math.Inf(1)
		for j := range segs {
			if dj := dist(q, segs[j]); dj < bestD {
				bestID, bestD = j, dj
			}
		}
		if id != bestID || math.Float64bits(d) != math.Float64bits(bestD) {
			t.Fatalf("%T: fallback Nearest = (%d, %v), brute force (%d, %v)", backend, id, d, bestID, bestD)
		}
	}
}

// TestNonFiniteQueryFallsBackToScalar pins the per-query gate: an indexed
// finite dataset stays on the kernel path, but a non-finite query segment
// must be scored by the scalar fallback (and produce its exact values).
func TestNonFiniteQueryFallsBackToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	segs := randomSegments(rng, 80, 400)
	opt := lsdist.DefaultOptions()
	dist := lsdist.New(opt)
	s := NewSearcher(segs, opt, Grid())
	if !s.Batched() {
		t.Fatal("finite dataset did not take the kernel path")
	}
	sq := s.Query()

	q := geom.Seg(math.Inf(1), 0, 1, 1)
	ids := []int{1, 2, 3}
	out := sq.DistBlockSeg(q, ids, nil)
	for k, j := range ids {
		want := dist(q, segs[j])
		if math.Float64bits(out[k]) != math.Float64bits(want) &&
			!(math.IsNaN(out[k]) && math.IsNaN(want)) {
			t.Fatalf("non-finite query DistBlockSeg[%d] = %v, scalar %v", k, out[k], want)
		}
	}
}
