package spindex

// Incremental growth of a Searcher. The append path never builds a second
// index for a dataset it already indexed — it grows the one Searcher the
// model was built with, preserving both halves of the single-build
// discipline: builds counts stay flat (tests pin zero new builds per append)
// and every phase keeps querying one coherent index.
//
// Growth is not a concurrent operation. The owner (the model's appender)
// must serialise Grow against every query on the same Searcher; cursors
// created before a Grow remain usable afterwards (they resize their own
// scratch lazily), but not DURING one. Published query results computed
// before a Grow stay valid because ids are append-only.

import (
	"errors"

	"repro/internal/geom"
	"repro/internal/segpool"
)

// ErrNotGrowable reports a Grow on a Searcher whose backend index does not
// implement Inserter (custom backends without growth support).
var ErrNotGrowable = errors.New("spindex: index backend does not support incremental growth")

// Growable reports whether this Searcher's index can absorb appended
// segments (all three first-class backends can).
func (s *Searcher) Growable() bool {
	_, ok := s.index.(Inserter)
	return ok
}

// Grow appends segs to the Searcher: the columnar pool grows (amortized
// doubling, no new pool build), the backend index absorbs the new ids in
// place, and the growth registers in the package Grows counter — never in
// Builds. The appended segments get ids Len()..Len()+len(segs)-1, exactly
// the ids NewSearcher would have assigned them on the concatenated set.
//
// A non-finite coordinate in segs drops the whole Searcher to the scalar
// distance path (Batched() becomes false), which is bit-identical to what
// NewSearcher over the concatenated set would have done; the query answers
// do not change, only their speed. Grow returns ErrNotGrowable — mutating
// nothing — when the backend lacks growth support.
func (s *Searcher) Grow(segs []geom.Segment) error {
	if len(segs) == 0 {
		return nil
	}
	ins, ok := s.index.(Inserter)
	if !ok {
		return ErrNotGrowable
	}
	if s.pool != nil {
		np, err := segpool.Grow(s.pool, segs)
		if err != nil {
			// Fall off the kernel path for good: materialise the query
			// rectangles the pool used to cover, then drop pool and kernel.
			if !s.brute {
				s.rects = make([]geom.Rect, len(s.segs), len(s.segs)+len(segs))
				for i, sg := range s.segs {
					s.rects[i] = sg.Bounds()
				}
			}
			s.pool, s.kernel = nil, nil
		} else {
			s.pool = np
		}
	}
	s.segs = append(s.segs, segs...)
	if s.pool == nil && !s.brute {
		for _, sg := range segs {
			s.rects = append(s.rects, sg.Bounds())
		}
	}
	ins.Insert(segs)
	grows.Add(1)
	return nil
}
