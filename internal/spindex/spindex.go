// Package spindex is the unified spatial-index subsystem behind every
// ε-neighborhood and nearest-representative query in the repo. TRACLUS
// spends its hot path in exactly two query shapes — "which segments can be
// within TRACLUS distance ε of this one?" (grouping, parameter estimation)
// and "which indexed segment is nearest to this one?" (online
// classification) — and both are answered here, over one index that is
// built once per dataset and shared by every phase.
//
// The TRACLUS distance is not a metric, so no metric index applies
// directly. Instead every backend answers a conservative Euclidean
// candidate query (Within), and the Searcher layered on top converts
// TRACLUS-distance thresholds into sound Euclidean radii through the lower
// bound of internal/lsdist:
//
//	dist(a, b) ≥ c · mindist(a, b),  c = LowerBoundFactor(weights) > 0
//
// which makes radius ε/c complete for ε-range queries and drives the
// expanding-radius exact nearest search. When c = 0 (a positional weight is
// zero) no pruning is sound and the Brute backend — a full scan, the
// paper's Lemma 3 baseline — is the only correct choice; Searcher enforces
// that fallback itself.
//
// Backend contract: Build(segs) must return an index whose queries, for
// every query rectangle q and radius r, report every indexed id i with
// Euclidean mindist(segs[i].Bounds(), q) ≤ r — false positives are allowed
// (callers refine candidates with the exact distance), false negatives are
// not, and an id must not repeat within one query's result. Indexes are
// immutable after Build; Query cursors carry all per-goroutine scratch, so
// one SegmentIndex serves any number of goroutines, each through its own
// cursor.
package spindex

import (
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/gridindex"
	"repro/internal/rtree"
)

// Backend constructs a SegmentIndex over a fixed segment set. The three
// first-class backends are Grid, RTree, and Brute; callers can plug their
// own (planar, geodesic, spatiotemporal, …) as long as it honours the
// conservative-candidate contract in the package documentation.
type Backend interface {
	// Name identifies the backend in flags, logs, and errors.
	Name() string
	// Build indexes segs. The returned index must treat segs as immutable.
	Build(segs []geom.Segment) SegmentIndex
}

// SegmentIndex is an immutable candidate index over the segment set it was
// built from.
type SegmentIndex interface {
	// Len returns the number of indexed segments.
	Len() int
	// Query returns a fresh query cursor holding any per-goroutine scratch.
	// Cursors must not be shared between goroutines; the index itself may.
	Query() Query
}

// Query is a per-goroutine cursor over a SegmentIndex.
type Query interface {
	// Within appends to dst the id of every indexed segment whose minimum
	// Euclidean distance to the rectangle q is at most r, each at most
	// once, and returns the extended slice. Supersets (false positives) are
	// permitted; omissions are not.
	Within(q geom.Rect, r float64, dst []int) []int
}

// builds counts every index constructed through Build since process start.
// Tests read it (via Builds) to pin the single-build data flow: a model
// build must construct exactly one index per dataset it indexes.
var builds atomic.Int64

// Builds returns the number of indexes built through Build so far.
func Builds() int64 { return builds.Load() }

// grows counts every incremental growth through Searcher.Grow since process
// start — the second half of the accounting story: an append must register
// here and NOT in builds, so tests can pin "zero new index builds on the
// append path" without the two operations aliasing.
var grows atomic.Int64

// Grows returns the number of incremental index growths so far.
func Grows() int64 { return grows.Load() }

// Inserter is the optional growth extension of SegmentIndex: backends whose
// indexes can absorb appended segments in place implement it, and
// Searcher.Grow type-asserts for it. Insert appends segs after the ids
// already indexed (the k-th inserted segment gets id Len()+k at call time)
// and must preserve the conservative-candidate contract for old and new ids
// alike. Unlike queries, Insert is NOT safe to run concurrently with
// anything — the owner serialises growth against queries.
type Inserter interface {
	Insert(segs []geom.Segment)
}

// Build constructs backend's index over segs, recording the construction in
// the package build counter. All in-repo call sites build through this
// function (never backend.Build directly) so the counter sees custom
// backends too.
func Build(b Backend, segs []geom.Segment) SegmentIndex {
	builds.Add(1)
	return b.Build(segs)
}

// Grid returns the uniform-grid backend (the clustering default): segment
// MBRs bucketed into a heuristically-sized grid, candidates fetched from
// the cells a grown query rectangle overlaps and refined by exact MBR
// distance.
func Grid() Backend { return gridBackend{} }

// RTree returns the R-tree backend: Sort-Tile-Recursive bulk loading,
// candidates fetched by MBR distance descent (Lemma 3's "appropriate index
// such as the R-tree").
func RTree() Backend { return rtreeBackend{} }

// Brute returns the exhaustive backend: every query reports every indexed
// id, the O(n²) baseline of Lemma 3. It is also the sound fallback when no
// Euclidean lower bound exists for the distance weights, and the only
// correct choice under an arbitrary (non-TRACLUS) distance.
func Brute() Backend { return bruteBackend{} }

// ---- Grid ----

type gridBackend struct{}

func (gridBackend) Name() string { return "grid" }

func (gridBackend) Build(segs []geom.Segment) SegmentIndex {
	return gridIndex{idx: gridindex.Build(segs, 0)}
}

type gridIndex struct{ idx *gridindex.Index }

func (g gridIndex) Len() int { return g.idx.Len() }

func (g gridIndex) Query() Query {
	// The grid's query-time dedup marks are the per-cursor scratch.
	return &gridQuery{idx: g.idx, seen: make([]bool, g.idx.Len())}
}

func (g gridIndex) Insert(segs []geom.Segment) { g.idx.Insert(segs) }

type gridQuery struct {
	idx  *gridindex.Index
	seen []bool
}

func (q *gridQuery) Within(rect geom.Rect, r float64, dst []int) []int {
	// The index may have grown since this cursor was created; resize the
	// dedup scratch to the live segment count before delegating.
	if n := q.idx.Len(); len(q.seen) < n {
		q.seen = make([]bool, n)
	}
	return q.idx.Candidates(rect, r, dst, q.seen)
}

// ---- R-tree ----

type rtreeBackend struct{}

func (rtreeBackend) Name() string { return "rtree" }

func (rtreeBackend) Build(segs []geom.Segment) SegmentIndex {
	rects := make([]geom.Rect, len(segs))
	for i, s := range segs {
		rects[i] = s.Bounds()
	}
	return rtreeIndex{tree: rtree.Bulk(rects)}
}

type rtreeIndex struct{ tree *rtree.Tree }

func (t rtreeIndex) Len() int { return t.tree.Len() }

func (t rtreeIndex) Query() Query { return rtreeQuery{tree: t.tree} }

func (t rtreeIndex) Insert(segs []geom.Segment) {
	base := t.tree.Len()
	for k, s := range segs {
		t.tree.Insert(s.Bounds(), base+k)
	}
}

type rtreeQuery struct{ tree *rtree.Tree }

func (q rtreeQuery) Within(rect geom.Rect, r float64, dst []int) []int {
	q.tree.WithinDist(rect, r, func(id int) bool {
		dst = append(dst, id)
		return true
	})
	return dst
}

// ---- Brute ----

type bruteBackend struct{}

func (bruteBackend) Name() string { return "brute" }

func (bruteBackend) Build(segs []geom.Segment) SegmentIndex {
	return &bruteIndex{n: len(segs)}
}

type bruteIndex struct{ n int }

func (b *bruteIndex) Len() int { return b.n }

// Query cursors reference the index rather than copying n so a cursor
// created before a Grow sees appended ids, matching the pointer-backed grid
// and R-tree cursors.
func (b *bruteIndex) Query() Query { return bruteQuery{idx: b} }

func (b *bruteIndex) Insert(segs []geom.Segment) { b.n += len(segs) }

type bruteQuery struct{ idx *bruteIndex }

func (q bruteQuery) Within(_ geom.Rect, _ float64, dst []int) []int {
	for j := 0; j < q.idx.n; j++ {
		dst = append(dst, j)
	}
	return dst
}
