package spindex

// This file is the one audited home of the dist ≥ c·mindist pruning logic:
// the ε-range candidate generation the grouping and estimation phases
// refine, and the exact expanding-radius nearest-segment search the online
// classifier assigns with. Both used to live as private copies in
// internal/segclust and the root classify.go; they share the same lower
// bound and must stay together.
//
// Since the columnar-kernel refactor the refinement arithmetic itself also
// lives behind this file: a Searcher owns the segpool.Pool mirror of its
// segment set and an lsdist.Kernel, and every caller that used to evaluate
// the scalar distance per candidate now scores whole candidate blocks
// through DistBlock/Nearest. The kernel path is bit-identical to the scalar
// one (see internal/lsdist/kernel.go), so which path runs is purely a
// performance property; datasets or queries with non-finite coordinates
// stay on the scalar fallback.

import (
	"math"

	"repro/internal/geom"
	"repro/internal/lsdist"
	"repro/internal/segpool"
)

// maxExpandIters bounds the expanding-radius doublings of Nearest before it
// gives up on pruning and falls back to one exhaustive scan. 48 doublings
// take any positive radius past every finite coordinate scale.
const maxExpandIters = 48

// scanBlock is the chunk size of exhaustive kernel scans (Nearest's
// unpruned fallback): large enough to amortise the per-block call, small
// enough that the per-cursor distance scratch stays cache-resident.
const scanBlock = 1024

// Searcher couples one immutable SegmentIndex with the exact TRACLUS
// distance and its Euclidean lower bound dist ≥ Factor·mindist. It is built
// once per dataset (the Build counter pins that) and then answers any
// number of ε-range and nearest queries, at any ε, through per-goroutine
// SearchQuery cursors.
//
// When the distance weights admit no lower bound (Factor() == 0), or the
// caller asked for Brute, the index degenerates to the exhaustive scan and
// every query remains correct — just unpruned, as Lemma 3's baseline.
type Searcher struct {
	segs   []geom.Segment
	rects  []geom.Rect // fallback query rectangles; nil for brute or when pool covers them
	dist   lsdist.Func
	factor float64 // c in dist ≥ c·mindist; 0 = no sound pruning
	index  SegmentIndex
	brute  bool // the index reports every id on every query

	// Columnar fast path: the SoA mirror of segs and the batch kernel that
	// scores candidate blocks against it. pool is nil when any segment
	// coordinate is non-finite; every scoring entry point then falls back
	// to the scalar dist, which handles such inputs bit-identically to the
	// pre-kernel code (because it IS that code).
	pool   *segpool.Pool
	kernel *lsdist.Kernel
}

// NewSearcher builds backend's index over segs once and wraps it with the
// distance machinery for opt. A zero lower-bound factor (positional weight
// 0) forces the Brute backend regardless of the request — no other backend
// can be queried soundly without it. The columnar pool for the batch
// kernels is built here too: one pool per dataset, exactly like the index.
func NewSearcher(segs []geom.Segment, opt lsdist.Options, backend Backend) *Searcher {
	if !opt.Weights.Valid() {
		opt.Weights = lsdist.DefaultWeights()
	}
	s := &Searcher{
		segs:   segs,
		dist:   lsdist.New(opt),
		factor: lsdist.LowerBoundFactor(opt.Weights),
	}
	if pool, err := segpool.New(segs); err == nil {
		s.pool = pool
		s.kernel = lsdist.NewKernel(opt)
	}
	if backend == nil {
		backend = Grid()
	}
	if s.factor == 0 {
		backend = Brute()
	}
	// Query rectangles for indexed-item queries are materialised only on
	// the scalar fallback: with a pool the coordinates are already resident
	// in its columns and rectOf derives the identical Bounds() on the fly,
	// so the precomputed copy would be len(segs) rects of pure overlap.
	if _, s.brute = backend.(bruteBackend); !s.brute && s.pool == nil {
		s.rects = make([]geom.Rect, len(segs))
		for i, sg := range segs {
			s.rects[i] = sg.Bounds()
		}
	}
	s.index = Build(backend, segs)
	return s
}

// rectOf returns indexed segment i's query rectangle — Bounds() of the
// segment, reconstructed from the pool columns when they exist (the round
// trip through the pool is exact, so the rect is bit-identical to the
// precomputed one).
func (s *Searcher) rectOf(i int) geom.Rect {
	if s.pool != nil {
		return s.pool.Segment(i).Bounds()
	}
	return s.rects[i]
}

// Len returns the number of indexed segments.
func (s *Searcher) Len() int { return len(s.segs) }

// Segment returns indexed segment i exactly as it was handed to
// NewSearcher. The snapshot layer reads the reference geometry back out
// through it, so a saved-and-reloaded searcher indexes bit-identical
// segments.
func (s *Searcher) Segment(i int) geom.Segment { return s.segs[i] }

// Factor returns the lower-bound constant c (0 = no pruning possible).
func (s *Searcher) Factor() float64 { return s.factor }

// Batched reports whether the columnar kernel path is active (false only
// for datasets with non-finite coordinates, which stay on the scalar
// fallback).
func (s *Searcher) Batched() bool { return s.pool != nil }

// Query returns a fresh per-goroutine cursor. Cursors are cheap relative to
// the index; pool them on serving hot paths.
func (s *Searcher) Query() *SearchQuery {
	return &SearchQuery{s: s, q: s.index.Query()}
}

// SearchQuery is a per-goroutine cursor over a Searcher: it owns the
// candidate scratch, the distance scratch, and the backend cursor, so
// concurrent queries never share mutable state.
type SearchQuery struct {
	s    *Searcher
	q    Query
	cand []int
	out  []float64
}

// radius converts a TRACLUS-distance threshold into the complete Euclidean
// candidate radius eps/c (lsdist.SearchRadius). The brute path never
// consults it.
func (sq *SearchQuery) radius(eps float64) float64 { return eps / sq.s.factor }

// CandidatesOf appends to dst the id of every indexed segment possibly
// within TRACLUS distance eps of indexed segment i: the Euclidean
// prefilter at radius eps/c against i's precomputed query rectangle.
// Callers refine with the exact distance. The returned ids are a superset
// of the true ε-neighborhood (completeness follows from the lower bound;
// see the package documentation).
func (sq *SearchQuery) CandidatesOf(i int, eps float64, dst []int) []int {
	if sq.s.brute {
		return sq.q.Within(geom.Rect{}, 0, dst)
	}
	return sq.q.Within(sq.s.rectOf(i), sq.radius(eps), dst)
}

// DistBlock scores the exact TRACLUS distance from indexed segment i to
// every indexed candidate in ids, into out index-aligned with ids (resized,
// reusing capacity). This is the refinement half of every ε-neighborhood
// query: CandidatesOf generates the block, DistBlock scores it in one call
// through the batch kernel instead of one closure call per pair. The
// scored values are bit-identical to evaluating the scalar distance per
// pair — datasets off the kernel path (non-finite coordinates) literally do
// exactly that.
func (sq *SearchQuery) DistBlock(i int, ids []int, out []float64) []float64 {
	s := sq.s
	if s.pool != nil {
		return s.kernel.DistBlock(s.pool, s.pool.View(i), ids, out)
	}
	return sq.scalarBlock(s.segs[i], ids, out)
}

// DistBlockSeg is DistBlock for a query segment that is not in the index
// (the classification shape). Non-finite queries fall back to the scalar
// path.
func (sq *SearchQuery) DistBlockSeg(q geom.Segment, ids []int, out []float64) []float64 {
	s := sq.s
	if s.pool != nil {
		if qv, ok := segpool.ViewOf(q); ok {
			return s.kernel.DistBlock(s.pool, qv, ids, out)
		}
	}
	return sq.scalarBlock(q, ids, out)
}

// scalarBlock is the fallback block scorer: the scalar distance applied
// per candidate, producing the same index-aligned layout as the kernel.
func (sq *SearchQuery) scalarBlock(q geom.Segment, ids []int, out []float64) []float64 {
	out = out[:0]
	for _, j := range ids {
		out = append(out, sq.s.dist(q, sq.s.segs[j]))
	}
	return out
}

// Nearest returns the indexed segment exactly nearest to q under the
// TRACLUS distance, and that distance. seed is a TRACLUS-distance scale
// (typically the model's ε) seeding the first candidate radius seed/c; the
// search expands the radius geometrically, and the lower bound guarantees
// that once the best exact distance among candidates within Euclidean
// radius r is ≤ c·r, no segment outside the candidate set can be closer —
// the exactness invariant the property tests pin against brute force.
// Candidate blocks are scored through the batch kernel.
//
// Ties on the exact distance resolve through prefer: prefer(i, j) reports
// whether candidate i should replace the incumbent j (nil keeps the first
// encountered — note that candidate enumeration order is backend-specific,
// so deterministic callers must pass an order-free prefer). The returned id
// is -1 only when no distance evaluated below +Inf (extreme coordinates
// overflowing the computation).
func (sq *SearchQuery) Nearest(q geom.Segment, seed float64, prefer func(cand, incumbent int) bool) (id int, d float64) {
	return sq.nearest(q, seed, nil, prefer)
}

// NearestAdjusted is Nearest under the distance dist(q, ·) + adjust(id),
// where adjust is an arbitrary non-negative per-segment addend — the
// geometry hook the spatiotemporal classifier uses to add wT·gap between
// the query's time interval and each reference segment's cluster window.
//
// The expanding-radius termination stays exact: an unseen segment outside
// Euclidean radius r has spatial distance ≥ c·mindist > c·r, and because
// adjust ≥ 0 its adjusted distance is at least that; so once the best
// adjusted distance among candidates within r is ≤ c·r, no unseen segment
// can beat it. A negative addend would break this bound (and the search's
// exactness), which is why the contract requires adjust(id) ≥ 0 for all
// ids. nil adjust is exactly Nearest.
func (sq *SearchQuery) NearestAdjusted(q geom.Segment, seed float64, adjust func(id int) float64, prefer func(cand, incumbent int) bool) (id int, d float64) {
	return sq.nearest(q, seed, adjust, prefer)
}

// nearest is the shared expanding-radius implementation behind Nearest and
// NearestAdjusted; adjust is nil on the planar path.
func (sq *SearchQuery) nearest(q geom.Segment, seed float64, adjust func(id int) float64, prefer func(cand, incumbent int) bool) (id int, d float64) {
	s := sq.s
	if s.brute {
		return sq.scanNearest(q, adjust, prefer)
	}
	r := seed / s.factor
	if !(r > 0) || math.IsInf(r, 0) {
		return sq.scanNearest(q, adjust, prefer)
	}
	bounds := q.Bounds()
	for iter := 0; iter < maxExpandIters; iter++ {
		sq.cand = sq.q.Within(bounds, r, sq.cand[:0])
		best, bestD := sq.bestOf(q, sq.cand, adjust, prefer)
		if best >= 0 && bestD <= s.factor*r {
			return best, bestD
		}
		r *= 2
		if math.IsInf(r, 0) {
			break
		}
	}
	return sq.scanNearest(q, adjust, prefer)
}

// scanNearest is the unpruned exact search over every indexed segment,
// kernel-scored in fixed-size blocks so the distance scratch stays small.
func (sq *SearchQuery) scanNearest(q geom.Segment, adjust func(id int) float64, prefer func(cand, incumbent int) bool) (int, float64) {
	s := sq.s
	var qv segpool.Seg
	batched := s.pool != nil
	if batched {
		var ok bool
		if qv, ok = segpool.ViewOf(q); !ok {
			batched = false
		}
	}
	b := bestTracker{id: -1, d: math.Inf(1), prefer: prefer}
	n := s.Len()
	for lo := 0; lo < n; lo += scanBlock {
		hi := lo + scanBlock
		if hi > n {
			hi = n
		}
		if batched {
			sq.out = s.kernel.DistRange(s.pool, qv, lo, hi, sq.out)
		} else {
			sq.out = ensureLen(sq.out, hi-lo)
			for j := lo; j < hi; j++ {
				sq.out[j-lo] = s.dist(q, s.segs[j])
			}
		}
		for t, d := range sq.out {
			if adjust != nil {
				d += adjust(lo + t)
			}
			b.offer(lo+t, d)
		}
	}
	return b.id, b.d
}

// bestOf selects the exact nearest among a candidate block, scoring the
// block through the kernel in one call and folding in the optional
// non-negative adjustment.
func (sq *SearchQuery) bestOf(q geom.Segment, cand []int, adjust func(id int) float64, prefer func(cand, incumbent int) bool) (int, float64) {
	sq.out = sq.DistBlockSeg(q, cand, sq.out)
	b := bestTracker{id: -1, d: math.Inf(1), prefer: prefer}
	for t, d := range sq.out {
		if adjust != nil {
			d += adjust(cand[t])
		}
		b.offer(cand[t], d)
	}
	return b.id, b.d
}

// bestTracker folds scored (id, distance) pairs into the running exact
// minimum with the deterministic tie-break contract of Nearest: a candidate
// replaces the incumbent when strictly closer, or on an exact finite tie
// when prefer says so. An id of -1 means no distance compared below +Inf
// and callers must treat the query as unclassifiable.
type bestTracker struct {
	id     int
	d      float64
	prefer func(cand, incumbent int) bool
}

func (b *bestTracker) offer(j int, d float64) {
	if d < b.d || (d == b.d && d < math.Inf(1) && b.prefer != nil && b.id >= 0 && b.prefer(j, b.id)) {
		b.id, b.d = j, d
	}
}

// ensureLen returns out resized to n, reusing its capacity when possible;
// growth is at least doubling so creeping block sizes do not reallocate at
// every new maximum.
func ensureLen(out []float64, n int) []float64 {
	if cap(out) < n {
		c := 2 * cap(out)
		if c < n {
			c = n
		}
		return make([]float64, n, c)
	}
	return out[:n]
}
