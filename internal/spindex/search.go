package spindex

// This file is the one audited home of the dist ≥ c·mindist pruning logic:
// the ε-range candidate generation the grouping and estimation phases
// refine, and the exact expanding-radius nearest-segment search the online
// classifier assigns with. Both used to live as private copies in
// internal/segclust and the root classify.go; they share the same lower
// bound and must stay together.

import (
	"math"

	"repro/internal/geom"
	"repro/internal/lsdist"
)

// maxExpandIters bounds the expanding-radius doublings of Nearest before it
// gives up on pruning and falls back to one exhaustive scan. 48 doublings
// take any positive radius past every finite coordinate scale.
const maxExpandIters = 48

// Searcher couples one immutable SegmentIndex with the exact TRACLUS
// distance and its Euclidean lower bound dist ≥ Factor·mindist. It is built
// once per dataset (the Build counter pins that) and then answers any
// number of ε-range and nearest queries, at any ε, through per-goroutine
// SearchQuery cursors.
//
// When the distance weights admit no lower bound (Factor() == 0), or the
// caller asked for Brute, the index degenerates to the exhaustive scan and
// every query remains correct — just unpruned, as Lemma 3's baseline.
type Searcher struct {
	segs   []geom.Segment
	rects  []geom.Rect // query rectangles for indexed-item queries; nil for brute
	dist   lsdist.Func
	factor float64 // c in dist ≥ c·mindist; 0 = no sound pruning
	index  SegmentIndex
	brute  bool // the index reports every id on every query
}

// NewSearcher builds backend's index over segs once and wraps it with the
// distance machinery for opt. A zero lower-bound factor (positional weight
// 0) forces the Brute backend regardless of the request — no other backend
// can be queried soundly without it.
func NewSearcher(segs []geom.Segment, opt lsdist.Options, backend Backend) *Searcher {
	if !opt.Weights.Valid() {
		opt.Weights = lsdist.DefaultWeights()
	}
	s := &Searcher{
		segs:   segs,
		dist:   lsdist.New(opt),
		factor: lsdist.LowerBoundFactor(opt.Weights),
	}
	if backend == nil {
		backend = Grid()
	}
	if s.factor == 0 {
		backend = Brute()
	}
	if _, s.brute = backend.(bruteBackend); !s.brute {
		s.rects = make([]geom.Rect, len(segs))
		for i, sg := range segs {
			s.rects[i] = sg.Bounds()
		}
	}
	s.index = Build(backend, segs)
	return s
}

// Len returns the number of indexed segments.
func (s *Searcher) Len() int { return len(s.segs) }

// Factor returns the lower-bound constant c (0 = no pruning possible).
func (s *Searcher) Factor() float64 { return s.factor }

// Query returns a fresh per-goroutine cursor. Cursors are cheap relative to
// the index; pool them on serving hot paths.
func (s *Searcher) Query() *SearchQuery {
	return &SearchQuery{s: s, q: s.index.Query()}
}

// SearchQuery is a per-goroutine cursor over a Searcher: it owns the
// candidate scratch and the backend cursor, so concurrent queries never
// share mutable state.
type SearchQuery struct {
	s    *Searcher
	q    Query
	cand []int
}

// radius converts a TRACLUS-distance threshold into the complete Euclidean
// candidate radius eps/c (lsdist.SearchRadius). The brute path never
// consults it.
func (sq *SearchQuery) radius(eps float64) float64 { return eps / sq.s.factor }

// CandidatesOf appends to dst the id of every indexed segment possibly
// within TRACLUS distance eps of indexed segment i: the Euclidean
// prefilter at radius eps/c against i's precomputed query rectangle.
// Callers refine with the exact distance. The returned ids are a superset
// of the true ε-neighborhood (completeness follows from the lower bound;
// see the package documentation).
func (sq *SearchQuery) CandidatesOf(i int, eps float64, dst []int) []int {
	if sq.s.brute {
		return sq.q.Within(geom.Rect{}, 0, dst)
	}
	return sq.q.Within(sq.s.rects[i], sq.radius(eps), dst)
}

// Nearest returns the indexed segment exactly nearest to q under the
// TRACLUS distance, and that distance. seed is a TRACLUS-distance scale
// (typically the model's ε) seeding the first candidate radius seed/c; the
// search expands the radius geometrically, and the lower bound guarantees
// that once the best exact distance among candidates within Euclidean
// radius r is ≤ c·r, no segment outside the candidate set can be closer —
// the exactness invariant the property tests pin against brute force.
//
// Ties on the exact distance resolve through prefer: prefer(i, j) reports
// whether candidate i should replace the incumbent j (nil keeps the first
// encountered — note that candidate enumeration order is backend-specific,
// so deterministic callers must pass an order-free prefer). The returned id
// is -1 only when no distance evaluated below +Inf (extreme coordinates
// overflowing the computation).
func (sq *SearchQuery) Nearest(q geom.Segment, seed float64, prefer func(cand, incumbent int) bool) (id int, d float64) {
	s := sq.s
	if s.brute {
		return sq.scanNearest(q, prefer)
	}
	r := seed / s.factor
	if !(r > 0) || math.IsInf(r, 0) {
		return sq.scanNearest(q, prefer)
	}
	bounds := q.Bounds()
	for iter := 0; iter < maxExpandIters; iter++ {
		sq.cand = sq.q.Within(bounds, r, sq.cand[:0])
		best, bestD := sq.bestOf(q, sq.cand, prefer)
		if best >= 0 && bestD <= s.factor*r {
			return best, bestD
		}
		r *= 2
		if math.IsInf(r, 0) {
			break
		}
	}
	return sq.scanNearest(q, prefer)
}

// scanNearest is the unpruned exact search over every indexed segment.
func (sq *SearchQuery) scanNearest(q geom.Segment, prefer func(cand, incumbent int) bool) (int, float64) {
	return sq.best(q, sq.s.Len(), func(i int) int { return i }, prefer)
}

func (sq *SearchQuery) bestOf(q geom.Segment, cand []int, prefer func(cand, incumbent int) bool) (int, float64) {
	return sq.best(q, len(cand), func(i int) int { return cand[i] }, prefer)
}

// best scans n indexed segments selected by idx. An id of -1 means no
// segment compared below +Inf and callers must treat the query as
// unclassifiable.
func (sq *SearchQuery) best(q geom.Segment, n int, idx func(int) int, prefer func(cand, incumbent int) bool) (id int, bestD float64) {
	id, bestD = -1, math.Inf(1)
	for i := 0; i < n; i++ {
		j := idx(i)
		d := sq.s.dist(q, sq.s.segs[j])
		if d < bestD || (d == bestD && d < math.Inf(1) && prefer != nil && id >= 0 && prefer(j, id)) {
			id, bestD = j, d
		}
	}
	return id, bestD
}
