package spindex

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/lsdist"
)

func randomSegments(rng *rand.Rand, n int, extent float64) []geom.Segment {
	segs := make([]geom.Segment, n)
	for i := range segs {
		x, y := rng.Float64()*extent, rng.Float64()*extent
		segs[i] = geom.Seg(x, y, x+rng.NormFloat64()*40, y+rng.NormFloat64()*40)
	}
	return segs
}

func sortedCopy(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

// exactWithin is the specification of the Within contract: every id whose
// MBR lies within Euclidean distance r of q.
func exactWithin(segs []geom.Segment, q geom.Rect, r float64) []int {
	var ids []int
	for i, s := range segs {
		if s.Bounds().DistRect(q) <= r {
			ids = append(ids, i)
		}
	}
	return ids
}

// TestBackendsAgreeOnCandidates pins the cross-backend contract on random
// inputs: grid and rtree report exactly the MBR-distance-≤r set (no false
// positives beyond the refinement the callers do themselves, no false
// negatives), and brute reports everything.
func TestBackendsAgreeOnCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	segs := randomSegments(rng, 300, 1000)
	grid := Build(Grid(), segs)
	rtree := Build(RTree(), segs)
	brute := Build(Brute(), segs)
	gq, rq, bq := grid.Query(), rtree.Query(), brute.Query()
	for trial := 0; trial < 200; trial++ {
		q := geom.Seg(rng.Float64()*1100-50, rng.Float64()*1100-50,
			rng.Float64()*1100-50, rng.Float64()*1100-50).Bounds()
		r := rng.Float64() * 120
		want := sortedCopy(exactWithin(segs, q, r))
		got := sortedCopy(gq.Within(q, r, nil))
		if len(got) != len(want) {
			t.Fatalf("trial %d: grid returned %d candidates, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: grid candidates %v != exact %v", trial, got, want)
			}
		}
		rgot := sortedCopy(rq.Within(q, r, nil))
		if len(rgot) != len(want) {
			t.Fatalf("trial %d: rtree returned %d candidates, want %d", trial, len(rgot), len(want))
		}
		for i := range want {
			if rgot[i] != want[i] {
				t.Fatalf("trial %d: rtree candidates %v != exact %v", trial, rgot, want)
			}
		}
		if all := bq.Within(q, r, nil); len(all) != len(segs) {
			t.Fatalf("trial %d: brute returned %d of %d ids", trial, len(all), len(segs))
		}
	}
}

// TestSearcherCandidatesComplete pins the ε-range soundness of the lower
// bound conversion: every segment within exact TRACLUS distance eps must
// appear among the candidates, for every backend.
func TestSearcherCandidatesComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	segs := randomSegments(rng, 250, 800)
	opt := lsdist.DefaultOptions()
	dist := lsdist.New(opt)
	for _, backend := range []Backend{Grid(), RTree(), Brute()} {
		s := NewSearcher(segs, opt, backend)
		sq := s.Query()
		for _, eps := range []float64{5, 25, 80} {
			for i := 0; i < len(segs); i += 17 {
				cand := map[int]bool{}
				for _, id := range sq.CandidatesOf(i, eps, nil) {
					cand[id] = true
				}
				for j := range segs {
					if dist(segs[i], segs[j]) <= eps && !cand[j] {
						t.Fatalf("backend %s eps=%v: segment %d within eps of %d but not a candidate",
							backend.Name(), eps, j, i)
					}
				}
			}
		}
	}
}

// TestNearestExactAgainstBruteForce is the exactness property test: on
// random inputs and random query segments, the pruned expanding-radius
// Nearest must return exactly the brute-force minimum distance for every
// backend.
func TestNearestExactAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	segs := randomSegments(rng, 200, 600)
	opt := lsdist.DefaultOptions()
	dist := lsdist.New(opt)
	for _, backend := range []Backend{Grid(), RTree(), Brute()} {
		s := NewSearcher(segs, opt, backend)
		sq := s.Query()
		for trial := 0; trial < 300; trial++ {
			// Queries from inside, near, and far outside the data extent.
			off := float64(trial%3) * 700
			x, y := rng.Float64()*600+off, rng.Float64()*600-off
			q := geom.Seg(x, y, x+rng.NormFloat64()*30, y+rng.NormFloat64()*30)
			if q.IsDegenerate() {
				continue
			}
			wantD := math.Inf(1)
			for j := range segs {
				if d := dist(q, segs[j]); d < wantD {
					wantD = d
				}
			}
			id, gotD := sq.Nearest(q, 30, nil)
			if id < 0 {
				t.Fatalf("backend %s trial %d: Nearest found nothing, brute min %v", backend.Name(), trial, wantD)
			}
			if gotD != wantD {
				t.Fatalf("backend %s trial %d: Nearest distance %v != brute-force min %v",
					backend.Name(), trial, gotD, wantD)
			}
			if d := dist(q, segs[id]); d != gotD {
				t.Fatalf("backend %s trial %d: returned id %d has distance %v, reported %v",
					backend.Name(), trial, id, d, gotD)
			}
		}
	}
}

// TestNearestTieBreak pins the prefer hook: among equidistant segments the
// preferred one wins regardless of enumeration order.
func TestNearestTieBreak(t *testing.T) {
	// Two identical segments; owner preference must pick the chosen one.
	segs := []geom.Segment{geom.Seg(0, 0, 10, 0), geom.Seg(0, 0, 10, 0)}
	q := geom.Seg(0, 5, 10, 5)
	for _, backend := range []Backend{Grid(), RTree(), Brute()} {
		s := NewSearcher(segs, lsdist.DefaultOptions(), backend)
		sq := s.Query()
		id, _ := sq.Nearest(q, 10, func(cand, incumbent int) bool { return cand > incumbent })
		if id != 1 {
			t.Errorf("backend %s: prefer-higher tie-break returned id %d, want 1", backend.Name(), id)
		}
		id, _ = sq.Nearest(q, 10, func(cand, incumbent int) bool { return cand < incumbent })
		if id != 0 {
			t.Errorf("backend %s: prefer-lower tie-break returned id %d, want 0", backend.Name(), id)
		}
	}
}

// TestSearcherZeroFactorFallsBackToBrute: weights with a zero positional
// component admit no Euclidean lower bound, so every backend request must
// degrade to the exhaustive scan — and still answer exactly.
func TestSearcherZeroFactorFallsBackToBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	segs := randomSegments(rng, 60, 300)
	opt := lsdist.Options{Weights: lsdist.Weights{Perpendicular: 0, Parallel: 1, Angle: 1}}
	dist := lsdist.New(opt)
	s := NewSearcher(segs, opt, Grid())
	if s.Factor() != 0 {
		t.Fatalf("Factor() = %v, want 0 for a zero positional weight", s.Factor())
	}
	sq := s.Query()
	if got := len(sq.CandidatesOf(0, 1e-9, nil)); got != len(segs) {
		t.Fatalf("zero-factor searcher returned %d candidates, want all %d", got, len(segs))
	}
	q := geom.Seg(10, 10, 40, 25)
	wantD := math.Inf(1)
	for j := range segs {
		if d := dist(q, segs[j]); d < wantD {
			wantD = d
		}
	}
	if _, gotD := sq.Nearest(q, 20, nil); gotD != wantD {
		t.Fatalf("zero-factor Nearest = %v, want brute min %v", gotD, wantD)
	}
}

// TestBuildCounter pins that Build (the counting constructor every call
// site uses) records each index construction.
func TestBuildCounter(t *testing.T) {
	segs := randomSegments(rand.New(rand.NewSource(1)), 10, 100)
	before := Builds()
	Build(Grid(), segs)
	NewSearcher(segs, lsdist.DefaultOptions(), RTree())
	if got := Builds() - before; got != 2 {
		t.Fatalf("Builds() advanced by %d, want 2", got)
	}
}
