// Package validate provides external clustering validation measures. The
// paper observes that "there is no well-defined measure for density-based
// clustering methods" and falls back on QMeasure plus visual inspection;
// this package supplies the standard label-comparison measures (Rand index,
// adjusted Rand index, normalised mutual information, purity) so the
// experiments and tests can *quantify* agreement — e.g. between index
// strategies, against planted corridor ground truth, or across parameter
// settings — instead of eyeballing it.
//
// All measures take two parallel label slices. The conventional noise label
// -1 is treated as its own class, so "both called it noise" counts as
// agreement.
package validate

import (
	"errors"
	"math"
)

// contingency builds the joint count table of two labelings.
type contingency struct {
	n     int
	joint map[[2]int]int
	a, b  map[int]int
}

func tabulate(a, b []int) (*contingency, error) {
	if len(a) != len(b) {
		return nil, errors.New("validate: label slices differ in length")
	}
	if len(a) == 0 {
		return nil, errors.New("validate: empty labelings")
	}
	c := &contingency{
		n:     len(a),
		joint: map[[2]int]int{},
		a:     map[int]int{},
		b:     map[int]int{},
	}
	for i := range a {
		c.joint[[2]int{a[i], b[i]}]++
		c.a[a[i]]++
		c.b[b[i]]++
	}
	return c, nil
}

func choose2(n int) float64 { return float64(n) * float64(n-1) / 2 }

// Rand returns the Rand index in [0, 1]: the fraction of item pairs on
// which the two labelings agree (same-same or different-different).
func Rand(a, b []int) (float64, error) {
	c, err := tabulate(a, b)
	if err != nil {
		return 0, err
	}
	var sumJoint, sumA, sumB float64
	for _, v := range c.joint {
		sumJoint += choose2(v)
	}
	for _, v := range c.a {
		sumA += choose2(v)
	}
	for _, v := range c.b {
		sumB += choose2(v)
	}
	total := choose2(c.n)
	if total == 0 {
		return 1, nil
	}
	// agreements = pairs together in both + pairs apart in both.
	agree := sumJoint + (total - sumA - sumB + sumJoint)
	return agree / total, nil
}

// AdjustedRand returns the adjusted Rand index (Hubert & Arabie): 1 for
// identical partitions, ≈0 for independent ones, possibly negative for
// worse-than-chance agreement.
func AdjustedRand(a, b []int) (float64, error) {
	c, err := tabulate(a, b)
	if err != nil {
		return 0, err
	}
	var sumJoint, sumA, sumB float64
	for _, v := range c.joint {
		sumJoint += choose2(v)
	}
	for _, v := range c.a {
		sumA += choose2(v)
	}
	for _, v := range c.b {
		sumB += choose2(v)
	}
	total := choose2(c.n)
	if total == 0 {
		return 1, nil
	}
	expected := sumA * sumB / total
	maxIndex := (sumA + sumB) / 2
	if maxIndex == expected {
		return 1, nil // both partitions trivial (all singletons or one blob)
	}
	return (sumJoint - expected) / (maxIndex - expected), nil
}

// NMI returns the normalised mutual information I(A;B)/sqrt(H(A)·H(B)) in
// [0, 1]; by convention 1 when both labelings are constant.
func NMI(a, b []int) (float64, error) {
	c, err := tabulate(a, b)
	if err != nil {
		return 0, err
	}
	n := float64(c.n)
	var mi float64
	for k, v := range c.joint {
		pxy := float64(v) / n
		px := float64(c.a[k[0]]) / n
		py := float64(c.b[k[1]]) / n
		mi += pxy * math.Log(pxy/(px*py))
	}
	ha := entropyOf(c.a, n)
	hb := entropyOf(c.b, n)
	if ha == 0 && hb == 0 {
		return 1, nil
	}
	if ha == 0 || hb == 0 {
		return 0, nil
	}
	v := mi / math.Sqrt(ha*hb)
	if v > 1 {
		v = 1 // numerical guard
	}
	if v < 0 {
		v = 0
	}
	return v, nil
}

func entropyOf(counts map[int]int, n float64) float64 {
	var h float64
	for _, v := range counts {
		p := float64(v) / n
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// Purity returns the purity of labeling a with respect to reference b:
// assign each a-cluster to its majority b-class and count the fraction of
// items correctly covered. Asymmetric; in [0, 1].
func Purity(a, ref []int) (float64, error) {
	c, err := tabulate(a, ref)
	if err != nil {
		return 0, err
	}
	best := map[int]int{}
	for k, v := range c.joint {
		if v > best[k[0]] {
			best[k[0]] = v
		}
	}
	var sum int
	for _, v := range best {
		sum += v
	}
	return float64(sum) / float64(c.n), nil
}

// NoiseAgreement returns the fraction of items on which both labelings
// agree about noisehood (label -1) — a focused check for the Section 5.5
// robustness experiment.
func NoiseAgreement(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("validate: label slices differ in length")
	}
	if len(a) == 0 {
		return 0, errors.New("validate: empty labelings")
	}
	agree := 0
	for i := range a {
		if (a[i] == -1) == (b[i] == -1) {
			agree++
		}
	}
	return float64(agree) / float64(len(a)), nil
}
