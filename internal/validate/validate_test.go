package validate

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRandIdenticalPartitions(t *testing.T) {
	a := []int{0, 0, 1, 1, 2}
	for _, f := range []func([]int, []int) (float64, error){Rand, AdjustedRand, NMI, Purity} {
		got, err := f(a, a)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(got, 1, 1e-12) {
			t.Errorf("identical partitions scored %v", got)
		}
	}
}

func TestRandRelabeledPartitions(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{7, 7, 3, 3, 9, 9} // same partition, different labels
	for _, f := range []func([]int, []int) (float64, error){Rand, AdjustedRand, NMI, Purity} {
		got, err := f(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(got, 1, 1e-12) {
			t.Errorf("relabeled partitions scored %v", got)
		}
	}
}

func TestRandKnownValue(t *testing.T) {
	// Classic example: a = {0,0,1,1}, b = {0,1,1,1}.
	// Pairs: (0,1) together in a, apart in b — disagree. (0,2),(0,3)
	// apart/apart and apart/together... counting agreements: pairs
	// {2,3} together in both = 1; pairs apart in both: {0,2},{0,3} = 2.
	// Rand = (1+2)/6 = 0.5.
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 1, 1}
	got, err := Rand(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 0.5, 1e-12) {
		t.Errorf("Rand = %v, want 0.5", got)
	}
}

func TestAdjustedRandChanceLevel(t *testing.T) {
	// Random independent labelings → ARI near 0 (can be slightly
	// negative); identical → 1.
	rng := rand.New(rand.NewSource(1))
	n := 2000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(5)
		b[i] = rng.Intn(5)
	}
	got, err := AdjustedRand(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 0.05 {
		t.Errorf("independent labelings ARI = %v, want ≈0", got)
	}
	plain, err := Rand(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if plain < 0.5 {
		t.Errorf("unadjusted Rand = %v unexpectedly low", plain)
	}
}

func TestNMIIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 5000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(4)
		b[i] = rng.Intn(4)
	}
	got, err := NMI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.05 {
		t.Errorf("independent NMI = %v, want ≈0", got)
	}
}

func TestNMIConstantLabelings(t *testing.T) {
	a := []int{1, 1, 1}
	got, err := NMI(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("constant/constant NMI = %v", got)
	}
	b := []int{0, 1, 2}
	got, err = NMI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("constant/varied NMI = %v", got)
	}
}

func TestPurityAsymmetric(t *testing.T) {
	// Singletons are perfectly pure against anything.
	a := []int{0, 1, 2, 3}
	ref := []int{0, 0, 1, 1}
	got, err := Purity(a, ref)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("singleton purity = %v", got)
	}
	// One blob against two classes: purity = majority fraction.
	blob := []int{5, 5, 5, 5}
	got, err = Purity(blob, []int{0, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 0.75, 1e-12) {
		t.Errorf("blob purity = %v, want 0.75", got)
	}
}

func TestNoiseAgreement(t *testing.T) {
	a := []int{-1, 0, 1, -1}
	b := []int{-1, 2, -1, 0}
	got, err := NoiseAgreement(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 0.5, 1e-12) {
		t.Errorf("NoiseAgreement = %v, want 0.5", got)
	}
}

func TestSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(50)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(4) - 1
			b[i] = rng.Intn(4) - 1
		}
		for name, f := range map[string]func([]int, []int) (float64, error){
			"Rand": Rand, "ARI": AdjustedRand, "NMI": NMI, "NoiseAgreement": NoiseAgreement,
		} {
			x, err := f(a, b)
			if err != nil {
				t.Fatal(err)
			}
			y, err := f(b, a)
			if err != nil {
				t.Fatal(err)
			}
			if !approx(x, y, 1e-9) {
				t.Errorf("%s asymmetric: %v vs %v", name, x, y)
			}
		}
	}
}

func TestErrors(t *testing.T) {
	for _, f := range []func([]int, []int) (float64, error){Rand, AdjustedRand, NMI, Purity, NoiseAgreement} {
		if _, err := f([]int{1}, []int{1, 2}); err == nil {
			t.Error("length mismatch accepted")
		}
		if _, err := f(nil, nil); err == nil {
			t.Error("empty accepted")
		}
	}
}

func TestBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(100)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(6) - 1
			b[i] = rng.Intn(6) - 1
		}
		if v, _ := Rand(a, b); v < 0 || v > 1 {
			t.Fatalf("Rand out of bounds: %v", v)
		}
		if v, _ := NMI(a, b); v < 0 || v > 1 {
			t.Fatalf("NMI out of bounds: %v", v)
		}
		if v, _ := Purity(a, b); v <= 0 || v > 1 {
			t.Fatalf("Purity out of bounds: %v", v)
		}
		if v, _ := AdjustedRand(a, b); v > 1+1e-9 {
			t.Fatalf("ARI above 1: %v", v)
		}
	}
}
