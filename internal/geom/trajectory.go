package geom

import (
	"fmt"
	"math"
)

// Trajectory is an ordered sequence of observed positions of one moving
// object (TR_i = p1 p2 ... p_len in the paper). ID identifies the source
// trajectory so that segment clusters can be filtered by trajectory
// cardinality (Definition 10); Weight supports the weighted-trajectory
// extension of Section 4.2 (e.g. stronger hurricanes counting more).
type Trajectory struct {
	ID     int
	Label  string
	Weight float64
	Points []Point
}

// NewTrajectory builds a trajectory with weight 1.
func NewTrajectory(id int, pts []Point) Trajectory {
	return Trajectory{ID: id, Weight: 1, Points: pts}
}

// Len returns the number of points.
func (t Trajectory) Len() int { return len(t.Points) }

// Segments returns the len-1 consecutive line segments of the trajectory.
func (t Trajectory) Segments() []Segment {
	if len(t.Points) < 2 {
		return nil
	}
	segs := make([]Segment, 0, len(t.Points)-1)
	for i := 1; i < len(t.Points); i++ {
		segs = append(segs, Segment{t.Points[i-1], t.Points[i]})
	}
	return segs
}

// PathLength returns the total length along the trajectory.
func (t Trajectory) PathLength() float64 {
	var sum float64
	for i := 1; i < len(t.Points); i++ {
		sum += t.Points[i-1].Dist(t.Points[i])
	}
	return sum
}

// Bounds returns the minimum bounding rectangle of all points. It panics on
// an empty trajectory.
func (t Trajectory) Bounds() Rect { return RectOf(t.Points...) }

// Translate returns a copy of t shifted by d. ID, Label, and Weight are
// preserved.
func (t Trajectory) Translate(d Point) Trajectory {
	out := t
	out.Points = make([]Point, len(t.Points))
	for i, p := range t.Points {
		out.Points[i] = p.Add(d)
	}
	return out
}

// Dedup returns a copy of t with consecutive duplicate points removed.
// Repeated fixes at the same location are common in telemetry data and would
// otherwise produce degenerate partitions.
func (t Trajectory) Dedup() Trajectory {
	out := t
	if len(t.Points) == 0 {
		out.Points = nil
		return out
	}
	pts := make([]Point, 0, len(t.Points))
	pts = append(pts, t.Points[0])
	for _, p := range t.Points[1:] {
		if !p.Eq(pts[len(pts)-1]) {
			pts = append(pts, p)
		}
	}
	out.Points = pts
	return out
}

// Validate reports the first structural problem with the trajectory, or nil.
func (t Trajectory) Validate() error {
	if len(t.Points) < 2 {
		return fmt.Errorf("geom: trajectory %d has %d points, need at least 2", t.ID, len(t.Points))
	}
	if t.Weight < 0 || math.IsNaN(t.Weight) || math.IsInf(t.Weight, 0) {
		return fmt.Errorf("geom: trajectory %d has invalid weight %v", t.ID, t.Weight)
	}
	for i, p := range t.Points {
		if !p.IsFinite() {
			return fmt.Errorf("geom: trajectory %d point %d is not finite: %v", t.ID, i, p)
		}
	}
	return nil
}

// BoundsOf returns the bounding rectangle of a set of trajectories. ok is
// false when there are no points at all.
func BoundsOf(trs []Trajectory) (r Rect, ok bool) {
	for _, t := range trs {
		for _, p := range t.Points {
			if !ok {
				r = Rect{p, p}
				ok = true
			} else {
				r = r.ExpandPoint(p)
			}
		}
	}
	return r, ok
}

// TotalPoints returns the number of points across all trajectories.
func TotalPoints(trs []Trajectory) int {
	n := 0
	for _, t := range trs {
		n += len(t.Points)
	}
	return n
}
