// Package geom provides the planar geometry substrate for TRACLUS:
// points, vectors, line segments, projections, rotations, and bounding
// rectangles. The paper (Lee, Han, Whang, SIGMOD 2007) defines its distance
// and partitioning machinery in terms of d-dimensional points but evaluates
// in two dimensions; this package implements the 2-D case used throughout
// the repository.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane. It doubles as a 2-D vector.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q, the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of p viewed as a vector.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Eq reports whether p and q are exactly equal.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// NearEq reports whether p and q agree within tol in each coordinate.
func (p Point) NearEq(q Point, tol float64) bool {
	return math.Abs(p.X-q.X) <= tol && math.Abs(p.Y-q.Y) <= tol
}

// Lerp returns the point p + t·(q-p); t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y)}
}

// Unit returns the unit vector in the direction of p. The zero vector is
// returned unchanged.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return p
	}
	return Point{p.X / n, p.Y / n}
}

// Rotate returns p rotated by angle phi (radians) counterclockwise about the
// origin.
func (p Point) Rotate(phi float64) Point {
	s, c := math.Sincos(phi)
	return Point{c*p.X - s*p.Y, s*p.X + c*p.Y}
}

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) && !math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Segment is a directed line segment from Start to End. TRACLUS trajectory
// partitions, ε-neighborhood members, and cluster elements are all Segments.
type Segment struct {
	Start, End Point
}

// Seg is shorthand for constructing a Segment.
func Seg(sx, sy, ex, ey float64) Segment {
	return Segment{Point{sx, sy}, Point{ex, ey}}
}

// Vector returns End - Start, the direction vector of s.
func (s Segment) Vector() Point { return s.End.Sub(s.Start) }

// Length returns the Euclidean length of s.
func (s Segment) Length() float64 { return s.Start.Dist(s.End) }

// Length2 returns the squared length of s.
func (s Segment) Length2() float64 { return s.Start.Dist2(s.End) }

// Midpoint returns the midpoint of s.
func (s Segment) Midpoint() Point { return s.Start.Lerp(s.End, 0.5) }

// Reverse returns s with its direction flipped.
func (s Segment) Reverse() Segment { return Segment{s.End, s.Start} }

// IsDegenerate reports whether s has (near-)zero length.
func (s Segment) IsDegenerate() bool { return s.Length2() == 0 }

// String implements fmt.Stringer.
func (s Segment) String() string { return fmt.Sprintf("%v->%v", s.Start, s.End) }

// ProjectParam returns the parameter u such that Start + u·(End-Start) is the
// orthogonal projection of p onto the line through s (Formula 4 of the
// paper). For a degenerate segment it returns 0, so the projection collapses
// to the segment's single point.
func (s Segment) ProjectParam(p Point) float64 {
	d := s.Vector()
	l2 := d.Norm2()
	if l2 == 0 {
		return 0
	}
	return p.Sub(s.Start).Dot(d) / l2
}

// Project returns the orthogonal projection of p onto the (infinite) line
// through s.
func (s Segment) Project(p Point) Point {
	return s.Start.Add(s.Vector().Scale(s.ProjectParam(p)))
}

// ClosestPoint returns the point of the segment (not the infinite line)
// closest to p.
func (s Segment) ClosestPoint(p Point) Point {
	u := s.ProjectParam(p)
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	return s.Start.Add(s.Vector().Scale(u))
}

// DistToPoint returns the Euclidean distance from p to the segment s.
func (s Segment) DistToPoint(p Point) float64 {
	return p.Dist(s.ClosestPoint(p))
}

// PerpendicularDist returns the distance from p to the infinite line through
// s. For a degenerate segment it is the distance to the segment's point.
func (s Segment) PerpendicularDist(p Point) float64 {
	return p.Dist(s.Project(p))
}

// Angle returns the smaller intersecting angle θ ∈ [0, π] between the
// direction vectors of s and t (Formula 5). If either segment is degenerate
// the angle is defined as 0: a zero-length segment has no direction, and the
// paper's angle distance vanishes with the segment's length anyway.
func (s Segment) Angle(t Segment) float64 {
	v, w := s.Vector(), t.Vector()
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	c := v.Dot(w) / (nv * nw)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// MinDist returns the minimum Euclidean distance between the two segments.
// It is 0 when they intersect. This underlies the index prefilter bound
// (DESIGN.md §3).
func (s Segment) MinDist(t Segment) float64 {
	if s.Intersects(t) {
		return 0
	}
	d := s.DistToPoint(t.Start)
	if v := s.DistToPoint(t.End); v < d {
		d = v
	}
	if v := t.DistToPoint(s.Start); v < d {
		d = v
	}
	if v := t.DistToPoint(s.End); v < d {
		d = v
	}
	return d
}

// Intersects reports whether the two closed segments share at least one
// point.
func (s Segment) Intersects(t Segment) bool {
	d1 := s.Vector().Cross(t.Start.Sub(s.Start))
	d2 := s.Vector().Cross(t.End.Sub(s.Start))
	d3 := t.Vector().Cross(s.Start.Sub(t.Start))
	d4 := t.Vector().Cross(s.End.Sub(t.Start))
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	if d1 == 0 && s.onSegment(t.Start) {
		return true
	}
	if d2 == 0 && s.onSegment(t.End) {
		return true
	}
	if d3 == 0 && t.onSegment(s.Start) {
		return true
	}
	if d4 == 0 && t.onSegment(s.End) {
		return true
	}
	return false
}

// onSegment reports whether p, known to be collinear with s, lies within s's
// bounding box.
func (s Segment) onSegment(p Point) bool {
	return math.Min(s.Start.X, s.End.X) <= p.X && p.X <= math.Max(s.Start.X, s.End.X) &&
		math.Min(s.Start.Y, s.End.Y) <= p.Y && p.Y <= math.Max(s.Start.Y, s.End.Y)
}

// Bounds returns the minimum bounding rectangle of s.
func (s Segment) Bounds() Rect {
	return Rect{
		Min: Point{math.Min(s.Start.X, s.End.X), math.Min(s.Start.Y, s.End.Y)},
		Max: Point{math.Max(s.Start.X, s.End.X), math.Max(s.Start.Y, s.End.Y)},
	}
}

// Translate returns s shifted by the vector d.
func (s Segment) Translate(d Point) Segment {
	return Segment{s.Start.Add(d), s.End.Add(d)}
}

// Rotate returns s rotated by phi radians counterclockwise about the origin.
func (s Segment) Rotate(phi float64) Segment {
	return Segment{s.Start.Rotate(phi), s.End.Rotate(phi)}
}

// Rect is an axis-aligned rectangle, used as a minimum bounding rectangle by
// the spatial indexes.
type Rect struct {
	Min, Max Point
}

// RectOf returns the smallest Rect containing all the given points. It
// panics if pts is empty.
func RectOf(pts ...Point) Rect {
	if len(pts) == 0 {
		panic("geom: RectOf of no points")
	}
	r := Rect{pts[0], pts[0]}
	for _, p := range pts[1:] {
		r = r.ExpandPoint(p)
	}
	return r
}

// Empty reports whether r has negative extent in either axis.
func (r Rect) Empty() bool { return r.Max.X < r.Min.X || r.Max.Y < r.Min.Y }

// Width returns the X extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the Y extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns half the perimeter of r.
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Union returns the smallest rectangle containing both r and q.
func (r Rect) Union(q Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, q.Min.X), math.Min(r.Min.Y, q.Min.Y)},
		Max: Point{math.Max(r.Max.X, q.Max.X), math.Max(r.Max.Y, q.Max.Y)},
	}
}

// Intersects reports whether r and q overlap (closed rectangles).
func (r Rect) Intersects(q Rect) bool {
	return r.Min.X <= q.Max.X && q.Min.X <= r.Max.X &&
		r.Min.Y <= q.Max.Y && q.Min.Y <= r.Max.Y
}

// Contains reports whether p lies inside the closed rectangle r.
func (r Rect) Contains(p Point) bool {
	return r.Min.X <= p.X && p.X <= r.Max.X && r.Min.Y <= p.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether q lies entirely inside r.
func (r Rect) ContainsRect(q Rect) bool {
	return r.Min.X <= q.Min.X && q.Max.X <= r.Max.X &&
		r.Min.Y <= q.Min.Y && q.Max.Y <= r.Max.Y
}

// Expand returns r grown by d on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// ExpandPoint returns the smallest rectangle containing r and p.
func (r Rect) ExpandPoint(p Point) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y)},
	}
}

// Dist returns the minimum Euclidean distance between r and the point p;
// zero if p is inside r.
func (r Rect) Dist(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// DistRect returns the minimum Euclidean distance between the two
// rectangles; zero if they intersect.
func (r Rect) DistRect(q Rect) float64 {
	dx := math.Max(0, math.Max(q.Min.X-r.Max.X, r.Min.X-q.Max.X))
	dy := math.Max(0, math.Max(q.Min.Y-r.Max.Y, r.Min.Y-q.Max.Y))
	return math.Hypot(dx, dy)
}

// EnlargementNeeded returns how much r's area must grow to include q.
func (r Rect) EnlargementNeeded(q Rect) float64 {
	return r.Union(q).Area() - r.Area()
}

// String implements fmt.Stringer.
func (r Rect) String() string { return fmt.Sprintf("[%v %v]", r.Min, r.Max) }
