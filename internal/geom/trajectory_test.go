package geom

import (
	"math"
	"testing"
)

func TestTrajectorySegments(t *testing.T) {
	tr := NewTrajectory(1, []Point{Pt(0, 0), Pt(1, 0), Pt(1, 1)})
	segs := tr.Segments()
	if len(segs) != 2 {
		t.Fatalf("Segments = %d, want 2", len(segs))
	}
	if segs[0] != Seg(0, 0, 1, 0) || segs[1] != Seg(1, 0, 1, 1) {
		t.Errorf("Segments = %v", segs)
	}
	if got := NewTrajectory(2, []Point{Pt(0, 0)}).Segments(); got != nil {
		t.Errorf("single-point Segments = %v", got)
	}
}

func TestTrajectoryPathLength(t *testing.T) {
	tr := NewTrajectory(1, []Point{Pt(0, 0), Pt(3, 4), Pt(3, 10)})
	if got := tr.PathLength(); got != 11 {
		t.Errorf("PathLength = %v", got)
	}
	if got := NewTrajectory(1, nil).PathLength(); got != 0 {
		t.Errorf("empty PathLength = %v", got)
	}
}

func TestTrajectoryDedup(t *testing.T) {
	tr := NewTrajectory(1, []Point{Pt(0, 0), Pt(0, 0), Pt(1, 1), Pt(1, 1), Pt(1, 1), Pt(2, 2)})
	got := tr.Dedup()
	if len(got.Points) != 3 {
		t.Fatalf("Dedup = %v", got.Points)
	}
	if got.ID != 1 || got.Weight != 1 {
		t.Error("Dedup dropped metadata")
	}
	// Original untouched.
	if len(tr.Points) != 6 {
		t.Error("Dedup mutated input")
	}
	if got := NewTrajectory(1, nil).Dedup(); got.Points != nil {
		t.Errorf("Dedup of empty = %v", got.Points)
	}
}

func TestTrajectoryValidate(t *testing.T) {
	ok := NewTrajectory(1, []Point{Pt(0, 0), Pt(1, 1)})
	if err := ok.Validate(); err != nil {
		t.Errorf("valid trajectory: %v", err)
	}
	cases := []Trajectory{
		NewTrajectory(1, []Point{Pt(0, 0)}),
		NewTrajectory(1, nil),
		{ID: 1, Weight: -1, Points: []Point{Pt(0, 0), Pt(1, 1)}},
		{ID: 1, Weight: math.NaN(), Points: []Point{Pt(0, 0), Pt(1, 1)}},
		{ID: 1, Weight: 1, Points: []Point{Pt(0, 0), {math.NaN(), 0}}},
		{ID: 1, Weight: 1, Points: []Point{Pt(0, 0), {0, math.Inf(1)}}},
	}
	for i, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: invalid trajectory passed validation", i)
		}
	}
}

func TestTrajectoryTranslate(t *testing.T) {
	tr := NewTrajectory(3, []Point{Pt(0, 0), Pt(1, 1)})
	tr.Label = "x"
	got := tr.Translate(Pt(10, 20))
	if !got.Points[0].Eq(Pt(10, 20)) || !got.Points[1].Eq(Pt(11, 21)) {
		t.Errorf("Translate = %v", got.Points)
	}
	if got.ID != 3 || got.Label != "x" {
		t.Error("Translate dropped metadata")
	}
	if !tr.Points[0].Eq(Pt(0, 0)) {
		t.Error("Translate mutated input")
	}
}

func TestTrajectoryBounds(t *testing.T) {
	tr := NewTrajectory(1, []Point{Pt(1, 5), Pt(-2, 0), Pt(4, 3)})
	if got := tr.Bounds(); got != (Rect{Pt(-2, 0), Pt(4, 5)}) {
		t.Errorf("Bounds = %v", got)
	}
}

func TestBoundsOf(t *testing.T) {
	trs := []Trajectory{
		NewTrajectory(1, []Point{Pt(0, 0), Pt(1, 1)}),
		NewTrajectory(2, []Point{Pt(-5, 3)}),
	}
	r, ok := BoundsOf(trs)
	if !ok || r != (Rect{Pt(-5, 0), Pt(1, 3)}) {
		t.Errorf("BoundsOf = %v, %v", r, ok)
	}
	if _, ok := BoundsOf(nil); ok {
		t.Error("BoundsOf(nil) reported ok")
	}
	if _, ok := BoundsOf([]Trajectory{{ID: 1}}); ok {
		t.Error("BoundsOf of empty trajectories reported ok")
	}
}

func TestTotalPoints(t *testing.T) {
	trs := []Trajectory{
		NewTrajectory(1, []Point{Pt(0, 0), Pt(1, 1)}),
		NewTrajectory(2, []Point{Pt(2, 2)}),
	}
	if got := TotalPoints(trs); got != 3 {
		t.Errorf("TotalPoints = %d", got)
	}
}
