package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(3, 4), Pt(1, -2)
	if got := p.Add(q); !got.Eq(Pt(4, 2)) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); !got.Eq(Pt(2, 6)) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); !got.Eq(Pt(6, 8)) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != 3*(-2)-4*1 {
		t.Errorf("Cross = %v", got)
	}
}

func TestPointNorms(t *testing.T) {
	p := Pt(3, 4)
	if p.Norm() != 5 {
		t.Errorf("Norm = %v", p.Norm())
	}
	if p.Norm2() != 25 {
		t.Errorf("Norm2 = %v", p.Norm2())
	}
	if d := p.Dist(Pt(0, 0)); d != 5 {
		t.Errorf("Dist = %v", d)
	}
	if d := p.Dist2(Pt(0, 0)); d != 25 {
		t.Errorf("Dist2 = %v", d)
	}
}

func TestPointLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0); !got.Eq(a) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); !got.Eq(b) {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); !got.Eq(Pt(5, 10)) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestPointUnit(t *testing.T) {
	if got := Pt(3, 4).Unit(); !approx(got.Norm(), 1, 1e-12) {
		t.Errorf("Unit norm = %v", got.Norm())
	}
	if got := Pt(0, 0).Unit(); !got.Eq(Pt(0, 0)) {
		t.Errorf("Unit of zero = %v", got)
	}
}

func TestPointRotate(t *testing.T) {
	got := Pt(1, 0).Rotate(math.Pi / 2)
	if !got.NearEq(Pt(0, 1), 1e-12) {
		t.Errorf("Rotate 90 = %v", got)
	}
}

func TestRotateInverseProperty(t *testing.T) {
	f := func(x, y, phi float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(phi) ||
			math.Abs(x) > 1e6 || math.Abs(y) > 1e6 {
			return true
		}
		p := Pt(x, y)
		back := p.Rotate(phi).Rotate(-phi)
		tol := 1e-9 * (1 + p.Norm())
		return back.NearEq(p, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotatePreservesNorm(t *testing.T) {
	f := func(x, y, phi float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(phi) ||
			math.Abs(x) > 1e6 || math.Abs(y) > 1e6 {
			return true
		}
		p := Pt(x, y)
		return approx(p.Rotate(phi).Norm(), p.Norm(), 1e-6*(1+p.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointIsFinite(t *testing.T) {
	if !Pt(1, 2).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	for _, p := range []Point{
		{math.NaN(), 0}, {0, math.NaN()},
		{math.Inf(1), 0}, {0, math.Inf(-1)},
	} {
		if p.IsFinite() {
			t.Errorf("%v reported finite", p)
		}
	}
}

func TestSegmentBasics(t *testing.T) {
	s := Seg(0, 0, 3, 4)
	if s.Length() != 5 {
		t.Errorf("Length = %v", s.Length())
	}
	if s.Length2() != 25 {
		t.Errorf("Length2 = %v", s.Length2())
	}
	if !s.Midpoint().Eq(Pt(1.5, 2)) {
		t.Errorf("Midpoint = %v", s.Midpoint())
	}
	if !s.Vector().Eq(Pt(3, 4)) {
		t.Errorf("Vector = %v", s.Vector())
	}
	r := s.Reverse()
	if !r.Start.Eq(s.End) || !r.End.Eq(s.Start) {
		t.Errorf("Reverse = %v", r)
	}
	if s.IsDegenerate() {
		t.Error("non-degenerate segment reported degenerate")
	}
	if !Seg(1, 1, 1, 1).IsDegenerate() {
		t.Error("degenerate segment not detected")
	}
}

func TestProjectParamFormula4(t *testing.T) {
	// Formula (4) of the paper: u = (s_i->p · s_i->e_i) / |s_i e_i|².
	s := Seg(0, 0, 10, 0)
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 3), 0.5},
		{Pt(0, 7), 0},
		{Pt(10, -2), 1},
		{Pt(-5, 1), -0.5},
		{Pt(20, 0), 2},
	}
	for _, c := range cases {
		if got := s.ProjectParam(c.p); !approx(got, c.want, 1e-12) {
			t.Errorf("ProjectParam(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestProjectDegenerate(t *testing.T) {
	s := Seg(2, 3, 2, 3)
	if got := s.Project(Pt(9, 9)); !got.Eq(Pt(2, 3)) {
		t.Errorf("Project onto degenerate = %v", got)
	}
	if got := s.ProjectParam(Pt(9, 9)); got != 0 {
		t.Errorf("ProjectParam onto degenerate = %v", got)
	}
}

func TestClosestPointAndDist(t *testing.T) {
	s := Seg(0, 0, 10, 0)
	cases := []struct {
		p     Point
		want  Point
		wantD float64
	}{
		{Pt(5, 3), Pt(5, 0), 3},
		{Pt(-4, 3), Pt(0, 0), 5},
		{Pt(14, 3), Pt(10, 0), 5},
	}
	for _, c := range cases {
		if got := s.ClosestPoint(c.p); !got.NearEq(c.want, 1e-12) {
			t.Errorf("ClosestPoint(%v) = %v, want %v", c.p, got, c.want)
		}
		if got := s.DistToPoint(c.p); !approx(got, c.wantD, 1e-12) {
			t.Errorf("DistToPoint(%v) = %v, want %v", c.p, got, c.wantD)
		}
	}
}

func TestPerpendicularDistUsesLine(t *testing.T) {
	s := Seg(0, 0, 10, 0)
	// Beyond the end: the segment distance is 5 but the line distance 3.
	if got := s.PerpendicularDist(Pt(14, 3)); !approx(got, 3, 1e-12) {
		t.Errorf("PerpendicularDist = %v, want 3", got)
	}
}

func TestAngleFormula5(t *testing.T) {
	base := Seg(0, 0, 10, 0)
	cases := []struct {
		s    Segment
		want float64
	}{
		{Seg(0, 0, 5, 0), 0},
		{Seg(0, 0, 0, 5), math.Pi / 2},
		{Seg(0, 0, -5, 0), math.Pi},
		{Seg(0, 0, 5, 5), math.Pi / 4},
	}
	for _, c := range cases {
		if got := base.Angle(c.s); !approx(got, c.want, 1e-12) {
			t.Errorf("Angle(%v) = %v, want %v", c.s, got, c.want)
		}
	}
	// Degenerate segments have angle 0 by definition.
	if got := base.Angle(Seg(1, 1, 1, 1)); got != 0 {
		t.Errorf("Angle with degenerate = %v", got)
	}
}

func TestIntersects(t *testing.T) {
	cases := []struct {
		a, b Segment
		want bool
	}{
		{Seg(0, 0, 10, 10), Seg(0, 10, 10, 0), true}, // crossing
		{Seg(0, 0, 10, 0), Seg(5, 0, 15, 0), true},   // collinear overlap
		{Seg(0, 0, 10, 0), Seg(10, 0, 20, 5), true},  // touching endpoint
		{Seg(0, 0, 10, 0), Seg(0, 1, 10, 1), false},  // parallel apart
		{Seg(0, 0, 10, 0), Seg(11, 0, 20, 0), false}, // collinear disjoint
		{Seg(0, 0, 1, 1), Seg(2, 2, 3, 3), false},    // collinear diagonal disjoint
		{Seg(0, 0, 4, 4), Seg(2, 2, 6, 6), true},     // collinear diagonal overlap
		{Seg(0, 0, 10, 0), Seg(5, -5, 5, 5), true},   // T crossing
		{Seg(0, 0, 10, 0), Seg(5, 1, 5, 5), false},   // above
	}
	for _, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("Intersects(%v, %v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestMinDist(t *testing.T) {
	cases := []struct {
		a, b Segment
		want float64
	}{
		{Seg(0, 0, 10, 0), Seg(0, 3, 10, 3), 3},   // parallel
		{Seg(0, 0, 10, 0), Seg(12, 0, 20, 0), 2},  // collinear gap
		{Seg(0, 0, 10, 10), Seg(0, 10, 10, 0), 0}, // crossing
		{Seg(0, 0, 10, 0), Seg(13, 4, 20, 4), 5},  // diagonal offset
	}
	for _, c := range cases {
		if got := c.a.MinDist(c.b); !approx(got, c.want, 1e-12) {
			t.Errorf("MinDist(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMinDistAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := Seg(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		b := Seg(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		got := a.MinDist(b)
		// Dense sampling can only overestimate the true minimum.
		best := math.Inf(1)
		for i := 0; i <= 50; i++ {
			p := a.Start.Lerp(a.End, float64(i)/50)
			if d := b.DistToPoint(p); d < best {
				best = d
			}
			q := b.Start.Lerp(b.End, float64(i)/50)
			if d := a.DistToPoint(q); d < best {
				best = d
			}
		}
		if got > best+1e-9 {
			t.Fatalf("MinDist(%v,%v) = %v exceeds sampled %v", a, b, got, best)
		}
		if best > got+5 { // sampling resolution bound
			t.Fatalf("MinDist(%v,%v) = %v far below sampled %v", a, b, got, best)
		}
	}
}

func TestSegmentTransforms(t *testing.T) {
	s := Seg(1, 2, 3, 4)
	tr := s.Translate(Pt(10, 20))
	if !tr.Start.Eq(Pt(11, 22)) || !tr.End.Eq(Pt(13, 24)) {
		t.Errorf("Translate = %v", tr)
	}
	rot := Seg(1, 0, 2, 0).Rotate(math.Pi / 2)
	if !rot.Start.NearEq(Pt(0, 1), 1e-12) || !rot.End.NearEq(Pt(0, 2), 1e-12) {
		t.Errorf("Rotate = %v", rot)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{Pt(0, 0), Pt(4, 3)}
	if r.Width() != 4 || r.Height() != 3 {
		t.Errorf("extent = %v x %v", r.Width(), r.Height())
	}
	if r.Area() != 12 {
		t.Errorf("Area = %v", r.Area())
	}
	if r.Margin() != 7 {
		t.Errorf("Margin = %v", r.Margin())
	}
	if !r.Center().Eq(Pt(2, 1.5)) {
		t.Errorf("Center = %v", r.Center())
	}
	if r.Empty() {
		t.Error("non-empty rect reported empty")
	}
	if !(Rect{Pt(1, 1), Pt(0, 0)}).Empty() {
		t.Error("inverted rect not empty")
	}
}

func TestRectOf(t *testing.T) {
	r := RectOf(Pt(3, 1), Pt(-1, 5), Pt(0, 0))
	want := Rect{Pt(-1, 0), Pt(3, 5)}
	if r != want {
		t.Errorf("RectOf = %v, want %v", r, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("RectOf() of nothing did not panic")
		}
	}()
	RectOf()
}

func TestRectSetOps(t *testing.T) {
	a := Rect{Pt(0, 0), Pt(2, 2)}
	b := Rect{Pt(1, 1), Pt(3, 3)}
	c := Rect{Pt(5, 5), Pt(6, 6)}
	if got := a.Union(b); got != (Rect{Pt(0, 0), Pt(3, 3)}) {
		t.Errorf("Union = %v", got)
	}
	if !a.Intersects(b) || a.Intersects(c) {
		t.Error("Intersects wrong")
	}
	if !a.Contains(Pt(1, 1)) || a.Contains(Pt(3, 1)) {
		t.Error("Contains wrong")
	}
	if !a.Union(b).ContainsRect(a) {
		t.Error("ContainsRect wrong")
	}
	if a.ContainsRect(b) {
		t.Error("partial overlap reported contained")
	}
}

func TestRectDist(t *testing.T) {
	r := Rect{Pt(0, 0), Pt(2, 2)}
	if d := r.Dist(Pt(1, 1)); d != 0 {
		t.Errorf("Dist inside = %v", d)
	}
	if d := r.Dist(Pt(5, 2)); d != 3 {
		t.Errorf("Dist right = %v", d)
	}
	if d := r.Dist(Pt(5, 6)); !approx(d, 5, 1e-12) {
		t.Errorf("Dist corner = %v", d)
	}
	q := Rect{Pt(5, 0), Pt(6, 2)}
	if d := r.DistRect(q); d != 3 {
		t.Errorf("DistRect = %v", d)
	}
	if d := r.DistRect(r); d != 0 {
		t.Errorf("DistRect self = %v", d)
	}
}

func TestRectExpand(t *testing.T) {
	r := Rect{Pt(0, 0), Pt(2, 2)}.Expand(1)
	if r != (Rect{Pt(-1, -1), Pt(3, 3)}) {
		t.Errorf("Expand = %v", r)
	}
	e := Rect{Pt(0, 0), Pt(1, 1)}.ExpandPoint(Pt(5, -2))
	if e != (Rect{Pt(0, -2), Pt(5, 1)}) {
		t.Errorf("ExpandPoint = %v", e)
	}
}

func TestEnlargementNeeded(t *testing.T) {
	a := Rect{Pt(0, 0), Pt(2, 2)}
	if got := a.EnlargementNeeded(a); got != 0 {
		t.Errorf("self enlargement = %v", got)
	}
	if got := a.EnlargementNeeded(Rect{Pt(0, 0), Pt(4, 2)}); got != 4 {
		t.Errorf("enlargement = %v", got)
	}
}

func TestSegmentBounds(t *testing.T) {
	s := Seg(5, 1, 2, 7)
	if got := s.Bounds(); got != (Rect{Pt(2, 1), Pt(5, 7)}) {
		t.Errorf("Bounds = %v", got)
	}
}

func TestStringers(t *testing.T) {
	if Pt(1, 2).String() == "" || Seg(0, 0, 1, 1).String() == "" ||
		(Rect{Pt(0, 0), Pt(1, 1)}).String() == "" {
		t.Error("empty String()")
	}
}
