package experiments

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/render"
)

// figureParams are the ε/MinLns settings used per data set. The paper's
// optima (hurricane ε=30/MinLns=6, elk ε=27/MinLns=9, deer ε=29/MinLns=8)
// carry over because the synthetic worlds use the same coordinate scale.
var figureParams = struct {
	hurricaneEps, hurricaneMinLns float64
	elkEps, elkMinLns             float64
	deerEps, deerMinLns           float64
}{30, 6, 27, 9, 29, 8}

// Fig16 regenerates Figure 16: entropy vs ε for the hurricane data. The
// paper's curve has a single interior minimum (at ε=31 on Best Track);
// the report records our minimiser and avg|Nε| there.
func Fig16(sz Size) *Report {
	r := newReport("fig16", "Entropy for the hurricane data")
	items := partitionItems(HurricaneData(sz))
	epsValues := epsRange(4, 60, 2)
	curve := entropyCurve(items, epsValues)
	best := curve[0]
	xs := make([]float64, len(curve))
	ys := make([]float64, len(curve))
	for i, p := range curve {
		xs[i], ys[i] = p.Eps, p.Entropy
		r.addf("eps=%.0f entropy=%.4f avgN=%.2f", p.Eps, p.Entropy, p.AvgNeighbors)
		if p.Entropy < best.Entropy {
			best = p
		}
	}
	r.addf("optimum: eps=%.0f entropy=%.4f avg|Neps|=%.2f", best.Eps, best.Entropy, best.AvgNeighbors)
	r.Values["optEps"] = best.Eps
	r.Values["avgNeighbors"] = best.AvgNeighbors
	r.SVGs["fig16_entropy_hurricane.svg"] = render.LineChart(
		"Entropy for the hurricane data", "Eps", "Entropy",
		[]render.Series{{Name: "entropy", X: xs, Y: ys}})
	return r
}

// Fig17 regenerates Figure 17: QMeasure vs ε for MinLns ∈ {5,6,7} on the
// hurricane data. The paper reads this as QMeasure being "nearly minimal
// when the optimal value of ε is used" within a MinLns curve.
func Fig17(sz Size) *Report {
	r := newReport("fig17", "Quality measure for the hurricane data")
	items := partitionItems(HurricaneData(sz))
	epsValues := epsRange(26, 34, 2)
	var series []render.Series
	minQ := map[float64]float64{}
	minQEps := map[float64]float64{}
	for _, minLns := range []float64{5, 6, 7} {
		xs := make([]float64, 0, len(epsValues))
		ys := make([]float64, 0, len(epsValues))
		for _, eps := range epsValues {
			out, err := runTraclus(items, eps, minLns)
			if err != nil {
				r.addf("error: %v", err)
				continue
			}
			q := qmeasure(items, out)
			xs = append(xs, eps)
			ys = append(ys, q)
			r.addf("MinLns=%.0f eps=%.0f QMeasure=%.0f clusters=%d", minLns, eps, q, out.NumClusters())
			if cur, ok := minQ[minLns]; !ok || q < cur {
				minQ[minLns] = q
				minQEps[minLns] = eps
			}
		}
		series = append(series, render.Series{Name: fmt.Sprintf("MinLns=%.0f", minLns), X: xs, Y: ys})
	}
	for _, m := range []float64{5, 6, 7} {
		r.addf("minimum for MinLns=%.0f at eps=%.0f (QMeasure=%.0f)", m, minQEps[m], minQ[m])
		r.Values[fmt.Sprintf("bestEpsMinLns%.0f", m)] = minQEps[m]
	}
	r.SVGs["fig17_qmeasure_hurricane.svg"] = render.LineChart(
		"Quality measure for the hurricane data", "Eps", "QMeasure", series)
	return r
}

// clusterFigure is the shared shape of Figures 18, 21, 22: run TRACLUS at
// the data set's parameters, report the cluster count, and render the map.
func clusterFigure(id, title string, trs []geom.Trajectory, eps, minLns float64, svgName string) *Report {
	r := newReport(id, title)
	items := partitionItems(trs)
	out, err := runTraclus(items, eps, minLns)
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	reps := make([][]geom.Point, 0, len(out.Clusters))
	for i, c := range out.Clusters {
		reps = append(reps, c.Representative)
		r.addf("cluster %d: %d segments, %d trajectories, representative of %d points",
			i, len(c.Segments), len(c.Trajectories), len(c.Representative))
	}
	r.addf("clusters=%d segments=%d noise=%d", out.NumClusters(), len(items), out.Result.NoiseCount())
	r.Values["clusters"] = float64(out.NumClusters())
	r.Values["noise"] = float64(out.Result.NoiseCount())
	r.Values["segments"] = float64(len(items))
	r.SVGs[svgName] = render.ClusterSVG(trs, reps)
	r.Lines = append(r.Lines, "", render.ClusterMap(110, 34, trs, reps))
	return r
}

// Fig18 regenerates Figure 18: the hurricane clustering at the optimal
// parameters. The paper finds seven clusters: a lower east-to-west band,
// an upper west-to-east band, and south-to-north recurve clusters.
func Fig18(sz Size) *Report {
	return clusterFigure("fig18", "Clustering result for the hurricane data",
		HurricaneData(sz), figureParams.hurricaneEps, figureParams.hurricaneMinLns,
		"fig18_clusters_hurricane.svg")
}

// Fig19 regenerates Figure 19: entropy vs ε for the Elk1993 data (paper
// minimum at ε=25 with avg|Nε|=7.63).
func Fig19(sz Size) *Report {
	r := newReport("fig19", "Entropy for the Elk1993 data")
	items := partitionItems(ElkData(sz))
	epsValues := epsRange(4, 60, 2)
	curve := entropyCurve(items, epsValues)
	best := curve[0]
	xs := make([]float64, len(curve))
	ys := make([]float64, len(curve))
	for i, p := range curve {
		xs[i], ys[i] = p.Eps, p.Entropy
		r.addf("eps=%.0f entropy=%.4f avgN=%.2f", p.Eps, p.Entropy, p.AvgNeighbors)
		if p.Entropy < best.Entropy {
			best = p
		}
	}
	r.addf("optimum: eps=%.0f entropy=%.4f avg|Neps|=%.2f", best.Eps, best.Entropy, best.AvgNeighbors)
	r.Values["optEps"] = best.Eps
	r.Values["avgNeighbors"] = best.AvgNeighbors
	r.SVGs["fig19_entropy_elk.svg"] = render.LineChart(
		"Entropy for the Elk1993 data", "Eps", "Entropy",
		[]render.Series{{Name: "entropy", X: xs, Y: ys}})
	return r
}

// Fig20 regenerates Figure 20: QMeasure vs ε for MinLns ∈ {8,9,10} on the
// elk data.
func Fig20(sz Size) *Report {
	r := newReport("fig20", "Quality measure for the Elk1993 data")
	items := partitionItems(ElkData(sz))
	epsValues := epsRange(25, 31, 2)
	var series []render.Series
	for _, minLns := range []float64{8, 9, 10} {
		xs := make([]float64, 0, len(epsValues))
		ys := make([]float64, 0, len(epsValues))
		for _, eps := range epsValues {
			out, err := runTraclus(items, eps, minLns)
			if err != nil {
				r.addf("error: %v", err)
				continue
			}
			q := qmeasure(items, out)
			xs = append(xs, eps)
			ys = append(ys, q)
			r.addf("MinLns=%.0f eps=%.0f QMeasure=%.0f clusters=%d", minLns, eps, q, out.NumClusters())
		}
		series = append(series, render.Series{Name: fmt.Sprintf("MinLns=%.0f", minLns), X: xs, Y: ys})
	}
	r.SVGs["fig20_qmeasure_elk.svg"] = render.LineChart(
		"Quality measure for the Elk1993 data", "Eps", "QMeasure", series)
	return r
}

// Fig21 regenerates Figure 21: the Elk1993 clustering (paper: thirteen
// clusters in the dense corridors).
func Fig21(sz Size) *Report {
	return clusterFigure("fig21", "Clustering result for the Elk1993 data",
		ElkData(sz), figureParams.elkEps, figureParams.elkMinLns,
		"fig21_clusters_elk.svg")
}

// Fig22 regenerates Figure 22: the Deer1995 clustering (paper: two
// clusters in the two most dense regions).
func Fig22(sz Size) *Report {
	return clusterFigure("fig22", "Clustering result for the Deer1995 data",
		DeerData(sz), figureParams.deerEps, figureParams.deerMinLns,
		"fig22_clusters_deer.svg")
}

// Sec54 regenerates the Section 5.4 parameter-effects observation on the
// hurricane data: smaller ε (or larger MinLns) → more, smaller clusters;
// larger ε (or smaller MinLns) → fewer, larger clusters. The paper's
// datapoints: ε=25 → 9 clusters averaging 38 segments; ε=35 → 3 clusters
// averaging 174 segments, against 7 clusters at ε=30.
func Sec54(sz Size) *Report {
	r := newReport("sec54", "Effects of parameter values (hurricane data)")
	items := partitionItems(HurricaneData(sz))
	for _, eps := range []float64{15, 30, 45} {
		out, err := runTraclus(items, eps, figureParams.hurricaneMinLns)
		if err != nil {
			r.addf("error: %v", err)
			continue
		}
		r.addf("eps=%.0f MinLns=%.0f -> clusters=%d avgSegsPerCluster=%.1f",
			eps, figureParams.hurricaneMinLns, out.NumClusters(), out.AvgSegmentsPerCluster())
		r.Values[fmt.Sprintf("clustersEps%.0f", eps)] = float64(out.NumClusters())
		r.Values[fmt.Sprintf("avgSegsEps%.0f", eps)] = out.AvgSegmentsPerCluster()
	}
	return r
}
