package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/lsdist"
	"repro/internal/mdl"
	"repro/internal/optics"
	"repro/internal/regmix"
	"repro/internal/render"
	"repro/internal/segclust"
	"repro/internal/synth"
)

// Fig1 regenerates the paper's motivating example (Figure 1): five
// trajectories share one common sub-trajectory and then diverge. TRACLUS
// discovers the common corridor as a cluster with a representative
// trajectory lying on it; the whole-trajectory regression-mixture baseline
// (Gaffney & Smyth) cannot — its cluster mean curves stay far from the
// corridor because each models an entire divergent trajectory.
func Fig1(Size) *Report {
	r := newReport("fig1", "Common sub-trajectory discovery vs whole-trajectory clustering")
	trs := synth.Figure1(2.0, 7)

	// The corridor the five trajectories share: y=300, x ∈ [200, 500].
	corridor := geom.Segment{Start: geom.Pt(200, 300), End: geom.Pt(500, 300)}

	// The Figure-1 trajectories are nearly noise-free, so a small
	// cost advantage suffices (the shared constant tuned for jittery
	// telemetry would merge partitions across the corridor's corners).
	pcfg := core.DefaultConfig()
	pcfg.Partition = mdl.Config{CostAdvantage: 3}
	items := core.PartitionAll(trs, pcfg)
	out, err := runTraclus(items, 30, 3)
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	r.addf("TRACLUS: clusters=%d", out.NumClusters())
	r.Values["traclusClusters"] = float64(out.NumClusters())
	bestDist := math.Inf(1)
	var reps [][]geom.Point
	for _, c := range out.Clusters {
		reps = append(reps, c.Representative)
		if d := meanDistToSegment(c.Representative, corridor); d < bestDist {
			bestDist = d
		}
	}
	r.addf("TRACLUS: closest representative is %.1f units from the common corridor on average", bestDist)
	r.Values["traclusRepDist"] = bestDist

	// Whole-trajectory baseline: one mean curve per component.
	fit, err := regmix.Fit(trs, regmix.Config{K: 3, Degree: 3, Seed: 11})
	if err != nil {
		r.addf("regmix error: %v", err)
		return r
	}
	worst := math.Inf(1)
	for _, comp := range fit.Components {
		curve := comp.MeanCurve(40)
		// Restrict to the part of the curve above the corridor's x-range.
		if d := meanDistToSegment(curve, corridor); d < worst {
			worst = d
		}
	}
	r.addf("regression mixture (K=3): closest mean curve is %.1f units from the corridor on average", worst)
	r.Values["regmixCurveDist"] = worst
	r.addf("conclusion: partition-and-group exposes the corridor; whole-trajectory clustering does not")

	r.SVGs["fig1_subtrajectory.svg"] = render.ClusterSVG(trs, reps)
	return r
}

func meanDistToSegment(pts []geom.Point, s geom.Segment) float64 {
	if len(pts) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for _, p := range pts {
		sum += s.DistToPoint(p)
	}
	return sum / float64(len(pts))
}

// Fig23 regenerates the Section 5.5 robustness experiment: a synthetic
// corridor scene where 25 % of trajectories are random-walk noise. The
// clusters must still be identified.
func Fig23(sz Size) *Report {
	r := newReport("fig23", "Robustness to noise (synthetic data, 25 % noise)")
	per, pts := 12, 26
	if sz == Small {
		per, pts = 8, 18
	}
	base := synth.CorridorScene(4, per, pts, 4, 21)
	mixed := synth.MixNoise(base, 0.25, pts, 22)
	r.addf("trajectories=%d of which noise=%d (%.0f%%)", len(mixed), len(mixed)-len(base),
		100*float64(len(mixed)-len(base))/float64(len(mixed)))

	items := partitionItems(mixed)
	out, err := runTraclus(items, 30, 6)
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	r.addf("clusters=%d (scene has 4 corridors)", out.NumClusters())
	r.Values["clusters"] = float64(out.NumClusters())

	// How many noise-trajectory segments leaked into clusters?
	noiseIDs := map[int]bool{}
	for _, tr := range mixed[len(base):] {
		noiseIDs[tr.ID] = true
	}
	leaked, clustered := 0, 0
	for i, cl := range out.Result.ClusterOf {
		if cl == segclust.Noise {
			continue
		}
		clustered++
		if noiseIDs[items[i].TrajID] {
			leaked++
		}
	}
	leakFrac := 0.0
	if clustered > 0 {
		leakFrac = float64(leaked) / float64(clustered)
	}
	r.addf("noise segments inside clusters: %d of %d clustered segments (%.1f%%)", leaked, clustered, 100*leakFrac)
	r.Values["leakFrac"] = leakFrac

	var reps [][]geom.Point
	for _, c := range out.Clusters {
		reps = append(reps, c.Representative)
	}
	r.SVGs["fig23_noise_robustness.svg"] = render.ClusterSVG(mixed, reps)
	r.Lines = append(r.Lines, "", render.ClusterMap(110, 34, mixed, reps))
	return r
}

// Sec33 measures the precision of the approximate partitioning algorithm
// against the exact MDL optimum (Section 3.3: "the precision is about 80 %
// on average").
func Sec33(sz Size) *Report {
	r := newReport("sec33", "Approximate partitioning precision vs exact MDL optimum")
	nTrajs, nPts := 60, 40
	if sz == Small {
		nTrajs, nPts = 16, 24
	}
	rng := rand.New(rand.NewSource(33))
	var sum float64
	count := 0
	for t := 0; t < nTrajs; t++ {
		pts := wigglyTrajectory(rng, nPts)
		approx := mdl.ApproximatePartition(pts, mdl.Config{})
		exact := mdl.OptimalPartition(pts)
		p := mdl.Precision(approx, exact)
		sum += p
		count++
	}
	avg := sum / float64(count)
	r.addf("trajectories=%d points-each=%d", nTrajs, nPts)
	r.addf("average precision=%.1f%% (paper reports about 80%%)", 100*avg)
	r.Values["precision"] = avg
	return r
}

// wigglyTrajectory builds a trajectory with piecewise-consistent headings —
// the regime where characteristic points are meaningful.
func wigglyTrajectory(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, 0, n)
	pos := geom.Pt(rng.Float64()*100, rng.Float64()*100)
	heading := rng.Float64() * 2 * math.Pi
	pts = append(pts, pos)
	for len(pts) < n {
		if rng.Float64() < 0.2 { // occasional sharp behaviour change
			heading += (rng.Float64() - 0.5) * 2.5
		} else {
			heading += (rng.Float64() - 0.5) * 0.15
		}
		step := 8 + rng.Float64()*6
		pos = pos.Add(geom.Pt(math.Cos(heading), math.Sin(heading)).Scale(step))
		pts = append(pts, pos)
	}
	return pts
}

// AppendixA regenerates the Appendix A example: the naive
// sum-of-endpoint-distances cannot distinguish a parallel segment from an
// opposite-direction one, while the TRACLUS distance can (the angle
// distance breaks the tie).
func AppendixA(Size) *Report {
	r := newReport("appendixA", "Advantage over the sum of endpoint distances")
	l1 := geom.Seg(0, 0, 200, 0)
	l2 := geom.Seg(100, 100, 300, 100) // parallel, same direction
	l3 := geom.Seg(300, 100, 100, 100) // same location, opposite direction

	naive := func(a, b geom.Segment) float64 {
		// Best unordered endpoint matching (the stronger form of the naive
		// measure; the ordered form is even weaker).
		d1 := a.Start.Dist(b.Start) + a.End.Dist(b.End)
		d2 := a.Start.Dist(b.End) + a.End.Dist(b.Start)
		return math.Min(d1, d2)
	}
	r.addf("naive(L1,L2)=%.1f naive(L1,L3)=%.1f (tie: both 200*sqrt(2)=%.1f)",
		naive(l1, l2), naive(l1, l3), 200*math.Sqrt2)
	d12 := lsdist.Dist(l1, l2)
	d13 := lsdist.Dist(l1, l3)
	r.addf("traclus(L1,L2)=%.1f traclus(L1,L3)=%.1f (angle distance separates them)", d12, d13)
	r.Values["naiveTie"] = naive(l1, l2) - naive(l1, l3)
	r.Values["traclusGap"] = d13 - d12
	return r
}

// AppendixB demonstrates that distance weights change the clustering
// (Appendix B: "assigning different weights may sometimes produce more
// interesting clustering results").
func AppendixB(sz Size) *Report {
	r := newReport("appendixB", "Effect of distance weights")
	items := partitionItems(HurricaneData(sz))
	for _, wTheta := range []float64{0.25, 1, 4} {
		opt := lsdist.Options{Weights: lsdist.Weights{Perpendicular: 1, Parallel: 1, Angle: wTheta}}
		res, err := segclust.Run(items, segclust.Config{
			Eps: 30, MinLns: 6, Options: opt, Index: segclust.IndexGrid,
		})
		if err != nil {
			r.addf("error: %v", err)
			continue
		}
		r.addf("w_theta=%.2f -> clusters=%d noise=%d", wTheta, res.NumClusters(), res.NoiseCount())
		r.Values[fmt.Sprintf("clustersWTheta%.2f", wTheta)] = float64(res.NumClusters())
	}
	return r
}

// AppendixC regenerates the shift-invariance example: TR1/TR2 at low
// coordinates and their copies TR3/TR4 shifted by (10000, 10000) must be
// partitioned at the same points under the length-based L(H), but not
// necessarily under an endpoint-coordinate-based L(H).
func AppendixC(Size) *Report {
	r := newReport("appendixC", "Shift invariance of the length-based L(H)")
	tr1 := []geom.Point{geom.Pt(100, 100), geom.Pt(200, 200), geom.Pt(300, 100)}
	tr2 := []geom.Point{geom.Pt(200, 200), geom.Pt(300, 300), geom.Pt(400, 200)}
	shift := geom.Pt(10000, 10000)
	tr3 := translatePts(tr1, shift)
	tr4 := translatePts(tr2, shift)

	cfg := mdl.Config{}
	same := equalInts(mdl.ApproximatePartition(tr1, cfg), mdl.ApproximatePartition(tr3, cfg)) &&
		equalInts(mdl.ApproximatePartition(tr2, cfg), mdl.ApproximatePartition(tr4, cfg))
	r.addf("length-based L(H): shifted copies partition identically = %v", same)
	r.Values["shiftInvariant"] = boolTo01(same)

	// Endpoint-based L(H) ablation: costs grow with coordinates.
	lowCost := mdl.MDLParEndpointLH(tr1, 0, 2)
	highCost := mdl.MDLParEndpointLH(tr3, 0, 2)
	r.addf("endpoint-based L(H) cost: low coords=%.2f, shifted=%.2f (not shift invariant)", lowCost, highCost)
	r.Values["endpointCostGap"] = highCost - lowCost
	return r
}

func translatePts(pts []geom.Point, d geom.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = p.Add(d)
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// AppendixD regenerates the OPTICS comparison: on matched data, the
// reachability distances of line segments concentrate near ε (because the
// pairwise distance inside a segment ε-neighborhood is not bounded by 2ε),
// making clusters harder to separate from noise than with points — the
// paper's argument for choosing DBSCAN.
func AppendixD(sz Size) *Report {
	r := newReport("appendixD", "Why DBSCAN rather than OPTICS for segments")
	nPerCluster := 60
	if sz == Small {
		nPerCluster = 25
	}
	rng := rand.New(rand.NewSource(44))
	var pts []geom.Point
	for c := 0; c < 3; c++ {
		cx, cy := 200+300*float64(c), 300.0
		for i := 0; i < nPerCluster; i++ {
			pts = append(pts, geom.Pt(cx+rng.NormFloat64()*18, cy+rng.NormFloat64()*18))
		}
	}
	const eps = 30.0
	const minPts = 6

	pointDist := func(i, j int) float64 { return pts[i].Dist(pts[j]) }
	pr, err := optics.Run(len(pts), pointDist, optics.Config{Eps: eps, MinPts: minPts})
	if err != nil {
		r.addf("error: %v", err)
		return r
	}

	// Matched segments: same centers, fixed length, mostly-aligned
	// orientation (a corridor-like cluster). The positional spread is
	// identical to the point data set; only the object type changes.
	segs := make([]geom.Segment, len(pts))
	for i, p := range pts {
		ang := rng.NormFloat64() * 0.35
		d := geom.Pt(math.Cos(ang), math.Sin(ang)).Scale(15)
		segs[i] = geom.Segment{Start: p.Sub(d), End: p.Add(d)}
	}
	segDist := func(i, j int) float64 { return lsdist.Dist(segs[i], segs[j]) }
	sr, err := optics.Run(len(segs), segDist, optics.Config{Eps: eps, MinPts: minPts})
	if err != nil {
		r.addf("error: %v", err)
		return r
	}

	_, pMean, pNear := pr.ReachStats(eps, 0.25)
	_, sMean, sNear := sr.ReachStats(eps, 0.25)
	r.addf("points:   mean reachability=%.2f fraction within 25%% of eps=%.2f", pMean, pNear)
	r.addf("segments: mean reachability=%.2f fraction within 25%% of eps=%.2f", sMean, sNear)
	r.addf("segments' reachability concentrates closer to eps, as Appendix D argues")
	r.Values["pointMeanReach"] = pMean
	r.Values["segMeanReach"] = sMean
	r.Values["pointNearEps"] = pNear
	r.Values["segNearEps"] = sNear
	return r
}

// Extensions demonstrates the Section 7.1 extensions: undirected
// trajectories (opposite-direction corridors merge) and weighted
// trajectories (down-weighted trajectories stop supporting a cluster).
func Extensions(Size) *Report {
	r := newReport("extensions", "Undirected and weighted trajectory extensions")

	// Two corridors at the same location, opposite directions.
	var trs []geom.Trajectory
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 6; i++ {
		var pts []geom.Point
		for s := 0; s <= 20; s++ {
			x := 100 + 30*float64(s)
			pts = append(pts, geom.Pt(x+rng.NormFloat64()*3, 300+rng.NormFloat64()*3))
		}
		if i%2 == 1 { // reverse half of them
			for l, r2 := 0, len(pts)-1; l < r2; l, r2 = l+1, r2-1 {
				pts[l], pts[r2] = pts[r2], pts[l]
			}
		}
		trs = append(trs, geom.Trajectory{ID: i, Weight: 1, Points: pts})
	}
	items := partitionItems(trs)

	directed, err := segclust.Run(items, segclust.Config{
		Eps: 25, MinLns: 3, Options: lsdist.DefaultOptions(), Index: segclust.IndexGrid,
	})
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	undirected, err := segclust.Run(items, segclust.Config{
		Eps: 25, MinLns: 3,
		Options: lsdist.Options{Weights: lsdist.DefaultWeights(), Undirected: true},
		Index:   segclust.IndexGrid,
	})
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	r.addf("directed:   clusters=%d (opposite headings stay apart)", directed.NumClusters())
	r.addf("undirected: clusters=%d (opposite headings merge)", undirected.NumClusters())
	r.Values["directedClusters"] = float64(directed.NumClusters())
	r.Values["undirectedClusters"] = float64(undirected.NumClusters())

	// Weighted: keep only same-direction trajectories, then down-weight
	// all but two so the weighted neighborhood cardinality drops below
	// MinLns.
	weighted := make([]segclust.Item, len(items))
	copy(weighted, items)
	for i := range weighted {
		if weighted[i].TrajID >= 2 {
			weighted[i].Weight = 0.1
		}
	}
	wres, err := segclust.Run(weighted, segclust.Config{
		Eps: 25, MinLns: 3, MinTrajs: 2, Options: lsdist.DefaultOptions(), Index: segclust.IndexGrid,
	})
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	r.addf("weighted (4 of 6 trajectories at weight 0.1): clusters=%d", wres.NumClusters())
	r.Values["weightedClusters"] = float64(wres.NumClusters())
	return r
}
