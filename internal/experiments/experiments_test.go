package experiments

import "testing"

// These are the integration tests of the reproduction: each experiment at
// Small size must show the paper's qualitative result (DESIGN.md §4 lists
// the mapping). Exact cluster counts at Small scale differ from the
// full-scale runs recorded in EXPERIMENTS.md, so assertions are on the
// result *shape*.

func TestFig1TraclusFindsCorridorBaselineDoesNot(t *testing.T) {
	r := Fig1(Small)
	if r.Values["traclusClusters"] < 1 {
		t.Fatalf("TRACLUS found no cluster: %v", r.Lines)
	}
	if !(r.Values["traclusRepDist"] < r.Values["regmixCurveDist"]) {
		t.Errorf("representative (%.1f) should be closer to the corridor than any regression mean curve (%.1f)",
			r.Values["traclusRepDist"], r.Values["regmixCurveDist"])
	}
}

func TestFig16EntropyHasInteriorMinimum(t *testing.T) {
	r := Fig16(Small)
	opt := r.Values["optEps"]
	if opt <= 4 || opt >= 60 {
		t.Errorf("entropy minimum at sweep boundary: eps=%v", opt)
	}
	if r.Values["avgNeighbors"] <= 1 {
		t.Errorf("avg|Neps| = %v at optimum", r.Values["avgNeighbors"])
	}
	if len(r.SVGs) == 0 {
		t.Error("no SVG emitted")
	}
}

func TestFig17QMeasureComputed(t *testing.T) {
	r := Fig17(Small)
	// One minimum position per MinLns curve must be recorded.
	for _, k := range []string{"bestEpsMinLns5", "bestEpsMinLns6", "bestEpsMinLns7"} {
		if _, ok := r.Values[k]; !ok {
			t.Errorf("missing %s", k)
		}
	}
}

func TestFig18HurricaneClusters(t *testing.T) {
	r := Fig18(Small)
	c := r.Values["clusters"]
	// Paper: 7 at full scale; the 120-track Small set supports fewer
	// (the recurve corridors thin out), but the band structure must hold.
	if c < 3 || c > 10 {
		t.Errorf("clusters = %v, want 3..10", c)
	}
	if r.Values["noise"] >= r.Values["segments"]/2 {
		t.Errorf("more noise than signal: %v of %v", r.Values["noise"], r.Values["segments"])
	}
}

func TestFig19ElkEntropyInteriorMinimum(t *testing.T) {
	r := Fig19(Small)
	opt := r.Values["optEps"]
	if opt <= 4 || opt >= 60 {
		t.Errorf("entropy minimum at sweep boundary: eps=%v", opt)
	}
}

func TestFig21ElkClusters(t *testing.T) {
	r := Fig21(Small)
	// Paper: 13 clusters at full scale; the trail network has 13 edges, so
	// Small should find on that order (directed traversal may split some).
	if c := r.Values["clusters"]; c < 8 || c > 20 {
		t.Errorf("clusters = %v, want 8..20", c)
	}
}

func TestFig22DeerClusters(t *testing.T) {
	r := Fig22(Small)
	// Paper: 2 dominant clusters; the 2-edge network traversed in both
	// directions supports up to 4 directed corridors.
	if c := r.Values["clusters"]; c < 2 || c > 5 {
		t.Errorf("clusters = %v, want 2..5", c)
	}
}

func TestFig23NoiseRobustness(t *testing.T) {
	r := Fig23(Small)
	if c := r.Values["clusters"]; c < 3 || c > 5 {
		t.Errorf("clusters = %v, want the 4 corridors (±1)", c)
	}
	if leak := r.Values["leakFrac"]; leak > 0.15 {
		t.Errorf("noise leaked into clusters: %.1f%%", 100*leak)
	}
}

func TestSec33PrecisionNearPaper(t *testing.T) {
	r := Sec33(Small)
	p := r.Values["precision"]
	// The paper reports "about 80% on average".
	if p < 0.6 || p > 0.98 {
		t.Errorf("precision = %.1f%%, want near 80%%", 100*p)
	}
}

func TestSec54ParameterTrend(t *testing.T) {
	r := Sec54(Small)
	// Smaller ε → more clusters than larger ε; average cluster size grows
	// with ε (the paper's Section 5.4 trend).
	if !(r.Values["clustersEps15"] >= r.Values["clustersEps45"]) {
		t.Errorf("cluster count should not grow with eps: %v vs %v",
			r.Values["clustersEps15"], r.Values["clustersEps45"])
	}
	if !(r.Values["avgSegsEps15"] < r.Values["avgSegsEps45"]) {
		t.Errorf("avg segments per cluster should grow with eps: %v vs %v",
			r.Values["avgSegsEps15"], r.Values["avgSegsEps45"])
	}
}

func TestAppendixANaiveTiesTraclusSeparates(t *testing.T) {
	r := AppendixA(Small)
	if r.Values["naiveTie"] != 0 {
		t.Errorf("naive distances should tie exactly: gap %v", r.Values["naiveTie"])
	}
	if r.Values["traclusGap"] <= 100 {
		t.Errorf("TRACLUS gap = %v, want the angle-distance separation", r.Values["traclusGap"])
	}
}

func TestAppendixBWeightsChangeClustering(t *testing.T) {
	r := AppendixB(Small)
	low := r.Values["clustersWTheta0.25"]
	high := r.Values["clustersWTheta4.00"]
	if low == 0 && high == 0 {
		t.Fatalf("no clusters at any weight: %v", r.Lines)
	}
	if low == high {
		t.Logf("weight sweep left cluster count unchanged (%v); lines: %v", low, r.Lines)
	}
}

func TestAppendixCShiftInvariance(t *testing.T) {
	r := AppendixC(Small)
	if r.Values["shiftInvariant"] != 1 {
		t.Error("length-based L(H) not shift invariant")
	}
	if r.Values["endpointCostGap"] <= 0 {
		t.Error("endpoint-based L(H) should grow under shifting")
	}
}

func TestAppendixDSegmentsReachNearEps(t *testing.T) {
	r := AppendixD(Small)
	if !(r.Values["segNearEps"] > r.Values["pointNearEps"]) {
		t.Errorf("segments' reachability should concentrate near eps: seg=%v point=%v",
			r.Values["segNearEps"], r.Values["pointNearEps"])
	}
	if !(r.Values["segMeanReach"] > r.Values["pointMeanReach"]) {
		t.Errorf("segment mean reachability %v should exceed points' %v",
			r.Values["segMeanReach"], r.Values["pointMeanReach"])
	}
}

func TestExtensionsUndirectedMergesWeightedFilters(t *testing.T) {
	r := Extensions(Small)
	if !(r.Values["undirectedClusters"] < r.Values["directedClusters"]) {
		t.Errorf("undirected should merge opposite headings: %v vs %v",
			r.Values["undirectedClusters"], r.Values["directedClusters"])
	}
	if !(r.Values["weightedClusters"] < r.Values["directedClusters"]) {
		t.Errorf("down-weighting should reduce clusters: %v vs %v",
			r.Values["weightedClusters"], r.Values["directedClusters"])
	}
}

func TestDistanceAblationTraclusDominates(t *testing.T) {
	r := DistanceAblation(Small)
	traclus := r.Values["ari_traclus"]
	if traclus < 0.9 {
		t.Fatalf("TRACLUS ARI = %v, want ≈1 on the planted flows", traclus)
	}
	for _, alt := range []string{"hausdorff", "endpoint-sum", "midpoint"} {
		if v := r.Values["ari_"+alt]; !(v < traclus) {
			t.Errorf("%s ARI %v should be below traclus %v", alt, v, traclus)
		}
	}
	// Direction-blind variants merge the two co-located flows.
	if r.Values["clusters_hausdorff"] >= r.Values["clusters_traclus"] {
		t.Errorf("hausdorff should find fewer clusters: %v vs %v",
			r.Values["clusters_hausdorff"], r.Values["clusters_traclus"])
	}
}

func TestPartitionAblationMDLTradeoff(t *testing.T) {
	r := PartitionAblation(Small)
	// MDL needs no tolerance knob and should compress at least as well as
	// every alternative (fewest segments) while staying clusterable.
	mdlSegs := r.Values["segments_mdl"]
	for _, alt := range []string{"douglas-peucker", "uniform", "top-angle"} {
		if v := r.Values["segments_"+alt]; v < mdlSegs {
			t.Errorf("%s produced fewer segments (%v) than MDL (%v)", alt, v, mdlSegs)
		}
	}
	if r.Values["clusters_mdl"] < 2 {
		t.Errorf("MDL partitioning yields too few clusters: %v", r.Values["clusters_mdl"])
	}
	// Uniform sampling ignores geometry: its deviation must be the worst.
	if !(r.Values["dev_uniform"] > r.Values["dev_mdl"]) {
		t.Errorf("uniform deviation %v should exceed MDL %v",
			r.Values["dev_uniform"], r.Values["dev_mdl"])
	}
}

func TestDataCachesConsistent(t *testing.T) {
	a := HurricaneData(Small)
	b := HurricaneData(Small)
	if &a[0] != &b[0] {
		t.Error("hurricane cache not shared")
	}
	if len(HurricaneData(Small)) >= len(HurricaneData(Full)) {
		t.Error("small set should be smaller than full")
	}
	if len(ElkData(Small)) != 33 || len(DeerData(Small)) != 32 {
		t.Error("animal counts off")
	}
}

func TestRegistryCompleteAndRunnable(t *testing.T) {
	entries := Registry()
	if len(entries) < 18 {
		t.Fatalf("registry has %d entries", len(entries))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.ID == "" || e.Run == nil {
			t.Fatalf("malformed entry %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	// Every entry must produce a report whose ID matches its registration
	// and with at least one line of output.
	for _, e := range entries {
		rep := e.Run(Small)
		if rep.ID != e.ID {
			t.Errorf("entry %q produced report %q", e.ID, rep.ID)
		}
		if len(rep.Lines) == 0 {
			t.Errorf("entry %q produced no output", e.ID)
		}
	}
}

func TestEpsRange(t *testing.T) {
	got := epsRange(1, 2, 0.5)
	if len(got) != 3 || got[0] != 1 || got[2] != 2 {
		t.Errorf("epsRange = %v", got)
	}
}
