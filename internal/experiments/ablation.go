package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/lsdist"
	"repro/internal/mdl"
	"repro/internal/segclust"
	"repro/internal/simplify"
	"repro/internal/synth"
	"repro/internal/validate"
)

// DistanceAblation compares clustering under the paper's three-component
// distance against the alternatives it was designed to beat: the naive
// endpoint-sum (Appendix A), the segment Hausdorff distance the components
// were adapted from (reference [4]), and a midpoint-only baseline. Ground
// truth is the planted corridor id of each segment (synthetic corridor
// scene), and agreement is scored with the adjusted Rand index and NMI —
// the quantitative counterpart of the paper's visual inspection.
func DistanceAblation(sz Size) *Report {
	r := newReport("ablationDist", "Distance-function ablation (planted directional flows)")
	per, pts := 12, 26
	if sz == Small {
		per, pts = 8, 18
	}
	// Three planted flows that only a direction-aware distance separates:
	// an eastbound and a westbound flow sharing one road, plus a
	// northbound flow crossing it.
	base := directionalScene(per, pts)
	mixed := synth.MixNoise(base, 0.2, pts, 32)
	items := partitionItems(mixed)

	// Ground truth per segment: the flow its trajectory belongs to, noise
	// trajectories labelled -1.
	truth := make([]int, len(items))
	for i, it := range items {
		if it.TrajID < len(base) {
			truth[i] = it.TrajID / per
		} else {
			truth[i] = -1
		}
	}

	cfg := segclust.Config{Eps: 30, MinLns: 6, Options: lsdist.DefaultOptions()}
	variants := []struct {
		name string
		dist lsdist.Func
		eps  float64
	}{
		{"traclus", lsdist.Dist, 30},
		{"hausdorff", lsdist.Hausdorff, 30},
		{"endpoint-sum", lsdist.EndpointSum, 60}, // sums two legs; double ε for fairness
		{"midpoint", lsdist.MidpointDist, 30},
	}
	for _, v := range variants {
		c := cfg
		c.Eps = v.eps
		res, err := segclust.RunWithDistance(items, v.dist, c)
		if err != nil {
			r.addf("%s: error: %v", v.name, err)
			continue
		}
		ari, err := validate.AdjustedRand(res.ClusterOf, truth)
		if err != nil {
			r.addf("%s: error: %v", v.name, err)
			continue
		}
		nmi, _ := validate.NMI(res.ClusterOf, truth)
		noiseAgree, _ := validate.NoiseAgreement(res.ClusterOf, truth)
		r.addf("%-12s clusters=%d ARI=%.3f NMI=%.3f noiseAgreement=%.3f",
			v.name, res.NumClusters(), ari, nmi, noiseAgree)
		r.Values[fmt.Sprintf("ari_%s", v.name)] = ari
		r.Values[fmt.Sprintf("clusters_%s", v.name)] = float64(res.NumClusters())
	}
	r.addf("the three-component distance should dominate on ARI: direction-blind")
	r.addf("distances merge the opposite flows into one cluster")
	return r
}

// PartitionAblation compares MDL partitioning (the paper's Section 3
// contribution) against textbook simplifiers — Douglas–Peucker, uniform
// sampling, and top-turning-angle selection — by running the same grouping
// phase on each partitioning of the hurricane data and scoring (a) the
// preciseness/conciseness trade-off the MDL criterion optimises and (b) the
// downstream clustering. The MDL choice should sit on a good
// deviation-vs-compression trade-off *without* needing a hand-picked
// tolerance, which is its selling point.
func PartitionAblation(sz Size) *Report {
	r := newReport("ablationPart", "Partitioning ablation (MDL vs classical simplifiers)")
	trs := HurricaneData(sz)

	type variant struct {
		name string
		cps  func(pts []geom.Point) []int
	}
	variants := []variant{
		{"mdl", func(pts []geom.Point) []int {
			return mdl.ApproximatePartition(pts, mdl.Config{CostAdvantage: partitionCostAdvantage})
		}},
		{"douglas-peucker", func(pts []geom.Point) []int { return simplify.DouglasPeucker(pts, 12) }},
		{"uniform", func(pts []geom.Point) []int { return simplify.Uniform(pts, 8) }},
		{"top-angle", func(pts []geom.Point) []int { return simplify.TopAngle(pts, 2) }},
	}
	for _, v := range variants {
		var items []segclust.Item
		var devSum, ratioSum float64
		for _, tr := range trs {
			tr = tr.Dedup()
			if len(tr.Points) < 2 {
				continue
			}
			cps := v.cps(tr.Points)
			devSum += simplify.MaxDeviation(tr.Points, cps)
			ratioSum += simplify.CompressionRatio(tr.Points, cps)
			for i := 1; i < len(cps); i++ {
				seg := geom.Segment{Start: tr.Points[cps[i-1]], End: tr.Points[cps[i]]}
				if seg.IsDegenerate() || seg.Length() < partitionMinLength {
					continue
				}
				items = append(items, segclust.Item{Seg: seg, TrajID: tr.ID, Weight: 1})
			}
		}
		out, err := runTraclus(items, figureParams.hurricaneEps, figureParams.hurricaneMinLns)
		if err != nil {
			r.addf("%s: error: %v", v.name, err)
			continue
		}
		n := float64(len(trs))
		r.addf("%-16s segments=%-5d clusters=%-3d noise=%-4d avgMaxDev=%.1f avgCompression=%.1fx",
			v.name, len(items), out.NumClusters(), out.Result.NoiseCount(), devSum/n, ratioSum/n)
		r.Values["clusters_"+v.name] = float64(out.NumClusters())
		r.Values["dev_"+v.name] = devSum / n
		r.Values["segments_"+v.name] = float64(len(items))
	}
	return r
}

// directionalScene plants per trajectories on each of three flows:
// eastbound at y=250, westbound at y=258 (the same road), northbound at
// x=500 crossing it.
func directionalScene(per, pts int) []geom.Trajectory {
	rng := rand.New(rand.NewSource(31))
	var trs []geom.Trajectory
	id := 0
	addFlow := func(a, b geom.Point) {
		for t := 0; t < per; t++ {
			traj := geom.Trajectory{ID: id, Weight: 1}
			for s := 0; s < pts; s++ {
				p := a.Lerp(b, float64(s)/float64(pts-1))
				traj.Points = append(traj.Points,
					geom.Pt(p.X+rng.NormFloat64()*3, p.Y+rng.NormFloat64()*3))
			}
			trs = append(trs, traj)
			id++
		}
	}
	addFlow(geom.Pt(100, 250), geom.Pt(900, 250)) // eastbound
	addFlow(geom.Pt(900, 258), geom.Pt(100, 258)) // westbound, same road
	addFlow(geom.Pt(500, 60), geom.Pt(500, 540))  // northbound crossing
	return trs
}
