// Package experiments regenerates every figure and table-like result of the
// TRACLUS paper's evaluation (Section 5) plus the appendix examples, using
// the synthetic stand-in data sets documented in DESIGN.md §2. Each
// function returns a Report with the same series/rows the paper presents
// and, where the paper shows a picture, an SVG rendering.
//
// The experiments are deterministic: all data generators and searches are
// seeded.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/lsdist"
	"repro/internal/mdl"
	"repro/internal/params"
	"repro/internal/quality"
	"repro/internal/segclust"
	"repro/internal/synth"
)

// Size selects the data scale. Full matches the paper's data set sizes
// where feasible; Small is sized for unit tests and benchmarks.
type Size int

const (
	// Small runs in well under a second per experiment.
	Small Size = iota
	// Full approximates the paper's data scale.
	Full
)

// Report is the renderable outcome of one experiment.
type Report struct {
	ID    string
	Title string
	// Lines are the text rows (the "table" form of the figure).
	Lines []string
	// SVGs maps file names to SVG documents.
	SVGs map[string]string
	// Values exposes headline numbers for tests and EXPERIMENTS.md
	// (e.g. "clusters" → 7).
	Values map[string]float64
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, SVGs: map[string]string{}, Values: map[string]float64{}}
}

func (r *Report) addf(format string, args ...interface{}) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// ---- Shared data sets (cached per size) ----

type dataCache struct {
	once sync.Once
	trs  []geom.Trajectory
}

var hurricaneCache, elkCache, deerCache [2]dataCache

// HurricaneData returns the hurricane-like data set.
func HurricaneData(sz Size) []geom.Trajectory {
	c := &hurricaneCache[sz]
	c.once.Do(func() {
		cfg := synth.DefaultHurricaneConfig()
		if sz == Small {
			cfg.NumTracks = 120
		}
		c.trs = synth.Hurricanes(cfg)
	})
	return c.trs
}

// ElkData returns the Elk1993-like data set.
func ElkData(sz Size) []geom.Trajectory {
	c := &elkCache[sz]
	c.once.Do(func() {
		cfg := synth.ElkConfig()
		if sz == Small {
			cfg.PointsPer = 260
		} else {
			cfg.PointsPer = 900 // full-scale partition counts without an hours-long QMeasure
		}
		c.trs = synth.AnimalMovements(cfg)
	})
	return c.trs
}

// DeerData returns the Deer1995-like data set.
func DeerData(sz Size) []geom.Trajectory {
	c := &deerCache[sz]
	c.once.Do(func() {
		cfg := synth.DeerConfig()
		if sz == Small {
			cfg.PointsPer = 220
		}
		c.trs = synth.AnimalMovements(cfg)
	})
	return c.trs
}

// partitionCostAdvantage is the Section 4.1.3 partition-suppression
// constant used throughout the experiments. The synthetic trajectories
// carry per-fix jitter, so without suppression the MDL test partitions at
// noise wiggles, producing the short segments whose over-clustering
// Figure 11 warns about; 15 lengthens partitions to clean legs (2–3 per
// track) on this data.
const partitionCostAdvantage = 15

// partitionMinLength drops trajectory partitions shorter than this. Short
// segments have low directional strength and "might induce over-clustering"
// (Section 4.1.3, Figure 11); on the jittery synthetic telemetry they would
// glue every corridor into one density-connected set.
const partitionMinLength = 40

// partitionItems runs phase one with the recommended partition-suppression
// constant and returns the pooled segments.
func partitionItems(trs []geom.Trajectory) []segclust.Item {
	cfg := core.DefaultConfig()
	cfg.Partition = mdl.Config{CostAdvantage: partitionCostAdvantage, MinLength: partitionMinLength}
	return core.PartitionAll(trs, cfg)
}

// runTraclus executes grouping+representatives on pre-partitioned items.
func runTraclus(items []segclust.Item, eps, minLns float64) (*core.Output, error) {
	cfg := core.DefaultConfig()
	cfg.Eps, cfg.MinLns = eps, minLns
	return core.RunOnItems(items, cfg)
}

// qmeasure computes Formula 11 for a clustering outcome.
func qmeasure(items []segclust.Item, out *core.Output) float64 {
	return quality.Measure(items, out.Result, lsdist.DefaultOptions(), 0).QMeasure()
}

// epsRange returns [lo..hi] stepping by step.
func epsRange(lo, hi, step float64) []float64 {
	var out []float64
	for e := lo; e <= hi+1e-9; e += step {
		out = append(out, e)
	}
	return out
}

// entropyCurve evaluates the Section 4.4 entropy at each ε.
func entropyCurve(items []segclust.Item, epsValues []float64) []params.EntropyPoint {
	return params.Sweep(items, epsValues, lsdist.DefaultOptions(), segclust.IndexGrid, 0)
}

// Entry is one registered experiment.
type Entry struct {
	ID  string
	Run func(Size) *Report
}

// Registry returns every experiment in presentation order — the single
// source of truth for cmd/experiments and the coverage tests.
func Registry() []Entry {
	return []Entry{
		{"fig1", Fig1},
		{"fig16", Fig16},
		{"fig17", Fig17},
		{"fig18", Fig18},
		{"fig19", Fig19},
		{"fig20", Fig20},
		{"fig21", Fig21},
		{"fig22", Fig22},
		{"fig23", Fig23},
		{"sec33", Sec33},
		{"sec54", Sec54},
		{"appendixA", AppendixA},
		{"appendixB", AppendixB},
		{"appendixC", AppendixC},
		{"appendixD", AppendixD},
		{"extensions", Extensions},
		{"ablationDist", DistanceAblation},
		{"ablationPart", PartitionAblation},
	}
}
