package regmix

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// family generates trajectories along y = a + b·x with noise, sampled left
// to right.
func family(rng *rand.Rand, n, pts int, a, b, noise float64) []geom.Trajectory {
	trs := make([]geom.Trajectory, n)
	for i := range trs {
		p := make([]geom.Point, pts)
		for j := range p {
			x := float64(j) / float64(pts-1) * 100
			p[j] = geom.Pt(x, a+b*x+rng.NormFloat64()*noise)
		}
		trs[i] = geom.NewTrajectory(i, p)
	}
	return trs
}

func TestSeparatesTwoFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	low := family(rng, 10, 20, 0, 0, 2)
	high := family(rng, 10, 20, 200, 0, 2)
	var trs []geom.Trajectory
	trs = append(trs, low...)
	trs = append(trs, high...)
	res, err := Fit(trs, Config{K: 2, Degree: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// All of the first family share one component; all of the second the
	// other.
	for i := 1; i < 10; i++ {
		if res.Assign[i] != res.Assign[0] {
			t.Fatalf("family 1 split: %v", res.Assign)
		}
	}
	for i := 11; i < 20; i++ {
		if res.Assign[i] != res.Assign[10] {
			t.Fatalf("family 2 split: %v", res.Assign)
		}
	}
	if res.Assign[0] == res.Assign[10] {
		t.Fatalf("families merged: %v", res.Assign)
	}
}

func TestMeanCurveRecoversTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	trs := family(rng, 15, 25, 50, 1, 1.5) // y = 50 + x
	res, err := Fit(trs, Config{K: 1, Degree: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	comp := res.Components[0]
	// At t=0 → (0, 50); at t=1 → (100, 150).
	start := comp.Mean(0)
	end := comp.Mean(1)
	if math.Abs(start.Y-50) > 5 || math.Abs(end.Y-150) > 5 {
		t.Errorf("mean curve endpoints %v, %v", start, end)
	}
	if math.Abs(start.X-0) > 5 || math.Abs(end.X-100) > 5 {
		t.Errorf("mean curve x range %v, %v", start, end)
	}
}

func TestWeightsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trs := family(rng, 12, 15, 0, 1, 3)
	res, err := Fit(trs, Config{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, c := range res.Components {
		if c.Weight < 0 {
			t.Errorf("negative weight %v", c.Weight)
		}
		sum += c.Weight
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("weights sum to %v", sum)
	}
	// Responsibilities are a distribution per trajectory.
	for i, row := range res.Resp {
		var s float64
		for _, r := range row {
			s += r
		}
		if math.Abs(s-1) > 1e-6 {
			t.Errorf("resp row %d sums to %v", i, s)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	trs := family(rng, 10, 15, 0, 1, 3)
	a, err := Fit(trs, Config{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(trs, Config{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.LogLik != b.LogLik {
		t.Error("non-deterministic fit")
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Error("assignments differ")
			break
		}
	}
}

func TestVarianceFloor(t *testing.T) {
	// Identical trajectories drive residuals to zero; the variance floor
	// must prevent a degenerate likelihood.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(50, 50), geom.Pt(100, 100)}
	var trs []geom.Trajectory
	for i := 0; i < 6; i++ {
		trs = append(trs, geom.NewTrajectory(i, pts))
	}
	res, err := Fit(trs, Config{K: 1, Degree: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components[0].Var <= 0 || math.IsNaN(res.Components[0].Var) {
		t.Errorf("variance = %v", res.Components[0].Var)
	}
	if math.IsNaN(res.LogLik) || math.IsInf(res.LogLik, 0) {
		t.Errorf("loglik = %v", res.LogLik)
	}
}

func TestErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	trs := family(rng, 3, 10, 0, 0, 1)
	if _, err := Fit(trs, Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Fit(trs, Config{K: 5}); err == nil {
		t.Error("K > len(trs) accepted")
	}
	short := []geom.Trajectory{geom.NewTrajectory(0, []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)})}
	if _, err := Fit(short, Config{K: 1, Degree: 3}); err == nil {
		t.Error("too-short trajectory accepted")
	}
}

func TestMeanCurveSampling(t *testing.T) {
	c := Component{CoefX: []float64{0, 100}, CoefY: []float64{5}, Var: 1}
	curve := c.MeanCurve(11)
	if len(curve) != 11 {
		t.Fatalf("len = %d", len(curve))
	}
	if !curve[0].NearEq(geom.Pt(0, 5), 1e-9) || !curve[10].NearEq(geom.Pt(100, 5), 1e-9) {
		t.Errorf("curve ends %v %v", curve[0], curve[10])
	}
	if got := c.MeanCurve(0); len(got) != 2 {
		t.Errorf("clamped sampling = %d", len(got))
	}
}
