package ring

import (
	"fmt"
	"testing"
)

func replicaSet(n int) []string {
	rs := make([]string, n)
	for i := range rs {
		rs[i] = fmt.Sprintf("replica-%d:8080", i)
	}
	return rs
}

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("model-%d", i)
	}
	return out
}

// TestDeterministic pins the sharding contract: two rings built
// independently from the same member set agree on every owner — this is
// what lets every replica route without coordination.
func TestDeterministic(t *testing.T) {
	a := New(replicaSet(5), 0)
	b := New(replicaSet(5), 0)
	for _, name := range names(1000) {
		if a.Owner(name) != b.Owner(name) {
			t.Fatalf("rings disagree on %q: %q vs %q", name, a.Owner(name), b.Owner(name))
		}
	}
}

// TestOrderIndependent pins that the replica list is canonicalized: the
// ring is the same whatever order (and duplication) the -peers flag came
// in.
func TestOrderIndependent(t *testing.T) {
	rs := replicaSet(5)
	shuffled := []string{rs[3], rs[1], rs[4], rs[1], rs[0], rs[2], rs[3], ""}
	a, b := New(rs, 0), New(shuffled, 0)
	if a.Len() != 5 || b.Len() != 5 {
		t.Fatalf("Len = %d, %d, want 5 (dedup + drop empty)", a.Len(), b.Len())
	}
	for _, name := range names(1000) {
		if a.Owner(name) != b.Owner(name) {
			t.Fatalf("order changed ownership of %q", name)
		}
	}
}

// TestDistribution checks that virtual nodes spread the keyspace roughly
// evenly: no replica owns more than 2× or less than half its fair share of
// a large name population.
func TestDistribution(t *testing.T) {
	const n, keys = 5, 10000
	r := New(replicaSet(n), 0)
	counts := map[string]int{}
	for _, name := range names(keys) {
		counts[r.Owner(name)]++
	}
	fair := keys / n
	for repl, c := range counts {
		if c > 2*fair || c < fair/2 {
			t.Errorf("%s owns %d of %d names (fair share %d)", repl, c, keys, fair)
		}
	}
	if len(counts) != n {
		t.Errorf("only %d of %d replicas own anything", len(counts), n)
	}
}

// TestBoundedRemapping pins the consistent-hashing property itself: adding
// one replica to n moves only roughly 1/(n+1) of the names, and every move
// lands on the new replica.
func TestBoundedRemapping(t *testing.T) {
	const keys = 10000
	before := New(replicaSet(5), 0)
	after := New(append(replicaSet(5), "replica-5:8080"), 0)
	moved := 0
	for _, name := range names(keys) {
		was, is := before.Owner(name), after.Owner(name)
		if was != is {
			moved++
			if is != "replica-5:8080" {
				t.Fatalf("%q moved %q → %q, not to the new replica", name, was, is)
			}
		}
	}
	// Expected ~1/6 ≈ 1667; allow generous slack either way.
	if moved > keys/3 || moved == 0 {
		t.Errorf("adding 1 of 6 replicas moved %d of %d names", moved, keys)
	}
}

func TestEdgeCases(t *testing.T) {
	if got := New(nil, 0).Owner("x"); got != "" {
		t.Errorf("empty ring owner = %q", got)
	}
	solo := New([]string{"only:1"}, 0)
	for _, name := range names(50) {
		if got := solo.Owner(name); got != "only:1" {
			t.Errorf("single-replica ring owner = %q", got)
		}
	}
}

func BenchmarkOwner(b *testing.B) {
	r := New(replicaSet(8), 0)
	ns := names(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owner(ns[i&255])
	}
}
