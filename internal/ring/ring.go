// Package ring implements the consistent-hash ring traclusd shards model
// ownership over: every replica in a configured set hashes a fixed number
// of virtual nodes onto a 64-bit circle, and a model name is owned by the
// replica whose virtual node follows the name's hash clockwise. The
// properties the daemon relies on (pinned by the tests):
//
//   - Deterministic: every replica computes the same owner for every name
//     from the same replica list, with no coordination.
//   - Order-independent: the ring is identical however the replica list is
//     ordered or deduplicated.
//   - Bounded remapping: adding or removing one replica reassigns only the
//     names that replica gains or loses (~1/n of the keyspace), so a
//     resize does not invalidate every peer's snapshot cache.
//
// Hashing is FNV-64a — not cryptographic, and deliberately so: owners must
// be reproducible across processes, versions, and architectures, and the
// adversary model (a client steering model names at one replica) is
// already bounded by per-replica build semaphores.
package ring

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the per-replica virtual-node count. 128 points per
// replica keeps the max/mean keyspace share under ~1.3 for small replica
// sets while the full sorted ring for 16 replicas still fits in L1.
const DefaultVnodes = 128

// Ring is an immutable consistent-hash ring over a replica set. Build one
// with New; all methods are safe for concurrent use.
type Ring struct {
	points   []point  // sorted by hash
	replicas []string // deduplicated, sorted — the canonical member list
}

type point struct {
	hash uint64
	repl int // index into replicas
}

// New builds a ring over replicas with vnodes virtual nodes each (≤ 0 uses
// DefaultVnodes). Duplicates are dropped; the input slice is not retained.
// An empty replica set yields a ring whose Owner returns "".
func New(replicas []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(replicas))
	members := make([]string, 0, len(replicas))
	for _, r := range replicas {
		if r != "" && !seen[r] {
			seen[r] = true
			members = append(members, r)
		}
	}
	sort.Strings(members)
	r := &Ring{replicas: members, points: make([]point, 0, len(members)*vnodes)}
	for ri, repl := range members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(repl + "#" + strconv.Itoa(v)), repl: ri})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Full-hash collisions between distinct vnode labels are ~2⁻⁶⁴ rare
		// but must still order deterministically.
		return r.replicas[r.points[i].repl] < r.replicas[r.points[j].repl]
	})
	return r
}

// Len returns the number of replicas.
func (r *Ring) Len() int { return len(r.replicas) }

// Replicas returns the canonical (sorted, deduplicated) member list.
// Callers must not modify it.
func (r *Ring) Replicas() []string { return r.replicas }

// Owner returns the replica owning name: the first virtual node at or
// clockwise after hash(name), wrapping around. It returns "" only on an
// empty ring.
func (r *Ring) Owner(name string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.replicas[r.points[i].repl]
}

// hash64 is FNV-64a finished with the splitmix64 finalizer. Raw FNV of
// short, highly similar labels ("replica-0:8080#17", …) leaves enough
// structure in the high bits to skew vnode placement visibly; the
// finalizer's avalanche restores a near-uniform spread. Both stages are
// fixed constants, so owners stay reproducible everywhere.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
