package sweep

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func horizontalCluster(n int, y, jitter float64, rng *rand.Rand) []geom.Segment {
	segs := make([]geom.Segment, n)
	for i := range segs {
		x := float64(i) * 20
		segs[i] = geom.Seg(x, y+rng.NormFloat64()*jitter, x+120, y+rng.NormFloat64()*jitter)
	}
	return segs
}

func TestAverageDirection(t *testing.T) {
	segs := []geom.Segment{
		geom.Seg(0, 0, 10, 0), // vector (10, 0)
		geom.Seg(0, 0, 10, 2), // vector (10, 2)
		geom.Seg(5, 5, 15, 3), // vector (10, -2)
	}
	got := AverageDirection(segs)
	if got.X <= 0 {
		t.Errorf("average direction should point +x: %v", got)
	}
	if !approx(got.X, 10, 1e-12) || !approx(got.Y, 0, 1e-12) {
		t.Errorf("AverageDirection = %v, want (10, 0)", got)
	}
}

func TestAverageDirectionLongerContributesMore(t *testing.T) {
	// Definition 11 sums raw vectors, so the long segment dominates.
	segs := []geom.Segment{
		geom.Seg(0, 0, 100, 0),
		geom.Seg(0, 0, 0, 5),
	}
	got := AverageDirection(segs).Unit()
	if got.X < 0.99 {
		t.Errorf("long segment should dominate: %v", got)
	}
}

func TestAverageDirectionCancellingFallsBack(t *testing.T) {
	segs := []geom.Segment{
		geom.Seg(0, 0, 10, 0),
		geom.Seg(10, 1, 0, 1), // exactly opposite
	}
	got := AverageDirection(segs)
	if got.Norm2() == 0 {
		t.Error("cancelled direction not replaced by fallback")
	}
}

func TestRepresentativeHorizontal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	segs := horizontalCluster(20, 50, 1, rng)
	rep := Representative(segs, nil, Config{MinLns: 3, Gamma: 5})
	if len(rep) < 2 {
		t.Fatalf("representative too short: %v", rep)
	}
	for _, p := range rep {
		if math.Abs(p.Y-50) > 3 {
			t.Errorf("representative strays from corridor: %v", p)
		}
	}
	// Points must advance along the corridor.
	for i := 1; i < len(rep); i++ {
		if rep[i].X <= rep[i-1].X {
			t.Errorf("representative not monotone along major axis: %v -> %v", rep[i-1], rep[i])
		}
	}
}

func TestRepresentativeAveragesY(t *testing.T) {
	// Two exactly parallel segments: the representative runs midway.
	segs := []geom.Segment{
		geom.Seg(0, 0, 100, 0),
		geom.Seg(0, 10, 100, 10),
	}
	rep := Representative(segs, nil, Config{MinLns: 2, Gamma: 0})
	if len(rep) < 2 {
		t.Fatalf("rep = %v", rep)
	}
	for _, p := range rep {
		if !approx(p.Y, 5, 1e-9) {
			t.Errorf("representative y = %v, want 5", p.Y)
		}
	}
}

func TestRepresentativeMinLnsThreshold(t *testing.T) {
	// Only one segment crosses the far stretch — positions there are
	// skipped (paper Figure 13, positions 5 and 6).
	segs := []geom.Segment{
		geom.Seg(0, 0, 100, 0),
		geom.Seg(0, 4, 100, 4),
		geom.Seg(0, 2, 300, 2), // lone tail
	}
	rep := Representative(segs, nil, Config{MinLns: 2, Gamma: 0})
	if len(rep) == 0 {
		t.Fatal("no representative")
	}
	for _, p := range rep {
		if p.X > 110 {
			t.Errorf("representative extends into sparse tail: %v", p)
		}
	}
}

func TestRepresentativeGammaSmoothing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	segs := horizontalCluster(30, 0, 0.5, rng)
	dense := Representative(segs, nil, Config{MinLns: 3, Gamma: 0})
	sparse := Representative(segs, nil, Config{MinLns: 3, Gamma: 40})
	if len(sparse) >= len(dense) {
		t.Errorf("gamma smoothing did not reduce points: %d vs %d", len(sparse), len(dense))
	}
	for i := 1; i < len(sparse); i++ {
		if sparse[i].Dist(sparse[i-1]) < 40-1e-9 {
			t.Errorf("points closer than gamma: %v %v", sparse[i-1], sparse[i])
		}
	}
}

func TestRepresentativeRotationEquivariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	segs := horizontalCluster(15, 20, 0.5, rng)
	cfg := Config{MinLns: 3, Gamma: 5}
	base := Representative(segs, nil, cfg)
	phi := math.Pi / 3
	rot := make([]geom.Segment, len(segs))
	for i, s := range segs {
		rot[i] = s.Rotate(phi)
	}
	rotated := Representative(rot, nil, cfg)
	if len(base) != len(rotated) {
		t.Fatalf("point counts differ under rotation: %d vs %d", len(base), len(rotated))
	}
	for i := range base {
		want := base[i].Rotate(phi)
		if !rotated[i].NearEq(want, 1e-6) {
			t.Errorf("point %d: %v, want %v", i, rotated[i], want)
		}
	}
}

func TestRepresentativeWeighted(t *testing.T) {
	// The heavy segment dominates the average; with unit weights the
	// representative would run midway (y=5), with weight 9:1 it runs at
	// y = 0.9·10 + 0.1·0 = 9.
	segs := []geom.Segment{
		geom.Seg(0, 0, 100, 0),
		geom.Seg(0, 10, 100, 10),
	}
	rep := Representative(segs, []float64{1, 9}, Config{MinLns: 2, Gamma: 0})
	if len(rep) < 2 {
		t.Fatalf("rep = %v", rep)
	}
	for _, p := range rep {
		if !approx(p.Y, 9, 1e-9) {
			t.Errorf("weighted representative y = %v, want 9", p.Y)
		}
	}
	// Weighted MinLns: weights below the threshold suppress the sweep.
	rep = Representative(segs, []float64{0.5, 0.5}, Config{MinLns: 2, Gamma: 0})
	if rep != nil {
		t.Errorf("under-weighted cluster produced representative %v", rep)
	}
}

func TestRepresentativeDegenerateInputs(t *testing.T) {
	if got := Representative(nil, nil, Config{MinLns: 2}); got != nil {
		t.Errorf("empty input = %v", got)
	}
	point := []geom.Segment{geom.Seg(5, 5, 5, 5), geom.Seg(5, 5, 5, 5)}
	if got := Representative(point, nil, Config{MinLns: 2}); got != nil {
		t.Errorf("all-degenerate input = %v", got)
	}
	single := []geom.Segment{geom.Seg(0, 0, 10, 0)}
	if got := Representative(single, nil, Config{MinLns: 2}); got != nil {
		t.Errorf("below MinLns everywhere = %v", got)
	}
}

func TestRepresentativeVerticalCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	segs := make([]geom.Segment, 12)
	for i := range segs {
		y := float64(i) * 15
		segs[i] = geom.Seg(30+rng.NormFloat64(), y, 30+rng.NormFloat64(), y+80)
	}
	rep := Representative(segs, nil, Config{MinLns: 3, Gamma: 5})
	if len(rep) < 2 {
		t.Fatalf("rep = %v", rep)
	}
	for _, p := range rep {
		if math.Abs(p.X-30) > 3 {
			t.Errorf("vertical representative strays: %v", p)
		}
	}
	if rep[len(rep)-1].Y <= rep[0].Y {
		t.Error("vertical representative not ascending")
	}
}

func TestRepresentativePerpendicularSegmentContribution(t *testing.T) {
	// A segment perpendicular to the sweep axis contributes its midpoint.
	segs := []geom.Segment{
		geom.Seg(0, 0, 100, 0),
		geom.Seg(0, 10, 100, 10),
		geom.Seg(50, -20, 50, 40), // perpendicular, midpoint y=10
	}
	rep := Representative(segs, nil, Config{MinLns: 2, Gamma: 0})
	if len(rep) < 2 {
		t.Fatal("no representative")
	}
}
