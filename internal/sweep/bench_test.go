package sweep

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkRepresentative(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{50, 500} {
		segs := horizontalCluster(n, 100, 3, rng)
		b.Run(fmt.Sprintf("segments=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Representative(segs, nil, Config{MinLns: 5, Gamma: 8})
			}
		})
	}
}
