// Package sweep generates the representative trajectory of a cluster of
// line segments (Section 4.3, Figures 13–15 of the TRACLUS paper): rotate
// the axes so X is parallel to the cluster's average direction vector,
// sweep a vertical line across the segments' endpoints in x′ order, and at
// every sweep position hit by at least MinLns segments emit the average of
// the segments' interpolated y′ coordinates (skipping positions closer
// than γ to the previous emitted one), rotated back to the original frame.
package sweep

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Config controls representative-trajectory generation.
type Config struct {
	// MinLns is the minimum (weighted) number of segments that must cross a
	// sweep position for a representative point to be emitted — the same
	// MinLns as clustering uses (Figure 15 input 2).
	MinLns float64
	// Gamma is the smoothing parameter γ: emitted points must be at least
	// Gamma apart along the rotated X′ axis (Figure 15 input 3).
	Gamma float64
}

// AverageDirection returns the cluster's average direction vector
// (Definition 11): the plain vector mean of the segments' direction
// vectors, so longer segments contribute more. If the mean degenerates to
// (near) zero — segments cancelling out — the direction of the longest
// segment is used so the sweep axis stays well defined.
func AverageDirection(segs []geom.Segment) geom.Point {
	var sum geom.Point
	for _, s := range segs {
		sum = sum.Add(s.Vector())
	}
	if len(segs) > 0 {
		sum = sum.Scale(1 / float64(len(segs)))
	}
	var maxLen float64
	var longest geom.Segment
	for _, s := range segs {
		if l := s.Length2(); l > maxLen {
			maxLen, longest = l, s
		}
	}
	if sum.Norm2() <= maxLen*1e-12 && maxLen > 0 {
		return longest.Vector()
	}
	return sum
}

// event is one segment interval in the rotated frame.
type interval struct {
	lo, hi float64 // x′ extent, lo ≤ hi
	seg    geom.Segment
	rot    geom.Segment // rotated copy
	weight float64
}

// Representative computes the representative trajectory of the given
// cluster segments. weights may be nil (unit weights) or parallel to segs
// (the weighted-trajectory extension). It returns nil when fewer than two
// representative points survive the MinLns and γ filters — such a cluster
// has no meaningful major-axis extent.
func Representative(segs []geom.Segment, weights []float64, cfg Config) []geom.Point {
	if len(segs) == 0 {
		return nil
	}
	dir := AverageDirection(segs).Unit()
	if dir.Norm2() == 0 {
		return nil // all segments degenerate
	}
	phi := math.Atan2(dir.Y, dir.X)

	ivs := make([]interval, len(segs))
	positions := make([]float64, 0, 2*len(segs))
	for i, s := range segs {
		r := s.Rotate(-phi)
		lo, hi := r.Start.X, r.End.X
		if lo > hi {
			lo, hi = hi, lo
		}
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		ivs[i] = interval{lo: lo, hi: hi, seg: s, rot: r, weight: w}
		positions = append(positions, lo, hi)
	}
	sort.Float64s(positions)
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].lo < ivs[b].lo })

	var rep []geom.Point
	active := make([]int, 0, len(ivs))
	nextIv := 0
	lastX := math.Inf(-1)
	for _, x := range positions {
		// Admit intervals starting at or before x; retire those ending
		// before x.
		for nextIv < len(ivs) && ivs[nextIv].lo <= x {
			active = append(active, nextIv)
			nextIv++
		}
		keep := active[:0]
		for _, id := range active {
			if ivs[id].hi >= x {
				keep = append(keep, id)
			}
		}
		active = keep

		var count, ySum, wSum float64
		for _, id := range active {
			count += ivs[id].weight
			y, w := yAt(ivs[id], x)
			ySum += y * w
			wSum += w
		}
		if count < cfg.MinLns || wSum == 0 {
			continue
		}
		if x-lastX < cfg.Gamma {
			continue
		}
		lastX = x
		avg := geom.Point{X: x, Y: ySum / wSum}.Rotate(phi)
		rep = append(rep, avg)
	}
	if len(rep) < 2 {
		return nil
	}
	return rep
}

// yAt returns the rotated-frame y′ of the interval's segment at sweep
// position x, with the interval's weight. Segments perpendicular to the
// sweep axis (zero x′ extent) contribute their midpoint.
func yAt(iv interval, x float64) (y, w float64) {
	r := iv.rot
	dx := r.End.X - r.Start.X
	if dx == 0 {
		return (r.Start.Y + r.End.Y) / 2, iv.weight
	}
	t := (x - r.Start.X) / dx
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return r.Start.Y + t*(r.End.Y-r.Start.Y), iv.weight
}
