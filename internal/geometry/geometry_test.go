package geometry

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestParseKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"", Planar, true},
		{"planar", Planar, true},
		{"euclidean", Planar, true},
		{"xy", Planar, true},
		{"spatiotemporal", Spatiotemporal, true},
		{"st", Spatiotemporal, true},
		{"temporal", Spatiotemporal, true},
		{"geodesic", Geodesic, true},
		{"latlon", Geodesic, true},
		{"gps", Geodesic, true},
		{"hyperbolic", Planar, false},
		{"PLANAR", Planar, false}, // names are case-sensitive, like index names
	}
	for _, tc := range cases {
		got, ok := ParseKind(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseKind(%q) = %v, %v; want %v, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	// String round-trips every kind through ParseKind.
	for _, k := range []Kind{Planar, Spatiotemporal, Geodesic} {
		if got, ok := ParseKind(k.String()); !ok || got != k {
			t.Errorf("ParseKind(%v.String()) = %v, %v", k, got, ok)
		}
	}
}

func TestIntervalGap(t *testing.T) {
	cases := []struct {
		a, b Interval
		want float64
	}{
		{Interval{Start: 0, End: 10}, Interval{Start: 5, End: 15}, 0},  // overlap
		{Interval{Start: 0, End: 10}, Interval{Start: 10, End: 20}, 0}, // touch
		{Interval{Start: 0, End: 10}, Interval{Start: 13, End: 20}, 3},
		{Interval{Start: 13, End: 20}, Interval{Start: 0, End: 10}, 3}, // symmetric
		{Interval{Start: 5, End: 5}, Interval{Start: 5, End: 5}, 0},    // instants
		{Interval{Start: 0, End: 2}, Interval{Start: 2.5, End: 2.5}, 0.5},
	}
	for _, tc := range cases {
		if got := tc.a.Gap(tc.b); got != tc.want {
			t.Errorf("%+v.Gap(%+v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if tc.a.Gap(tc.b) != tc.b.Gap(tc.a) {
			t.Errorf("Gap not symmetric for %+v, %+v", tc.a, tc.b)
		}
	}
}

func TestIntervalUnionValid(t *testing.T) {
	u := Interval{Start: 3, End: 5}.Union(Interval{Start: 1, End: 4})
	if u != (Interval{Start: 1, End: 5}) {
		t.Errorf("Union = %+v", u)
	}
	if !(Interval{Start: 1, End: 1}).Valid() {
		t.Error("instant interval should be valid")
	}
	for _, bad := range []Interval{
		{Start: 2, End: 1},
		{Start: math.NaN(), End: 1},
		{Start: 0, End: math.Inf(1)},
	} {
		if bad.Valid() {
			t.Errorf("%+v should be invalid", bad)
		}
	}
}

func TestGeometryValidate(t *testing.T) {
	valid := []Geometry{
		NewPlanar(),
		NewSpatiotemporal(0),
		NewSpatiotemporal(2.5),
		NewGeodesic(),
		{Kind: Geodesic, Frame: &Frame{Lat0: 47.6, Lon0: -122.3}},
	}
	for _, g := range valid {
		if field, reason := g.Validate(); field != "" {
			t.Errorf("%+v invalid: %s %s", g, field, reason)
		}
	}
	invalid := []Geometry{
		{Kind: Kind(9)},
		NewSpatiotemporal(-1),
		NewSpatiotemporal(math.NaN()),
		{Kind: Planar, WT: 0.5},                   // wt without spatiotemporal
		{Kind: Planar, Frame: &Frame{}},           // frame without geodesic
		{Kind: Geodesic, Frame: &Frame{Lat0: 91}}, // origin out of range
		{Kind: Geodesic, Frame: &Frame{Lat0: math.NaN()}},
	}
	for _, g := range invalid {
		if field, _ := g.Validate(); field == "" {
			t.Errorf("%+v should be invalid", g)
		}
	}
	if !NewSpatiotemporal(1).Timed() || NewPlanar().Timed() || NewGeodesic().Timed() {
		t.Error("Timed() wrong for some kind")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{Lat0: 47.6062, Lon0: -122.3321}
	pts := []geom.Point{
		{X: -122.3321, Y: 47.6062}, // origin
		{X: -122.30, Y: 47.65},
		{X: -122.40, Y: 47.55},
	}
	for _, p := range pts {
		w := f.ToWorking(p)
		back := f.FromWorking(w)
		if math.Abs(back.X-p.X) > 1e-9 || math.Abs(back.Y-p.Y) > 1e-9 {
			t.Errorf("round trip %v -> %v -> %v", p, w, back)
		}
	}
	// The origin maps to (0, 0) exactly.
	if o := f.ToWorking(geom.Point{X: f.Lon0, Y: f.Lat0}); o.X != 0 || o.Y != 0 {
		t.Errorf("origin maps to %v", o)
	}
	// One degree of latitude is ≈111.2 km everywhere; a degree of longitude
	// at 47.6°N is ≈cos(47.6°) of that — the distortion the frame corrects.
	north := f.ToWorking(geom.Point{X: f.Lon0, Y: f.Lat0 + 1})
	east := f.ToWorking(geom.Point{X: f.Lon0 + 1, Y: f.Lat0})
	if math.Abs(north.Y-111194.9) > 100 {
		t.Errorf("1° latitude = %.1f m", north.Y)
	}
	if ratio := east.X / north.Y; math.Abs(ratio-math.Cos(f.Lat0*degToRad)) > 1e-9 {
		t.Errorf("lon/lat meter ratio %v, want cos(lat0) %v", ratio, math.Cos(f.Lat0*degToRad))
	}
}

func TestFrameFor(t *testing.T) {
	b := geom.Rect{Min: geom.Pt(-122.5, 47.5), Max: geom.Pt(-122.1, 47.7)}
	f := FrameFor(b)
	if f.Lon0 != -122.3 || math.Abs(f.Lat0-47.6) > 1e-12 {
		t.Errorf("FrameFor = %+v", f)
	}
	// ProjectTrajectory is element-wise ToWorking.
	pts := []geom.Point{b.Min, b.Max}
	proj := f.ProjectTrajectory(pts)
	if len(proj) != 2 || proj[0] != f.ToWorking(pts[0]) || proj[1] != f.ToWorking(pts[1]) {
		t.Errorf("ProjectTrajectory = %v", proj)
	}
}

// FuzzFrameRoundTrip: FromWorking(ToWorking(p)) must return near-exactly p
// for any finite in-range input, and never NaN for a valid frame.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(47.6, -122.3, -122.33, 47.61)
	f.Add(0.0, 0.0, 1.0, -1.0)
	f.Add(-60.0, 170.0, 179.0, -59.0)
	f.Fuzz(func(t *testing.T, lat0, lon0, x, y float64) {
		fr := Frame{Lat0: lat0, Lon0: lon0}
		g := Geometry{Kind: Geodesic, Frame: &fr}
		if field, _ := g.Validate(); field != "" {
			t.Skip("invalid frame")
		}
		if math.Abs(lat0) > 85 {
			t.Skip("projection degenerate near the poles")
		}
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) ||
			math.Abs(x-lon0) > 10 || math.Abs(y-lat0) > 10 {
			t.Skip("outside a regional extent")
		}
		p := geom.Point{X: x, Y: y}
		w := fr.ToWorking(p)
		if math.IsNaN(w.X) || math.IsNaN(w.Y) {
			t.Fatalf("ToWorking(%v) = %v", p, w)
		}
		back := fr.FromWorking(w)
		// Regional extents stay well within a few mm of round-trip error.
		if math.Abs(back.X-p.X) > 1e-7 || math.Abs(back.Y-p.Y) > 1e-7 {
			t.Fatalf("round trip %v -> %v -> %v", p, w, back)
		}
	})
}
