// Package geometry defines the pluggable segment-geometry layer: what a
// "distance between two line segments" means for a dataset, together with
// the conservative candidate bound the spatial indexes rely on and the
// coordinate frame the model's internals operate in.
//
// Three geometries are first-class:
//
//   - Planar (the default): the TRACLUS distance of Section 2.3 over raw
//     Euclidean coordinates. This is exactly the pre-existing path — a
//     planar Geometry threads through every layer without changing a single
//     floating-point operation.
//
//   - Spatiotemporal (§7.1 of the paper): the planar distance plus a
//     weighted temporal gap term wT·gap(Ia, Ib), where Ia, Ib are the time
//     intervals spanned by the two segments and gap is zero for overlapping
//     intervals and the distance between the nearer endpoints otherwise.
//     With wT = 0 this reduces exactly to the planar distance.
//
//   - Geodesic: raw coordinates are (longitude, latitude) in degrees. The
//     model works in a dataset-derived equirectangular projection (meters),
//     so all planar machinery — kernels, indexes, MDL partitioning —
//     applies unchanged; the Frame that did the projection is part of the
//     model and must be persisted so later queries project identically.
//
// # Pruning-bound invariant
//
// Every spatial index backend prunes with the geometric lower bound
// dist ≥ c·mindist (lsdist.LowerBoundFactor): a candidate search at radius
// ε/c can produce false positives but never false negatives. Each geometry
// must preserve that one-sided guarantee:
//
//   - Planar: the bound holds by construction (proved in lsdist).
//   - Spatiotemporal: the temporal term wT·gap is non-negative, so
//     dist_st(a,b) ≥ dist_planar(a,b) ≥ c·mindist(a,b). Any pair within ε
//     under the spatiotemporal distance is within ε under the planar
//     distance, hence inside the planar candidate radius ε/c. The planar
//     prefilter therefore remains complete — candidates and the spatial
//     part of every distance are computed exactly as in the planar path,
//     and the gap term is added afterwards per surviving candidate.
//   - Geodesic: the working frame is planar (meters), so the planar bound
//     applies verbatim to projected coordinates.
package geometry

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Kind enumerates the built-in geometries. The zero value is Planar, so a
// zero Geometry (and every pre-existing Config) means "the current path".
type Kind uint8

const (
	Planar Kind = iota
	Spatiotemporal
	Geodesic
)

// String returns the canonical lowercase name used in configs, snapshots,
// and the daemon's geometry= build parameter.
func (k Kind) String() string {
	switch k {
	case Planar:
		return "planar"
	case Spatiotemporal:
		return "spatiotemporal"
	case Geodesic:
		return "geodesic"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind maps a user-supplied name (canonical names plus a few obvious
// aliases) to a Kind. The boolean reports success; callers translate a
// failure into their layer's typed configuration error.
func ParseKind(s string) (Kind, bool) {
	switch s {
	case "", "planar", "euclidean", "xy":
		return Planar, true
	case "spatiotemporal", "st", "temporal":
		return Spatiotemporal, true
	case "geodesic", "latlon", "gps":
		return Geodesic, true
	}
	return Planar, false
}

// Interval is a closed time span [Start, End], in whatever unit the
// dataset's timestamps use (the distance only ever sees differences).
type Interval struct {
	Start, End float64
}

// Gap is the temporal distance between two intervals: 0 when they overlap
// or touch, otherwise the gap between the nearer endpoints.
func (iv Interval) Gap(other Interval) float64 {
	if iv.Start > other.End {
		return iv.Start - other.End
	}
	if other.Start > iv.End {
		return other.Start - iv.End
	}
	return 0
}

// Union is the smallest interval covering both.
func (iv Interval) Union(other Interval) Interval {
	return Interval{Start: math.Min(iv.Start, other.Start), End: math.Max(iv.End, other.End)}
}

// Valid reports whether the interval is finite and ordered.
func (iv Interval) Valid() bool {
	return !math.IsNaN(iv.Start) && !math.IsInf(iv.Start, 0) &&
		!math.IsNaN(iv.End) && !math.IsInf(iv.End, 0) && iv.Start <= iv.End
}

// Geometry selects a distance mode for a model build. The zero value is
// planar Euclidean — the exact pre-existing path.
type Geometry struct {
	Kind Kind
	// WT is the temporal weight wT (Spatiotemporal only). WT = 0 reduces
	// the spatiotemporal distance exactly to the planar one.
	WT float64
	// Frame is the resolved equirectangular projection (Geodesic only).
	// It is derived from the data bounds at build time and persisted with
	// the model so queries project identically; nil until resolved.
	Frame *Frame
}

// NewPlanar returns the default planar Euclidean geometry.
func NewPlanar() Geometry { return Geometry{Kind: Planar} }

// NewSpatiotemporal returns the spatiotemporal geometry with temporal
// weight wt.
func NewSpatiotemporal(wt float64) Geometry { return Geometry{Kind: Spatiotemporal, WT: wt} }

// NewGeodesic returns the geodesic lat/lon geometry; its projection frame
// is resolved from the data bounds at build time.
func NewGeodesic() Geometry { return Geometry{Kind: Geodesic} }

// Validate reports whether the geometry is internally consistent: a known
// kind, a finite non-negative temporal weight only on the spatiotemporal
// kind, and a frame only on the geodesic kind. It returns a field name and
// reason for the caller to wrap into its typed config error ("" = valid).
func (g Geometry) Validate() (field, reason string) {
	switch g.Kind {
	case Planar, Spatiotemporal, Geodesic:
	default:
		return "Geometry", "unknown geometry kind"
	}
	if math.IsNaN(g.WT) || math.IsInf(g.WT, 0) || g.WT < 0 {
		return "TemporalWeight", "must be finite and non-negative"
	}
	if g.WT != 0 && g.Kind != Spatiotemporal {
		return "TemporalWeight", "only valid with the spatiotemporal geometry"
	}
	if g.Frame != nil && g.Kind != Geodesic {
		return "Geometry", "projection frame only valid with the geodesic geometry"
	}
	if g.Frame != nil {
		if f := *g.Frame; math.IsNaN(f.Lat0) || math.IsInf(f.Lat0, 0) ||
			math.IsNaN(f.Lon0) || math.IsInf(f.Lon0, 0) ||
			f.Lat0 < -90 || f.Lat0 > 90 {
			return "Geometry", "projection frame origin out of range"
		}
	}
	return "", ""
}

// Timed reports whether the geometry consumes per-segment time intervals.
func (g Geometry) Timed() bool { return g.Kind == Spatiotemporal }

// EarthRadiusMeters is the IUGG mean Earth radius.
const EarthRadiusMeters = 6371008.8

const degToRad = math.Pi / 180

// Frame is a dataset-derived equirectangular projection: raw (lon, lat)
// degrees map to a local tangent plane in meters centered on (Lat0, Lon0).
// Adequate for the regional extents trajectory clustering operates on; the
// model is built, indexed, and classified entirely in the working frame.
type Frame struct {
	Lat0, Lon0 float64
}

// FrameFor derives the projection frame from the lat/lon bounds of the
// input data (Point.X = longitude, Point.Y = latitude, degrees): the frame
// origin is the bounds center.
func FrameFor(bounds geom.Rect) Frame {
	c := bounds.Center()
	return Frame{Lat0: c.Y, Lon0: c.X}
}

// ToWorking projects a raw (lon, lat) degree point into the working frame
// (meters east, meters north of the frame origin).
func (f Frame) ToWorking(p geom.Point) geom.Point {
	return geom.Point{
		X: EarthRadiusMeters * (p.X - f.Lon0) * degToRad * math.Cos(f.Lat0*degToRad),
		Y: EarthRadiusMeters * (p.Y - f.Lat0) * degToRad,
	}
}

// FromWorking inverts ToWorking: working-frame meters back to (lon, lat)
// degrees.
func (f Frame) FromWorking(p geom.Point) geom.Point {
	return geom.Point{
		X: f.Lon0 + p.X/(EarthRadiusMeters*degToRad*math.Cos(f.Lat0*degToRad)),
		Y: f.Lat0 + p.Y/(EarthRadiusMeters*degToRad),
	}
}

// ProjectTrajectory returns a copy of pts projected into the working frame.
func (f Frame) ProjectTrajectory(pts []geom.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = f.ToWorking(p)
	}
	return out
}
