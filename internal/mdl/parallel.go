package mdl

// This file holds the worker-pool side of the MDL phase: partitioning is
// embarrassingly parallel across trajectories (each partitioning reads only
// its own points), so PartitionAll fans trajectories out over a pool of
// Partitioners, one per worker, each with private scratch buffers. Results
// land in per-trajectory slots, so the output is identical to the serial
// loop regardless of scheduling.

import (
	"context"

	"repro/internal/geom"
	"repro/internal/par"
)

// Partitioner partitions trajectories while reusing internal scratch
// (the dedup point buffer and the characteristic-point index buffer), so a
// worker processing many trajectories allocates only the output segments.
// A Partitioner is not safe for concurrent use; give each goroutine its own.
type Partitioner struct {
	cfg Config
	cps []int        // characteristic-point scratch
	pts []geom.Point // deduplicated-point scratch
	tms []float64    // deduplicated-timestamp scratch (timed path only)
}

// NewPartitioner returns a Partitioner for the given configuration.
func NewPartitioner(cfg Config) *Partitioner { return &Partitioner{cfg: cfg} }

// Partition behaves exactly like the package-level Partition but reuses the
// receiver's scratch buffers across calls.
func (p *Partitioner) Partition(tr geom.Trajectory) []geom.Segment {
	p.pts = appendDedup(p.pts[:0], tr.Points)
	pts := p.pts
	if len(pts) < 2 {
		return nil
	}
	p.cps = appendApproximatePartition(p.cps[:0], pts, p.cfg)
	cps := p.cps
	segs := make([]geom.Segment, 0, len(cps)-1)
	for i := 1; i < len(cps); i++ {
		s := geom.Segment{Start: pts[cps[i-1]], End: pts[cps[i]]}
		if s.IsDegenerate() || s.Length() < p.cfg.MinLength {
			continue
		}
		segs = append(segs, s)
	}
	return segs
}

// appendDedup is geom.Trajectory.Dedup into a reusable buffer: consecutive
// equal points collapse to one.
func appendDedup(dst, pts []geom.Point) []geom.Point {
	for _, q := range pts {
		if len(dst) == 0 || !q.Eq(dst[len(dst)-1]) {
			dst = append(dst, q)
		}
	}
	return dst
}

// PartitionTimed is Partition for a trajectory carrying per-point
// timestamps (times index-aligned with pts). The point stream dedups on
// point equality exactly as the untimed path — a repeated point keeps its
// FIRST occurrence's timestamp — so the MDL partitioning sees the identical
// point sequence and the returned segments are bit-identical to
// Partition over the same points. Each surviving segment additionally
// carries the [t_start, t_end] span of its two characteristic points,
// index-aligned in spans; the filter that drops degenerate or too-short
// segments drops their spans with them.
func (p *Partitioner) PartitionTimed(pts []geom.Point, times []float64) ([]geom.Segment, [][2]float64) {
	p.pts, p.tms = appendDedupTimed(p.pts[:0], p.tms[:0], pts, times)
	dpts, dtms := p.pts, p.tms
	if len(dpts) < 2 {
		return nil, nil
	}
	p.cps = appendApproximatePartition(p.cps[:0], dpts, p.cfg)
	cps := p.cps
	segs := make([]geom.Segment, 0, len(cps)-1)
	spans := make([][2]float64, 0, len(cps)-1)
	for i := 1; i < len(cps); i++ {
		s := geom.Segment{Start: dpts[cps[i-1]], End: dpts[cps[i]]}
		if s.IsDegenerate() || s.Length() < p.cfg.MinLength {
			continue
		}
		segs = append(segs, s)
		spans = append(spans, [2]float64{dtms[cps[i-1]], dtms[cps[i]]})
	}
	return segs, spans
}

// appendDedupTimed is appendDedup over a (point, timestamp) pair stream:
// dedup decides on point equality alone, and the first occurrence's
// timestamp is the one kept.
func appendDedupTimed(dstP []geom.Point, dstT []float64, pts []geom.Point, times []float64) ([]geom.Point, []float64) {
	for i, q := range pts {
		if len(dstP) == 0 || !q.Eq(dstP[len(dstP)-1]) {
			dstP = append(dstP, q)
			dstT = append(dstT, times[i])
		}
	}
	return dstP, dstT
}

// PartitionAll partitions every trajectory concurrently (Figure 4 lines
// 1–3 as a parallel phase) and returns one segment slice per input
// trajectory, index-aligned with trs. workers ≤ 0 uses all CPUs; the result
// is bit-identical for every worker count.
func PartitionAll(trs []geom.Trajectory, cfg Config, workers int) [][]geom.Segment {
	out, _ := PartitionAllCtx(context.Background(), trs, cfg, workers, nil)
	return out
}

// PartitionAllCtx is PartitionAll with cooperative cancellation and an
// optional completion hook: once ctx is done the fan-out stops handing out
// trajectories and ctx.Err() is returned (the partial output must be
// discarded). onTrajectory, if non-nil, is invoked once per completed
// trajectory — possibly from worker goroutines — so callers can stream
// progress without wrapping the pool themselves.
func PartitionAllCtx(ctx context.Context, trs []geom.Trajectory, cfg Config, workers int, onTrajectory func()) ([][]geom.Segment, error) {
	out := make([][]geom.Segment, len(trs))
	scratch := make([]*Partitioner, par.Workers(workers, len(trs)))
	for w := range scratch {
		scratch[w] = NewPartitioner(cfg)
	}
	err := par.ForEachCtx(ctx, workers, len(trs), func(w, i int) {
		out[i] = scratch[w].Partition(trs[i])
		if onTrajectory != nil {
			onTrajectory()
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
