package mdl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLEncoding(t *testing.T) {
	if got := L(8); got != 3 {
		t.Errorf("L(8) = %v", got)
	}
	if got := L(1); got != 0 {
		t.Errorf("L(1) = %v", got)
	}
	if got := L(0.5); got != 0 {
		t.Errorf("L(0.5) = %v, want 0 (clamped)", got)
	}
	if got := L(0); got != 0 {
		t.Errorf("L(0) = %v", got)
	}
}

func TestMDLNoParIsSumOfSegmentLengths(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(8, 0), geom.Pt(8, 4)}
	want := math.Log2(8) + math.Log2(4)
	if got := MDLNoPar(pts, 0, 2); !approx(got, want, 1e-12) {
		t.Errorf("MDLNoPar = %v, want %v", got, want)
	}
}

func TestMDLParStraightLine(t *testing.T) {
	// On an exactly straight line L(D|H) vanishes, so MDLpar is just the
	// span length — cheaper than keeping both segments.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(8, 0), geom.Pt(16, 0)}
	if got, want := MDLPar(pts, 0, 2), math.Log2(16); !approx(got, want, 1e-12) {
		t.Errorf("MDLPar = %v, want %v", got, want)
	}
	if MDLPar(pts, 0, 2) >= MDLNoPar(pts, 0, 2) {
		t.Error("straight line should favour partitioning")
	}
}

func TestMDLParPenalisesDeviation(t *testing.T) {
	straight := []geom.Point{geom.Pt(0, 0), geom.Pt(50, 0), geom.Pt(100, 0)}
	bent := []geom.Point{geom.Pt(0, 0), geom.Pt(50, 40), geom.Pt(100, 0)}
	if MDLPar(bent, 0, 2) <= MDLPar(straight, 0, 2) {
		t.Error("deviation should raise MDLpar")
	}
}

func TestApproximatePartitionTrivialInputs(t *testing.T) {
	if got := ApproximatePartition(nil, Config{}); got != nil {
		t.Errorf("nil input = %v", got)
	}
	one := []geom.Point{geom.Pt(0, 0)}
	if got := ApproximatePartition(one, Config{}); len(got) != 1 || got[0] != 0 {
		t.Errorf("one point = %v", got)
	}
	two := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}
	if got := ApproximatePartition(two, Config{}); len(got) != 2 {
		t.Errorf("two points = %v", got)
	}
}

func TestApproximatePartitionStraightLine(t *testing.T) {
	var pts []geom.Point
	for i := 0; i <= 20; i++ {
		pts = append(pts, geom.Pt(float64(i)*10, 0))
	}
	got := ApproximatePartition(pts, Config{})
	if len(got) != 2 || got[0] != 0 || got[1] != 20 {
		t.Errorf("straight line partition = %v, want [0 20]", got)
	}
}

func TestApproximatePartitionRightAngle(t *testing.T) {
	var pts []geom.Point
	for i := 0; i <= 10; i++ {
		pts = append(pts, geom.Pt(float64(i)*20, 0))
	}
	for i := 1; i <= 10; i++ {
		pts = append(pts, geom.Pt(200, float64(i)*20))
	}
	got := ApproximatePartition(pts, Config{})
	// Must include a characteristic point at or next to the corner
	// (index 10); the paper's algorithm partitions at the previous point,
	// so accept 9..11.
	found := false
	for _, cp := range got {
		if cp >= 9 && cp <= 11 {
			found = true
		}
	}
	if !found {
		t.Errorf("no characteristic point near the corner: %v", got)
	}
	if len(got) > 5 {
		t.Errorf("too many characteristic points for two straight legs: %v", got)
	}
}

func TestApproximatePartitionEndpointsAlwaysIncluded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(40)
		pts := randomWalk(rng, n)
		got := ApproximatePartition(pts, Config{CostAdvantage: rng.Float64() * 10})
		if got[0] != 0 || got[len(got)-1] != n-1 {
			t.Fatalf("endpoints missing: %v (n=%d)", got, n)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("not strictly increasing: %v", got)
			}
		}
	}
}

func TestCostAdvantageSuppressesPartitioning(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomWalk(rng, 200)
	prev := len(ApproximatePartition(pts, Config{}))
	for _, ca := range []float64{2, 5, 10, 20} {
		cur := len(ApproximatePartition(pts, Config{CostAdvantage: ca}))
		if cur > prev {
			t.Errorf("CostAdvantage %v increased partitions: %d > %d", ca, cur, prev)
		}
		prev = cur
	}
	if prev >= len(ApproximatePartition(pts, Config{})) {
		t.Error("large CostAdvantage had no effect")
	}
}

func TestOptimalPartitionMatchesBruteForce(t *testing.T) {
	// For small n the exact optimum can be checked against exhaustive
	// enumeration of all characteristic-point subsets.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(5) // 4..8 points
		pts := randomWalk(rng, n)
		got := OptimalPartition(pts)
		gotCost := PartitionCost(pts, got)
		bestCost := math.Inf(1)
		// Enumerate subsets of interior points.
		interior := n - 2
		for mask := 0; mask < 1<<interior; mask++ {
			cps := []int{0}
			for b := 0; b < interior; b++ {
				if mask&(1<<b) != 0 {
					cps = append(cps, b+1)
				}
			}
			cps = append(cps, n-1)
			if c := PartitionCost(pts, cps); c < bestCost {
				bestCost = c
			}
		}
		if !approx(gotCost, bestCost, 1e-9) {
			t.Fatalf("trial %d: DP cost %v != brute force %v (cps=%v)", trial, gotCost, bestCost, got)
		}
	}
}

func TestOptimalNeverWorseThanApproximate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		pts := randomWalk(rng, 5+rng.Intn(30))
		opt := PartitionCost(pts, OptimalPartition(pts))
		apx := PartitionCost(pts, ApproximatePartition(pts, Config{}))
		if opt > apx+1e-9 {
			t.Fatalf("optimal %v worse than approximate %v", opt, apx)
		}
	}
}

func TestPrecision(t *testing.T) {
	if got := Precision([]int{0, 2, 5}, []int{0, 2, 4, 5}); !approx(got, 1, 1e-12) {
		t.Errorf("Precision = %v", got)
	}
	if got := Precision([]int{0, 1, 5}, []int{0, 5}); !approx(got, 2.0/3, 1e-12) {
		t.Errorf("Precision = %v", got)
	}
	if got := Precision(nil, []int{0}); got != 0 {
		t.Errorf("Precision of empty = %v", got)
	}
}

func TestShiftInvarianceProperty(t *testing.T) {
	// Section 3.2 / Appendix C: the length-based formulation must produce
	// identical partitions for shifted copies.
	f := func(seed int64, dx, dy float64) bool {
		if math.IsNaN(dx) || math.IsNaN(dy) || math.Abs(dx) > 1e5 || math.Abs(dy) > 1e5 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		pts := randomWalk(rng, 30)
		shifted := make([]geom.Point, len(pts))
		for i, p := range pts {
			shifted[i] = p.Add(geom.Pt(dx, dy))
		}
		a := ApproximatePartition(pts, Config{})
		b := ApproximatePartition(shifted, Config{})
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEndpointLHNotShiftInvariant(t *testing.T) {
	// The Appendix C counter-example: the rejected endpoint-based L(H)
	// cost grows under shifting.
	pts := []geom.Point{geom.Pt(100, 100), geom.Pt(200, 200), geom.Pt(300, 100)}
	shifted := []geom.Point{geom.Pt(10100, 10100), geom.Pt(10200, 10200), geom.Pt(10300, 10100)}
	if MDLParEndpointLH(pts, 0, 2) >= MDLParEndpointLH(shifted, 0, 2) {
		t.Error("endpoint L(H) should grow with coordinates")
	}
	if MDLNoParEndpointLH(pts, 0, 2) >= MDLNoParEndpointLH(shifted, 0, 2) {
		t.Error("endpoint no-par cost should grow with coordinates")
	}
}

func TestApproximatePartitionEndpointLHStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomWalk(rng, 40)
	got := ApproximatePartitionEndpointLH(pts, Config{})
	if got[0] != 0 || got[len(got)-1] != len(pts)-1 {
		t.Errorf("endpoints missing: %v", got)
	}
	if got := ApproximatePartitionEndpointLH(nil, Config{}); got != nil {
		t.Errorf("nil input = %v", got)
	}
	if got := ApproximatePartitionEndpointLH(pts[:2], Config{}); len(got) != 2 {
		t.Errorf("two points = %v", got)
	}
}

func TestPartitionSegments(t *testing.T) {
	tr := geom.NewTrajectory(7, []geom.Point{
		geom.Pt(0, 0), geom.Pt(0, 0), // duplicate to exercise dedup
		geom.Pt(100, 0), geom.Pt(200, 0),
	})
	segs := Partition(tr, Config{})
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	for _, s := range segs {
		if s.IsDegenerate() {
			t.Errorf("degenerate segment %v survived", s)
		}
	}
}

func TestPartitionMinLength(t *testing.T) {
	tr := geom.NewTrajectory(1, []geom.Point{
		geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(5, 10), geom.Pt(200, 10),
	})
	all := Partition(tr, Config{})
	filtered := Partition(tr, Config{MinLength: 50})
	if len(filtered) >= len(all) {
		t.Skipf("partitioning produced no short segments to filter (all=%d)", len(all))
	}
	for _, s := range filtered {
		if s.Length() < 50 {
			t.Errorf("segment of length %v below MinLength survived", s.Length())
		}
	}
}

func TestPartitionTooShort(t *testing.T) {
	if got := Partition(geom.NewTrajectory(1, []geom.Point{geom.Pt(0, 0)}), Config{}); got != nil {
		t.Errorf("single-point trajectory = %v", got)
	}
	// All duplicate points dedup to one → nil.
	tr := geom.NewTrajectory(1, []geom.Point{geom.Pt(3, 3), geom.Pt(3, 3), geom.Pt(3, 3)})
	if got := Partition(tr, Config{}); got != nil {
		t.Errorf("all-duplicates trajectory = %v", got)
	}
}

func TestPartitionCostAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randomWalk(rng, 20)
	full := PartitionCost(pts, []int{0, 10, 19})
	want := MDLPar(pts, 0, 10) + MDLPar(pts, 10, 19)
	if !approx(full, want, 1e-12) {
		t.Errorf("PartitionCost = %v, want %v", full, want)
	}
}

func randomWalk(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	x, y := 0.0, 0.0
	heading := rng.Float64() * 2 * math.Pi
	for i := range pts {
		if rng.Float64() < 0.25 {
			heading += (rng.Float64() - 0.5) * 2
		}
		x += 10 * math.Cos(heading)
		y += 10 * math.Sin(heading)
		pts[i] = geom.Pt(x, y)
	}
	return pts
}
