package mdl

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/geom"
)

// randomTrajectories builds trajectories of varying length, with occasional
// duplicated points so the Partitioner's dedup scratch is exercised.
func randomTrajectories(seed int64, n int) []geom.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	trs := make([]geom.Trajectory, n)
	for i := range trs {
		m := 2 + rng.Intn(60)
		pts := make([]geom.Point, 0, m)
		x, y, heading := rng.Float64()*100, rng.Float64()*100, rng.Float64()*6
		for j := 0; j < m; j++ {
			if rng.Float64() < 0.15 {
				heading += (rng.Float64() - 0.5) * 2
			}
			x += 10 * rng.Float64()
			y += 10 * (rng.Float64() - 0.5) * heading
			pts = append(pts, geom.Pt(x, y))
			if rng.Float64() < 0.1 { // duplicate fix
				pts = append(pts, geom.Pt(x, y))
			}
		}
		trs[i] = geom.NewTrajectory(i, pts)
	}
	return trs
}

func TestPartitionAllMatchesSerialPartition(t *testing.T) {
	trs := randomTrajectories(7, 80)
	cfg := Config{CostAdvantage: 3, MinLength: 5}
	want := make([][]geom.Segment, len(trs))
	for i := range trs {
		want[i] = Partition(trs[i], cfg)
	}
	for _, workers := range []int{1, 2, 7, 0} {
		got := PartitionAll(trs, cfg, workers)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: PartitionAll differs from serial Partition", workers)
		}
	}
}

// TestPartitionerScratchReuse runs one Partitioner over many trajectories
// and checks each result against a fresh partitioning — stale scratch
// contents must never leak into a later trajectory's output.
func TestPartitionerScratchReuse(t *testing.T) {
	trs := randomTrajectories(8, 40)
	cfg := Config{MinLength: 2}
	p := NewPartitioner(cfg)
	for i, tr := range trs {
		got := p.Partition(tr)
		want := NewPartitioner(cfg).Partition(tr)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trajectory %d: reused Partitioner gave %v, fresh gave %v", i, got, want)
		}
	}
}

func TestPartitionAllEmptyAndDegenerate(t *testing.T) {
	if got := PartitionAll(nil, Config{}, 4); len(got) != 0 {
		t.Errorf("PartitionAll(nil) = %v", got)
	}
	trs := []geom.Trajectory{
		geom.NewTrajectory(0, nil),
		geom.NewTrajectory(1, []geom.Point{geom.Pt(1, 1)}),
		geom.NewTrajectory(2, []geom.Point{geom.Pt(1, 1), geom.Pt(1, 1)}), // dedups to one point
		geom.NewTrajectory(3, []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}),
	}
	got := PartitionAll(trs, Config{}, 2)
	for i := 0; i < 3; i++ {
		if got[i] != nil {
			t.Errorf("trajectory %d: want nil segments, got %v", i, got[i])
		}
	}
	if len(got[3]) != 1 {
		t.Errorf("trajectory 3: want 1 segment, got %v", got[3])
	}
}

// TestPartitionAllCtx pins the ctx-aware variant: uncancelled it matches
// PartitionAll exactly and ticks once per trajectory; pre-cancelled it
// returns ctx.Err() and nothing else.
func TestPartitionAllCtx(t *testing.T) {
	trs := randomTrajectories(7, 80)
	cfg := Config{CostAdvantage: 5}
	want := PartitionAll(trs, cfg, 1)
	var ticks atomic.Int64
	got, err := PartitionAllCtx(context.Background(), trs, cfg, 4, func() { ticks.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("PartitionAllCtx differs from PartitionAll")
	}
	if ticks.Load() != int64(len(trs)) {
		t.Errorf("ticked %d times, want %d", ticks.Load(), len(trs))
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := PartitionAllCtx(ctx, trs, cfg, 4, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Error("cancelled PartitionAllCtx returned output")
	}
}
