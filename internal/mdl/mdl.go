// Package mdl implements TRACLUS trajectory partitioning (Section 3 of the
// paper): choosing the characteristic points where a trajectory's behaviour
// changes rapidly, by minimum description length (MDL) optimisation.
//
// The MDL cost of a candidate partitioning is L(H) + L(D|H):
//
//	L(H)   = Σ log2(len(p_cj p_cj+1))                          (Formula 6)
//	L(D|H) = Σ Σ log2(d⊥(partition, inner)) + log2(dθ(...))    (Formula 7)
//
// The package provides the paper's O(n) approximate algorithm (Figure 8), an
// exact optimum via dynamic programming (the total cost is additive over
// consecutive characteristic-point pairs, so "every subset" reduces to a
// shortest path in a DAG), and the precision measure used to substantiate
// the paper's "about 80 % on average" claim (Section 3.3).
package mdl

import (
	"math"

	"repro/internal/geom"
	"repro/internal/lsdist"
)

// Config controls partitioning.
type Config struct {
	// CostAdvantage is added to costnopar in the partitioning test
	// (Figure 8 line 6 as amended by Section 4.1.3): a positive value
	// suppresses partitioning and lengthens trajectory partitions, which
	// the paper reports improves clustering quality when partitions grow
	// by 20–30 %. Zero reproduces Figure 8 exactly.
	CostAdvantage float64
	// MinLength drops partitions shorter than this (degenerate segments
	// from repeated telemetry fixes). Zero keeps everything non-degenerate.
	MinLength float64
}

// DefaultConfig returns the paper's unmodified Figure-8 behaviour.
func DefaultConfig() Config { return Config{} }

// L encodes a non-negative real length or distance in bits under the
// paper's precision assumption δ = 1: L(x) = log2 x for x ≥ 1. Values
// below 1 encode in zero bits (the encoding argument assumes x large; we
// clamp so costs stay non-negative and monotone).
func L(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}

// MDLPar is the MDL cost of the trajectory stretch between points i and j
// assuming pi and pj are the only characteristic points: the description
// length of the single partition segment plus the encoding of every inner
// segment relative to it. Perpendicular and angle distances are used; the
// parallel distance is excluded because a trajectory encloses its
// partitions.
func MDLPar(pts []geom.Point, i, j int) float64 {
	part := geom.Segment{Start: pts[i], End: pts[j]}
	cost := L(part.Length())
	for k := i; k < j; k++ {
		inner := geom.Segment{Start: pts[k], End: pts[k+1]}
		dp, _, da := lsdist.Components(part, inner)
		cost += L(dp) + L(da)
	}
	return cost
}

// MDLNoPar is the MDL cost of keeping the original trajectory between pi
// and pj: the description lengths of the raw segments, with L(D|H) = 0.
func MDLNoPar(pts []geom.Point, i, j int) float64 {
	var cost float64
	for k := i; k < j; k++ {
		cost += L(pts[k].Dist(pts[k+1]))
	}
	return cost
}

// ApproximatePartition runs the paper's O(n) algorithm (Figure 8) and
// returns the indices of the chosen characteristic points, always including
// the first and last point. Trajectories with fewer than two points return
// all indices unchanged.
func ApproximatePartition(pts []geom.Point, cfg Config) []int {
	return appendApproximatePartition(nil, pts, cfg)
}

// appendApproximatePartition is ApproximatePartition writing into a caller
// supplied buffer (typically a Partitioner's scratch, reset to length zero),
// so repeated partitioning allocates nothing beyond buffer growth.
func appendApproximatePartition(cps []int, pts []geom.Point, cfg Config) []int {
	n := len(pts)
	if n == 0 {
		return cps
	}
	if n <= 2 {
		for i := 0; i < n; i++ {
			cps = append(cps, i)
		}
		return cps
	}
	cps = append(cps, 0)
	startIndex, length := 0, 1
	for startIndex+length < n {
		currIndex := startIndex + length
		costPar := MDLPar(pts, startIndex, currIndex)
		costNoPar := MDLNoPar(pts, startIndex, currIndex)
		if costPar > costNoPar+cfg.CostAdvantage {
			// Partition at the previous point and restart from it.
			cps = append(cps, currIndex-1)
			startIndex = currIndex - 1
			length = 1
		} else {
			length++
		}
	}
	if cps[len(cps)-1] != n-1 {
		cps = append(cps, n-1)
	}
	return cps
}

// OptimalPartition returns the characteristic points minimising the total
// MDL cost exactly. The total cost of a partitioning {c1..cm} is
// Σ MDLPar(c_k, c_k+1), which is additive over consecutive pairs, so the
// optimum is the shortest path from 0 to n-1 in the DAG whose edge (i,j)
// costs MDLPar(i,j). O(n³) time — intended for evaluation, not production.
func OptimalPartition(pts []geom.Point) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	if n <= 2 {
		cps := make([]int, n)
		for i := range cps {
			cps[i] = i
		}
		return cps
	}
	const inf = math.MaxFloat64
	dp := make([]float64, n)
	prev := make([]int, n)
	for i := 1; i < n; i++ {
		dp[i] = inf
		prev[i] = -1
	}
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if dp[i] == inf {
				continue
			}
			if c := dp[i] + MDLPar(pts, i, j); c < dp[j] {
				dp[j] = c
				prev[j] = i
			}
		}
	}
	// Reconstruct path n-1 -> 0.
	var rev []int
	for k := n - 1; k != -1; k = prev[k] {
		rev = append(rev, k)
		if k == 0 {
			break
		}
	}
	cps := make([]int, len(rev))
	for i, v := range rev {
		cps[len(rev)-1-i] = v
	}
	return cps
}

// PartitionCost returns the total MDL cost of a given set of characteristic
// point indices (which must be strictly increasing and bracket the
// trajectory).
func PartitionCost(pts []geom.Point, cps []int) float64 {
	var cost float64
	for i := 1; i < len(cps); i++ {
		cost += MDLPar(pts, cps[i-1], cps[i])
	}
	return cost
}

// Precision returns the fraction of approximate characteristic points that
// also appear in the exact solution — the measure behind the paper's
// "precision is about 80 % on average" (Section 3.3). Both sets include the
// trajectory endpoints; an empty approximation has precision 0.
func Precision(approx, exact []int) float64 {
	if len(approx) == 0 {
		return 0
	}
	in := make(map[int]bool, len(exact))
	for _, v := range exact {
		in[v] = true
	}
	hit := 0
	for _, v := range approx {
		if in[v] {
			hit++
		}
	}
	return float64(hit) / float64(len(approx))
}

// Partition applies ApproximatePartition to a trajectory and materialises
// the resulting trajectory partitions as segments, dropping degenerate or
// sub-MinLength pieces. The trajectory is deduplicated first so repeated
// fixes cannot yield zero-length partitions. For many trajectories prefer
// PartitionAll (or a reused Partitioner), which amortises scratch buffers.
func Partition(tr geom.Trajectory, cfg Config) []geom.Segment {
	return NewPartitioner(cfg).Partition(tr)
}
