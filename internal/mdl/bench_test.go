package mdl

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkApproximatePartition(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{50, 500, 5000} {
		pts := randomWalk(rng, n)
		b.Run(fmt.Sprintf("points=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ApproximatePartition(pts, Config{CostAdvantage: 5})
			}
		})
	}
}

func BenchmarkOptimalPartition(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{20, 60} {
		pts := randomWalk(rng, n)
		b.Run(fmt.Sprintf("points=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				OptimalPartition(pts)
			}
		})
	}
}

func BenchmarkMDLPar(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := randomWalk(rng, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MDLPar(pts, 0, 199)
	}
}
