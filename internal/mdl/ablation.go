package mdl

import (
	"math"

	"repro/internal/geom"
	"repro/internal/lsdist"
)

// This file contains the *rejected* design alternative the paper discusses
// when motivating the length-based L(H) (Section 3.2 and Appendix C): an
// L(H) that encodes the coordinate values of a partition's endpoints. It
// exists so the Appendix C experiment and the ablation benchmarks can show
// why the paper's formulation is the right one — the endpoint-based cost
// is not shift invariant, so identical shapes at different coordinates
// partition (and therefore cluster) differently.

// lCoord encodes one coordinate magnitude in bits (δ = 1, like L).
func lCoord(v float64) float64 {
	return L(math.Abs(v))
}

// LHEndpoints is the endpoint-coordinate hypothesis cost of a single
// partition p_i p_j: the encoded magnitudes of both endpoints' coordinates.
func LHEndpoints(pts []geom.Point, i, j int) float64 {
	return lCoord(pts[i].X) + lCoord(pts[i].Y) + lCoord(pts[j].X) + lCoord(pts[j].Y)
}

// MDLParEndpointLH is MDLPar with the endpoint-based L(H) substituted for
// the length-based one; L(D|H) is unchanged.
func MDLParEndpointLH(pts []geom.Point, i, j int) float64 {
	part := geom.Segment{Start: pts[i], End: pts[j]}
	cost := LHEndpoints(pts, i, j)
	for k := i; k < j; k++ {
		inner := geom.Segment{Start: pts[k], End: pts[k+1]}
		dp, _, da := lsdist.Components(part, inner)
		cost += L(dp) + L(da)
	}
	return cost
}

// MDLNoParEndpointLH is the corresponding no-partition cost: every raw
// point's coordinates are encoded.
func MDLNoParEndpointLH(pts []geom.Point, i, j int) float64 {
	var cost float64
	for k := i; k <= j; k++ {
		cost += lCoord(pts[k].X) + lCoord(pts[k].Y)
	}
	return cost
}

// ApproximatePartitionEndpointLH runs the Figure-8 algorithm with the
// endpoint-based costs — the ablation counterpart of
// ApproximatePartition.
func ApproximatePartitionEndpointLH(pts []geom.Point, cfg Config) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	if n <= 2 {
		cps := make([]int, n)
		for i := range cps {
			cps[i] = i
		}
		return cps
	}
	cps := []int{0}
	startIndex, length := 0, 1
	for startIndex+length < n {
		currIndex := startIndex + length
		costPar := MDLParEndpointLH(pts, startIndex, currIndex)
		costNoPar := MDLNoParEndpointLH(pts, startIndex, currIndex)
		if costPar > costNoPar+cfg.CostAdvantage {
			cps = append(cps, currIndex-1)
			startIndex = currIndex - 1
			length = 1
		} else {
			length++
		}
	}
	if cps[len(cps)-1] != n-1 {
		cps = append(cps, n-1)
	}
	return cps
}
