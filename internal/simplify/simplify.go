// Package simplify provides classical trajectory-simplification baselines
// for the partitioning ablation: TRACLUS's MDL partitioning (Section 3) is,
// mechanically, a polyline simplification — so the natural question is what
// its information-theoretic criterion buys over the textbook alternatives.
// This package implements those alternatives:
//
//   - DouglasPeucker: the classic ε-tolerance simplifier (keep the point of
//     maximum deviation, recurse);
//   - Uniform: keep every k-th point;
//   - TopAngle: keep the k points with the sharpest turning angles.
//
// All return characteristic-point index sets in the same shape as
// mdl.ApproximatePartition, so the clustering pipeline can run on top of
// any of them (see experiments.PartitionAblation).
package simplify

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// DouglasPeucker returns the indices kept by the Douglas–Peucker algorithm
// with the given perpendicular tolerance. Endpoints are always kept.
func DouglasPeucker(pts []geom.Point, tol float64) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	if n <= 2 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	keep := make([]bool, n)
	keep[0], keep[n-1] = true, true
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		seg := geom.Segment{Start: pts[lo], End: pts[hi]}
		worst, worstD := -1, tol
		for i := lo + 1; i < hi; i++ {
			if d := seg.DistToPoint(pts[i]); d > worstD {
				worst, worstD = i, d
			}
		}
		if worst >= 0 {
			keep[worst] = true
			rec(lo, worst)
			rec(worst, hi)
		}
	}
	rec(0, n-1)
	var out []int
	for i, k := range keep {
		if k {
			out = append(out, i)
		}
	}
	return out
}

// Uniform keeps every stride-th point plus both endpoints. stride < 1 is
// treated as 1 (keep everything).
func Uniform(pts []geom.Point, stride int) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	if stride < 1 {
		stride = 1
	}
	var out []int
	for i := 0; i < n; i += stride {
		out = append(out, i)
	}
	if out[len(out)-1] != n-1 {
		out = append(out, n-1)
	}
	return out
}

// TopAngle keeps the k interior points with the largest turning angles,
// plus the endpoints. k ≤ 0 keeps only the endpoints.
func TopAngle(pts []geom.Point, k int) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	if n <= 2 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	type cand struct {
		idx   int
		angle float64
	}
	cands := make([]cand, 0, n-2)
	for i := 1; i < n-1; i++ {
		in := geom.Segment{Start: pts[i-1], End: pts[i]}
		out := geom.Segment{Start: pts[i], End: pts[i+1]}
		cands = append(cands, cand{idx: i, angle: in.Angle(out)})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].angle > cands[b].angle })
	if k > len(cands) {
		k = len(cands)
	}
	chosen := map[int]bool{0: true, n - 1: true}
	for i := 0; i < k; i++ {
		chosen[cands[i].idx] = true
	}
	out := make([]int, 0, len(chosen))
	for i := 0; i < n; i++ {
		if chosen[i] {
			out = append(out, i)
		}
	}
	return out
}

// MaxDeviation returns the largest perpendicular distance from any original
// point to its covering simplified segment — the preciseness the paper's
// L(D|H) measures, in raw geometric form.
func MaxDeviation(pts []geom.Point, cps []int) float64 {
	var worst float64
	for i := 1; i < len(cps); i++ {
		seg := geom.Segment{Start: pts[cps[i-1]], End: pts[cps[i]]}
		for k := cps[i-1]; k <= cps[i]; k++ {
			if d := seg.DistToPoint(pts[k]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// CompressionRatio returns len(pts)/len(cps) — the conciseness side of the
// paper's trade-off. Returns +Inf for an empty simplification.
func CompressionRatio(pts []geom.Point, cps []int) float64 {
	if len(cps) == 0 {
		return math.Inf(1)
	}
	return float64(len(pts)) / float64(len(cps))
}
