package simplify

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func line(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(float64(i)*10, 0)
	}
	return pts
}

func TestDouglasPeuckerStraightLine(t *testing.T) {
	got := DouglasPeucker(line(50), 0.5)
	if len(got) != 2 || got[0] != 0 || got[1] != 49 {
		t.Errorf("straight line kept %v", got)
	}
}

func TestDouglasPeuckerKeepsCorner(t *testing.T) {
	pts := append(line(10), geom.Pt(90, 10), geom.Pt(90, 100))
	got := DouglasPeucker(pts, 1)
	found := false
	for _, i := range got {
		if i >= 9 && i <= 10 {
			found = true
		}
	}
	if !found {
		t.Errorf("corner dropped: %v", got)
	}
}

func TestDouglasPeuckerToleranceMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := wiggle(rng, 200)
	prev := len(DouglasPeucker(pts, 0.1))
	for _, tol := range []float64{1, 5, 20, 80} {
		cur := len(DouglasPeucker(pts, tol))
		if cur > prev {
			t.Errorf("tolerance %v kept more points (%d > %d)", tol, cur, prev)
		}
		prev = cur
	}
}

func TestDouglasPeuckerRespectsTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		pts := wiggle(rng, 100)
		tol := 1 + rng.Float64()*20
		cps := DouglasPeucker(pts, tol)
		if dev := MaxDeviation(pts, cps); dev > tol+1e-9 {
			t.Fatalf("deviation %v exceeds tolerance %v", dev, tol)
		}
	}
}

func TestDouglasPeuckerEdgeCases(t *testing.T) {
	if got := DouglasPeucker(nil, 1); got != nil {
		t.Errorf("nil = %v", got)
	}
	if got := DouglasPeucker(line(1), 1); len(got) != 1 {
		t.Errorf("single point = %v", got)
	}
	if got := DouglasPeucker(line(2), 1); len(got) != 2 {
		t.Errorf("two points = %v", got)
	}
}

func TestUniform(t *testing.T) {
	got := Uniform(line(10), 3)
	want := []int{0, 3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("Uniform = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Uniform = %v, want %v", got, want)
		}
	}
	// Endpoint always appended.
	got = Uniform(line(11), 3)
	if got[len(got)-1] != 10 {
		t.Errorf("endpoint missing: %v", got)
	}
	if got := Uniform(line(5), 0); len(got) != 5 {
		t.Errorf("stride 0 = %v", got)
	}
	if got := Uniform(nil, 2); got != nil {
		t.Errorf("nil = %v", got)
	}
}

func TestTopAngle(t *testing.T) {
	// A path with exactly two sharp corners.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(20, 0),
		geom.Pt(20, 10), geom.Pt(20, 20), // corner at idx 2
		geom.Pt(30, 20), geom.Pt(40, 20), // corner at idx 4
	}
	got := TopAngle(pts, 2)
	has := func(i int) bool {
		for _, v := range got {
			if v == i {
				return true
			}
		}
		return false
	}
	if !has(2) || !has(4) {
		t.Errorf("corners missed: %v", got)
	}
	if !has(0) || !has(len(pts)-1) {
		t.Errorf("endpoints missed: %v", got)
	}
	if got := TopAngle(pts, 0); len(got) != 2 {
		t.Errorf("k=0 = %v", got)
	}
	if got := TopAngle(line(2), 5); len(got) != 2 {
		t.Errorf("short input = %v", got)
	}
}

func TestMaxDeviation(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(50, 7), geom.Pt(100, 0)}
	if got := MaxDeviation(pts, []int{0, 2}); math.Abs(got-7) > 1e-9 {
		t.Errorf("MaxDeviation = %v, want 7", got)
	}
	if got := MaxDeviation(pts, []int{0, 1, 2}); got != 0 {
		t.Errorf("full keep deviation = %v", got)
	}
}

func TestCompressionRatio(t *testing.T) {
	if got := CompressionRatio(line(10), []int{0, 9}); got != 5 {
		t.Errorf("ratio = %v", got)
	}
	if got := CompressionRatio(line(10), nil); !math.IsInf(got, 1) {
		t.Errorf("empty ratio = %v", got)
	}
}

func wiggle(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	x, y := 0.0, 0.0
	heading := 0.0
	for i := range pts {
		if rng.Float64() < 0.15 {
			heading += (rng.Float64() - 0.5) * 2
		}
		x += 10 * math.Cos(heading)
		y += 10 * math.Sin(heading)
		pts[i] = geom.Pt(x+rng.NormFloat64()*2, y+rng.NormFloat64()*2)
	}
	return pts
}
