package service

// Model persistence: converting a served *Model to and from the versioned
// binary snapshot of internal/snapshot. The conversion is geometry-only —
// the classifier's spatial index is rebuilt on load — and classification-
// identical: FromSnapshot(m.Snapshot()) assigns every trajectory the exact
// cluster and distance m does, pinned by TestSnapshotClassifyIdentity.

import (
	"fmt"
	"regexp"
	"time"

	traclus "repro"
	"repro/internal/dendro"
	"repro/internal/lsdist"
	"repro/internal/snapshot"
)

// modelName is the shared model-name rule: filesystem- and URL-safe, 1–64
// chars, no separators. The daemon validates request names against it and
// DiskStore refuses to touch files outside it.
var modelName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidModelName reports whether name may identify a model: it is the
// daemon's request rule and the disk store's filename rule, so every
// accepted name is safe to embed in both a URL path and a filename.
func ValidModelName(name string) bool { return modelName.MatchString(name) }

// ModelNamePattern returns the name rule's regular expression, for error
// messages.
func ModelNamePattern() string { return modelName.String() }

// Snapshot returns the model's serializable snapshot, computing it at most
// once (models loaded from a snapshot return the retained one, so an
// export after import is byte-stable). The error is permanent for the
// model's lifetime — e.g. a classifier built on a plugged-in custom index
// backend has no backend name to serialize.
func (m *Model) Snapshot() (*snapshot.Model, error) {
	m.snapOnce.Do(func() {
		if m.snap == nil {
			m.snap, m.snapErr = m.buildSnapshot()
		}
	})
	return m.snap, m.snapErr
}

// EncodeSnapshot is Snapshot followed by the binary encoding — the bytes
// of GET /v1/models/{name}/snapshot.
func (m *Model) EncodeSnapshot() ([]byte, error) {
	sm, err := m.Snapshot()
	if err != nil {
		return nil, err
	}
	return snapshot.Encode(sm)
}

func (m *Model) buildSnapshot() (*snapshot.Model, error) {
	cfg := m.cfg
	w := cfg.Weights
	if (w == traclus.Weights{}) {
		// Serialize resolved weights: the distance the model actually used.
		w = lsdist.DefaultWeights()
	}
	sm := &snapshot.Model{
		Name: m.summary.Name,
		Config: snapshot.Config{
			Eps:              cfg.Eps,
			MinLns:           cfg.MinLns,
			MinTrajs:         cfg.MinTrajs,
			WPerp:            w.Perpendicular,
			WPar:             w.Parallel,
			WAngle:           w.Angle,
			Undirected:       cfg.Undirected,
			CostAdvantage:    cfg.CostAdvantage,
			MinSegmentLength: cfg.MinSegmentLength,
			Gamma:            cfg.Gamma,
			Index:            cfg.Index.String(),
		},
		Stats: snapshot.Stats{
			TotalSegments:   m.summary.TotalSegments,
			NoiseSegments:   m.summary.NoiseSegments,
			RemovedClusters: m.summary.RemovedClusters,
			Trajectories:    m.summary.Trajectories,
			Points:          m.summary.Points,
			QMeasure:        m.summary.QMeasure,
			BuiltAtUnixNano: m.summary.BuiltAt.UnixNano(),
			BuildDurationNS: int64(m.summary.BuildDuration),
		},
		// Format v4: the append epoch rides along so a restored replica
		// reports the same model version it was exported at.
		Epoch: m.summary.Epoch,
	}
	// The merge structure present at first export rides along as the format
	// v2 section. Lazily-grown dendrograms appearing after the memoized
	// snapshot is computed stay local — the export is a stable artifact, and
	// the importer can always rebuild a dendrogram from its own geometry.
	if d := m.Dendrogram(); d != nil {
		sm.Dendro = d.Snapshot()
	}
	// Format v3 geometry section: the resolved geometry (finishBuild folded
	// a geodesic run's frame into cfg) plus a spatiotemporal model's
	// per-cluster windows.
	g := cfg.Geometry
	sm.Geometry = g.Kind.String()
	sm.TemporalWeight = g.WT
	if g.Frame != nil {
		f := *g.Frame
		sm.Frame = &f
	}
	if g.Timed() && m.res != nil {
		sm.Windows = append([]traclus.Interval(nil), m.res.ClusterWindows()...)
	}
	cls, err := m.classifier()
	if err != nil {
		return nil, fmt.Errorf("service: snapshotting %q: %w", m.summary.Name, err)
	}
	if cls != nil {
		cs, err := cls.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("service: snapshotting %q: %w", m.summary.Name, err)
		}
		sm.Clusters = make([]snapshot.Cluster, len(m.summary.ClusterStats))
		for ci, stat := range m.summary.ClusterStats {
			sm.Clusters[ci] = snapshot.Cluster{
				Segments:       stat.Segments,
				Trajectories:   stat.Trajectories,
				SSE:            stat.SSE,
				Representative: m.res.Clusters[ci].Representative,
				Reference:      cs.Reference[ci],
			}
		}
	}
	return sm, nil
}

// FromSnapshot rebuilds a servable model from a decoded snapshot: the
// summary is reassembled from the stored statistics and the classifier is
// reconstructed over the stored reference geometry, with a fresh spatial
// index built by the named backend (exactly one spindex build). The
// returned model classifies bit-identically to the one that was saved; its
// Result() is nil. Errors are typed: an unparseable index name surfaces the
// *traclus.ConfigError.
func FromSnapshot(sm *snapshot.Model) (*Model, error) {
	kind, err := traclus.ParseIndexKind(sm.Config.Index)
	if err != nil {
		return nil, err
	}
	geo, err := traclus.ParseGeometry(sm.Geometry)
	if err != nil {
		return nil, err
	}
	geo.WT = sm.TemporalWeight
	if sm.Frame != nil {
		f := *sm.Frame
		geo.Frame = &f
	}
	c := sm.Config
	cfg := traclus.Config{
		Eps:              c.Eps,
		MinLns:           c.MinLns,
		MinTrajs:         c.MinTrajs,
		Weights:          traclus.Weights{Perpendicular: c.WPerp, Parallel: c.WPar, Angle: c.WAngle},
		Undirected:       c.Undirected,
		CostAdvantage:    c.CostAdvantage,
		MinSegmentLength: c.MinSegmentLength,
		Gamma:            c.Gamma,
		Geometry:         geo,
		Index:            kind,
	}
	m := &Model{
		cfg:  cfg,
		snap: sm,
		summary: Summary{
			Name:            sm.Name,
			Clusters:        len(sm.Clusters),
			TotalSegments:   sm.Stats.TotalSegments,
			NoiseSegments:   sm.Stats.NoiseSegments,
			RemovedClusters: sm.Stats.RemovedClusters,
			Trajectories:    sm.Stats.Trajectories,
			Points:          sm.Stats.Points,
			Eps:             c.Eps,
			MinLns:          c.MinLns,
			QMeasure:        sm.Stats.QMeasure,
			Geometry:        geo.Kind.String(),
			TemporalWeight:  geo.WT,
			Epoch:           sm.Epoch,
			BuiltAt:         time.Unix(0, sm.Stats.BuiltAtUnixNano).UTC(),
			BuildDuration:   time.Duration(sm.Stats.BuildDurationNS),
			ClusterStats:    make([]traclus.ClusterStat, len(sm.Clusters)),
		},
	}
	// Pre-seed the memoized snapshot so a later export returns the retained
	// one without running buildSnapshot (which needs the absent Result).
	m.snapOnce.Do(func() {})

	// Format v2 carries the multi-ε merge structure; v1 snapshots leave it
	// nil and sweep queries report ErrNoDendrogram (the stored reference
	// geometry alone cannot reproduce the training segment set).
	if sm.Dendro != nil {
		den, err := dendro.FromSnapshot(sm.Dendro)
		if err != nil {
			return nil, err
		}
		m.den = den
	}

	if len(sm.Clusters) > 0 {
		cs := traclus.ClassifierSnapshot{
			Eps:              c.Eps,
			CostAdvantage:    c.CostAdvantage,
			MinSegmentLength: c.MinSegmentLength,
			Weights:          cfg.Weights,
			Undirected:       c.Undirected,
			Index:            kind,
			Reference:        make([][]traclus.Segment, len(sm.Clusters)),
			Geometry:         geo.Kind.String(),
			TemporalWeight:   geo.WT,
			Frame:            geo.Frame,
			Windows:          sm.Windows,
		}
		for ci, cl := range sm.Clusters {
			cs.Reference[ci] = cl.Reference
			m.summary.ClusterStats[ci] = traclus.ClusterStat{
				Cluster:              ci,
				Segments:             cl.Segments,
				Trajectories:         cl.Trajectories,
				RepresentativePoints: len(cl.Representative),
				SSE:                  cl.SSE,
			}
		}
		if m.cls, err = traclus.NewClassifierFromSnapshot(cs); err != nil {
			return nil, fmt.Errorf("service: rebuilding classifier for %q: %w", sm.Name, err)
		}
	}
	return m, nil
}

// DecodeModel decodes snapshot bytes and rebuilds the model — the receive
// side of PUT /v1/models/{name}/snapshot and of every disk read-through.
// Decode errors stay typed (*snapshot.CorruptError, *snapshot.VersionError,
// *snapshot.InvalidError).
func DecodeModel(data []byte) (*Model, error) {
	sm, err := snapshot.Decode(data)
	if err != nil {
		return nil, err
	}
	return FromSnapshot(sm)
}
