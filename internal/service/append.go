package service

// Incremental model growth: Model.Append / Model.AppendTimed extend a
// served clustering with new trajectories in O(Δ) — the appender grows the
// model's one spatial index in place, clusters only the new segments
// against it, and re-derives the served state — instead of rebuilding from
// scratch. The appended model is a NEW *Model value at the next epoch; the
// *Model a caller already holds never changes, so in-flight reads keep
// their snapshot-consistent view (bounded staleness: a reader is at most as
// stale as the model pointer it resolved before the append).
//
// Versioning. Every epoch of one served model shares a lineage. Appends
// serialise on the lineage lock and always apply to the newest epoch, no
// matter which epoch's *Model the caller invoked Append on — the underlying
// appender state is shared, so applying "to an old epoch" cannot fork
// history; it fast-forwards. Summary().Epoch exposes the version:
// a fresh build is epoch 0, each append increments it, and the snapshot
// format (v4) persists it.
//
// Staleness of derived state. The appended model's dendrogram is
// invalidated, not extended: its den field starts nil and the first sweep
// query rebuilds it lazily over the post-append items (the stale-dendrogram
// regression test pins that a pre-append merge structure is never served at
// a later epoch). The classifier is rebuilt lazily for the same reason —
// and so the append path itself constructs zero spatial indexes.

import (
	"context"
	"errors"
	"sync"
	"time"

	traclus "repro"
)

// ErrNotAppendable reports an Append on a model that carries no training
// geometry to grow — one loaded from a snapshot, whose clustering state was
// deliberately not serialized. Rebuild the model from data to append to it.
var ErrNotAppendable = errors.New("service: model was loaded from a snapshot and cannot absorb appends; rebuild it from trajectories")

// lineage is the shared spine of one model's epochs: appends lock it,
// apply to head, and advance head to the new epoch.
type lineage struct {
	mu   sync.Mutex
	head *Model
}

// Epoch returns the model's append epoch (0 = the original batch build).
func (m *Model) Epoch() int64 { return m.summary.Epoch }

// Appendable reports whether this model can absorb appended trajectories.
func (m *Model) Appendable() bool { return m.ap != nil && m.lin != nil }

// Append extends the model with new trajectories and returns the model at
// the next epoch. The receiver (and every earlier epoch) is untouched and
// keeps serving its own consistent state; callers that want the new data
// visible must publish the returned model (the daemon swaps it into its
// store). Appending through an older epoch's handle fast-forwards from the
// newest epoch — the returned model always reflects every append so far.
//
// The clustering contract is exact: the returned model's clusters,
// representatives, and counters equal what a from-scratch build over the
// concatenated trajectory set would produce (pinned by the append
// equivalence suite). Geometry follows the build: a geodesic model projects
// the new trajectories through the frame resolved at build time; a model
// built with parameter estimation keeps its estimated ε/MinLns frozen.
func (m *Model) Append(ctx context.Context, trs []traclus.Trajectory) (*Model, error) {
	return m.appendWith(func() (*traclus.Result, error) { return m.ap.Append(ctx, trs) },
		len(trs), pointCount(trs))
}

// AppendTimed is Append for timed trajectories — the entry point for
// spatiotemporal models (and for timed planar models built through
// BuildTimed). The per-cluster time windows are recomputed over the full
// post-append item set.
func (m *Model) AppendTimed(ctx context.Context, trs []traclus.TimedTrajectory) (*Model, error) {
	n, pts := len(trs), 0
	for _, tr := range trs {
		pts += len(tr.Points)
	}
	return m.appendWith(func() (*traclus.Result, error) { return m.ap.AppendTimed(ctx, trs) }, n, pts)
}

// appendWith runs one append under the lineage lock and derives the
// next-epoch model from the head.
func (m *Model) appendWith(apply func() (*traclus.Result, error), trajectories, points int) (*Model, error) {
	if !m.Appendable() {
		return nil, ErrNotAppendable
	}
	m.lin.mu.Lock()
	defer m.lin.mu.Unlock()
	head := m.lin.head
	res, err := apply()
	if err != nil {
		return nil, err
	}
	next := head.nextEpoch(res, trajectories, points)
	m.lin.head = next
	return next, nil
}

// nextEpoch wraps the post-append clustering as the successor model of
// head. Called with the lineage locked.
func (head *Model) nextEpoch(res *traclus.Result, trajectories, points int) *Model {
	stats := res.ClusterStats()
	qmeasure := res.NoisePenalty()
	for _, st := range stats {
		qmeasure += st.SSE
	}
	next := &Model{
		res: res,
		// den deliberately nil: the pre-append dendrogram describes the old
		// item set, so the merge structure is invalidated and lazily rebuilt.
		ap:  head.ap,
		lin: head.lin,
		cfg: head.cfg,
	}
	next.summary = head.summary
	next.summary.Clusters = len(res.Clusters)
	next.summary.TotalSegments = res.TotalSegments
	next.summary.NoiseSegments = res.NoiseSegments
	next.summary.RemovedClusters = res.RemovedClusters
	next.summary.Trajectories = head.summary.Trajectories + trajectories
	next.summary.Points = head.summary.Points + points
	next.summary.QMeasure = qmeasure
	next.summary.Epoch = head.summary.Epoch + 1
	next.summary.BuiltAt = time.Now().UTC()
	next.summary.ClusterStats = stats
	// The classifier over the post-append reference segments is built on
	// first use — Append itself must construct zero spatial indexes.
	next.clsLazy = func() (*traclus.Classifier, error) {
		if len(res.Clusters) == 0 {
			return nil, nil
		}
		return res.Classifier()
	}
	return next
}

func pointCount(trs []traclus.Trajectory) int {
	points := 0
	for _, tr := range trs {
		points += len(tr.Points)
	}
	return points
}
