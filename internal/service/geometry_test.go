package service

// Snapshot round-trips under the non-planar geometries: a spatiotemporal
// model (geometry kind, wT, and per-cluster windows) and a geodesic model
// (the resolved projection frame) must restore from their snapshots and
// classify bit-identically to the in-memory originals — the same identity
// contract persist_test.go pins for planar models.

import (
	"context"
	"math"
	"strings"
	"testing"

	traclus "repro"
	"repro/internal/synth"
)

func timedTrainingSet() []traclus.TimedTrajectory {
	// Spatial twin of trainingSet(); 60 s headway keeps the windows
	// overlapping enough that the corridors still cluster at Eps=30.
	return synth.TimedCorridorScene(2, 10, 24, 4, 11, 60, 10)
}

func timedProbeSet() []traclus.TimedTrajectory {
	return synth.TimedCorridorScene(2, 6, 20, 4, 17, 60, 10)
}

func sameAssignments(t *testing.T, label string, want, got []Assignment) {
	t.Helper()
	for i := range want {
		if got[i].Cluster != want[i].Cluster ||
			math.Float64bits(got[i].Distance) != math.Float64bits(want[i].Distance) ||
			got[i].Err != want[i].Err {
			t.Fatalf("%s probe %d: loaded model classified (%d, %x, %q), original (%d, %x, %q)",
				label, i,
				got[i].Cluster, math.Float64bits(got[i].Distance), got[i].Err,
				want[i].Cluster, math.Float64bits(want[i].Distance), want[i].Err)
		}
	}
}

// TestTimedSnapshotClassifyIdentity: BuildTimed → snapshot → restore →
// ClassifyTimedBatch is bit-identical across backends and worker counts,
// and the restored summary still says spatiotemporal.
func TestTimedSnapshotClassifyIdentity(t *testing.T) {
	probes := timedProbeSet()
	for _, kind := range []traclus.IndexKind{traclus.IndexGrid, traclus.IndexRTree, traclus.IndexNone} {
		cfg := buildConfig()
		cfg.Index = kind
		cfg.Geometry = traclus.SpatiotemporalGeometry(0.02)
		m, err := BuildTimed("st-identity-"+kind.String(), timedTrainingSet(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if s := m.Summary(); s.Geometry != "spatiotemporal" || s.TemporalWeight != 0.02 {
			t.Fatalf("%v: built summary geometry %q wt %v", kind, s.Geometry, s.TemporalWeight)
		}
		data, err := m.EncodeSnapshot()
		if err != nil {
			t.Fatalf("%v: encode: %v", kind, err)
		}
		loaded, err := DecodeModel(data)
		if err != nil {
			t.Fatalf("%v: decode: %v", kind, err)
		}
		if s := loaded.Summary(); s.Geometry != "spatiotemporal" || s.TemporalWeight != 0.02 {
			t.Fatalf("%v: loaded summary geometry %q wt %v", kind, s.Geometry, s.TemporalWeight)
		}
		// Spatial classification against a timed model stays a typed error
		// after the round trip.
		if _, _, err := loaded.Classify(probes[0].Spatial()); err != traclus.ErrTimedModel {
			t.Fatalf("%v: Classify on restored timed model: %v, want ErrTimedModel", kind, err)
		}
		for _, workers := range []int{1, 2, 4, 0} {
			want := m.ClassifyTimedBatch(context.Background(), probes, workers)
			got := loaded.ClassifyTimedBatch(context.Background(), probes, workers)
			sameAssignments(t, kind.String(), want, got)
		}
		// Re-export returns the retained bytes, same as the planar contract.
		re, err := loaded.EncodeSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		if string(re) != string(data) {
			t.Fatalf("%v: re-export differs: %d vs %d bytes", kind, len(re), len(data))
		}
	}
}

// TestGeodesicSnapshotClassifyIdentity: a geodesic model snapshots its
// resolved frame, and the restored model projects lat/lon probes through
// that exact frame — classification is bit-identical.
func TestGeodesicSnapshotClassifyIdentity(t *testing.T) {
	cfg := traclus.Config{Eps: 150, MinLns: 5, MinSegmentLength: 100}
	cfg.Geometry = traclus.GeodesicGeometry()
	m, err := Build("gps-identity", synth.GPSTracks(3, 8, 25, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Summary().Geometry != "geodesic" {
		t.Fatalf("summary geometry %q", m.Summary().Geometry)
	}
	if m.Config().Geometry.Frame == nil {
		t.Fatal("built geodesic model carries no resolved frame")
	}
	data, err := m.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	gf, lf := m.Config().Geometry.Frame, loaded.Config().Geometry.Frame
	if lf == nil || *lf != *gf {
		t.Fatalf("frame not persisted: built %+v, loaded %+v", gf, lf)
	}
	// Probes in raw lat/lon degrees — a different seed than training.
	probes := synth.GPSTracks(3, 4, 18, 23)
	for _, workers := range []int{1, 2, 4, 0} {
		want := m.ClassifyBatch(context.Background(), probes, workers)
		got := loaded.ClassifyBatch(context.Background(), probes, workers)
		sameAssignments(t, "geodesic", want, got)
		for i := range want {
			if want[i].Err == "" && want[i].Cluster < 0 {
				t.Fatalf("probe %d fell to noise; scene no longer exercises classification", i)
			}
		}
	}
	// Timed classification against a geodesic model is a clear error.
	if _, _, err := loaded.ClassifyTimed(timedProbeSet()[0]); err == nil ||
		!strings.Contains(err.Error(), "geodesic") {
		t.Fatalf("ClassifyTimed on geodesic model: %v", err)
	}
}
