package service

import (
	"fmt"
	"sync"
	"time"
)

// JobState is the lifecycle of an asynchronous build job.
type JobState string

// Job lifecycle states.
const (
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job describes one asynchronous model build. The daemon returns its ID
// from POST /models and clients poll GET /jobs/{id} until the state leaves
// JobRunning.
type Job struct {
	ID    string   `json:"id"`
	Model string   `json:"model"`
	State JobState `json:"state"`
	Error string   `json:"error,omitempty"`
	Note  string   `json:"note,omitempty"` // e.g. deduplicated into another build
	// Finished is nil while the job runs (omitempty has no effect on
	// struct values, so a pointer keeps running jobs free of a bogus
	// zero timestamp).
	Started  time.Time  `json:"started"`
	Finished *time.Time `json:"finished,omitempty"`
}

// Jobs is a concurrent registry of build jobs. Finished jobs are retained
// only up to a cap (oldest evicted first), so a long-running daemon does
// not leak one entry per build forever; running jobs are never evicted.
type Jobs struct {
	mu       sync.Mutex
	seq      int
	jobs     map[string]*Job
	keep     int
	finished []string // terminal-state job ids, oldest first
}

// defaultKeepFinished bounds the finished-job history of NewJobs.
const defaultKeepFinished = 256

// NewJobs creates an empty registry retaining the most recent
// defaultKeepFinished finished jobs.
func NewJobs() *Jobs {
	return &Jobs{jobs: map[string]*Job{}, keep: defaultKeepFinished}
}

// Start registers a job for the named model and runs fn on a new goroutine,
// transitioning the job to JobDone or JobFailed when fn returns; a non-empty
// note is recorded on the finished job (e.g. that the build was
// deduplicated into a concurrent one). The returned snapshot carries the
// assigned ID.
func (j *Jobs) Start(model string, fn func() (note string, err error)) Job {
	j.mu.Lock()
	j.seq++
	job := &Job{
		ID:      fmt.Sprintf("job-%d", j.seq),
		Model:   model,
		State:   JobRunning,
		Started: time.Now().UTC(),
	}
	j.jobs[job.ID] = job
	snap := *job
	j.mu.Unlock()

	go func() {
		note, err := fn()
		j.mu.Lock()
		defer j.mu.Unlock()
		now := time.Now().UTC()
		job.Finished = &now
		job.Note = note
		if err != nil {
			job.State = JobFailed
			job.Error = err.Error()
		} else {
			job.State = JobDone
		}
		j.finished = append(j.finished, job.ID)
		for j.keep > 0 && len(j.finished) > j.keep {
			delete(j.jobs, j.finished[0])
			j.finished = j.finished[1:]
		}
	}()
	return snap
}

// Get returns a snapshot of the identified job.
func (j *Jobs) Get(id string) (Job, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	job, ok := j.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *job, true
}

// Len returns the number of registered jobs (all states).
func (j *Jobs) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.jobs)
}
