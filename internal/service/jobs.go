package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// JobState is the lifecycle of an asynchronous build job.
type JobState string

// Job lifecycle states.
const (
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Job describes one asynchronous model build. The daemon returns its ID
// from POST /models and clients poll GET /jobs/{id} until the state leaves
// JobRunning. A running job reports live progress (Phase + Progress, fed by
// the pipeline's progress stream) and can be cancelled, which transitions
// it to JobCancelled rather than JobFailed so clients can tell an aborted
// build from a broken one.
type Job struct {
	ID    string   `json:"id"`
	Model string   `json:"model"`
	State JobState `json:"state"`
	Error string   `json:"error,omitempty"`
	Note  string   `json:"note,omitempty"` // e.g. deduplicated into another build
	// Phase and Progress are the build's live position: the current
	// pipeline phase (partition | group | represent) and the completed
	// fraction of that phase in [0, 1]. Both are zero before the first
	// progress report and frozen at their last values once the job ends.
	Phase    string  `json:"phase,omitempty"`
	Progress float64 `json:"progress"`
	// Finished is nil while the job runs (omitempty has no effect on
	// struct values, so a pointer keeps running jobs free of a bogus
	// zero timestamp).
	Started  time.Time  `json:"started"`
	Finished *time.Time `json:"finished,omitempty"`
}

// Jobs is a concurrent registry of build jobs. Finished jobs are retained
// only up to a cap (oldest evicted first), so a long-running daemon does
// not leak one entry per build forever; running jobs are never evicted.
type Jobs struct {
	mu       sync.Mutex
	seq      int
	jobs     map[string]*Job
	cancels  map[string]context.CancelFunc // running jobs only
	keep     int
	finished []string // terminal-state job ids, oldest first
}

// defaultKeepFinished bounds the finished-job history of NewJobs.
const defaultKeepFinished = 256

// NewJobs creates an empty registry retaining the most recent
// defaultKeepFinished finished jobs.
func NewJobs() *Jobs {
	return &Jobs{
		jobs:    map[string]*Job{},
		cancels: map[string]context.CancelFunc{},
		keep:    defaultKeepFinished,
	}
}

// Start registers a job for the named model and runs fn on a new goroutine
// under a context derived from ctx that Cancel (or CancelModel) aborts. fn
// receives an update callback for live progress (safe to call from any
// goroutine; nil-tolerant inputs are not required — Start supplies it).
// When fn returns, the job transitions to JobDone, JobCancelled (fn's error
// wraps context.Canceled), or JobFailed; a non-empty note is recorded on
// the finished job (e.g. that the build was deduplicated into a concurrent
// one). The returned snapshot carries the assigned ID.
func (j *Jobs) Start(ctx context.Context, model string, fn func(ctx context.Context, update func(phase string, fraction float64)) (note string, err error)) Job {
	ctx, cancel := context.WithCancel(ctx)
	j.mu.Lock()
	j.seq++
	job := &Job{
		ID:      fmt.Sprintf("job-%d", j.seq),
		Model:   model,
		State:   JobRunning,
		Started: time.Now().UTC(),
	}
	j.jobs[job.ID] = job
	j.cancels[job.ID] = cancel
	snap := *job
	j.mu.Unlock()

	update := func(phase string, fraction float64) {
		j.mu.Lock()
		defer j.mu.Unlock()
		if job.State != JobRunning {
			return // a late report must not mutate a terminal job
		}
		job.Phase, job.Progress = phase, fraction
	}

	go func() {
		defer cancel() // release the context once the job is over
		note, err := fn(ctx, update)
		j.mu.Lock()
		defer j.mu.Unlock()
		now := time.Now().UTC()
		job.Finished = &now
		job.Note = note
		switch {
		case err == nil:
			job.State = JobDone
		case errors.Is(err, context.Canceled):
			job.State = JobCancelled
			job.Error = err.Error()
		default:
			job.State = JobFailed
			job.Error = err.Error()
		}
		delete(j.cancels, job.ID)
		j.finished = append(j.finished, job.ID)
		for j.keep > 0 && len(j.finished) > j.keep {
			delete(j.jobs, j.finished[0])
			j.finished = j.finished[1:]
		}
	}()
	return snap
}

// Cancel aborts the identified job's context. It reports whether a running
// job was signalled; the job itself transitions to JobCancelled only when
// its build function observes the cancellation and returns.
func (j *Jobs) Cancel(id string) bool {
	j.mu.Lock()
	cancel, ok := j.cancels[id]
	j.mu.Unlock()
	if ok {
		cancel()
	}
	return ok
}

// CancelModel aborts every running job building the named model and
// returns how many were signalled. DELETE /models/{name} uses it so
// deleting a model also stops paying for its in-flight builds.
func (j *Jobs) CancelModel(model string) int {
	j.mu.Lock()
	var cancels []context.CancelFunc
	for id, job := range j.jobs {
		if job.Model == model && job.State == JobRunning {
			if cancel, ok := j.cancels[id]; ok {
				cancels = append(cancels, cancel)
			}
		}
	}
	j.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	return len(cancels)
}

// Get returns a snapshot of the identified job.
func (j *Jobs) Get(id string) (Job, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	job, ok := j.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *job, true
}

// Len returns the number of registered jobs (all states).
func (j *Jobs) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.jobs)
}
