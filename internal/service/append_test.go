package service

// Serving-layer half of the incremental-append contract: epochs version the
// model, appends fast-forward the lineage, the appended model equals a
// from-scratch build over the concatenated data, the pre-append dendrogram
// is never served at a later epoch, and the snapshot (format v4) carries
// the epoch across export/import.

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	traclus "repro"
)

// appendSet returns trajectories to grow trainingSet models with — same
// corridor scene, disjoint ids.
func appendSet() []traclus.Trajectory {
	extra := probeSet()
	for i := range extra {
		extra[i].ID += 5000
	}
	return extra
}

func TestModelAppendMatchesBatchBuild(t *testing.T) {
	base, extra := trainingSet(), appendSet()
	m, err := Build("grow", base, buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 0 || !m.Appendable() {
		t.Fatalf("fresh build: epoch %d appendable %v, want 0 true", m.Epoch(), m.Appendable())
	}
	next, err := m.Append(context.Background(), extra)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Build("batch", append(append([]traclus.Trajectory{}, base...), extra...), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	ns, bs := next.Summary(), batch.Summary()
	if ns.Epoch != 1 {
		t.Errorf("Epoch = %d, want 1", ns.Epoch)
	}
	if ns.Clusters != bs.Clusters || ns.TotalSegments != bs.TotalSegments ||
		ns.NoiseSegments != bs.NoiseSegments || ns.RemovedClusters != bs.RemovedClusters ||
		ns.Trajectories != bs.Trajectories || ns.Points != bs.Points ||
		ns.QMeasure != bs.QMeasure {
		t.Errorf("appended summary diverges from batch build:\nappend: %+v\nbatch:  %+v", ns, bs)
	}
	// The old epoch keeps serving its own consistent pre-append view.
	if got := m.Summary(); got.Epoch != 0 || got.Trajectories != len(base) {
		t.Errorf("pre-append model changed: %+v", got)
	}
	// Classification on the new epoch is bit-identical to the batch model.
	probes := probeSet()
	want := batch.ClassifyBatch(context.Background(), probes, 0)
	got := next.ClassifyBatch(context.Background(), probes, 0)
	for i := range want {
		if got[i].Cluster != want[i].Cluster ||
			math.Float64bits(got[i].Distance) != math.Float64bits(want[i].Distance) {
			t.Fatalf("probe %d: appended model classified (%d, %x), batch (%d, %x)",
				i, got[i].Cluster, math.Float64bits(got[i].Distance), want[i].Cluster, math.Float64bits(want[i].Distance))
		}
	}
}

// TestModelAppendFastForwards pins the lineage rule: appending through an
// older epoch's handle applies on the newest epoch, so history never forks.
func TestModelAppendFastForwards(t *testing.T) {
	m, err := Build("ff", trainingSet(), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	extra := appendSet()
	e1, err := m.Append(context.Background(), extra[:3])
	if err != nil {
		t.Fatal(err)
	}
	// Append through m (epoch 0), not e1: must land on top of e1's state.
	e2, err := m.Append(context.Background(), extra[3:])
	if err != nil {
		t.Fatal(err)
	}
	if e1.Epoch() != 1 || e2.Epoch() != 2 {
		t.Fatalf("epochs = %d, %d, want 1, 2", e1.Epoch(), e2.Epoch())
	}
	if want := len(trainingSet()) + len(extra); e2.Summary().Trajectories != want {
		t.Errorf("fast-forwarded append lost data: %d trajectories, want %d", e2.Summary().Trajectories, want)
	}
}

// TestAppendedModelNeverServesStaleDendrogram is the staleness guard: after
// an append, sweep queries must answer over the post-append item set — a
// pre-append merge structure cut would silently drop the appended data.
func TestAppendedModelNeverServesStaleDendrogram(t *testing.T) {
	ctx := context.Background()
	m, err := Build("stale", trainingSet(), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Materialise the pre-append dendrogram the way a sweep request would.
	pre, err := m.DendrogramAt(ctx, 45)
	if err != nil {
		t.Fatal(err)
	}
	next, err := m.Append(ctx, appendSet())
	if err != nil {
		t.Fatal(err)
	}
	if next.Dendrogram() != nil {
		t.Fatal("appended model retained a merge structure; it must start invalidated")
	}
	post, err := next.DendrogramAt(ctx, 45)
	if err != nil {
		t.Fatal(err)
	}
	if post == pre {
		t.Fatal("appended model served the pre-append dendrogram")
	}
	if got, want := len(post.Items()), next.Summary().TotalSegments; got != want {
		t.Errorf("post-append dendrogram covers %d items, want %d (the full appended set)", got, want)
	}
	if got, want := len(pre.Items()), m.Summary().TotalSegments; got != want {
		t.Errorf("pre-append dendrogram mutated: %d items, want %d", got, want)
	}
	// And the sweep surface built on it answers for the appended set too.
	cut, err := next.ClustersAt(ctx, buildConfig().Eps)
	if err != nil {
		t.Fatal(err)
	}
	if cut.TotalSegments != next.Summary().TotalSegments {
		t.Errorf("ClustersAt after append covers %d segments, want %d", cut.TotalSegments, next.Summary().TotalSegments)
	}
}

func TestSnapshotLoadedModelNotAppendable(t *testing.T) {
	m, err := Build("frozen", trainingSet(), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Appendable() {
		t.Fatal("snapshot-loaded model claims to be appendable")
	}
	if _, err := loaded.Append(context.Background(), appendSet()); !errors.Is(err, ErrNotAppendable) {
		t.Fatalf("Append on a loaded model: %v, want ErrNotAppendable", err)
	}
}

// TestSnapshotCarriesEpoch pins the format v4 field end to end: an appended
// model exports its epoch, the import restores it, and classification on
// the restored replica is bit-identical to the appended original.
func TestSnapshotCarriesEpoch(t *testing.T) {
	m, err := Build("epoch", trainingSet(), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	next, err := m.Append(context.Background(), appendSet())
	if err != nil {
		t.Fatal(err)
	}
	data, err := next.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Summary().Epoch; got != 1 {
		t.Errorf("restored epoch = %d, want 1", got)
	}
	probes := probeSet()
	want := next.ClassifyBatch(context.Background(), probes, 0)
	got := loaded.ClassifyBatch(context.Background(), probes, 0)
	for i := range want {
		if got[i].Cluster != want[i].Cluster ||
			math.Float64bits(got[i].Distance) != math.Float64bits(want[i].Distance) {
			t.Fatalf("probe %d: restored replica classified (%d, %x), appended original (%d, %x)",
				i, got[i].Cluster, math.Float64bits(got[i].Distance), want[i].Cluster, math.Float64bits(want[i].Distance))
		}
	}
}

// TestConcurrentAppendAndClassify drives appends and classifies (plus sweep
// builds) concurrently under the race detector: an append must never
// disturb readers of already-published epochs — they share the appender's
// segment index, which readers query only through their epoch's immutable
// derived state.
func TestConcurrentAppendAndClassify(t *testing.T) {
	ctx := context.Background()
	m, err := Build("racey", trainingSet(), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	extra := appendSet()
	probes := probeSet()
	const chunks = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers hammer the published epochs while the writer appends.
	published := make(chan *Model, chunks)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur := m
			for {
				select {
				case <-stop:
					return
				case next := <-published:
					cur = next
				default:
				}
				res := cur.ClassifyBatch(ctx, probes, 2)
				for _, a := range res {
					if a.Err != "" && a.Cluster != -1 {
						t.Errorf("inconsistent assignment: %+v", a)
					}
				}
				if _, err := cur.DendrogramAt(ctx, 40); err != nil {
					t.Error(err)
				}
				_ = cur.Summary()
			}
		}()
	}
	cur := m
	for c := 0; c < chunks; c++ {
		lo, hi := c*len(extra)/chunks, (c+1)*len(extra)/chunks
		next, err := cur.Append(ctx, extra[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		select {
		case published <- next:
		default:
		}
		cur = next
	}
	close(stop)
	wg.Wait()
	if cur.Epoch() != chunks {
		t.Fatalf("final epoch %d, want %d", cur.Epoch(), chunks)
	}
	// After the dust settles, the concurrent run equals the batch build.
	batch, err := Build("racey-batch", append(append([]traclus.Trajectory{}, trainingSet()...), extra...), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ns, bs := cur.Summary(), batch.Summary(); ns.Clusters != bs.Clusters ||
		ns.TotalSegments != bs.TotalSegments || ns.QMeasure != bs.QMeasure {
		t.Errorf("concurrent appends diverged from batch: %+v vs %+v", ns, bs)
	}
}

// TestDiskStoreReplacePublishesNewEpoch pins the daemon's publish path: the
// resident entry swaps immediately and the appended snapshot lands on disk.
func TestDiskStoreReplacePublishesNewEpoch(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build("swap", trainingSet(), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("swap", m); err != nil {
		t.Fatal(err)
	}
	next, err := m.Append(context.Background(), appendSet())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Replace("swap", next); err != nil {
		t.Fatal(err)
	}
	got, ok := ds.mem.Get("swap")
	if !ok || got != next {
		t.Fatal("Replace did not swap the resident model")
	}
	ds.Quiesce()
	if err := ds.SaveErr(); err != nil {
		t.Fatal(err)
	}
	// A fresh store on the same directory restores the appended epoch.
	ds2, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	loaded, found, err := ds2.Get("swap")
	if err != nil || !found {
		t.Fatalf("reload: found=%v err=%v", found, err)
	}
	if got := loaded.Summary().Epoch; got != 1 {
		t.Errorf("reloaded epoch = %d, want 1", got)
	}
	if got, want := loaded.Summary().TotalSegments, next.Summary().TotalSegments; got != want {
		t.Errorf("reloaded TotalSegments = %d, want %d", got, want)
	}
}

// TestAppendEmpty: an empty append succeeds and leaves the clustering
// untouched.
func TestAppendEmpty(t *testing.T) {
	m, err := Build("empty", trainingSet(), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	next, err := m.Append(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if next.Summary().TotalSegments != m.Summary().TotalSegments {
		t.Errorf("empty append changed the clustering: %d -> %d segments",
			m.Summary().TotalSegments, next.Summary().TotalSegments)
	}
}
