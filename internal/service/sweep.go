package service

// Multi-ε queries over a served model: the dendrogram (internal/dendro)
// lets the daemon answer "what would this clustering look like at ε?" for
// any ε without re-running the distance kernels. SweepQuality walks a grid
// of ε values and reports the Section 5.1 quality terms at each; ClustersAt
// materialises the full clustering — members, trajectories, representatives
// — at one ε. Both reconstruct exactly what a fresh build at that ε would
// produce (the dendro equivalence suite pins this).

import (
	"context"
	"errors"

	traclus "repro"
	"repro/internal/core"
	"repro/internal/dendro"
	"repro/internal/lsdist"
	"repro/internal/quality"
	"repro/internal/segclust"
)

// ErrNoDendrogram reports a sweep query against a model that has no merge
// structure and no geometry to build one from — a model loaded from a
// format v1 snapshot, which stores only the classifier's reference
// segments, not the training segment set.
var ErrNoDendrogram = errors.New("service: model carries no dendrogram (format v1 snapshot); rebuild the model to enable sweep queries")

// maxSweepSteps bounds the ε-grid resolution of one sweep request: each
// step costs an O(n²)-per-cluster quality pass, so the cap keeps a single
// request from monopolising the daemon.
const maxSweepSteps = 4096

// SweepPoint is the quality curve sample at one ε.
type SweepPoint struct {
	Eps             float64 `json:"eps"`
	Clusters        int     `json:"clusters"`
	NoiseSegments   int     `json:"noise_segments"`
	NoiseFraction   float64 `json:"noise_fraction"`
	RemovedClusters int     `json:"removed_clusters"`
	TotalSSE        float64 `json:"total_sse"`
	NoisePenalty    float64 `json:"noise_penalty"`
	QMeasure        float64 `json:"q_measure"`
}

// CutCluster is one cluster of a ClustersAt reconstruction.
type CutCluster struct {
	Cluster        int             `json:"cluster"`
	Segments       int             `json:"segments"`
	Trajectories   []int           `json:"trajectories"`
	Representative []traclus.Point `json:"representative,omitempty"`
}

// CutResult is the clustering reconstructed at one ε.
type CutResult struct {
	Eps             float64      `json:"eps"`
	MinLns          float64      `json:"min_lns"`
	TotalSegments   int          `json:"total_segments"`
	NoiseSegments   int          `json:"noise_segments"`
	NoiseFraction   float64      `json:"noise_fraction"`
	RemovedClusters int          `json:"removed_clusters"`
	Clusters        []CutCluster `json:"clusters"`
}

// Dendrogram returns the model's current merge structure, or nil if none
// has been built yet.
func (m *Model) Dendrogram() *dendro.Dendrogram {
	m.dmu.Lock()
	defer m.dmu.Unlock()
	return m.den
}

// distOptions resolves the distance the model was built with — the same
// resolution the pipeline and the snapshot layer apply.
func (m *Model) distOptions() lsdist.Options {
	w := m.cfg.Weights
	if (w == traclus.Weights{}) {
		w = lsdist.DefaultWeights()
	}
	return lsdist.Options{Weights: w, Undirected: m.cfg.Undirected}
}

// DendrogramAt returns a dendrogram covering ε ≤ maxEps, building or
// growing the model's retained one when its range is too small. Growth
// replaces the structure wholesale (a dendrogram is immutable once built)
// under dmu, so concurrent sweeps serialise their builds and later reads
// reuse the widest range seen. The segment set comes from the model's own
// clustering — or, for a model restored from a v2 snapshot, from the
// restored dendrogram — so ErrNoDendrogram only fires for v1-loaded models
// with no training geometry at all.
func (m *Model) DendrogramAt(ctx context.Context, maxEps float64) (*dendro.Dendrogram, error) {
	if err := segclust.CheckPositive("Eps", maxEps); err != nil {
		return nil, err
	}
	m.dmu.Lock()
	defer m.dmu.Unlock()
	if m.den != nil && m.den.MaxEps() >= maxEps {
		return m.den, nil
	}
	var items []traclus.Item
	switch {
	case m.res != nil:
		items = m.res.Items()
	case m.den != nil:
		items = m.den.Items()
	default:
		return nil, ErrNoDendrogram
	}
	d, err := dendro.Build(ctx, items, m.distOptions(), segclust.BackendFor(m.cfg.Index), maxEps, m.cfg.Workers)
	if err != nil {
		return nil, err
	}
	m.den = d
	return d, nil
}

// SweepQuality samples the quality curve at steps evenly-spaced ε values
// across [lo, hi] (inclusive on both ends): cluster count, noise fraction,
// and the Formula 11 terms at every ε, all served from one merge structure.
// Invalid ranges return a *traclus.ConfigError, which the daemon maps to
// the /v1 invalid_config envelope.
func (m *Model) SweepQuality(ctx context.Context, lo, hi float64, steps int) ([]SweepPoint, error) {
	if err := segclust.CheckPositive("Sweep.Lo", lo); err != nil {
		return nil, err
	}
	if err := segclust.CheckPositive("Sweep.Hi", hi); err != nil {
		return nil, err
	}
	if lo >= hi {
		return nil, &traclus.ConfigError{Field: "Sweep", Value: [2]float64{lo, hi}, Reason: "lo must be less than hi"}
	}
	if steps < 2 || steps > maxSweepSteps {
		return nil, &traclus.ConfigError{Field: "Sweep.Steps", Value: steps, Reason: "must be in [2, 4096]"}
	}
	d, err := m.DendrogramAt(ctx, hi)
	if err != nil {
		return nil, err
	}
	items := d.Items()
	opt := m.distOptions()
	pts := make([]SweepPoint, steps)
	for k := range pts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		eps := lo + (hi-lo)*float64(k)/float64(steps-1)
		res, err := d.CutAt(eps, m.cfg.MinLns, m.cfg.MinTrajs)
		if err != nil {
			return nil, err
		}
		b := quality.Measure(items, res, opt, m.cfg.Workers)
		noise := res.NoiseCount()
		pts[k] = SweepPoint{
			Eps:             eps,
			Clusters:        len(res.Clusters),
			NoiseSegments:   noise,
			NoiseFraction:   noiseFraction(noise, len(items)),
			RemovedClusters: res.Removed,
			TotalSSE:        b.TotalSSE,
			NoisePenalty:    b.NoisePenalty,
			QMeasure:        b.QMeasure(),
		}
	}
	return pts, nil
}

// ClustersAt reconstructs the full clustering at ε: the dendrogram cut
// supplies membership, then the Section 4.3 sweep builds each cluster's
// representative under the model's MinLns and γ — with γ defaulting to ε/4
// at the requested ε, exactly as a fresh run at that ε would resolve it.
func (m *Model) ClustersAt(ctx context.Context, eps float64) (*CutResult, error) {
	d, err := m.DendrogramAt(ctx, eps)
	if err != nil {
		return nil, err
	}
	res, err := d.CutAt(eps, m.cfg.MinLns, m.cfg.MinTrajs)
	if err != nil {
		return nil, err
	}
	ccfg := core.Config{
		Eps:      eps,
		MinLns:   m.cfg.MinLns,
		MinTrajs: m.cfg.MinTrajs,
		Distance: m.distOptions(),
		Gamma:    m.cfg.Gamma,
		Workers:  m.cfg.Workers,
	}
	out, err := core.AssembleCtx(ctx, d.Items(), res, ccfg, nil, nil)
	if err != nil {
		return nil, err
	}
	noise := res.NoiseCount()
	cr := &CutResult{
		Eps:             eps,
		MinLns:          m.cfg.MinLns,
		TotalSegments:   len(out.Items),
		NoiseSegments:   noise,
		NoiseFraction:   noiseFraction(noise, len(out.Items)),
		RemovedClusters: res.Removed,
		Clusters:        make([]CutCluster, len(out.Clusters)),
	}
	for ci, c := range out.Clusters {
		cr.Clusters[ci] = CutCluster{
			Cluster:        ci,
			Segments:       len(c.Members),
			Trajectories:   c.Trajectories,
			Representative: c.Representative,
		}
	}
	return cr, nil
}

// noiseFraction guards the empty-model case: 0/0 would be NaN, which
// encoding/json cannot represent.
func noiseFraction(noise, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(noise) / float64(total)
}
