// Package service is the serving layer over the TRACLUS batch pipeline: it
// wraps a built traclus.Result into an immutable, concurrently-queryable
// Model, manages named models behind an LRU cache with single-flight build
// deduplication (Store), and tracks asynchronous build jobs (Jobs). It is
// the engine behind cmd/traclusd — the batch job builds the model once, the
// service answers online classification queries about new trajectories for
// as long as the model lives.
//
// Concurrency contract: a *Model is deeply immutable after Build returns —
// every field is written exactly once, and Classify/ClassifyBatch only read
// shared state (the classifier owns per-call scratch). A Store hands the
// same *Model to many goroutines; eviction drops the cache reference only,
// so in-flight requests holding the pointer finish safely on the evicted
// model.
package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	traclus "repro"
	"repro/internal/dendro"
	"repro/internal/par"
	"repro/internal/snapshot"
)

// Assignment is the outcome of classifying one trajectory against a model.
type Assignment struct {
	// TrajID echoes the query trajectory's id.
	TrajID int `json:"traj_id"`
	// Cluster is the assigned cluster index, or -1 on failure.
	Cluster int `json:"cluster"`
	// Distance is the length-weighted mean distance to the winning
	// cluster's representative segments.
	Distance float64 `json:"distance"`
	// Err carries a per-trajectory failure (e.g. too short to partition)
	// without failing the whole batch.
	Err string `json:"error,omitempty"`
}

// Summary is the serializable description of a model.
type Summary struct {
	Name            string  `json:"name"`
	Clusters        int     `json:"clusters"`
	TotalSegments   int     `json:"total_segments"`
	NoiseSegments   int     `json:"noise_segments"`
	RemovedClusters int     `json:"removed_clusters"`
	Trajectories    int     `json:"trajectories"`
	Points          int     `json:"points"`
	Eps             float64 `json:"eps"`
	MinLns          float64 `json:"min_lns"`
	QMeasure        float64 `json:"q_measure"`
	Geometry        string  `json:"geometry,omitempty"`
	TemporalWeight  float64 `json:"wt,omitempty"`
	// Epoch counts the incremental appends absorbed since the from-scratch
	// build: 0 for a fresh batch build, incremented by every Model.Append.
	// It versions the model's state — a client that remembers the epoch of
	// its last read can tell whether a later response reflects newer data.
	Epoch         int64                 `json:"epoch"`
	BuiltAt       time.Time             `json:"built_at"`
	BuildDuration time.Duration         `json:"build_duration_ns"`
	ClusterStats  []traclus.ClusterStat `json:"cluster_stats"`
}

// Model is an immutable snapshot of one built clustering plus everything
// needed to serve it: the classifier and precomputed summary statistics.
// All fields are written once inside Build; afterwards the model is safe
// for unlimited concurrent reads.
type Model struct {
	summary Summary
	res     *traclus.Result // nil for models loaded from a snapshot
	cls     *traclus.Classifier

	// Lazy classifier (appended models only): the append path must build
	// zero spatial indexes, so the classifier over the post-append reference
	// segments is constructed on the first Classify/snapshot instead of
	// inside Append. clsOnce/clsErr memoize it into cls; eagerly-built
	// models (fresh builds, snapshot loads) leave clsLazy nil.
	clsOnce sync.Once
	clsLazy func() (*traclus.Classifier, error)
	clsErr  error

	// Incremental growth: ap is the appender the model was built through
	// and lin the lineage every epoch of this model shares. Both are nil
	// for snapshot-loaded models — their training geometry is gone, so
	// Append returns ErrNotAppendable. See append.go in this package.
	ap  *traclus.Appender
	lin *lineage

	// cfg is the resolved build configuration (estimation already folded
	// into Eps/MinLns). The snapshot layer serializes it so a loaded model
	// classifies under the exact parameters it was built with.
	cfg traclus.Config

	// Snapshot memoization: models loaded from a snapshot retain it (snap
	// set before publication); built models compute theirs once on first
	// export. See persist.go.
	snapOnce sync.Once
	snap     *snapshot.Model
	snapErr  error

	// Multi-ε merge structure (internal/dendro) behind the sweep/clusters
	// queries — the one deliberate exception to the write-once rule: auto
	// builds and v2 snapshots set it before publication, fixed-ε models
	// grow it lazily on the first sweep request, and dmu serialises that
	// growth. See sweep.go.
	dmu sync.Mutex
	den *dendro.Dendrogram
}

// EstimateRange requests §4.4 parameter estimation inside a build: Eps and
// MinLns are chosen by the entropy heuristic searched over ε ∈ [Lo, Hi],
// sharing the build's single spatial index with the grouping phase instead
// of paying a second index construction and neighborhood sweep the way a
// separate EstimateParameters call would.
type EstimateRange struct {
	Lo, Hi float64
}

// Build runs the full TRACLUS pipeline over the training trajectories and
// wraps the result as a servable model. It validates cfg up front (a
// *traclus.ConfigError maps to a client error in the daemon) and precomputes
// the summary statistics so serving reads never trigger O(n²) work. A model
// whose clustering found no clusters is still valid — its summary reports
// zero clusters and Classify returns traclus.ErrNoClusters.
func Build(name string, trs []traclus.Trajectory, cfg traclus.Config) (*Model, error) {
	return BuildCtx(context.Background(), name, trs, cfg, nil, nil)
}

// BuildCtx is Build over the cancellable Pipeline API: a done ctx aborts
// the clustering within one work item and surfaces ctx.Err() (match with
// errors.Is against context.Canceled — the daemon maps it to a cancelled
// job, not a failed one). est, if non-nil, estimates Eps/MinLns during the
// build (cfg.Eps and cfg.MinLns are ignored; the summary reports the chosen
// values). progress, if non-nil, receives the pipeline's phase/fraction
// stream (serialized, monotone per phase) so an async build job can report
// live progress to pollers.
//
// A model build constructs exactly one spatial index per dataset it
// indexes: one over the pooled trajectory partitions (shared by estimation
// and grouping) and one over the reference segments behind the classifier
// (memoized on the result, so later Result.Classify calls reuse it too).
// The build-count test pins this.
func BuildCtx(ctx context.Context, name string, trs []traclus.Trajectory, cfg traclus.Config, est *EstimateRange, progress func(phase string, fraction float64)) (*Model, error) {
	start := time.Now()
	// Building through the appender keeps the model growable: the result is
	// bit-identical to Pipeline.Run (the append equivalence suite pins the
	// initial build), and the retained appender lets Model.Append extend the
	// clustering in O(Δ) instead of rebuilding.
	ap, err := traclus.New(buildOptions(cfg, est, progress)...).NewAppender(ctx, trs)
	if err != nil {
		return nil, err
	}
	points := 0
	for _, tr := range trs {
		points += len(tr.Points)
	}
	return finishBuild(name, ap, cfg, len(trs), points, start)
}

// BuildTimed is BuildTimedCtx with a background context.
func BuildTimed(name string, trs []traclus.TimedTrajectory, cfg traclus.Config) (*Model, error) {
	return BuildTimedCtx(context.Background(), name, trs, cfg, nil, nil)
}

// BuildTimedCtx is BuildCtx over timed trajectories: the pipeline runs
// through RunTimed, so a spatiotemporal cfg.Geometry clusters under the
// four-component distance and the model's classifier answers ClassifyTimed
// with the per-cluster time windows baked in (and persisted in the
// snapshot). A planar geometry (or wT = 0) builds the exact model BuildCtx
// would over the spatial projections of trs.
func BuildTimedCtx(ctx context.Context, name string, trs []traclus.TimedTrajectory, cfg traclus.Config, est *EstimateRange, progress func(phase string, fraction float64)) (*Model, error) {
	start := time.Now()
	ap, err := traclus.New(buildOptions(cfg, est, progress)...).NewTimedAppender(ctx, trs)
	if err != nil {
		return nil, err
	}
	points := 0
	for _, tr := range trs {
		points += len(tr.Points)
	}
	return finishBuild(name, ap, cfg, len(trs), points, start)
}

// buildOptions assembles the pipeline options shared by the spatial and
// timed build paths.
func buildOptions(cfg traclus.Config, est *EstimateRange, progress func(phase string, fraction float64)) []traclus.Option {
	opts := []traclus.Option{traclus.WithConfig(cfg)}
	if est != nil {
		opts = append(opts, traclus.WithEstimation(est.Lo, est.Hi))
	}
	if progress != nil {
		opts = append(opts, traclus.WithProgress(func(ev traclus.ProgressEvent) {
			progress(ev.Phase.String(), ev.Fraction)
		}))
	}
	return opts
}

// finishBuild wraps a completed appender build as a servable model:
// estimated parameters and the resolved geometry (a geodesic run's
// projection frame) fold into the persisted config, and the summary
// statistics precompute so serving reads never trigger O(n²) work.
func finishBuild(name string, ap *traclus.Appender, cfg traclus.Config, trajectories, points int, start time.Time) (*Model, error) {
	res := ap.Result()
	if res.Estimated != nil {
		cfg.Eps = res.Estimated.Eps
		cfg.MinLns = float64(res.Estimated.MinLnsLo+res.Estimated.MinLnsHi) / 2
	}
	cfg.Geometry = res.Geometry()
	// QMeasure = Σ per-cluster SSE + noise penalty; assembling it from the
	// ClusterStats pass avoids running the O(n²) pairwise SSE twice.
	stats := res.ClusterStats()
	qmeasure := res.NoisePenalty()
	for _, st := range stats {
		qmeasure += st.SSE
	}
	m := &Model{
		res: res,
		den: res.Dendrogram(), // non-nil on auto builds; persisted as format v2
		ap:  ap,
		cfg: cfg,
		summary: Summary{
			Name:            name,
			Clusters:        len(res.Clusters),
			TotalSegments:   res.TotalSegments,
			NoiseSegments:   res.NoiseSegments,
			RemovedClusters: res.RemovedClusters,
			Trajectories:    trajectories,
			Points:          points,
			Eps:             cfg.Eps,
			MinLns:          cfg.MinLns,
			QMeasure:        qmeasure,
			Geometry:        cfg.Geometry.Kind.String(),
			TemporalWeight:  cfg.Geometry.WT,
			ClusterStats:    stats,
		},
	}
	if len(res.Clusters) > 0 {
		// The memoized accessor shares one classifier (and one
		// reference-segment index) between the model and any direct
		// Result.Classify callers — never two builds over the same dataset.
		var err error
		if m.cls, err = res.Classifier(); err != nil {
			return nil, fmt.Errorf("service: building classifier for %q: %w", name, err)
		}
	}
	m.summary.BuiltAt = time.Now().UTC()
	m.summary.BuildDuration = time.Since(start)
	m.lin = &lineage{head: m}
	return m, nil
}

// Name returns the model's name.
func (m *Model) Name() string { return m.summary.Name }

// Summary returns the model's precomputed statistics (a copy; the shared
// ClusterStats slice must be treated as read-only).
func (m *Model) Summary() Summary { return m.summary }

// Result exposes the underlying clustering (read-only by convention). It is
// nil for models loaded from a snapshot: the clustering's full member
// geometry is not serialized, only what classification needs.
func (m *Model) Result() *traclus.Result { return m.res }

// Config returns the resolved build configuration (estimated Eps/MinLns
// already substituted).
func (m *Model) Config() traclus.Config { return m.cfg }

// classifier resolves the model's classifier, building it on first use for
// appended models (whose construction defers the reference-index build so
// the append path itself builds zero indexes). nil with a nil error means
// the clustering has no clusters to classify against.
func (m *Model) classifier() (*traclus.Classifier, error) {
	if m.clsLazy != nil {
		m.clsOnce.Do(func() { m.cls, m.clsErr = m.clsLazy() })
	}
	return m.cls, m.clsErr
}

// Classify assigns one trajectory to its nearest cluster.
func (m *Model) Classify(tr traclus.Trajectory) (clusterID int, distance float64, err error) {
	cls, err := m.classifier()
	if err != nil {
		return -1, 0, err
	}
	if cls == nil {
		return -1, 0, traclus.ErrNoClusters
	}
	return cls.Classify(tr)
}

// ClassifyTimed assigns one timed trajectory to its nearest cluster under
// the model's geometry (the spatiotemporal distance against the persisted
// cluster windows; identical to Classify on the spatial projection under a
// planar model).
func (m *Model) ClassifyTimed(tr traclus.TimedTrajectory) (clusterID int, distance float64, err error) {
	cls, err := m.classifier()
	if err != nil {
		return -1, 0, err
	}
	if cls == nil {
		return -1, 0, traclus.ErrNoClusters
	}
	return cls.ClassifyTimed(tr)
}

// ClassifyBatch classifies many trajectories, fanned out across workers
// (≤ 0 = all CPUs) via the repo-wide par pool. Per-trajectory failures are
// reported in the corresponding Assignment rather than aborting the batch;
// once ctx is done the remaining items are marked with the context error
// without computing anything.
func (m *Model) ClassifyBatch(ctx context.Context, trs []traclus.Trajectory, workers int) []Assignment {
	out := make([]Assignment, len(trs))
	par.ForEach(workers, len(trs), func(_, i int) {
		out[i] = Assignment{TrajID: trs[i].ID, Cluster: -1}
		if err := ctx.Err(); err != nil {
			out[i].Err = err.Error()
			return
		}
		cl, d, err := m.Classify(trs[i])
		if err != nil {
			out[i].Err = err.Error()
			return
		}
		out[i].Cluster, out[i].Distance = cl, d
	})
	return out
}

// ClassifyTimedBatch is ClassifyBatch over timed trajectories, classifying
// through ClassifyTimed with the same fan-out and per-item error semantics.
func (m *Model) ClassifyTimedBatch(ctx context.Context, trs []traclus.TimedTrajectory, workers int) []Assignment {
	out := make([]Assignment, len(trs))
	par.ForEach(workers, len(trs), func(_, i int) {
		out[i] = Assignment{TrajID: trs[i].ID, Cluster: -1}
		if err := ctx.Err(); err != nil {
			out[i].Err = err.Error()
			return
		}
		cl, d, err := m.ClassifyTimed(trs[i])
		if err != nil {
			out[i].Err = err.Error()
			return
		}
		out[i].Cluster, out[i].Distance = cl, d
	})
	return out
}
