package service

import (
	"context"
	"errors"
	"reflect"
	"testing"

	traclus "repro"
)

// TestClustersAtMatchesBuild pins the serving identity: cutting the model
// at its own ε reproduces the build's clustering exactly — including the
// representative trajectories — even though the dendrogram is built
// lazily, after the fact, from the model's retained items.
func TestClustersAtMatchesBuild(t *testing.T) {
	m, err := Build("fixed", trainingSet(), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Dendrogram() != nil {
		t.Fatal("fixed-parameter build carries a dendrogram before any sweep")
	}
	cut, err := m.ClustersAt(context.Background(), m.Summary().Eps)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Result()
	if len(cut.Clusters) != len(res.Clusters) {
		t.Fatalf("cut found %d clusters, build found %d", len(cut.Clusters), len(res.Clusters))
	}
	for ci, c := range cut.Clusters {
		want := res.Clusters[ci]
		if !reflect.DeepEqual(c.Representative, want.Representative) {
			t.Errorf("cluster %d: representative differs", ci)
		}
		if !reflect.DeepEqual(c.Trajectories, want.Trajectories) {
			t.Errorf("cluster %d: trajectory set differs", ci)
		}
		if c.Segments != len(want.Segments) {
			t.Errorf("cluster %d: %d segments, want %d", ci, c.Segments, len(want.Segments))
		}
	}
	if cut.NoiseSegments != m.Summary().NoiseSegments || cut.RemovedClusters != m.Summary().RemovedClusters {
		t.Errorf("cut noise/removed = %d/%d, summary %d/%d",
			cut.NoiseSegments, cut.RemovedClusters, m.Summary().NoiseSegments, m.Summary().RemovedClusters)
	}
}

// TestDendrogramLazyGrowth: sweeps beyond the current range rebuild wider;
// narrower queries reuse the existing structure.
func TestDendrogramLazyGrowth(t *testing.T) {
	m, err := Build("growing", trainingSet(), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ClustersAt(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	d1 := m.Dendrogram()
	if d1 == nil || d1.MaxEps() < 10 {
		t.Fatalf("after eps=10 cut: dendrogram %v", d1)
	}
	if _, err := m.ClustersAt(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	if m.Dendrogram() != d1 {
		t.Error("narrower query rebuilt the dendrogram")
	}
	if _, err := m.ClustersAt(context.Background(), d1.MaxEps()*2); err != nil {
		t.Fatal(err)
	}
	if d2 := m.Dendrogram(); d2 == d1 || d2.MaxEps() < d1.MaxEps()*2 {
		t.Error("wider query did not grow the dendrogram")
	}
}

// TestSnapshotCarriesDendro: an estimated build holds the dendrogram its
// estimation phase produced, exports it in the v2 snapshot, and the
// restored model answers the identical sweep without any rebuild — even
// though its Result() is nil.
func TestSnapshotCarriesDendro(t *testing.T) {
	m, err := BuildCtx(context.Background(), "auto", trainingSet(), buildConfig(),
		&EstimateRange{Lo: 5, Hi: 60}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dendrogram() == nil {
		t.Fatal("estimated build carries no dendrogram")
	}
	data, err := m.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Result() != nil {
		t.Fatal("restored model has a Result")
	}
	d2 := m2.Dendrogram()
	if d2 == nil {
		t.Fatal("restored model carries no dendrogram")
	}
	lo, hi := 5.0, d2.MaxEps()
	want, err := m.SweepQuality(context.Background(), lo, hi, 9)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.SweepQuality(context.Background(), lo, hi, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("restored sweep differs:\n built %+v\nrestored %+v", want, got)
	}
	a, err := m.ClustersAt(context.Background(), hi/2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m2.ClustersAt(context.Background(), hi/2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("restored cut differs from the built model's")
	}
}

// TestSweepNoDendrogram: a model restored from a dendrogram-less snapshot
// (the v1 situation: classifier geometry only, no training segments)
// answers sweep queries with ErrNoDendrogram.
func TestSweepNoDendrogram(t *testing.T) {
	m, err := Build("plain", trainingSet(), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Export before any sweep: the memoized snapshot has no dendro section,
	// like a v1 file.
	data, err := m.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Dendrogram() != nil {
		t.Fatal("dendrogram-less snapshot restored with a dendrogram")
	}
	if _, err := m2.SweepQuality(context.Background(), 5, 50, 4); !errors.Is(err, ErrNoDendrogram) {
		t.Errorf("SweepQuality error %v, want ErrNoDendrogram", err)
	}
	if _, err := m2.ClustersAt(context.Background(), 20); !errors.Is(err, ErrNoDendrogram) {
		t.Errorf("ClustersAt error %v, want ErrNoDendrogram", err)
	}
}

func TestSweepValidation(t *testing.T) {
	m, err := Build("validated", trainingSet(), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, tc := range []struct {
		name        string
		lo, hi      float64
		steps       int
		wantCfgFail bool
	}{
		{"lo equals hi", 10, 10, 4, true},
		{"zero lo", 0, 10, 4, true},
		{"negative hi", 5, -1, 4, true},
		{"one step", 5, 50, 1, true},
		{"steps above cap", 5, 50, 4097, true},
		{"valid", 5, 50, 4, false},
	} {
		_, err := m.SweepQuality(ctx, tc.lo, tc.hi, tc.steps)
		if tc.wantCfgFail {
			var ce *traclus.ConfigError
			if !errors.As(err, &ce) {
				t.Errorf("%s: error %v, want *traclus.ConfigError", tc.name, err)
			}
		} else if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
	}
}
