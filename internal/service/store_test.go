package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func sleep() { time.Sleep(time.Millisecond) }

// fakeModel builds a minimal model without running the pipeline — store
// semantics are independent of what the model holds.
func fakeModel(name string) *Model {
	return &Model{summary: Summary{Name: name}}
}

func TestStoreSingleFlight(t *testing.T) {
	store := NewStore(0)
	var builds atomic.Int64
	barrier := make(chan struct{})

	const callers = 16
	var wg sync.WaitGroup
	models := make([]*Model, callers)
	errs := make([]error, callers)
	ran := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			models[i], ran[i], errs[i] = store.GetOrBuild("shared", func() (*Model, error) {
				builds.Add(1)
				<-barrier // hold the build open so every caller piles up
				return fakeModel("shared"), nil
			})
		}(i)
	}
	// Wait until the one build is in flight, then release it.
	for builds.Load() == 0 {
		sleep()
	}
	close(barrier)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("%d builds ran, want exactly 1 (single-flight)", n)
	}
	builders := 0
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if models[i] != models[0] {
			t.Errorf("caller %d received a different model instance", i)
		}
		if ran[i] {
			builders++
		}
	}
	if builders != 1 {
		t.Errorf("%d callers report built=true, want 1", builders)
	}
	// A later call is a cache hit: still one build, built=false.
	_, built, err := store.GetOrBuild("shared", func() (*Model, error) {
		builds.Add(1)
		return fakeModel("shared"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if built {
		t.Error("cache hit reported built=true")
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("%d builds after cache hit, want 1", n)
	}
}

func TestStoreFailedBuildNotCached(t *testing.T) {
	store := NewStore(0)
	boom := errors.New("boom")
	calls := 0
	if _, _, err := store.GetOrBuild("m", func() (*Model, error) { calls++; return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := store.Get("m"); ok {
		t.Fatal("failed build cached")
	}
	// The next request retries the build.
	if _, _, err := store.GetOrBuild("m", func() (*Model, error) { calls++; return fakeModel("m"), nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
	if _, ok := store.Get("m"); !ok {
		t.Fatal("successful retry not cached")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	store := NewStore(2)
	for _, name := range []string{"a", "b", "c"} {
		name := name
		if _, _, err := store.GetOrBuild(name, func() (*Model, error) { return fakeModel(name), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if store.Len() != 2 {
		t.Fatalf("Len = %d, want 2", store.Len())
	}
	if _, ok := store.Get("a"); ok {
		t.Error("oldest model survived eviction")
	}
	// Touch "b" so "c" becomes the eviction victim on the next insert.
	if _, ok := store.Get("b"); !ok {
		t.Fatal("b missing")
	}
	if _, _, err := store.GetOrBuild("d", func() (*Model, error) { return fakeModel("d"), nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get("c"); ok {
		t.Error("LRU order ignored: c survived although b was touched later")
	}
	if got := store.Names(); len(got) != 2 || got[0] != "d" || got[1] != "b" {
		t.Errorf("Names = %v, want [d b]", got)
	}
}

func TestStoreDelete(t *testing.T) {
	store := NewStore(0)
	if store.Delete("nope") {
		t.Error("deleted a model that never existed")
	}
	if _, _, err := store.GetOrBuild("m", func() (*Model, error) { return fakeModel("m"), nil }); err != nil {
		t.Fatal(err)
	}
	if !store.Delete("m") {
		t.Error("delete of a cached model failed")
	}
	if _, ok := store.Get("m"); ok {
		t.Error("model survived delete")
	}
}

func TestStoreWait(t *testing.T) {
	store := NewStore(0)
	if _, found, _ := store.Wait("absent"); found {
		t.Error("Wait found an entry that never existed")
	}
	// In-flight: Wait blocks until the build resolves and shares its model.
	barrier := make(chan struct{})
	go store.GetOrBuild("m", func() (*Model, error) {
		<-barrier
		return fakeModel("m"), nil
	})
	for !store.Pending("m") {
		sleep()
	}
	done := make(chan *Model, 1)
	go func() {
		m, found, err := store.Wait("m")
		if !found || err != nil {
			t.Errorf("Wait on in-flight build: found=%v err=%v", found, err)
		}
		done <- m
	}()
	close(barrier)
	if m := <-done; m == nil || m.Name() != "m" {
		t.Fatalf("Wait returned %v", m)
	}
	// Cached: Wait returns immediately.
	if m, found, err := store.Wait("m"); !found || err != nil || m.Name() != "m" {
		t.Fatalf("Wait on cached model: %v, %v, %v", m, found, err)
	}
}

func TestStoreConcurrentDistinctNames(t *testing.T) {
	store := NewStore(0)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("m%d", i%8)
			m, _, err := store.GetOrBuild(name, func() (*Model, error) { return fakeModel(name), nil })
			if err != nil || m.Name() != name {
				t.Errorf("GetOrBuild(%s) = %v, %v", name, m, err)
			}
		}(i)
	}
	wg.Wait()
	if store.Len() != 8 {
		t.Fatalf("Len = %d, want 8", store.Len())
	}
}

// TestStoreWaitCtx pins the bounded join: a waiter whose own context ends
// stops waiting (found=true, err=ctx.Err()) while the build it joined runs
// on unaffected; cache hits and absent names ignore the context entirely.
func TestStoreWaitCtx(t *testing.T) {
	s := NewStore(0)
	release := make(chan struct{})
	go s.GetOrBuild("slow", func() (*Model, error) {
		<-release
		return fakeModel("slow"), nil
	})
	for !s.Pending("slow") {
		sleep()
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, found, err := s.WaitCtx(ctx, "slow"); !found || !errors.Is(err, context.Canceled) {
		t.Fatalf("WaitCtx on in-flight build under done ctx: found=%v err=%v", found, err)
	}
	if _, found, err := s.WaitCtx(ctx, "ghost"); found || err != nil {
		t.Fatalf("WaitCtx on absent name: found=%v err=%v", found, err)
	}

	close(release)
	m, found, err := s.WaitCtx(context.Background(), "slow")
	if !found || err != nil || m.Name() != "slow" {
		t.Fatalf("WaitCtx after release: found=%v err=%v", found, err)
	}
	// A ready model answers even under a done context (no waiting happens).
	if m, found, err := s.WaitCtx(ctx, "slow"); !found || err != nil || m.Name() != "slow" {
		t.Fatalf("WaitCtx cache hit under done ctx: found=%v err=%v", found, err)
	}
}
