package service

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// snapExt is the on-disk snapshot filename extension; a model named "taxi"
// persists as <dir>/taxi.snap.
const snapExt = ".snap"

// DiskStore layers snapshot persistence under the in-memory Store: models
// built (or imported) through it are written to a directory as versioned
// binary snapshots, and cache misses read through to disk before falling
// back to a build. A daemon restarted on the same directory therefore
// serves every previously built model without re-running the clustering —
// only the classifier's spatial index is rebuilt, pinned by the durability
// test.
//
// Semantics relative to Store:
//   - Get/GetOrBuild read through: an LRU miss tries <dir>/<name>.snap
//     first, inside the same single-flight slot a build would use, so
//     concurrent misses for one name do one disk load, not N.
//   - Fresh builds are persisted write-behind: the build's caller returns
//     as soon as the model is ready; the snapshot encode+write runs in a
//     background goroutine (Quiesce waits them out — tests and daemon
//     shutdown call it). A write failure is recorded (SaveErrs) but never
//     fails the build.
//   - Put (the import path) persists synchronously: an imported snapshot
//     must survive a crash immediately after the 2xx.
//   - Delete removes both the cached model and the snapshot file.
//
// A DiskStore with an empty dir is memory-only: exactly a *Store, plus
// counters. All methods are safe for concurrent use.
type DiskStore struct {
	mem *Store
	dir string // "" = memory-only

	wg    sync.WaitGroup
	loads atomic.Int64 // successful disk read-throughs
	saves atomic.Int64 // successful disk writes

	errMu   sync.Mutex
	saveErr error // first asynchronous save failure, for surfacing in tests/logs
}

// NewDiskStore creates a disk-backed store capped at maxModels resident
// models (≤ 0 unbounded; the cap bounds memory, not disk). dir is created
// if missing; an empty dir disables persistence.
func NewDiskStore(dir string, maxModels int) (*DiskStore, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: creating snapshot dir: %w", err)
		}
	}
	return &DiskStore{mem: NewStore(maxModels), dir: dir}, nil
}

// Dir returns the snapshot directory ("" when memory-only).
func (ds *DiskStore) Dir() string { return ds.dir }

// Loads returns the number of models served from disk instead of a build.
func (ds *DiskStore) Loads() int64 { return ds.loads.Load() }

// Saves returns the number of snapshots successfully written to disk.
func (ds *DiskStore) Saves() int64 { return ds.saves.Load() }

// SaveErr returns the first write-behind persistence failure, if any.
func (ds *DiskStore) SaveErr() error {
	ds.errMu.Lock()
	defer ds.errMu.Unlock()
	return ds.saveErr
}

// Quiesce blocks until all background snapshot writes have finished.
func (ds *DiskStore) Quiesce() { ds.wg.Wait() }

// Len, Names, Pending, Wait, WaitCtx delegate to the resident cache.
func (ds *DiskStore) Len() int                               { return ds.mem.Len() }
func (ds *DiskStore) Names() []string                        { return ds.mem.Names() }
func (ds *DiskStore) Pending(name string) bool               { return ds.mem.Pending(name) }
func (ds *DiskStore) Wait(name string) (*Model, bool, error) { return ds.mem.Wait(name) }
func (ds *DiskStore) WaitCtx(ctx context.Context, name string) (*Model, bool, error) {
	return ds.mem.WaitCtx(ctx, name)
}

// path returns the snapshot file for name, guarding against names that
// could escape the directory. Callers validate with ValidModelName first;
// this is the second line.
func (ds *DiskStore) path(name string) (string, error) {
	if !ValidModelName(name) {
		return "", fmt.Errorf("service: invalid model name %q", name)
	}
	return filepath.Join(ds.dir, name+snapExt), nil
}

// loadDisk reads and rebuilds <name>.snap. found=false means no snapshot
// exists (not an error); decode/rebuild failures are returned as-is (typed
// snapshot errors included).
func (ds *DiskStore) loadDisk(name string) (m *Model, found bool, err error) {
	if ds.dir == "" {
		return nil, false, nil
	}
	p, err := ds.path(name)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	m, err = DecodeModel(data)
	if err != nil {
		return nil, true, fmt.Errorf("service: loading snapshot %s: %w", p, err)
	}
	ds.loads.Add(1)
	return m, true, nil
}

// saveDisk encodes and writes the model's snapshot atomically (temp file +
// rename), so readers never observe a half-written snapshot.
func (ds *DiskStore) saveDisk(name string, m *Model) error {
	if ds.dir == "" {
		return nil
	}
	p, err := ds.path(name)
	if err != nil {
		return err
	}
	data, err := m.EncodeSnapshot()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(ds.dir, name+".tmp-*")
	if err != nil {
		return err
	}
	if _, err = tmp.Write(data); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	ds.saves.Add(1)
	return nil
}

// saveBehind persists the model in the background (fresh builds).
func (ds *DiskStore) saveBehind(name string, m *Model) {
	if ds.dir == "" {
		return
	}
	ds.wg.Add(1)
	go func() {
		defer ds.wg.Done()
		if err := ds.saveDisk(name, m); err != nil {
			ds.errMu.Lock()
			if ds.saveErr == nil {
				ds.saveErr = err
			}
			ds.errMu.Unlock()
		}
	}()
}

// Get returns the named model from the resident cache, reading through to
// disk on a miss (the disk load runs single-flighted, so concurrent misses
// decode the snapshot once). found=false means neither cache nor disk has
// it. A snapshot that exists but fails to decode surfaces its typed error.
func (ds *DiskStore) Get(name string) (m *Model, found bool, err error) {
	if m, ok := ds.mem.Get(name); ok {
		return m, true, nil
	}
	if ds.dir == "" || !ValidModelName(name) {
		return nil, false, nil
	}
	var missing bool
	m, _, err = ds.mem.GetOrBuild(name, func() (*Model, error) {
		m, found, err := ds.loadDisk(name)
		if err != nil {
			return nil, err
		}
		if !found {
			missing = true
			return nil, errSnapshotMissing
		}
		return m, nil
	})
	if missing {
		return nil, false, nil
	}
	if err != nil {
		return nil, true, err
	}
	return m, true, nil
}

// errSnapshotMissing is the internal sentinel loadDisk misses are mapped
// through inside the single-flight closure; it never escapes Get.
var errSnapshotMissing = fmt.Errorf("service: no snapshot on disk")

// GetOrBuild returns the named model, loading it from disk on a cache miss
// and building it only when no snapshot exists either. Single-flight is
// preserved end to end: concurrent callers for one name share one disk
// load or one build. A model produced by build (not loaded) is persisted
// write-behind; loaded reports whether the model came from disk.
func (ds *DiskStore) GetOrBuild(name string, build func() (*Model, error)) (m *Model, built, loaded bool, err error) {
	var fromDisk bool
	m, built, err = ds.mem.GetOrBuild(name, func() (*Model, error) {
		if m, found, err := ds.loadDisk(name); err == nil && found {
			fromDisk = true
			return m, nil
		}
		// Disk miss or unreadable snapshot: fall through to a real build
		// (a corrupt file must not brick the name forever).
		return build()
	})
	if err != nil {
		return nil, false, false, err
	}
	if built && fromDisk {
		// The single-flight slot ran, but served a disk load, not a build.
		return m, false, true, nil
	}
	if built {
		ds.saveBehind(name, m)
	}
	return m, built, false, nil
}

// Put inserts an already-built model (the snapshot import path), persisting
// it synchronously before it becomes visible: a crash right after Put
// returns must not lose the import. ErrBuildInFlight passes through from
// the resident cache.
func (ds *DiskStore) Put(name string, m *Model) error {
	// Advisory pre-check so the common conflict (import racing a build)
	// rejects before touching disk; mem.Put below is the real authority.
	if _, ready := ds.mem.Get(name); !ready && ds.mem.Pending(name) {
		return ErrBuildInFlight
	}
	if err := ds.saveDisk(name, m); err != nil {
		return err
	}
	return ds.mem.Put(name, m)
}

// Replace publishes a new epoch of an already-served model: the resident
// cache entry swaps to m immediately (readers holding the old *Model finish
// on their consistent pre-append view) and the snapshot persists
// write-behind, like a fresh build — an append is an incremental build, and
// a crash between the swap and the write loses at most the appended epoch,
// never the model. ErrBuildInFlight passes through from the resident cache.
func (ds *DiskStore) Replace(name string, m *Model) error {
	if err := ds.mem.Put(name, m); err != nil {
		return err
	}
	ds.saveBehind(name, m)
	return nil
}

// Delete evicts the model and removes its snapshot file. It reports
// whether either existed.
func (ds *DiskStore) Delete(name string) bool {
	evicted := ds.mem.Delete(name)
	if ds.dir == "" {
		return evicted
	}
	p, err := ds.path(name)
	if err != nil {
		return evicted
	}
	if err := os.Remove(p); err == nil {
		return true
	}
	return evicted
}

// SnapshotBytes returns the encoded snapshot for name: from the resident
// model if cached (or loadable), else straight from the file. The export
// path of GET /v1/models/{name}/snapshot.
func (ds *DiskStore) SnapshotBytes(name string) (data []byte, found bool, err error) {
	m, found, err := ds.Get(name)
	if err != nil || !found {
		return nil, found, err
	}
	data, err = m.EncodeSnapshot()
	return data, true, err
}
