package service

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	traclus "repro"
	"repro/internal/snapshot"
	"repro/internal/spindex"
	"repro/internal/synth"
)

// probeSet returns trajectories the training models never saw, regenerated
// from a different corridor seed so classification exercises real nearest-
// cluster work.
func probeSet() []traclus.Trajectory {
	return synth.CorridorScene(2, 6, 20, 4, 17)
}

// TestSnapshotClassifyIdentity is the identity acceptance test: for every
// index backend, Load(Save(m)) classifies the probe set bit-identically to
// the original model (same cluster, same float64 distance bits), at every
// worker count.
func TestSnapshotClassifyIdentity(t *testing.T) {
	probes := probeSet()
	for _, kind := range []traclus.IndexKind{traclus.IndexGrid, traclus.IndexRTree, traclus.IndexNone} {
		cfg := buildConfig()
		cfg.Index = kind
		m, err := Build("identity-"+kind.String(), trainingSet(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := m.EncodeSnapshot()
		if err != nil {
			t.Fatalf("%v: encode: %v", kind, err)
		}
		loaded, err := DecodeModel(data)
		if err != nil {
			t.Fatalf("%v: decode: %v", kind, err)
		}
		if loaded.Result() != nil {
			t.Errorf("%v: loaded model has a non-nil Result", kind)
		}
		if got, want := loaded.Summary(), m.Summary(); got.Clusters != want.Clusters ||
			got.TotalSegments != want.TotalSegments || got.QMeasure != want.QMeasure {
			t.Errorf("%v: summary mismatch: got %+v want %+v", kind, got, want)
		}
		for _, workers := range []int{1, 2, 4, 0} {
			want := m.ClassifyBatch(context.Background(), probes, workers)
			got := loaded.ClassifyBatch(context.Background(), probes, workers)
			for i := range want {
				if got[i].Cluster != want[i].Cluster ||
					math.Float64bits(got[i].Distance) != math.Float64bits(want[i].Distance) ||
					got[i].Err != want[i].Err {
					t.Fatalf("%v workers=%d probe %d: loaded model classified (%d, %x, %q), original (%d, %x, %q)",
						kind, workers, i,
						got[i].Cluster, math.Float64bits(got[i].Distance), got[i].Err,
						want[i].Cluster, math.Float64bits(want[i].Distance), want[i].Err)
				}
			}
		}
	}
}

// TestSnapshotExportStable pins that exporting an imported model returns
// the retained snapshot: Encode(Load(bytes)) == bytes.
func TestSnapshotExportStable(t *testing.T) {
	m, err := Build("stable", trainingSet(), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	re, err := loaded.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(re) != string(data) {
		t.Fatalf("re-export differs: %d vs %d bytes", len(re), len(data))
	}
}

// TestSnapshotLoadBuildsOneIndex pins the restart cost: rebuilding a model
// from its snapshot constructs exactly one spatial index (the classifier's
// reference index) and runs zero clustering passes.
func TestSnapshotLoadBuildsOneIndex(t *testing.T) {
	m, err := Build("one-index", trainingSet(), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	before := spindex.Builds()
	if _, err := DecodeModel(data); err != nil {
		t.Fatal(err)
	}
	if got := spindex.Builds() - before; got != 1 {
		t.Errorf("loading a snapshot constructed %d indexes, want 1", got)
	}
}

// TestSnapshotZeroClusterModel round-trips a model whose clustering found
// nothing: it must survive the codec and keep returning ErrNoClusters.
func TestSnapshotZeroClusterModel(t *testing.T) {
	cfg := buildConfig()
	cfg.MinLns = 1e6
	m, err := Build("empty", trainingSet(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Summary().Clusters != 0 {
		t.Skip("scene unexpectedly clustered at MinLns=1e6")
	}
	data, err := m.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := loaded.Classify(probeSet()[0]); !errors.Is(err, traclus.ErrNoClusters) {
		t.Errorf("Classify on empty loaded model: %v, want ErrNoClusters", err)
	}
}

func TestValidModelName(t *testing.T) {
	for name, want := range map[string]bool{
		"taxi":                   true,
		"a":                      true,
		"Model-1.2_v":            true,
		"":                       false,
		".hidden":                false,
		"-dash":                  false,
		"a/b":                    false,
		"a b":                    false,
		"..":                     false,
		string(make([]byte, 65)): false,
	} {
		if got := ValidModelName(name); got != want {
			t.Errorf("ValidModelName(%q) = %v, want %v", name, got, want)
		}
	}
}

// --- DiskStore ---

func buildFor(name string) func() (*Model, error) {
	return func() (*Model, error) { return Build(name, trainingSet(), buildConfig()) }
}

func failBuild(t *testing.T) func() (*Model, error) {
	return func() (*Model, error) {
		t.Helper()
		t.Error("build ran where a disk load should have served")
		return nil, errors.New("unexpected build")
	}
}

func TestDiskStoreWriteBehindAndRestart(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDiskStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, built, loaded, err := ds.GetOrBuild("survivor", buildFor("survivor"))
	if err != nil {
		t.Fatal(err)
	}
	if !built || loaded {
		t.Fatalf("first GetOrBuild: built=%v loaded=%v, want build", built, loaded)
	}
	ds.Quiesce()
	if err := ds.SaveErr(); err != nil {
		t.Fatalf("write-behind save failed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "survivor.snap")); err != nil {
		t.Fatalf("snapshot file missing after Quiesce: %v", err)
	}

	// "Restart": a fresh DiskStore over the same directory must serve the
	// model from disk — the build func must never run.
	ds2, err := NewDiskStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	m2, built, loaded, err := ds2.GetOrBuild("survivor", failBuild(t))
	if err != nil {
		t.Fatal(err)
	}
	if built || !loaded {
		t.Fatalf("restart GetOrBuild: built=%v loaded=%v, want disk load", built, loaded)
	}
	if ds2.Loads() != 1 {
		t.Errorf("Loads = %d, want 1", ds2.Loads())
	}
	// And the reloaded model classifies identically to the original.
	probe := probeSet()[0]
	c1, d1, err1 := m.Classify(probe)
	c2, d2, err2 := m2.Classify(probe)
	if c1 != c2 || math.Float64bits(d1) != math.Float64bits(d2) || (err1 == nil) != (err2 == nil) {
		t.Errorf("reloaded model classifies (%d, %x, %v), original (%d, %x, %v)",
			c2, math.Float64bits(d2), err2, c1, math.Float64bits(d1), err1)
	}
	// Second Get is a pure cache hit: no further disk loads.
	if _, found, err := ds2.Get("survivor"); err != nil || !found {
		t.Fatalf("Get after load: found=%v err=%v", found, err)
	}
	if ds2.Loads() != 1 {
		t.Errorf("cache hit re-read disk: Loads = %d", ds2.Loads())
	}
}

func TestDiskStoreGetReadsThrough(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDiskStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ds.GetOrBuild("rt", buildFor("rt")); err != nil {
		t.Fatal(err)
	}
	ds.Quiesce()

	ds2, err := NewDiskStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, found, err := ds2.Get("rt"); err != nil || !found {
		t.Fatalf("Get read-through: found=%v err=%v", found, err)
	}
	if _, found, err := ds2.Get("nope"); err != nil || found {
		t.Fatalf("Get of absent model: found=%v err=%v", found, err)
	}
}

func TestDiskStorePutImport(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDiskStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build("imported", trainingSet(), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("imported", m); err != nil {
		t.Fatal(err)
	}
	// Synchronous: the file exists the moment Put returns.
	if _, err := os.Stat(filepath.Join(dir, "imported.snap")); err != nil {
		t.Fatalf("snapshot file missing right after Put: %v", err)
	}
	if _, found, err := ds.Get("imported"); err != nil || !found {
		t.Fatalf("Get after Put: found=%v err=%v", found, err)
	}
	if !ds.Delete("imported") {
		t.Error("Delete returned false")
	}
	if _, err := os.Stat(filepath.Join(dir, "imported.snap")); !os.IsNotExist(err) {
		t.Errorf("snapshot file survives Delete: %v", err)
	}
}

func TestStorePutInFlightConflict(t *testing.T) {
	s := NewStore(4)
	started := make(chan struct{})
	release := make(chan struct{})
	go s.GetOrBuild("busy", func() (*Model, error) {
		close(started)
		<-release
		return Build("busy", trainingSet(), buildConfig())
	})
	<-started
	m, err := Build("busy", trainingSet(), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("busy", m); !errors.Is(err, ErrBuildInFlight) {
		t.Errorf("Put during in-flight build: %v, want ErrBuildInFlight", err)
	}
	close(release)
	if _, _, err := s.Wait("busy"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("busy", m); err != nil {
		t.Errorf("Put after build resolved: %v", err)
	}
}

// TestDiskStoreCorruptFile pins the two corruption behaviours: Get surfaces
// the typed decode error, while GetOrBuild falls back to a real build so a
// damaged file cannot brick the name.
func TestDiskStoreCorruptFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.snap"), []byte("TRACSNAPgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := NewDiskStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, found, err := ds.Get("bad")
	var ce *snapshot.CorruptError
	if !found || !errors.As(err, &ce) {
		t.Fatalf("Get on corrupt snapshot: found=%v err=%v, want *CorruptError", found, err)
	}
	if _, built, loaded, err := ds.GetOrBuild("bad", buildFor("bad")); err != nil || !built || loaded {
		t.Fatalf("GetOrBuild over corrupt snapshot: built=%v loaded=%v err=%v, want fresh build", built, loaded, err)
	}
	ds.Quiesce()
}

// TestDiskStoreMemoryOnly pins that an empty dir degrades to the pure LRU.
func TestDiskStoreMemoryOnly(t *testing.T) {
	ds, err := NewDiskStore("", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, built, loaded, err := ds.GetOrBuild("mem", buildFor("mem")); err != nil || !built || loaded {
		t.Fatalf("built=%v loaded=%v err=%v", built, loaded, err)
	}
	ds.Quiesce()
	if ds.Saves() != 0 {
		t.Errorf("memory-only store wrote %d snapshots", ds.Saves())
	}
}

// --- benchmarks (committed as BENCH_pr7.json in CI) ---

func benchModel(b *testing.B) *Model {
	b.Helper()
	m, err := Build("bench", synth.CorridorScene(3, 12, 30, 4, 7), buildConfig())
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkSnapshotEncode(b *testing.B) {
	m := benchModel(b)
	sm, err := m.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	data, err := snapshot.Encode(sm)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapshot.Encode(sm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotDecode(b *testing.B) {
	data, err := benchModel(b).EncodeSnapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapshot.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiskStoreReadThrough measures the full restart path: cache miss
// → file read → decode → classifier index rebuild.
func BenchmarkDiskStoreReadThrough(b *testing.B) {
	dir := b.TempDir()
	ds, err := NewDiskStore(dir, 4)
	if err != nil {
		b.Fatal(err)
	}
	if err := ds.Put("bench", benchModel(b)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold, err := NewDiskStore(dir, 4)
		if err != nil {
			b.Fatal(err)
		}
		if _, found, err := cold.Get("bench"); err != nil || !found {
			b.Fatalf("found=%v err=%v", found, err)
		}
	}
}
