package service

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/segpool"
	"repro/internal/spindex"
	"repro/internal/synth"

	traclus "repro"
)

func trainingSet() []traclus.Trajectory {
	return synth.CorridorScene(2, 10, 24, 4, 11)
}

func buildConfig() traclus.Config {
	return traclus.Config{Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40}
}

func TestBuildSummary(t *testing.T) {
	trs := trainingSet()
	m, err := Build("corridors", trs, buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum := m.Summary()
	if sum.Name != "corridors" {
		t.Errorf("Name = %q", sum.Name)
	}
	if sum.Clusters != 2 {
		t.Errorf("Clusters = %d, want 2", sum.Clusters)
	}
	if sum.Trajectories != len(trs) {
		t.Errorf("Trajectories = %d, want %d", sum.Trajectories, len(trs))
	}
	if len(sum.ClusterStats) != sum.Clusters {
		t.Errorf("ClusterStats has %d entries, want %d", len(sum.ClusterStats), sum.Clusters)
	}
	if sum.QMeasure <= 0 {
		t.Errorf("QMeasure = %v", sum.QMeasure)
	}
	if sum.BuiltAt.IsZero() {
		t.Error("BuiltAt unset")
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	if _, err := Build("bad", trainingSet(), traclus.Config{Eps: -1, MinLns: 6}); err == nil {
		t.Error("negative eps accepted")
	}
}

// TestBuildCtxCancelled pins that a done context aborts the underlying
// clustering with context.Canceled — the condition the daemon maps to a
// "cancelled" (not "failed") job.
func TestBuildCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := BuildCtx(ctx, "doomed", trainingSet(), buildConfig(), nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m != nil {
		t.Fatal("cancelled build returned a model")
	}
}

// TestBuildCtxStreamsProgress pins the progress plumbing: a full build
// reports all three pipeline phases in order with each reaching fraction 1.
func TestBuildCtxStreamsProgress(t *testing.T) {
	type ev struct {
		phase string
		frac  float64
	}
	var events []ev // serialized by the pipeline's progress contract
	m, err := BuildCtx(context.Background(), "corridors", trainingSet(), buildConfig(), nil,
		func(phase string, fraction float64) { events = append(events, ev{phase, fraction}) })
	if err != nil {
		t.Fatal(err)
	}
	if m.Summary().Clusters != 2 {
		t.Fatalf("Clusters = %d, want 2", m.Summary().Clusters)
	}
	finished := map[string]bool{}
	order := []string{}
	for _, e := range events {
		if len(order) == 0 || order[len(order)-1] != e.phase {
			order = append(order, e.phase)
		}
		if e.frac == 1 {
			finished[e.phase] = true
		}
	}
	want := []string{"partition", "group", "represent"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("phase order = %v, want %v", order, want)
	}
	for _, ph := range want {
		if !finished[ph] {
			t.Errorf("phase %s never reported fraction 1", ph)
		}
	}
}

func TestModelClassifyBatch(t *testing.T) {
	trs := trainingSet()
	m, err := Build("corridors", trs, buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Mix valid queries with one unpartitionable trajectory; the batch must
	// report the failure per item without aborting.
	queries := append([]traclus.Trajectory{}, trs[:4]...)
	queries = append(queries, traclus.NewTrajectory(999, []traclus.Point{traclus.Pt(0, 0)}))
	for _, workers := range []int{1, 0} {
		out := m.ClassifyBatch(context.Background(), queries, workers)
		if len(out) != len(queries) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(out), len(queries))
		}
		for i, a := range out[:4] {
			if a.Err != "" || a.Cluster < 0 {
				t.Errorf("workers=%d: query %d: %+v", workers, i, a)
			}
			if a.TrajID != queries[i].ID {
				t.Errorf("workers=%d: query %d TrajID = %d, want %d", workers, i, a.TrajID, queries[i].ID)
			}
		}
		if bad := out[4]; bad.Err == "" || bad.Cluster != -1 {
			t.Errorf("workers=%d: invalid query not reported: %+v", workers, bad)
		}
	}
}

func TestClassifyBatchHonoursContext(t *testing.T) {
	m, err := Build("corridors", trainingSet(), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := m.ClassifyBatch(ctx, trainingSet(), 1)
	for i, a := range out {
		if !strings.Contains(a.Err, "context canceled") || a.Cluster != -1 {
			t.Fatalf("item %d computed despite cancelled context: %+v", i, a)
		}
	}
}

func TestBuildWithNoClusters(t *testing.T) {
	m, err := Build("sparse", trainingSet()[:2], traclus.Config{Eps: 1, MinLns: 50})
	if err != nil {
		t.Fatal(err)
	}
	if m.Summary().Clusters != 0 {
		t.Fatalf("Clusters = %d, want 0", m.Summary().Clusters)
	}
	if _, _, err := m.Classify(trainingSet()[0]); err == nil {
		t.Error("classification against an empty model succeeded")
	}
}

// noJob is a build function stub for registry tests that ignores its
// context and progress callback.
func noJob(result error) func(context.Context, func(string, float64)) (string, error) {
	return func(context.Context, func(string, float64)) (string, error) { return "", result }
}

func TestJobsLifecycle(t *testing.T) {
	jobs := NewJobs()
	release := make(chan struct{})
	job := jobs.Start(context.Background(), "m1", func(context.Context, func(string, float64)) (string, error) {
		<-release
		return "", nil
	})
	if job.ID == "" || job.State != JobRunning || job.Model != "m1" {
		t.Fatalf("unexpected initial job: %+v", job)
	}
	if got, ok := jobs.Get(job.ID); !ok || got.State != JobRunning {
		t.Fatalf("running job not found: %+v", got)
	}
	close(release)
	waitForState(t, jobs, job.ID, JobDone)

	fail := jobs.Start(context.Background(), "m2", noJob(errors.New("boom")))
	waitForState(t, jobs, fail.ID, JobFailed)
	got, _ := jobs.Get(fail.ID)
	if got.Error == "" || got.Finished.IsZero() {
		t.Errorf("failed job missing error/finish time: %+v", got)
	}
	if _, ok := jobs.Get("job-999"); ok {
		t.Error("unknown job found")
	}
}

// TestJobsCancellation pins the cancel path: Cancel aborts the job's
// context, a build that returns the context error finishes as
// JobCancelled (distinct from JobFailed), and late progress updates on the
// terminal job are dropped.
func TestJobsCancellation(t *testing.T) {
	jobs := NewJobs()
	var updateFn func(string, float64)
	job := jobs.Start(context.Background(), "m1", func(ctx context.Context, update func(string, float64)) (string, error) {
		updateFn = update
		update("partition", 0.25)
		<-ctx.Done()
		return "", ctx.Err()
	})
	for {
		if got, _ := jobs.Get(job.ID); got.Phase == "partition" {
			break
		}
		sleep()
	}
	if !jobs.Cancel(job.ID) {
		t.Fatal("Cancel found no running job")
	}
	waitForState(t, jobs, job.ID, JobCancelled)
	got, _ := jobs.Get(job.ID)
	if got.Phase != "partition" || got.Progress != 0.25 {
		t.Errorf("progress not preserved at cancellation: %+v", got)
	}
	updateFn("represent", 0.9) // must not mutate the terminal job
	if got, _ := jobs.Get(job.ID); got.Phase != "partition" {
		t.Errorf("late update mutated finished job: %+v", got)
	}
	if jobs.Cancel(job.ID) {
		t.Error("Cancel succeeded on a finished job")
	}

	// A build that swallows the context error (returns nil) is Done, not
	// Cancelled — the state tracks what the build reported.
	swallow := jobs.Start(context.Background(), "m2", noJob(nil))
	waitForState(t, jobs, swallow.ID, JobDone)

	// DeadlineExceeded is a failure, not a cancellation.
	timeout := jobs.Start(context.Background(), "m3", noJob(context.DeadlineExceeded))
	waitForState(t, jobs, timeout.ID, JobFailed)
}

func TestJobsCancelModel(t *testing.T) {
	jobs := NewJobs()
	build := func(ctx context.Context, _ func(string, float64)) (string, error) {
		<-ctx.Done()
		return "", ctx.Err()
	}
	a1 := jobs.Start(context.Background(), "a", build)
	a2 := jobs.Start(context.Background(), "a", build)
	b := jobs.Start(context.Background(), "b", build)
	if n := jobs.CancelModel("a"); n != 2 {
		t.Fatalf("CancelModel(a) = %d, want 2", n)
	}
	waitForState(t, jobs, a1.ID, JobCancelled)
	waitForState(t, jobs, a2.ID, JobCancelled)
	if got, _ := jobs.Get(b.ID); got.State != JobRunning {
		t.Fatalf("unrelated model's job was cancelled: %+v", got)
	}
	if n := jobs.CancelModel("a"); n != 0 {
		t.Errorf("second CancelModel(a) = %d, want 0", n)
	}
	jobs.CancelModel("b")
	waitForState(t, jobs, b.ID, JobCancelled)
}

func TestJobsPruneFinished(t *testing.T) {
	jobs := NewJobs()
	jobs.keep = 3
	var ids []string
	for i := 0; i < 5; i++ {
		job := jobs.Start(context.Background(), "m", noJob(nil))
		waitForState(t, jobs, job.ID, JobDone)
		ids = append(ids, job.ID)
	}
	if n := jobs.Len(); n != 3 {
		t.Fatalf("Len = %d after pruning, want 3", n)
	}
	for _, id := range ids[:2] {
		if _, ok := jobs.Get(id); ok {
			t.Errorf("pruned job %s still present", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := jobs.Get(id); !ok {
			t.Errorf("recent job %s evicted", id)
		}
	}
}

func waitForState(t *testing.T, jobs *Jobs, id string, want JobState) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if job, ok := jobs.Get(id); ok && job.State == want {
			return
		}
		sleep()
	}
	job, _ := jobs.Get(id)
	t.Fatalf("job %s never reached %s: %+v", id, want, job)
}

// TestModelBuildConstructsOneIndexPerDataset pins the single-build data
// flow of the spindex refactor: a model build indexes exactly two datasets
// — the pooled trajectory partitions (once, shared by the grouping phase at
// every worker count) and the classifier's reference segments (once,
// memoized on the result) — and nothing else, at any worker count and with
// or without in-build parameter estimation.
func TestModelBuildConstructsOneIndexPerDataset(t *testing.T) {
	for _, workers := range []int{1, 4, 0} {
		cfg := buildConfig()
		cfg.Workers = workers
		before := spindex.Builds()
		poolsBefore := segpool.Builds()
		m, err := Build("count", trainingSet(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := spindex.Builds() - before; got != 2 {
			t.Errorf("workers=%d: model build constructed %d indexes, want 2 (segments + reference segments)", workers, got)
		}
		// The columnar pools mirror the indexes one-to-one: every searcher
		// build pools its dataset exactly once.
		if got := segpool.Builds() - poolsBefore; got != 2 {
			t.Errorf("workers=%d: model build constructed %d segment pools, want 2", workers, got)
		}
		// Classifying, and even reaching through to Result.Classify, must
		// reuse the already-built reference index — zero further builds,
		// and zero further pools.
		before = spindex.Builds()
		poolsBefore = segpool.Builds()
		if _, _, err := m.Classify(trainingSet()[0]); err != nil {
			t.Fatal(err)
		}
		if _, _, err := m.Result().Classify(trainingSet()[1]); err != nil {
			t.Fatal(err)
		}
		if got := spindex.Builds() - before; got != 0 {
			t.Errorf("workers=%d: serving classifies constructed %d extra indexes, want 0", workers, got)
		}
		if got := segpool.Builds() - poolsBefore; got != 0 {
			t.Errorf("workers=%d: serving classifies constructed %d extra segment pools, want 0", workers, got)
		}
		// The append path is growth, not construction: the model's one
		// segment index absorbs the new partitions in place — ZERO new index
		// builds, zero new pools, and the growth registers in the separate
		// Grows counter so the two operations never alias in these pins.
		extra := trainingSet()
		for i := range extra {
			extra[i].ID += 1000
		}
		before = spindex.Builds()
		poolsBefore = segpool.Builds()
		growsBefore := spindex.Grows()
		next, err := m.Append(context.Background(), extra)
		if err != nil {
			t.Fatal(err)
		}
		if got := spindex.Builds() - before; got != 0 {
			t.Errorf("workers=%d: append constructed %d indexes, want 0", workers, got)
		}
		if got := segpool.Builds() - poolsBefore; got != 0 {
			t.Errorf("workers=%d: append constructed %d segment pools, want 0", workers, got)
		}
		if got := spindex.Grows() - growsBefore; got < 1 {
			t.Errorf("workers=%d: append registered %d index growths, want ≥ 1", workers, got)
		}
		// The post-append classifier is rebuilt lazily: the first classify on
		// the new epoch constructs the reference index (a new dataset — the
		// representatives changed), exactly once, and later calls reuse it.
		before = spindex.Builds()
		if _, _, err := next.Classify(trainingSet()[0]); err != nil {
			t.Fatal(err)
		}
		if _, _, err := next.Classify(trainingSet()[1]); err != nil {
			t.Fatal(err)
		}
		if got := spindex.Builds() - before; got != 1 {
			t.Errorf("workers=%d: first classify after append constructed %d indexes, want exactly 1", workers, got)
		}
	}
	// An auto-estimated build shares the one segment index between the
	// estimation sweep and the grouping phase: still two builds total, and
	// two pools.
	before := spindex.Builds()
	poolsBefore := segpool.Builds()
	if _, err := BuildCtx(context.Background(), "auto", trainingSet(), buildConfig(),
		&EstimateRange{Lo: 5, Hi: 60}, nil); err != nil {
		t.Fatal(err)
	}
	if got := spindex.Builds() - before; got != 2 {
		t.Errorf("auto build constructed %d indexes, want 2", got)
	}
	if got := segpool.Builds() - poolsBefore; got != 2 {
		t.Errorf("auto build constructed %d segment pools, want 2", got)
	}
}

// TestBuildWithEstimation covers the in-build §4.4 estimation path: the
// summary must report the chosen parameters, matching a standalone
// EstimateParameters call.
func TestBuildWithEstimation(t *testing.T) {
	est, err := traclus.EstimateParameters(trainingSet(), 5, 60, traclus.Config{
		CostAdvantage: 15, MinSegmentLength: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildCtx(context.Background(), "auto", trainingSet(), buildConfig(),
		&EstimateRange{Lo: 5, Hi: 60}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := m.Summary()
	if sum.Eps != est.Eps {
		t.Errorf("Summary.Eps = %v, want the estimated %v", sum.Eps, est.Eps)
	}
	if want := float64(est.MinLnsLo+est.MinLnsHi) / 2; sum.MinLns != want {
		t.Errorf("Summary.MinLns = %v, want %v", sum.MinLns, want)
	}
	if m.Result().Estimated == nil {
		t.Error("Result.Estimated unset on an estimated build")
	}
}
