package service

import (
	"context"
	"strings"
	"testing"

	"repro/internal/synth"

	traclus "repro"
)

func trainingSet() []traclus.Trajectory {
	return synth.CorridorScene(2, 10, 24, 4, 11)
}

func buildConfig() traclus.Config {
	return traclus.Config{Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40}
}

func TestBuildSummary(t *testing.T) {
	trs := trainingSet()
	m, err := Build("corridors", trs, buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum := m.Summary()
	if sum.Name != "corridors" {
		t.Errorf("Name = %q", sum.Name)
	}
	if sum.Clusters != 2 {
		t.Errorf("Clusters = %d, want 2", sum.Clusters)
	}
	if sum.Trajectories != len(trs) {
		t.Errorf("Trajectories = %d, want %d", sum.Trajectories, len(trs))
	}
	if len(sum.ClusterStats) != sum.Clusters {
		t.Errorf("ClusterStats has %d entries, want %d", len(sum.ClusterStats), sum.Clusters)
	}
	if sum.QMeasure <= 0 {
		t.Errorf("QMeasure = %v", sum.QMeasure)
	}
	if sum.BuiltAt.IsZero() {
		t.Error("BuiltAt unset")
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	if _, err := Build("bad", trainingSet(), traclus.Config{Eps: -1, MinLns: 6}); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestModelClassifyBatch(t *testing.T) {
	trs := trainingSet()
	m, err := Build("corridors", trs, buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Mix valid queries with one unpartitionable trajectory; the batch must
	// report the failure per item without aborting.
	queries := append([]traclus.Trajectory{}, trs[:4]...)
	queries = append(queries, traclus.NewTrajectory(999, []traclus.Point{traclus.Pt(0, 0)}))
	for _, workers := range []int{1, 0} {
		out := m.ClassifyBatch(context.Background(), queries, workers)
		if len(out) != len(queries) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(out), len(queries))
		}
		for i, a := range out[:4] {
			if a.Err != "" || a.Cluster < 0 {
				t.Errorf("workers=%d: query %d: %+v", workers, i, a)
			}
			if a.TrajID != queries[i].ID {
				t.Errorf("workers=%d: query %d TrajID = %d, want %d", workers, i, a.TrajID, queries[i].ID)
			}
		}
		if bad := out[4]; bad.Err == "" || bad.Cluster != -1 {
			t.Errorf("workers=%d: invalid query not reported: %+v", workers, bad)
		}
	}
}

func TestClassifyBatchHonoursContext(t *testing.T) {
	m, err := Build("corridors", trainingSet(), buildConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := m.ClassifyBatch(ctx, trainingSet(), 1)
	for i, a := range out {
		if !strings.Contains(a.Err, "context canceled") || a.Cluster != -1 {
			t.Fatalf("item %d computed despite cancelled context: %+v", i, a)
		}
	}
}

func TestBuildWithNoClusters(t *testing.T) {
	m, err := Build("sparse", trainingSet()[:2], traclus.Config{Eps: 1, MinLns: 50})
	if err != nil {
		t.Fatal(err)
	}
	if m.Summary().Clusters != 0 {
		t.Fatalf("Clusters = %d, want 0", m.Summary().Clusters)
	}
	if _, _, err := m.Classify(trainingSet()[0]); err == nil {
		t.Error("classification against an empty model succeeded")
	}
}

func TestJobsLifecycle(t *testing.T) {
	jobs := NewJobs()
	release := make(chan struct{})
	job := jobs.Start("m1", func() (string, error) {
		<-release
		return "", nil
	})
	if job.ID == "" || job.State != JobRunning || job.Model != "m1" {
		t.Fatalf("unexpected initial job: %+v", job)
	}
	if got, ok := jobs.Get(job.ID); !ok || got.State != JobRunning {
		t.Fatalf("running job not found: %+v", got)
	}
	close(release)
	waitForState(t, jobs, job.ID, JobDone)

	fail := jobs.Start("m2", func() (string, error) { return "", context.Canceled })
	waitForState(t, jobs, fail.ID, JobFailed)
	got, _ := jobs.Get(fail.ID)
	if got.Error == "" || got.Finished.IsZero() {
		t.Errorf("failed job missing error/finish time: %+v", got)
	}
	if _, ok := jobs.Get("job-999"); ok {
		t.Error("unknown job found")
	}
}

func TestJobsPruneFinished(t *testing.T) {
	jobs := NewJobs()
	jobs.keep = 3
	var ids []string
	for i := 0; i < 5; i++ {
		job := jobs.Start("m", func() (string, error) { return "", nil })
		waitForState(t, jobs, job.ID, JobDone)
		ids = append(ids, job.ID)
	}
	if n := jobs.Len(); n != 3 {
		t.Fatalf("Len = %d after pruning, want 3", n)
	}
	for _, id := range ids[:2] {
		if _, ok := jobs.Get(id); ok {
			t.Errorf("pruned job %s still present", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := jobs.Get(id); !ok {
			t.Errorf("recent job %s evicted", id)
		}
	}
}

func waitForState(t *testing.T, jobs *Jobs, id string, want JobState) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if job, ok := jobs.Get(id); ok && job.State == want {
			return
		}
		sleep()
	}
	job, _ := jobs.Get(id)
	t.Fatalf("job %s never reached %s: %+v", id, want, job)
}
