package service

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// ErrBuildInFlight is returned by Put when the name is currently being
// built: replacing the entry mid-build would hand the builder's waiters a
// model the build didn't produce. Callers retry after the build resolves.
var ErrBuildInFlight = errors.New("service: model build in flight")

// Store is an LRU cache of named models with single-flight build
// deduplication: concurrent GetOrBuild calls for the same name trigger
// exactly one build, and everyone waits for (and shares) its outcome.
// Failed builds are not cached — the next request retries.
//
// Locking protocol: the store mutex guards the map and the LRU list only;
// it is never held while a build function runs, so slow builds don't block
// lookups of other models. Waiters block on the entry's ready channel
// outside the lock.
type Store struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*entry
	lru     *list.List // front = most recently used; ready entries only
}

type entry struct {
	name  string
	ready chan struct{} // closed when the build finished
	model *Model
	err   error
	elem  *list.Element // nil while building or after eviction
}

// NewStore creates a store capped at maxModels ready models (≤ 0 means
// unbounded). Builds in flight do not count toward the cap.
func NewStore(maxModels int) *Store {
	return &Store{cap: maxModels, entries: map[string]*entry{}, lru: list.New()}
}

// Len returns the number of ready models.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Names returns the ready model names, most recently used first.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, s.lru.Len())
	for e := s.lru.Front(); e != nil; e = e.Next() {
		names = append(names, e.Value.(*entry).name)
	}
	return names
}

// Pending reports whether the name is cached or has a build in flight —
// i.e. whether a GetOrBuild for it would join existing work instead of
// starting a new build. Advisory: the answer can be stale by the time the
// caller acts on it.
func (s *Store) Pending(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[name]
	return ok
}

// Wait blocks until the named entry resolves: it returns the cached model
// immediately, waits out an in-flight build and shares its outcome, or
// reports found=false when there is nothing to wait for (including a build
// that failed and was dropped between the caller's check and this call).
// Unlike GetOrBuild it carries no build function, so join-style callers
// need not retain build inputs.
func (s *Store) Wait(name string) (m *Model, found bool, err error) {
	return s.WaitCtx(context.Background(), name)
}

// WaitCtx is Wait bounded by ctx: a joiner stops waiting when its own
// context ends (found stays true — there was something to wait for — and
// err is ctx.Err()). The underlying build is unaffected; only this waiter
// gives up.
func (s *Store) WaitCtx(ctx context.Context, name string) (m *Model, found bool, err error) {
	s.mu.Lock()
	en, ok := s.entries[name]
	if !ok {
		s.mu.Unlock()
		return nil, false, nil
	}
	if en.elem != nil {
		s.lru.MoveToFront(en.elem)
		s.mu.Unlock()
		return en.model, true, nil
	}
	s.mu.Unlock()
	select {
	case <-en.ready:
		return en.model, true, en.err
	case <-ctx.Done():
		return nil, true, ctx.Err()
	}
}

// Get returns the named model if it is built and cached, marking it
// recently used. It never waits on an in-flight build.
func (s *Store) Get(name string) (*Model, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	en, ok := s.entries[name]
	if !ok || en.elem == nil {
		return nil, false
	}
	s.lru.MoveToFront(en.elem)
	return en.model, true
}

// Delete evicts the named model from the cache (in-flight builds are left
// alone). It reports whether a ready model was removed.
func (s *Store) Delete(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	en, ok := s.entries[name]
	if !ok || en.elem == nil {
		return false
	}
	s.lru.Remove(en.elem)
	en.elem = nil
	delete(s.entries, name)
	return true
}

// Put inserts (or replaces) a ready model under name, marking it most
// recently used and evicting beyond the cap exactly like a successful
// build. It is the import path — PUT /v1/models/{name}/snapshot — and
// never disturbs single-flight: if a build for name is in flight it
// returns ErrBuildInFlight instead of racing it.
func (s *Store) Put(name string, m *Model) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[name]; ok {
		if old.elem == nil {
			return ErrBuildInFlight
		}
		// Replace with a fresh entry rather than mutating the old one:
		// finished builds and their joiners read the old entry's model
		// outside the lock, so it must stay immutable once ready.
		s.lru.Remove(old.elem)
		old.elem = nil
	}
	en := &entry{name: name, ready: closedReady, model: m}
	s.entries[name] = en
	en.elem = s.lru.PushFront(en)
	for s.cap > 0 && s.lru.Len() > s.cap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		old := oldest.Value.(*entry)
		old.elem = nil
		delete(s.entries, old.name)
	}
	return nil
}

// closedReady is the shared pre-closed ready channel of entries inserted
// already-resolved (Put): Wait-style joiners see them as finished builds.
var closedReady = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// GetOrBuild returns the named model, building it with build on a miss.
// Among concurrent callers for the same name, exactly one runs build; the
// rest block until it finishes and share the same model or error. On
// success the model enters the LRU cache, evicting the least recently used
// model beyond the cap; on failure nothing is cached. built reports whether
// this caller ran the build — false for cache hits and for callers that
// joined another caller's in-flight build (whose input, if any, was
// therefore not used).
func (s *Store) GetOrBuild(name string, build func() (*Model, error)) (m *Model, built bool, err error) {
	s.mu.Lock()
	if en, ok := s.entries[name]; ok {
		if en.elem != nil {
			s.lru.MoveToFront(en.elem)
			s.mu.Unlock()
			return en.model, false, nil
		}
		s.mu.Unlock()
		<-en.ready
		return en.model, false, en.err
	}
	en := &entry{name: name, ready: make(chan struct{})}
	s.entries[name] = en
	s.mu.Unlock()

	en.model, en.err = build()

	s.mu.Lock()
	if en.err != nil {
		delete(s.entries, name)
	} else {
		en.elem = s.lru.PushFront(en)
		for s.cap > 0 && s.lru.Len() > s.cap {
			oldest := s.lru.Back()
			s.lru.Remove(oldest)
			old := oldest.Value.(*entry)
			old.elem = nil
			delete(s.entries, old.name)
		}
	}
	s.mu.Unlock()
	close(en.ready)
	return en.model, true, en.err
}
