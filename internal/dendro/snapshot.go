package dendro

// Conversion to and from the persisted form (internal/snapshot format v2).
// Only the item set and the sorted neighbor lists cross the wire; the
// weight prefix sums and the union-find replay log are derived again on
// load. The derivation is exact, not approximate: prefix sums replay the
// identical additions in the identical stored order, and the edge log's
// (dist, a, b) sort key is unique per pair, so a restored dendrogram cuts
// bit-identically to the one that was saved.

import (
	"repro/internal/segclust"
	"repro/internal/snapshot"
)

// Snapshot converts the dendrogram to its persisted form.
func (d *Dendrogram) Snapshot() *snapshot.Dendro {
	n := len(d.items)
	dd := &snapshot.Dendro{
		MaxEps:    d.maxEps,
		Items:     make([]snapshot.DendroItem, n),
		Neighbors: make([][]snapshot.DendroNeighbor, n),
	}
	for i, it := range d.items {
		dd.Items[i] = snapshot.DendroItem{Seg: it.Seg, TrajID: it.TrajID, Weight: it.Weight}
	}
	for i := 0; i < n; i++ {
		lo, hi := d.off[i], d.off[i+1]
		list := make([]snapshot.DendroNeighbor, hi-lo)
		for k := range list {
			list[k] = snapshot.DendroNeighbor{ID: int(d.ids[lo+int64(k)]), Dist: d.dist[lo+int64(k)]}
		}
		dd.Neighbors[i] = list
	}
	return dd
}

// FromSnapshot rebuilds a dendrogram from its persisted form. The input
// must satisfy snapshot validation (Decode guarantees it for anything read
// from the wire); FromSnapshot re-checks it so a hand-constructed Dendro
// cannot smuggle out-of-range ids into the flat arrays.
func FromSnapshot(dd *snapshot.Dendro) (*Dendrogram, error) {
	if dd == nil {
		return nil, &snapshot.InvalidError{Field: "Dendro", Reason: "must be non-nil"}
	}
	if err := dd.Validate(); err != nil {
		return nil, err
	}
	n := len(dd.Items)
	d := &Dendrogram{maxEps: dd.MaxEps, items: make([]segclust.Item, n), off: make([]int64, n+1)}
	for i, it := range dd.Items {
		d.items[i] = segclust.Item{Seg: it.Seg, TrajID: it.TrajID, Weight: it.Weight}
	}
	total, ecount := 0, 0
	for i, list := range dd.Neighbors {
		total += len(list)
		for _, nb := range list {
			if nb.ID > i {
				ecount++
			}
		}
	}
	d.ids = make([]int32, 0, total)
	d.dist = make([]float64, 0, total)
	d.cum = make([]float64, 0, total)
	d.edges = make([]edge, 0, ecount)
	for i, list := range dd.Neighbors {
		d.off[i+1] = d.off[i] + int64(len(list))
		var sum float64
		for _, nb := range list {
			d.ids = append(d.ids, int32(nb.ID))
			d.dist = append(d.dist, nb.Dist)
			sum += d.items[nb.ID].Weight
			d.cum = append(d.cum, sum)
			if nb.ID > i {
				d.edges = append(d.edges, edge{a: int32(i), b: int32(nb.ID), d: nb.Dist})
			}
		}
	}
	sortEdges(d.edges)
	return d, nil
}
