package dendro

// The equivalence suite: CutAt(ε) must be bit-identical to a fresh
// segclust run at ε — labels, cluster membership, trajectory sets, and the
// Removed count — at every ε, under every index backend and worker count.
// That identity is the subsystem's entire contract; everything else
// (sweeps, the estimation rewire, the daemon endpoints) leans on it.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/lsdist"
	"repro/internal/segclust"
	"repro/internal/snapshot"
	"repro/internal/spindex"
	"repro/internal/synth"
)

// testItems partitions a three-corridor scene into pooled segments with
// unit weights — the regime where the dendrogram's sorted-order weight
// sums are exactly the fresh pass's candidate-order sums.
func testItems(t *testing.T) []segclust.Item {
	t.Helper()
	trs := synth.CorridorScene(3, 12, 24, 5, 7)
	cfg := core.DefaultConfig()
	cfg.Partition.CostAdvantage, cfg.Partition.MinLength = 15, 40
	items := core.PartitionAll(trs, cfg)
	if len(items) < 50 {
		t.Fatalf("scene too small: %d items", len(items))
	}
	return items
}

func backends() map[string]spindex.Backend {
	return map[string]spindex.Backend{
		"grid":  spindex.Grid(),
		"rtree": spindex.RTree(),
		"brute": spindex.Brute(),
	}
}

func sameResult(t *testing.T, ctxLabel string, want, got *segclust.Result) {
	t.Helper()
	if !reflect.DeepEqual(want.ClusterOf, got.ClusterOf) {
		t.Errorf("%s: ClusterOf differs", ctxLabel)
	}
	if !reflect.DeepEqual(want.Clusters, got.Clusters) {
		t.Errorf("%s: Clusters differ: %d vs %d", ctxLabel, len(want.Clusters), len(got.Clusters))
	}
	if want.Removed != got.Removed {
		t.Errorf("%s: Removed = %d, want %d", ctxLabel, got.Removed, want.Removed)
	}
}

func TestCutEquivalence(t *testing.T) {
	items := testItems(t)
	opt := lsdist.Options{Weights: lsdist.DefaultWeights()}
	epsGrid := []float64{5, 12, 20, 28, 35, 45, 60}
	const minLns = 4

	for name, backend := range backends() {
		for _, workers := range []int{1, 2, 4, 0} {
			d, err := Build(context.Background(), items, opt, backend, 60, workers)
			if err != nil {
				t.Fatalf("%s/w%d: Build: %v", name, workers, err)
			}
			for _, eps := range epsGrid {
				got, err := d.CutAt(eps, minLns, 0)
				if err != nil {
					t.Fatalf("%s/w%d/eps=%g: CutAt: %v", name, workers, eps, err)
				}
				want, err := segclust.Run(items, segclust.Config{
					Eps: eps, MinLns: minLns, Options: opt,
					Backend: backend, Workers: workers,
				})
				if err != nil {
					t.Fatalf("%s/w%d/eps=%g: Run: %v", name, workers, eps, err)
				}
				sameResult(t, fmt.Sprintf("%s/w%d/eps=%g", name, workers, eps), want, got)
			}
		}
	}
}

// TestCutRepresentativeEquivalence extends the identity through assembly:
// the representatives built over a cut equal the ones a fresh run's
// clusters produce, since membership and member order are identical.
func TestCutRepresentativeEquivalence(t *testing.T) {
	items := testItems(t)
	opt := lsdist.Options{Weights: lsdist.DefaultWeights()}
	d, err := Build(context.Background(), items, opt, spindex.Grid(), 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{15, 25, 40} {
		cut, err := d.CutAt(eps, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := segclust.Run(items, segclust.Config{Eps: eps, MinLns: 4, Options: opt, Backend: spindex.Grid()})
		if err != nil {
			t.Fatal(err)
		}
		ccfg := core.Config{Eps: eps, MinLns: 4, Distance: opt}
		a, err := core.AssembleCtx(context.Background(), items, cut, ccfg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.AssembleCtx(context.Background(), items, fresh, ccfg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Clusters, b.Clusters) {
			t.Errorf("eps=%g: assembled clusters differ", eps)
		}
	}
}

// TestCutMonotonicity asserts the dendrogram property that justifies the
// name: clusters only merge as ε grows. Two core segments sharing a
// non-noise cluster at ε1 still share one at every ε2 ≥ ε1 at which both
// remain core (cores never split, and a core's cluster can only be
// absorbed into a larger one).
func TestCutMonotonicity(t *testing.T) {
	items := testItems(t)
	opt := lsdist.Options{Weights: lsdist.DefaultWeights()}
	d, err := Build(context.Background(), items, opt, spindex.Grid(), 60, 0)
	if err != nil {
		t.Fatal(err)
	}
	const minLns = 4
	epsGrid := []float64{5, 10, 18, 26, 34, 44, 56}
	prevCut := make(map[[2]int]bool)
	for gi, eps := range epsGrid {
		res, err := d.CutAt(eps, minLns, 1) // MinTrajs 1: no cardinality removal
		if err != nil {
			t.Fatal(err)
		}
		core := make([]bool, len(items))
		for i := range items {
			w, err := d.weightAtChecked(i, eps)
			if err != nil {
				t.Fatal(err)
			}
			core[i] = w >= minLns
		}
		for pair := range prevCut {
			a, b := pair[0], pair[1]
			if !core[a] || !core[b] {
				continue
			}
			if res.ClusterOf[a] != res.ClusterOf[b] || res.ClusterOf[a] == segclust.Noise {
				t.Fatalf("eps=%g (grid step %d): core pair %v separated after being joined at a smaller ε", eps, gi, pair)
			}
		}
		// Record this cut's joined core pairs (sampled per cluster to keep
		// the pair set linear).
		for _, c := range res.Clusters {
			var first = -1
			for _, m := range c.Members {
				if !core[m] {
					continue
				}
				if first == -1 {
					first = m
					continue
				}
				prevCut[[2]int{first, m}] = true
			}
		}
	}
}

// weightAtChecked exposes the internal neighborhood weight for the
// monotonicity test without widening the public API.
func (d *Dendrogram) weightAtChecked(i int, eps float64) (float64, error) {
	if eps > d.maxEps {
		return 0, d.rangeErr("Eps", eps)
	}
	return d.weightAt(i, eps), nil
}

func TestNeighborhoodWeightsMatchShared(t *testing.T) {
	items := testItems(t)
	opt := lsdist.Options{Weights: lsdist.DefaultWeights()}
	shared := segclust.NewSharedIndexFor(items, opt, spindex.Grid())
	d, err := FromShared(context.Background(), shared, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{3, 11, 27, 50} {
		want := shared.NeighborhoodWeights(eps, 0)
		got, err := d.NeighborhoodWeights(eps, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("eps=%g: neighborhood weights differ", eps)
		}
	}
	if _, err := d.NeighborhoodWeights(50.1, nil); err == nil {
		t.Error("eps above MaxEps: want error")
	}
}

func TestCoreDist(t *testing.T) {
	items := testItems(t)
	opt := lsdist.Options{Weights: lsdist.DefaultWeights()}
	d, err := Build(context.Background(), items, opt, spindex.Grid(), 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	const minLns = 4
	for i := 0; i < d.Len(); i++ {
		cd := d.CoreDist(i, minLns)
		if math.IsInf(cd, 1) {
			if w := d.weightAt(i, d.maxEps); w >= minLns {
				t.Fatalf("item %d: CoreDist=+Inf but weight %g ≥ MinLns at MaxEps", i, w)
			}
			continue
		}
		// The core distance is the smallest ε at which the item is core:
		// core at cd, not core just below it.
		if w := d.weightAt(i, cd); w < minLns {
			t.Fatalf("item %d: not core at its own core distance %g (weight %g)", i, cd, w)
		}
		if below := math.Nextafter(cd, 0); below > 0 {
			if w := d.weightAt(i, below); w >= minLns {
				t.Fatalf("item %d: already core below its core distance", i)
			}
		}
	}
}

// TestCutZeroDistCalls pins the headline property structurally: once
// built, cutting and weighting at any ε performs no distance evaluations —
// the dendrogram's recorded call count never moves, and it holds no
// reference to the searcher that could make one.
func TestCutZeroDistCalls(t *testing.T) {
	items := testItems(t)
	opt := lsdist.Options{Weights: lsdist.DefaultWeights()}
	d, err := Build(context.Background(), items, opt, spindex.Grid(), 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	built := d.DistCalls()
	if built == 0 {
		t.Fatal("build recorded no distance calls")
	}
	for _, eps := range []float64{5, 17, 33, 50} {
		if _, err := d.CutAt(eps, 4, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := d.NeighborhoodWeights(eps, nil); err != nil {
			t.Fatal(err)
		}
	}
	if d.DistCalls() != built {
		t.Fatalf("cuts performed %d extra distance calls", d.DistCalls()-built)
	}
	// Cuts report zero DistCalls on the result itself: the work was paid
	// once at build time.
	res, err := d.CutAt(25, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DistCalls != 0 {
		t.Fatalf("cut result claims %d distance calls", res.DistCalls)
	}
}

func TestCutValidation(t *testing.T) {
	items := testItems(t)
	opt := lsdist.Options{Weights: lsdist.DefaultWeights()}
	d, err := Build(context.Background(), items, opt, spindex.Grid(), 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name        string
		eps, minLns float64
	}{
		{"zero eps", 0, 4},
		{"negative eps", -1, 4},
		{"NaN eps", math.NaN(), 4},
		{"inf eps", math.Inf(1), 4},
		{"eps beyond max", 30.5, 4},
		{"zero minlns", 10, 0},
		{"NaN minlns", 10, math.NaN()},
	}
	for _, tc := range cases {
		var ce *segclust.ConfigError
		if _, err := d.CutAt(tc.eps, tc.minLns, 0); err == nil {
			t.Errorf("%s: CutAt succeeded", tc.name)
		} else if !errors.As(err, &ce) {
			t.Errorf("%s: error %T (%v), want *segclust.ConfigError", tc.name, err, err)
		}
	}
	if _, err := Build(context.Background(), items, opt, spindex.Grid(), math.Inf(1), 0); err == nil {
		t.Error("Build with infinite MaxEps succeeded")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	items := testItems(t)
	opt := lsdist.Options{Weights: lsdist.DefaultWeights()}
	d, err := Build(context.Background(), items, opt, spindex.Grid(), 45, 0)
	if err != nil {
		t.Fatal(err)
	}
	dd := d.Snapshot()
	if err := dd.Validate(); err != nil {
		t.Fatalf("snapshot of a built dendrogram fails validation: %v", err)
	}
	d2, err := FromSnapshot(dd)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.off, d2.off) || !reflect.DeepEqual(d.ids, d2.ids) ||
		!reflect.DeepEqual(d.dist, d2.dist) || !reflect.DeepEqual(d.cum, d2.cum) ||
		!reflect.DeepEqual(d.edges, d2.edges) || !reflect.DeepEqual(d.items, d2.items) {
		t.Fatal("restored dendrogram's merge structure differs from the original")
	}
	for _, eps := range []float64{8, 22, 45} {
		a, err := d.CutAt(eps, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d2.CutAt(eps, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "restored cut", a, b)
	}
	if _, err := FromSnapshot(nil); err == nil {
		t.Error("FromSnapshot(nil) succeeded")
	}
	bad := d.Snapshot()
	bad.Neighbors[0] = append(bad.Neighbors[0], snapshot.DendroNeighbor{ID: len(items) + 5, Dist: 1})
	if _, err := FromSnapshot(bad); err == nil {
		t.Error("FromSnapshot accepted an out-of-range neighbor id")
	}
}
