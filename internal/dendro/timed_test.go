package dendro

// CutAt ≡ fresh-regroup equivalence under the spatiotemporal geometry: the
// dendrogram built from a timed shared index must answer every ε with
// exactly the clustering a fresh grouping run over the same index produces
// — the planar contract of dendro_test.go, carried through the temporal
// distance addend wT·gap.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/lsdist"
	"repro/internal/segclust"
	"repro/internal/synth"
)

func TestCutEquivalenceSpatiotemporal(t *testing.T) {
	// Three corridors, departures 500 s apart: the intervals actually gap,
	// so the temporal addend is live at every tested ε.
	trs := synth.TimedCorridorScene(3, 12, 24, 5, 7, 500, 10)
	ccfg := core.DefaultConfig()
	ccfg.Partition.CostAdvantage, ccfg.Partition.MinLength = 15, 40
	items, ivs, err := core.PartitionAllTimedCtx(context.Background(), trs, ccfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) < 50 {
		t.Fatalf("scene too small: %d items", len(items))
	}

	const wt = 0.01
	opt := lsdist.Options{Weights: lsdist.DefaultWeights()}
	epsGrid := []float64{5, 12, 20, 28, 35, 45}
	const minLns = 4
	ctx := context.Background()

	for name, backend := range backends() {
		for _, workers := range []int{1, 0} {
			shared := segclust.NewSharedIndexTimed(items, ivs, wt, opt, backend)
			d, err := FromShared(ctx, shared, 60, workers)
			if err != nil {
				t.Fatalf("%s/w%d: FromShared: %v", name, workers, err)
			}
			for _, eps := range epsGrid {
				got, err := d.CutAt(eps, minLns, 0)
				if err != nil {
					t.Fatalf("%s/w%d/eps=%g: CutAt: %v", name, workers, eps, err)
				}
				fresh := segclust.NewSharedIndexTimed(items, ivs, wt, opt, backend)
				want, err := segclust.RunSharedCtx(ctx, fresh, segclust.Config{
					Eps: eps, MinLns: minLns, Options: opt, Workers: workers,
				}, nil)
				if err != nil {
					t.Fatalf("%s/w%d/eps=%g: RunSharedCtx: %v", name, workers, eps, err)
				}
				sameResult(t, fmt.Sprintf("st/%s/w%d/eps=%g", name, workers, eps), want, got)
			}
		}
	}
}
