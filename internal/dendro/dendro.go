// Package dendro precomputes the ε-graph's complete merge structure over
// partitioned segments — a dendrogram — so the exact TRACLUS segment
// clustering at *any* density ε ≤ MaxEps can be reconstructed without
// touching the distance kernels again.
//
// The structure is three flat arrays built from one spindex candidate +
// refine pass at the maximum radius of interest:
//
//   - per-item neighbor lists: every j with dist(i, j) ≤ MaxEps, sorted by
//     (distance, id), with prefix-summed neighbor weights — so the weighted
//     ε-cardinality |Nε(i)| at any ε is a binary search plus one array read,
//     and an item's core distance (the smallest ε making it core) is the
//     distance at which the prefix sum first reaches MinLns;
//   - the core-core edge candidates: every pair (a < b) within MaxEps,
//     sorted by (distance, a, b) — the union-find replay log. A cut at ε
//     replays the prefix of edges with d ≤ ε whose endpoints are both core
//     at ε through the deterministic min-root union-find
//     (segclust.UnionFind), which is exactly the merge order of the fresh
//     grouping's ε-graph pass;
//   - the item set itself (geometry + trajectory ids + weights), so cuts,
//     representatives, and SSEs remain computable from a snapshot-restored
//     dendrogram with no original dataset at hand.
//
// CutAt replicates segclust's grouping semantics step for step (core
// predicate, min-root components, ascending numbering, min-cluster-id
// border assignment, Definition-10 trajectory filter), so its Result is
// bit-identical to a fresh segclust.Run at the same parameters — the
// equivalence suite pins this across backends and worker counts.
//
// One caveat bounds the "bit-identical" claim: the fresh pass accumulates
// each neighborhood's weight in backend candidate order, while the
// dendrogram accumulates in (distance, id) order. For order-independent
// sums — unit or integer weights, which is every trajectory source in this
// repo (core.PartitionAllCtx defaults Weight to 1) — the sums are exactly
// equal. Exotic fractional weights could differ in the last ulp at the
// core threshold; such datasets should validate against segclust directly.
package dendro

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/lsdist"
	"repro/internal/par"
	"repro/internal/segclust"
	"repro/internal/spindex"
)

// edge is one merge candidate of the replay log: items a < b at exact
// distance d ≤ MaxEps.
type edge struct {
	a, b int32
	d    float64
}

// Dendrogram is the immutable multi-ε merge structure. Build once, cut at
// any ε ≤ MaxEps; cuts issue zero distance evaluations (the structure
// holds no searcher — there is nothing to evaluate with).
type Dendrogram struct {
	items  []segclust.Item
	maxEps float64
	calls  int // exact-distance evaluations spent building

	// Flat neighbor store: item i's neighbors are ids[off[i]:off[i+1]],
	// distance-aligned in dist, sorted by (dist, id), self included at
	// distance 0. cum is the running weight sum within each item's run.
	off  []int64
	ids  []int32
	dist []float64
	cum  []float64

	// edges holds every within-MaxEps pair once (a < b), sorted by
	// (d, a, b): the union-find replay log.
	edges []edge
}

// Build partitions nothing and indexes once: it constructs a fresh shared
// index over items with the given distance options and backend, then
// precomputes the merge structure for every ε ≤ maxEps.
func Build(ctx context.Context, items []segclust.Item, opt lsdist.Options, backend spindex.Backend, maxEps float64, workers int) (*Dendrogram, error) {
	return FromShared(ctx, segclust.NewSharedIndexFor(items, opt, backend), maxEps, workers)
}

// FromShared builds the merge structure from an already-built shared index
// — the pipeline's single-build discipline: the same index serves
// estimation, grouping, and this precompute. One parallel candidate +
// refine pass at radius maxEps, one sort per neighbor list, one edge sort.
func FromShared(ctx context.Context, shared *segclust.SharedIndex, maxEps float64, workers int) (*Dendrogram, error) {
	if err := segclust.CheckPositive("MaxEps", maxEps); err != nil {
		return nil, err
	}
	items := shared.Items()
	n := len(items)
	d := &Dendrogram{items: items, maxEps: maxEps, off: make([]int64, n+1)}
	if n == 0 {
		return d, nil
	}

	type nb struct {
		id   int32
		dist float64
	}
	lists := make([][]nb, n)
	w := par.Workers(workers, n)
	// Per-worker geometry-aware cursors: on a planar index these are thin
	// wrappers over the spindex query (same candidates, same kernel blocks,
	// bit-identical lists); on a spatiotemporal index they fold the wT·gap
	// term into every scored distance, so the merge structure — neighbor
	// lists, core distances, and the replay log — is built under the model's
	// actual distance. The candidate pass stays sound because the temporal
	// term only grows distances (no false negatives at radius maxEps/c).
	queries := make([]*segclust.Cursor, w)
	cand := make([][]int, w)
	dists := make([][]float64, w)
	calls := make([]int, w)
	for k := range queries {
		queries[k] = shared.Cursor()
	}
	err := par.ForEachCtx(ctx, workers, n, func(wk, i int) {
		sq := queries[wk]
		cand[wk] = sq.CandidatesOf(i, maxEps, cand[wk][:0])
		c := cand[wk]
		dists[wk] = sq.DistBlock(i, c, dists[wk])
		calls[wk] += len(c)
		list := make([]nb, 0, len(c))
		for k, j := range c {
			if dv := dists[wk][k]; dv <= maxEps {
				list = append(list, nb{id: int32(j), dist: dv})
			}
		}
		// (dist, id) order; ids are unique per list, so this is a total
		// order and the layout is deterministic across worker counts.
		sort.Slice(list, func(x, y int) bool {
			if list[x].dist != list[y].dist {
				return list[x].dist < list[y].dist
			}
			return list[x].id < list[y].id
		})
		lists[i] = list
	})
	for _, c := range calls {
		d.calls += c
	}
	if err != nil {
		return nil, err
	}

	total, ecount := 0, 0
	for i, l := range lists {
		total += len(l)
		for _, e := range l {
			if int(e.id) > i {
				ecount++
			}
		}
	}
	d.ids = make([]int32, total)
	d.dist = make([]float64, total)
	d.cum = make([]float64, total)
	d.edges = make([]edge, 0, ecount)
	for i, l := range lists {
		base := d.off[i]
		d.off[i+1] = base + int64(len(l))
		var sum float64
		for k, e := range l {
			d.ids[base+int64(k)] = e.id
			d.dist[base+int64(k)] = e.dist
			sum += items[e.id].Weight
			d.cum[base+int64(k)] = sum
			// Symmetry (Lemma 2: dist(a,b) == dist(b,a), bit-exact in this
			// implementation) puts every pair in both endpoint lists; keep
			// it once, from the smaller endpoint.
			if int(e.id) > i {
				d.edges = append(d.edges, edge{a: int32(i), b: e.id, d: e.dist})
			}
		}
	}
	sortEdges(d.edges)
	return d, nil
}

// sortEdges orders the replay log by (d, a, b) — a total order, since a
// pair occurs exactly once.
func sortEdges(edges []edge) {
	sort.Slice(edges, func(x, y int) bool {
		if edges[x].d != edges[y].d {
			return edges[x].d < edges[y].d
		}
		if edges[x].a != edges[y].a {
			return edges[x].a < edges[y].a
		}
		return edges[x].b < edges[y].b
	})
}

// Len returns the number of items the dendrogram covers.
func (d *Dendrogram) Len() int { return len(d.items) }

// MaxEps returns the largest ε the structure can answer.
func (d *Dendrogram) MaxEps() float64 { return d.maxEps }

// DistCalls returns the exact-distance evaluations spent building the
// structure. Cuts and weight queries never add to it.
func (d *Dendrogram) DistCalls() int { return d.calls }

// Edges returns the size of the union-find replay log.
func (d *Dendrogram) Edges() int { return len(d.edges) }

// Items returns the covered item set (the dendrogram's own backing store —
// do not mutate).
func (d *Dendrogram) Items() []segclust.Item { return d.items }

// countAt returns how many of item i's stored neighbors are within eps.
// eps must be non-negative (callers check); eps > maxEps silently saturates
// at the stored list, which is why exported entry points range-check first.
func (d *Dendrogram) countAt(i int, eps float64) int {
	seg := d.dist[d.off[i]:d.off[i+1]]
	return sort.Search(len(seg), func(k int) bool { return seg[k] > eps })
}

// weightAt returns the weighted ε-cardinality of item i's neighborhood.
func (d *Dendrogram) weightAt(i int, eps float64) float64 {
	if !(eps >= 0) { // NaN or negative: nothing is within reach
		return 0
	}
	c := d.countAt(i, eps)
	if c == 0 {
		return 0
	}
	return d.cum[d.off[i]+int64(c)-1]
}

// rangeErr is the uniform out-of-range error for ε queries.
func (d *Dendrogram) rangeErr(field string, eps float64) error {
	return &segclust.ConfigError{Field: field, Value: eps,
		Reason: fmt.Sprintf("exceeds the dendrogram's maximum ε %g — rebuild with a larger MaxEps", d.maxEps)}
}

// NeighborhoodWeights returns, for every item, the weighted cardinality of
// its ε-neighborhood — the Section 4.4 heuristic's raw material — computed
// entirely from the precomputed structure. dst is reused when large enough.
// eps may be any value ≤ MaxEps (non-positive or NaN yields all zeros,
// matching what a fresh neighborhood pass at that ε would find).
func (d *Dendrogram) NeighborhoodWeights(eps float64, dst []float64) ([]float64, error) {
	if eps > d.maxEps {
		return nil, d.rangeErr("Eps", eps)
	}
	if cap(dst) < len(d.items) {
		dst = make([]float64, len(d.items))
	}
	dst = dst[:len(d.items)]
	for i := range d.items {
		dst[i] = d.weightAt(i, eps)
	}
	return dst, nil
}

// CoreDist returns the smallest ε at which item i is core (weighted
// ε-cardinality ≥ minLns), or +Inf if it never is within MaxEps. This is
// the per-segment core distance of the merge structure.
func (d *Dendrogram) CoreDist(i int, minLns float64) float64 {
	lo, hi := d.off[i], d.off[i+1]
	cum := d.cum[lo:hi]
	k := sort.Search(len(cum), func(k int) bool { return cum[k] >= minLns })
	if k == len(cum) {
		return math.Inf(1)
	}
	return d.dist[lo+int64(k)]
}

// CutAt reconstructs the exact segment clustering at ε = eps: the same
// labels, cluster numbering, Removed count, and canonical Result shape as
// a fresh segclust.Run with Config{Eps: eps, MinLns: minLns, MinTrajs:
// minTrajs} over the same items — with zero distance evaluations.
// minTrajs ≤ 0 defaults to int(minLns), mirroring segclust.
//
// The replication argument, pass by pass:
//
//  1. Core predicate: weight ≥ minLns with weight the within-ε neighbor
//     weight sum — binary search over the sorted list, prefix-sum read.
//  2. Merges: the fresh pass unions every core-core pair within ε; here
//     that is exactly the d ≤ eps prefix of the replay log filtered to
//     both-core endpoints. Union order is irrelevant to the outcome — the
//     min-root union-find makes every component's root its minimum member
//     regardless of interleaving.
//  3. Numbering: ascending scan, new cluster id at each core item that is
//     its own root — identical to segclust's serial numbering pass.
//  4. Borders: a non-core item joins the minimum cluster id among the core
//     members of its neighborhood, or stays noise.
//  5. Definition 10: segclust.ResultFromLabels applies the trajectory
//     filter and canonicalises, the same bridge the OPTICS grouper uses.
func (d *Dendrogram) CutAt(eps, minLns float64, minTrajs int) (*segclust.Result, error) {
	if err := segclust.CheckPositive("Eps", eps); err != nil {
		return nil, err
	}
	if err := segclust.CheckPositive("MinLns", minLns); err != nil {
		return nil, err
	}
	if eps > d.maxEps {
		return nil, d.rangeErr("Eps", eps)
	}
	if minTrajs <= 0 {
		minTrajs = int(minLns)
	}
	n := len(d.items)
	core := make([]bool, n)
	for i := 0; i < n; i++ {
		core[i] = d.weightAt(i, eps) >= minLns
	}
	uf := segclust.NewUnionFind(n)
	ne := sort.Search(len(d.edges), func(k int) bool { return d.edges[k].d > eps })
	for _, e := range d.edges[:ne] {
		if core[e.a] && core[e.b] {
			uf.Union(e.a, e.b)
		}
	}
	labels := make([]int, n)
	clusterID := 0
	for i := 0; i < n; i++ {
		if !core[i] {
			labels[i] = segclust.Noise
			continue
		}
		if r := int(uf.Find(int32(i))); r == i {
			labels[i] = clusterID
			clusterID++
		} else {
			labels[i] = labels[r]
		}
	}
	for i := 0; i < n; i++ {
		if core[i] {
			continue
		}
		best := segclust.Noise
		lo := d.off[i]
		for _, j := range d.ids[lo : lo+int64(d.countAt(i, eps))] {
			if !core[j] {
				continue
			}
			if id := labels[j]; best == segclust.Noise || id < best {
				best = id
			}
		}
		labels[i] = best
	}
	return segclust.ResultFromLabels(d.items, labels, minTrajs, 0), nil
}
