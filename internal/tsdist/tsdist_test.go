package tsdist

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func pts(vals ...float64) []geom.Point {
	out := make([]geom.Point, len(vals)/2)
	for i := range out {
		out[i] = geom.Pt(vals[2*i], vals[2*i+1])
	}
	return out
}

func TestLCSSIdentical(t *testing.T) {
	a := pts(0, 0, 1, 0, 2, 0, 3, 0)
	if got := LCSS(a, a, 0.1, -1); got != 4 {
		t.Errorf("LCSS self = %d", got)
	}
	if got := LCSSDist(a, a, 0.1, -1); got != 0 {
		t.Errorf("LCSSDist self = %v", got)
	}
}

func TestLCSSKnownValue(t *testing.T) {
	a := pts(0, 0, 1, 0, 2, 0)
	b := pts(0, 0, 5, 5, 2, 0)
	if got := LCSS(a, b, 0.5, -1); got != 2 {
		t.Errorf("LCSS = %d, want 2", got)
	}
}

func TestLCSSDeltaWindow(t *testing.T) {
	a := pts(0, 0, 1, 1, 2, 2, 3, 3)
	b := pts(9, 9, 9, 9, 9, 9, 0, 0)
	// Without a window, (a0, b3) matches.
	if got := LCSS(a, b, 0.1, -1); got != 1 {
		t.Errorf("unwindowed LCSS = %d", got)
	}
	// |i-j| = 3 > delta=1 forbids it.
	if got := LCSS(a, b, 0.1, 1); got != 0 {
		t.Errorf("windowed LCSS = %d", got)
	}
}

func TestLCSSEmpty(t *testing.T) {
	if got := LCSS(nil, pts(0, 0), 1, -1); got != 0 {
		t.Errorf("LCSS empty = %d", got)
	}
	if got := LCSSDist(nil, nil, 1, -1); got != 1 {
		t.Errorf("LCSSDist empty = %v", got)
	}
}

func TestEDRIdentical(t *testing.T) {
	a := pts(0, 0, 1, 0, 2, 0)
	if got := EDR(a, a, 0.1); got != 0 {
		t.Errorf("EDR self = %d", got)
	}
}

func TestEDRKnownValue(t *testing.T) {
	a := pts(0, 0, 1, 0, 2, 0)
	b := pts(0, 0, 9, 9, 2, 0)
	// One replacement.
	if got := EDR(a, b, 0.5); got != 1 {
		t.Errorf("EDR = %d, want 1", got)
	}
	// Pure insertion cost.
	if got := EDR(a, a[:2], 0.5); got != 1 {
		t.Errorf("EDR insert = %d, want 1", got)
	}
	if got := EDR(nil, b, 0.5); got != 3 {
		t.Errorf("EDR from empty = %d, want 3", got)
	}
}

func TestEDRDistNormalised(t *testing.T) {
	a := pts(0, 0, 1, 0)
	b := pts(9, 9, 9, 9, 9, 9, 9, 9)
	got := EDRDist(a, b, 0.5)
	if got != 1 {
		t.Errorf("EDRDist = %v, want 1", got)
	}
	if got := EDRDist(nil, nil, 1); got != 0 {
		t.Errorf("EDRDist empty = %v", got)
	}
}

func TestDTWIdentical(t *testing.T) {
	a := pts(0, 0, 1, 0, 2, 0, 3, 0)
	if got := DTW(a, a, -1); got != 0 {
		t.Errorf("DTW self = %v", got)
	}
}

func TestDTWKnownValue(t *testing.T) {
	a := pts(0, 0, 1, 0)
	b := pts(0, 1, 1, 1)
	// Both points warp straight across: cost 1 + 1.
	if got := DTW(a, b, -1); !approx(got, 2, 1e-12) {
		t.Errorf("DTW = %v, want 2", got)
	}
}

func TestDTWHandlesDifferentLengths(t *testing.T) {
	a := pts(0, 0, 1, 0, 2, 0, 3, 0)
	b := pts(0, 0, 3, 0)
	got := DTW(a, b, -1)
	// Optimal warping: a0→b0 (0), a1→b0 or b1 (1), a2→b1 (1), a3→b1 (0).
	if !approx(got, 2, 1e-12) {
		t.Errorf("DTW = %v, want 2", got)
	}
}

func TestDTWWindowWidensToLengthGap(t *testing.T) {
	a := pts(0, 0, 1, 0, 2, 0, 3, 0, 4, 0)
	b := pts(0, 0, 4, 0)
	// Window 0 would be infeasible for unequal lengths; it must widen.
	got := DTW(a, b, 0)
	if math.IsInf(got, 1) {
		t.Error("window not widened to |n-m|")
	}
}

func TestDTWEmpty(t *testing.T) {
	if got := DTW(nil, pts(0, 0), -1); !math.IsInf(got, 1) {
		t.Errorf("DTW empty = %v", got)
	}
}

func TestFrechetKnown(t *testing.T) {
	a := pts(0, 0, 1, 0, 2, 0)
	b := pts(0, 1, 1, 1, 2, 1)
	if got := Frechet(a, b); !approx(got, 1, 1e-12) {
		t.Errorf("Frechet = %v, want 1", got)
	}
	if got := Frechet(a, a); got != 0 {
		t.Errorf("Frechet self = %v", got)
	}
	if got := Frechet(nil, a); !math.IsInf(got, 1) {
		t.Errorf("Frechet empty = %v", got)
	}
}

func TestFrechetAtLeastMaxMinDist(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a := randTraj(rng, 8)
		b := randTraj(rng, 6)
		fr := Frechet(a, b)
		// Fréchet ≥ max over a's points of min distance to b's points is
		// not exactly true pointwise, but Fréchet ≥ dist(a0, b0) endpoints
		// coupling start together:
		if fr < a[0].Dist(b[0])-1e-9 {
			t.Fatalf("Frechet %v below start-pair distance", fr)
		}
		if fr < a[len(a)-1].Dist(b[len(b)-1])-1e-9 {
			t.Fatalf("Frechet %v below end-pair distance", fr)
		}
	}
}

func TestSymmetryProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a := randTraj(rng, 5+rng.Intn(5))
		b := randTraj(rng, 5+rng.Intn(5))
		if DTW(a, b, -1) != DTW(b, a, -1) {
			t.Fatal("DTW asymmetric")
		}
		if LCSS(a, b, 5, -1) != LCSS(b, a, 5, -1) {
			t.Fatal("LCSS asymmetric")
		}
		if EDR(a, b, 5) != EDR(b, a, 5) {
			t.Fatal("EDR asymmetric")
		}
		if Frechet(a, b) != Frechet(b, a) {
			t.Fatal("Frechet asymmetric")
		}
	}
}

func TestMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trs := []geom.Trajectory{
		geom.NewTrajectory(0, randTraj(rng, 6)),
		geom.NewTrajectory(1, randTraj(rng, 7)),
		geom.NewTrajectory(2, randTraj(rng, 5)),
	}
	dm := Matrix(trs, func(a, b []geom.Point) float64 { return DTW(a, b, -1) })
	for i := range dm {
		if dm[i][i] != 0 {
			t.Errorf("diagonal not zero at %d", i)
		}
		for j := range dm {
			if dm[i][j] != dm[j][i] {
				t.Errorf("matrix asymmetric at %d,%d", i, j)
			}
		}
	}
}

func TestKMedoidsSeparatesBlobs(t *testing.T) {
	// Distance matrix with two obvious groups.
	dm := [][]float64{
		{0, 1, 1, 9, 9, 9},
		{1, 0, 1, 9, 9, 9},
		{1, 1, 0, 9, 9, 9},
		{9, 9, 9, 0, 1, 1},
		{9, 9, 9, 1, 0, 1},
		{9, 9, 9, 1, 1, 0},
	}
	_, assign, err := KMedoids(dm, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Errorf("group 1 split: %v", assign)
	}
	if assign[3] != assign[4] || assign[4] != assign[5] {
		t.Errorf("group 2 split: %v", assign)
	}
	if assign[0] == assign[3] {
		t.Errorf("groups merged: %v", assign)
	}
}

func TestKMedoidsErrors(t *testing.T) {
	dm := [][]float64{{0}}
	if _, _, err := KMedoids(dm, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := KMedoids(dm, 2, 1); err == nil {
		t.Error("k>n accepted")
	}
}

func TestSingleLink(t *testing.T) {
	dm := [][]float64{
		{0, 1, 8, 8},
		{1, 0, 8, 8},
		{8, 8, 0, 1},
		{8, 8, 1, 0},
	}
	assign, err := SingleLink(dm, 2)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != assign[1] || assign[2] != assign[3] || assign[0] == assign[2] {
		t.Errorf("single link = %v", assign)
	}
	if _, err := SingleLink(dm, 0); err == nil {
		t.Error("k=0 accepted")
	}
	all, err := SingleLink(dm, 4)
	if err != nil {
		t.Fatal(err)
	}
	labels := map[int]bool{}
	for _, l := range all {
		labels[l] = true
	}
	if len(labels) != 4 {
		t.Errorf("k=n should keep singletons: %v", all)
	}
}

func randTraj(rng *rand.Rand, n int) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	return out
}
