package tsdist

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func benchTrajPair(n int) (a, b []geom.Point) {
	rng := rand.New(rand.NewSource(1))
	return randTraj(rng, n), randTraj(rng, n)
}

func BenchmarkDTW(b *testing.B) {
	x, y := benchTrajPair(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DTW(x, y, -1)
	}
}

func BenchmarkDTWWindowed(b *testing.B) {
	x, y := benchTrajPair(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DTW(x, y, 20)
	}
}

func BenchmarkLCSS(b *testing.B) {
	x, y := benchTrajPair(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LCSS(x, y, 10, -1)
	}
}

func BenchmarkEDR(b *testing.B) {
	x, y := benchTrajPair(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EDR(x, y, 10)
	}
}

func BenchmarkFrechet(b *testing.B) {
	x, y := benchTrajPair(120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Frechet(x, y)
	}
}
