// Package tsdist implements the whole-trajectory distance measures the
// TRACLUS paper's related-work section positions itself against: LCSS
// (Vlachos et al., ICDE 2002), EDR (Chen et al., SIGMOD 2005), dynamic time
// warping (Keogh, VLDB 2002), and the discrete Fréchet distance, plus
// simple whole-trajectory clustering on top of them (k-medoids and
// single-link agglomerative).
//
// These measures compare trajectories *as wholes*, so — as the paper argues
// — "the distance could be large although some portions of trajectories are
// very similar"; the experiments use them to demonstrate exactly that.
package tsdist

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// LCSS returns the Longest Common SubSequence similarity count between two
// point sequences: points match when both coordinate differences are within
// eps. delta ≥ 0 bounds how far apart in index matched points may be
// (delta < 0 disables the bound). The returned value is the LCSS length.
func LCSS(a, b []geom.Point, eps float64, delta int) int {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			switch {
			case delta >= 0 && abs(i-j) > delta:
				cur[j] = max(prev[j], cur[j-1])
			case math.Abs(a[i-1].X-b[j-1].X) <= eps && math.Abs(a[i-1].Y-b[j-1].Y) <= eps:
				cur[j] = prev[j-1] + 1
			default:
				cur[j] = max(prev[j], cur[j-1])
			}
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// LCSSDist converts LCSS similarity into a normalised distance in [0, 1]:
// 1 - LCSS/min(n, m).
func LCSSDist(a, b []geom.Point, eps float64, delta int) float64 {
	n := min(len(a), len(b))
	if n == 0 {
		return 1
	}
	return 1 - float64(LCSS(a, b, eps, delta))/float64(n)
}

// EDR returns the Edit Distance on Real sequence: the minimum number of
// insert/delete/replace edits to equalise the sequences, where two points
// match when both coordinate differences are within eps.
func EDR(a, b []geom.Point, eps float64) int {
	n, m := len(a), len(b)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if math.Abs(a[i-1].X-b[j-1].X) <= eps && math.Abs(a[i-1].Y-b[j-1].Y) <= eps {
				cost = 0
			}
			cur[j] = min(prev[j-1]+cost, min(prev[j]+1, cur[j-1]+1))
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// EDRDist normalises EDR by max(n, m) into [0, 1].
func EDRDist(a, b []geom.Point, eps float64) float64 {
	d := max(len(a), len(b))
	if d == 0 {
		return 0
	}
	return float64(EDR(a, b, eps)) / float64(d)
}

// DTW returns the dynamic time warping distance with Euclidean point costs
// and an optional Sakoe-Chiba band of half-width window (window < 0
// disables the band).
func DTW(a, b []geom.Point, window int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	if window >= 0 && window < abs(n-m) {
		window = abs(n - m)
	}
	const inf = math.MaxFloat64
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo, hi := 1, m
		if window >= 0 {
			lo = max(1, i-window)
			hi = min(m, i+window)
		}
		for j := lo; j <= hi; j++ {
			d := a[i-1].Dist(b[j-1])
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = d + best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// Frechet returns the discrete Fréchet distance between the sequences.
func Frechet(a, b []geom.Point) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	ca := make([][]float64, n)
	for i := range ca {
		ca[i] = make([]float64, m)
		for j := range ca[i] {
			ca[i][j] = -1
		}
	}
	var rec func(i, j int) float64
	rec = func(i, j int) float64 {
		if ca[i][j] >= 0 {
			return ca[i][j]
		}
		d := a[i].Dist(b[j])
		switch {
		case i == 0 && j == 0:
			ca[i][j] = d
		case i == 0:
			ca[i][j] = math.Max(rec(0, j-1), d)
		case j == 0:
			ca[i][j] = math.Max(rec(i-1, 0), d)
		default:
			ca[i][j] = math.Max(math.Min(rec(i-1, j), math.Min(rec(i-1, j-1), rec(i, j-1))), d)
		}
		return ca[i][j]
	}
	return rec(n-1, m-1)
}

// DistFunc is a whole-trajectory distance.
type DistFunc func(a, b []geom.Point) float64

// Matrix computes the full pairwise distance matrix.
func Matrix(trs []geom.Trajectory, d DistFunc) [][]float64 {
	n := len(trs)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := d(trs[i].Points, trs[j].Points)
			m[i][j], m[j][i] = v, v
		}
	}
	return m
}

// KMedoids clusters by the distance matrix into k clusters using the PAM
// build step plus swap-style refinement, deterministic for a seed. It
// returns the medoid indexes and each trajectory's cluster assignment.
func KMedoids(dm [][]float64, k int, seed int64) (medoids []int, assign []int, err error) {
	n := len(dm)
	if k <= 0 || k > n {
		return nil, nil, errors.New("tsdist: invalid k")
	}
	rng := rand.New(rand.NewSource(seed))
	medoids = rng.Perm(n)[:k]
	assign = make([]int, n)
	assignAll := func() float64 {
		var cost float64
		for i := 0; i < n; i++ {
			best, bestD := 0, math.MaxFloat64
			for mi, m := range medoids {
				if dm[i][m] < bestD {
					best, bestD = mi, dm[i][m]
				}
			}
			assign[i] = best
			cost += bestD
		}
		return cost
	}
	cost := assignAll()
	for iter := 0; iter < 50; iter++ {
		improved := false
		for mi := 0; mi < k; mi++ {
			for cand := 0; cand < n; cand++ {
				if contains(medoids, cand) {
					continue
				}
				old := medoids[mi]
				medoids[mi] = cand
				if c := assignAll(); c < cost {
					cost = c
					improved = true
				} else {
					medoids[mi] = old
				}
			}
		}
		if !improved {
			break
		}
	}
	assignAll()
	return medoids, assign, nil
}

// SingleLink performs agglomerative clustering with single linkage until k
// clusters remain, returning per-item assignments 0..k-1.
func SingleLink(dm [][]float64, k int) ([]int, error) {
	n := len(dm)
	if k <= 0 || k > n {
		return nil, errors.New("tsdist: invalid k")
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	edges := make([]edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, edge{dm[i][j], i, j})
		}
	}
	// Sort edges ascending (heapsort to stay stdlib-lean).
	sortEdges(edges)
	clusters := n
	for _, e := range edges {
		if clusters == k {
			break
		}
		ra, rb := find(e.a), find(e.b)
		if ra != rb {
			parent[ra] = rb
			clusters--
		}
	}
	// Relabel roots densely.
	label := map[int]int{}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		r := find(i)
		if _, ok := label[r]; !ok {
			label[r] = len(label)
		}
		out[i] = label[r]
	}
	return out, nil
}

// edge is a candidate merge for single-link clustering.
type edge struct {
	d    float64
	a, b int
}

func sortEdges(es []edge) {
	n := len(es)
	for i := n/2 - 1; i >= 0; i-- {
		sift(es, i, n)
	}
	for i := n - 1; i > 0; i-- {
		es[0], es[i] = es[i], es[0]
		sift(es, 0, i)
	}
}

func sift(es []edge, lo, hi int) {
	root := lo
	for {
		c := 2*root + 1
		if c >= hi {
			return
		}
		if c+1 < hi && es[c].d < es[c+1].d {
			c++
		}
		if es[root].d >= es[c].d {
			return
		}
		es[root], es[c] = es[c], es[root]
		root = c
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
