// Package optics implements OPTICS (Ankerst, Breunig, Kriegel, Sander,
// SIGMOD 1999 — reference [2] of the TRACLUS paper): an ordering of the
// data by density reachability that removes DBSCAN's sensitivity to ε.
//
// The TRACLUS paper's Appendix D argues that OPTICS is *less* suitable for
// line segments than for points, because pairwise distances inside an
// ε-neighborhood of segments are not bounded by 2ε (the distance is not a
// metric), so reachability distances stay close to ε and clusters blur into
// noise. This package implements OPTICS generically over any distance so
// the experiments can measure exactly that effect on matched point and
// segment data sets.
package optics

import (
	"container/heap"
	"context"
	"errors"
	"math"
	"sort"
)

// DistFunc returns the distance between items i and j of an n-item data
// set.
type DistFunc func(i, j int) float64

// Config holds the OPTICS parameters: the generating radius Eps and the
// density threshold MinPts.
type Config struct {
	Eps    float64
	MinPts int
}

// Undefined marks an undefined reachability (the first item of each
// density-connected component).
var Undefined = math.Inf(1)

// Result is the cluster ordering.
type Result struct {
	// Order is the visit order of item indices.
	Order []int
	// Reach[i] is the reachability distance of item Order[i] at its visit.
	Reach []float64
	// CoreDist[i] is the core distance of item i (Undefined when not core).
	CoreDist []float64
}

// Run computes the OPTICS ordering of n items under dist. Neighborhoods
// are computed by full scan, O(n²) overall — adequate for the Appendix-D
// experiments; the TRACLUS production path does not use OPTICS (the paper
// deliberately chooses DBSCAN; see Appendix D).
func Run(n int, dist DistFunc, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), n, dist, cfg)
}

// RunCtx is Run with cooperative cancellation: ctx is checked once per
// processed item (each costs one O(n) neighborhood scan), so the ordering
// aborts with ctx.Err() within one scan of ctx ending. Uncancelled, it is
// bit-identical to Run.
func RunCtx(ctx context.Context, n int, dist DistFunc, cfg Config) (*Result, error) {
	if cfg.Eps <= 0 {
		return nil, errors.New("optics: Eps must be positive")
	}
	if cfg.MinPts < 1 {
		return nil, errors.New("optics: MinPts must be at least 1")
	}
	res := &Result{
		Order:    make([]int, 0, n),
		Reach:    make([]float64, 0, n),
		CoreDist: make([]float64, n),
	}
	processed := make([]bool, n)
	reach := make([]float64, n)
	for i := range reach {
		reach[i] = Undefined
	}

	// neighbors returns the ε-neighborhood of i (including i) and fills
	// core distance.
	dists := make([]float64, 0, n)
	neighbors := func(i int) []int {
		var hood []int
		dists = dists[:0]
		for j := 0; j < n; j++ {
			if d := dist(i, j); d <= cfg.Eps {
				hood = append(hood, j)
				dists = append(dists, d)
			}
		}
		if len(hood) >= cfg.MinPts {
			tmp := append([]float64(nil), dists...)
			sort.Float64s(tmp)
			res.CoreDist[i] = tmp[cfg.MinPts-1]
		} else {
			res.CoreDist[i] = Undefined
		}
		return hood
	}

	done := ctx.Done()
	for start := 0; start < n; start++ {
		if done != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if processed[start] {
			continue
		}
		hood := neighbors(start)
		processed[start] = true
		res.Order = append(res.Order, start)
		res.Reach = append(res.Reach, Undefined)
		if res.CoreDist[start] == Undefined {
			continue
		}
		seeds := &seedQueue{}
		update(start, hood, dist, res.CoreDist[start], processed, reach, seeds)
		for seeds.Len() > 0 {
			if done != nil && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			q := heap.Pop(seeds).(seedItem).id
			if processed[q] {
				continue
			}
			qHood := neighbors(q)
			processed[q] = true
			res.Order = append(res.Order, q)
			res.Reach = append(res.Reach, reach[q])
			if res.CoreDist[q] != Undefined {
				update(q, qHood, dist, res.CoreDist[q], processed, reach, seeds)
			}
		}
	}
	return res, nil
}

func update(p int, hood []int, dist DistFunc, coreDist float64, processed []bool, reach []float64, seeds *seedQueue) {
	for _, o := range hood {
		if processed[o] {
			continue
		}
		newReach := math.Max(coreDist, dist(p, o))
		if newReach < reach[o] {
			reach[o] = newReach
			heap.Push(seeds, seedItem{id: o, reach: newReach})
		}
	}
}

// seedItem is a priority-queue entry. Stale entries (with outdated reach)
// are skipped at pop via the processed check plus reach comparison.
type seedItem struct {
	id    int
	reach float64
}

type seedQueue []seedItem

func (q seedQueue) Len() int            { return len(q) }
func (q seedQueue) Less(i, j int) bool  { return q[i].reach < q[j].reach }
func (q seedQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *seedQueue) Push(x interface{}) { *q = append(*q, x.(seedItem)) }
func (q *seedQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ExtractDBSCAN derives a DBSCAN-equivalent clustering at radius eps' ≤ Eps
// from the ordering. It returns per-item cluster ids with -1 for noise.
func (r *Result) ExtractDBSCAN(epsPrime float64) []int {
	n := len(r.Order)
	labels := make([]int, len(r.CoreDist))
	for i := range labels {
		labels[i] = -1
	}
	clusterID := -1
	for i := 0; i < n; i++ {
		item := r.Order[i]
		if r.Reach[i] > epsPrime {
			if r.CoreDist[item] <= epsPrime {
				clusterID++
				labels[item] = clusterID
			}
		} else if clusterID >= 0 {
			labels[item] = clusterID
		}
	}
	return labels
}

// ReachStats summarises the defined reachability distances of a result:
// count, mean, and the fraction within frac·Eps of Eps (the Appendix-D
// "close to ε" statistic).
func (r *Result) ReachStats(eps, frac float64) (count int, mean, nearEpsFrac float64) {
	var sum float64
	near := 0
	for _, v := range r.Reach {
		if math.IsInf(v, 1) {
			continue
		}
		count++
		sum += v
		if v >= eps*(1-frac) {
			near++
		}
	}
	if count > 0 {
		mean = sum / float64(count)
		nearEpsFrac = float64(near) / float64(count)
	}
	return
}
