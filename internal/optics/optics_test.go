package optics

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
)

func blobPoints(rng *rand.Rand, centers []geom.Point, per int, spread float64) []geom.Point {
	var pts []geom.Point
	for _, c := range centers {
		for i := 0; i < per; i++ {
			pts = append(pts, geom.Pt(c.X+rng.NormFloat64()*spread, c.Y+rng.NormFloat64()*spread))
		}
	}
	return pts
}

func euclid(pts []geom.Point) DistFunc {
	return func(i, j int) float64 { return pts[i].Dist(pts[j]) }
}

func TestOrderingCoversAllItems(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := blobPoints(rng, []geom.Point{geom.Pt(0, 0), geom.Pt(300, 0)}, 30, 10)
	res, err := Run(len(pts), euclid(pts), Config{Eps: 40, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != len(pts) || len(res.Reach) != len(pts) {
		t.Fatalf("ordering size %d/%d, want %d", len(res.Order), len(res.Reach), len(pts))
	}
	seen := make([]bool, len(pts))
	for _, id := range res.Order {
		if seen[id] {
			t.Fatalf("item %d visited twice", id)
		}
		seen[id] = true
	}
}

func TestCoreDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := blobPoints(rng, []geom.Point{geom.Pt(0, 0)}, 30, 5)
	pts = append(pts, geom.Pt(10000, 10000)) // isolated
	res, err := Run(len(pts), euclid(pts), Config{Eps: 30, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.CoreDist[0], 1) {
		t.Error("dense point has undefined core distance")
	}
	if !math.IsInf(res.CoreDist[30], 1) {
		t.Error("isolated point has defined core distance")
	}
}

func TestExtractDBSCANBlobCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := blobPoints(rng, []geom.Point{geom.Pt(0, 0), geom.Pt(400, 0), geom.Pt(0, 400)}, 40, 10)
	res, err := Run(len(pts), euclid(pts), Config{Eps: 60, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	labels := res.ExtractDBSCAN(45)
	maxLabel := -1
	for _, l := range labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	if got := maxLabel + 1; got != 3 {
		t.Errorf("extracted clusters = %d, want 3", got)
	}
	// Points of the same blob share a label.
	for b := 0; b < 3; b++ {
		ref := labels[b*40]
		for i := 1; i < 40; i++ {
			if labels[b*40+i] != ref {
				t.Errorf("blob %d split", b)
				break
			}
		}
	}
}

func TestReachabilityWithinClusterBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := blobPoints(rng, []geom.Point{geom.Pt(0, 0)}, 60, 8)
	res, err := Run(len(pts), euclid(pts), Config{Eps: 50, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	// All but the first item should have defined reachability well below ε
	// in a single dense blob.
	defined := 0
	for i, r := range res.Reach {
		if i == 0 {
			continue
		}
		if !math.IsInf(r, 1) {
			defined++
			if r > 50 {
				t.Errorf("reachability %v exceeds eps", r)
			}
		}
	}
	if defined < len(pts)-2 {
		t.Errorf("only %d defined reachabilities", defined)
	}
}

func TestReachStats(t *testing.T) {
	res := &Result{
		Reach:    []float64{Undefined, 10, 20, 30, Undefined, 28},
		Order:    []int{0, 1, 2, 3, 4, 5},
		CoreDist: make([]float64, 6),
	}
	count, mean, near := res.ReachStats(30, 0.25)
	if count != 4 {
		t.Errorf("count = %d", count)
	}
	if math.Abs(mean-22) > 1e-9 {
		t.Errorf("mean = %v", mean)
	}
	// Near-eps: values ≥ 22.5 → {30, 28} → 0.5.
	if math.Abs(near-0.5) > 1e-9 {
		t.Errorf("near = %v", near)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Run(0, nil, Config{Eps: 0, MinPts: 3}); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := Run(0, nil, Config{Eps: 1, MinPts: 0}); err == nil {
		t.Error("minPts=0 accepted")
	}
}

func TestEmpty(t *testing.T) {
	res, err := Run(0, func(i, j int) float64 { return 0 }, Config{Eps: 1, MinPts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 0 {
		t.Error("non-empty ordering")
	}
}

// TestRunCtxCancelled pins cooperative cancellation of the ordering: a
// pre-cancelled context returns ctx.Err(), and uncancelled RunCtx matches
// Run exactly.
func TestRunCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := blobPoints(rng, []geom.Point{geom.Pt(0, 0), geom.Pt(300, 0)}, 30, 10)
	n, dist := len(pts), euclid(pts)
	cfg := Config{Eps: 40, MinPts: 4}
	want, err := Run(n, dist, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCtx(context.Background(), n, dist, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("RunCtx differs from Run")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, n, dist, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
