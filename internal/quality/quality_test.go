package quality

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/lsdist"
	"repro/internal/segclust"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGroupSSEByHand(t *testing.T) {
	// Three parallel unit-offset segments in one cluster. dist pairs:
	// (0,1): d⊥=1, d∥=0, dθ=0 → 1. (1,2): 1. (0,2): 2.
	// SSE = 1/(2·3) · 2·(1² + 1² + 2²) = 2.
	items := []segclust.Item{
		{Seg: geom.Seg(0, 0, 100, 0), TrajID: 0, Weight: 1},
		{Seg: geom.Seg(0, 1, 100, 1), TrajID: 1, Weight: 1},
		{Seg: geom.Seg(0, 2, 100, 2), TrajID: 2, Weight: 1},
	}
	res := &segclust.Result{
		ClusterOf: []int{0, 0, 0},
		Clusters:  []segclust.Cluster{{Members: []int{0, 1, 2}}},
	}
	b := Measure(items, res, lsdist.DefaultOptions(), 1)
	if !approx(b.TotalSSE, 2, 1e-9) {
		t.Errorf("TotalSSE = %v, want 2", b.TotalSSE)
	}
	if b.NoisePenalty != 0 {
		t.Errorf("NoisePenalty = %v, want 0", b.NoisePenalty)
	}
	if !approx(b.QMeasure(), 2, 1e-9) {
		t.Errorf("QMeasure = %v", b.QMeasure())
	}
}

func TestNoisePenaltyByHand(t *testing.T) {
	items := []segclust.Item{
		{Seg: geom.Seg(0, 0, 100, 0), TrajID: 0, Weight: 1},
		{Seg: geom.Seg(0, 3, 100, 3), TrajID: 1, Weight: 1},
	}
	res := &segclust.Result{ClusterOf: []int{segclust.Noise, segclust.Noise}}
	b := Measure(items, res, lsdist.DefaultOptions(), 1)
	// Pairwise distance 3 → penalty = 1/(2·2)·2·3² = 4.5.
	if !approx(b.NoisePenalty, 4.5, 1e-9) {
		t.Errorf("NoisePenalty = %v, want 4.5", b.NoisePenalty)
	}
	if b.TotalSSE != 0 {
		t.Errorf("TotalSSE = %v, want 0", b.TotalSSE)
	}
}

func TestTightClustersScoreBetter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mk := func(spreadY float64) ([]segclust.Item, *segclust.Result) {
		var items []segclust.Item
		var members []int
		for i := 0; i < 20; i++ {
			y := rng.NormFloat64() * spreadY
			items = append(items, segclust.Item{
				Seg: geom.Seg(float64(i), y, float64(i)+50, y), TrajID: i, Weight: 1,
			})
			members = append(members, i)
		}
		return items, &segclust.Result{
			ClusterOf: make([]int, 20),
			Clusters:  []segclust.Cluster{{Members: members}},
		}
	}
	tightItems, tightRes := mk(1)
	looseItems, looseRes := mk(20)
	tight := Measure(tightItems, tightRes, lsdist.DefaultOptions(), 0).QMeasure()
	loose := Measure(looseItems, looseRes, lsdist.DefaultOptions(), 0).QMeasure()
	if tight >= loose {
		t.Errorf("tight %v should beat loose %v", tight, loose)
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var items []segclust.Item
	labels := make([]int, 60)
	var members []int
	for i := 0; i < 60; i++ {
		items = append(items, segclust.Item{
			Seg: geom.Seg(rng.Float64()*500, rng.Float64()*300,
				rng.Float64()*500, rng.Float64()*300),
			TrajID: i, Weight: 1,
		})
		if i < 30 {
			labels[i] = 0
			members = append(members, i)
		} else {
			labels[i] = segclust.Noise
		}
	}
	res := &segclust.Result{ClusterOf: labels, Clusters: []segclust.Cluster{{Members: members}}}
	serial := Measure(items, res, lsdist.DefaultOptions(), 1)
	parallel := Measure(items, res, lsdist.DefaultOptions(), 8)
	if !approx(serial.QMeasure(), parallel.QMeasure(), 1e-6*serial.QMeasure()) {
		t.Errorf("serial %v != parallel %v", serial.QMeasure(), parallel.QMeasure())
	}
}

func TestEmptyResult(t *testing.T) {
	b := Measure(nil, &segclust.Result{}, lsdist.DefaultOptions(), 0)
	if b.QMeasure() != 0 {
		t.Errorf("empty QMeasure = %v", b.QMeasure())
	}
	// Single noise segment: no pairs, zero penalty.
	items := []segclust.Item{{Seg: geom.Seg(0, 0, 1, 1), TrajID: 0, Weight: 1}}
	res := &segclust.Result{ClusterOf: []int{segclust.Noise}}
	if got := Measure(items, res, lsdist.DefaultOptions(), 0).QMeasure(); got != 0 {
		t.Errorf("single-noise QMeasure = %v", got)
	}
}
