// Package quality implements the clustering quality measure of Section 5.1
// (Formula 11): QMeasure = Total SSE + Noise Penalty, where the SSE of a
// cluster is the mean pairwise squared distance normalised as
// 1/(2|C|)·ΣΣ dist(x,y)² and the noise penalty applies the same form to
// the set of noise segments, penalising "incorrectly classified noises"
// when ε is too small or MinLns too large.
package quality

import (
	"runtime"
	"sync"

	"repro/internal/lsdist"
	"repro/internal/segclust"
)

// Breakdown separates the two terms of QMeasure.
type Breakdown struct {
	TotalSSE     float64
	NoisePenalty float64
}

// QMeasure returns TotalSSE + NoisePenalty.
func (b Breakdown) QMeasure() float64 { return b.TotalSSE + b.NoisePenalty }

// Measure computes the quality breakdown of a clustering result over its
// input items. workers ≤ 0 uses GOMAXPROCS. TotalSSE is the sum of the
// per-cluster terms returned by ClusterSSEs, so the two views can never
// diverge.
func Measure(items []segclust.Item, res *segclust.Result, opt lsdist.Options, workers int) Breakdown {
	var b Breakdown
	for _, sse := range ClusterSSEs(items, res, opt, workers) {
		b.TotalSSE += sse
	}
	b.NoisePenalty = NoisePenalty(items, res, opt, workers)
	return b
}

// NoisePenalty computes the noise term of Formula 11 alone: the SSE form
// applied to the set of noise segments.
func NoisePenalty(items []segclust.Item, res *segclust.Result, opt lsdist.Options, workers int) float64 {
	var noise []int
	for i, l := range res.ClusterOf {
		if l == segclust.Noise {
			noise = append(noise, i)
		}
	}
	return groupSSE(items, noise, lsdist.New(opt), workers)
}

// ClusterSSEs returns the SSE term of every cluster individually (the
// summands of Formula 11's Total SSE), index-aligned with res.Clusters.
// The serving layer reports them as per-cluster compactness statistics.
// workers ≤ 0 uses GOMAXPROCS.
func ClusterSSEs(items []segclust.Item, res *segclust.Result, opt lsdist.Options, workers int) []float64 {
	dist := lsdist.New(opt)
	out := make([]float64, len(res.Clusters))
	for i, c := range res.Clusters {
		out[i] = groupSSE(items, c.Members, dist, workers)
	}
	return out
}

// groupSSE computes 1/(2|G|)·Σ_{x∈G}Σ_{y∈G} dist(x,y)² over the item index
// group G, parallelised over rows.
func groupSSE(items []segclust.Item, group []int, dist lsdist.Func, workers int) float64 {
	n := len(group)
	if n == 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	sums := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var s float64
			for i := w; i < n; i += workers {
				a := items[group[i]].Seg
				// Pairwise distances are symmetric with dist(x,x)=0, so sum
				// the strict upper triangle and double it.
				for j := i + 1; j < n; j++ {
					d := dist(a, items[group[j]].Seg)
					s += 2 * d * d
				}
			}
			sums[w] = s
		}(w)
	}
	wg.Wait()
	var total float64
	for _, s := range sums {
		total += s
	}
	return total / (2 * float64(n))
}
