// Package quality implements the clustering quality measure of Section 5.1
// (Formula 11): QMeasure = Total SSE + Noise Penalty, where the SSE of a
// cluster is the mean pairwise squared distance normalised as
// 1/(2|C|)·ΣΣ dist(x,y)² and the noise penalty applies the same form to
// the set of noise segments, penalising "incorrectly classified noises"
// when ε is too small or MinLns too large.
package quality

import (
	"runtime"
	"sync"

	"repro/internal/lsdist"
	"repro/internal/segclust"
)

// Breakdown separates the two terms of QMeasure.
type Breakdown struct {
	TotalSSE     float64
	NoisePenalty float64
}

// QMeasure returns TotalSSE + NoisePenalty.
func (b Breakdown) QMeasure() float64 { return b.TotalSSE + b.NoisePenalty }

// Measure computes the quality breakdown of a clustering result over its
// input items. workers ≤ 0 uses GOMAXPROCS.
func Measure(items []segclust.Item, res *segclust.Result, opt lsdist.Options, workers int) Breakdown {
	dist := lsdist.New(opt)
	var b Breakdown
	for _, c := range res.Clusters {
		b.TotalSSE += groupSSE(items, c.Members, dist, workers)
	}
	var noise []int
	for i, l := range res.ClusterOf {
		if l == segclust.Noise {
			noise = append(noise, i)
		}
	}
	b.NoisePenalty = groupSSE(items, noise, dist, workers)
	return b
}

// groupSSE computes 1/(2|G|)·Σ_{x∈G}Σ_{y∈G} dist(x,y)² over the item index
// group G, parallelised over rows.
func groupSSE(items []segclust.Item, group []int, dist lsdist.Func, workers int) float64 {
	n := len(group)
	if n == 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	sums := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var s float64
			for i := w; i < n; i += workers {
				a := items[group[i]].Seg
				// Pairwise distances are symmetric with dist(x,x)=0, so sum
				// the strict upper triangle and double it.
				for j := i + 1; j < n; j++ {
					d := dist(a, items[group[j]].Seg)
					s += 2 * d * d
				}
			}
			sums[w] = s
		}(w)
	}
	wg.Wait()
	var total float64
	for _, s := range sums {
		total += s
	}
	return total / (2 * float64(n))
}
