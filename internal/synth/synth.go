// Package synth generates the synthetic trajectory data sets that stand in
// for the paper's experimental data (see DESIGN.md §2 for the substitution
// rationale):
//
//   - Hurricanes: Atlantic-like tracks replacing the Best Track data set
//     (570 trajectories, 17 736 points in the paper). Three families —
//     straight east-to-west trade-wind tracks, recurving tracks that bend
//     from east-to-west through south-to-north into west-to-east, and
//     straight west-to-east extratropical tracks — reproduce the structure
//     behind Figure 18's clusters.
//   - AnimalMovements: Starkey-like telemetry replacing Elk1993 (33
//     trajectories, 47 204 points) and Deer1995 (32 trajectories, 20 065
//     points): home-range wandering mixed with travel along shared
//     corridors of configurable count and usage.
//   - Figure1: the paper's motivating five-trajectory scenario with one
//     common sub-trajectory and divergent tails.
//   - RandomWalks: pure-noise trajectories for the Section 5.5 robustness
//     experiment (25 % noise).
//
// Everything is deterministic given the seed.
package synth

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// World is the coordinate frame all generators share: an abstract plane
// roughly 1000×600 units, sized so that the paper's ε values (≈25–35) are
// meaningful neighbourhood radii.
var World = geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1000, 600)}

// HurricaneConfig parameterises the hurricane generator.
type HurricaneConfig struct {
	// NumTracks is the number of trajectories (paper: 570).
	NumTracks int
	// MeanPoints is the average track length in points (paper: ≈31,
	// 6-hourly fixes). Individual lengths vary ±40 %.
	MeanPoints int
	// Jitter is the per-step positional noise amplitude.
	Jitter float64
	// Seed drives the generator.
	Seed int64
}

// DefaultHurricaneConfig matches the paper's data scale: 570 tracks and
// about 17.7 k points.
func DefaultHurricaneConfig() HurricaneConfig {
	return HurricaneConfig{NumTracks: 570, MeanPoints: 31, Jitter: 4, Seed: 1}
}

// Hurricanes generates the hurricane-like data set.
func Hurricanes(cfg HurricaneConfig) []geom.Trajectory {
	if cfg.NumTracks <= 0 {
		return nil
	}
	if cfg.MeanPoints < 4 {
		cfg.MeanPoints = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	trs := make([]geom.Trajectory, 0, cfg.NumTracks)
	for i := 0; i < cfg.NumTracks; i++ {
		n := varyLen(rng, cfg.MeanPoints)
		var pts []geom.Point
		switch r := rng.Float64(); {
		case r < 0.35:
			pts = eastToWest(rng, n, cfg.Jitter)
		case r < 0.75:
			pts = recurving(rng, n, cfg.Jitter)
		default:
			pts = westToEast(rng, n, cfg.Jitter)
		}
		trs = append(trs, geom.Trajectory{ID: i, Label: "hurricane", Weight: 1, Points: pts})
	}
	return trs
}

func varyLen(rng *rand.Rand, mean int) int {
	n := int(float64(mean) * (0.6 + 0.8*rng.Float64()))
	if n < 4 {
		n = 4
	}
	return n
}

// recurveLongitudes are the preferred recurve corridors: real Atlantic
// hurricanes recurve at a handful of climatologically favoured longitudes,
// which is what produces the paper's distinct south-to-north clusters.
var recurveLongitudes = []float64{180, 290, 400, 510, 620}

// eastToWest: low-latitude trade-wind band moving right to left.
func eastToWest(rng *rand.Rand, n int, jitter float64) []geom.Point {
	y := 105 + rng.Float64()*30 // band y ∈ [105, 135]
	x0 := 820 + rng.Float64()*150
	x1 := 80 + rng.Float64()*150
	drift := (rng.Float64() - 0.5) * 16
	return samplePolyline(n, []geom.Point{
		geom.Pt(x0, y),
		geom.Pt(x1, y+drift),
	}, rng, jitter)
}

// westToEast: higher-latitude band moving left to right.
func westToEast(rng *rand.Rand, n int, jitter float64) []geom.Point {
	y := 445 + rng.Float64()*30
	x0 := 150 + rng.Float64()*120
	x1 := 780 + rng.Float64()*140
	drift := (rng.Float64() - 0.5) * 16
	return samplePolyline(n, []geom.Point{
		geom.Pt(x0, y),
		geom.Pt(x1, y+drift),
	}, rng, jitter)
}

// recurving: heads west in the trade-wind band, turns sharply north at one
// of the favoured recurve longitudes, then exits east in the upper band —
// the classic Atlantic recurve as a three-leg polyline.
func recurving(rng *rand.Rand, n int, jitter float64) []geom.Point {
	xTurn := recurveLongitudes[rng.Intn(len(recurveLongitudes))] + rng.NormFloat64()*10
	x0 := 700 + rng.Float64()*200 // entry from the east
	x1 := 680 + rng.Float64()*220 // exit to the east
	y0 := 105 + rng.Float64()*30  // lower band
	y1 := 445 + rng.Float64()*30  // upper band
	return samplePolyline(n, []geom.Point{
		geom.Pt(x0, y0),
		geom.Pt(xTurn, y0+rng.Float64()*12),
		geom.Pt(xTurn+rng.NormFloat64()*6, y1),
		geom.Pt(x1, y1+rng.Float64()*12),
	}, rng, jitter)
}

// samplePolyline distributes n jittered points along the waypoints,
// proportionally to arc length.
func samplePolyline(n int, wps []geom.Point, rng *rand.Rand, jitter float64) []geom.Point {
	var total float64
	for i := 1; i < len(wps); i++ {
		total += wps[i-1].Dist(wps[i])
	}
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		target := total * float64(i) / float64(n-1)
		p := pointAtArc(wps, target)
		pts = append(pts, geom.Pt(p.X+rng.NormFloat64()*jitter, p.Y+rng.NormFloat64()*jitter))
	}
	return pts
}

func pointAtArc(wps []geom.Point, target float64) geom.Point {
	var acc float64
	for i := 1; i < len(wps); i++ {
		l := wps[i-1].Dist(wps[i])
		if acc+l >= target && l > 0 {
			return wps[i-1].Lerp(wps[i], (target-acc)/l)
		}
		acc += l
	}
	return wps[len(wps)-1]
}

// AnimalConfig parameterises the Starkey-like generator.
type AnimalConfig struct {
	// NumAnimals is the number of trajectories (Elk1993: 33; Deer1995: 32).
	NumAnimals int
	// PointsPer is the telemetry fixes per animal (Elk1993: ≈1430;
	// Deer1995: ≈630).
	PointsPer int
	// Corridors is the number of shared movement corridors (more corridors
	// → more clusters; elk-like ≈ 13, deer-like ≈ 2).
	Corridors int
	// CorridorUse is the probability an animal is travelling a corridor at
	// any time (vs wandering its home range).
	CorridorUse float64
	// StepLen is the mean wander step length.
	StepLen float64
	// Jitter is positional noise while on a corridor.
	Jitter float64
	// Seed drives the generator.
	Seed int64
	// Species labels the trajectories.
	Species string
}

// ElkConfig approximates Elk1993: many corridors, long trajectories.
func ElkConfig() AnimalConfig {
	return AnimalConfig{
		NumAnimals: 33, PointsPer: 1430, Corridors: 13, CorridorUse: 0.55,
		StepLen: 14, Jitter: 5, Seed: 2, Species: "elk",
	}
}

// DeerConfig approximates Deer1995: two dominant corridors, shorter
// trajectories.
func DeerConfig() AnimalConfig {
	return AnimalConfig{
		NumAnimals: 32, PointsPer: 630, Corridors: 2, CorridorUse: 0.5,
		StepLen: 14, Jitter: 5, Seed: 3, Species: "deer",
	}
}

// AnimalMovements generates the telemetry-like data set. Animals move on a
// shared trail network — a random spanning tree of well-separated habitat
// nodes whose edges are the movement corridors — walking edge after edge
// with telemetry jitter and occasionally milling around a node. This
// mirrors how the Starkey animals produce a few dense shared corridors
// (the clusters) amid angularly incoherent local movement (the noise).
func AnimalMovements(cfg AnimalConfig) []geom.Trajectory {
	if cfg.NumAnimals <= 0 || cfg.PointsPer < 2 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nodes, edges := makeTrailNetwork(rng, cfg.Corridors)
	adj := make([][]int, len(nodes))
	for e, ed := range edges {
		adj[ed[0]] = append(adj[ed[0]], e)
		adj[ed[1]] = append(adj[ed[1]], e)
	}
	trs := make([]geom.Trajectory, 0, cfg.NumAnimals)
	for a := 0; a < cfg.NumAnimals; a++ {
		at := rng.Intn(len(nodes))
		pts := make([]geom.Point, 0, cfg.PointsPer)
		pts = append(pts, nodes[at])
		pos := nodes[at]
		for len(pts) < cfg.PointsPer {
			if rng.Float64() >= cfg.CorridorUse {
				// Mill around the current node: short incoherent wander.
				steps := 3 + rng.Intn(8)
				for s := 0; s < steps && len(pts) < cfg.PointsPer; s++ {
					dir := rng.Float64() * 2 * math.Pi
					step := geom.Pt(math.Cos(dir), math.Sin(dir)).Scale(cfg.StepLen * 0.7)
					if pos.Dist(nodes[at]) > 35 {
						step = nodes[at].Sub(pos).Unit().Scale(cfg.StepLen * 0.7)
					}
					pos = clampToWorld(pos.Add(step))
					pts = append(pts, pos)
				}
				continue
			}
			// Walk a random incident corridor to its far node.
			if len(adj[at]) == 0 {
				break
			}
			e := adj[at][rng.Intn(len(adj[at]))]
			far := edges[e][0]
			if far == at {
				far = edges[e][1]
			}
			seg := geom.Segment{Start: pos, End: nodes[far]}
			steps := int(seg.Length()/cfg.StepLen) + 1
			for s := 1; s <= steps && len(pts) < cfg.PointsPer; s++ {
				p := seg.Start.Lerp(seg.End, float64(s)/float64(steps))
				pos = geom.Pt(p.X+rng.NormFloat64()*cfg.Jitter, p.Y+rng.NormFloat64()*cfg.Jitter)
				pts = append(pts, pos)
			}
			at = far
		}
		trs = append(trs, geom.Trajectory{ID: a, Label: cfg.Species, Weight: 1, Points: pts})
	}
	return trs
}

// makeTrailNetwork places numEdges+1 nodes with generous separation and
// connects each node after the first to its nearest already-placed node —
// a random spanning tree with exactly numEdges corridor edges.
func makeTrailNetwork(rng *rand.Rand, numEdges int) ([]geom.Point, [][2]int) {
	if numEdges < 1 {
		numEdges = 1
	}
	n := numEdges + 1
	nodes := make([]geom.Point, 0, n)
	const minSep = 160
	for len(nodes) < n {
		cand := geom.Pt(
			World.Min.X+70+rng.Float64()*(World.Width()-140),
			World.Min.Y+70+rng.Float64()*(World.Height()-140),
		)
		ok := true
		for _, p := range nodes {
			if p.Dist(cand) < minSep {
				ok = false
				break
			}
		}
		if ok || rng.Float64() < 0.02 { // escape hatch for crowded worlds
			nodes = append(nodes, cand)
		}
	}
	edges := make([][2]int, 0, numEdges)
	for i := 1; i < n; i++ {
		best, bestD := 0, math.Inf(1)
		for j := 0; j < i; j++ {
			if d := nodes[i].Dist(nodes[j]); d < bestD {
				best, bestD = j, d
			}
		}
		edges = append(edges, [2]int{i, best})
	}
	return nodes, edges
}

func clampToWorld(p geom.Point) geom.Point {
	if p.X < World.Min.X {
		p.X = World.Min.X
	}
	if p.X > World.Max.X {
		p.X = World.Max.X
	}
	if p.Y < World.Min.Y {
		p.Y = World.Min.Y
	}
	if p.Y > World.Max.Y {
		p.Y = World.Max.Y
	}
	return p
}

// Figure1 reproduces the paper's motivating example: five trajectories that
// share one common sub-trajectory (a horizontal corridor) and then diverge
// in five different directions. jitter > 0 adds noise; seed controls it.
func Figure1(jitter float64, seed int64) []geom.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	corridorStart := geom.Pt(200, 300)
	corridorEnd := geom.Pt(500, 300)
	exits := []geom.Point{
		geom.Pt(900, 560), // northeast
		geom.Pt(900, 300), // east
		geom.Pt(900, 40),  // southeast
		geom.Pt(650, 580), // north
		geom.Pt(650, 20),  // south
	}
	entries := []geom.Point{
		geom.Pt(20, 520),
		geom.Pt(20, 400),
		geom.Pt(20, 300),
		geom.Pt(20, 200),
		geom.Pt(20, 80),
	}
	trs := make([]geom.Trajectory, 5)
	for i := 0; i < 5; i++ {
		var pts []geom.Point
		pts = appendLine(pts, entries[i], corridorStart, 14, rng, jitter)
		pts = appendLine(pts, corridorStart, corridorEnd, 14, rng, jitter)
		pts = appendLine(pts, corridorEnd, exits[i], 14, rng, jitter)
		trs[i] = geom.Trajectory{ID: i, Label: "figure1", Weight: 1, Points: pts}
	}
	return trs
}

func appendLine(pts []geom.Point, a, b geom.Point, steps int, rng *rand.Rand, jitter float64) []geom.Point {
	for s := 0; s <= steps; s++ {
		p := a.Lerp(b, float64(s)/float64(steps))
		pts = append(pts, geom.Pt(p.X+rng.NormFloat64()*jitter, p.Y+rng.NormFloat64()*jitter))
	}
	return pts
}

// CorridorScene generates numPerCorridor trajectories along each of k
// clearly separated straight corridors — the structured part of the
// Section 5.5 robustness data set.
func CorridorScene(k, numPerCorridor, pointsPer int, jitter float64, seed int64) []geom.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	var trs []geom.Trajectory
	id := 0
	for c := 0; c < k; c++ {
		// Spread corridors: alternate horizontal and vertical bands.
		var a, b geom.Point
		if c%2 == 0 {
			y := World.Min.Y + (float64(c/2)+1)*World.Height()/(float64(k/2)+2)
			a, b = geom.Pt(100, y), geom.Pt(900, y)
		} else {
			x := World.Min.X + (float64(c/2)+1)*World.Width()/(float64((k+1)/2)+2)
			a, b = geom.Pt(x, 80), geom.Pt(x, 520)
		}
		for t := 0; t < numPerCorridor; t++ {
			start := a.Add(geom.Pt(rng.NormFloat64()*jitter*2, rng.NormFloat64()*jitter*2))
			end := b.Add(geom.Pt(rng.NormFloat64()*jitter*2, rng.NormFloat64()*jitter*2))
			pts := make([]geom.Point, 0, pointsPer)
			for s := 0; s < pointsPer; s++ {
				p := start.Lerp(end, float64(s)/float64(pointsPer-1))
				pts = append(pts, geom.Pt(p.X+rng.NormFloat64()*jitter, p.Y+rng.NormFloat64()*jitter))
			}
			trs = append(trs, geom.Trajectory{ID: id, Label: "corridor", Weight: 1, Points: pts})
			id++
		}
	}
	return trs
}

// RandomWalks generates n pure-noise trajectories of the given length —
// the noise component of the Section 5.5 experiment.
func RandomWalks(n, pointsPer int, stepLen float64, seed int64) []geom.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	trs := make([]geom.Trajectory, n)
	for i := 0; i < n; i++ {
		pos := geom.Pt(
			World.Min.X+rng.Float64()*World.Width(),
			World.Min.Y+rng.Float64()*World.Height(),
		)
		pts := make([]geom.Point, 0, pointsPer)
		pts = append(pts, pos)
		heading := rng.Float64() * 2 * math.Pi
		for len(pts) < pointsPer {
			heading += (rng.Float64() - 0.5) * 2.2
			pos = clampToWorld(pos.Add(geom.Pt(math.Cos(heading), math.Sin(heading)).Scale(stepLen)))
			pts = append(pts, pos)
		}
		trs[i] = geom.Trajectory{ID: i, Label: "noise", Weight: 1, Points: pts}
	}
	return trs
}

// MixNoise combines a structured data set with a fraction of noise
// trajectories (frac of the *total*), renumbering IDs so they stay unique.
// frac=0.25 reproduces the paper's "25 % of trajectories are generated as
// noises".
func MixNoise(base []geom.Trajectory, frac float64, pointsPer int, seed int64) []geom.Trajectory {
	if frac <= 0 || frac >= 1 {
		return base
	}
	nNoise := int(math.Round(float64(len(base)) * frac / (1 - frac)))
	noise := RandomWalks(nNoise, pointsPer, 18, seed)
	out := make([]geom.Trajectory, 0, len(base)+nNoise)
	out = append(out, base...)
	for i, tr := range noise {
		tr.ID = len(base) + i
		out = append(out, tr)
	}
	return out
}
