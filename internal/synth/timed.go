package synth

// Generators for the geometry-layer scenarios: timed corridor traffic for
// the spatiotemporal examples and tests, and lat/lon GPS tracks for the
// geodesic ones. Deterministic given the seed, like everything here.

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/temporal"
)

// RushHours generates timed trajectories along ONE spatial corridor in two
// temporally disjoint waves ("morning" and "evening" traffic): wave w
// departs at w*waveGap, vehicles headway seconds apart, points dt seconds
// apart. Spatially the waves are indistinguishable — planar TRACLUS finds
// one cluster — but with a temporal weight large enough that
// wT·waveGap > eps the spatiotemporal distance separates them into two.
// IDs are 0..2*numPerWave-1; wave w owns ids w*numPerWave..(w+1)*numPerWave-1.
func RushHours(numPerWave, pointsPer int, jitter float64, seed int64, headway, dt, waveGap float64) []temporal.TimedTrajectory {
	rng := rand.New(rand.NewSource(seed))
	a, b := geom.Pt(100, 300), geom.Pt(900, 300)
	var trs []temporal.TimedTrajectory
	for w := 0; w < 2; w++ {
		for v := 0; v < numPerWave; v++ {
			start := a.Add(geom.Pt(rng.NormFloat64()*jitter*2, rng.NormFloat64()*jitter*2))
			end := b.Add(geom.Pt(rng.NormFloat64()*jitter*2, rng.NormFloat64()*jitter*2))
			t0 := float64(w)*waveGap + float64(v)*headway
			pts := make([]geom.Point, 0, pointsPer)
			times := make([]float64, 0, pointsPer)
			for s := 0; s < pointsPer; s++ {
				p := start.Lerp(end, float64(s)/float64(pointsPer-1))
				pts = append(pts, geom.Pt(p.X+rng.NormFloat64()*jitter, p.Y+rng.NormFloat64()*jitter))
				times = append(times, t0+float64(s)*dt)
			}
			trs = append(trs, temporal.TimedTrajectory{
				ID: w*numPerWave + v, Label: "rush", Weight: 1, Points: pts, Times: times,
			})
		}
	}
	return trs
}

// TimedCorridorScene attaches timestamps to CorridorScene: every trajectory
// departs at its index*headway and samples points dt apart. It keeps the
// spatial geometry bit-identical to CorridorScene with the same arguments,
// which the wT=0 equivalence tests rely on.
func TimedCorridorScene(k, numPerCorridor, pointsPer int, jitter float64, seed int64, headway, dt float64) []temporal.TimedTrajectory {
	base := CorridorScene(k, numPerCorridor, pointsPer, jitter, seed)
	trs := make([]temporal.TimedTrajectory, len(base))
	for i, tr := range base {
		times := make([]float64, len(tr.Points))
		for s := range times {
			times[s] = float64(i)*headway + float64(s)*dt
		}
		trs[i] = temporal.TimedTrajectory{
			ID: tr.ID, Label: tr.Label, Weight: tr.Weight, Points: tr.Points, Times: times,
		}
	}
	return trs
}

// GPSTracks generates lat/lon commuter tracks (X=longitude, Y=latitude, in
// degrees) along k corridors radiating from a common origin — the geodesic
// example's data. Corridors are a few kilometres long, so planar treatment
// of raw degrees would distort east–west distances by cos(latitude); the
// geodesic geometry's working frame corrects that.
func GPSTracks(k, numPerCorridor, pointsPer int, seed int64) []geom.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	const (
		lat0, lon0 = 47.6062, -122.3321 // a mid-latitude city center
		spanDeg    = 0.05               // ≈5.5 km north–south
		jitterDeg  = 0.0004             // ≈45 m
	)
	var trs []geom.Trajectory
	id := 0
	for c := 0; c < k; c++ {
		// Spread corridor headings over a half-circle so east–west and
		// north–south legs both occur, from origins far enough apart that
		// the corridors stay distinct.
		dir := geom.Pt(1, 0).Rotate(3.14159 * float64(c) / float64(k))
		a := geom.Pt(lon0+0.06*float64(c), lat0-0.04*float64(c))
		b := a.Add(dir.Scale(spanDeg))
		for t := 0; t < numPerCorridor; t++ {
			pts := make([]geom.Point, 0, pointsPer)
			for s := 0; s < pointsPer; s++ {
				p := a.Lerp(b, float64(s)/float64(pointsPer-1))
				pts = append(pts, geom.Pt(
					p.X+rng.NormFloat64()*jitterDeg,
					p.Y+rng.NormFloat64()*jitterDeg,
				))
			}
			trs = append(trs, geom.Trajectory{ID: id, Label: "gps", Weight: 1, Points: pts})
			id++
		}
	}
	return trs
}
