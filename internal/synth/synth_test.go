package synth

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestHurricanesScale(t *testing.T) {
	trs := Hurricanes(DefaultHurricaneConfig())
	if len(trs) != 570 {
		t.Fatalf("tracks = %d, want 570 (the paper's Best Track count)", len(trs))
	}
	total := geom.TotalPoints(trs)
	// The paper's data set has 17 736 points; ours should land within 20%.
	if total < 14000 || total > 22000 {
		t.Errorf("total points = %d, want ≈17 736", total)
	}
	for _, tr := range trs {
		if err := tr.Validate(); err != nil {
			t.Fatalf("invalid track: %v", err)
		}
	}
}

func TestHurricanesDeterministic(t *testing.T) {
	a := Hurricanes(DefaultHurricaneConfig())
	b := Hurricanes(DefaultHurricaneConfig())
	if len(a) != len(b) {
		t.Fatal("count differs")
	}
	for i := range a {
		if len(a[i].Points) != len(b[i].Points) {
			t.Fatalf("track %d lengths differ", i)
		}
		for j := range a[i].Points {
			if !a[i].Points[j].Eq(b[i].Points[j]) {
				t.Fatalf("track %d point %d differs", i, j)
			}
		}
	}
	c := DefaultHurricaneConfig()
	c.Seed = 99
	other := Hurricanes(c)
	same := true
	for j := range a[0].Points {
		if j < len(other[0].Points) && !a[0].Points[j].Eq(other[0].Points[j]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical tracks")
	}
}

func TestHurricanesFamilies(t *testing.T) {
	trs := Hurricanes(DefaultHurricaneConfig())
	// All three families must appear: tracks ending well north of start
	// (recurves), tracks moving net-west, tracks moving net-east at high y.
	var recurve, e2w, w2e int
	for _, tr := range trs {
		s, e := tr.Points[0], tr.Points[len(tr.Points)-1]
		switch {
		case e.Y-s.Y > 200:
			recurve++
		case e.X < s.X-200 && s.Y < 250:
			e2w++
		case e.X > s.X+200 && s.Y > 350:
			w2e++
		}
	}
	if recurve < 50 || e2w < 50 || w2e < 20 {
		t.Errorf("families: recurve=%d e2w=%d w2e=%d", recurve, e2w, w2e)
	}
}

func TestHurricanesEdgeCases(t *testing.T) {
	if got := Hurricanes(HurricaneConfig{NumTracks: 0}); got != nil {
		t.Errorf("zero tracks = %v", got)
	}
	tiny := Hurricanes(HurricaneConfig{NumTracks: 3, MeanPoints: 1, Seed: 1})
	for _, tr := range tiny {
		if len(tr.Points) < 4 {
			t.Errorf("track with %d points", len(tr.Points))
		}
	}
}

func TestAnimalMovementsScale(t *testing.T) {
	elk := AnimalMovements(ElkConfig())
	if len(elk) != 33 {
		t.Fatalf("elk animals = %d, want 33", len(elk))
	}
	for _, tr := range elk {
		if len(tr.Points) != ElkConfig().PointsPer {
			t.Fatalf("elk track has %d points, want %d", len(tr.Points), ElkConfig().PointsPer)
		}
		if tr.Label != "elk" {
			t.Fatalf("label = %q", tr.Label)
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	deer := AnimalMovements(DeerConfig())
	if len(deer) != 32 {
		t.Fatalf("deer animals = %d, want 32", len(deer))
	}
}

func TestAnimalMovementsInsideWorld(t *testing.T) {
	cfg := ElkConfig()
	cfg.PointsPer = 300
	slack := World.Expand(60) // jitter may exceed the border slightly
	for _, tr := range AnimalMovements(cfg) {
		for _, p := range tr.Points {
			if !slack.Contains(p) {
				t.Fatalf("point outside world: %v", p)
			}
		}
	}
}

func TestAnimalMovementsDeterministic(t *testing.T) {
	cfg := DeerConfig()
	cfg.PointsPer = 100
	a := AnimalMovements(cfg)
	b := AnimalMovements(cfg)
	for i := range a {
		for j := range a[i].Points {
			if !a[i].Points[j].Eq(b[i].Points[j]) {
				t.Fatal("non-deterministic")
			}
		}
	}
}

func TestAnimalMovementsEdgeCases(t *testing.T) {
	if got := AnimalMovements(AnimalConfig{NumAnimals: 0, PointsPer: 10}); got != nil {
		t.Errorf("zero animals = %v", got)
	}
	if got := AnimalMovements(AnimalConfig{NumAnimals: 1, PointsPer: 1}); got != nil {
		t.Errorf("one point = %v", got)
	}
	one := AnimalMovements(AnimalConfig{
		NumAnimals: 2, PointsPer: 50, Corridors: 0, CorridorUse: 1,
		StepLen: 10, Jitter: 2, Seed: 1,
	})
	if len(one) != 2 {
		t.Errorf("corridors=0 should still produce animals (clamped to 1 edge)")
	}
}

func TestFigure1Structure(t *testing.T) {
	trs := Figure1(0, 1) // no jitter: exact corridor
	if len(trs) != 5 {
		t.Fatalf("trajectories = %d, want 5", len(trs))
	}
	// Every trajectory passes through the corridor y=300, x∈[200,500].
	for i, tr := range trs {
		touches := 0
		for _, p := range tr.Points {
			if p.X >= 195 && p.X <= 505 && math.Abs(p.Y-300) < 5 {
				touches++
			}
		}
		if touches < 10 {
			t.Errorf("trajectory %d only touches corridor %d times", i, touches)
		}
	}
	// Endpoints diverge: pairwise final-point distances are large.
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			pi := trs[i].Points[len(trs[i].Points)-1]
			pj := trs[j].Points[len(trs[j].Points)-1]
			if pi.Dist(pj) < 100 {
				t.Errorf("exits %d and %d too close", i, j)
			}
		}
	}
}

func TestCorridorScene(t *testing.T) {
	trs := CorridorScene(4, 6, 20, 3, 1)
	if len(trs) != 24 {
		t.Fatalf("trajectories = %d, want 24", len(trs))
	}
	ids := map[int]bool{}
	for _, tr := range trs {
		if ids[tr.ID] {
			t.Fatalf("duplicate id %d", tr.ID)
		}
		ids[tr.ID] = true
		if len(tr.Points) != 20 {
			t.Fatalf("points = %d", len(tr.Points))
		}
	}
}

func TestRandomWalks(t *testing.T) {
	trs := RandomWalks(10, 30, 15, 2)
	if len(trs) != 10 {
		t.Fatalf("walks = %d", len(trs))
	}
	for _, tr := range trs {
		if len(tr.Points) != 30 {
			t.Fatalf("points = %d", len(tr.Points))
		}
		for _, p := range tr.Points {
			if !World.Contains(p) {
				t.Fatalf("walk left the world: %v", p)
			}
		}
	}
}

func TestMixNoise(t *testing.T) {
	base := CorridorScene(2, 6, 15, 3, 1)
	mixed := MixNoise(base, 0.25, 15, 2)
	noise := len(mixed) - len(base)
	frac := float64(noise) / float64(len(mixed))
	if math.Abs(frac-0.25) > 0.07 {
		t.Errorf("noise fraction = %v, want ≈0.25", frac)
	}
	// IDs stay unique.
	ids := map[int]bool{}
	for _, tr := range mixed {
		if ids[tr.ID] {
			t.Fatalf("duplicate id %d", tr.ID)
		}
		ids[tr.ID] = true
	}
	// Degenerate fractions are no-ops.
	if got := MixNoise(base, 0, 15, 2); len(got) != len(base) {
		t.Error("frac=0 changed the data")
	}
	if got := MixNoise(base, 1, 15, 2); len(got) != len(base) {
		t.Error("frac=1 changed the data")
	}
}
