package temporal

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mdl"
)

// corridorAt builds n timed trajectories along the horizontal corridor
// y=300, all starting at time t0 and advancing by dt per fix.
func corridorAt(n int, idBase int, t0, dt float64) []TimedTrajectory {
	var trs []TimedTrajectory
	for i := 0; i < n; i++ {
		tr := TimedTrajectory{ID: idBase + i, Weight: 1}
		for s := 0; s <= 20; s++ {
			tr.Points = append(tr.Points, geom.Pt(100+30*float64(s), 300+float64(i)))
			tr.Times = append(tr.Times, t0+dt*float64(s))
		}
		trs = append(trs, tr)
	}
	return trs
}

func TestValidate(t *testing.T) {
	good := corridorAt(1, 0, 0, 60)[0]
	if err := good.Validate(); err != nil {
		t.Errorf("valid rejected: %v", err)
	}
	bad := good
	bad.Times = bad.Times[:3]
	if err := bad.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	rev := corridorAt(1, 0, 0, 60)[0]
	rev.Times[5] = rev.Times[4] - 1
	if err := rev.Validate(); err == nil {
		t.Error("decreasing times accepted")
	}
	nan := corridorAt(1, 0, 0, 60)[0]
	nan.Times[5] = math.NaN()
	if err := nan.Validate(); err == nil {
		t.Error("NaN time accepted")
	}
	short := TimedTrajectory{Points: []geom.Point{geom.Pt(0, 0)}, Times: []float64{0}}
	if err := short.Validate(); err == nil {
		t.Error("single point accepted")
	}
}

func TestIntervalGap(t *testing.T) {
	a := Interval{Start: 0, End: 10}
	cases := []struct {
		b    Interval
		want float64
	}{
		{Interval{Start: 5, End: 15}, 0},  // overlap
		{Interval{Start: 10, End: 20}, 0}, // touching
		{Interval{Start: 12, End: 20}, 2}, // after
		{Interval{Start: -8, End: -3}, 3}, // before
	}
	for _, c := range cases {
		if got := a.Gap(c.b); got != c.want {
			t.Errorf("Gap(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Gap(a); got != c.want {
			t.Errorf("Gap not symmetric for %v", c.b)
		}
	}
}

func TestZeroTemporalWeightMatchesSpatial(t *testing.T) {
	trs := corridorAt(6, 0, 0, 60)
	res, err := Run(trs, Config{Eps: 25, MinLns: 3, TemporalWeight: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(res.Clusters))
	}
}

func TestTemporalWeightSeparatesTimeShiftedCorridors(t *testing.T) {
	// Six trajectories on the same corridor: three in the morning, three a
	// week later. Spatially one cluster; spatiotemporally two.
	var trs []TimedTrajectory
	trs = append(trs, corridorAt(3, 0, 0, 60)...)
	trs = append(trs, corridorAt(3, 3, 7*24*3600, 60)...)

	spatial, err := Run(trs, Config{Eps: 25, MinLns: 3, TemporalWeight: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(spatial.Clusters) != 1 {
		t.Fatalf("spatial clusters = %d, want 1", len(spatial.Clusters))
	}

	timed, err := Run(trs, Config{Eps: 25, MinLns: 3, TemporalWeight: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(timed.Clusters) != 2 {
		t.Fatalf("spatiotemporal clusters = %d, want 2", len(timed.Clusters))
	}
	// The windows must not overlap.
	w0, w1 := timed.Clusters[0].Window, timed.Clusters[1].Window
	if w0.Gap(w1) == 0 {
		t.Errorf("cluster windows overlap: %v %v", w0, w1)
	}
	for _, c := range timed.Clusters {
		if len(c.Representative) < 2 {
			t.Error("missing representative")
		}
		if len(c.Trajectories) != 3 {
			t.Errorf("trajectories = %d, want 3", len(c.Trajectories))
		}
	}
}

func TestRunErrors(t *testing.T) {
	trs := corridorAt(3, 0, 0, 60)
	if _, err := Run(trs, Config{Eps: 0, MinLns: 3}); err == nil {
		t.Error("Eps=0 accepted")
	}
	if _, err := Run(trs, Config{Eps: 10, MinLns: 0}); err == nil {
		t.Error("MinLns=0 accepted")
	}
	if _, err := Run(trs, Config{Eps: 10, MinLns: 3, TemporalWeight: -1}); err == nil {
		t.Error("negative temporal weight accepted")
	}
	bad := trs
	bad[0].Times = bad[0].Times[:2]
	if _, err := Run(bad, Config{Eps: 10, MinLns: 3}); err == nil {
		t.Error("invalid trajectory accepted")
	}
}

func TestPartitionAllIntervals(t *testing.T) {
	trs := corridorAt(1, 0, 100, 60)
	items, err := PartitionAll(trs, Config{Partition: mdl.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 {
		t.Fatal("no items")
	}
	// A straight corridor yields one partition spanning the whole time
	// range.
	if items[0].Interval.Start != 100 || items[0].Interval.End != 100+60*20 {
		t.Errorf("interval = %v", items[0].Interval)
	}
}

func TestSpatialConversion(t *testing.T) {
	tr := corridorAt(1, 7, 0, 60)[0]
	tr.Weight = 0 // unset → defaults to 1
	sp := tr.Spatial()
	if sp.ID != 7 || sp.Weight != 1 || len(sp.Points) != len(tr.Points) {
		t.Errorf("Spatial = %+v", sp)
	}
}

func TestResample(t *testing.T) {
	tr := TimedTrajectory{
		ID:     1,
		Weight: 1,
		Points: []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)},
		Times:  []float64{0, 100},
	}
	out, err := Resample(tr, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Points) != 5 {
		t.Fatalf("resampled to %d points", len(out.Points))
	}
	for i, p := range out.Points {
		want := float64(i) * 25
		if math.Abs(p.X-want) > 1e-9 {
			t.Errorf("point %d x = %v, want %v", i, p.X, want)
		}
		if out.Times[i] != want {
			t.Errorf("time %d = %v", i, out.Times[i])
		}
	}
	if _, err := Resample(tr, 0); err == nil {
		t.Error("step=0 accepted")
	}
	if _, err := Resample(tr, 1e9); err == nil {
		t.Error("oversized step accepted")
	}
}

func TestResampleRepeatedTimes(t *testing.T) {
	tr := TimedTrajectory{
		ID:     1,
		Points: []geom.Point{geom.Pt(0, 0), geom.Pt(50, 0), geom.Pt(100, 0)},
		Times:  []float64{0, 0, 100}, // repeated fix time
	}
	out, err := Resample(tr, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Points) < 2 {
		t.Fatalf("resampled to %d points", len(out.Points))
	}
}
