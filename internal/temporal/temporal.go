// Package temporal implements the paper's Section 7.1 (item 5) extension:
// taking temporal information into account during clustering. "One can
// expect that time is also recorded with location."
//
// A TimedTrajectory carries a timestamp per point. Partitioning is
// unchanged (characteristic points are a purely spatial notion), but each
// trajectory partition inherits the time interval it spans, and the
// clustering distance gains a fourth component: the temporal distance dT —
// the gap between two segments' time intervals, zero when they overlap.
// With the temporal weight wT = 0 the extension reduces exactly to plain
// TRACLUS, which the tests assert.
package temporal

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/geometry"
	"repro/internal/lsdist"
	"repro/internal/mdl"
	"repro/internal/segclust"
	"repro/internal/sweep"
)

// TimedTrajectory is a trajectory whose points carry timestamps (seconds,
// or any monotone unit).
type TimedTrajectory struct {
	ID     int
	Label  string
	Weight float64
	Points []geom.Point
	Times  []float64
}

// Validate reports structural problems: mismatched lengths, too few
// points, or non-increasing timestamps.
func (t TimedTrajectory) Validate() error {
	if len(t.Points) != len(t.Times) {
		return fmt.Errorf("temporal: trajectory %d has %d points but %d times", t.ID, len(t.Points), len(t.Times))
	}
	if len(t.Points) < 2 {
		return fmt.Errorf("temporal: trajectory %d has %d points, need at least 2", t.ID, len(t.Points))
	}
	for i := 1; i < len(t.Times); i++ {
		if !(t.Times[i] >= t.Times[i-1]) { // also catches NaN
			return fmt.Errorf("temporal: trajectory %d times not non-decreasing at %d", t.ID, i)
		}
	}
	return nil
}

// Spatial drops the timestamps.
func (t TimedTrajectory) Spatial() geom.Trajectory {
	w := t.Weight
	if w == 0 {
		w = 1
	}
	return geom.Trajectory{ID: t.ID, Label: t.Label, Weight: w, Points: t.Points}
}

// Interval is a closed time interval. Since the geometry layer refactor it
// is the one canonical interval type (internal/geometry owns it and the gap
// semantics); the alias keeps every existing temporal caller compiling.
type Interval = geometry.Interval

// Item is a timed trajectory partition.
type Item struct {
	segclust.Item
	Interval Interval
}

// Config extends the spatial clustering parameters with the temporal
// weight wT: dist = w⊥·d⊥ + w∥·d∥ + wθ·dθ + wT·dT.
type Config struct {
	Eps      float64
	MinLns   float64
	MinTrajs int
	Spatial  lsdist.Options
	// TemporalWeight is wT; 0 disables the temporal component entirely.
	TemporalWeight float64
	Partition      mdl.Config
	Gamma          float64
}

// Cluster is a spatiotemporal cluster: segments, participants,
// representative, and the time window the cluster spans.
type Cluster struct {
	Segments       []geom.Segment
	Members        []int
	Trajectories   []int
	Representative []geom.Point
	Window         Interval
}

// Result is the outcome of a spatiotemporal run.
type Result struct {
	Items    []Item
	Clusters []Cluster
	Noise    int
}

// PartitionAll partitions every timed trajectory and attaches the time
// interval each partition spans.
func PartitionAll(trs []TimedTrajectory, cfg Config) ([]Item, error) {
	var items []Item
	for _, tr := range trs {
		if err := tr.Validate(); err != nil {
			return nil, err
		}
		w := tr.Weight
		if w == 0 {
			w = 1
		}
		cps := mdl.ApproximatePartition(tr.Points, cfg.Partition)
		for i := 1; i < len(cps); i++ {
			seg := geom.Segment{Start: tr.Points[cps[i-1]], End: tr.Points[cps[i]]}
			if seg.IsDegenerate() || seg.Length() < cfg.Partition.MinLength {
				continue
			}
			items = append(items, Item{
				Item:     segclust.Item{Seg: seg, TrajID: tr.ID, Weight: w},
				Interval: Interval{Start: tr.Times[cps[i-1]], End: tr.Times[cps[i]]},
			})
		}
	}
	return items, nil
}

// Run executes spatiotemporal TRACLUS: partition, group under the
// four-component distance, and generate representatives with time windows.
//
// Neighborhoods are computed by full scan — O(n²), the paper's index-free
// bound. Note that the geometric prefilter would in fact remain sound (the
// temporal term only ever ADDS distance, so the planar candidate radius
// stays complete); the indexed spatiotemporal path lives in the pipeline's
// geometry layer (internal/geometry + segclust.NewSharedIndexTimed), and
// this reference implementation is kept as its cross-check.
func Run(trs []TimedTrajectory, cfg Config) (*Result, error) {
	if cfg.Eps <= 0 {
		return nil, errors.New("temporal: Eps must be positive")
	}
	if cfg.MinLns <= 0 {
		return nil, errors.New("temporal: MinLns must be positive")
	}
	if cfg.TemporalWeight < 0 || math.IsNaN(cfg.TemporalWeight) {
		return nil, errors.New("temporal: TemporalWeight must be non-negative")
	}
	if !cfg.Spatial.Weights.Valid() {
		cfg.Spatial.Weights = lsdist.DefaultWeights()
	}
	items, err := PartitionAll(trs, cfg)
	if err != nil {
		return nil, err
	}

	spatial := lsdist.New(cfg.Spatial)
	dist := func(a, b Item) float64 {
		d := spatial(a.Seg, b.Seg)
		if cfg.TemporalWeight > 0 {
			d += cfg.TemporalWeight * a.Interval.Gap(b.Interval)
		}
		return d
	}

	labels := runDBSCAN(items, dist, cfg)

	res := &Result{Items: items}
	minTrajs := cfg.MinTrajs
	if minTrajs <= 0 {
		minTrajs = int(cfg.MinLns)
	}
	gamma := cfg.Gamma
	if gamma <= 0 {
		gamma = cfg.Eps / 4
	}
	numIDs := 0
	for _, l := range labels {
		if l+1 > numIDs {
			numIDs = l + 1
		}
	}
	members := make([][]int, numIDs)
	for i, l := range labels {
		if l >= 0 {
			members[l] = append(members[l], i)
		}
	}
	for _, ms := range members {
		trajs := map[int]bool{}
		for _, m := range ms {
			trajs[items[m].TrajID] = true
		}
		if len(trajs) < minTrajs {
			continue
		}
		segs := make([]geom.Segment, len(ms))
		weights := make([]float64, len(ms))
		window := items[ms[0]].Interval
		for i, m := range ms {
			segs[i] = items[m].Seg
			weights[i] = items[m].Weight
			if items[m].Interval.Start < window.Start {
				window.Start = items[m].Interval.Start
			}
			if items[m].Interval.End > window.End {
				window.End = items[m].Interval.End
			}
		}
		res.Clusters = append(res.Clusters, Cluster{
			Segments:       segs,
			Members:        ms,
			Trajectories:   sortedKeys(trajs),
			Representative: sweep.Representative(segs, weights, sweep.Config{MinLns: cfg.MinLns, Gamma: gamma}),
			Window:         window,
		})
	}
	for _, l := range labels {
		if l < 0 {
			res.Noise++
		}
	}
	return res, nil
}

// runDBSCAN is the Figure-12 algorithm over an arbitrary item distance.
func runDBSCAN(items []Item, dist func(a, b Item) float64, cfg Config) []int {
	const unclassified = -2
	const noise = -1
	labels := make([]int, len(items))
	for i := range labels {
		labels[i] = unclassified
	}
	neighborhood := func(i int) ([]int, float64) {
		var hood []int
		var weight float64
		for j := range items {
			if dist(items[i], items[j]) <= cfg.Eps {
				hood = append(hood, j)
				weight += items[j].Weight
			}
		}
		return hood, weight
	}
	clusterID := 0
	for i := range items {
		if labels[i] != unclassified {
			continue
		}
		hood, weight := neighborhood(i)
		if weight < cfg.MinLns {
			labels[i] = noise
			continue
		}
		var queue []int
		for _, j := range hood {
			switch labels[j] {
			case unclassified:
				labels[j] = clusterID
				if j != i {
					queue = append(queue, j)
				}
			case noise:
				labels[j] = clusterID
			}
		}
		for len(queue) > 0 {
			m := queue[0]
			queue = queue[1:]
			mHood, mWeight := neighborhood(m)
			if mWeight < cfg.MinLns {
				continue
			}
			for _, x := range mHood {
				switch labels[x] {
				case unclassified:
					labels[x] = clusterID
					queue = append(queue, x)
				case noise:
					labels[x] = clusterID
				}
			}
		}
		clusterID++
	}
	return labels
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Resample returns a copy of the trajectory sampled at a fixed time step
// by linear interpolation — handy for aligning telemetry with different
// sampling rates before clustering.
func Resample(tr TimedTrajectory, step float64) (TimedTrajectory, error) {
	if err := tr.Validate(); err != nil {
		return TimedTrajectory{}, err
	}
	if step <= 0 {
		return TimedTrajectory{}, errors.New("temporal: step must be positive")
	}
	out := TimedTrajectory{ID: tr.ID, Label: tr.Label, Weight: tr.Weight}
	t0, t1 := tr.Times[0], tr.Times[len(tr.Times)-1]
	idx := 0
	for ts := t0; ts <= t1+1e-12; ts += step {
		for idx+1 < len(tr.Times) && tr.Times[idx+1] < ts {
			idx++
		}
		var p geom.Point
		if idx+1 >= len(tr.Times) {
			p = tr.Points[len(tr.Points)-1]
		} else {
			span := tr.Times[idx+1] - tr.Times[idx]
			if span <= 0 {
				p = tr.Points[idx]
			} else {
				u := (ts - tr.Times[idx]) / span
				if u < 0 {
					u = 0
				} else if u > 1 {
					u = 1
				}
				p = tr.Points[idx].Lerp(tr.Points[idx+1], u)
			}
		}
		out.Points = append(out.Points, p)
		out.Times = append(out.Times, ts)
	}
	if len(out.Points) < 2 {
		return TimedTrajectory{}, errors.New("temporal: step too large for trajectory span")
	}
	return out, nil
}
