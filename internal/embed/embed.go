// Package embed implements constant shift embedding (Roth, Laub, Kawanabe,
// Buhmann, TPAMI 2003 — reference [18] of the TRACLUS paper). The paper
// notes its distance function violates the triangle inequality, which
// blocks metric indexes, and points to constant shift embedding as the fix
// "leaving it as the topic of a future paper" (Section 4.2, Section 7.1
// item 3). This package is that future work:
//
//  1. Take the pairwise TRACLUS distance matrix D of a segment set.
//  2. Center S = -½·J·D·J with J = I - 11ᵀ/n.
//  3. Shift by the most negative eigenvalue: S̃ = S - λmin·I, which makes
//     S̃ positive semidefinite, so D̃ij = S̃ii + S̃jj - 2·S̃ij is a *squared
//     Euclidean* distance — off-diagonal it equals Dij - 2λmin, i.e. the
//     original distances plus a constant, preserving every ordering and
//     every cluster structure that depends only on distance comparisons.
//  4. Read coordinates off the eigendecomposition: X = V·Λ^½.
//
// Embedded points live in a metric space where any spatial index applies.
package embed

import (
	"errors"
	"math"

	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/lsdist"
)

// Result is a constant-shift embedding of n objects.
type Result struct {
	// Coords[i] is the embedded coordinate vector of object i.
	Coords [][]float64
	// Shift is -2·λmin: the constant added to every squared off-diagonal
	// dissimilarity. Zero when D was already Euclidean-embeddable.
	Shift float64
	// Dims is the number of retained dimensions.
	Dims int
}

// Distance2 returns the squared Euclidean distance between embedded
// objects i and j.
func (r *Result) Distance2(i, j int) float64 {
	var sum float64
	for k := 0; k < r.Dims; k++ {
		d := r.Coords[i][k] - r.Coords[j][k]
		sum += d * d
	}
	return sum
}

// Embed computes the constant-shift embedding of a symmetric dissimilarity
// matrix. dims ≤ 0 keeps every dimension with a positive eigenvalue;
// otherwise the dims leading dimensions are kept (a lossy but
// variance-optimal truncation, as in PCA).
func Embed(d [][]float64, dims int) (*Result, error) {
	n := len(d)
	if n == 0 {
		return nil, errors.New("embed: empty matrix")
	}
	for i := range d {
		if len(d[i]) != n {
			return nil, errors.New("embed: matrix not square")
		}
		if d[i][i] != 0 {
			return nil, errors.New("embed: diagonal must be zero")
		}
		for j := range d[i] {
			if math.Abs(d[i][j]-d[j][i]) > 1e-9*(1+math.Abs(d[i][j])) {
				return nil, errors.New("embed: matrix not symmetric")
			}
		}
	}
	if n == 1 {
		return &Result{Coords: [][]float64{{}}, Dims: 0}, nil
	}

	// S = -1/2 · J · D · J (double centering).
	s := linalg.NewMatrix(n, n)
	rowMean := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rowMean[i] += d[i][j]
		}
		total += rowMean[i]
		rowMean[i] /= float64(n)
	}
	total /= float64(n * n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.Set(i, j, -0.5*(d[i][j]-rowMean[i]-rowMean[j]+total))
		}
	}

	values, vecs, err := linalg.SymEigen(s)
	if err != nil {
		return nil, err
	}
	lambdaMin := values[len(values)-1]
	shift := 0.0
	if lambdaMin < 0 {
		shift = -lambdaMin
	}

	// Shifted spectrum; dimension i carries sqrt(values[i] + shift).
	// The all-ones direction has eigenvalue 0 pre-shift and contributes a
	// constant offset identically to every point, so it is harmless.
	keep := n
	if dims > 0 && dims < n {
		keep = dims
	}
	res := &Result{Shift: 2 * shift, Dims: keep}
	res.Coords = make([][]float64, n)
	for i := range res.Coords {
		res.Coords[i] = make([]float64, keep)
	}
	for k := 0; k < keep; k++ {
		ev := values[k] + shift
		if ev < 0 {
			ev = 0
		}
		scale := math.Sqrt(ev)
		for i := 0; i < n; i++ {
			res.Coords[i][k] = vecs.At(i, k) * scale
		}
	}
	return res, nil
}

// SegmentMatrix builds the pairwise TRACLUS distance matrix of a segment
// set under the given options.
func SegmentMatrix(segs []geom.Segment, opt lsdist.Options) [][]float64 {
	dist := lsdist.New(opt)
	n := len(segs)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := dist(segs[i], segs[j])
			d[i][j], d[j][i] = v, v
		}
	}
	return d
}

// EmbedSegments runs the full pipeline: TRACLUS distances → constant shift
// embedding. The returned embedding satisfies, for i ≠ j,
//
//	Distance2(i, j) ≈ dist(segs[i], segs[j]) + Shift
//
// (exactly, up to numerical error, when dims ≤ 0), so an ε-query on the
// original distance becomes a metric √(ε + Shift)-query on the embedding.
func EmbedSegments(segs []geom.Segment, opt lsdist.Options, dims int) (*Result, error) {
	return Embed(SegmentMatrix(segs, opt), dims)
}
