package embed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/lsdist"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randSegs(rng *rand.Rand, n int) []geom.Segment {
	segs := make([]geom.Segment, n)
	for i := range segs {
		x, y := rng.Float64()*300, rng.Float64()*300
		segs[i] = geom.Seg(x, y, x+rng.Float64()*60-30, y+rng.Float64()*60-30)
	}
	return segs
}

func TestEmbedRecoversEuclideanInput(t *testing.T) {
	// A matrix of *squared* Euclidean distances embeds with zero shift and
	// exact recovery.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0), geom.Pt(0, 4), geom.Pt(3, 4)}
	n := len(pts)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = pts[i].Dist2(pts[j])
		}
	}
	res, err := Embed(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shift > 1e-6 {
		t.Errorf("Euclidean input needed shift %v", res.Shift)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !approx(res.Distance2(i, j), d[i][j], 1e-6) {
				t.Errorf("D2(%d,%d) = %v, want %v", i, j, res.Distance2(i, j), d[i][j])
			}
		}
	}
}

func TestEmbedSegmentsPreservesShiftedDistances(t *testing.T) {
	// The core property (Roth et al.): off-diagonal embedded squared
	// distances equal original distances plus one constant.
	rng := rand.New(rand.NewSource(1))
	segs := randSegs(rng, 40)
	opt := lsdist.DefaultOptions()
	res, err := EmbedSegments(segs, opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := SegmentMatrix(segs, opt)
	for i := 0; i < len(segs); i++ {
		for j := 0; j < len(segs); j++ {
			want := 0.0
			if i != j {
				want = d[i][j] + res.Shift
			}
			got := res.Distance2(i, j)
			if !approx(got, want, 1e-5*(1+want)) {
				t.Fatalf("D2(%d,%d) = %v, want %v (shift %v)", i, j, got, want, res.Shift)
			}
		}
	}
}

func TestEmbeddedDistancesAreMetric(t *testing.T) {
	// After embedding, the (non-squared) distances satisfy the triangle
	// inequality — the whole point of the exercise, since the TRACLUS
	// distance itself does not (Section 4.2).
	rng := rand.New(rand.NewSource(2))
	segs := randSegs(rng, 30)
	res, err := EmbedSegments(segs, lsdist.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	n := len(segs)
	dist := func(i, j int) float64 { return math.Sqrt(res.Distance2(i, j)) }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if dist(i, k) > dist(i, j)+dist(j, k)+1e-6 {
					t.Fatalf("triangle violated after embedding: %d %d %d", i, j, k)
				}
			}
		}
	}
}

func TestEmbedPreservesNeighborhoodOrdering(t *testing.T) {
	// Adding a constant off-diagonal preserves distance comparisons, so
	// ε-neighborhood *rankings* survive.
	rng := rand.New(rand.NewSource(3))
	segs := randSegs(rng, 25)
	opt := lsdist.DefaultOptions()
	res, err := EmbedSegments(segs, opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := SegmentMatrix(segs, opt)
	for i := 0; i < len(segs); i++ {
		for a := 0; a < len(segs); a++ {
			for b := 0; b < len(segs); b++ {
				if a == i || b == i {
					continue
				}
				if d[i][a] < d[i][b]-1e-9 && res.Distance2(i, a) > res.Distance2(i, b)+1e-6 {
					t.Fatalf("ordering flipped: %d closer to %d than %d originally", i, a, b)
				}
			}
		}
	}
}

func TestEmbedTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	segs := randSegs(rng, 20)
	res, err := EmbedSegments(segs, lsdist.DefaultOptions(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dims != 3 {
		t.Fatalf("Dims = %d", res.Dims)
	}
	for _, c := range res.Coords {
		if len(c) != 3 {
			t.Fatalf("coord length %d", len(c))
		}
	}
}

func TestEmbedErrors(t *testing.T) {
	if _, err := Embed(nil, 0); err == nil {
		t.Error("empty accepted")
	}
	if _, err := Embed([][]float64{{0, 1}}, 0); err == nil {
		t.Error("ragged accepted")
	}
	if _, err := Embed([][]float64{{1}}, 0); err == nil {
		t.Error("nonzero diagonal accepted")
	}
	if _, err := Embed([][]float64{{0, 1}, {2, 0}}, 0); err == nil {
		t.Error("asymmetric accepted")
	}
	res, err := Embed([][]float64{{0}}, 0)
	if err != nil || res.Dims != 0 {
		t.Errorf("singleton embed = %+v, %v", res, err)
	}
}
