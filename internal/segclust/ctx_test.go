package segclust

// Cancellation and progress-tick behavior of the ctx-aware clustering
// entry points, plus the ResultFromLabels canonicalisation bridge; the
// uncancelled worker-equivalence side lives in parallel_test.go.

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/geom"
	"repro/internal/lsdist"
)

// TestRunCtxMatchesRun pins that RunCtx with a background context and ticks
// enabled is bit-identical to Run, on both the serial and parallel paths,
// and that every item ticks exactly once.
func TestRunCtxMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := corridorItems(rng, 300, 3, 25)
	for _, workers := range []int{1, 4} {
		cfg := defaultCfg()
		cfg.Workers = workers
		want, err := Run(items, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ticks atomic.Int64
		got, err := RunCtx(context.Background(), items, cfg, func() { ticks.Add(1) })
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: RunCtx result differs from Run", workers)
		}
		if ticks.Load() != int64(len(items)) {
			t.Errorf("workers=%d: ticked %d times, want %d", workers, ticks.Load(), len(items))
		}
	}
}

// TestRunCtxCancelled pins prompt abort on both paths: a pre-cancelled
// context returns ctx.Err() and no result.
func TestRunCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := corridorItems(rng, 300, 3, 25)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		cfg := defaultCfg()
		cfg.Workers = workers
		res, err := RunCtx(ctx, items, cfg, nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if res != nil {
			t.Fatalf("workers=%d: cancelled RunCtx returned a result", workers)
		}
	}
}

// TestNeighborhoodWeightsCtxCancelled covers the §4.4 estimation
// dependency: a done context stops the shared neighborhood pass.
func TestNeighborhoodWeightsCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := corridorItems(rng, 200, 3, 25)
	shared := NewSharedIndex(items, 30, lsdist.DefaultOptions(), IndexGrid)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := shared.NeighborhoodWeightsCtx(ctx, 25, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	weights, err := shared.NeighborhoodWeightsCtx(context.Background(), 25, 4)
	if err != nil || len(weights) != len(items) {
		t.Fatalf("uncancelled pass: len=%d err=%v", len(weights), err)
	}
}

// TestResultFromLabelsCanonicalises pins the custom-grouper bridge: sparse
// ids are renumbered densely in ascending order, members come out
// ascending, trajectory sets sorted, and the Definition 10 filter demotes
// thin clusters to noise.
func TestResultFromLabelsCanonicalises(t *testing.T) {
	segs := make([]geom.Segment, 12)
	for i := range segs {
		segs[i] = geom.Seg(float64(i), 0, float64(i)+10, 0)
	}
	items := ItemsFromSegments(segs) // TrajID = index, weight 1
	//              0  1   2  3  4  5  6   7  8  9 10 11
	labels := []int{7, 7, -1, 3, 3, 3, 9, -5, 7, 3, 9, 9}
	res := ResultFromLabels(items, labels, 0, 42)
	if res.DistCalls != 42 {
		t.Errorf("DistCalls = %d, want 42", res.DistCalls)
	}
	if len(res.Clusters) != 3 {
		t.Fatalf("%d clusters, want 3", len(res.Clusters))
	}
	// Ascending original ids: 3 → 0, 7 → 1, 9 → 2.
	wantMembers := [][]int{{3, 4, 5, 9}, {0, 1, 8}, {6, 10, 11}}
	for ci, want := range wantMembers {
		if !reflect.DeepEqual(res.Clusters[ci].Members, want) {
			t.Errorf("cluster %d members = %v, want %v", ci, res.Clusters[ci].Members, want)
		}
		if !reflect.DeepEqual(res.Clusters[ci].Trajectories, want) {
			t.Errorf("cluster %d trajectories = %v, want %v (one trajectory per item)",
				ci, res.Clusters[ci].Trajectories, want)
		}
	}
	wantOf := []int{1, 1, Noise, 0, 0, 0, 2, Noise, 1, 0, 2, 2}
	if !reflect.DeepEqual(res.ClusterOf, wantOf) {
		t.Errorf("ClusterOf = %v, want %v", res.ClusterOf, wantOf)
	}
	if res.Removed != 0 {
		t.Errorf("Removed = %d, want 0", res.Removed)
	}

	// Ids are allowed to be arbitrarily sparse — a huge label must cost
	// O(k), not O(maxID) (this hangs forever if the remap scans 0..maxID).
	sparse := ResultFromLabels(items[:2], []int{1 << 60, 1 << 60}, 0, 0)
	if len(sparse.Clusters) != 1 || !reflect.DeepEqual(sparse.Clusters[0].Members, []int{0, 1}) {
		t.Errorf("sparse ids: %+v", sparse.Clusters)
	}

	// With minTrajs 4 only the four-trajectory cluster survives.
	filtered := ResultFromLabels(items, labels, 4, 0)
	if len(filtered.Clusters) != 1 || filtered.Removed != 2 {
		t.Fatalf("minTrajs=4: %d clusters, Removed=%d; want 1 and 2",
			len(filtered.Clusters), filtered.Removed)
	}
	if !reflect.DeepEqual(filtered.Clusters[0].Members, []int{3, 4, 5, 9}) {
		t.Errorf("surviving cluster members = %v", filtered.Clusters[0].Members)
	}
}

// TestResultFromLabelsMatchesRun pins that canonicalising Run's own
// ClusterOf reproduces Run's Result exactly — the invariant the public
// Pipeline relies on when it mixes default and custom grouping stages.
func TestResultFromLabelsMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := corridorItems(rng, 300, 3, 25)
	want, err := Run(items, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	got := ResultFromLabels(items, want.ClusterOf, 0, want.DistCalls)
	got.Removed = want.Removed // ClusterOf no longer carries the removed sets
	if !reflect.DeepEqual(want, got) {
		t.Error("ResultFromLabels(Run.ClusterOf) differs from Run's own Result")
	}
}
