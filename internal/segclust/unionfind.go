package segclust

import "sync/atomic"

// unionFind is a concurrent disjoint-set forest over [0, n) with lock-free
// union and find (CAS on parent pointers). The union policy is "larger root
// points to smaller root", which makes the structure ABA-free — a parent
// value only ever decreases, so a CAS from an observed parent can only
// succeed while that parent is still current — and makes the final
// partition deterministic regardless of goroutine interleaving: once all
// unions have completed (a barrier the caller provides, e.g. par.ForEachCtx
// returning), the root of every component is exactly its minimum member
// index.
//
// This is the classic wait-free-union scheme used by parallel
// connected-components kernels; path halving in find keeps chains short
// without needing ranks.
type unionFind struct {
	parent []atomic.Int32
}

// newUnionFind returns n singleton sets. Element ids must fit in int32,
// which the callers guarantee (the grouping input is bounded far below
// 2³¹ segments).
func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]atomic.Int32, n)}
	for i := range u.parent {
		u.parent[i].Store(int32(i))
	}
	return u
}

// find returns the current root of x, halving the path as it walks: each
// redirect moves a node from its parent to its grandparent, both of which
// are ancestors, so a concurrent find can at worst observe a slightly
// longer chain — never an incorrect root.
func (u *unionFind) find(x int32) int32 {
	for {
		p := u.parent[x].Load()
		if p == x {
			return x
		}
		gp := u.parent[p].Load()
		if gp == p {
			return p
		}
		u.parent[x].CompareAndSwap(p, gp)
		x = gp
	}
}

// union merges the sets of a and b. Safe for concurrent use; on CAS failure
// (another union moved one of the roots first) it re-resolves both roots
// and retries, so the merge is never lost.
func (u *unionFind) union(a, b int32) {
	for {
		ra, rb := u.find(a), u.find(b)
		if ra == rb {
			return
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		// rb is a root iff its parent is still itself; the CAS both checks
		// that and performs the link, so a root stolen by a concurrent
		// union just forces a retry.
		if u.parent[rb].CompareAndSwap(rb, ra) {
			return
		}
	}
}

// UnionFind is the exported face of the deterministic disjoint-set forest,
// for sibling subsystems that replay ε-graph merges outside this package
// (internal/dendro's dendrogram cuts). It keeps the min-root union policy,
// so after all unions the root of every component is its minimum member —
// exactly the determinism groupEpsGraph's numbering pass relies on.
type UnionFind struct{ u *unionFind }

// NewUnionFind returns n singleton sets over [0, n).
func NewUnionFind(n int) *UnionFind { return &UnionFind{u: newUnionFind(n)} }

// Find returns the current root of x.
func (f *UnionFind) Find(x int32) int32 { return f.u.find(x) }

// Union merges the sets of a and b.
func (f *UnionFind) Union(a, b int32) { f.u.union(a, b) }
