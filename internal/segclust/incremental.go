package segclust

// Incremental ε-graph clustering: answer "what is the clustering now?" under
// appends without recomputing it from scratch. The ε-graph formulation of
// groupEpsGraph makes the update rule exact rather than approximate, because
// every derived quantity is a set-determined function of the neighborhoods:
//
//   - Appending items only GROWS neighborhoods (no deletions), so weighted
//     ε-cardinalities only increase and core segments never stop being core.
//   - The core graph only gains vertices and edges, so its connected
//     components only merge — the min-root union-find absorbs new edges
//     incrementally and its roots remain component minima regardless of the
//     order the edges arrived in.
//   - Cluster ids (components by ascending minimum core index) and border
//     assignment (min cluster id over a border item's core neighbors) are
//     pure functions of the final core flags, components, and neighborhoods.
//
// So the only O(n) work an append re-runs is the cheap serial numbering scan
// and the parallel border pass; the expensive part — ε-range queries — runs
// only for the Δ appended items, against the one grown index. The result is
// the clustering a batch run over the concatenated items would produce: same
// labels, same cluster order, same Removed. (DistCalls is the one field that
// legitimately differs: the base items were queried against the smaller
// pre-append index, so the incremental total counts fewer candidate
// evaluations than a from-scratch batch run would spend. Callers comparing
// against batch must exclude DistCalls from the fingerprint.)
//
// Exactness caveat, pinned here once: weighted cardinalities are float
// sums, and the append path accumulates an old item's weight in a different
// order (base neighbors first, then appended neighbors in append order) than
// a batch run over the concatenation would. With the default unit weights —
// every in-repo producer — the sums are small-integer-valued and exact, so
// core flags match batch bit-for-bit. Exotic fractional weights could in
// principle land a sum on the other side of MinLns by one ULP; such inputs
// should batch-rebuild instead.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/geometry"
	"repro/internal/par"
)

// ErrAppendBroken reports an append on an Incremental whose previous append
// failed or was cancelled midway: its retained state is unusable and the
// caller must rebuild from scratch.
var ErrAppendBroken = errors.New("segclust: incremental state broken by an earlier failed append; rebuild required")

// grow returns a union-find over [0, n) whose first len(u.parent) elements
// carry u's current component structure and whose new elements are
// singletons. It is a fresh value (the old forest stays readable) and must
// not race concurrent unions on u — the appender serialises epochs.
func (u *unionFind) grow(n int) *unionFind {
	g := &unionFind{parent: make([]atomic.Int32, n)}
	for i := range u.parent {
		g.parent[i].Store(u.parent[i].Load())
	}
	for i := len(u.parent); i < n; i++ {
		g.parent[i].Store(int32(i))
	}
	return g
}

// grow appends items (and, on a spatiotemporal index, their index-aligned
// time intervals) to the shared index in place: the searcher's pool, index
// backend, and segment set all grow, and subsequent views and cursors serve
// the concatenated set. On any error nothing is mutated.
func (s *SharedIndex) grow(newItems []Item, newIvs []geometry.Interval) error {
	if s.ivs != nil && len(newIvs) != len(newItems) {
		return fmt.Errorf("segclust: %d intervals for %d appended items on a spatiotemporal index", len(newIvs), len(newItems))
	}
	if s.ivs == nil && newIvs != nil {
		return errors.New("segclust: time intervals appended to a planar index")
	}
	if err := s.search.Grow(segments(newItems)); err != nil {
		return err
	}
	s.items = append(s.items, newItems...)
	if s.ivs != nil {
		s.ivs = append(s.ivs, newIvs...)
	}
	return nil
}

// Incremental is a clustering that stays current under appends. It is built
// once over the initial items (NewIncrementalCtx — one full grouping, same
// cost as RunSharedCtx) and thereafter AppendCtx folds new trajectories'
// items in for O(Δ) query work plus two O(n) label passes.
//
// An Incremental owns its SharedIndex exclusively for writing: AppendCtx
// grows the index in place, so the owner must serialise appends against each
// other AND against any concurrent queries on the same index (the serving
// layer's lineage lock does this). Results returned earlier remain valid —
// they are snapshots, not views.
type Incremental struct {
	shared   *SharedIndex
	cfg      Config
	minTrajs int

	// hs holds the base neighborhoods of the initial build: item i < nBase
	// has base neighbors hs.hood(i) (ids < nBase only). ext[i] carries
	// everything later epochs added: for base items the appended neighbors,
	// for appended items their full neighborhood at append time plus any
	// later additions. The live neighborhood of item i is therefore
	// hs.hood(i) ⧺ ext[i] for i < nBase and ext[i] otherwise.
	hs    *hoodSet
	nBase int
	ext   [][]int32

	w      []float64 // live weighted ε-cardinality per item
	core   []bool    // live core flags (monotone: set once, never cleared)
	uf     *unionFind
	calls  int // cumulative exact-distance evaluations across all epochs
	res    *Result
	broken bool
}

// NewIncrementalCtx runs the initial grouping over shared's current items
// with retained state, so the clustering can absorb appends afterwards. The
// initial Result (available via Result()) is bit-identical to
// RunSharedCtx(ctx, shared, cfg, onItem) — labels, cluster order, Removed,
// and DistCalls — at every worker count. Custom distance functions are not
// supported (they have no index to grow); cfg.Index/Backend are ignored in
// favour of shared's backend, exactly as RunSharedCtx.
func NewIncrementalCtx(ctx context.Context, shared *SharedIndex, cfg Config, onItem func()) (*Incremental, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	minTrajs := cfg.MinTrajs
	if minTrajs <= 0 {
		minTrajs = int(cfg.MinLns)
	}
	hs, calls, err := shared.neighborhoods(ctx, cfg.Eps, cfg.Workers, nil, onItem)
	if err != nil {
		return nil, err
	}
	n := len(hs.w)
	inc := &Incremental{
		shared:   shared,
		cfg:      cfg,
		minTrajs: minTrajs,
		hs:       hs,
		nBase:    n,
		ext:      make([][]int32, n),
		w:        append([]float64(nil), hs.w...),
		core:     make([]bool, n),
		uf:       newUnionFind(n),
		calls:    calls,
	}
	for i, wt := range inc.w {
		inc.core[i] = wt >= cfg.MinLns
	}
	err = par.ForEachCtx(ctx, cfg.Workers, n, func(_, i int) {
		if !inc.core[i] {
			return
		}
		for _, j := range hs.hood(i) {
			if int(j) > i && inc.core[j] {
				inc.uf.union(int32(i), j)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	labels, err := inc.relabel(ctx)
	if err != nil {
		return nil, err
	}
	inc.res = ResultFromLabels(shared.items, labels, minTrajs, inc.calls)
	return inc, nil
}

// Result returns the clustering over every item appended so far. The value
// is immutable; later appends produce new Results.
func (inc *Incremental) Result() *Result { return inc.res }

// Shared returns the underlying (growing) shared index.
func (inc *Incremental) Shared() *SharedIndex { return inc.shared }

// eachNeighbor invokes fn for every live neighbor of item i (including i
// itself), in base-then-extension order.
func (inc *Incremental) eachNeighbor(i int, fn func(j int32)) {
	if i < inc.nBase {
		for _, j := range inc.hs.hood(i) {
			fn(j)
		}
	}
	for _, j := range inc.ext[i] {
		fn(j)
	}
}

// relabel runs the two cheap label passes of groupEpsGraph over the live
// state: the serial ascending numbering (root = component minimum = serial
// discovery order) and the parallel first-come-first-served border
// assignment. Identical logic, just over hoodSet ⧺ ext neighborhoods.
func (inc *Incremental) relabel(ctx context.Context) ([]int, error) {
	n := len(inc.w)
	labels := make([]int, n)
	clusterID := 0
	for i := 0; i < n; i++ {
		if !inc.core[i] {
			labels[i] = Noise
			continue
		}
		r := int(inc.uf.find(int32(i)))
		if r == i {
			labels[i] = clusterID
			clusterID++
		} else {
			labels[i] = labels[r]
		}
	}
	err := par.ForEachCtx(ctx, inc.cfg.Workers, n, func(_, i int) {
		if inc.core[i] {
			return
		}
		best := Noise
		inc.eachNeighbor(i, func(j int32) {
			if !inc.core[j] {
				return
			}
			if id := labels[j]; best == Noise || id < best {
				best = id
			}
		})
		labels[i] = best
	})
	if err != nil {
		return nil, err
	}
	return labels, nil
}

// AppendCtx folds newItems into the clustering: the shared index grows, only
// the Δ new items run ε-range queries, their neighbors' cardinalities are
// updated through symmetry, the union-find absorbs the new core-core edges,
// and the numbering + border passes re-run. newIvs must carry one time
// interval per new item on a spatiotemporal index and be nil on a planar
// one. The returned Result equals a batch run over the concatenated items
// (see the package comment for the DistCalls and float-weight caveats).
//
// A failed or cancelled append leaves the Incremental broken — the index may
// have grown while the derived state did not — and every later call returns
// ErrAppendBroken; the previous Result() remains valid. Appends must be
// serialised by the caller.
func (inc *Incremental) AppendCtx(ctx context.Context, newItems []Item, newIvs []geometry.Interval) (*Result, error) {
	if inc.broken {
		return nil, ErrAppendBroken
	}
	if len(newItems) == 0 {
		return inc.res, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n0 := len(inc.shared.items)
	if err := inc.shared.grow(newItems, newIvs); err != nil {
		return nil, err // nothing mutated; state still coherent
	}
	// Any exit past this point without full completion breaks the state.
	res, err := inc.append(ctx, n0)
	if err != nil {
		inc.broken = true
		return nil, err
	}
	inc.res = res
	return res, nil
}

func (inc *Incremental) append(ctx context.Context, n0 int) (*Result, error) {
	items := inc.shared.items
	n := len(items)
	inc.ext = append(inc.ext, make([][]int32, n-n0)...)
	inc.w = append(inc.w, make([]float64, n-n0)...)
	inc.core = append(inc.core, make([]bool, n-n0)...)

	// Phase 1 — the only expensive work: ε-range queries for the Δ new
	// items against the grown index, across workers. Each new item's full
	// neighborhood (old and new neighbors alike — the index already holds
	// everything) lands in ext[i] as an owned copy.
	nw := par.Workers(inc.cfg.Workers, n-n0)
	cfg := Config{Eps: inc.cfg.Eps, MinLns: 1, Options: inc.shared.opt}
	engines := make([]*engine, nw)
	scratch := make([][]int, nw)
	scs := make([]*scratchSet, nw)
	for k := range engines {
		sc := inc.shared.getScratch()
		scs[k] = sc
		engines[k] = &engine{items: items, cfg: cfg, src: inc.shared.view(inc.cfg.Eps), cand: sc.cand, dists: sc.dists}
		scratch[k] = sc.hood
	}
	err := par.ForEachCtx(ctx, inc.cfg.Workers, n-n0, func(wk, k int) {
		i := n0 + k
		hood, weight := engines[wk].neighborhood(i, scratch[wk][:0])
		scratch[wk] = hood[:0]
		ids := make([]int32, len(hood))
		for t, id := range hood {
			ids[t] = int32(id)
		}
		inc.ext[i] = ids
		inc.w[i] = weight
	})
	for k, e := range engines {
		inc.calls += e.calls
		sc := scs[k]
		sc.cand, sc.dists, sc.hood = e.cand, e.dists, scratch[k]
		inc.shared.scr.Put(sc)
	}
	if err != nil {
		return nil, err
	}

	// Phase 2 — symmetry reflection, serial in ascending new-item order:
	// j ∈ Nε(i) ⇔ i ∈ Nε(j), so each pre-existing neighbor j gains i in its
	// extension and i's weight in its cardinality.
	for i := n0; i < n; i++ {
		for _, j := range inc.ext[i] {
			if int(j) < n0 {
				inc.ext[j] = append(inc.ext[j], int32(i))
				inc.w[j] += items[i].Weight
			}
		}
	}

	// Phase 3 — core promotion. Monotone: grown cardinalities can only
	// promote. Pre-existing items that crossed MinLns are the "dirtied"
	// frontier whose edges phase 4 must add.
	var promoted []int32
	for j := 0; j < n0; j++ {
		if !inc.core[j] && inc.w[j] >= inc.cfg.MinLns {
			inc.core[j] = true
			promoted = append(promoted, int32(j))
		}
	}
	for i := n0; i < n; i++ {
		inc.core[i] = inc.w[i] >= inc.cfg.MinLns
	}

	// Phase 4 — union the new core-core edges. Every edge of the grown core
	// graph that the old forest lacks has at least one endpoint that is a
	// new item or a promoted one (an edge between two previously-core old
	// items was already unioned), so scanning those endpoints' full
	// neighborhoods covers them all. Min-root unions are order-free, so the
	// grown forest's roots equal a from-scratch batch forest's.
	uf := inc.uf.grow(n)
	work := make([]int32, 0, (n-n0)+len(promoted))
	for i := n0; i < n; i++ {
		work = append(work, int32(i))
	}
	work = append(work, promoted...)
	err = par.ForEachCtx(ctx, inc.cfg.Workers, len(work), func(_, k int) {
		i := work[k]
		if !inc.core[i] {
			return
		}
		inc.eachNeighbor(int(i), func(j int32) {
			if j != i && inc.core[j] {
				uf.union(i, j)
			}
		})
	})
	if err != nil {
		return nil, err
	}
	inc.uf = uf

	// Phase 5 — the cheap passes: serial numbering + parallel border, then
	// the canonical Definition-10 filter and ordering.
	labels, err := inc.relabel(ctx)
	if err != nil {
		return nil, err
	}
	return ResultFromLabels(items, labels, inc.minTrajs, inc.calls), nil
}
