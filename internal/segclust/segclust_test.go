package segclust

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/lsdist"
)

// corridorItems builds n segments along k horizontal corridors, cycling
// trajectory ids so the cardinality filter passes. Segment start positions
// spread over [0, spread], so small spreads give mutually overlapping
// segments and large spreads exercise chaining.
func corridorItems(rng *rand.Rand, n, k, trajs int) []Item {
	return corridorItemsSpread(rng, n, k, trajs, 400)
}

func corridorItemsSpread(rng *rand.Rand, n, k, trajs int, spread float64) []Item {
	items := make([]Item, n)
	for i := range items {
		cy := 100 + 200*float64(i%k)
		x := rng.Float64() * spread
		items[i] = Item{
			Seg:    geom.Seg(x, cy+rng.NormFloat64()*3, x+80, cy+rng.NormFloat64()*3),
			TrajID: i % trajs,
			Weight: 1,
		}
	}
	return items
}

func defaultCfg() Config {
	return Config{Eps: 25, MinLns: 4, Options: lsdist.DefaultOptions(), Index: IndexGrid}
}

func TestConfigValidate(t *testing.T) {
	if err := defaultCfg().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Eps: 0, MinLns: 3, Options: lsdist.DefaultOptions()},
		{Eps: -1, MinLns: 3, Options: lsdist.DefaultOptions()},
		{Eps: 10, MinLns: 0, Options: lsdist.DefaultOptions()},
		{Eps: 10, MinLns: 3, Options: lsdist.Options{Weights: lsdist.Weights{Perpendicular: -1}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestConfigValidateTyped pins the typed-error contract: NaN/Inf values —
// which sail through plain sign checks — are rejected, and every rejection
// is a *ConfigError so serving layers can map it to a client error.
func TestConfigValidateTyped(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	bad := []Config{
		{Eps: nan, MinLns: 3, Options: lsdist.DefaultOptions()},
		{Eps: inf, MinLns: 3, Options: lsdist.DefaultOptions()},
		{Eps: 10, MinLns: nan, Options: lsdist.DefaultOptions()},
		{Eps: 10, MinLns: 3, MinTrajs: -1, Options: lsdist.DefaultOptions()},
		{Eps: 10, MinLns: 3, Options: lsdist.Options{Weights: lsdist.Weights{Perpendicular: nan}}},
	}
	for i, c := range bad {
		err := c.Validate()
		if err == nil {
			t.Errorf("case %d: invalid config accepted", i)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("case %d: error %T is not a *ConfigError", i, err)
		} else if ce.Field == "" || ce.Reason == "" {
			t.Errorf("case %d: incomplete ConfigError %+v", i, ce)
		}
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	if _, err := Run(nil, Config{}); err == nil {
		t.Error("Run accepted zero config")
	}
}

func TestTwoCorridorsTwoClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := corridorItems(rng, 100, 2, 10)
	res, err := Run(items, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 2 {
		t.Fatalf("clusters = %d, want 2", res.NumClusters())
	}
	// Every member of a cluster shares its corridor (same y band).
	for ci, c := range res.Clusters {
		band := items[c.Members[0]].Seg.Start.Y
		for _, m := range c.Members {
			y := items[m].Seg.Start.Y
			if y-band > 50 || band-y > 50 {
				t.Errorf("cluster %d mixes corridors: y=%v vs %v", ci, y, band)
			}
		}
	}
}

func TestNoiseDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := corridorItems(rng, 40, 1, 10)
	// Add isolated far-away segments.
	for i := 0; i < 5; i++ {
		items = append(items, Item{
			Seg:    geom.Seg(5000+float64(i)*500, 0, 5080+float64(i)*500, 0),
			TrajID: 100 + i,
			Weight: 1,
		})
	}
	res, err := Run(items, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.NoiseCount() < 5 {
		t.Errorf("noise = %d, want >= 5", res.NoiseCount())
	}
	for i := 40; i < 45; i++ {
		if res.ClusterOf[i] != Noise {
			t.Errorf("isolated segment %d labelled cluster %d", i, res.ClusterOf[i])
		}
	}
}

func TestTrajectoryCardinalityFilterDefinition10(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// A dense corridor whose segments all come from ONE trajectory must be
	// rejected (Figure 12 step 3).
	items := corridorItems(rng, 40, 1, 1)
	res, err := Run(items, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 0 {
		t.Errorf("single-trajectory cluster survived: %d clusters", res.NumClusters())
	}
	if res.Removed == 0 {
		t.Error("Removed count not incremented")
	}
	// All members must be relabelled noise.
	for i, l := range res.ClusterOf {
		if l != Noise {
			t.Errorf("item %d labelled %d after filtering", i, l)
		}
	}
}

func TestMinTrajsOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := corridorItems(rng, 40, 1, 3) // three distinct trajectories
	cfg := defaultCfg()
	cfg.MinTrajs = 2
	res, err := Run(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 1 {
		t.Fatalf("clusters = %d with MinTrajs=2", res.NumClusters())
	}
	cfg.MinTrajs = 4
	res, err = Run(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 0 {
		t.Errorf("clusters = %d with MinTrajs=4, want 0", res.NumClusters())
	}
}

func TestWeightedNeighborhoods(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := corridorItemsSpread(rng, 30, 1, 10, 60) // mutually overlapping
	cfg := defaultCfg()
	cfg.MinLns = 10
	// With unit weights and MinLns=10 the corridor clusters (30 segments).
	res, err := Run(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 1 {
		t.Fatalf("unit weights: clusters = %d", res.NumClusters())
	}
	// Down-weight everything: weighted cardinality ~3 < 10 → no cluster.
	light := make([]Item, len(items))
	copy(light, items)
	for i := range light {
		light[i].Weight = 0.1
	}
	res, err = Run(light, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 0 {
		t.Errorf("down-weighted: clusters = %d, want 0", res.NumClusters())
	}
}

func TestIndexEquivalence(t *testing.T) {
	// The grid, R-tree, and full-scan paths must produce identical
	// clusterings — the prefilter is sound and complete.
	rng := rand.New(rand.NewSource(6))
	items := corridorItems(rng, 150, 3, 12)
	// Mix in random segments.
	for i := 0; i < 50; i++ {
		items = append(items, Item{
			Seg: geom.Seg(rng.Float64()*1000, rng.Float64()*600,
				rng.Float64()*1000, rng.Float64()*600),
			TrajID: 200 + i,
			Weight: 1,
		})
	}
	var results []*Result
	for _, kind := range []IndexKind{IndexNone, IndexGrid, IndexRTree} {
		cfg := defaultCfg()
		cfg.Index = kind
		res, err := Run(items, cfg)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for k := 1; k < len(results); k++ {
		if len(results[k].ClusterOf) != len(results[0].ClusterOf) {
			t.Fatal("length mismatch")
		}
		for i := range results[0].ClusterOf {
			if results[k].ClusterOf[i] != results[0].ClusterOf[i] {
				t.Fatalf("index kind %d disagrees at item %d: %d vs %d",
					k, i, results[k].ClusterOf[i], results[0].ClusterOf[i])
			}
		}
	}
}

func TestCoreNeighborhoodInvariants(t *testing.T) {
	// Density-connected set invariants (Definitions 5–9):
	//  (a) mutually ε-close CORE segments share a cluster (cores are
	//      mutually density-reachable);
	//  (b) no neighbor of a core segment is noise (it is at least
	//      directly density-reachable). Border segments between two
	//      clusters may land in either — DBSCAN's well-known ambiguity —
	//      so only core-core pairs are checked for equality.
	rng := rand.New(rand.NewSource(7))
	items := corridorItems(rng, 100, 2, 10)
	cfg := defaultCfg()
	cfg.MinTrajs = 1 // keep every density-connected set visible
	res, err := Run(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist := lsdist.New(cfg.Options)
	hoods := make([][]int, len(items))
	core := make([]bool, len(items))
	for i := range items {
		for j := range items {
			if dist(items[i].Seg, items[j].Seg) <= cfg.Eps {
				hoods[i] = append(hoods[i], j)
			}
		}
		core[i] = float64(len(hoods[i])) >= cfg.MinLns
	}
	for i := range items {
		if !core[i] {
			continue
		}
		if res.ClusterOf[i] == Noise {
			t.Fatalf("core segment %d labelled noise", i)
		}
		for _, j := range hoods[i] {
			if core[j] && res.ClusterOf[j] != res.ClusterOf[i] {
				t.Fatalf("mutually close cores %d and %d in clusters %d and %d",
					i, j, res.ClusterOf[i], res.ClusterOf[j])
			}
			if res.ClusterOf[j] == Noise {
				t.Fatalf("neighbor %d of core %d labelled noise", j, i)
			}
		}
	}
}

func TestClustersDisjointAndCovering(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	items := corridorItems(rng, 120, 3, 10)
	res, err := Run(items, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for ci, c := range res.Clusters {
		for _, m := range c.Members {
			if prev, dup := seen[m]; dup {
				t.Fatalf("item %d in clusters %d and %d", m, prev, ci)
			}
			seen[m] = ci
			if res.ClusterOf[m] != ci {
				t.Fatalf("ClusterOf[%d] = %d, member of %d", m, res.ClusterOf[m], ci)
			}
		}
	}
	clustered := 0
	for _, l := range res.ClusterOf {
		if l != Noise {
			clustered++
		}
	}
	if clustered != len(seen) {
		t.Errorf("membership mismatch: %d vs %d", clustered, len(seen))
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	items := corridorItems(rng, 80, 2, 8)
	a, err := Run(items, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(items, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.ClusterOf {
		if a.ClusterOf[i] != b.ClusterOf[i] {
			t.Fatal("non-deterministic clustering")
		}
	}
}

func TestEmptyAndSingleInput(t *testing.T) {
	res, err := Run(nil, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 0 || len(res.ClusterOf) != 0 {
		t.Error("empty input produced clusters")
	}
	res, err = Run([]Item{{Seg: geom.Seg(0, 0, 10, 0), TrajID: 1, Weight: 1}}, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 0 || res.NoiseCount() != 1 {
		t.Error("single segment should be noise")
	}
}

func TestItemsFromSegments(t *testing.T) {
	segs := []geom.Segment{geom.Seg(0, 0, 1, 0), geom.Seg(1, 0, 2, 0)}
	items := ItemsFromSegments(segs)
	if len(items) != 2 || items[0].TrajID == items[1].TrajID {
		t.Errorf("ItemsFromSegments = %+v", items)
	}
	for _, it := range items {
		if it.Weight != 1 {
			t.Error("weight not 1")
		}
	}
}

func TestNeighborhoodWeightsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	items := corridorItems(rng, 60, 2, 6)
	opt := lsdist.DefaultOptions()
	const eps = 25.0
	got := NeighborhoodWeights(items, eps, opt, IndexGrid, 2)
	dist := lsdist.New(opt)
	for i := range items {
		var want float64
		for j := range items {
			if dist(items[i].Seg, items[j].Seg) <= eps {
				want += items[j].Weight
			}
		}
		if got[i] != want {
			t.Fatalf("NeighborhoodWeights[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestSharedIndexReuseAcrossEps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := corridorItems(rng, 60, 2, 6)
	opt := lsdist.DefaultOptions()
	shared := NewSharedIndex(items, 40, opt, IndexGrid)
	for _, eps := range []float64{10, 25, 40} {
		got := shared.NeighborhoodWeights(eps, 0)
		want := NeighborhoodWeights(items, eps, opt, IndexNone, 1)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("eps=%v item %d: %v != %v", eps, i, got[i], want[i])
			}
		}
	}
}

func TestIndexKindString(t *testing.T) {
	if IndexGrid.String() != "grid" || IndexRTree.String() != "rtree" || IndexNone.String() != "scan" {
		t.Error("IndexKind.String wrong")
	}
	if IndexKind(42).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestDistCallsCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	items := corridorItems(rng, 50, 1, 10)
	scan, _ := Run(items, Config{Eps: 25, MinLns: 4, Options: lsdist.DefaultOptions(), Index: IndexNone})
	grid, _ := Run(items, defaultCfg())
	if scan.DistCalls == 0 || grid.DistCalls == 0 {
		t.Fatal("DistCalls not counted")
	}
	if grid.DistCalls > scan.DistCalls {
		t.Errorf("grid (%d) should not exceed scan (%d)", grid.DistCalls, scan.DistCalls)
	}
}
