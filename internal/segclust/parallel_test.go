package segclust

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/lsdist"
)

// TestWorkersEquivalence is the grouping-phase determinism contract: for
// every index strategy, every worker count yields a Result deep-equal to
// the serial one — including DistCalls, because the serial algorithm also
// evaluates each item's neighborhood exactly once.
func TestWorkersEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := corridorItemsSpread(rng, 600, 3, 25, 700)
	for _, kind := range []IndexKind{IndexGrid, IndexRTree, IndexNone} {
		cfg := defaultCfg()
		cfg.Index = kind
		cfg.Workers = 1
		serial, err := Run(items, cfg)
		if err != nil {
			t.Fatalf("index=%v serial: %v", kind, err)
		}
		for _, workers := range []int{2, 5, 16, 0} {
			cfg.Workers = workers
			parallel, err := Run(items, cfg)
			if err != nil {
				t.Fatalf("index=%v workers=%d: %v", kind, workers, err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("index=%v workers=%d: result differs from serial\nserial:   %d clusters, %d distcalls\nparallel: %d clusters, %d distcalls",
					kind, workers,
					serial.NumClusters(), serial.DistCalls,
					parallel.NumClusters(), parallel.DistCalls)
			}
		}
	}
}

// TestRunWithDistanceWorkersEquivalence covers the custom-distance path,
// which always scans but still fans neighborhood computation out.
func TestRunWithDistanceWorkersEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	items := corridorItemsSpread(rng, 200, 2, 10, 300)
	dist := func(a, b geom.Segment) float64 {
		return a.Midpoint().Dist(b.Midpoint())
	}
	cfg := Config{Eps: 60, MinLns: 3, Options: lsdist.DefaultOptions(), Workers: 1}
	serial, err := RunWithDistance(items, dist, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 6
	parallel, err := RunWithDistance(items, dist, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("custom distance: parallel result differs from serial")
	}
}

// ladderItems builds horizontal unit-direction segments of length 10 at
// x ∈ [0,10] whose TRACLUS distance is just the vertical offset, arranged
// as paired "ladders" of four core rows (y = c..c+3 and c+13..c+16) with a
// shared border row at y = c+8 — within ε = 5 of the top core of the lower
// ladder and the bottom core of the upper ladder, but with only 2 < MinLns
// core neighbors of its own. Every pair therefore exercises the
// first-come-first-served border handoff between two clusters.
func ladderItems(blocks int) []Item {
	var items []Item
	for b := 0; b < blocks; b++ {
		c := 100 * float64(b)
		for _, dy := range []float64{0, 1, 2, 3, 13, 14, 15, 16, 8} {
			y := c + dy
			items = append(items, Item{Seg: geom.Seg(0, y, 10, y), TrajID: len(items), Weight: 1})
		}
	}
	return items
}

func ladderCfg() Config {
	return Config{Eps: 5, MinLns: 4, MinTrajs: 1, Options: lsdist.DefaultOptions(), Index: IndexGrid}
}

// TestSharedBorderFirstComeSemantics pins the DBSCAN tie-break the ε-graph
// path must reproduce: a border segment reachable from two clusters goes to
// the cluster created first in scan order — which is NOT in general the
// cluster of its lowest-index core neighbor. The fixture places cluster B's
// cores at indices 1–4 and cluster A's at 0,5,6,7 with the shared border at
// index 8: the border's lowest-index core neighbor (index 1) is in B, but
// the serial scan creates A first (index 0) and A's expansion claims the
// border before B exists.
func TestSharedBorderFirstComeSemantics(t *testing.T) {
	y := []float64{0, 13, 14, 15, 16, 1, 2, 3, 8}
	items := make([]Item, len(y))
	for i, yy := range y {
		items[i] = Item{Seg: geom.Seg(0, yy, 10, yy), TrajID: i, Weight: 1}
	}
	for _, kind := range []IndexKind{IndexGrid, IndexRTree, IndexNone} {
		cfg := ladderCfg()
		cfg.Index = kind
		cfg.Workers = 1
		serial, err := Run(items, cfg)
		if err != nil {
			t.Fatalf("index=%v: %v", kind, err)
		}
		if serial.NumClusters() != 2 {
			t.Fatalf("index=%v: fixture yields %d clusters, want 2", kind, serial.NumClusters())
		}
		if got := serial.ClusterOf[8]; got != 0 {
			t.Fatalf("index=%v: border went to cluster %d, want first-created cluster 0", kind, got)
		}
		if got := serial.ClusterOf[1]; got != 1 {
			t.Fatalf("index=%v: min-index core neighbor of the border is in cluster %d, want 1 (the trap)", kind, got)
		}
		for _, workers := range []int{2, 4, 0} {
			cfg.Workers = workers
			parallel, err := Run(items, cfg)
			if err != nil {
				t.Fatalf("index=%v workers=%d: %v", kind, workers, err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("index=%v workers=%d: parallel border assignment diverged: serial %v, parallel %v",
					kind, workers, serial.ClusterOf, parallel.ClusterOf)
			}
		}
	}
}

// TestSharedBorderWorkersEquivalence stresses parallel≡serial grouping on
// many shuffled shared-border ladders (clusters that compete for the same
// border segments), at Workers {1, 2, 4, all} for every index strategy.
// CI runs this under -race, which also vets the union-find and border
// passes for data races.
func TestSharedBorderWorkersEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := ladderItems(24)
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	for _, kind := range []IndexKind{IndexGrid, IndexRTree, IndexNone} {
		cfg := ladderCfg()
		cfg.Index = kind
		cfg.Workers = 1
		serial, err := Run(items, cfg)
		if err != nil {
			t.Fatalf("index=%v serial: %v", kind, err)
		}
		if serial.NumClusters() < 24 {
			t.Fatalf("index=%v: fixture collapsed to %d clusters", kind, serial.NumClusters())
		}
		for _, workers := range []int{2, 4, 0} {
			cfg.Workers = workers
			parallel, err := Run(items, cfg)
			if err != nil {
				t.Fatalf("index=%v workers=%d: %v", kind, workers, err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("index=%v workers=%d: result differs from serial", kind, workers)
			}
		}
	}
}

// TestNeighborhoodArenaMatchesLazy checks the flat-buffer arena the
// parallel grouping path consumes against independently computed lazy
// neighborhoods: same ids in the same order, same weights, same distance
// budget.
func TestNeighborhoodArenaMatchesLazy(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	items := corridorItemsSpread(rng, 400, 3, 20, 600)
	cfg := defaultCfg()
	shared := NewSharedIndex(items, cfg.Eps, cfg.Options, cfg.Index)
	hs, calls, err := shared.neighborhoods(context.Background(), cfg.Eps, 8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	lazy := &engine{items: items, cfg: cfg, src: NewSharedIndexFor(items, cfg.Options, cfg.backend()).view(cfg.Eps)}
	var hood []int
	for i := range items {
		var w float64
		hood, w = lazy.neighborhood(i, hood[:0])
		got := hs.hood(i)
		if len(got) != len(hood) {
			t.Fatalf("item %d: arena hood has %d ids, lazy %d", i, len(got), len(hood))
		}
		for k := range hood {
			if int(got[k]) != hood[k] {
				t.Fatalf("item %d: arena hood %v != lazy %v", i, got, hood)
			}
		}
		if w != hs.w[i] {
			t.Fatalf("item %d: arena weight %v != lazy %v", i, hs.w[i], w)
		}
	}
	if calls != lazy.calls {
		t.Errorf("distance calls: arena %d != lazy %d", calls, lazy.calls)
	}
}

// TestPrecomputedHoodsMatchLazy checks the precomputed neighborhood lists
// against independently computed lazy ones, id for id and in order.
func TestPrecomputedHoodsMatchLazy(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	items := corridorItemsSpread(rng, 300, 3, 15, 500)
	cfg := defaultCfg()
	shared := NewSharedIndex(items, cfg.Eps, cfg.Options, cfg.Index)
	hoods := make([][]int, len(items))
	weights := make([]float64, len(items))
	calls := shared.forEachNeighborhood(cfg.Eps, 8,
		func(i int, hood []int, w float64) {
			hoods[i] = append([]int(nil), hood...)
			weights[i] = w
		})

	lazy := &engine{items: items, cfg: cfg, src: NewSharedIndexFor(items, cfg.Options, cfg.backend()).view(cfg.Eps)}
	var hood []int
	for i := range items {
		var w float64
		hood, w = lazy.neighborhood(i, hood[:0])
		if !reflect.DeepEqual(append([]int(nil), hood...), hoods[i]) {
			t.Fatalf("item %d: precomputed hood %v != lazy %v", i, hoods[i], hood)
		}
		if w != weights[i] {
			t.Fatalf("item %d: precomputed weight %v != lazy %v", i, weights[i], w)
		}
	}
	if calls != lazy.calls {
		t.Errorf("distance calls: precomputed %d != lazy %d", calls, lazy.calls)
	}
}
