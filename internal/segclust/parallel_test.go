package segclust

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/lsdist"
)

// TestWorkersEquivalence is the grouping-phase determinism contract: for
// every index strategy, every worker count yields a Result deep-equal to
// the serial one — including DistCalls, because the serial algorithm also
// evaluates each item's neighborhood exactly once.
func TestWorkersEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := corridorItemsSpread(rng, 600, 3, 25, 700)
	for _, kind := range []IndexKind{IndexGrid, IndexRTree, IndexNone} {
		cfg := defaultCfg()
		cfg.Index = kind
		cfg.Workers = 1
		serial, err := Run(items, cfg)
		if err != nil {
			t.Fatalf("index=%v serial: %v", kind, err)
		}
		for _, workers := range []int{2, 5, 16, 0} {
			cfg.Workers = workers
			parallel, err := Run(items, cfg)
			if err != nil {
				t.Fatalf("index=%v workers=%d: %v", kind, workers, err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("index=%v workers=%d: result differs from serial\nserial:   %d clusters, %d distcalls\nparallel: %d clusters, %d distcalls",
					kind, workers,
					serial.NumClusters(), serial.DistCalls,
					parallel.NumClusters(), parallel.DistCalls)
			}
		}
	}
}

// TestRunWithDistanceWorkersEquivalence covers the custom-distance path,
// which always scans but still fans neighborhood computation out.
func TestRunWithDistanceWorkersEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	items := corridorItemsSpread(rng, 200, 2, 10, 300)
	dist := func(a, b geom.Segment) float64 {
		return a.Midpoint().Dist(b.Midpoint())
	}
	cfg := Config{Eps: 60, MinLns: 3, Options: lsdist.DefaultOptions(), Workers: 1}
	serial, err := RunWithDistance(items, dist, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 6
	parallel, err := RunWithDistance(items, dist, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("custom distance: parallel result differs from serial")
	}
}

// TestPrecomputedHoodsMatchLazy checks the precomputed neighborhood lists
// against independently computed lazy ones, id for id and in order.
func TestPrecomputedHoodsMatchLazy(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	items := corridorItemsSpread(rng, 300, 3, 15, 500)
	cfg := defaultCfg()
	shared := NewSharedIndex(items, cfg.Eps, cfg.Options, cfg.Index)
	hoods := make([][]int, len(items))
	weights := make([]float64, len(items))
	calls := shared.forEachNeighborhood(cfg.Eps, 8, lsdist.New(cfg.Options),
		func(i int, hood []int, w float64) {
			hoods[i] = append([]int(nil), hood...)
			weights[i] = w
		})

	lazy := &engine{items: items, cfg: cfg, dist: lsdist.New(cfg.Options), src: newSource(items, cfg)}
	var hood []int
	for i := range items {
		var w float64
		hood, w = lazy.neighborhood(i, hood[:0])
		if !reflect.DeepEqual(append([]int(nil), hood...), hoods[i]) {
			t.Fatalf("item %d: precomputed hood %v != lazy %v", i, hoods[i], hood)
		}
		if w != weights[i] {
			t.Fatalf("item %d: precomputed weight %v != lazy %v", i, weights[i], w)
		}
	}
	if calls != lazy.calls {
		t.Errorf("distance calls: precomputed %d != lazy %d", calls, lazy.calls)
	}
}
