// Package segclust implements TRACLUS line-segment clustering (Section 4,
// Figure 12): a density-based grouping of trajectory partitions under the
// TRACLUS distance, following DBSCAN's expansion strategy but with two
// departures the paper calls out — the objects are line segments, and a
// density-connected set only becomes a cluster if enough *distinct
// trajectories* participate (Definition 10).
//
// ε-neighborhoods are computed through the unified index subsystem of
// internal/spindex — brute force, uniform grid, or R-tree (or any custom
// Backend), all using the sound Euclidean prefilter of internal/lsdist —
// and all backends produce identical clusterings. With
// Config.Workers > 1 every neighborhood is precomputed concurrently through
// per-worker views of one immutable SharedIndex into one flat int32 arena,
// and the grouping itself then runs as connected components of the
// core-segment ε-graph (concurrent union-find) plus a deterministic border
// pass — bit-identical to the serial Figure-12 expansion (see
// groupEpsGraph for the equivalence argument), because the serial
// algorithm also evaluates each item's neighborhood exactly once and the
// TRACLUS distance is symmetric (Lemma 2).
package segclust

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/geom"
	"repro/internal/geometry"
	"repro/internal/lsdist"
	"repro/internal/par"
	"repro/internal/spindex"
)

// Item is one clusterable line segment: a trajectory partition together
// with the trajectory it came from and that trajectory's weight (weights
// implement the weighted-trajectory extension of Section 4.2: the
// cardinality of an ε-neighborhood becomes the sum of member weights
// instead of the member count).
type Item struct {
	Seg    geom.Segment
	TrajID int
	Weight float64
}

// ItemsFromSegments wraps raw segments as unit-weight items of one
// synthetic trajectory each (useful in tests and for clustering arbitrary
// segment sets).
func ItemsFromSegments(segs []geom.Segment) []Item {
	items := make([]Item, len(segs))
	for i, s := range segs {
		items[i] = Item{Seg: s, TrajID: i, Weight: 1}
	}
	return items
}

// IndexKind selects the ε-neighborhood strategy.
type IndexKind int

const (
	// IndexGrid uses the uniform grid prefilter (default).
	IndexGrid IndexKind = iota
	// IndexRTree uses the R-tree prefilter.
	IndexRTree
	// IndexNone scans all segments for every query (the O(n²) baseline of
	// Lemma 3).
	IndexNone
)

func (k IndexKind) String() string {
	switch k {
	case IndexGrid:
		return "grid"
	case IndexRTree:
		return "rtree"
	case IndexNone:
		return "scan"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// BackendFor maps the compatibility IndexKind to its internal/spindex
// backend. IndexKind survives as a thin shim over the backend layer so
// existing Configs, flags, and serialized requests keep working.
func BackendFor(k IndexKind) spindex.Backend {
	switch k {
	case IndexRTree:
		return spindex.RTree()
	case IndexNone:
		return spindex.Brute()
	default:
		return spindex.Grid()
	}
}

// ParseIndexKind maps a user-facing backend name ("grid", "rtree",
// "brute"; "scan" and "none" are accepted aliases of brute) to its
// IndexKind. Unknown names return a *ConfigError, which serving layers map
// to HTTP 400.
func ParseIndexKind(s string) (IndexKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "grid":
		return IndexGrid, nil
	case "rtree":
		return IndexRTree, nil
	case "brute", "scan", "none":
		return IndexNone, nil
	default:
		return IndexGrid, &ConfigError{Field: "Index", Value: s,
			Reason: `must be one of "grid", "rtree", "brute"`}
	}
}

// Config parameterises the clustering.
type Config struct {
	// Eps is the ε-neighborhood radius in distance units.
	Eps float64
	// MinLns is the core threshold: a segment is core when the (weighted)
	// cardinality of its ε-neighborhood is at least MinLns.
	MinLns float64
	// MinTrajs is the trajectory-cardinality threshold of Figure 12 step 3
	// (|PTR(C)| ≥ MinTrajs). Zero uses MinLns, as in the paper; the paper
	// notes "a threshold other than MinLns can be used".
	MinTrajs int
	// Distance options (weights, directedness).
	Options lsdist.Options
	// Index selects the neighborhood strategy (thin shim over Backend:
	// grid, R-tree, or brute scan).
	Index IndexKind
	// Backend, when non-nil, overrides Index with an arbitrary spindex
	// backend (custom plug-ins ride this; the public Pipeline's
	// WithIndexBackend sets it).
	Backend spindex.Backend
	// Workers bounds parallelism (≤ 0 = all CPUs). With more than one
	// worker every ε-neighborhood is precomputed concurrently through
	// per-worker views of a shared index into one flat arena, and the
	// grouping runs as connected components of the core-segment ε-graph
	// (concurrent union-find plus a deterministic border pass) instead of
	// the serial DBSCAN expansion. Because the serial path also computes
	// each item's neighborhood exactly once and the distance is symmetric,
	// the result — cluster membership, noise, and even DistCalls — is
	// bit-identical for every worker count.
	//
	// The cached neighborhoods cost O(Σ|Nε|) memory (the classic
	// cached-DBSCAN trade), which approaches O(n²) when ε covers a large
	// fraction of the data extent. Set Workers to 1 to keep the lazy serial
	// path's O(max|Nε|) footprint on memory-constrained or pathological-ε
	// runs.
	Workers int
}

// ConfigError is the typed validation error returned by Config.Validate
// (and re-exported by the root traclus package). Serving layers match it
// with errors.As to map bad parameters to client errors (HTTP 400) instead
// of internal failures.
type ConfigError struct {
	// Field is the offending configuration field, e.g. "Eps".
	Field string
	// Value is the rejected value.
	Value any
	// Reason says what the field must satisfy.
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("invalid config: %s %s, got %v", e.Field, e.Reason, e.Value)
}

// CheckPositive returns a ConfigError unless v is finite and > 0. NaN fails
// explicitly: NaN compares false against every threshold, so an untyped
// `v <= 0` check would silently accept it.
func CheckPositive(field string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return &ConfigError{Field: field, Value: v, Reason: "must be positive and finite"}
	}
	return nil
}

// CheckNonNegative returns a ConfigError unless v is finite and ≥ 0.
func CheckNonNegative(field string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return &ConfigError{Field: field, Value: v, Reason: "must be non-negative and finite"}
	}
	return nil
}

// Validate reports the first invalid field as a *ConfigError.
func (c Config) Validate() error {
	if err := CheckPositive("Eps", c.Eps); err != nil {
		return err
	}
	if err := CheckPositive("MinLns", c.MinLns); err != nil {
		return err
	}
	if c.MinTrajs < 0 {
		return &ConfigError{Field: "MinTrajs", Value: c.MinTrajs, Reason: "must be non-negative"}
	}
	if !c.Options.Weights.Valid() {
		return &ConfigError{Field: "Weights", Value: c.Options.Weights,
			Reason: "must be finite and non-negative with at least one positive component"}
	}
	return nil
}

// Noise is the cluster id assigned to noise segments in Result.ClusterOf.
const Noise = -1

// Cluster is one discovered cluster of segment indices.
type Cluster struct {
	// Members indexes into the input items, in discovery order.
	Members []int
	// Trajectories is the sorted set of participating trajectory ids,
	// PTR(C) of Definition 10.
	Trajectories []int
}

// Result is the output of Cluster.
type Result struct {
	// ClusterOf maps each input item to its cluster index or Noise.
	ClusterOf []int
	// Clusters in a deterministic order (by first member index).
	Clusters []Cluster
	// Removed counts density-connected sets discarded by the
	// trajectory-cardinality check.
	Removed int
	// DistCalls counts exact distance evaluations (index efficiency metric).
	DistCalls int
}

// NumClusters returns len(r.Clusters).
func (r *Result) NumClusters() int { return len(r.Clusters) }

// NoiseCount returns the number of items labelled noise.
func (r *Result) NoiseCount() int {
	n := 0
	for _, c := range r.ClusterOf {
		if c == Noise {
			n++
		}
	}
	return n
}

// backend resolves the configured spindex backend: the explicit Backend
// when set, otherwise the IndexKind shim.
func (c Config) backend() spindex.Backend {
	if c.Backend != nil {
		return c.Backend
	}
	return BackendFor(c.Index)
}

// neighborSource produces ε-neighborhood candidate ids for a query item
// and scores whole candidate blocks against it — the block-at-a-time
// contract of the columnar kernel refactor: the engine never evaluates a
// distance pair-at-a-time; it asks its source for one index-aligned block
// of exact distances per query and refines that.
type neighborSource interface {
	candidates(i int, dst []int) []int
	// distBlock writes dist(item i, item j) for every j in cand into out,
	// index-aligned with cand (resized, reusing capacity), and returns it.
	distBlock(i int, cand []int, out []float64) []float64
}

// epsView binds a per-goroutine spindex cursor to one query ε; it is what
// the engine's refinement loop consumes. Candidate generation and block
// scoring both ride the cursor: the scoring goes through the batch kernel
// over the searcher's columnar pool (or its bit-identical scalar fallback
// for non-finite datasets).
type epsView struct {
	sq  *spindex.SearchQuery
	eps float64
}

func (v epsView) candidates(i int, dst []int) []int {
	return v.sq.CandidatesOf(i, v.eps, dst)
}

func (v epsView) distBlock(i int, cand []int, out []float64) []float64 {
	return v.sq.DistBlock(i, cand, out)
}

// temporalView adds the spatiotemporal geometry's wT·gap term on top of an
// epsView: candidates are generated by the planar prefilter unchanged — the
// temporal term is non-negative, so dist_st ≥ dist_planar ≥ c·mindist and
// the planar candidate radius ε/c stays complete (no false negatives; see
// internal/geometry's pruning-bound invariant) — and the gap is added per
// candidate after the spatial kernel block. Candidate sets, and therefore
// DistCalls, are identical to the planar path; with wT = 0 the added term
// is exactly +0 and every scored distance is bit-identical to planar.
type temporalView struct {
	epsView
	ivs []geometry.Interval
	wt  float64
}

func (v temporalView) distBlock(i int, cand []int, out []float64) []float64 {
	out = v.epsView.distBlock(i, cand, out)
	qi := v.ivs[i]
	for k, j := range cand {
		out[k] += v.wt * qi.Gap(v.ivs[j])
	}
	return out
}

// customDistView carries an arbitrary caller-supplied distance function
// over a neighborSource's candidate generation: RunWithDistance's path. No
// columnar kernel exists for an unknown Func, so blocks are scored by the
// scalar loop — the exact shape the engine ran before the kernel refactor.
type customDistView struct {
	inner neighborSource
	items []Item
	dist  lsdist.Func
}

func (v customDistView) candidates(i int, dst []int) []int {
	return v.inner.candidates(i, dst)
}

func (v customDistView) distBlock(i int, cand []int, out []float64) []float64 {
	if cap(out) < len(cand) {
		out = make([]float64, len(cand))
	}
	out = out[:len(cand)]
	a := v.items[i].Seg
	for k, j := range cand {
		out[k] = v.dist(a, v.items[j].Seg)
	}
	return out
}

func segments(items []Item) []geom.Segment {
	segs := make([]geom.Segment, len(items))
	for i, it := range items {
		segs[i] = it.Seg
	}
	return segs
}

// engine holds per-run state for the lazy serial path (and per-worker
// state for the parallel neighborhood passes).
type engine struct {
	items  []Item
	cfg    Config
	src    neighborSource
	labels []int // unclassified / Noise / cluster id
	calls  int
	cand   []int     // candidate scratch
	dists  []float64 // distance scratch, ≤ refineBlock per chunk
}

const unclassified = -2

// refineBlock chunks the block refinement: candidate lists are scored in
// sub-blocks of at most this many pairs, so the distance scratch is one
// fixed 8 KiB buffer per engine for the whole run (and stays L1-resident)
// no matter how large ε-neighborhoods grow. Chunking changes nothing about
// the scored values or their order — it only bounds the scratch.
const refineBlock = 1024

// neighborhood returns the ids (including i) within ε of item i, and the
// weighted cardinality. The result lands in dst's backing array; callers
// must treat it as scratch that the next call overwrites.
//
// The refinement is block-at-a-time: one candidates call, then per
// refineBlock-sized chunk one distBlock call scoring the chunk and a
// branch-only filter pass over flat arrays. DistCalls accounting is per
// pair scored — len(candidates) per query, exactly what the
// pair-at-a-time loop counted.
func (e *engine) neighborhood(i int, dst []int) ([]int, float64) {
	e.cand = e.src.candidates(i, e.cand[:0])
	e.calls += len(e.cand)
	var weight float64
	for lo := 0; lo < len(e.cand); lo += refineBlock {
		chunk := e.cand[lo:]
		if len(chunk) > refineBlock {
			chunk = chunk[:refineBlock]
		}
		e.dists = e.src.distBlock(i, chunk, e.dists)
		for k, j := range chunk {
			if e.dists[k] <= e.cfg.Eps {
				dst = append(dst, j)
				weight += e.items[j].Weight
			}
		}
	}
	return dst, weight
}

// hoodSet is the flat-buffer neighborhood store of the parallel path: every
// ε-neighborhood concatenated in item-index order in one shared int32
// arena. Compared with one []int slice per item this is O(workers) + 3
// allocations instead of O(items), half the id width, and a layout the
// union-find edge pass scans as one contiguous run — the memory-wall fix:
// the grouping hot path is cache- and allocator-bound, not compute-bound.
type hoodSet struct {
	off []int64   // len n+1; item i's neighborhood is ids[off[i]:off[i+1]]
	ids []int32   // concatenated neighborhoods, item-index order
	w   []float64 // weighted ε-cardinality per item
}

func (h *hoodSet) hood(i int) []int32 { return h.ids[h.off[i]:h.off[i+1]] }

// Run executes the Figure-12 algorithm. cfg.Workers > 1 precomputes the
// ε-neighborhoods concurrently; the clustering is identical either way.
func Run(items []Item, cfg Config) (*Result, error) {
	return run(context.Background(), items, cfg, nil, nil, nil)
}

// RunCtx is Run with cooperative cancellation and an optional per-item
// completion hook. Cancellation is checked once per item on the parallel
// passes (neighborhood precompute, union-find edge scan, border
// assignment) and once per outer-loop item and expansion-queue pop on the
// serial path, so the call returns ctx.Err() within roughly one
// neighborhood's worth of work after ctx is done. An uncancelled RunCtx is
// bit-identical to Run.
//
// onItem, if non-nil, is invoked once per item whose ε-neighborhood has
// been resolved — from worker goroutines on the parallel path, inline on
// the serial one — so callers can stream grouping progress.
func RunCtx(ctx context.Context, items []Item, cfg Config, onItem func()) (*Result, error) {
	return run(ctx, items, cfg, nil, onItem, nil)
}

// RunSharedCtx is RunCtx over a prebuilt SharedIndex — the single-build
// data flow of the pipeline: the caller indexes the items once (shared
// across parameter estimation and any number of clustering runs) and the
// grouping only queries it. shared must have been built with
// NewSharedIndexFor over exactly these items and cfg.Options; cfg.Index and
// cfg.Backend are ignored in its favour. The result is bit-identical to
// RunCtx with the equivalent Config — the index structure does not depend
// on ε, and every query derives its own candidate radius.
func RunSharedCtx(ctx context.Context, shared *SharedIndex, cfg Config, onItem func()) (*Result, error) {
	return run(ctx, shared.items, cfg, nil, onItem, shared)
}

// RunWithDistance executes the Figure-12 algorithm under an arbitrary
// segment distance. No geometric prefilter can be assumed for an unknown
// function, so neighborhoods are computed by full scan (the paper's
// index-free O(n²) bound) — though still across cfg.Workers goroutines.
// Because the default (zero-value) Workers uses all CPUs, dist must be
// safe for concurrent use — every distance in internal/lsdist is, being a
// pure function; a stateful closure (memoizer, call counter) needs its own
// synchronisation or cfg.Workers = 1. dist must also be symmetric
// (dist(a,b) == dist(b,a)), as DBSCAN's density-connectivity — and the
// ε-graph formulation the parallel path uses — presumes; every distance in
// this repo is, per the paper's Lemma 2. Used by the distance-function
// ablations.
func RunWithDistance(items []Item, dist lsdist.Func, cfg Config) (*Result, error) {
	if !cfg.Options.Weights.Valid() {
		// The weights are unused on this path (the caller's dist decides
		// everything); normalise them so validation concerns only
		// Eps/MinLns.
		cfg.Options.Weights = lsdist.DefaultWeights()
	}
	cfg.Index = IndexNone // no prefilter is sound for an unknown distance
	cfg.Backend = nil
	if dist == nil {
		dist = lsdist.New(cfg.Options)
	}
	return run(context.Background(), items, cfg, dist, nil, nil)
}

// run is the shared core. custom is the caller-supplied distance of
// RunWithDistance, or nil for the canonical TRACLUS distance — the nil case
// scores candidate blocks through the shared index's columnar batch kernel;
// a custom Func has no kernel and keeps the scalar per-pair loop.
func run(ctx context.Context, items []Item, cfg Config, custom lsdist.Func, onItem func(), shared *SharedIndex) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	minTrajs := cfg.MinTrajs
	if minTrajs <= 0 {
		minTrajs = int(cfg.MinLns)
	}
	if shared == nil {
		shared = NewSharedIndexFor(items, cfg.Options, cfg.backend())
	}
	if par.Workers(cfg.Workers, len(items)) > 1 {
		return runParallel(ctx, shared, cfg, custom, onItem, minTrajs)
	}
	e := &engine{
		items:  items,
		cfg:    cfg,
		labels: make([]int, len(items)),
		src:    shared.viewFor(cfg.Eps, custom),
	}
	for i := range e.labels {
		e.labels[i] = unclassified
	}

	// The lazy serial path resolves neighborhoods as the scan reaches them,
	// so progress ticks track the outer loop.
	done := ctx.Done()
	clusterID := 0
	var hood, queue []int
	var weight float64
	for i := range items {
		if done != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if onItem != nil {
			onItem()
		}
		if e.labels[i] != unclassified {
			continue
		}
		hood, weight = e.neighborhood(i, hood[:0])
		if weight < cfg.MinLns {
			e.labels[i] = Noise
			continue
		}
		// Step 1: seed the cluster with the neighborhood. Segments already
		// claimed by an earlier cluster keep their assignment (the border
		// points DBSCAN assigns first-come-first-served); unclassified
		// members join the queue for expansion.
		queue = queue[:0]
		for _, j := range hood {
			switch e.labels[j] {
			case unclassified:
				e.labels[j] = clusterID
				if j != i {
					queue = append(queue, j)
				}
			case Noise:
				e.labels[j] = clusterID
			}
		}
		// Step 2: ExpandCluster.
		if err := e.expand(ctx, &queue, clusterID); err != nil {
			return nil, err
		}
		clusterID++
	}

	return e.finish(clusterID, minTrajs), nil
}

// runParallel is the multicore grouping path: a concurrent flat-arena
// neighborhood precompute, then ε-graph grouping (union-find over
// core-core edges, deterministic border assignment), canonicalised through
// ResultFromLabels. It returns exactly what the serial path returns —
// labels, cluster order, Removed, and DistCalls are all bit-identical at
// every worker count.
func runParallel(ctx context.Context, shared *SharedIndex, cfg Config, custom lsdist.Func, onItem func(), minTrajs int) (*Result, error) {
	items := shared.items
	hs, calls, err := shared.neighborhoods(ctx, cfg.Eps, cfg.Workers, custom, onItem)
	if err != nil {
		return nil, err
	}
	labels, err := groupEpsGraph(ctx, cfg, hs)
	if err != nil {
		return nil, err
	}
	// minTrajs has already been defaulted by run; ResultFromLabels applies
	// the same Definition-10 filter and the same canonical ordering
	// (ascending cluster id = serial discovery order, members ascending)
	// that the serial finish produces.
	return ResultFromLabels(items, labels, minTrajs, calls), nil
}

// groupEpsGraph computes DBSCAN-equivalent cluster labels from precomputed
// neighborhoods without the serial expansion loop. Equivalence argument:
//
//   - A core segment (weighted ε-cardinality ≥ MinLns) belongs to exactly
//     one density-connected set: the connected component of the "core
//     graph" whose edges join core segments within ε of each other. The
//     TRACLUS distance is symmetric (Lemma 2), so j ∈ Nε(i) ⇔ i ∈ Nε(j)
//     and the components are those of an undirected graph — computed here
//     by a lock-free union-find fed concurrently via par.ForEachCtx.
//   - The serial scan of Figure 12 creates a cluster when it first reaches
//     an unclassified core segment of a new component; core segments are
//     only ever labelled by their own component's expansion, so cluster
//     ids are assigned to components in order of their minimum core index.
//     Under the min-root union policy that minimum is exactly the
//     component root, which makes the id assignment a single ascending
//     scan.
//   - A border (non-core) segment is claimed first-come-first-served by
//     the earliest-created cluster that reaches it, i.e. the minimum
//     cluster id over the core segments whose neighborhoods contain it —
//     by symmetry, the minimum cluster id over the core members of its own
//     neighborhood. That min is order-free, so the border pass can run in
//     parallel and still land on the serial answer.
func groupEpsGraph(ctx context.Context, cfg Config, hs *hoodSet) ([]int, error) {
	n := len(hs.w)
	core := make([]bool, n)
	for i, w := range hs.w {
		core[i] = w >= cfg.MinLns
	}
	uf := newUnionFind(n)
	err := par.ForEachCtx(ctx, cfg.Workers, n, func(_, i int) {
		if !core[i] {
			return
		}
		for _, j := range hs.hood(i) {
			// Symmetry means each core-core edge appears in both endpoint
			// neighborhoods; union it once, from the smaller endpoint.
			if int(j) > i && core[j] {
				uf.union(int32(i), j)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	// Serial O(n) numbering pass: components in order of minimum core
	// index, which is the serial discovery order (see above). Non-roots
	// always resolve to an already-numbered root because the root is the
	// component minimum.
	labels := make([]int, n)
	clusterID := 0
	for i := 0; i < n; i++ {
		if !core[i] {
			labels[i] = Noise
			continue
		}
		r := int(uf.find(int32(i)))
		if r == i {
			labels[i] = clusterID
			clusterID++
		} else {
			labels[i] = labels[r]
		}
	}
	// Border pass: writes only non-core slots, reads only core slots, so
	// the concurrent reads never race with a write.
	err = par.ForEachCtx(ctx, cfg.Workers, n, func(_, i int) {
		if core[i] {
			return
		}
		best := Noise
		for _, j := range hs.hood(i) {
			if !core[j] {
				continue
			}
			if id := labels[j]; best == Noise || id < best {
				best = id
			}
		}
		labels[i] = best
	})
	if err != nil {
		return nil, err
	}
	return labels, nil
}

// expand computes the density-connected set of the seeded cluster
// (Figure 12 lines 17–28). Cancellation is checked once per queue pop —
// the lazy serial path computes a full ε-neighborhood per pop, so this is
// the loop that must stay interruptible on pathological expansions.
func (e *engine) expand(ctx context.Context, queue *[]int, clusterID int) error {
	done := ctx.Done()
	var hood []int
	var weight float64
	for len(*queue) > 0 {
		if done != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		m := (*queue)[0]
		*queue = (*queue)[1:]
		hood, weight = e.neighborhood(m, hood[:0])
		if weight < e.cfg.MinLns {
			continue
		}
		for _, x := range hood {
			switch e.labels[x] {
			case unclassified:
				e.labels[x] = clusterID
				*queue = append(*queue, x)
			case Noise:
				e.labels[x] = clusterID
			}
		}
	}
	return nil
}

// finish applies the trajectory-cardinality filter and assembles the
// result (Figure 12 step 3).
func (e *engine) finish(numIDs, minTrajs int) *Result {
	members := make([][]int, numIDs)
	trajs := make([]map[int]bool, numIDs)
	for i := range trajs {
		trajs[i] = make(map[int]bool)
	}
	for i, l := range e.labels {
		if l >= 0 {
			members[l] = append(members[l], i)
			trajs[l][e.items[i].TrajID] = true
		}
	}
	res := &Result{ClusterOf: make([]int, len(e.items)), DistCalls: e.calls}
	remap := make([]int, numIDs)
	for id := 0; id < numIDs; id++ {
		if len(trajs[id]) < minTrajs {
			remap[id] = Noise
			res.Removed++
			continue
		}
		remap[id] = len(res.Clusters)
		res.Clusters = append(res.Clusters, Cluster{
			Members:      members[id],
			Trajectories: sortedKeys(trajs[id]),
		})
	}
	for i, l := range e.labels {
		switch {
		case l >= 0:
			res.ClusterOf[i] = remap[l]
		default:
			res.ClusterOf[i] = Noise
		}
	}
	return res
}

// ResultFromLabels builds a canonical Result from an arbitrary per-item
// labelling: labels[i] is any non-negative cluster id (ids need not be
// dense) or negative for noise. The trajectory-cardinality filter of
// Definition 10 is applied when minTrajs > 0 — clusters with fewer distinct
// trajectory ids are demoted to noise and counted in Removed — and the
// surviving clusters are renumbered 0..k-1 in ascending original-id order
// with Members ascending and Trajectories sorted, the same canonical shape
// Run produces. distCalls is recorded verbatim.
//
// It is the bridge for alternative grouping algorithms (e.g. the OPTICS
// variant exposed on the public Pipeline): produce labels however you like,
// then canonicalise them into the Result the rest of the pipeline consumes.
func ResultFromLabels(items []Item, labels []int, minTrajs, distCalls int) *Result {
	members := make(map[int][]int)
	trajs := make(map[int]map[int]bool)
	for i, l := range labels {
		if l < 0 {
			continue
		}
		members[l] = append(members[l], i)
		if trajs[l] == nil {
			trajs[l] = make(map[int]bool)
		}
		trajs[l][items[i].TrajID] = true
	}
	ids := make([]int, 0, len(members))
	for id := range members {
		ids = append(ids, id)
	}
	sort.Ints(ids) // ids may be sparse; visit them in ascending order
	res := &Result{ClusterOf: make([]int, len(items)), DistCalls: distCalls}
	remap := make(map[int]int, len(members))
	for _, id := range ids {
		if minTrajs > 0 && len(trajs[id]) < minTrajs {
			remap[id] = Noise
			res.Removed++
			continue
		}
		remap[id] = len(res.Clusters)
		res.Clusters = append(res.Clusters, Cluster{
			Members:      members[id],
			Trajectories: sortedKeys(trajs[id]),
		})
	}
	for i, l := range labels {
		if l >= 0 {
			res.ClusterOf[i] = remap[l]
		} else {
			res.ClusterOf[i] = Noise
		}
	}
	return res
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // insertion sort; PTR sets are small
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// SharedIndex is an immutable neighborhood index over one item set that can
// serve many goroutines, each through its own view (per-view scratch
// buffers), at any query ε — the index structure is ε-free and every view
// derives its candidate radius from its own ε. It is the "build once,
// answer many queries" object the pipeline threads through parameter
// estimation and grouping.
type SharedIndex struct {
	items  []Item
	opt    lsdist.Options
	search *spindex.Searcher
	// ivs/wt carry the spatiotemporal geometry when set: one time interval
	// per item, index-aligned with items, and the temporal weight wT. Every
	// view and cursor then adds wT·gap after the spatial kernel block; nil
	// ivs is the planar path, untouched.
	ivs []geometry.Interval
	wt  float64
	// scr recycles per-worker neighborhood scratch across passes. The
	// parameter-estimation sweep runs one pass per candidate ε — a hundred
	// passes against one index is normal — and without recycling every pass
	// re-allocates each worker's candidate, distance, and neighborhood
	// buffers just to grow them back to steady-state size. The buffers carry
	// no results between passes (each use fully overwrites the prefix it
	// reads), so recycling cannot affect outputs.
	scr sync.Pool
}

// scratchSet is the recyclable per-worker scratch of a neighborhood pass.
type scratchSet struct {
	cand  []int
	dists []float64
	hood  []int
}

func (s *SharedIndex) getScratch() *scratchSet {
	if sc, ok := s.scr.Get().(*scratchSet); ok {
		return sc
	}
	return &scratchSet{}
}

// NewSharedIndex builds the index once for repeated ε-queries.
//
// Deprecated-shape compatibility form: maxEps is vestigial — since the
// spindex refactor every query derives its own exact candidate radius, so
// the index serves any ε — and kind is the IndexKind shim over
// spindex backends. New code calls NewSharedIndexFor.
func NewSharedIndex(items []Item, _ float64, opt lsdist.Options, kind IndexKind) *SharedIndex {
	return NewSharedIndexFor(items, opt, BackendFor(kind))
}

// NewSharedIndexFor builds backend's index over the items once. The
// searcher layer downgrades to the brute backend itself when the distance
// weights admit no sound Euclidean prefilter.
func NewSharedIndexFor(items []Item, opt lsdist.Options, backend spindex.Backend) *SharedIndex {
	return &SharedIndex{
		items:  items,
		opt:    opt,
		search: spindex.NewSearcher(segments(items), opt, backend),
	}
}

// NewSharedIndexTimed is NewSharedIndexFor for the spatiotemporal geometry:
// ivs holds one time interval per item (index-aligned) and wt is the
// temporal weight wT ≥ 0. The spatial index structure is exactly the planar
// one — candidate generation keeps the conservative planar radius, which
// stays complete because the temporal addend is non-negative — and every
// distance served by the index's views and cursors is
// dist_planar + wT·gap. A nil ivs degrades to the planar NewSharedIndexFor.
func NewSharedIndexTimed(items []Item, ivs []geometry.Interval, wt float64, opt lsdist.Options, backend spindex.Backend) *SharedIndex {
	s := NewSharedIndexFor(items, opt, backend)
	if ivs != nil {
		if len(ivs) != len(items) {
			panic(fmt.Sprintf("segclust: %d intervals for %d items", len(ivs), len(items)))
		}
		s.ivs, s.wt = ivs, wt
	}
	return s
}

// Len returns the number of indexed items.
func (s *SharedIndex) Len() int { return len(s.items) }

// Items returns the indexed item set. The slice is the index's own backing
// store — callers must not mutate it.
func (s *SharedIndex) Items() []Item { return s.items }

// Options returns the distance options the index was built with.
func (s *SharedIndex) Options() lsdist.Options { return s.opt }

// Searcher exposes the underlying spindex searcher so sibling subsystems
// can run their own candidate + refine passes against the same single index
// build. The searcher serves the raw spatial distance only; geometry-aware
// consumers (internal/dendro's merge-structure build) go through Cursor,
// which applies the index's temporal term.
func (s *SharedIndex) Searcher() *spindex.Searcher { return s.search }

// Temporal returns the index's spatiotemporal payload: the per-item time
// intervals and the weight wT (nil, 0 for a planar index).
func (s *SharedIndex) Temporal() ([]geometry.Interval, float64) { return s.ivs, s.wt }

// Cursor is a per-goroutine query handle over the shared index that serves
// the index's full geometry: candidates from the conservative spatial
// prefilter, distances from the batch kernel plus the temporal wT·gap term
// when the index is spatiotemporal. A Cursor owns its scratch and is not
// safe for concurrent use; give each goroutine its own.
type Cursor struct {
	sq  *spindex.SearchQuery
	ivs []geometry.Interval
	wt  float64
}

// Cursor returns a new query cursor over the shared index.
func (s *SharedIndex) Cursor() *Cursor {
	return &Cursor{sq: s.search.Query(), ivs: s.ivs, wt: s.wt}
}

// CandidatesOf appends to dst the candidate ids whose distance to item i
// may be ≤ eps (false positives allowed, false negatives never — the
// temporal term only grows distances, so the planar radius stays complete).
func (c *Cursor) CandidatesOf(i int, eps float64, dst []int) []int {
	return c.sq.CandidatesOf(i, eps, dst)
}

// DistBlock scores item i against every id in ids under the index's
// geometry, index-aligned with ids.
func (c *Cursor) DistBlock(i int, ids []int, out []float64) []float64 {
	out = c.sq.DistBlock(i, ids, out)
	if c.ivs != nil {
		qi := c.ivs[i]
		for k, j := range ids {
			out[k] += c.wt * qi.Gap(c.ivs[j])
		}
	}
	return out
}

// view returns a neighborSource for ε-queries at eps, backed by the shared
// structures but with private scratch space. Distance blocks are scored by
// the searcher's batch kernel, plus the temporal term on a spatiotemporal
// index.
func (s *SharedIndex) view(eps float64) neighborSource {
	ev := epsView{sq: s.search.Query(), eps: eps}
	if s.ivs != nil {
		return temporalView{epsView: ev, ivs: s.ivs, wt: s.wt}
	}
	return ev
}

// viewFor is view with an optional custom distance: non-nil custom wraps
// the candidate generation with the scalar per-pair scorer (no kernel
// exists for an arbitrary Func); nil keeps the kernel path.
func (s *SharedIndex) viewFor(eps float64, custom lsdist.Func) neighborSource {
	v := s.view(eps)
	if custom != nil {
		return customDistView{inner: v, items: s.items, dist: custom}
	}
	return v
}

// forEachNeighborhood is the shared parallel neighborhood pass: it computes
// the ε-neighborhood of every item across par.Workers(workers, n)
// goroutines — each holding its own view of the shared index and its own
// scratch — and invokes visit(i, hood, weight) exactly once per item. visit
// is called concurrently for distinct i and must not retain hood (it is
// worker-owned scratch; copy if needed). The return value is the total
// number of exact distance evaluations, which is independent of the worker
// count. Both the clustering precompute (Run with Workers > 1) and the
// Section 4.4 parameter heuristic ride this one pass, under the index's
// canonical TRACLUS distance (batch-kernel scored).
func (s *SharedIndex) forEachNeighborhood(eps float64, workers int, visit func(i int, hood []int, weight float64)) int {
	calls, _ := s.forEachNeighborhoodCtx(context.Background(), eps, workers, visit)
	return calls
}

// forEachNeighborhoodCtx is forEachNeighborhood with cooperative
// cancellation: once ctx is done, remaining items are dropped and ctx.Err()
// is returned alongside the distance-call count so far (callers must treat
// their partially-visited state as garbage).
func (s *SharedIndex) forEachNeighborhoodCtx(ctx context.Context, eps float64, workers int, visit func(i int, hood []int, weight float64)) (int, error) {
	cfg := Config{Eps: eps, MinLns: 1, Options: s.opt}
	engines := make([]*engine, par.Workers(workers, len(s.items)))
	hoods := make([][]int, len(engines))
	scs := make([]*scratchSet, len(engines))
	for w := range engines {
		sc := s.getScratch()
		scs[w] = sc
		engines[w] = &engine{items: s.items, cfg: cfg, src: s.view(eps), cand: sc.cand, dists: sc.dists}
		hoods[w] = sc.hood
	}
	err := par.ForEachCtx(ctx, workers, len(s.items), func(w, i int) {
		var weight float64
		hoods[w], weight = engines[w].neighborhood(i, hoods[w][:0])
		visit(i, hoods[w], weight)
	})
	calls := 0
	for w, e := range engines {
		calls += e.calls
		sc := scs[w]
		sc.cand, sc.dists, sc.hood = e.cand, e.dists, hoods[w]
		s.scr.Put(sc)
	}
	return calls, err
}

// blockIDs is the growth quantum of the per-worker neighborhood chunks:
// 1<<15 int32 ids = 128 KiB per block. Large enough that a worker retires
// O(Σ|Nε| / blockIDs) blocks per run, small enough that the tail waste of
// the last block per worker is negligible.
const blockIDs = 1 << 15

// neighborhoods materialises every ε-neighborhood into one flat hoodSet
// arena across par.Workers(workers, n) goroutines. Each worker appends the
// neighborhoods it computes to a private chunk made of fixed-size retired
// blocks — a full block is retired, never copied, and an item's ids never
// span blocks, so cumulative allocation is the data itself (no
// append-doubling churn) and the allocation count is O(workers + Σ|Nε| /
// blockIDs) instead of O(items) for a per-item-slice layout. The blocks
// are then stitched into the shared arena in item-index order; that pass
// is pure memory bandwidth and parallelises over the same pool. onItem,
// if non-nil, ticks once per resolved item (from worker goroutines). The
// int count is the exact-distance evaluations, identical to what the lazy
// serial path would spend.
func (s *SharedIndex) neighborhoods(ctx context.Context, eps float64, workers int, custom lsdist.Func, onItem func()) (*hoodSet, int, error) {
	n := len(s.items)
	w := par.Workers(workers, n)
	cfg := Config{Eps: eps, MinLns: 1, Options: s.opt}
	engines := make([]*engine, w)
	scratch := make([][]int, w)    // per-worker neighborhood scratch
	blocks := make([][][]int32, w) // per-worker retired blocks, allocation order
	cur := make([][]int32, w)      // per-worker block being filled
	scs := make([]*scratchSet, w)
	for k := range engines {
		sc := s.getScratch()
		scs[k] = sc
		engines[k] = &engine{items: s.items, cfg: cfg, src: s.viewFor(eps, custom), cand: sc.cand, dists: sc.dists}
		scratch[k] = sc.hood
	}
	var (
		owner = make([]int32, n) // worker whose chunk holds item i's hood,
		blk   = make([]int32, n) // the block index within that chunk,
		start = make([]int32, n) // and the offset within that block
		hs    = &hoodSet{off: make([]int64, n+1), w: make([]float64, n)}
	)
	err := par.ForEachCtx(ctx, workers, n, func(wk, i int) {
		hood, weight := engines[wk].neighborhood(i, scratch[wk][:0])
		scratch[wk] = hood[:0]
		buf := cur[wk]
		if cap(buf)-len(buf) < len(hood) {
			if buf != nil {
				blocks[wk] = append(blocks[wk], buf)
			}
			size := blockIDs
			if len(hood) > size {
				size = len(hood)
			}
			buf = make([]int32, 0, size)
		}
		// blk records the index buf will occupy once retired: all earlier
		// blocks of this worker are already in blocks[wk], and rollover
		// retires buf before any later block.
		owner[i], blk[i], start[i] = int32(wk), int32(len(blocks[wk])), int32(len(buf))
		for _, id := range hood {
			buf = append(buf, int32(id))
		}
		cur[wk] = buf
		hs.off[i+1] = int64(len(hood)) // lengths for now; prefix-summed below
		hs.w[i] = weight
		if onItem != nil {
			onItem()
		}
	})
	calls := 0
	for k, e := range engines {
		calls += e.calls
		sc := scs[k]
		sc.cand, sc.dists, sc.hood = e.cand, e.dists, scratch[k]
		s.scr.Put(sc)
	}
	if err != nil {
		return nil, calls, err
	}
	for wk, buf := range cur {
		if buf != nil {
			blocks[wk] = append(blocks[wk], buf)
		}
	}
	for i := 0; i < n; i++ {
		hs.off[i+1] += hs.off[i]
	}
	hs.ids = make([]int32, hs.off[n])
	// Stitch: index-ordered writes into the arena, chunked so the copies
	// parallelise; this is pure memory bandwidth.
	err = par.ForEachCtx(ctx, workers, n, func(_, i int) {
		src := blocks[owner[i]][blk[i]][start[i]:]
		copy(hs.ids[hs.off[i]:hs.off[i+1]], src[:hs.off[i+1]-hs.off[i]])
	})
	if err != nil {
		return nil, calls, err
	}
	return hs, calls, nil
}

// NeighborhoodWeights returns, for every item, the weighted cardinality of
// its ε-neighborhood (eps must not exceed the maxEps the index was built
// with). It backs the parameter-selection heuristic of Section 4.4
// (entropy over |Nε| and avg|Nε|) and parallelises across workers (≤ 0
// means all CPUs).
func (s *SharedIndex) NeighborhoodWeights(eps float64, workers int) []float64 {
	out, _ := s.NeighborhoodWeightsCtx(context.Background(), eps, workers)
	return out
}

// NeighborhoodWeightsCtx is NeighborhoodWeights with cooperative
// cancellation; a non-nil error means the returned slice is incomplete and
// must be discarded.
func (s *SharedIndex) NeighborhoodWeightsCtx(ctx context.Context, eps float64, workers int) ([]float64, error) {
	out := make([]float64, len(s.items))
	_, err := s.forEachNeighborhoodCtx(ctx, eps, workers,
		func(i int, _ []int, weight float64) { out[i] = weight })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// NeighborhoodWeights is the one-shot convenience form: it builds an index
// for eps and computes all weighted ε-neighborhood cardinalities.
func NeighborhoodWeights(items []Item, eps float64, opt lsdist.Options, index IndexKind, workers int) []float64 {
	return NewSharedIndex(items, eps, opt, index).NeighborhoodWeights(eps, workers)
}
