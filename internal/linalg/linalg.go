// Package linalg is the small dense linear-algebra substrate used by the
// regression-mixture baseline (internal/regmix): column-major-free dense
// matrices, products, and linear solves by Gaussian elimination with
// partial pivoting. It is deliberately minimal — just what weighted
// least-squares needs — and depends only on the standard library.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (which must be equal length).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: %d != %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m · b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns m · v for a vector v of length m.Cols.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// ErrSingular is returned when a solve encounters a (numerically) singular
// system.
var ErrSingular = errors.New("linalg: singular matrix")

// Solve solves A·x = b for square A by Gaussian elimination with partial
// pivoting. A and b are not modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: Solve needs square system, got %dx%d and b of %d", a.Rows, a.Cols, len(b))
	}
	// Augmented working copy.
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, pval := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > pval {
				piv, pval = r, v
			}
		}
		if pval < 1e-12 {
			return nil, ErrSingular
		}
		if piv != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[piv*n+j] = m.Data[piv*n+j], m.Data[col*n+j]
			}
			x[col], x[piv] = x[piv], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Data[r*n+j] -= f * m.Data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// WeightedLeastSquares solves min_β Σ w_i (y_i - X_i·β)² via the normal
// equations (Xᵀ W X) β = Xᵀ W y, with a small ridge term for stability.
func WeightedLeastSquares(x *Matrix, y, w []float64, ridge float64) ([]float64, error) {
	n, p := x.Rows, x.Cols
	if len(y) != n || len(w) != n {
		return nil, fmt.Errorf("linalg: WLS needs %d responses/weights", n)
	}
	xtwx := NewMatrix(p, p)
	xtwy := make([]float64, p)
	for i := 0; i < n; i++ {
		wi := w[i]
		if wi == 0 {
			continue
		}
		row := x.Data[i*p : (i+1)*p]
		for a := 0; a < p; a++ {
			va := wi * row[a]
			xtwy[a] += va * y[i]
			for b := a; b < p; b++ {
				xtwx.Data[a*p+b] += va * row[b]
			}
		}
	}
	// Mirror the upper triangle and add the ridge.
	for a := 0; a < p; a++ {
		xtwx.Data[a*p+a] += ridge
		for b := a + 1; b < p; b++ {
			xtwx.Data[b*p+a] = xtwx.Data[a*p+b]
		}
	}
	return Solve(xtwx, xtwy)
}

// Vandermonde builds the design matrix whose row i is
// (1, t_i, t_i², ..., t_i^degree).
func Vandermonde(t []float64, degree int) *Matrix {
	m := NewMatrix(len(t), degree+1)
	for i, ti := range t {
		v := 1.0
		for j := 0; j <= degree; j++ {
			m.Set(i, j, v)
			v *= ti
		}
	}
	return m
}

// PolyEval evaluates the polynomial with coefficients c (constant first) at t.
func PolyEval(c []float64, t float64) float64 {
	var y float64
	for i := len(c) - 1; i >= 0; i-- {
		y = y*t + c[i]
	}
	return y
}
