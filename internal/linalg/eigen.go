package linalg

import (
	"errors"
	"math"
)

// SymEigen computes the eigendecomposition of a symmetric matrix by the
// cyclic Jacobi method. It returns the eigenvalues in descending order and
// the matching eigenvectors as the columns of v. The input must be square
// and (numerically) symmetric; only the upper triangle is read.
//
// Jacobi is O(n³) with a small constant and is robust for the modest
// matrix sizes the constant-shift embedding uses (hundreds of segments).
func SymEigen(a *Matrix) (values []float64, v *Matrix, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, errors.New("linalg: SymEigen needs a square matrix")
	}
	// Working copy of the upper triangle, mirrored.
	w := a.Clone()
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			w.Set(i, j, w.At(j, i))
		}
	}
	v = NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s, n)
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	// Sort descending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort; n is modest
		for j := i; j > 0 && values[idx[j]] > values[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	sorted := make([]float64, n)
	vs := NewMatrix(n, n)
	for col, src := range idx {
		sorted[col] = values[src]
		for row := 0; row < n; row++ {
			vs.Set(row, col, v.At(row, src))
		}
	}
	return sorted, vs, nil
}

// rotate applies the Jacobi rotation G(p,q,θ) to w (two-sided) and
// accumulates it into v (one-sided).
func rotate(w, v *Matrix, p, q int, c, s float64, n int) {
	for k := 0; k < n; k++ {
		wkp, wkq := w.At(k, p), w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk, wqk := w.At(p, k), w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}
