package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Error("Set/At wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases data")
	}
}

func TestFromRowsAndTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("dims %dx%d", m.Rows, m.Cols)
	}
	tr := m.T()
	if tr.Rows != 2 || tr.Cols != 3 || tr.At(0, 2) != 5 || tr.At(1, 0) != 2 {
		t.Errorf("transpose wrong: %+v", tr)
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1}, {1, 2}})
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v", i, j, c.At(i, j))
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	a.Mul(NewMatrix(3, 3))
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !approx(x[i], want[i], 1e-9) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 7, 1e-12) || !approx(x[1], 3, 1e-12) {
		t.Errorf("x = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("singular system solved")
	}
	if _, err := Solve(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Error("non-square accepted")
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 2}})
	b := []float64{4, 6}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 2 || b[0] != 4 {
		t.Error("Solve mutated inputs")
	}
}

func TestSolveRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		x, err := Solve(a, b)
		if err != nil {
			continue // occasionally near-singular; fine
		}
		for i := range want {
			if !approx(x[i], want[i], 1e-6*(1+math.Abs(want[i]))) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], want[i])
			}
		}
	}
}

func TestWeightedLeastSquaresRecoversLine(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 200
	ts := make([]float64, n)
	y := make([]float64, n)
	w := make([]float64, n)
	for i := range ts {
		ts[i] = rng.Float64()
		y[i] = 3 + 5*ts[i] + rng.NormFloat64()*0.01
		w[i] = 1
	}
	x := Vandermonde(ts, 1)
	beta, err := WeightedLeastSquares(x, y, w, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(beta[0], 3, 0.05) || !approx(beta[1], 5, 0.05) {
		t.Errorf("beta = %v", beta)
	}
}

func TestWeightedLeastSquaresRespectsWeights(t *testing.T) {
	// Two populations; zero weight on the second must recover the first.
	ts := []float64{0, 1, 0, 1}
	y := []float64{0, 1, 100, 101}
	w := []float64{1, 1, 0, 0}
	x := Vandermonde(ts, 1)
	beta, err := WeightedLeastSquares(x, y, w, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(beta[0], 0, 1e-6) || !approx(beta[1], 1, 1e-6) {
		t.Errorf("beta = %v", beta)
	}
}

func TestWeightedLeastSquaresErrors(t *testing.T) {
	x := Vandermonde([]float64{0, 1}, 1)
	if _, err := WeightedLeastSquares(x, []float64{1}, []float64{1, 1}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestVandermonde(t *testing.T) {
	m := Vandermonde([]float64{2}, 3)
	want := []float64{1, 2, 4, 8}
	for j, v := range want {
		if m.At(0, j) != v {
			t.Errorf("V[0][%d] = %v, want %v", j, m.At(0, j), v)
		}
	}
}

func TestPolyEval(t *testing.T) {
	// 1 + 2t + 3t² at t=2 → 1 + 4 + 12 = 17.
	if got := PolyEval([]float64{1, 2, 3}, 2); got != 17 {
		t.Errorf("PolyEval = %v", got)
	}
	if got := PolyEval(nil, 5); got != 0 {
		t.Errorf("PolyEval(nil) = %v", got)
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative dimension did not panic")
		}
	}()
	NewMatrix(-1, 2)
}
