package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 1}})
	vals, _, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(vals[0], 3, 1e-9) || !approx(vals[1], 1, 1e-9) {
		t.Errorf("vals = %v", vals)
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(vals[0], 3, 1e-9) || !approx(vals[1], 1, 1e-9) {
		t.Fatalf("vals = %v", vals)
	}
	// Eigenvector of 3 is (1,1)/√2 up to sign.
	if !approx(math.Abs(vecs.At(0, 0)), 1/math.Sqrt2, 1e-6) {
		t.Errorf("vec = %v", vecs.At(0, 0))
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		// A ≈ V Λ Vᵀ.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var sum float64
				for k := 0; k < n; k++ {
					sum += vecs.At(i, k) * vals[k] * vecs.At(j, k)
				}
				if !approx(sum, a.At(i, j), 1e-7) {
					t.Fatalf("trial %d: reconstruction (%d,%d): %v vs %v", trial, i, j, sum, a.At(i, j))
				}
			}
		}
		// Eigenvalues descending.
		for k := 1; k < n; k++ {
			if vals[k] > vals[k-1]+1e-12 {
				t.Fatalf("not sorted: %v", vals)
			}
		}
		// Columns orthonormal.
		for p := 0; p < n; p++ {
			for q := p; q < n; q++ {
				var dot float64
				for k := 0; k < n; k++ {
					dot += vecs.At(k, p) * vecs.At(k, q)
				}
				want := 0.0
				if p == q {
					want = 1
				}
				if !approx(dot, want, 1e-7) {
					t.Fatalf("columns %d,%d dot = %v", p, q, dot)
				}
			}
		}
	}
}

func TestSymEigenNonSquare(t *testing.T) {
	if _, _, err := SymEigen(NewMatrix(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
}
