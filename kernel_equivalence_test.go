package traclus_test

// End-to-end pin of the columnar-kernel refactor's bit-identity contract:
// the full pipeline result — every cluster's segments, trajectory sets, and
// representative points, plus the noise/removed counters and the exact
// distance-call budget — is hashed coordinate-bit by coordinate-bit and
// compared against fingerprints captured from the pre-kernel scalar
// implementation on the same fixed workload. Any reordering, reassociation,
// or dropped guard in the batched distance path changes at least one
// float64 bit somewhere in this digest and fails the pin, at every worker
// count and on every index backend.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	traclus "repro"
)

// resultFingerprint digests a Result into a short hex string over the exact
// bits of every geometric output and the exact values of every counter.
func resultFingerprint(r *traclus.Result) string {
	h := sha256.New()
	put := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	putF := func(f float64) { put(math.Float64bits(f)) }
	put(uint64(len(r.Clusters)))
	for _, c := range r.Clusters {
		put(uint64(len(c.Segments)))
		for _, s := range c.Segments {
			putF(s.Start.X)
			putF(s.Start.Y)
			putF(s.End.X)
			putF(s.End.Y)
		}
		put(uint64(len(c.Trajectories)))
		for _, id := range c.Trajectories {
			put(uint64(id))
		}
		put(uint64(len(c.Representative)))
		for _, p := range c.Representative {
			putF(p.X)
			putF(p.Y)
		}
	}
	put(uint64(r.NoiseSegments))
	put(uint64(r.TotalSegments))
	put(uint64(r.RemovedClusters))
	put(uint64(r.DistCalls()))
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// TestKernelPathBitIdenticalToScalar pins the pipeline output against
// fingerprints captured from the scalar (pre-kernel) implementation on the
// fixed 120-track corridor workload. The pruned backends share one
// fingerprint and distance budget; the brute backend scores every pair and
// pins its own. Neither may vary with the worker count.
func TestKernelPathBitIdenticalToScalar(t *testing.T) {
	want := map[traclus.IndexKind]struct {
		distCalls int
		fp        string
	}{
		traclus.IndexGrid:  {distCalls: 32212, fp: "233c95f6e4469fc5"},
		traclus.IndexRTree: {distCalls: 32212, fp: "233c95f6e4469fc5"},
		traclus.IndexNone:  {distCalls: 65536, fp: "852bec3b28ec583e"},
	}
	trs := equivalenceWorkload(t, 120)
	for kind, exp := range want {
		for _, workers := range []int{1, 2, 4, 0} {
			cfg := traclus.Config{
				Eps: 30, MinLns: 6,
				CostAdvantage:    15,
				MinSegmentLength: 40,
				Index:            kind,
				Workers:          workers,
			}
			res, err := traclus.Run(trs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := res.DistCalls(); got != exp.distCalls {
				t.Errorf("index=%v workers=%d: %d distance calls, scalar path spent %d",
					kind, workers, got, exp.distCalls)
			}
			if got := resultFingerprint(res); got != exp.fp {
				t.Errorf("index=%v workers=%d: result fingerprint %s differs from scalar baseline %s",
					kind, workers, got, exp.fp)
			}
		}
	}
}
