package traclus_test

// The geometry layer's two headline contracts, pinned through the public
// API:
//
//  1. Planar geometry is a no-op: an explicit WithGeometry(PlanarGeometry())
//     run is bit-identical (fingerprints + DistCalls) to the default path
//     on every backend at every worker count.
//  2. wT = 0 spatiotemporal reduces exactly to planar — the paper's own
//     stated property of the temporal extension: RunTimed with wT=0 on
//     timed trajectories equals Run on their spatial projections, down to
//     the distance-call budget.

import (
	"context"
	"errors"
	"testing"

	"repro/internal/synth"

	traclus "repro"
)

// timedWorkload attaches monotone timestamps to the fixed hurricane
// workload: trajectory i departs at i·1000, fixes 6 h apart. The spatial
// projection is bit-identical to equivalenceWorkload(t, tracks).
func timedWorkload(t *testing.T, tracks int) []traclus.TimedTrajectory {
	t.Helper()
	base := equivalenceWorkload(t, tracks)
	trs := make([]traclus.TimedTrajectory, len(base))
	for i, tr := range base {
		times := make([]float64, len(tr.Points))
		for s := range times {
			times[s] = float64(i)*1000 + float64(s)*6
		}
		trs[i] = traclus.TimedTrajectory{
			ID: tr.ID, Label: tr.Label, Weight: tr.Weight, Points: tr.Points, Times: times,
		}
	}
	return trs
}

// TestPlanarGeometryExplicitNoOp: threading the geometry through every
// layer must not move a single bit on the planar path — explicit planar
// equals the zero-value default, per backend, per worker count.
func TestPlanarGeometryExplicitNoOp(t *testing.T) {
	trs := equivalenceWorkload(t, 120)
	for _, kind := range []traclus.IndexKind{traclus.IndexGrid, traclus.IndexRTree, traclus.IndexNone} {
		for _, workers := range []int{1, 2, 4, 0} {
			cfg := traclus.Config{
				Eps: 30, MinLns: 6,
				CostAdvantage:    15,
				MinSegmentLength: 40,
				Index:            kind,
				Workers:          workers,
			}
			def, err := traclus.Run(trs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Geometry = traclus.PlanarGeometry()
			exp, err := traclus.Run(trs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if d, e := def.DistCalls(), exp.DistCalls(); d != e {
				t.Errorf("index=%v workers=%d: DistCalls %d (default) vs %d (explicit planar)", kind, workers, d, e)
			}
			if d, e := resultFingerprint(def), resultFingerprint(exp); d != e {
				t.Errorf("index=%v workers=%d: fingerprint %s (default) vs %s (explicit planar)", kind, workers, d, e)
			}
		}
	}
}

// TestTemporalWeightZeroReducesToPlanar: RunTimed with wT=0 must equal Run
// on the spatial projections — clusters, representatives, Removed, and the
// exact DistCalls budget — on every backend.
func TestTemporalWeightZeroReducesToPlanar(t *testing.T) {
	timed := timedWorkload(t, 120)
	spatial := make([]traclus.Trajectory, len(timed))
	for i, tr := range timed {
		spatial[i] = tr.Spatial()
	}
	ctx := context.Background()
	for _, kind := range []traclus.IndexKind{traclus.IndexGrid, traclus.IndexRTree, traclus.IndexNone} {
		for _, workers := range []int{1, 0} {
			cfg := traclus.Config{
				Eps: 30, MinLns: 6,
				CostAdvantage:    15,
				MinSegmentLength: 40,
				Index:            kind,
				Workers:          workers,
			}
			planar, err := traclus.New(traclus.WithConfig(cfg)).Run(ctx, spatial)
			if err != nil {
				t.Fatal(err)
			}
			st, err := traclus.New(
				traclus.WithConfig(cfg),
				traclus.WithTemporalWeight(0),
			).RunTimed(ctx, timed)
			if err != nil {
				t.Fatal(err)
			}
			label := func() string { return kind.String() }
			if p, s := planar.DistCalls(), st.DistCalls(); p != s {
				t.Errorf("index=%s workers=%d: DistCalls %d (planar) vs %d (wT=0)", label(), workers, p, s)
			}
			if p, s := planar.RemovedClusters, st.RemovedClusters; p != s {
				t.Errorf("index=%s workers=%d: Removed %d (planar) vs %d (wT=0)", label(), workers, p, s)
			}
			if p, s := resultFingerprint(planar), resultFingerprint(st); p != s {
				t.Errorf("index=%s workers=%d: fingerprint %s (planar) vs %s (wT=0)", label(), workers, p, s)
			}
			// The timed run additionally reports per-cluster windows.
			if len(st.ClusterWindows()) != len(st.Clusters) {
				t.Errorf("index=%s workers=%d: %d windows for %d clusters", label(), workers, len(st.ClusterWindows()), len(st.Clusters))
			}
		}
	}
}

// TestSpatiotemporalSeparatesWaves: the motivating scenario — one road,
// two temporally disjoint waves. Planar (wT=0) sees the road; a temporal
// weight that makes wT·gap dwarf eps splits the waves.
func TestSpatiotemporalSeparatesWaves(t *testing.T) {
	trs := synth.RushHours(10, 20, 3, 5, 60, 45, 10*3600)
	cfg := traclus.Config{Eps: 25, MinLns: 5}
	ctx := context.Background()

	plain, err := traclus.New(traclus.WithConfig(cfg), traclus.WithTemporalWeight(0)).RunTimed(ctx, trs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Clusters) != 1 {
		t.Fatalf("wT=0: %d clusters, want the 1 road", len(plain.Clusters))
	}
	timed, err := traclus.New(traclus.WithConfig(cfg), traclus.WithTemporalWeight(0.01)).RunTimed(ctx, trs)
	if err != nil {
		t.Fatal(err)
	}
	if len(timed.Clusters) != 2 {
		t.Fatalf("wT=0.01: %d clusters, want the 2 waves", len(timed.Clusters))
	}
	w0, w1 := timed.ClusterWindows()[0], timed.ClusterWindows()[1]
	if w0.Gap(w1) <= 0 {
		t.Errorf("wave windows overlap: %+v and %+v", w0, w1)
	}
}

// TestGeodesicRun: lat/lon input projects into the meter frame, clusters
// there, and the resolved frame rides the result for unprojection.
func TestGeodesicRun(t *testing.T) {
	trs := synth.GPSTracks(3, 8, 25, 7)
	res, err := traclus.New(
		traclus.WithConfig(traclus.Config{Eps: 150, MinLns: 5, MinSegmentLength: 100}),
		traclus.WithGeometry(traclus.GeodesicGeometry()),
	).Run(context.Background(), trs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 3 {
		t.Fatalf("%d clusters, want 3 corridors", len(res.Clusters))
	}
	frame := res.Geometry().Frame
	if frame == nil {
		t.Fatal("geodesic result carries no frame")
	}
	// Representatives are in the working frame; unprojected they must land
	// inside the data's lat/lon envelope.
	for ci, c := range res.Clusters {
		for _, p := range c.Representative {
			ll := frame.FromWorking(p)
			if ll.X < -123 || ll.X > -122 || ll.Y < 47 || ll.Y > 48 {
				t.Fatalf("cluster %d representative unprojects to %.4f,%.4f — outside the data envelope", ci, ll.Y, ll.X)
			}
		}
	}
}

// TestRunRejectsSpatiotemporal / RunTimed rejects geodesic: the ingestion
// paths are typed-error guarded, not silently wrong.
func TestGeometryIngestionGuards(t *testing.T) {
	ctx := context.Background()
	_, err := traclus.New(
		traclus.WithConfig(traclus.Config{Eps: 25, MinLns: 5}),
		traclus.WithTemporalWeight(0.5),
	).Run(ctx, equivalenceWorkload(t, 4))
	var cfgErr *traclus.ConfigError
	if !errors.As(err, &cfgErr) {
		t.Fatalf("Run under spatiotemporal geometry: %v, want *ConfigError", err)
	}
	_, err = traclus.New(
		traclus.WithConfig(traclus.Config{Eps: 25, MinLns: 5}),
		traclus.WithGeometry(traclus.GeodesicGeometry()),
	).RunTimed(ctx, timedWorkload(t, 4))
	if !errors.As(err, &cfgErr) {
		t.Fatalf("RunTimed under geodesic geometry: %v, want *ConfigError", err)
	}
	if _, err := traclus.ParseGeometry("hyperbolic"); !errors.As(err, &cfgErr) {
		t.Fatalf("ParseGeometry(hyperbolic): %v, want *ConfigError", err)
	}
}
