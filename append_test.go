package traclus_test

// The tentpole contract of the incremental append path, pinned end to end:
// append-built ≡ batch-built. After any sequence of appends the Appender's
// Result must equal a from-scratch run over the concatenated trajectories —
// same clusters (segments, trajectory sets, representatives bit-for-bit),
// same noise/removed counters, same cluster windows — across every backend,
// worker count, and geometry. DistCalls is deliberately excluded from the
// digest: the base items were queried against the smaller pre-append index,
// so the incremental path legitimately evaluates fewer candidates than a
// batch run over the concatenation (see internal/segclust/incremental.go).

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/synth"

	traclus "repro"
)

// appendFingerprint digests everything the append contract pins: the exact
// bits of every geometric output, the counters, and the cluster windows —
// but not DistCalls.
func appendFingerprint(r *traclus.Result) string {
	h := sha256.New()
	put := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	putF := func(f float64) { put(math.Float64bits(f)) }
	put(uint64(len(r.Clusters)))
	for _, c := range r.Clusters {
		put(uint64(len(c.Segments)))
		for _, s := range c.Segments {
			putF(s.Start.X)
			putF(s.Start.Y)
			putF(s.End.X)
			putF(s.End.Y)
		}
		put(uint64(len(c.Trajectories)))
		for _, id := range c.Trajectories {
			put(uint64(id))
		}
		put(uint64(len(c.Representative)))
		for _, p := range c.Representative {
			putF(p.X)
			putF(p.Y)
		}
	}
	put(uint64(r.NoiseSegments))
	put(uint64(r.TotalSegments))
	put(uint64(r.RemovedClusters))
	put(uint64(len(r.ClusterWindows())))
	for _, w := range r.ClusterWindows() {
		putF(w.Start)
		putF(w.End)
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

var appendBackends = []traclus.IndexKind{traclus.IndexGrid, traclus.IndexRTree, traclus.IndexNone}
var appendWorkers = []int{1, 2, 4, 0}

// appendChunks splits the tail of trs into the append schedule every
// equivalence test drives: a single trajectory, a small batch, and the rest.
func appendChunks(trs []traclus.Trajectory, base int) ([]traclus.Trajectory, [][]traclus.Trajectory) {
	return trs[:base], [][]traclus.Trajectory{trs[base : base+1], trs[base+1 : base+6], trs[base+6:]}
}

// TestAppendEquivalencePlanar: the full matrix on the planar geometry. Each
// append's Result is compared against a batch run over everything appended
// so far, at every backend × worker count.
func TestAppendEquivalencePlanar(t *testing.T) {
	trs := equivalenceWorkload(t, 90)
	ctx := context.Background()
	for _, kind := range appendBackends {
		for _, workers := range appendWorkers {
			cfg := traclus.Config{
				Eps: 30, MinLns: 6,
				CostAdvantage:    15,
				MinSegmentLength: 40,
				Index:            kind,
				Workers:          workers,
			}
			base, chunks := appendChunks(trs, 60)
			ap, err := traclus.New(traclus.WithConfig(cfg)).NewAppender(ctx, base)
			if err != nil {
				t.Fatalf("index=%v workers=%d: NewAppender: %v", kind, workers, err)
			}
			batch0, err := traclus.Run(base, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := appendFingerprint(ap.Result()), appendFingerprint(batch0); a != b {
				t.Fatalf("index=%v workers=%d: initial build fingerprint %s (appender) vs %s (Run)", kind, workers, a, b)
			}
			if a, b := ap.Result().DistCalls(), batch0.DistCalls(); a != b {
				t.Fatalf("index=%v workers=%d: initial build DistCalls %d (appender) vs %d (Run)", kind, workers, a, b)
			}
			sofar := base
			for ci, chunk := range chunks {
				res, err := ap.Append(ctx, chunk)
				if err != nil {
					t.Fatalf("index=%v workers=%d append %d: %v", kind, workers, ci, err)
				}
				sofar = append(sofar[:len(sofar):len(sofar)], chunk...)
				batch, err := traclus.Run(sofar, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if a, b := appendFingerprint(res), appendFingerprint(batch); a != b {
					t.Errorf("index=%v workers=%d after append %d (%d trajectories): fingerprint %s (append-built) vs %s (batch-built)",
						kind, workers, ci, len(sofar), a, b)
				}
			}
		}
	}
}

// TestAppendEquivalenceTimed: the spatiotemporal geometry, wT > 0 so the
// temporal term is live, cluster windows included in the digest.
func TestAppendEquivalenceTimed(t *testing.T) {
	timed := timedWorkload(t, 90)
	ctx := context.Background()
	for _, kind := range appendBackends {
		for _, workers := range appendWorkers {
			cfg := traclus.Config{
				Eps: 30, MinLns: 6,
				CostAdvantage:    15,
				MinSegmentLength: 40,
				Index:            kind,
				Workers:          workers,
			}
			build := func() (*traclus.Pipeline, error) {
				return traclus.New(traclus.WithConfig(cfg), traclus.WithTemporalWeight(0.002)), nil
			}
			p, _ := build()
			base, chunks := timed[:60], [][]traclus.TimedTrajectory{timed[60:61], timed[61:66], timed[66:]}
			ap, err := p.NewTimedAppender(ctx, base)
			if err != nil {
				t.Fatalf("index=%v workers=%d: NewTimedAppender: %v", kind, workers, err)
			}
			sofar := base
			for ci, chunk := range chunks {
				res, err := ap.AppendTimed(ctx, chunk)
				if err != nil {
					t.Fatalf("index=%v workers=%d append %d: %v", kind, workers, ci, err)
				}
				sofar = append(sofar[:len(sofar):len(sofar)], chunk...)
				pb, _ := build()
				batch, err := pb.RunTimed(ctx, sofar)
				if err != nil {
					t.Fatal(err)
				}
				if a, b := appendFingerprint(res), appendFingerprint(batch); a != b {
					t.Errorf("index=%v workers=%d after append %d (%d trajectories): fingerprint %s (append-built) vs %s (batch-built)",
						kind, workers, ci, len(sofar), a, b)
				}
			}
		}
	}
}

// TestAppendEquivalenceGeodesic: lat/lon input. The appender resolves its
// projection frame from the INITIAL data bounds and keeps it for every
// append; a batch run over the concatenation would derive a different frame
// from the enlarged bounds, so the batch comparison pins the appender's
// frame explicitly via WithGeometry — the same discipline snapshot restores
// use.
func TestAppendEquivalenceGeodesic(t *testing.T) {
	trs := synth.GPSTracks(3, 10, 25, 7)
	ctx := context.Background()
	cfg := traclus.Config{Eps: 150, MinLns: 5, MinSegmentLength: 100}
	for _, kind := range appendBackends {
		for _, workers := range []int{1, 0} {
			cfg.Index, cfg.Workers = kind, workers
			base, chunks := appendChunks(trs, len(trs)-8)
			ap, err := traclus.New(
				traclus.WithConfig(cfg),
				traclus.WithGeometry(traclus.GeodesicGeometry()),
			).NewAppender(ctx, base)
			if err != nil {
				t.Fatalf("index=%v workers=%d: NewAppender: %v", kind, workers, err)
			}
			pinned := ap.Result().Geometry() // geodesic + the resolved frame
			if pinned.Frame == nil {
				t.Fatal("appender resolved no frame")
			}
			sofar := base
			for ci, chunk := range chunks {
				res, err := ap.Append(ctx, chunk)
				if err != nil {
					t.Fatalf("index=%v workers=%d append %d: %v", kind, workers, ci, err)
				}
				sofar = append(sofar[:len(sofar):len(sofar)], chunk...)
				batch, err := traclus.New(
					traclus.WithConfig(cfg),
					traclus.WithGeometry(pinned),
				).Run(ctx, sofar)
				if err != nil {
					t.Fatal(err)
				}
				if a, b := appendFingerprint(res), appendFingerprint(batch); a != b {
					t.Errorf("index=%v workers=%d after append %d: fingerprint %s (append-built) vs %s (batch-built, pinned frame)",
						kind, workers, ci, a, b)
				}
			}
		}
	}
}

// TestAppendOrderInvariance: any way of slicing the same tail into appends
// lands on the same canonical clustering (the fuzz target pins arbitrary
// permutations; this is the deterministic core of it).
func TestAppendOrderInvariance(t *testing.T) {
	trs := equivalenceWorkload(t, 80)
	ctx := context.Background()
	cfg := traclus.Config{Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40}
	schedules := [][]int{{20}, {1, 19}, {19, 1}, {7, 7, 6}, {1, 1, 1, 17}}
	var want string
	for si, sched := range schedules {
		ap, err := traclus.New(traclus.WithConfig(cfg)).NewAppender(ctx, trs[:60])
		if err != nil {
			t.Fatal(err)
		}
		at := 60
		var res *traclus.Result
		for _, n := range sched {
			if res, err = ap.Append(ctx, trs[at:at+n]); err != nil {
				t.Fatal(err)
			}
			at += n
		}
		fp := appendFingerprint(res)
		if si == 0 {
			want = fp
			continue
		}
		if fp != want {
			t.Errorf("schedule %v: fingerprint %s, want %s (schedule %v)", sched, fp, want, schedules[0])
		}
	}
}

// TestAppendGuards: the typed-error surface of the append path.
func TestAppendGuards(t *testing.T) {
	ctx := context.Background()
	trs := equivalenceWorkload(t, 20)
	cfg := traclus.Config{Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40}

	// Custom grouping stages have no incremental form.
	_, err := traclus.New(
		traclus.WithConfig(cfg),
		traclus.WithGrouper(traclus.GroupOPTICS()),
	).NewAppender(ctx, trs)
	if err == nil {
		t.Fatal("NewAppender accepted a custom Grouper")
	}

	// A spatial appender rejects AppendTimed and vice versa.
	ap, err := traclus.New(traclus.WithConfig(cfg)).NewAppender(ctx, trs[:10])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.AppendTimed(ctx, timedWorkload(t, 4)); err == nil {
		t.Fatal("spatial appender accepted AppendTimed")
	}
	tap, err := traclus.New(traclus.WithConfig(cfg), traclus.WithTemporalWeight(0)).
		NewTimedAppender(ctx, timedWorkload(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tap.Append(ctx, trs[:2]); err == nil {
		t.Fatal("timed appender accepted Append")
	}

	// Empty appends are free and return the current result unchanged.
	before := appendFingerprint(ap.Result())
	res, err := ap.Append(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if appendFingerprint(res) != before {
		t.Fatal("empty append changed the result")
	}

	// Spatiotemporal geometry demands the timed entry point.
	var cfgErr *traclus.ConfigError
	_, err = traclus.New(traclus.WithConfig(cfg), traclus.WithTemporalWeight(0.5)).NewAppender(ctx, trs)
	if !errors.As(err, &cfgErr) {
		t.Fatalf("NewAppender under spatiotemporal geometry: %v, want *ConfigError", err)
	}
}

// TestAppendDendrogramInvalidated: an appended Result must never carry the
// pre-append dendrogram — its cuts describe the old item set.
func TestAppendDendrogramInvalidated(t *testing.T) {
	ctx := context.Background()
	trs := equivalenceWorkload(t, 60)
	ap, err := traclus.New(
		traclus.WithConfig(traclus.Config{CostAdvantage: 15, MinSegmentLength: 40}),
		traclus.WithEstimation(5, 60),
	).NewAppender(ctx, trs[:50])
	if err != nil {
		t.Fatal(err)
	}
	first := ap.Result()
	if first.Dendrogram() == nil {
		t.Fatal("estimation build carries no dendrogram")
	}
	if first.Estimated == nil {
		t.Fatal("estimation build reports no estimate")
	}
	res, err := ap.Append(ctx, trs[50:])
	if err != nil {
		t.Fatal(err)
	}
	if res.Dendrogram() != nil {
		t.Fatal("appended result still carries the pre-append dendrogram")
	}
	if res.Estimated == nil || *res.Estimated != *first.Estimated {
		t.Fatal("appended result dropped the build-time estimate")
	}
	if res.TotalSegments <= first.TotalSegments {
		t.Fatalf("append did not grow the item set: %d -> %d", first.TotalSegments, res.TotalSegments)
	}
}
