package traclus

import (
	"context"
	"fmt"

	"repro/internal/embed"
	"repro/internal/lsdist"
	"repro/internal/temporal"
)

// This file exposes the paper's extensions (Section 7.1) through the public
// API: spatiotemporal clustering of timestamped trajectories and the
// constant-shift embedding of the non-metric distance (Section 4.2's
// deferred future work).

// TimedTrajectory is a trajectory whose points carry timestamps.
type TimedTrajectory = temporal.TimedTrajectory

// Interval is a closed time interval.
type Interval = temporal.Interval

// TimedCluster is a spatiotemporal cluster: the usual TRACLUS cluster plus
// the time window its member partitions span.
type TimedCluster struct {
	Segments       []Segment
	Trajectories   []int
	Representative []Point
	Window         Interval
}

// TimedResult is the outcome of RunTimed.
type TimedResult struct {
	Clusters      []TimedCluster
	NoiseSegments int
	TotalSegments int
}

// RunTimed executes spatiotemporal TRACLUS: the clustering distance gains a
// temporal component wT·gap(interval_i, interval_j), so segments traversed
// at disjoint times separate even when they coincide spatially.
// temporalWeight = 0 reduces exactly to plain TRACLUS.
//
// Since the geometry layer landed this is a thin facade over the indexed,
// parallel Pipeline — New(WithConfig(cfg), WithTemporalWeight(w)).RunTimed —
// rather than the reference full-scan in internal/temporal (which survives
// as that path's cross-check). New code should use the Pipeline directly:
// it additionally exposes cancellation, progress, estimation, and the full
// Result surface (dendrograms, classification, snapshots).
func RunTimed(trs []TimedTrajectory, cfg Config, temporalWeight float64) (*TimedResult, error) {
	res, err := New(WithConfig(cfg), WithTemporalWeight(temporalWeight)).
		RunTimed(context.Background(), trs)
	if err != nil {
		return nil, err
	}
	out := &TimedResult{NoiseSegments: res.NoiseSegments, TotalSegments: res.TotalSegments}
	for i, c := range res.Clusters {
		out.Clusters = append(out.Clusters, TimedCluster{
			Segments:       c.Segments,
			Trajectories:   c.Trajectories,
			Representative: c.Representative,
			Window:         res.ClusterWindows()[i],
		})
	}
	return out, nil
}

// Embedding is a constant-shift embedding of a segment set into a metric
// (Euclidean) space: for i ≠ j, the embedded squared distance equals the
// TRACLUS distance plus the constant Shift, preserving every distance
// comparison while restoring the triangle inequality.
type Embedding struct {
	res *embed.Result
}

// Shift is the constant added to every off-diagonal distance.
func (e *Embedding) Shift() float64 { return e.res.Shift }

// Dims is the dimensionality of the embedding.
func (e *Embedding) Dims() int { return e.res.Dims }

// Coord returns the embedded coordinate vector of segment i.
func (e *Embedding) Coord(i int) []float64 { return e.res.Coords[i] }

// Distance2 is the squared Euclidean distance between embedded segments.
func (e *Embedding) Distance2(i, j int) float64 { return e.res.Distance2(i, j) }

// EmbedSegments computes the constant-shift embedding of a segment set
// under the config's distance options (Roth et al., reference [18] of the
// paper). dims ≤ 0 keeps all dimensions (lossless); positive dims truncates
// to the leading ones. O(n³) — intended for moderate segment sets.
func EmbedSegments(segs []Segment, cfg Config, dims int) (*Embedding, error) {
	w := cfg.Weights
	if (w == Weights{}) {
		w = lsdist.DefaultWeights()
	}
	res, err := embed.EmbedSegments(segs, lsdist.Options{Weights: w, Undirected: cfg.Undirected}, dims)
	if err != nil {
		return nil, fmt.Errorf("traclus: %w", err)
	}
	return &Embedding{res: res}, nil
}
