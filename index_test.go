package traclus_test

// Cross-backend equivalence suite for the unified index subsystem
// (internal/spindex): every backend — the three first-class ones, reached
// either through the Config.Index compatibility shim or WithIndexBackend,
// and custom plug-ins — must produce the identical clustering, through the
// package facade and through the Pipeline, at every worker count. Also pins
// the single-build data flow of WithEstimation and the custom-backend
// contract end-to-end.

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/spindex"

	traclus "repro"
)

var indexSuiteConfig = traclus.Config{
	Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40,
}

// TestBackendEquivalenceSuite: Grid ≡ RTree ≡ Brute through the facade and
// the Pipeline, Workers {1, 4, all}. Within one backend, the kind shim and
// the explicit backend option must agree bit-for-bit (DistCalls included);
// across backends the clusterings must agree (DistCalls legitimately
// differ between pruned and exhaustive candidate generation).
func TestBackendEquivalenceSuite(t *testing.T) {
	trs := equivalenceWorkload(t, 120)
	backends := []struct {
		kind    traclus.IndexKind
		backend traclus.IndexBackend
	}{
		{traclus.IndexGrid, traclus.GridIndexBackend()},
		{traclus.IndexRTree, traclus.RTreeIndexBackend()},
		{traclus.IndexNone, traclus.BruteIndexBackend()},
	}
	for _, workers := range []int{1, 4, 0} {
		var ref *traclus.Result
		for _, b := range backends {
			cfg := indexSuiteConfig
			cfg.Index = b.kind
			cfg.Workers = workers
			viaKind, err := traclus.Run(trs, cfg)
			if err != nil {
				t.Fatalf("kind=%v workers=%d: %v", b.kind, workers, err)
			}
			viaBackend, err := traclus.New(
				traclus.WithConfig(indexSuiteConfig),
				traclus.WithWorkers(workers),
				traclus.WithIndexBackend(b.backend),
			).Run(context.Background(), trs)
			if err != nil {
				t.Fatalf("backend=%s workers=%d: %v", b.backend.Name(), workers, err)
			}
			if !reflect.DeepEqual(viaKind.Clusters, viaBackend.Clusters) {
				t.Errorf("backend=%s workers=%d: WithIndexBackend clusters differ from Config.Index", b.backend.Name(), workers)
			}
			if viaKind.DistCalls() != viaBackend.DistCalls() {
				t.Errorf("backend=%s workers=%d: DistCalls differ: kind=%d backend=%d",
					b.backend.Name(), workers, viaKind.DistCalls(), viaBackend.DistCalls())
			}
			if ref == nil {
				ref = viaKind
				continue
			}
			if !reflect.DeepEqual(ref.Clusters, viaKind.Clusters) {
				t.Errorf("workers=%d: backend %s clusters differ from %s", workers, b.backend.Name(), backends[0].backend.Name())
			}
			if ref.NoiseSegments != viaKind.NoiseSegments || ref.RemovedClusters != viaKind.RemovedClusters {
				t.Errorf("workers=%d: backend %s noise/removed (%d,%d) differ from (%d,%d)",
					workers, b.backend.Name(), viaKind.NoiseSegments, viaKind.RemovedClusters,
					ref.NoiseSegments, ref.RemovedClusters)
			}
		}
	}
}

// exhaustiveMBRBackend is a custom backend written against the public
// surface only (traclus.IndexBackend / SegmentIndex / IndexQuery /
// Segment / Rect): it answers Within by scanning every MBR exactly. Its
// candidate sets therefore equal the built-in grid/R-tree ones, so a run
// through it must match the default bit-for-bit, DistCalls included.
type exhaustiveMBRBackend struct {
	builds  *atomic.Int64
	queries *atomic.Int64
}

func (b exhaustiveMBRBackend) Name() string { return "exhaustive-mbr" }

func (b exhaustiveMBRBackend) Build(segs []traclus.Segment) traclus.SegmentIndex {
	b.builds.Add(1)
	rects := make([]traclus.Rect, len(segs))
	for i, s := range segs {
		rects[i] = s.Bounds()
	}
	return &exhaustiveMBRIndex{rects: rects, queries: b.queries}
}

type exhaustiveMBRIndex struct {
	rects   []traclus.Rect
	queries *atomic.Int64
}

func (x *exhaustiveMBRIndex) Len() int { return len(x.rects) }

func (x *exhaustiveMBRIndex) Query() traclus.IndexQuery { return exhaustiveMBRQuery{x} }

type exhaustiveMBRQuery struct{ x *exhaustiveMBRIndex }

func (q exhaustiveMBRQuery) Within(rect traclus.Rect, r float64, dst []int) []int {
	q.x.queries.Add(1)
	for i, rc := range q.x.rects {
		if rc.DistRect(rect) <= r {
			dst = append(dst, i)
		}
	}
	return dst
}

// TestCustomIndexBackendPlugin pins the WithIndexBackend plug-in path: a
// custom backend is actually built and queried, serves the grouping AND the
// classifier built from the result, and reproduces the default clustering
// bit-for-bit.
func TestCustomIndexBackendPlugin(t *testing.T) {
	trs := equivalenceWorkload(t, 60)
	cfg := indexSuiteConfig
	for _, workers := range []int{1, 0} {
		want, err := traclus.Run(trs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		custom := exhaustiveMBRBackend{builds: new(atomic.Int64), queries: new(atomic.Int64)}
		got, err := traclus.New(
			traclus.WithConfig(cfg),
			traclus.WithWorkers(workers),
			traclus.WithIndexBackend(custom),
		).Run(context.Background(), trs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if custom.builds.Load() != 1 {
			t.Errorf("workers=%d: custom backend built %d times during the run, want 1", workers, custom.builds.Load())
		}
		if custom.queries.Load() == 0 {
			t.Errorf("workers=%d: custom backend never queried", workers)
		}
		if !reflect.DeepEqual(want.Clusters, got.Clusters) {
			t.Errorf("workers=%d: custom-backend clusters differ from default", workers)
		}
		if want.DistCalls() != got.DistCalls() {
			t.Errorf("workers=%d: DistCalls differ: default=%d custom=%d", workers, want.DistCalls(), got.DistCalls())
		}
		// The classifier must index its reference segments through the same
		// plugged backend: one more build, and queries keep flowing.
		if _, _, err := got.Classify(trs[0]); err != nil {
			t.Fatalf("workers=%d: classify: %v", workers, err)
		}
		if custom.builds.Load() != 2 {
			t.Errorf("workers=%d: builds after classify = %d, want 2 (items + reference segments)", workers, custom.builds.Load())
		}
	}
}

// TestWithEstimationMatchesSeparateEstimate: a WithEstimation run must
// reproduce the EstimateParameters-then-Run composite bit-for-bit — same
// estimate, same clustering — while building exactly ONE index over the
// pooled segments where the composite builds two.
func TestWithEstimationMatchesSeparateEstimate(t *testing.T) {
	trs := equivalenceWorkload(t, 60)
	base := traclus.Config{CostAdvantage: 15, MinSegmentLength: 40}
	est, err := traclus.EstimateParameters(trs, 5, 60, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Eps = est.Eps
	cfg.MinLns = float64(est.MinLnsLo+est.MinLnsHi) / 2
	want, err := traclus.Run(trs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	before := spindex.Builds()
	got, err := traclus.New(
		traclus.WithConfig(base),
		traclus.WithEstimation(5, 60),
	).Run(context.Background(), trs)
	if err != nil {
		t.Fatal(err)
	}
	if builds := spindex.Builds() - before; builds != 1 {
		t.Errorf("WithEstimation run built %d indexes over the segments, want 1 (shared by estimation and grouping)", builds)
	}
	if got.Estimated == nil {
		t.Fatal("Result.Estimated is nil on a WithEstimation run")
	}
	if *got.Estimated != est {
		t.Errorf("Result.Estimated = %+v, want %+v", *got.Estimated, est)
	}
	if !reflect.DeepEqual(want.Clusters, got.Clusters) {
		t.Error("WithEstimation clusters differ from the estimate-then-run composite")
	}
	if want.DistCalls() != got.DistCalls() {
		t.Errorf("grouping DistCalls differ: composite=%d shared=%d", want.DistCalls(), got.DistCalls())
	}
}

// TestWithEstimationProgressPhases: the estimate phase streams between
// partition and group, with the usual 0→1 monotone fractions.
func TestWithEstimationProgressPhases(t *testing.T) {
	trs := equivalenceWorkload(t, 30)
	var order []traclus.Phase
	var estEvents int
	lastFrac := -1.0
	_, err := traclus.New(
		traclus.WithConfig(traclus.Config{CostAdvantage: 15, MinSegmentLength: 40}),
		traclus.WithEstimation(5, 60),
		traclus.WithProgress(func(ev traclus.ProgressEvent) {
			if len(order) == 0 || order[len(order)-1] != ev.Phase {
				order = append(order, ev.Phase)
				lastFrac = -1
			}
			if ev.Fraction < lastFrac {
				t.Errorf("phase %v: fraction regressed %v -> %v", ev.Phase, lastFrac, ev.Fraction)
			}
			lastFrac = ev.Fraction
			if ev.Phase == traclus.PhaseEstimate {
				estEvents++
			}
		}),
	).Run(context.Background(), trs)
	if err != nil {
		t.Fatal(err)
	}
	want := []traclus.Phase{traclus.PhasePartition, traclus.PhaseEstimate, traclus.PhaseGroup, traclus.PhaseRepresent}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("phase order = %v, want %v", order, want)
	}
	if estEvents < 2 {
		t.Errorf("estimate phase emitted %d events, want at least begin+complete", estEvents)
	}
}

// TestWithEstimationValidation: estimation runs still reject malformed
// non-estimated fields with the typed error, and bad search bounds fail
// fast.
func TestWithEstimationValidation(t *testing.T) {
	trs := equivalenceWorkload(t, 20)
	_, err := traclus.New(
		traclus.WithConfig(traclus.Config{CostAdvantage: -1}),
		traclus.WithEstimation(5, 60),
	).Run(context.Background(), trs)
	var cerr *traclus.ConfigError
	if !errors.As(err, &cerr) {
		t.Fatalf("negative CostAdvantage under estimation: got %v, want *ConfigError", err)
	}
	_, err = traclus.New(
		traclus.WithConfig(traclus.Config{}),
		traclus.WithEstimation(60, 5),
	).Run(context.Background(), trs)
	if !errors.As(err, &cerr) {
		t.Fatalf("inverted estimation bounds: got %v, want *ConfigError", err)
	}
}

// TestParseIndexKind covers the shared name → kind mapping and its typed
// error.
func TestParseIndexKind(t *testing.T) {
	for name, want := range map[string]traclus.IndexKind{
		"grid": traclus.IndexGrid, "rtree": traclus.IndexRTree,
		"brute": traclus.IndexNone, "scan": traclus.IndexNone, "none": traclus.IndexNone,
		"GRID": traclus.IndexGrid, " rtree ": traclus.IndexRTree,
	} {
		got, err := traclus.ParseIndexKind(name)
		if err != nil || got != want {
			t.Errorf("ParseIndexKind(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	_, err := traclus.ParseIndexKind("kdtree")
	var cerr *traclus.ConfigError
	if !errors.As(err, &cerr) {
		t.Fatalf("ParseIndexKind(kdtree) error = %v, want *ConfigError", err)
	}
}
