// Command traclus clusters a trajectory file with the TRACLUS algorithm
// and reports the discovered clusters and their representative trajectories
// (the common sub-trajectories).
//
// Usage:
//
//	traclus -in tracks.csv [-format csv|besttrack|telemetry] [-species elk]
//	        [-eps 30] [-minlns 6] [-auto] [-undirected]
//	        [-cost-advantage 0] [-min-seg-len 0] [-workers 0]
//	        [-index grid|rtree|brute]
//	        [-svg out.svg] [-reps reps.csv] [-map] [-progress]
//
// With -auto the ε/MinLns heuristic of the paper's Section 4.4 is applied
// (entropy-minimising ε via simulated annealing, MinLns = avg|Nε|+2) and
// the chosen values are printed before clustering; estimation and grouping
// share one spatial index build. -index selects the ε-neighborhood backend
// (uniform grid, R-tree, or the exhaustive O(n²) scan); every backend
// produces the identical clustering. With -progress the
// pipeline's phase/fraction stream is echoed to stderr. Interrupting the
// process (SIGINT/SIGTERM) cancels the clustering cooperatively — the run
// stops within one work item instead of finishing the batch.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/trackio"

	traclus "repro"
)

// errReported marks parse errors the FlagSet already printed to stderr, so
// main exits without printing them a second time.
var errReported = errors.New("flag error already reported")

// options is the parsed command line. parseOptions and run are separated
// from main so tests can drive flag parsing and whole runs in-process.
type options struct {
	in       string
	format   trackio.Format
	species  string
	auto     bool
	svgOut   string
	repsOut  string
	asciiMap bool
	progress bool
	cfg      traclus.Config
}

// parseOptions parses args (without the program name) into options. Flag
// errors and usage output go to stderr. The input format is resolved here:
// detected from the file extension, overridden by -format.
func parseOptions(args []string, stderr io.Writer) (*options, error) {
	fs := flag.NewFlagSet("traclus", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input trajectory file (required)")
	format := fs.String("format", "", "input format: csv, besttrack, or telemetry (default: by extension)")
	species := fs.String("species", "", "species filter for telemetry input")
	eps := fs.Float64("eps", 30, "ε-neighborhood radius")
	minLns := fs.Float64("minlns", 6, "MinLns density threshold")
	auto := fs.Bool("auto", false, "estimate eps and MinLns with the Section 4.4 heuristic")
	undirected := fs.Bool("undirected", false, "ignore segment direction in the angle distance")
	costAdv := fs.Float64("cost-advantage", 0, "partition suppression constant (Section 4.1.3)")
	minSegLen := fs.Float64("min-seg-len", 0, "drop trajectory partitions shorter than this")
	workers := fs.Int("workers", 0, "parallelism for all pipeline phases (0 = all CPUs, 1 = serial)")
	index := fs.String("index", "grid", "spatial-index backend: grid, rtree, or brute")
	svgOut := fs.String("svg", "", "write an SVG rendering of the clustering here")
	repsOut := fs.String("reps", "", "write representative trajectories as CSV here")
	asciiMap := fs.Bool("map", false, "print an ASCII map of the result")
	progress := fs.Bool("progress", false, "echo pipeline phase/fraction progress to stderr")
	if err := fs.Parse(args); err != nil {
		// fs already reported the problem (and usage) to stderr.
		return nil, errors.Join(errReported, err)
	}
	if *in == "" {
		fs.Usage()
		return nil, fmt.Errorf("-in is required")
	}
	f := trackio.DetectFormat(*in)
	if *format != "" {
		var err error
		if f, err = trackio.ParseFormat(*format); err != nil {
			return nil, err
		}
	}
	kind, err := traclus.ParseIndexKind(*index)
	if err != nil {
		return nil, err
	}
	opts := &options{
		in:       *in,
		format:   f,
		species:  *species,
		auto:     *auto,
		svgOut:   *svgOut,
		repsOut:  *repsOut,
		asciiMap: *asciiMap,
		progress: *progress,
		cfg: traclus.Config{
			Eps:              *eps,
			MinLns:           *minLns,
			Undirected:       *undirected,
			CostAdvantage:    *costAdv,
			MinSegmentLength: *minSegLen,
			Index:            kind,
			Workers:          *workers,
		},
	}
	if !opts.auto {
		if err := opts.cfg.Validate(); err != nil {
			return nil, err
		}
	}
	return opts, nil
}

func main() {
	opts, err := parseOptions(os.Args[1:], os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		os.Exit(0) // -h is a success, matching the previous ExitOnError behavior
	}
	if err != nil {
		// Usage errors exit 2 (the flag-package convention the previous
		// ExitOnError code followed); runtime failures below exit 1.
		if !errors.Is(err, errReported) {
			fmt.Fprintln(os.Stderr, "traclus:", err)
		}
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts, os.Stdout); err != nil {
		fatal(err)
	}
}

// run executes the clustering described by opts, reporting to out. A done
// ctx aborts the pipeline cooperatively and surfaces ctx.Err().
func run(ctx context.Context, opts *options, out io.Writer) error {
	trs, err := trackio.ReadFile(opts.in, opts.format, opts.species)
	if err != nil {
		return err
	}
	if len(trs) == 0 {
		return fmt.Errorf("no trajectories in %s", opts.in)
	}
	fmt.Fprintf(out, "loaded %d trajectories, %d points\n", len(trs), geom.TotalPoints(trs))

	cfg := opts.cfg
	popts := []traclus.Option{traclus.WithConfig(cfg)}
	if opts.auto {
		// One pipeline run estimates ε/MinLns and clusters, sharing a
		// single spatial-index build between the two phases.
		popts = append(popts, traclus.WithEstimation(traclus.DefaultEstimationRange(trs)))
	}
	if opts.progress {
		popts = append(popts, traclus.WithProgress(func(ev traclus.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "traclus: %-9s %3.0f%% (%d/%d)\n",
				ev.Phase, ev.Fraction*100, ev.Done, ev.Total)
		}))
	}
	res, err := traclus.New(popts...).Run(ctx, trs)
	if err != nil {
		return err
	}
	if est := res.Estimated; est != nil {
		fmt.Fprintf(out, "heuristic: eps=%.2f (entropy %.4f, avg|Neps|=%.2f), MinLns=%.0f (range %d..%d)\n",
			est.Eps, est.Entropy, est.AvgNeighbors, float64(est.MinLnsLo+est.MinLnsHi)/2, est.MinLnsLo, est.MinLnsHi)
	}
	fmt.Fprintf(out, "clusters=%d segments=%d noise=%d removed=%d\n",
		len(res.Clusters), res.TotalSegments, res.NoiseSegments, res.RemovedClusters)
	var reps [][]traclus.Point
	for i, c := range res.Clusters {
		fmt.Fprintf(out, "cluster %d: %d segments from %d trajectories, representative has %d points\n",
			i, len(c.Segments), len(c.Trajectories), len(c.Representative))
		reps = append(reps, c.Representative)
	}

	if opts.asciiMap {
		fmt.Fprintln(out, render.ClusterMap(110, 34, trs, reps))
	}
	if opts.svgOut != "" {
		if err := os.WriteFile(opts.svgOut, []byte(render.ClusterSVG(trs, reps)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", opts.svgOut)
	}
	if opts.repsOut != "" {
		var repTrs []geom.Trajectory
		for i, rep := range reps {
			repTrs = append(repTrs, geom.Trajectory{ID: i, Weight: 1, Points: rep})
		}
		f, err := os.Create(opts.repsOut)
		if err != nil {
			return err
		}
		if err := trackio.WriteCSV(f, repTrs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", opts.repsOut)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traclus:", err)
	os.Exit(1)
}
