// Command traclus clusters a trajectory file with the TRACLUS algorithm
// and reports the discovered clusters and their representative trajectories
// (the common sub-trajectories).
//
// Usage:
//
//	traclus -in tracks.csv [-format csv|besttrack|telemetry] [-species elk]
//	        [-eps 30] [-minlns 6] [-auto] [-undirected]
//	        [-cost-advantage 0] [-min-seg-len 0] [-workers 0]
//	        [-svg out.svg] [-reps reps.csv] [-map]
//
// With -auto the ε/MinLns heuristic of the paper's Section 4.4 is applied
// (entropy-minimising ε via simulated annealing, MinLns = avg|Nε|+2) and
// the chosen values are printed before clustering.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/trackio"

	traclus "repro"
)

func main() {
	in := flag.String("in", "", "input trajectory file (required)")
	format := flag.String("format", "", "input format: csv, besttrack, or telemetry (default: by extension)")
	species := flag.String("species", "", "species filter for telemetry input")
	eps := flag.Float64("eps", 30, "ε-neighborhood radius")
	minLns := flag.Float64("minlns", 6, "MinLns density threshold")
	auto := flag.Bool("auto", false, "estimate eps and MinLns with the Section 4.4 heuristic")
	undirected := flag.Bool("undirected", false, "ignore segment direction in the angle distance")
	costAdv := flag.Float64("cost-advantage", 0, "partition suppression constant (Section 4.1.3)")
	minSegLen := flag.Float64("min-seg-len", 0, "drop trajectory partitions shorter than this")
	workers := flag.Int("workers", 0, "parallelism for all pipeline phases (0 = all CPUs, 1 = serial)")
	svgOut := flag.String("svg", "", "write an SVG rendering of the clustering here")
	repsOut := flag.String("reps", "", "write representative trajectories as CSV here")
	asciiMap := flag.Bool("map", false, "print an ASCII map of the result")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "traclus: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f := trackio.DetectFormat(*in)
	if *format != "" {
		var err error
		if f, err = trackio.ParseFormat(*format); err != nil {
			fatal(err)
		}
	}
	trs, err := trackio.ReadFile(*in, f, *species)
	if err != nil {
		fatal(err)
	}
	if len(trs) == 0 {
		fatal(fmt.Errorf("no trajectories in %s", *in))
	}
	fmt.Printf("loaded %d trajectories, %d points\n", len(trs), geom.TotalPoints(trs))

	cfg := traclus.Config{
		Eps:              *eps,
		MinLns:           *minLns,
		Undirected:       *undirected,
		CostAdvantage:    *costAdv,
		MinSegmentLength: *minSegLen,
		Workers:          *workers,
	}
	if *auto {
		bounds, _ := geom.BoundsOf(trs)
		hi := bounds.Margin() / 10
		if hi <= 1 {
			hi = 10
		}
		est, err := traclus.EstimateParameters(trs, hi/60, hi, cfg)
		if err != nil {
			fatal(err)
		}
		cfg.Eps = est.Eps
		cfg.MinLns = float64(est.MinLnsLo+est.MinLnsHi) / 2
		fmt.Printf("heuristic: eps=%.2f (entropy %.4f, avg|Neps|=%.2f), MinLns=%.0f (range %d..%d)\n",
			est.Eps, est.Entropy, est.AvgNeighbors, cfg.MinLns, est.MinLnsLo, est.MinLnsHi)
	}

	res, err := traclus.Run(trs, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("clusters=%d segments=%d noise=%d removed=%d\n",
		len(res.Clusters), res.TotalSegments, res.NoiseSegments, res.RemovedClusters)
	var reps [][]traclus.Point
	for i, c := range res.Clusters {
		fmt.Printf("cluster %d: %d segments from %d trajectories, representative has %d points\n",
			i, len(c.Segments), len(c.Trajectories), len(c.Representative))
		reps = append(reps, c.Representative)
	}

	if *asciiMap {
		fmt.Println(render.ClusterMap(110, 34, trs, reps))
	}
	if *svgOut != "" {
		if err := os.WriteFile(*svgOut, []byte(render.ClusterSVG(trs, reps)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgOut)
	}
	if *repsOut != "" {
		var repTrs []geom.Trajectory
		for i, rep := range reps {
			repTrs = append(repTrs, geom.Trajectory{ID: i, Weight: 1, Points: rep})
		}
		f, err := os.Create(*repsOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trackio.WriteCSV(f, repTrs); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *repsOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traclus:", err)
	os.Exit(1)
}
