package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/synth"
	"repro/internal/trackio"

	traclus "repro"
)

func TestParseOptionsDefaults(t *testing.T) {
	opts, err := parseOptions([]string{"-in", "tracks.csv"}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if opts.in != "tracks.csv" || opts.format != trackio.FormatCSV {
		t.Errorf("in=%q format=%q", opts.in, opts.format)
	}
	if opts.cfg.Eps != 30 || opts.cfg.MinLns != 6 || opts.cfg.Workers != 0 {
		t.Errorf("default cfg = %+v", opts.cfg)
	}
	if opts.auto || opts.asciiMap || opts.svgOut != "" || opts.repsOut != "" {
		t.Errorf("default outputs = %+v", opts)
	}
}

func TestParseOptionsFormatDetectionAndOverride(t *testing.T) {
	opts, err := parseOptions([]string{"-in", "storms.bt"}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if opts.format != trackio.FormatBestTrack {
		t.Errorf("detected format = %q, want besttrack", opts.format)
	}
	opts, err = parseOptions([]string{"-in", "storms.bt", "-format", "telemetry", "-species", "elk"}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if opts.format != trackio.FormatTelemetry || opts.species != "elk" {
		t.Errorf("override format=%q species=%q", opts.format, opts.species)
	}
}

func TestParseOptionsErrors(t *testing.T) {
	cases := [][]string{
		{},                                     // -in missing
		{"-in", "x.csv", "-format", "bad"},     // unknown format
		{"-in", "x.csv", "-eps", "notnum"},     // unparsable flag
		{"-in", "x.csv", "-eps", "NaN"},        // NaN rejected by typed validation
		{"-in", "x.csv", "-minlns", "-2"},      // negative MinLns
		{"-in", "x.csv", "-unknown-flag"},      // undefined flag
		{"-in", "x.csv", "-min-seg-len", "-1"}, // negative length
	}
	for i, args := range cases {
		var stderr bytes.Buffer
		if _, err := parseOptions(args, &stderr); err == nil {
			t.Errorf("case %d (%v): accepted", i, args)
		}
	}
}

func TestParseOptionsAutoSkipsEpsValidation(t *testing.T) {
	// With -auto, eps/minlns are estimated later; the placeholder values
	// must not be validated at parse time.
	if _, err := parseOptions([]string{"-in", "x.csv", "-auto", "-eps", "0"}, &bytes.Buffer{}); err != nil {
		t.Fatalf("-auto with eps=0 rejected: %v", err)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "tracks.csv")
	trs := synth.CorridorScene(2, 10, 24, 4, 11)
	if err := trackio.WriteFile(in, trackio.FormatCSV, trs); err != nil {
		t.Fatal(err)
	}
	repsOut := filepath.Join(dir, "reps.csv")
	opts, err := parseOptions([]string{
		"-in", in, "-eps", "30", "-minlns", "6",
		"-cost-advantage", "15", "-min-seg-len", "40",
		"-reps", repsOut,
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), opts, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "clusters=2") {
		t.Errorf("output missing clusters=2:\n%s", out.String())
	}
	reps, err := trackio.ReadFile(repsOut, trackio.FormatCSV, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Errorf("wrote %d representatives, want 2", len(reps))
	}
}

func TestRunMissingFile(t *testing.T) {
	opts, err := parseOptions([]string{"-in", filepath.Join(t.TempDir(), "nope.csv")}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), opts, &bytes.Buffer{}); !os.IsNotExist(err) {
		t.Fatalf("err = %v, want not-exist", err)
	}
}

func TestParseOptionsIndexFlag(t *testing.T) {
	for name, want := range map[string]traclus.IndexKind{
		"grid": traclus.IndexGrid, "rtree": traclus.IndexRTree, "brute": traclus.IndexNone,
	} {
		opts, err := parseOptions([]string{"-in", "x.csv", "-index", name}, &bytes.Buffer{})
		if err != nil {
			t.Fatalf("-index %s: %v", name, err)
		}
		if opts.cfg.Index != want {
			t.Errorf("-index %s parsed as %v, want %v", name, opts.cfg.Index, want)
		}
	}
	if _, err := parseOptions([]string{"-in", "x.csv", "-index", "kdtree"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown -index name accepted")
	}
}

// TestRunAutoSharedEstimation drives -auto end-to-end: the heuristic line
// reports the estimate chosen by the run itself (estimation and grouping
// share one index build) before the cluster summary.
func TestRunAutoSharedEstimation(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "tracks.csv")
	if err := trackio.WriteFile(in, trackio.FormatCSV, synth.CorridorScene(2, 10, 24, 4, 11)); err != nil {
		t.Fatal(err)
	}
	opts, err := parseOptions([]string{
		"-in", in, "-auto", "-cost-advantage", "15", "-min-seg-len", "40", "-index", "rtree",
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), opts, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	hi := strings.Index(text, "heuristic: eps=")
	ci := strings.Index(text, "clusters=")
	if hi < 0 || ci < 0 || hi > ci {
		t.Errorf("expected heuristic line before cluster summary:\n%s", text)
	}
}
