// Command experiments regenerates every figure and table-like result of
// the TRACLUS paper's evaluation section (see DESIGN.md §4 for the
// experiment index). For each experiment it prints the series/rows the
// paper reports and writes any SVG figures to the output directory.
//
// Usage:
//
//	experiments [-out DIR] [-size small|full] [-only fig18,fig21]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	out := flag.String("out", "out", "output directory for text reports and SVG figures")
	sizeFlag := flag.String("size", "small", "data scale: small or full")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	flag.Parse()

	size := experiments.Small
	switch *sizeFlag {
	case "small":
	case "full":
		size = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown -size %q (want small or full)\n", *sizeFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	failed := false
	for _, e := range experiments.Registry() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		rep := e.Run(size)
		fmt.Printf("== %s: %s (%.1fs)\n", rep.ID, rep.Title, time.Since(start).Seconds())
		for _, line := range rep.Lines {
			fmt.Println("   " + line)
		}
		text := strings.Join(rep.Lines, "\n") + "\n"
		if err := os.WriteFile(filepath.Join(*out, rep.ID+".txt"), []byte(text), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
		for name, svg := range rep.SVGs {
			if err := os.WriteFile(filepath.Join(*out, name), []byte(svg), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				failed = true
			}
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}
