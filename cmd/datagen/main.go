// Command datagen generates the synthetic trajectory data sets that stand
// in for the paper's hurricane and Starkey telemetry data (DESIGN.md §2)
// and writes them in the corresponding on-disk formats.
//
// Usage:
//
//	datagen -kind hurricanes -out tracks.bt          # Best Track format
//	datagen -kind elk -out elk.tsv                   # telemetry TSV
//	datagen -kind deer -out deer.tsv
//	datagen -kind figure1 -out fig1.csv              # trajectory CSV
//	datagen -kind noise -out noisy.csv -noise 0.25   # corridors + noise
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/geom"
	"repro/internal/synth"
	"repro/internal/trackio"
)

func main() {
	kind := flag.String("kind", "hurricanes", "data set: hurricanes, elk, deer, figure1, noise")
	out := flag.String("out", "", "output file (required)")
	n := flag.Int("n", 0, "override trajectory count (0 = paper scale)")
	points := flag.Int("points", 0, "override points per trajectory (0 = default)")
	seed := flag.Int64("seed", 0, "override RNG seed (0 = default)")
	noise := flag.Float64("noise", 0.25, "noise fraction for -kind noise")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var trs []geom.Trajectory
	var write func(f *os.File) error
	switch *kind {
	case "hurricanes":
		cfg := synth.DefaultHurricaneConfig()
		if *n > 0 {
			cfg.NumTracks = *n
		}
		if *points > 0 {
			cfg.MeanPoints = *points
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		trs = synth.Hurricanes(cfg)
		write = func(f *os.File) error { return trackio.WriteBestTrack(f, trs) }
	case "elk", "deer":
		cfg := synth.ElkConfig()
		if *kind == "deer" {
			cfg = synth.DeerConfig()
		}
		if *n > 0 {
			cfg.NumAnimals = *n
		}
		if *points > 0 {
			cfg.PointsPer = *points
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		trs = synth.AnimalMovements(cfg)
		write = func(f *os.File) error { return trackio.WriteTelemetry(f, trs) }
	case "figure1":
		s := int64(7)
		if *seed != 0 {
			s = *seed
		}
		trs = synth.Figure1(2, s)
		write = func(f *os.File) error { return trackio.WriteCSV(f, trs) }
	case "noise":
		per, pts, s := 12, 26, int64(21)
		if *n > 0 {
			per = *n
		}
		if *points > 0 {
			pts = *points
		}
		if *seed != 0 {
			s = *seed
		}
		base := synth.CorridorScene(4, per, pts, 4, s)
		trs = synth.MixNoise(base, *noise, pts, s+1)
		write = func(f *os.File) error { return trackio.WriteCSV(f, trs) }
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown -kind %q\n", *kind)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d trajectories (%d points) to %s\n", len(trs), geom.TotalPoints(trs), *out)
}
