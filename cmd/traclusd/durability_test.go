package main

// The durability acceptance test: a model built by one daemon process is
// served by the next one started on the same -data-dir with ZERO rebuilds
// — the injected build function would fail the test if called, and the
// spatial-index build counter pins that loading constructed exactly one
// index (the classifier's) and ran no clustering.

import (
	"context"
	"net/http"
	"testing"

	"repro/internal/service"
	"repro/internal/spindex"

	traclus "repro"
)

func TestRestartServesWithoutRebuild(t *testing.T) {
	dir := t.TempDir()
	_, csv := trainingCSV(t)

	// First daemon: build, then let the write-behind snapshot land.
	s1, ts1 := testServer(t, serverConfig{workers: 1, dataDir: dir})
	v1Build(t, ts1.URL, BuildRequest{
		Name: "durable",
		Data: csv,
		Config: BuildConfig{Eps: f64(30), MinLns: f64(6),
			CostAdvantage: f64(15), MinSegmentLength: f64(40)},
	})
	var want struct {
		Results []service.Assignment `json:"results"`
	}
	if code := doJSON(t, http.MethodPost, ts1.URL+"/v1/models/durable/classify", csv, &want); code != http.StatusOK {
		t.Fatalf("classify on first daemon = %d", code)
	}
	s1.store.Quiesce()
	if err := s1.store.SaveErr(); err != nil {
		t.Fatalf("write-behind save failed: %v", err)
	}
	ts1.Close()

	// Second daemon on the same directory: any clustering run fails the
	// test via the injected builder.
	s2, ts2 := testServer(t, serverConfig{
		workers: 1,
		dataDir: dir,
		buildModel: func(context.Context, string, []traclus.Trajectory, traclus.Config, *service.EstimateRange, func(string, float64)) (*service.Model, error) {
			t.Error("restarted daemon ran a model build")
			return nil, context.Canceled
		},
	})

	indexesBefore := spindex.Builds()
	var got struct {
		Results []service.Assignment `json:"results"`
	}
	if code := doJSON(t, http.MethodPost, ts2.URL+"/v1/models/durable/classify", csv, &got); code != http.StatusOK {
		t.Fatalf("classify after restart = %d", code)
	}
	// Loading the snapshot builds exactly the classifier's reference index:
	// one spindex build, zero clustering passes.
	if n := spindex.Builds() - indexesBefore; n != 1 {
		t.Errorf("restart load constructed %d spatial indexes, want 1", n)
	}
	if s2.store.Loads() != 1 {
		t.Errorf("disk loads = %d, want 1", s2.store.Loads())
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%d results after restart, want %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if got.Results[i] != want.Results[i] {
			t.Fatalf("result %d differs after restart: %+v vs %+v", i, got.Results[i], want.Results[i])
		}
	}

	// Summary and repeat classifies serve from the now-warm cache: no
	// further disk loads, no index builds.
	indexesBefore = spindex.Builds()
	if code := doJSON(t, http.MethodGet, ts2.URL+"/v1/models/durable", "", nil); code != http.StatusOK {
		t.Fatalf("GET after restart = %d", code)
	}
	if code := doJSON(t, http.MethodPost, ts2.URL+"/v1/models/durable/classify", csv, nil); code != http.StatusOK {
		t.Fatalf("second classify = %d", code)
	}
	if n := spindex.Builds() - indexesBefore; n != 0 {
		t.Errorf("warm serving constructed %d indexes, want 0", n)
	}
	if s2.store.Loads() != 1 {
		t.Errorf("warm serving re-read disk: loads = %d", s2.store.Loads())
	}

	// A rebuild POST for the durable name is an explicit cache hit, not a
	// silent rebuild.
	var hit struct {
		Cached bool `json:"cached"`
	}
	if code := doJSON(t, http.MethodPost, ts2.URL+"/models?name=durable&eps=30&minlns=6", csv, &hit); code != http.StatusOK || !hit.Cached {
		t.Fatalf("POST for durable name = %d cached=%v, want 200 cached=true", code, hit.Cached)
	}

	// DELETE removes cache and file; the name 404s afterwards even with
	// the data dir present.
	if code := doJSON(t, http.MethodDelete, ts2.URL+"/v1/models/durable", "", nil); code != http.StatusOK {
		t.Fatalf("DELETE = %d", code)
	}
	if code := doJSON(t, http.MethodGet, ts2.URL+"/v1/models/durable", "", nil); code != http.StatusNotFound {
		t.Fatalf("GET after DELETE = %d, want 404", code)
	}
}
