package main

// Snapshot export/import: GET hands out the model's versioned binary
// snapshot (the same bytes the disk store persists), PUT rebuilds a model
// from uploaded snapshot bytes and installs it — the transfer format for
// backups, warm standbys, and peer replicas. Decode failures are typed:
// corrupt, truncated, or future-version snapshots answer 422, never crash
// the daemon.

import (
	"net/http"
	"strconv"

	"repro/internal/service"
	"repro/internal/snapshot"
)

// snapshotContentType is the media type of the binary snapshot encoding;
// the version parameter is the codec's format version, not the model's.
var snapshotContentType = "application/vnd.traclus.snapshot; version=" + strconv.Itoa(snapshot.Version)

// handleSnapshotGet is GET /v1/models/{name}/snapshot: export the model.
// On a non-owner replica a local miss fetches from the owner first, so the
// endpoint is also how peers replicate finished models.
func (s *server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	m, found, err := s.localModel(r, name)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	if !found {
		writeErrorCode(w, http.StatusNotFound, codeNotFound, "model not found", nil)
		return
	}
	data, err := m.EncodeSnapshot()
	if err != nil {
		writeTypedError(w, err)
		return
	}
	w.Header().Set("Content-Type", snapshotContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleSnapshotPut is PUT /v1/models/{name}/snapshot: import a snapshot
// under the path's name (the name inside the snapshot travels along as
// metadata but the path decides identity, so an exported model can be
// installed under a new name). The model is persisted synchronously before
// the 200 — an import survives an immediate crash. An import racing an
// in-flight build of the same name answers 409.
func (s *server) handleSnapshotPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !service.ValidModelName(name) {
		writeErrorCode(w, http.StatusBadRequest, codeInvalidRequest,
			"model name must match "+service.ModelNamePattern(), map[string]any{"field": "name"})
		return
	}
	data, err := s.readRaw(w, r)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	sm, err := snapshot.Decode(data)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	sm.Name = name // path-addressed identity
	m, err := service.FromSnapshot(sm)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	if err := s.store.Put(name, m); err != nil {
		writeTypedError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"model":    name,
		"imported": true,
		"clusters": m.Summary().Clusters,
	})
}
