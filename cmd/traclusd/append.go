package main

// POST /v1/models/{name}/append — incremental model growth over the wire.
// The body carries new trajectories in the same formats a build accepts;
// the daemon appends them to the served model in O(Δ) (no rebuild, zero new
// index constructions) and atomically publishes the next epoch: the store
// swaps to the appended model, requests already holding the old epoch
// finish on their consistent pre-append view, and the snapshot persists
// write-behind like a fresh build.
//
// Sharded mode: appends are an owner-side operation — only the owner holds
// the live appender (peers serve snapshot restores, which carry no training
// geometry) — so a request landing on a non-owner forwards to the owner,
// exactly like a build. Peers that cached a pre-append snapshot keep
// serving their epoch until they next fetch; Summary().Epoch tells clients
// which version answered.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/service"
	"repro/internal/trackio"

	traclus "repro"
)

// AppendRequest is the /v1 append body: the same data envelope as a
// BuildRequest, minus name (in the path) and config (frozen at build time —
// an append never re-estimates or re-parameterises).
type AppendRequest struct {
	// Format names the trajectory encoding of Data: csv (default),
	// besttrack, or telemetry. A spatiotemporal model requires csv with the
	// traj_id,x,y,t timestamp column.
	Format string `json:"format,omitempty"`
	// Species filters multi-species formats (telemetry).
	Species string `json:"species,omitempty"`
	// Data is the trajectory payload, inline in the named format.
	Data string `json:"data"`
}

// handleAppend is POST /v1/models/{name}/append.
func (s *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !service.ValidModelName(name) {
		writeErrorCode(w, http.StatusBadRequest, codeInvalidRequest,
			"model name must match "+service.ModelNamePattern(), map[string]any{"field": "name"})
		return
	}
	raw, err := s.readRaw(w, r)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	if s.forwardToOwner(w, r, name, raw) {
		return
	}
	var req AppendRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeInvalidRequest, "decoding AppendRequest: "+err.Error(), nil)
		return
	}
	// Appends need the live local model: a sharded peer fetch would restore
	// a snapshot, which cannot grow — and we are the owner (or standalone)
	// past the forwarding check, so a local miss is a genuine 404.
	m, found, err := s.store.Get(name)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	if !found {
		writeErrorCode(w, http.StatusNotFound, codeNotFound, "model not found", nil)
		return
	}
	format := trackio.FormatCSV
	if req.Format != "" {
		if format, err = trackio.ParseFormat(req.Format); err != nil {
			writeTypedError(w, err)
			return
		}
	}
	// The upload must match the model's geometry, the same fork the build
	// and classify paths take: a spatiotemporal model appends timed CSV,
	// everything else appends spatial data.
	timed := m.Summary().Geometry == "spatiotemporal"
	var trs []traclus.Trajectory
	var ttrs []traclus.TimedTrajectory
	if timed {
		if format != trackio.FormatCSV {
			writeErrorCode(w, http.StatusUnprocessableEntity, codeGeometryBad,
				fmt.Sprintf("format %q has no timestamp column; appends to a spatiotemporal model take csv with traj_id,x,y,t rows", format), nil)
			return
		}
		if ttrs, err = s.parseTimedTrajectories([]byte(req.Data)); err != nil {
			writeBodyError(w, err)
			return
		}
		for _, tr := range ttrs {
			if err := tr.Validate(); err != nil {
				writeBodyError(w, err)
				return
			}
		}
	} else if trs, err = s.parseTrajectories([]byte(req.Data), format, req.Species); err != nil {
		writeBodyError(w, err)
		return
	}
	if len(trs) == 0 && len(ttrs) == 0 {
		writeErrorCode(w, http.StatusBadRequest, codeInvalidRequest, "no trajectories in request body", nil)
		return
	}
	// The append runs under the daemon's base context, not the request's: a
	// client disconnect mid-append must not abort the union/relabel passes
	// (an aborted append invalidates the model's append state until the
	// model is rebuilt). The work is O(new data), so it is bounded anyway.
	var next *service.Model
	if timed {
		next, err = m.AppendTimed(s.cfg.baseCtx, ttrs)
	} else {
		next, err = m.Append(s.cfg.baseCtx, trs)
	}
	if err != nil {
		var cfgErr *traclus.ConfigError
		if errors.As(err, &cfgErr) {
			// The data or geometry does not fit the model it is appending to
			// (e.g. coordinates outside the geodesic frame's valid range):
			// the request is well-formed but unprocessable against this model.
			writeErrorCode(w, http.StatusUnprocessableEntity, codeGeometryBad, err.Error(), map[string]any{
				"field": cfgErr.Field, "value": fmt.Sprint(cfgErr.Value), "reason": cfgErr.Reason,
			})
			return
		}
		writeTypedError(w, err)
		return
	}
	// Publish the new epoch: swap the resident model and persist behind.
	// ErrBuildInFlight (a concurrent build racing the name) maps to 409.
	if err := s.store.Replace(name, next); err != nil {
		writeTypedError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, next.Summary())
}
